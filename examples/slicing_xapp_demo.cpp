// Full O-RAN pipeline walkthrough (Fig. 6 of the paper): a near-RT RIC
// with E2 termination, data repository, the DRL slicing xApp and the
// EXPLORA xApp interposed on the RAN-control route. Shows the message
// plumbing explicitly: route configuration, delivery counters, and the
// (state, action, explanation) records EXPLORA archives for the operator.
//
// Build & run:  ./build/examples/slicing_xapp_demo
#include <cstdio>

#include "common/log.hpp"
#include "explora/xapp.hpp"
#include "harness/training.hpp"
#include "oran/drl_xapp.hpp"
#include "oran/ric.hpp"

int main() {
  using namespace explora;
  common::set_log_level(common::LogLevel::kWarn);

  // --- the RAN: one gNB with the paper's 6-user TRF1 scenario -------------
  netsim::ScenarioConfig scenario;
  scenario.profile = netsim::TrafficProfile::kTrf1;
  scenario.users_per_slice = netsim::users_for_count(6);
  scenario.seed = 7;

  // --- the models: load from the artifact cache or train ------------------
  harness::TrainingConfig training;
  harness::TrainedSystem system = harness::load_or_train(
      core::AgentProfile::kHighThroughput, scenario, training);

  // --- the near-RT RIC -----------------------------------------------------
  oran::NearRtRic ric(netsim::make_gnb(scenario));

  oran::DrlXapp::Config drl_config;
  drl_config.stochastic = true;
  drl_config.prb_temperature = 0.5;
  oran::DrlXapp drl_xapp(drl_config, system.normalizer, *system.autoencoder,
                         *system.agent, ric.router());
  ric.attach_xapp(drl_xapp);
  ric.subscribe_indications("drl_xapp");

  core::ExploraXapp::Config explora_config;
  explora_config.reward_weights = core::RewardWeights::high_throughput();
  core::ActionSteering::Config steering;
  steering.strategy = core::SteeringStrategy::kMaxReward;
  steering.observation_window = 10;
  explora_config.steering = steering;
  core::ExploraXapp explora_xapp(explora_config, ric.router(),
                                 &ric.repository());
  ric.attach_xapp(explora_xapp);
  ric.subscribe_indications("explora_xapp");

  // RMR route table: interpose EXPLORA between the DRL xApp and the E2
  // termination (the paper's strategy (iii), §5.1).
  ric.route_control_via("drl_xapp", "explora_xapp");
  std::puts("RIC deployed: e2term -> {data_repo, drl_xapp, explora_xapp};");
  std::puts("              drl_xapp -(RAN control)-> explora_xapp -> e2term\n");

  // --- run 5 simulated minutes --------------------------------------------
  const std::size_t decisions = 1200;
  ric.run_windows(decisions * 10);

  std::printf("after %zu decision periods:\n", decisions);
  std::printf("  KPM indications published : %llu\n",
              static_cast<unsigned long long>(
                  ric.e2_termination().indications_sent()));
  std::printf("  controls applied at gNB   : %llu\n",
              static_cast<unsigned long long>(
                  ric.e2_termination().controls_applied()));
  std::printf("  delivered to drl_xapp     : %llu\n",
              static_cast<unsigned long long>(
                  ric.router().delivered_to("drl_xapp")));
  std::printf("  delivered to explora_xapp : %llu\n",
              static_cast<unsigned long long>(
                  ric.router().delivered_to("explora_xapp")));
  std::printf("  actions replaced by EDBR  : %llu\n\n",
              static_cast<unsigned long long>(
                  explora_xapp.controls_replaced()));

  std::fputs(explora_xapp.graph().describe(6).c_str(), stdout);

  std::puts("\nlast 5 archived (state, action, explanation) records:");
  const auto& records = ric.repository().explanations();
  const std::size_t start = records.size() > 5 ? records.size() - 5 : 0;
  for (std::size_t i = start; i < records.size(); ++i) {
    const auto& record = records[i];
    std::printf("  #%llu %s %s\n     %s\n",
                static_cast<unsigned long long>(record.decision_id),
                record.enforced.to_string().c_str(),
                record.replaced ? "[REPLACED]" : "[forwarded]",
                record.explanation.c_str());
  }
  return 0;
}
