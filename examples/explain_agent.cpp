// Explaining both of the paper's agents: trains/loads the HT and LL
// systems, runs each under EXPLORA observation, and prints the distilled
// knowledge — the decision tree over the explanations (Fig. 8/14) and the
// human-readable Table-2/4 style summaries — side by side.
//
// Build & run:  ./build/examples/explain_agent
#include <cstdio>

#include "common/log.hpp"
#include "explora/distill.hpp"
#include "harness/experiment.hpp"
#include "harness/training.hpp"

namespace {

using namespace explora;

void explain_profile(core::AgentProfile profile) {
  netsim::ScenarioConfig scenario;
  scenario.profile = netsim::TrafficProfile::kTrf1;
  scenario.users_per_slice = netsim::users_for_count(6);
  scenario.seed = 42;

  harness::TrainingConfig training;
  const harness::TrainedSystem system =
      harness::load_or_train(profile, scenario, training);

  harness::ExperimentOptions options;
  options.decisions = 720;
  options.prb_temperature =
      profile == core::AgentProfile::kLowLatency ? 0.6 : 0.35;
  const harness::ExperimentResult result =
      harness::run_experiment(system, scenario, options, training);

  std::printf("\n================ %s agent ================\n",
              core::to_string(profile).c_str());
  std::printf("graph: %zu nodes, %zu edges, %llu transitions\n",
              result.graph.node_count(), result.graph.edge_count(),
              static_cast<unsigned long long>(
                  result.graph.total_transitions()));

  core::KnowledgeDistiller distiller;
  const core::DistilledKnowledge knowledge =
      distiller.distill(result.transitions);
  std::printf("\ndecision tree over the explanations (fit accuracy "
              "%.1f%%):\n\n",
              knowledge.tree_accuracy * 100.0);
  std::fputs(knowledge.rules.c_str(), stdout);
  std::puts("");
  std::fputs(knowledge.summary_text.c_str(), stdout);
}

}  // namespace

int main() {
  common::set_log_level(common::LogLevel::kWarn);
  explain_profile(core::AgentProfile::kHighThroughput);
  explain_profile(core::AgentProfile::kLowLatency);
  std::puts(
      "\nThe HT agent concentrates on eMBB-heavy slicing profiles and works"
      "\nmostly through Same-PRB transitions; the LL agent transitions more"
      "\nand spreads across the classes (paper, Table 2 vs Table 4).");
  return 0;
}
