// The full O-RAN intent loop (Fig. 1 of the paper): the non-RT RIC hosts a
// QoS-guard rApp that watches long-term KPI summaries and pushes A1
// policies; the EXPLORA xApp translates each policy into an EDBR steering
// strategy at runtime. The demo degrades the network mid-run (a traffic
// surge on the URLLC slice via profile change is approximated by dropping
// eMBB capacity) and shows the intent switching in response.
//
// Build & run:  ./build/examples/intent_loop
#include <cstdio>

#include "common/log.hpp"
#include "common/stats.hpp"
#include "explora/xapp.hpp"
#include "harness/training.hpp"
#include "oran/a1.hpp"
#include "oran/drl_xapp.hpp"
#include "oran/ric.hpp"

int main() {
  using namespace explora;
  common::set_log_level(common::LogLevel::kWarn);

  netsim::ScenarioConfig scenario;
  scenario.profile = netsim::TrafficProfile::kTrf1;
  scenario.users_per_slice = netsim::users_for_count(6);
  scenario.seed = 17;

  harness::TrainingConfig training;
  const harness::TrainedSystem system = harness::load_or_train(
      core::AgentProfile::kHighThroughput, scenario, training);

  // --- near-RT side ---------------------------------------------------------
  oran::NearRtRic ric(netsim::make_gnb(scenario));
  oran::DrlXapp::Config drl_config;
  drl_config.stochastic = true;
  drl_config.prb_temperature = 0.8;  // imperfect-policy regime
  oran::DrlXapp drl(drl_config, system.normalizer, *system.autoencoder,
                    *system.agent, ric.router());
  ric.attach_xapp(drl);
  ric.subscribe_indications("drl_xapp");
  core::ExploraXapp explora(core::ExploraXapp::Config{}, ric.router(),
                            &ric.repository());
  ric.attach_xapp(explora);
  ric.subscribe_indications("explora_xapp");
  ric.route_control_via("drl_xapp", "explora_xapp");

  // --- non-RT side -----------------------------------------------------------
  oran::QosIntentRapp::Config rapp_config;
  // Thresholds chosen inside this scenario's operating range so the demo
  // exercises intent switching: the eMBB floor sits near the observed
  // median and the URLLC ceiling near the observed p90.
  rapp_config.embb_bitrate_floor_mbps = 6.6;
  rapp_config.urllc_buffer_ceiling_bytes = 190.0;
  oran::NonRtRic non_rt{oran::QosIntentRapp(rapp_config)};
  non_rt.attach_consumer(explora);

  // --- the loop: every 30 s of simulated time the SMO aggregates KPIs and
  // the non-RT RIC re-evaluates the intent ---------------------------------
  std::puts("epoch | eMBB median [Mbps] | URLLC p90 [B] | active intent");
  for (int epoch = 0; epoch < 10; ++epoch) {
    ric.run_windows(1200);  // 30 s = 120 decisions

    // Aggregate this epoch's KPIs from the data repository (the O1 path).
    std::vector<double> bitrate;
    std::vector<double> buffer;
    for (const auto& report : ric.repository().latest_reports(1200)) {
      bitrate.push_back(
          report.value(netsim::Kpi::kTxBitrate, netsim::Slice::kEmbb));
      buffer.push_back(
          report.value(netsim::Kpi::kBufferSize, netsim::Slice::kUrllc));
    }
    const double bitrate_median = common::median(bitrate);
    const double buffer_p90 = common::quantile(buffer, 0.9);
    non_rt.report_kpi_summary(bitrate_median, buffer_p90);

    std::printf("%5d | %18.3f | %13.0f | %s\n", epoch, bitrate_median,
                buffer_p90,
                non_rt.current_policy()
                    ? oran::to_string(non_rt.current_policy()->intent).c_str()
                    : "-");

    if (epoch == 4) {
      // Degrade the cell: two UEs leave, shifting load and KPIs.
      ric.gnb().detach_one_ue(netsim::Slice::kMmtc);
      std::puts("      (mMTC UE detached - environment changed)");
    }
  }

  std::printf("\nA1 policies issued: %llu; applied by the xApp: %llu\n",
              static_cast<unsigned long long>(non_rt.policies_issued()),
              static_cast<unsigned long long>(explora.a1_policies_applied()));
  std::printf("controls replaced under steering intents: %llu\n",
              static_cast<unsigned long long>(explora.controls_replaced()));
  return 0;
}
