// Quickstart: the smallest end-to-end EXPLORA run.
//
// 1. Train (or load from the artifact cache) a High-Throughput DRL system
//    on the simulated O-RAN slicing scenario.
// 2. Deploy the full near-RT RIC pipeline: gNB -> E2 -> DRL xApp ->
//    EXPLORA xApp -> E2, with EXPLORA observing (no steering).
// 3. Print the attributed graph and the synthesized explanations.
//
// Build & run:  ./build/examples/quickstart
#include <cstdio>

#include "common/log.hpp"
#include "explora/distill.hpp"
#include "harness/experiment.hpp"
#include "harness/training.hpp"

int main() {
  using namespace explora;
  common::set_log_level(common::LogLevel::kInfo);

  // --- 1. the scenario: TRF1 traffic, 6 users (2 per slice) ---------------
  netsim::ScenarioConfig scenario;
  scenario.profile = netsim::TrafficProfile::kTrf1;
  scenario.users_per_slice = netsim::users_for_count(6);
  scenario.seed = 42;

  // --- 2. train or load the HT agent (autoencoder + PPO) ------------------
  harness::TrainingConfig training;  // defaults match the paper's shapes
  harness::TrainedSystem system = harness::load_or_train(
      core::AgentProfile::kHighThroughput, scenario, training);
  std::puts("trained system ready (autoencoder 90->9, multi-head PPO)");

  // --- 3. run the deployed pipeline with the EXPLORA xApp -----------------
  harness::ExperimentOptions options;
  options.decisions = 240;  // 10 simulated minutes at 4 decisions/s
  options.deploy_explora = true;
  harness::ExperimentResult result =
      harness::run_experiment(system, scenario, options, training);

  std::printf("ran %zu decisions, mean reward %.3f\n",
              result.decisions.size(), result.mean_reward());
  std::fputs(result.graph.describe().c_str(), stdout);

  // --- 4. synthesize the explanations (Fig. 8 / Table 2 style) ------------
  core::KnowledgeDistiller distiller;
  const core::DistilledKnowledge knowledge =
      distiller.distill(result.transitions);
  std::puts("\nDecision tree over EXPLORA explanations:");
  std::fputs(knowledge.rules.c_str(), stdout);
  std::puts("");
  std::fputs(knowledge.summary_text.c_str(), stdout);
  return 0;
}
