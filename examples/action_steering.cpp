// Intent-based action steering in action (§5.2, Algorithm 1): runs the HT
// agent once without steering and once under each of the three strategies
// (AR1 "Max-reward", AR2 "Min-reward", AR3 "Improve bitrate"), comparing
// the user-level KPIs and printing a few of EDBR's live rationales.
//
// Build & run:  ./build/examples/action_steering
#include <cstdio>

#include "common/log.hpp"
#include "common/stats.hpp"
#include "common/table.hpp"
#include "explora/xapp.hpp"
#include "harness/experiment.hpp"
#include "harness/training.hpp"
#include "oran/drl_xapp.hpp"
#include "oran/ric.hpp"

namespace {

using namespace explora;

harness::ExperimentResult run_with(
    const harness::TrainedSystem& system,
    const netsim::ScenarioConfig& scenario,
    std::optional<core::SteeringStrategy> strategy) {
  harness::ExperimentOptions options;
  options.decisions = 960;
  // An imperfect deployed policy (warm sampling) gives the steering
  // something to correct — the paper's imperfect-training premise.
  options.prb_temperature = 0.8;
  if (strategy.has_value()) {
    core::ActionSteering::Config steering;
    steering.strategy = *strategy;
    steering.observation_window = 10;
    options.steering = steering;
  }
  return harness::run_experiment(system, scenario, options,
                                 harness::TrainingConfig{});
}

}  // namespace

int main() {
  common::set_log_level(common::LogLevel::kWarn);

  netsim::ScenarioConfig scenario;
  scenario.profile = netsim::TrafficProfile::kTrf1;
  scenario.users_per_slice = netsim::users_for_count(6);
  scenario.seed = 42;
  const harness::TrainedSystem system = harness::load_or_train(
      core::AgentProfile::kHighThroughput, scenario,
      harness::TrainingConfig{});

  const auto baseline = run_with(system, scenario, std::nullopt);

  common::TextTable table({"run", "mean reward", "eMBB bitrate med [Mbps]",
                           "URLLC buffer p90 [B]", "replaced"});
  auto add_row = [&table](const std::string& name,
                          const harness::ExperimentResult& result) {
    table.add_row({name, common::fmt(result.mean_reward(), 3),
                   common::fmt(common::median(result.embb_bitrate_mbps), 3),
                   common::fmt(common::quantile(result.urllc_buffer_bytes,
                                                0.9), 0),
                   std::to_string(result.controls_replaced)});
  };
  add_row("baseline (no steering)", baseline);

  for (const auto strategy : {core::SteeringStrategy::kMaxReward,
                              core::SteeringStrategy::kMinReward,
                              core::SteeringStrategy::kImproveBitrate}) {
    const auto result = run_with(system, scenario, strategy);
    add_row(core::to_string(strategy), result);
  }
  std::fputs(table.render().c_str(), stdout);

  // Show a handful of live EDBR rationales from a short steered run: the
  // explanation strings the EXPLORA xApp archives with each decision.
  std::puts("\nsample EDBR rationales (AR1):");
  harness::ExperimentOptions options;
  options.decisions = 60;
  options.prb_temperature = 0.8;
  core::ActionSteering::Config steering;
  steering.strategy = core::SteeringStrategy::kMaxReward;
  steering.observation_window = 10;
  options.steering = steering;
  // Re-run through the full RIC so the rationales land in the repository.
  oran::NearRtRic ric(netsim::make_gnb(scenario));
  oran::DrlXapp::Config drl_config;
  drl_config.stochastic = true;
  drl_config.prb_temperature = 0.8;
  oran::DrlXapp drl(drl_config, system.normalizer, *system.autoencoder,
                    *system.agent, ric.router());
  ric.attach_xapp(drl);
  ric.subscribe_indications("drl_xapp");
  core::ExploraXapp::Config xapp_config;
  xapp_config.steering = steering;
  core::ExploraXapp explora(xapp_config, ric.router(), &ric.repository());
  ric.attach_xapp(explora);
  ric.subscribe_indications("explora_xapp");
  ric.route_control_via("drl_xapp", "explora_xapp");
  ric.run_windows(options.decisions * 10);

  std::size_t shown = 0;
  for (const auto& record : ric.repository().explanations()) {
    if (!record.replaced) continue;
    std::printf("  #%llu %s\n",
                static_cast<unsigned long long>(record.decision_id),
                record.explanation.c_str());
    if (++shown == 5) break;
  }
  if (shown == 0) {
    std::puts("  (no replacements in this short run)");
  }
  return 0;
}
