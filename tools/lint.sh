#!/usr/bin/env bash
# Single entry point for every source lint: determinism, concurrency, the
# whole-program hot-path analyzer (realtime-safety call graph + module
# layering), and the cross-TU atomics discipline lint. check.sh and the CI
# `source-lints` job both call this script, so the set of lints is defined
# in exactly one place.
#
# Usage:
#   tools/lint.sh                 # self-tests + all lints over the tree
#   tools/lint.sh --no-self-test  # skip the lints' own self-tests
#   tools/lint.sh --json DIR      # also write hotpath_report.json and
#                                 # atomics_report.json into DIR
#
# Exit status is non-zero if any lint (or self-test) fails.
set -u

cd "$(dirname "$0")/.."

SELF_TEST=1
JSON_DIR=""
while [[ $# -gt 0 ]]; do
  case "$1" in
    --no-self-test) SELF_TEST=0; shift ;;
    --json) JSON_DIR="${2:?--json needs a directory}"; shift 2 ;;
    *) echo "lint.sh: unknown argument: $1" >&2; exit 2 ;;
  esac
done

declare -a RESULTS=()
FAILED=0

run_step() {
  local label="$1"
  shift
  echo
  echo "==== ${label}: $* ===="
  if "$@"; then
    RESULTS+=("PASS  ${label}")
  else
    RESULTS+=("FAIL  ${label}")
    FAILED=1
  fi
}

if [[ "${SELF_TEST}" == 1 ]]; then
  run_step "self-test:determinism" python3 tools/lint_determinism.py --self-test
  run_step "self-test:concurrency" python3 tools/lint_concurrency.py --self-test
  run_step "self-test:hotpath" python3 tools/lint_hotpath.py --self-test
  run_step "fixtures:hotpath" \
    python3 tools/lint_hotpath.py --fixture-test tests/lint_fixtures
  run_step "self-test:atomics" python3 tools/lint_atomics.py --self-test
  run_step "fixtures:atomics" \
    python3 tools/lint_atomics.py --fixture-test tests/lint_fixtures/atomics
fi

run_step "lint:determinism" python3 tools/lint_determinism.py --root .
run_step "lint:concurrency" python3 tools/lint_concurrency.py --root .

ATOMICS_ARGS=(--root .)
if [[ -n "${JSON_DIR}" ]]; then
  mkdir -p "${JSON_DIR}"
  ATOMICS_ARGS+=(--json "${JSON_DIR}/atomics_report.json")
fi
run_step "lint:atomics" python3 tools/lint_atomics.py "${ATOMICS_ARGS[@]}"

HOTPATH_ARGS=(--part all --root .)
if [[ -n "${JSON_DIR}" ]]; then
  mkdir -p "${JSON_DIR}"
  HOTPATH_ARGS+=(--json "${JSON_DIR}/hotpath_report.json")
fi
run_step "lint:hotpath" python3 tools/lint_hotpath.py "${HOTPATH_ARGS[@]}"

echo
echo "==== lint summary ===="
printf '%s\n' "${RESULTS[@]}"
exit "${FAILED}"
