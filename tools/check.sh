#!/usr/bin/env bash
# Local pre-push correctness gate: builds and tests the repo under the full
# sanitizer matrix, runs the source lints via tools/lint.sh, and — when
# the respective clang tooling is installed — the clang-tidy pass and the
# clang thread-safety analysis (`thread-safety` preset). Mirrors
# .github/workflows/ci.yml so a clean run here means a green CI.
#
# Usage:
#   tools/check.sh              # default + asan + ubsan + tsan + lints
#   tools/check.sh --fast       # default preset + lints only
#   tools/check.sh asan ubsan   # explicit preset subset
#
# Each preset configures into its own build-<preset>/ tree (gitignored), so
# repeat runs are incremental.
set -u

cd "$(dirname "$0")/.."

PRESETS=(default asan ubsan tsan)
if [[ "${1:-}" == "--fast" ]]; then
  PRESETS=(default)
  shift
elif [[ $# -gt 0 ]]; then
  PRESETS=("$@")
fi

declare -a RESULTS=()
FAILED=0

run_step() {
  local label="$1"
  shift
  echo
  echo "==== ${label}: $* ===="
  if "$@"; then
    RESULTS+=("PASS  ${label}")
  else
    RESULTS+=("FAIL  ${label}")
    FAILED=1
  fi
}

for preset in "${PRESETS[@]}"; do
  run_step "configure:${preset}" cmake --preset "${preset}" -DEXPLORA_WERROR=ON
  run_step "build:${preset}" cmake --build --preset "${preset}" -j
  run_step "test:${preset}" ctest --preset "${preset}" -j "$(nproc)"
done

# lint.sh is the single entry point for every source lint (determinism,
# concurrency, hot-path realtime safety + module layering, atomics
# discipline).
run_step "lints" tools/lint.sh

# Model-check flavor: rebuilds with the interleave::Atomic shims
# instrumented and exhaustively explores the Interleave suites
# (DESIGN.md SS14). Fine-grained schedules only exist in this flavor.
run_step "configure:model-check" cmake --preset model-check
run_step "build:model-check" cmake --build --preset model-check -j
run_step "test:model-check" ctest --preset model-check -j "$(nproc)"

if command -v clang++ >/dev/null 2>&1; then
  # Clang proves every EXPLORA_GUARDED_BY member is only touched under its
  # mutex; -Werror=thread-safety makes any gap a build failure.
  run_step "configure:thread-safety" cmake --preset thread-safety
  run_step "build:thread-safety" cmake --build --preset thread-safety -j
  run_step "test:thread-safety" ctest --preset thread-safety -j "$(nproc)"
else
  echo
  echo "==== thread-safety skipped (clang++ not installed) ===="
  RESULTS+=("SKIP  thread-safety")
fi

if command -v run-clang-tidy >/dev/null 2>&1 && command -v clang-tidy >/dev/null 2>&1; then
  # The default preset's compile database drives the tidy pass; the checks
  # promoted to WarningsAsErrors in .clang-tidy make it a hard gate.
  run_step "lint:clang-tidy" run-clang-tidy -quiet -p build "src/.*\.cpp"
else
  echo
  echo "==== lint:clang-tidy skipped (clang-tidy not installed) ===="
  RESULTS+=("SKIP  lint:clang-tidy")
fi

echo
echo "==== summary ===="
printf '%s\n' "${RESULTS[@]}"
exit "${FAILED}"
