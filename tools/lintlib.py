"""Shared plumbing for the EXPLORA source lints.

Every lint in tools/ (lint_determinism.py, lint_concurrency.py,
lint_hotpath.py) walks the same file set, blanks comments and string
literals the same way, honors line-level suppression markers with the
same `// <marker>: <rule> (<reason>)` grammar, and reports findings in
the same `path:line: [rule] snippet` format so editors and CI parse
them uniformly. This module is that common substrate; the lints keep
only their rule tables and scanning logic.

Nothing here is specific to one lint: a new analysis script should need
only `collect_sources`, `strip_comments_and_strings`, `marker_pattern`
plus `marker_allows`, and the `report_findings`/`self_test_verdict`
drivers to look and behave exactly like its siblings.
"""

from __future__ import annotations

import argparse
import pathlib
import re
import sys

#: Directories scanned by default, relative to the repository root. Tests
#: are exercised by their own harness; generated build trees are skipped.
SCAN_DIRS = ("src", "tools")

#: C++ source extensions the lints care about.
EXTENSIONS = {".hpp", ".cpp", ".h", ".cc"}


def strip_comments_and_strings(text: str) -> str:
    """Blanks out comments, string and char literals, preserving line
    breaks so findings keep their line numbers.

    Suppression markers live inside comments, so callers keep the raw
    text around for marker lookups and scan only the stripped copy.
    """
    out = []
    i, n = 0, len(text)
    while i < n:
        c = text[i]
        nxt = text[i + 1] if i + 1 < n else ""
        if c == "/" and nxt == "/":
            j = text.find("\n", i)
            j = n if j == -1 else j
            out.append(" " * (j - i))
            i = j
        elif c == "/" and nxt == "*":
            j = text.find("*/", i + 2)
            j = n - 2 if j == -1 else j
            seg = text[i : j + 2]
            out.append("".join(ch if ch == "\n" else " " for ch in seg))
            i = j + 2
        elif c in "\"'":
            quote = c
            j = i + 1
            while j < n and text[j] != quote:
                j += 2 if text[j] == "\\" else 1
            out.append(" " * (min(j, n - 1) + 1 - i))
            i = j + 1
        else:
            out.append(c)
            i += 1
    return "".join(out)


def line_of(code: str, offset: int) -> int:
    """1-based line number of `offset` in `code`."""
    return code.count("\n", 0, offset) + 1


def statement_span(code: str, start: int) -> tuple[str, int]:
    """The text from `start` to the next top-level `;` (declarations wrap
    across lines, e.g. a member whose annotation sits on a continuation
    line), plus the line number of that terminator."""
    end = code.find(";", start)
    end = len(code) if end == -1 else end
    return code[start:end], line_of(code, end - 1 if end else 0)


def collect_sources(
    root: pathlib.Path,
    scan_dirs: tuple[str, ...] = SCAN_DIRS,
    extensions: set[str] = EXTENSIONS,
) -> list[pathlib.Path]:
    """All lint-relevant sources under `root`, sorted for stable output."""
    return sorted(
        path
        for scan_dir in scan_dirs
        for path in (root / scan_dir).rglob("*")
        if path.suffix in extensions
    )


def marker_pattern(name: str) -> re.Pattern[str]:
    """Compiled suppression-marker pattern for `// <name>: <rule>`.

    The rule group is optional: a bare `// name:` marker suppresses any
    rule on that line, a named one suppresses only that rule. Reasons in
    trailing parentheses are free text and not captured.
    """
    return re.compile(rf"//\s*{re.escape(name)}:\s*([\w-]+)?")


def marker_allows(
    raw_lines: list[str], lineno: int, pattern: re.Pattern[str], rule: str
) -> bool:
    """True when the raw line carries a marker suppressing `rule`."""
    line = raw_lines[lineno - 1] if lineno - 1 < len(raw_lines) else ""
    m = pattern.search(line)
    return bool(m) and (m.group(1) is None or m.group(1) == rule)


def standard_parser(doc: str | None) -> argparse.ArgumentParser:
    """The argparse front end every lint shares (--root, --self-test)."""
    parser = argparse.ArgumentParser(description=doc)
    parser.add_argument("--root", type=pathlib.Path, default=pathlib.Path("."),
                        help="repository root (default: cwd)")
    parser.add_argument("--self-test", action="store_true",
                        help="run the lint's own positive/negative samples")
    return parser


def report_findings(
    lint_name: str,
    findings: list[tuple[str, int, str, str]],
    file_count: int,
    suppress_hints: list[str],
) -> int:
    """Prints `(relpath, line, rule, snippet)` findings in the shared
    format plus the summary/hint footer; returns the lint exit code."""
    for rel, lineno, rule, snippet in findings:
        print(f"{rel}:{lineno}: [{rule}] {snippet}")
    if findings:
        print(f"\n{lint_name}: {len(findings)} finding(s) "
              f"across {file_count} files")
        for hint in suppress_hints:
            print(hint)
        return 1
    print(f"{lint_name}: clean ({file_count} files)")
    return 0


def no_sources_error(lint_name: str, root: pathlib.Path) -> int:
    print(f"{lint_name}: no sources under {root}", file=sys.stderr)
    return 2


def self_test_verdict(ok: bool, bad: list, good: list) -> int:
    """Prints the shared self-test report. `bad` holds the findings the
    negative samples produced (expected non-empty), `good` those from the
    positive samples (expected empty)."""
    if not ok:
        print("self-test FAILED")
        print("  bad findings:", sorted(bad))
        print("  good findings:", sorted(good))
        return 1
    print(f"self-test ok ({len(bad)} expected findings, 0 false positives)")
    return 0
