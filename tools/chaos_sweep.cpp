// chaos_sweep — fault-injection sweep over the full closed control loop.
//
//   chaos_sweep [--seed S] [--fault-seed F] [--decisions N] [--out FILE]
//               [--max-degradation D]
//
// Trains (or loads from the artifact cache) a reduced-budget agent, runs
// the fault-free baseline plus the default fault points of
// harness::default_fault_points(), and writes one deterministic JSON
// document. Exit status is 0 only when every sweep point satisfies the
// robustness contract: all controls applied exactly once and mean reward
// within --max-degradation of the baseline.
#include <cstdio>
#include <cstring>
#include <fstream>
#include <string>

#include "harness/chaos.hpp"
#include "harness/training.hpp"

namespace {

using namespace explora;

struct CliOptions {
  std::uint64_t seed = 31;
  std::uint64_t fault_seed = 4242;
  std::size_t decisions = 24;
  double max_degradation = 0.20;
  std::string out_file;
};

void usage() {
  std::fputs(
      "usage: chaos_sweep [options]\n"
      "  --seed S             scenario seed (default 31)\n"
      "  --fault-seed F       impairment stream seed (default 4242)\n"
      "  --decisions N        decision periods per run (default 24)\n"
      "  --max-degradation D  reward-degradation bound (default 0.20)\n"
      "  --out FILE           write the JSON report here (default stdout)\n",
      stderr);
}

/// Reduced training budget: enough for a usable agent, small enough that a
/// cold CI run trains in seconds. Cached under artifacts/ like every other
/// harness entry point.
harness::TrainingConfig sweep_training() {
  harness::TrainingConfig config;
  config.collection_steps = 30;
  config.autoencoder.epochs = 5;
  config.ppo_iterations = 2;
  config.steps_per_iteration = 32;
  config.seed = 99;
  return config;
}

}  // namespace

int main(int argc, char** argv) {
  CliOptions options;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    auto next = [&]() -> const char* {
      if (i + 1 >= argc) {
        usage();
        std::exit(2);
      }
      return argv[++i];
    };
    if (arg == "--seed") {
      options.seed = std::strtoull(next(), nullptr, 10);
    } else if (arg == "--fault-seed") {
      options.fault_seed = std::strtoull(next(), nullptr, 10);
    } else if (arg == "--decisions") {
      options.decisions = std::strtoull(next(), nullptr, 10);
    } else if (arg == "--max-degradation") {
      options.max_degradation = std::strtod(next(), nullptr);
    } else if (arg == "--out") {
      options.out_file = next();
    } else {
      usage();
      return 2;
    }
  }

  netsim::ScenarioConfig scenario;
  scenario.users_per_slice = {1, 1, 1};
  scenario.seed = options.seed;

  const harness::TrainedSystem system = harness::load_or_train(
      core::AgentProfile::kHighThroughput, scenario, sweep_training());

  harness::ChaosConfig config;
  config.scenario = scenario;
  config.training = sweep_training();
  config.decisions = options.decisions;
  config.fault_seed = options.fault_seed;
  config.max_reward_degradation = options.max_degradation;
  config.points = harness::default_fault_points();

  const harness::ChaosReport report = harness::run_chaos_sweep(system, config);
  const std::string json = report.to_json();
  if (options.out_file.empty()) {
    std::fputs(json.c_str(), stdout);
  } else {
    std::ofstream out(options.out_file, std::ios::binary);
    if (!out) {
      std::fprintf(stderr, "chaos_sweep: cannot write %s\n",
                   options.out_file.c_str());
      return 2;
    }
    out << json;
  }

  if (!report.all_exactly_once()) {
    std::fputs("chaos_sweep: FAIL — a control was lost or double-applied\n",
               stderr);
    return 1;
  }
  if (!report.all_bounded()) {
    std::fputs("chaos_sweep: FAIL — reward degradation exceeded the bound\n",
               stderr);
    return 1;
  }
  if (!report.all_serving_ok()) {
    std::fputs(
        "chaos_sweep: FAIL — serving contract violated (queue overflow, "
        "unaccounted request, or shed rate above bound)\n",
        stderr);
    return 1;
  }
  return 0;
}
