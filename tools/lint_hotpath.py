#!/usr/bin/env python3
"""Whole-program hot-path analyzer for the EXPLORA C++ sources.

Two passes over src/ (DESIGN.md SS11):

Part A - realtime-safety lint. A heuristic extractor finds every
function definition (free functions, out-of-line and inline methods,
constructors, templates), builds a cross-TU call graph by simple-name
resolution with qualified-suffix and same-namespace filtering, and seeds
ALLOCATES / LOCKS / BLOCKS / THROWS facts at lexical sinks (operator
new / malloc, growing container ops, MutexLock / .lock(), waits and
sleeps, stream and file I/O, throw). Facts propagate transitively up
the call graph. Functions annotated with the markers from
src/common/analysis_annotations.hpp declare contracts:

  EXPLORA_REALTIME     may reach no sink at all
  EXPLORA_NONBLOCKING  may allocate/throw but never lock or block

Annotated callees act as propagation barriers (modular checking): a
REALTIME callee contributes nothing, a NONBLOCKING callee contributes
may-ALLOCATE/THROW. A violation prints the full offending call chain.
A deliberate sink or call edge is waived on its line (or a comment line
directly above) with `// hotpath-ok: <reason>`; the reason is mandatory
and a reasonless marker is itself a finding.

Part B - module layering. The `#include "module/..."` graph under src/
is checked against the declared module DAG below; back-edges and
undeclared modules are findings. tools/, bench/ and tests/ are exempt
(they sit above every module by design).

Modes: --part realtime|layering|all, --json PATH (machine-readable
report), --self-test (embedded corpora), --prove-detection (copies src/
to a temp tree, injects a realtime and a layering violation, and proves
both analyses catch them while the clean copy stays clean),
--fixture-test DIR (extraction regression against DIR/expected.json).

Exit status: 0 = clean, 1 = findings, 2 = usage error.
"""

from __future__ import annotations

import json
import pathlib
import re
import shutil
import sys
import tempfile

import lintlib
from lintlib import line_of, strip_comments_and_strings

# --------------------------------------------------------------------------
# Part B configuration: the declared layering DAG. Maps each module under
# src/ to the set of modules it may include (its own module is always
# allowed). This is a per-module allow-set, strictly stronger than a linear
# order: e.g. xai may not include netsim even though both sit above common.
# netsim's domain types deliberately sit beneath ml (agents size their
# heads off the RAN action space); see DESIGN.md SS11.
MODULES: dict[str, set[str]] = {
    "common": set(),
    "netsim": {"common"},
    "ml": {"common", "netsim"},
    "xai": {"common", "ml"},
    "oran": {"common", "netsim", "ml"},
    "explora": {"common", "netsim", "ml", "xai", "oran"},
    "harness": {"common", "netsim", "ml", "xai", "oran", "explora"},
}

INCLUDE = re.compile(r'^\s*#\s*include\s*"([^"]+)"')

# --------------------------------------------------------------------------
# Part A configuration: facts, tiers and sink tables.

ALLOCATES, LOCKS, BLOCKS, THROWS = "ALLOCATES", "LOCKS", "BLOCKS", "THROWS"
SPINS = "SPINS"

#: Facts an annotated function must not reach. SPINS (an atomic retry
#: loop whose exit condition another thread must establish) is banned on
#: both tiers: a spin is a block with worse cache behavior.
FORBIDDEN = {
    "realtime": {ALLOCATES, LOCKS, BLOCKS, THROWS, SPINS},
    "nonblocking": {LOCKS, BLOCKS, SPINS},
}

#: What calling an annotated function contributes to the caller's facts:
#: the annotation is trusted as a checked contract (modular analysis), so
#: only the facts the annotation still permits leak through.
BARRIER = {
    "realtime": set(),
    "nonblocking": {ALLOCATES, THROWS},
}

#: (fact, rule, pattern) - scanned over each function body (comments,
#: strings, preprocessor lines and contract-macro invocations blanked).
SINKS: list[tuple[str, str, re.Pattern[str]]] = [
    (ALLOCATES, "alloc-new", re.compile(r"\bnew\b")),
    (ALLOCATES, "alloc-malloc",
     re.compile(r"\b(?:malloc|calloc|realloc|strdup|aligned_alloc)\s*\(")),
    (ALLOCATES, "alloc-call",
     re.compile(r"\bstd\s*::\s*(?:make_unique|make_shared|to_string|format)\b")),
    (ALLOCATES, "alloc-grow",
     re.compile(r"(?:\.|->)\s*(?:push_back|emplace_back|push_front"
                r"|emplace_front|emplace|insert|resize|reserve|assign"
                r"|append)\s*\(")),
    (ALLOCATES, "alloc-container-decl",
     re.compile(r"\bstd\s*::\s*(?:vector|string|deque|list|map|set"
                r"|unordered_map|unordered_set|basic_string)\s*<[^;{}]*>"
                r"\s+\w+\s*[({=]")),
    (LOCKS, "lock-scoped",
     re.compile(r"\b(?:Writer|Reader)?MutexLock\s+\w+\s*[({]")),
    (LOCKS, "lock-acquire",
     re.compile(r"(?:\.|->)\s*(?:lock|try_lock|lock_shared"
                r"|try_lock_shared)\s*\(")),
    (LOCKS, "lock-raii",
     re.compile(r"\bstd\s*::\s*(?:lock_guard|unique_lock|scoped_lock"
                r"|shared_lock)\b")),
    (BLOCKS, "block-wait",
     re.compile(r"(?:\.|->)\s*(?:wait|wait_for|wait_until)\s*\(")),
    # The serving queue's spinning convenience calls (xai/serving.hpp):
    # busy-waits for stress drivers only, never for annotated paths —
    # admission must use try_push/try_pop.
    (BLOCKS, "block-queue-blocking",
     re.compile(r"(?:\.|->)\s*(?:push_blocking|pop_blocking)\s*\(")),
    (BLOCKS, "block-sleep",
     re.compile(r"\bstd\s*::\s*this_thread\b|\bsleep(?:_for|_until)\s*\(")),
    (BLOCKS, "block-io",
     re.compile(r"\bstd\s*::\s*(?:cout|cerr|clog|cin|ofstream|ifstream"
                r"|fstream|getline|osyncstream)\b"
                r"|\b(?:fopen|fclose|fprintf|printf|fputs|puts|fwrite"
                r"|fread|fgets|fflush|system|getchar)\s*\(")),
    (THROWS, "throw", re.compile(r"\bthrow\b")),
    # Atomic spin loops: a `while (...)` whose condition retries a CAS or
    # a try_* operation is waiting on ANOTHER thread to make progress -
    # unbounded occupancy on a hot path. `for (;;)` CAS claim loops are
    # deliberately not flagged: a lock-free retry that loses only when a
    # peer succeeds is system-wide progress, not waiting. Loops that spin
    # by design (stress drivers, bounded monotone folds) carry reasoned
    # `// hotpath-ok:` waivers.
    (SPINS, "spin-cas-retry",
     re.compile(r"while\s*\([^;{}]*?\bcompare_exchange_(?:weak|strong)\b")),
    (SPINS, "spin-try-retry",
     re.compile(r"while\s*\(\s*![^;{}]*?\btry_(?:push|pop|steal|take|lock)"
                r"\w*\s*\(")),
]

#: Contract macros compile out below their check level; their failure
#: paths (formatting, abort) are not hot-path code, so invocations are
#: blanked before sink/call scanning.
CONTRACT_MACRO = re.compile(
    r"\bEXPLORA_(?:EXPECTS|ENSURES|ASSERT|AUDIT|INVARIANT)\w*\s*\(")

#: Identifiers that look like calls/definitions but are language keywords.
KEYWORDS = frozenset("""
    if for while switch catch return sizeof alignof alignas decltype
    static_assert noexcept new delete throw case default do else goto
    operator template typename using namespace class struct enum union
    public private protected constexpr consteval constinit static inline
    extern typedef co_await co_yield co_return requires concept this
    true false nullptr int void bool double float char auto unsigned
    signed long short const volatile mutable friend virtual explicit
    final override defined assert static_cast dynamic_cast const_cast
    reinterpret_cast
""".split())

FUNC_NAME = re.compile(
    r"(?<![:\w~])(~?[A-Za-z_]\w*(?:\s*::\s*~?[A-Za-z_]\w*)*)\s*\(")
CALL = re.compile(r"(?<![:\w~])(~?[A-Za-z_]\w*(?:\s*::\s*~?[A-Za-z_]\w*)*)"
                  r"\s*(?:<[^<>();{}]*>)?\s*\(")

#: Member-call names that are overwhelmingly std container/atomic methods
#: in this codebase (`x.size()`, `flag_.load()`, `counter_->add()`): the
#: type-blind resolver would union them with unrelated project methods of
#: the same name, so member calls on these names are treated as opaque.
#: Project hot-path entry points use distinctive names (schedule_tti,
#: begin_tti, observe_batch, forward_batch) and keep resolving.
MEMBER_IGNORE = frozenset("""
    load store exchange compare_exchange_weak compare_exchange_strong
    fetch_add fetch_sub fetch_or fetch_and size empty begin end cbegin
    cend rbegin rend data clear front back at count min max add get reset
    value length capacity swap find contains c_str substr first second
""".split())
WORD = re.compile(r"[A-Za-z_]\w*")
SCOPE_NS = re.compile(r"\bnamespace\s+([\w:]+)\s*$")
SCOPE_NS_ANON = re.compile(r"\bnamespace\s*$")
SCOPE_CLS = re.compile(r"\b(?:class|struct)\s+([A-Za-z_]\w*)[^;{}()]*$")
ENUM_TAIL = re.compile(r"\benum\b[^;{}]*$")

#: Waiver marker: the reason after the colon is mandatory.
HOTPATH_OK = re.compile(r"//\s*hotpath-ok:\s*(\S.*)?")
HOTPATH_MARK = re.compile(r"//\s*hotpath-ok\b")

ANNOTATIONS = (("realtime", re.compile(r"\bEXPLORA_REALTIME\b")),
               ("nonblocking", re.compile(r"\bEXPLORA_NONBLOCKING\b")))


# --------------------------------------------------------------------------
# Lexical helpers.

def blank_directives(code: str) -> str:
    """Blanks preprocessor lines (plus backslash continuations) so macro
    definitions and conditional-compilation markers never look like code.
    Both branches of #if/#else blocks stay visible - deliberate: facts
    must hold for every build configuration."""
    lines = code.split("\n")
    in_directive = False
    for i, line in enumerate(lines):
        if in_directive or line.lstrip().startswith("#"):
            in_directive = line.rstrip().endswith("\\")
            lines[i] = " " * len(line)
        else:
            in_directive = False
    return "\n".join(lines)


def match_paren(code: str, i: int, open_ch: str, close_ch: str) -> int:
    """Index of the bracket matching code[i] (== open_ch), or -1."""
    depth = 0
    n = len(code)
    while i < n:
        c = code[i]
        if c == open_ch:
            depth += 1
        elif c == close_ch:
            depth -= 1
            if depth == 0:
                return i
        i += 1
    return -1


def blank_contract_macros(code: str) -> str:
    """Blanks every EXPLORA_EXPECTS/ENSURES/ASSERT/AUDIT(...) span."""
    out = list(code)
    for m in CONTRACT_MACRO.finditer(code):
        close = match_paren(code, m.end() - 1, "(", ")")
        if close == -1:
            continue
        for i in range(m.start(), close + 1):
            if out[i] != "\n":
                out[i] = " "
    return "".join(out)


def skip_ws(code: str, i: int) -> int:
    n = len(code)
    while i < n and code[i] in " \t\n\r":
        i += 1
    return i


def scope_spans(code: str) -> list[tuple[int, int, str]]:
    """(open, close, name) for every named namespace/class/struct brace
    pair; anonymous namespaces get name ""."""
    spans: list[tuple[int, int, str]] = []
    stack: list[tuple[int, str | None]] = []
    last_boundary = -1
    for i, c in enumerate(code):
        if c == "{":
            seg = code[last_boundary + 1:i]
            name: str | None = None
            m = SCOPE_NS.search(seg)
            if m:
                name = m.group(1)
            elif SCOPE_NS_ANON.search(seg):
                name = ""
            else:
                m = SCOPE_CLS.search(seg)
                if m and not ENUM_TAIL.search(seg):
                    name = m.group(1)
            stack.append((i, name))
            last_boundary = i
        elif c == "}":
            if stack:
                open_i, name = stack.pop()
                if name is not None:
                    spans.append((open_i, i, name))
            last_boundary = i
        elif c == ";":
            last_boundary = i
    return spans


def enclosing_scope(spans: list[tuple[int, int, str]], pos: int) -> list[str]:
    return [name for open_i, close_i, name in sorted(spans)
            if open_i < pos < close_i and name]


# --------------------------------------------------------------------------
# Function-definition extraction.

def scan_ctor_init(code: str, i: int) -> tuple[str, int] | None:
    """Parses a constructor initializer list starting after the ':';
    returns ("def", body_open) on success."""
    n = len(code)
    while True:
        i = skip_ws(code, i)
        m = re.match(r"~?[A-Za-z_]\w*(?:\s*::\s*[A-Za-z_]\w*)*", code[i:])
        if not m:
            return None
        i += m.end()
        i = skip_ws(code, i)
        if i < n and code[i] == "<":  # templated base initializer
            depth = 0
            while i < n:
                if code[i] == "<":
                    depth += 1
                elif code[i] == ">":
                    depth -= 1
                    if depth == 0:
                        i += 1
                        break
                i += 1
            i = skip_ws(code, i)
        if i >= n or code[i] not in "({":
            return None
        close = match_paren(code, i, code[i], ")" if code[i] == "(" else "}")
        if close == -1:
            return None
        i = skip_ws(code, close + 1)
        if code.startswith("...", i):
            i = skip_ws(code, i + 3)
        if i < n and code[i] == ",":
            i += 1
            continue
        if i < n and code[i] == "{":
            return ("def", i)
        return None


TAIL_TOKENS = frozenset(
    ["const", "noexcept", "override", "final", "mutable", "volatile",
     "throw", "try"])


def scan_tail(code: str, i: int) -> tuple[str, int] | None:
    """Classifies what follows a candidate's parameter list: ("def",
    body_open) for a definition, ("decl", pos) for a declaration, None
    for neither (expression context)."""
    n = len(code)
    while True:
        i = skip_ws(code, i)
        if i >= n:
            return None
        c = code[i]
        if c == "{":
            return ("def", i)
        if c in ";,)":
            return ("decl", i)
        if c == "=":  # = default / = delete / = 0
            return ("decl", i)
        if code.startswith("[[", i):
            j = code.find("]]", i)
            if j == -1:
                return None
            i = j + 2
            continue
        if code.startswith("->", i):
            depth = 0
            while i < n:
                c = code[i]
                if c == "(":
                    depth += 1
                elif c == ")":
                    depth -= 1
                elif depth == 0 and c in "{;":
                    break
                i += 1
            continue
        if c == ":" and not code.startswith("::", i):
            return scan_ctor_init(code, i + 1)
        m = WORD.match(code, i)
        if m:
            if m.group(0) not in TAIL_TOKENS:
                return None
            i = m.end()
            i = skip_ws(code, i)
            if i < n and code[i] == "(":
                close = match_paren(code, i, "(", ")")
                if close == -1:
                    return None
                i = close + 1
            continue
        if c == "&":
            i += 1
            continue
        return None


class Func:
    """One extracted function definition."""

    __slots__ = ("qname", "simple", "rel", "line", "annotation",
                 "body_span", "sinks", "calls", "facts", "resolved")

    def __init__(self, qname: str, rel: str, line: int,
                 annotation: str | None, body_span: tuple[int, int]):
        self.qname = qname
        self.simple = qname.rsplit("::", 1)[-1]
        self.rel = rel
        self.line = line
        self.annotation = annotation
        self.body_span = body_span
        self.sinks: list[tuple[str, str, int, str]] = []  # fact,rule,line,snip
        self.calls: list[tuple[str, str, int]] = []  # simple, chain, line
        self.facts: set[str] = set()
        self.resolved: list[tuple[list["Func"], int]] = []


def hotpath_waived(raw_lines: list[str], lineno: int) -> str | None:
    """Reason text when `lineno` carries (or sits under a comment run
    carrying) a reasoned hotpath-ok marker, else None."""
    def reason(ln: int) -> str | None:
        if 1 <= ln <= len(raw_lines):
            m = HOTPATH_OK.search(raw_lines[ln - 1])
            if m and m.group(1):
                return m.group(1).strip()
        return None

    r = reason(lineno)
    if r:
        return r
    ln = lineno - 1
    while ln >= 1 and raw_lines[ln - 1].lstrip().startswith("//"):
        r = reason(ln)
        if r:
            return r
        ln -= 1
    return None


def parse_file(rel: str, raw: str) -> tuple[list[Func], list, list]:
    """Extracts definitions, sinks, calls and waiver records from one
    translation unit. Returns (funcs, waivers, waiver_findings)."""
    raw_lines = raw.splitlines()
    code = blank_contract_macros(
        blank_directives(strip_comments_and_strings(raw)))
    spans = scope_spans(code)

    waivers = []
    waiver_findings = []
    for ln, line in enumerate(raw_lines, start=1):
        if HOTPATH_MARK.search(line):
            m = HOTPATH_OK.search(line)
            if m and m.group(1):
                waivers.append((rel, ln, m.group(1).strip()))
            else:
                waiver_findings.append(
                    (rel, ln, "waiver-missing-reason",
                     "hotpath-ok marker without a reason"))

    funcs: list[Func] = []
    last_body_end = -1
    for m in FUNC_NAME.finditer(code):
        if m.start() < last_body_end:
            continue  # nested inside an accepted body (local struct etc.)
        name = re.sub(r"\s+", "", m.group(1))
        simple = name.rsplit("::", 1)[-1]
        if simple in KEYWORDS or simple.lstrip("~") in KEYWORDS:
            continue
        p = m.start() - 1
        while p >= 0 and code[p] in " \t\n\r":
            p -= 1
        if p >= 0 and (code[p] == "." or
                       (code[p] == ">" and p >= 1 and code[p - 1] == "-")):
            continue  # member access: a call, not a definition
        open_paren = code.index("(", m.end(1))
        close_paren = match_paren(code, open_paren, "(", ")")
        if close_paren == -1:
            continue
        tail = scan_tail(code, close_paren + 1)
        if not tail or tail[0] != "def":
            continue
        body_open = tail[1]
        body_close = match_paren(code, body_open, "{", "}")
        if body_close == -1:
            continue
        seg_start = max(code.rfind(";", 0, m.start()),
                        code.rfind("{", 0, m.start()),
                        code.rfind("}", 0, m.start()))
        seg = code[seg_start + 1:m.start()]
        annotation = None
        for tier, pattern in ANNOTATIONS:
            if pattern.search(seg):
                annotation = tier
                break
        scope = enclosing_scope(spans, m.start())
        qname = "::".join(scope + [name])
        func = Func(qname, rel, line_of(code, m.start()), annotation,
                    (body_open, body_close))
        funcs.append(func)
        last_body_end = body_close

    for func in funcs:
        body_open, body_close = func.body_span
        body = code[body_open + 1:body_close]

        for fact, rule, pattern in SINKS:
            for sm in pattern.finditer(body):
                lineno = line_of(code, body_open + 1 + sm.start())
                if hotpath_waived(raw_lines, lineno):
                    continue
                snippet = sm.group(0).strip()
                func.sinks.append((fact, rule, lineno, snippet))

        for cm in CALL.finditer(body):
            chain = re.sub(r"\s+", "", cm.group(1))
            simple = chain.rsplit("::", 1)[-1]
            if simple in KEYWORDS or simple.lstrip("~") in KEYWORDS:
                continue
            if chain.startswith("std::"):
                continue
            p = cm.start() - 1
            while p >= 0 and body[p] in " \t\n\r":
                p -= 1
            is_member = p >= 0 and (
                body[p] == "." or
                (body[p] == ">" and p >= 1 and body[p - 1] == "-"))
            if is_member and simple in MEMBER_IGNORE:
                continue
            lineno = line_of(code, body_open + 1 + cm.start())
            if hotpath_waived(raw_lines, lineno):
                continue
            func.calls.append((simple, chain, lineno))

    return funcs, waivers, waiver_findings


# --------------------------------------------------------------------------
# Call resolution and fact propagation.

def resolve_call(chain: str, caller: Func, name_map: dict[str, list[Func]]
                 ) -> list[Func]:
    """Definition candidates for one call site: simple-name lookup,
    narrowed by qualified suffix (plain and constructor form), then by
    longest shared scope with the caller. The surviving set is a
    conservative union - any candidate's facts count."""
    simple = chain.rsplit("::", 1)[-1]
    cands = name_map.get(simple, [])
    if not cands:
        return []
    if "::" in chain:
        by_suffix = [f for f in cands
                     if f.qname == chain or f.qname.endswith("::" + chain)
                     or f.qname.endswith("::" + chain + "::" + simple)
                     or f.qname == chain + "::" + simple]
        if by_suffix:
            cands = by_suffix
    if len(cands) > 1:
        caller_parts = caller.qname.split("::")

        def shared(f: Func) -> int:
            parts = f.qname.split("::")
            n = 0
            while (n < len(parts) - 1 and n < len(caller_parts) - 1
                   and parts[n] == caller_parts[n]):
                n += 1
            return n

        best = max(shared(f) for f in cands)
        cands = [f for f in cands if shared(f) == best]
    return cands


def propagate(funcs: list[Func]) -> None:
    """Seeds each function's facts from its sinks and iterates the
    call-graph transfer to a fixed point. Annotated callees contribute
    only their BARRIER set (their own contract is checked separately)."""
    name_map: dict[str, list[Func]] = {}
    for f in funcs:
        name_map.setdefault(f.simple, []).append(f)
    for f in funcs:
        f.facts = {fact for fact, _, _, _ in f.sinks}
        f.resolved = [(resolve_call(chain, f, name_map), lineno)
                      for _, chain, lineno in f.calls]
    changed = True
    while changed:
        changed = False
        for f in funcs:
            new = set(f.facts)
            for cands, _ in f.resolved:
                for c in cands:
                    new |= (BARRIER[c.annotation] if c.annotation
                            else c.facts)
            if new != f.facts:
                f.facts = new
                changed = True


def find_chain(root: Func, fact: str) -> str:
    """Shortest offending call chain from an annotated root to a sink
    (or to a NONBLOCKING barrier) carrying `fact`, rendered for the
    finding message."""
    queue: list[tuple[Func, list[Func]]] = [(root, [root])]
    seen = {id(root)}
    while queue:
        f, path = queue.pop(0)
        for sink_fact, rule, lineno, snippet in f.sinks:
            if sink_fact == fact:
                names = " -> ".join(p.qname for p in path)
                return (f"{names} reaches {fact} "
                        f"[{rule}] '{snippet}' at {f.rel}:{lineno}")
        for cands, lineno in f.resolved:
            for c in cands:
                if c.annotation:
                    if fact in BARRIER[c.annotation]:
                        names = " -> ".join(p.qname for p in path)
                        return (f"{names} -> {c.qname} "
                                f"(NONBLOCKING callee may {fact}) "
                                f"at {f.rel}:{lineno}")
                elif fact in c.facts and id(c) not in seen:
                    seen.add(id(c))
                    queue.append((c, path + [c]))
    return f"{root.qname} reaches {fact} (chain reconstruction failed)"


def analyze_realtime(files: dict[str, str]) -> tuple[list[Func], list, list]:
    """Runs Part A over {relpath: raw text}. Returns (funcs, findings,
    waivers); findings are (rel, line, rule, snippet) tuples."""
    funcs: list[Func] = []
    waivers: list[tuple[str, int, str]] = []
    findings: list[tuple[str, int, str, str]] = []
    for rel in sorted(files):
        f, w, wf = parse_file(rel, files[rel])
        funcs.extend(f)
        waivers.extend(w)
        findings.extend(wf)
    propagate(funcs)
    for f in funcs:
        if not f.annotation:
            continue
        for fact in sorted(f.facts & FORBIDDEN[f.annotation]):
            rule = f"{f.annotation}-{fact.lower()}"
            findings.append((f.rel, f.line, rule, find_chain(f, fact)))
    findings.sort(key=lambda t: (t[0], t[1], t[2]))
    return funcs, findings, waivers


# --------------------------------------------------------------------------
# Part B: layering.

def dag_acyclic(modules: dict[str, set[str]]) -> bool:
    """Kahn's algorithm over the declared allow-sets."""
    deps = {m: set(d) & set(modules) for m, d in modules.items()}
    done: set[str] = set()
    while True:
        ready = {m for m, d in deps.items() if m not in done and d <= done}
        if not ready:
            return len(done) == len(deps)
        done |= ready


def check_layering(files: dict[str, str],
                   modules: dict[str, set[str]] = MODULES
                   ) -> tuple[list, list]:
    """Checks each src/<module>/ file's quoted includes against the
    declared DAG. Returns (findings, edges) where edges is the observed
    module-dependency list for the JSON report."""
    findings: list[tuple[str, int, str, str]] = []
    edges: set[tuple[str, str]] = set()
    for rel in sorted(files):
        parts = pathlib.PurePosixPath(rel).parts
        if len(parts) < 3 or parts[0] != "src":
            continue
        module = parts[1]
        if module not in modules:
            findings.append(
                (rel, 1, "layer-unknown-module",
                 f"module '{module}' is not declared in the layering DAG"))
            continue
        allowed = modules[module] | {module}
        for lineno, line in enumerate(files[rel].splitlines(), start=1):
            m = INCLUDE.match(line)
            if not m:
                continue
            target = m.group(1).split("/")[0]
            if target not in modules:
                continue  # project-relative non-module include
            if target != module:
                edges.add((module, target))
            if target not in allowed:
                findings.append(
                    (rel, lineno, "layer-back-edge",
                     f'#include "{m.group(1)}": {module} may not depend '
                     f"on {target} (allowed: "
                     f"{', '.join(sorted(allowed - {module})) or 'none'})"))
    return findings, sorted(edges)


# --------------------------------------------------------------------------
# Drivers.

def read_sources(root: pathlib.Path) -> dict[str, str]:
    files = lintlib.collect_sources(root, scan_dirs=("src",))
    return {p.relative_to(root).as_posix(): p.read_text(encoding="utf-8")
            for p in files}


def write_json_report(path: pathlib.Path, funcs: list[Func],
                      rt_findings: list, waivers: list,
                      layer_findings: list, edges: list) -> None:
    report = {
        "realtime": {
            "functions": len(funcs),
            "annotated": [
                {"qname": f.qname, "file": f.rel, "line": f.line,
                 "tier": f.annotation, "facts": sorted(f.facts)}
                for f in funcs if f.annotation],
            "violations": [
                {"file": rel, "line": line, "rule": rule, "detail": snippet}
                for rel, line, rule, snippet in rt_findings],
            "waivers": [
                {"file": rel, "line": line, "reason": reason}
                for rel, line, reason in waivers],
        },
        "layering": {
            "modules": {m: sorted(d) for m, d in sorted(MODULES.items())},
            "observed_edges": [list(e) for e in edges],
            "violations": [
                {"file": rel, "line": line, "rule": rule, "detail": snippet}
                for rel, line, rule, snippet in layer_findings],
        },
    }
    path.write_text(json.dumps(report, indent=2, sort_keys=True) + "\n",
                    encoding="utf-8")


def run_lint(root: pathlib.Path, part: str,
             json_path: pathlib.Path | None) -> int:
    files = read_sources(root)
    if not files:
        return lintlib.no_sources_error("lint_hotpath", root)
    if not dag_acyclic(MODULES):
        print("lint_hotpath: declared layering DAG is cyclic",
              file=sys.stderr)
        return 2
    funcs: list[Func] = []
    rt_findings: list = []
    waivers: list = []
    layer_findings: list = []
    edges: list = []
    if part in ("realtime", "all"):
        funcs, rt_findings, waivers = analyze_realtime(files)
    if part in ("layering", "all"):
        layer_findings, edges = check_layering(files)
    if json_path is not None:
        write_json_report(json_path, funcs, rt_findings, waivers,
                          layer_findings, edges)
    return lintlib.report_findings(
        "lint_hotpath", rt_findings + layer_findings, len(files),
        ["waive a steady-state-safe sink or call with: "
         "// hotpath-ok: <reason>  (reason mandatory)",
         "layering back-edges have no waiver: move the dependency or "
         "change the declared DAG in tools/lint_hotpath.py"])


# --------------------------------------------------------------------------
# Self-test corpora.

BAD_REALTIME = {"src/app/bad.cpp": """
namespace app {
void* grab() { return malloc(32); }
bool deep() { return grab() != nullptr; }
EXPLORA_REALTIME int hot_chain() { return deep() ? 1 : 0; }
EXPLORA_REALTIME int hot_direct() { int* p = new int(3); return *p; }
EXPLORA_NONBLOCKING void stage() {
  common::MutexLock lock(mu_);
}
EXPLORA_REALTIME void hot_io() { printf("x"); }
EXPLORA_REALTIME void hot_throw(int v) { if (v < 0) throw v; }
EXPLORA_REALTIME void hot_spin(Queue& q, Item item) {
  while (!q.try_push(item)) {
  }
}
EXPLORA_REALTIME void reasonless(std::vector<int>& out) {
  out.push_back(1);  // hotpath-ok:
}
}
"""}

GOOD_REALTIME = {"src/app/good.cpp": """
namespace app {
int helper(int v) { return v + 1; }
EXPLORA_REALTIME int hot(int v) { return helper(v); }
EXPLORA_REALTIME void hot_waived(std::vector<int>& out) {
  // hotpath-ok: scratch keeps capacity across iterations
  out.push_back(1);
}
EXPLORA_NONBLOCKING std::vector<int> staging(std::size_t n) {
  std::vector<int> rows(n);
  rows.resize(n * 2);
  return rows;
}
EXPLORA_REALTIME double helper_rt(double x) { return x * 2.0; }
EXPLORA_REALTIME double fast(double x) { return helper_rt(x); }
EXPLORA_NONBLOCKING void raise_max(Cell& cell, long seen) {
  long cur = cell.load();
  // hotpath-ok: bounded monotone CAS - every retry means another writer
  // already raised the value past us
  while (!cell.compare_exchange_weak(cur, seen)) {
    if (cur >= seen) return;
  }
}
struct Widget {
  EXPLORA_REALTIME int method(int v) const { return free_fn(v); }
};
int free_fn(int v) { return v - 1; }
}
"""}

BAD_LAYERING = {
    "src/netsim/bad.cpp":
        '#include "xai/shap.hpp"\n#include "common/a.hpp"\n',
    "src/zeta/odd.cpp": '#include "common/a.hpp"\n',
}

GOOD_LAYERING = {
    "src/xai/ok.cpp": ('#include "ml/nn.hpp"\n#include "common/a.hpp"\n'
                       '#include "xai/other.hpp"\n#include <vector>\n'),
    "src/common/ok.hpp": '#include "common/base.hpp"\n',
}


def self_test() -> int:
    _, bad_rt, _ = analyze_realtime(BAD_REALTIME)
    good_funcs, good_rt, good_waivers = analyze_realtime(GOOD_REALTIME)
    bad_layer, _ = check_layering(BAD_LAYERING)
    good_layer, _ = check_layering(GOOD_LAYERING)

    bad_rules = sorted(rule for _, _, rule, _ in bad_rt)
    ok = bad_rules == ["nonblocking-locks", "realtime-allocates",
                       "realtime-allocates", "realtime-allocates",
                       "realtime-blocks", "realtime-spins",
                       "realtime-throws", "waiver-missing-reason"]
    # The two-hop chain must be spelled out in the finding text.
    chain = [s for _, _, r, s in bad_rt
             if r == "realtime-allocates" and "hot_chain" in s]
    ok = ok and len(chain) == 1 and "deep" in chain[0] \
        and "grab" in chain[0] and "malloc" in chain[0]
    by_name = {f.qname: f for f in good_funcs}
    ok = ok and by_name["app::Widget::method"].annotation == "realtime"
    ok = ok and by_name["app::staging"].facts == {ALLOCATES}
    ok = ok and not good_rt
    ok = ok and len(good_waivers) == 2
    ok = ok and sorted(r for _, _, r, _ in bad_layer) == [
        "layer-back-edge", "layer-unknown-module"]
    ok = ok and not good_layer
    ok = ok and dag_acyclic(MODULES)
    ok = ok and not dag_acyclic({"a": {"b"}, "b": {"a"}})
    return lintlib.self_test_verdict(
        ok, bad_rt + bad_layer, good_rt + good_layer)


# --------------------------------------------------------------------------
# Injected-violation detection proof.

INJECTED = """\
// Injected by lint_hotpath.py --prove-detection: must trip BOTH parts.
#include "common/analysis_annotations.hpp"
#include "xai/shap.hpp"

namespace explora::netsim {

EXPLORA_REALTIME int injected_hot(int v) {
  int* leak = new int(v);
  return *leak;
}

}  // namespace explora::netsim
"""


def prove_detection(root: pathlib.Path) -> int:
    """Copies src/ to a temp tree, checks the clean copy is clean, then
    injects a realtime and a layering violation and requires both to be
    caught. Exit 0 only if detection is proven."""
    with tempfile.TemporaryDirectory() as td:
        tmp = pathlib.Path(td)
        shutil.copytree(root / "src", tmp / "src")
        clean = read_sources(tmp)
        _, rt0, _ = analyze_realtime(clean)
        layer0, _ = check_layering(clean)
        if rt0 or layer0:
            print("prove-detection: FAILED - tree not clean before "
                  "injection:")
            for rel, line, rule, snip in rt0 + layer0:
                print(f"  {rel}:{line}: [{rule}] {snip}")
            return 1
        (tmp / "src/netsim/injected_violation.cpp").write_text(
            INJECTED, encoding="utf-8")
        injected = read_sources(tmp)
        _, rt1, _ = analyze_realtime(injected)
        layer1, _ = check_layering(injected)
        rt_hit = [s for _, _, r, s in rt1
                  if r == "realtime-allocates" and "injected_hot" in s]
        layer_hit = [s for rel, _, r, s in layer1
                     if r == "layer-back-edge"
                     and "injected_violation" in rel]
        if rt_hit and layer_hit:
            print("prove-detection: ok - injected realtime violation "
                  "and layering back-edge both caught:")
            print(f"  {rt_hit[0]}")
            print(f"  {layer_hit[0]}")
            return 0
        print("prove-detection: FAILED")
        print(f"  realtime hits: {rt_hit}")
        print(f"  layering hits: {layer_hit}")
        return 1


# --------------------------------------------------------------------------
# Fixture regression (tests/lint_fixtures).

def fixture_test(fixture_dir: pathlib.Path) -> int:
    """Compares extraction over DIR/*.cpp|hpp against DIR/expected.json:
    per-function fact sets must match exactly and every expected call
    edge must resolve."""
    expected = json.loads(
        (fixture_dir / "expected.json").read_text(encoding="utf-8"))
    files = {p.name: p.read_text(encoding="utf-8")
             for p in sorted(fixture_dir.iterdir())
             if p.suffix in lintlib.EXTENSIONS}
    funcs, _, _ = analyze_realtime(files)
    by_name = {f.qname: f for f in funcs}
    errors = []
    for qname, want_facts in expected.get("facts", {}).items():
        f = by_name.get(qname)
        if f is None:
            errors.append(f"function not extracted: {qname}")
        elif sorted(f.facts) != sorted(want_facts):
            errors.append(f"{qname}: facts {sorted(f.facts)} != "
                          f"expected {sorted(want_facts)}")
    for caller, callee in expected.get("edges", []):
        f = by_name.get(caller)
        if f is None:
            errors.append(f"edge source not extracted: {caller}")
            continue
        targets = {c.qname for cands, _ in f.resolved for c in cands}
        if callee not in targets:
            errors.append(f"edge {caller} -> {callee} not resolved "
                          f"(resolved: {sorted(targets)})")
    for qname, tier in expected.get("annotations", {}).items():
        f = by_name.get(qname)
        if f is None:
            errors.append(f"function not extracted: {qname}")
        elif f.annotation != tier:
            errors.append(f"{qname}: annotation {f.annotation!r} != "
                          f"expected {tier!r}")
    if errors:
        print(f"fixture-test FAILED ({len(errors)} mismatch(es)):")
        for e in errors:
            print(f"  {e}")
        return 1
    n = (len(expected.get("facts", {})) + len(expected.get("edges", []))
         + len(expected.get("annotations", {})))
    print(f"fixture-test ok ({len(funcs)} functions, {n} assertions)")
    return 0


def main() -> int:
    parser = lintlib.standard_parser(__doc__)
    parser.add_argument("--part", choices=["realtime", "layering", "all"],
                        default="all", help="which analysis to run")
    parser.add_argument("--json", type=pathlib.Path, default=None,
                        metavar="PATH", help="write a JSON report")
    parser.add_argument("--prove-detection", action="store_true",
                        help="inject violations into a copy of src/ and "
                             "require both parts to catch them")
    parser.add_argument("--fixture-test", type=pathlib.Path, default=None,
                        metavar="DIR",
                        help="extraction regression against DIR/expected.json")
    args = parser.parse_args()
    if args.self_test:
        return self_test()
    if args.fixture_test is not None:
        return fixture_test(args.fixture_test.resolve())
    if args.prove_detection:
        return prove_detection(args.root.resolve())
    return run_lint(args.root.resolve(), args.part, args.json)


if __name__ == "__main__":
    sys.exit(main())
