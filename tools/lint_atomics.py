#!/usr/bin/env python3
"""Cross-TU atomics discipline lint for the EXPLORA C++ sources.

The lock-free core (DESIGN.md SS14) is small by policy: every use of
std::atomic / interleave::Atomic / compiler atomic intrinsics must live
in an explicitly allowlisted file, and every atomic operation must spell
out its memory_order. On top of those local rules, the lint builds a
cross-translation-unit table of atomic variables (declarations in
headers, operations in any allowlisted TU, keyed by variable name) and
checks ordering PAIRING per variable:

  atomic-outside-allowlist  atomic machinery in a file not on the list
  atomic-implicit-order     an op relying on the seq_cst default
  atomic-relaxed-publish    a relaxed store to a variable that is read
                            with acquire somewhere - the acquire reader
                            documents a publication protocol the store
                            does not honor
  atomic-unpaired-release   release stores with no acquire-side reader
                            anywhere: the release fence orders nothing
  atomic-relaxed-unreasoned a variable used only with relaxed ordering
                            must say WHY relaxed is sound, via a marker
                            on its declaration
  atomics-marker-unknown    a marker category outside the vocabulary

The reasoning marker grammar is

  // atomics-ok: <category> (<free-text reason>)

on the declaration line or the comment run directly above it; the same
marker on an operation line waives the pairing rules at that single site
(e.g. pre-publication-init for a relaxed store in a constructor).
Categories are a closed vocabulary (see VOCABULARY) so reasons stay
comparable across the tree.

The per-name variable table is deliberately type-blind: distinct
variables sharing a name are merged conservatively (any acquire reader
anywhere makes every relaxed store to that name suspect). That is the
point - cross-TU pairing cannot be checked per-file, and names of
atomics in this codebase are unique or deliberately aligned.

Modes: --json PATH (machine-readable report), --self-test (embedded
corpora), --prove-detection (copies src/ to a temp tree, injects a
relaxed-publish ordering bug and an unapproved atomic, and proves both
are caught while the clean copy stays clean), --fixture-test DIR
(regression against DIR/expected.json).

Exit status: 0 = clean, 1 = findings, 2 = usage error.
"""

from __future__ import annotations

import json
import pathlib
import re
import shutil
import sys
import tempfile

import lintlib
from lintlib import line_of, strip_comments_and_strings

# --------------------------------------------------------------------------
# Policy tables.

#: Files allowed to contain atomic machinery, with the reason each earns
#: its slot. Everything else under src/ must use the abstractions these
#: files export (queues, counters, scopes) instead of raw atomics.
ALLOWLIST: dict[str, str] = {
    "src/common/contracts.hpp":
        "single-writer scope guard + contract-handler gate",
    "src/common/interleave.hpp":
        "the model-check Atomic shim itself (instrumentation layer)",
    "src/common/interleave.cpp":
        "model-check scheduler internals",
    "src/common/lockorder.cpp": "lock-diagnostics counters",
    "src/common/log.cpp": "log-level gate flag",
    "src/common/parallel.cpp": "work-claim ticket for the chunked pool",
    "src/common/telemetry.hpp":
        "relaxed counter/gauge/histogram/span folds",
    "src/common/telemetry.cpp": "histogram bucket folds",
    "src/common/wsdeque.hpp":
        "reserved: Chase-Lev work-stealing deque (ROADMAP item 2)",
    "src/common/wsdeque.cpp":
        "reserved: Chase-Lev work-stealing deque (ROADMAP item 2)",
    "src/explora/explain_service.hpp": "explanation id allocator",
    "src/explora/explain_service.cpp": "explanation id allocator",
    "src/ml/gemm.cpp": "SIMD backend dispatch slot",
    "src/xai/serving.hpp": "bounded MPMC request queue (Vyukov ring)",
    "src/xai/serving.cpp": "bounded MPMC request queue (Vyukov ring)",
    "src/xai/shap.hpp": "model-eval tally",
    "src/xai/shap.cpp": "model-eval tally",
}

#: Closed set of reasoning-marker categories. Adding a category here is a
#: review decision, not a local edit.
VOCABULARY = frozenset([
    "commutative-counter",   # order-free add fold; readers tolerate lag
    "monotone-cas",          # raise/lower-only CAS fold; retry is bounded
    "gate-flag",             # on/off toggle that publishes no data
    "pre-publication-init",  # store before any reader thread can exist
    "approx-snapshot",       # racy read of a best-effort statistic
    "dispatch-slot",         # any racing reader sees a valid value
    "id-allocator",          # uniqueness only; ids imply no ordering
    "claim-ticket",          # slot claim; a separate release publishes
    "owner-handoff",         # ownership transfer documented at the site
    "bounded-retry",         # retry count bounded by concurrent writers
    "model-check-shim",      # the interleave instrumentation layer
])

#: Any atomic machinery at all - the allowlist gate.
ATOMIC_TOKEN = re.compile(
    r"\bstd\s*::\s*atomic(?:_(?:flag|ref|thread_fence|signal_fence))?\b"
    r"|\binterleave\s*::\s*Atomic\b"
    r"|\b__atomic_\w+|\b__sync_\w+")

#: Member operations whose memory_order argument we audit. clear() and
#: test_and_set() are omitted: `.clear(` is overwhelmingly a container op.
OP = re.compile(
    r"(?:\.|->)\s*(load|store|exchange"
    r"|compare_exchange_weak|compare_exchange_strong"
    r"|fetch_add|fetch_sub|fetch_and|fetch_or|fetch_xor)\s*\(")

#: Ops that are unambiguously atomic regardless of receiver type; for
#: load/store/exchange the receiver must resolve to a known atomic
#: variable (keeps `cfg.load(path)`-style methods out of scope).
UNAMBIGUOUS_OPS = frozenset([
    "compare_exchange_weak", "compare_exchange_strong",
    "fetch_add", "fetch_sub", "fetch_and", "fetch_or", "fetch_xor",
])

ORDER_TOKEN = re.compile(
    r"\bmemory_order(?:_|\s*::\s*)"
    r"(relaxed|consume|acquire|release|acq_rel|seq_cst)\b")

#: Identifiers that forward a memory_order parameter (the interleave
#: shim, wrappers taking an `order` argument): explicit by construction.
FORWARDED_ORDER = re.compile(r"\b(?:order|success|failure|mo)\b")

#: Declaration heads: the atomic template whose variable name follows the
#: closing angle bracket (possibly through `[]>`, `&`, `*` for
#: unique_ptr-of-array and reference parameters).
DECL_TOKEN = re.compile(
    r"\b(?:std\s*::\s*atomic|(?:[\w:]+\s*::\s*)?Atomic)\s*<")

ATOMICS_OK = re.compile(r"//\s*atomics-ok:\s*([\w-]+)(?:\s*\(([^)]*)\))?")

LOAD_ACQ = frozenset(["acquire", "acq_rel", "seq_cst", "consume"])
STORE_REL = frozenset(["release", "acq_rel", "seq_cst"])


# --------------------------------------------------------------------------
# Lexical helpers.

def match_bracket(code: str, i: int, open_ch: str, close_ch: str) -> int:
    """Index of the bracket matching code[i] (== open_ch), or -1."""
    depth = 0
    n = len(code)
    while i < n:
        c = code[i]
        if c == open_ch:
            depth += 1
        elif c == close_ch:
            depth -= 1
            if depth == 0:
                return i
        i += 1
    return -1


def marker_at(raw_lines: list[str], lineno: int) -> str | None:
    """Category of an atomics-ok marker on `lineno` or in the comment run
    directly above it, else None."""
    def category(ln: int) -> str | None:
        if 1 <= ln <= len(raw_lines):
            m = ATOMICS_OK.search(raw_lines[ln - 1])
            if m:
                return m.group(1)
        return None

    cat = category(lineno)
    if cat:
        return cat
    ln = lineno - 1
    while ln >= 1 and raw_lines[ln - 1].lstrip().startswith("//"):
        cat = category(ln)
        if cat:
            return cat
        ln -= 1
    return None


def receiver_before(code: str, dot: int) -> str | None:
    """Identifier of the object an op is invoked on, scanning back from
    the `.`/`->` at `dot` through whitespace and one `[...]` index. A
    `)` receiver (call expression) returns None."""
    j = dot - 1
    if code[dot] == ">":  # the `>` of `->`
        j = dot - 2
    while j >= 0 and code[j] in " \t\n\r":
        j -= 1
    if j >= 0 and code[j] == "]":
        depth = 0
        while j >= 0:
            if code[j] == "]":
                depth += 1
            elif code[j] == "[":
                depth -= 1
                if depth == 0:
                    j -= 1
                    break
            j -= 1
        while j >= 0 and code[j] in " \t\n\r":
            j -= 1
    if j >= 0 and code[j] == ")":
        return None
    end = j + 1
    while j >= 0 and (code[j].isalnum() or code[j] == "_"):
        j -= 1
    name = code[j + 1:end]
    return name or None


def classify_order(op: str, args: str) -> tuple[str | None, str | None]:
    """(store_order, load_order) for one op given its argument text.
    Orders are the lexical memory_order suffixes, "forwarded" for a
    forwarded order parameter, or None when the op relies on the
    default. CAS success order governs both sides of the RMW."""
    orders = ORDER_TOKEN.findall(args)
    explicit: str | None
    if orders:
        explicit = orders[0]
    elif FORWARDED_ORDER.search(args):
        explicit = "forwarded"
    else:
        explicit = None
    if op == "load":
        return (None, explicit)
    if op == "store":
        return (explicit, None)
    return (explicit, explicit)  # exchange / CAS / fetch_* are RMWs


# --------------------------------------------------------------------------
# Data model.

class Var:
    """One atomic variable name, merged across every allowlisted TU."""

    __slots__ = ("name", "decls", "ops")

    def __init__(self, name: str):
        self.name = name
        self.decls: list[tuple[str, int, str | None]] = []  # rel, line, marker
        # rel, line, op, store_order, load_order, site_marker
        self.ops: list[tuple[str, int, str, str | None, str | None,
                             str | None]] = []

    def orders(self) -> set[str]:
        out: set[str] = set()
        for _, _, _, s, l, _ in self.ops:
            if s is not None:
                out.add(s)
            if l is not None:
                out.add(l)
        return out

    def has_acquire_reader(self) -> bool:
        return any(l in LOAD_ACQ for _, _, _, _, l, _ in self.ops if l)

    def has_release_writer(self) -> bool:
        return any(s in STORE_REL for _, _, _, s, _, _ in self.ops if s)


# --------------------------------------------------------------------------
# Analysis.

def scan_decls(rel: str, code: str, raw_lines: list[str],
               variables: dict[str, Var]) -> None:
    """Registers every atomic variable declared in one allowlisted file:
    `std::atomic<T> name`, `interleave::Atomic<T> name`, atomics behind
    `unique_ptr<...[]>`, and reference parameters."""
    for m in DECL_TOKEN.finditer(code):
        open_angle = code.index("<", m.start())
        close = match_bracket(code, open_angle, "<", ">")
        if close == -1:
            continue
        i = close + 1
        n = len(code)
        while i < n and code[i] in " \t\n\r[]>&*":
            i += 1
        name_m = re.match(r"[A-Za-z_]\w*", code[i:])
        if not name_m:
            continue
        name = name_m.group(0)
        j = i + name_m.end()
        while j < n and code[j] in " \t\n\r":
            j += 1
        # `name(` is a function declarator, not a variable.
        if j < n and code[j] == "(":
            continue
        if j < n and code[j] not in "{=;,)[":
            continue
        lineno = line_of(code, i)
        var = variables.setdefault(name, Var(name))
        var.decls.append((rel, lineno, marker_at(raw_lines, lineno)))


def scan_ops(rel: str, code: str, raw_lines: list[str],
             variables: dict[str, Var],
             findings: list[tuple[str, int, str, str]]) -> None:
    """Records every audited atomic op in one allowlisted file and flags
    implicit-order uses on the spot."""
    for m in OP.finditer(code):
        op = m.group(1)
        dot = m.start()
        if code[dot] == "-":
            dot += 1  # receiver_before wants the `>` of `->`
        receiver = receiver_before(code, dot)
        known = receiver is not None and receiver in variables
        if not known and op not in UNAMBIGUOUS_OPS and receiver is not None:
            continue  # some non-atomic `.load(path)`-style method
        open_paren = code.index("(", m.end(1))
        close = match_bracket(code, open_paren, "(", ")")
        args = code[open_paren + 1:close] if close != -1 else ""
        store_order, load_order = classify_order(op, args)
        lineno = line_of(code, m.start())
        if store_order is None and load_order is None:
            findings.append(
                (rel, lineno, "atomic-implicit-order",
                 f".{op}(...) relies on the seq_cst default; spell out "
                 f"the memory_order"))
            continue
        if known:
            assert receiver is not None
            variables[receiver].ops.append(
                (rel, lineno, op, store_order, load_order,
                 marker_at(raw_lines, lineno)))


def analyze(files: dict[str, str], allowlist: dict[str, str]
            ) -> tuple[dict[str, Var], list[tuple[str, int, str, str]],
                       list[tuple[str, int, str, str | None]]]:
    """Runs the whole lint over {relpath: raw text}. Returns
    (variables, findings, markers)."""
    findings: list[tuple[str, int, str, str]] = []
    markers: list[tuple[str, int, str, str | None]] = []
    stripped: dict[str, str] = {}
    lines: dict[str, list[str]] = {}
    for rel in sorted(files):
        raw = files[rel]
        lines[rel] = raw.splitlines()
        stripped[rel] = strip_comments_and_strings(raw)
        for ln, line in enumerate(lines[rel], start=1):
            mm = ATOMICS_OK.search(line)
            if mm:
                markers.append((rel, ln, mm.group(1), mm.group(2)))
                if mm.group(1) not in VOCABULARY:
                    findings.append(
                        (rel, ln, "atomics-marker-unknown",
                         f"category '{mm.group(1)}' is not in the "
                         f"vocabulary (see tools/lint_atomics.py)"))
        if rel not in allowlist:
            for mm in ATOMIC_TOKEN.finditer(stripped[rel]):
                findings.append(
                    (rel, line_of(stripped[rel], mm.start()),
                     "atomic-outside-allowlist",
                     f"'{mm.group(0)}' - atomics are confined to the "
                     f"allowlist in tools/lint_atomics.py; use the "
                     f"exported abstractions instead"))

    variables: dict[str, Var] = {}
    for rel in sorted(files):
        if rel in allowlist:
            scan_decls(rel, stripped[rel], lines[rel], variables)
    for rel in sorted(files):
        if rel in allowlist:
            scan_ops(rel, stripped[rel], lines[rel], variables, findings)

    for name in sorted(variables):
        var = variables[name]
        if not var.ops:
            continue
        acquire_read = var.has_acquire_reader()
        release_written = var.has_release_writer()
        if acquire_read:
            for rel, lineno, op, s, _, site in var.ops:
                if s == "relaxed" and site is None:
                    findings.append(
                        (rel, lineno, "atomic-relaxed-publish",
                         f"relaxed {op} to '{name}', which is acquire-"
                         f"read elsewhere; publish with release or mark "
                         f"the site with // atomics-ok: <category> (...)"))
        elif release_written:
            for rel, lineno, op, s, _, site in var.ops:
                if s in STORE_REL and site is None:
                    findings.append(
                        (rel, lineno, "atomic-unpaired-release",
                         f"release {op} to '{name}' but no acquire-side "
                         f"reader exists anywhere; the release orders "
                         f"nothing"))
        concrete = {o for o in var.orders() if o != "forwarded"}
        if concrete and concrete <= {"relaxed"}:
            for rel, lineno, marker in var.decls:
                if marker is None:
                    findings.append(
                        (rel, lineno, "atomic-relaxed-unreasoned",
                         f"'{name}' is used only with relaxed ordering; "
                         f"say why that is sound with // atomics-ok: "
                         f"<category> (<reason>) on the declaration"))
    findings.sort(key=lambda t: (t[0], t[1], t[2]))
    return variables, findings, markers


# --------------------------------------------------------------------------
# Drivers.

def read_sources(root: pathlib.Path) -> dict[str, str]:
    files = lintlib.collect_sources(root, scan_dirs=("src",))
    return {p.relative_to(root).as_posix(): p.read_text(encoding="utf-8")
            for p in files}


def write_json_report(path: pathlib.Path, files: dict[str, str],
                      variables: dict[str, Var], findings: list,
                      markers: list) -> None:
    report = {
        "files": len(files),
        "allowlist": dict(sorted(ALLOWLIST.items())),
        "vocabulary": sorted(VOCABULARY),
        "variables": [
            {"name": v.name,
             "decls": [{"file": rel, "line": line, "marker": marker}
                       for rel, line, marker in v.decls],
             "orders": sorted(v.orders()),
             "acquire_read": v.has_acquire_reader(),
             "release_written": v.has_release_writer(),
             "ops": len(v.ops)}
            for _, v in sorted(variables.items()) if v.ops or v.decls],
        "markers": [
            {"file": rel, "line": line, "category": cat, "reason": reason}
            for rel, line, cat, reason in markers],
        "findings": [
            {"file": rel, "line": line, "rule": rule, "detail": detail}
            for rel, line, rule, detail in findings],
    }
    path.write_text(json.dumps(report, indent=2, sort_keys=True) + "\n",
                    encoding="utf-8")


def run_lint(root: pathlib.Path, json_path: pathlib.Path | None) -> int:
    files = read_sources(root)
    if not files:
        return lintlib.no_sources_error("lint_atomics", root)
    variables, findings, markers = analyze(files, ALLOWLIST)
    if json_path is not None:
        write_json_report(json_path, files, variables, findings, markers)
    return lintlib.report_findings(
        "lint_atomics", findings, len(files),
        ["reason a deliberate site or declaration with: "
         "// atomics-ok: <category> (<reason>)",
         "categories are a closed vocabulary; extending it is an edit to "
         "tools/lint_atomics.py reviewed like any policy change",
         "atomic-outside-allowlist has no marker: move the code or earn "
         "an allowlist slot"])


# --------------------------------------------------------------------------
# Self-test corpora.

BAD_ATOMICS = {
    "src/common/wsdeque.hpp": """
namespace explora::common {
class BadDeque {
  // atomics-ok: totally-novel-category (not in the vocabulary)
  std::atomic<long> top_{0};
  std::atomic<long> bottom_{0};
  std::atomic<int> epoch_{0};
  std::atomic<int> gate_{0};
 public:
  long top() const { return top_.load(std::memory_order_acquire); }
  void bump_top(long v) { top_.store(v, std::memory_order_relaxed); }
  void close_gate() { gate_.store(1, std::memory_order_release); }
  int gate() const { return gate_.load(std::memory_order_relaxed); }
  void tick() { epoch_.fetch_add(1, std::memory_order_relaxed); }
  int peek_epoch() const { return epoch_.load(); }
};
}
""",
    "src/netsim/bad.cpp": """
namespace explora::netsim {
std::atomic<int> rogue{0};
}
""",
}

GOOD_ATOMICS = {
    "src/common/wsdeque.hpp": """
namespace explora::common {
class GoodDeque {
  std::atomic<long> top_{0};
  // atomics-ok: commutative-counter (steal tally; order-free add fold)
  std::atomic<long> steals_{0};
 public:
  long top() const { return top_.load(std::memory_order_acquire); }
  void publish_top(long v) { top_.store(v, std::memory_order_release); }
  bool claim_top(long& expected, long v) {
    return top_.compare_exchange_strong(expected, v,
                                        std::memory_order_acq_rel,
                                        std::memory_order_acquire);
  }
  void init_top(long v) {
    // atomics-ok: pre-publication-init (ctor only; no reader yet)
    top_.store(v, std::memory_order_relaxed);
  }
  void count_steal() { steals_.fetch_add(1, std::memory_order_relaxed); }
  long steals() const { return steals_.load(std::memory_order_relaxed); }
};
}
""",
    "src/common/wsdeque.cpp": """
namespace explora::common {
void forward_store(std::atomic<long>& cell, long v,
                   std::memory_order order) {
  cell.store(v, order);
}
long peek(GoodDeque& d) { return d.top(); }
}
""",
    "src/netsim/clean.cpp":
        "namespace explora::netsim {\nint plain() { return 1; }\n}\n",
}


def self_test() -> int:
    _, bad, _ = analyze(BAD_ATOMICS, ALLOWLIST)
    good_vars, good, _ = analyze(GOOD_ATOMICS, ALLOWLIST)

    bad_rules = sorted(rule for _, _, rule, _ in bad)
    ok = bad_rules == ["atomic-implicit-order", "atomic-outside-allowlist",
                       "atomic-relaxed-publish", "atomic-relaxed-unreasoned",
                       "atomic-unpaired-release", "atomics-marker-unknown"]
    by_rule = {rule: (rel, line) for rel, line, rule, _ in bad}
    ok = ok and by_rule.get("atomic-outside-allowlist", ("",))[0] == \
        "src/netsim/bad.cpp"
    ok = ok and by_rule.get("atomic-relaxed-publish", ("",))[0] == \
        "src/common/wsdeque.hpp"
    ok = ok and not good
    top = good_vars.get("top_")
    ok = ok and top is not None and top.has_acquire_reader() \
        and top.has_release_writer()
    cell = good_vars.get("cell")
    ok = ok and cell is not None and cell.orders() == {"forwarded"}
    return lintlib.self_test_verdict(ok, bad, good)


# --------------------------------------------------------------------------
# Injected-violation detection proof.

INJECTED_ORDER_BUG_HPP = """\
// Injected by lint_atomics.py --prove-detection: a relaxed store that is
// acquire-read from another TU - the classic broken publication.
namespace explora::common {
struct InjectedFlag {
  std::atomic<int> injected_ready_{0};
  void publish() { injected_ready_.store(1, std::memory_order_relaxed); }
};
}
"""

INJECTED_ORDER_BUG_CPP = """\
namespace explora::common {
int injected_consume(InjectedFlag& f) {
  return f.injected_ready_.load(std::memory_order_acquire);
}
}
"""

INJECTED_ROGUE = """\
// Injected by lint_atomics.py --prove-detection: atomic machinery in a
// module that has no allowlist slot.
namespace explora::netsim {
std::atomic<int> injected_rogue{0};
}
"""


def prove_detection(root: pathlib.Path) -> int:
    """Copies src/ to a temp tree, checks the clean copy is clean, then
    injects a cross-TU relaxed-publish ordering bug and an unapproved
    atomic and requires both to be caught."""
    with tempfile.TemporaryDirectory() as td:
        tmp = pathlib.Path(td)
        shutil.copytree(root / "src", tmp / "src")
        _, clean, _ = analyze(read_sources(tmp), ALLOWLIST)
        if clean:
            print("prove-detection: FAILED - tree not clean before "
                  "injection:")
            for rel, line, rule, detail in clean:
                print(f"  {rel}:{line}: [{rule}] {detail}")
            return 1
        (tmp / "src/common/wsdeque.hpp").write_text(
            INJECTED_ORDER_BUG_HPP, encoding="utf-8")
        (tmp / "src/common/wsdeque.cpp").write_text(
            INJECTED_ORDER_BUG_CPP, encoding="utf-8")
        (tmp / "src/netsim/injected_atomics.cpp").write_text(
            INJECTED_ROGUE, encoding="utf-8")
        _, found, _ = analyze(read_sources(tmp), ALLOWLIST)
        order_hit = [d for _, _, r, d in found
                     if r == "atomic-relaxed-publish"
                     and "injected_ready_" in d]
        rogue_hit = [d for rel, _, r, d in found
                     if r == "atomic-outside-allowlist"
                     and "injected_atomics" in rel]
        if order_hit and rogue_hit:
            print("prove-detection: ok - injected relaxed-publish order "
                  "bug and unapproved atomic both caught:")
            print(f"  {order_hit[0]}")
            print(f"  src/netsim/injected_atomics.cpp: {rogue_hit[0]}")
            return 0
        print("prove-detection: FAILED")
        print(f"  order-bug hits: {order_hit}")
        print(f"  rogue-atomic hits: {rogue_hit}")
        return 1


# --------------------------------------------------------------------------
# Fixture regression (tests/lint_fixtures/atomics).

def fixture_test(fixture_dir: pathlib.Path) -> int:
    """Compares analysis over DIR/*.cpp|hpp against DIR/expected.json.
    Files whose names start with `outside_` are treated as off-allowlist;
    everything else is allowlisted."""
    expected = json.loads(
        (fixture_dir / "expected.json").read_text(encoding="utf-8"))
    files = {p.name: p.read_text(encoding="utf-8")
             for p in sorted(fixture_dir.iterdir())
             if p.suffix in lintlib.EXTENSIONS}
    allowlist = {name: "fixture" for name in files
                 if not name.startswith("outside_")}
    variables, findings, _ = analyze(files, allowlist)
    errors = []
    got_rules = sorted(rule for _, _, rule, _ in findings)
    want_rules = sorted(expected.get("findings", []))
    if got_rules != want_rules:
        errors.append(f"findings {got_rules} != expected {want_rules}")
    for name, want in expected.get("variables", {}).items():
        var = variables.get(name)
        if var is None:
            errors.append(f"variable not tracked: {name}")
            continue
        if sorted(var.orders()) != sorted(want.get("orders", [])):
            errors.append(f"{name}: orders {sorted(var.orders())} != "
                          f"expected {sorted(want['orders'])}")
        decl_markers = sorted({m for _, _, m in var.decls if m})
        if decl_markers != sorted(want.get("markers", [])):
            errors.append(f"{name}: decl markers {decl_markers} != "
                          f"expected {sorted(want.get('markers', []))}")
    if errors:
        print(f"fixture-test FAILED ({len(errors)} mismatch(es)):")
        for e in errors:
            print(f"  {e}")
        return 1
    n = len(expected.get("variables", {})) + len(
        expected.get("findings", []))
    print(f"fixture-test ok ({len(variables)} variables, "
          f"{n} assertions)")
    return 0


def main() -> int:
    parser = lintlib.standard_parser(__doc__)
    parser.add_argument("--json", type=pathlib.Path, default=None,
                        metavar="PATH", help="write a JSON report")
    parser.add_argument("--prove-detection", action="store_true",
                        help="inject an ordering bug and an unapproved "
                             "atomic into a copy of src/ and require both "
                             "to be caught")
    parser.add_argument("--fixture-test", type=pathlib.Path, default=None,
                        metavar="DIR",
                        help="regression against DIR/expected.json")
    args = parser.parse_args()
    if args.self_test:
        return self_test()
    if args.fixture_test is not None:
        return fixture_test(args.fixture_test.resolve())
    if args.prove_detection:
        return prove_detection(args.root.resolve())
    return run_lint(args.root.resolve(), args.json)


if __name__ == "__main__":
    sys.exit(main())
