// replay — record the RIC message fabric to an `.etrace` file and explain
// it offline (DESIGN.md §13.4).
//
//   replay record --out FILE   run a live experiment with a delivery tap
//                              and persist the tick-stamped stream
//   replay replay --in FILE    feed a recorded stream into a fresh EXPLORA
//                              xApp (no simulator) and print what it saw
//   replay verify              record + replay in memory and fail unless
//                              the attribution streams are byte-identical
//   replay serve  --in FILE    serve SHAP explanations over the recorded
//                              KPM stream through an ExplainService
//
// Common options: --profile HT|LL, --traffic TRF1|TRF2, --users N,
// --decisions N, --seed S. The system is trained (or loaded from the
// artifact cache) first, exactly like explora_cli.
#include <cstdio>
#include <optional>
#include <string>

#include "common/format.hpp"
#include "common/log.hpp"
#include "common/table.hpp"
#include "harness/replay.hpp"
#include "harness/training.hpp"
#include "oran/trace.hpp"

namespace {

using namespace explora;

struct CliOptions {
  std::string command;
  core::AgentProfile profile = core::AgentProfile::kHighThroughput;
  netsim::TrafficProfile traffic = netsim::TrafficProfile::kTrf1;
  std::uint32_t users = 6;
  std::size_t decisions = 24;
  std::uint64_t seed = 42;
  std::string in_file;
  std::string out_file;
};

void usage() {
  std::fputs(
      "usage: replay <record|replay|verify|serve> [options]\n"
      "  --out FILE            trace file to write (record)\n"
      "  --in FILE             trace file to read (replay, serve)\n"
      "  --profile HT|LL       agent profile (default HT)\n"
      "  --traffic TRF1|TRF2   traffic profile (default TRF1)\n"
      "  --users N             total users, 1-6 (default 6)\n"
      "  --decisions N         decision periods to record (default 24)\n"
      "  --seed S              scenario seed (default 42)\n",
      stderr);
}

[[nodiscard]] bool parse(int argc, char** argv, CliOptions& options) {
  if (argc < 2) return false;
  options.command = argv[1];
  for (int i = 2; i < argc; i += 2) {
    const std::string flag = argv[i];
    if (i + 1 >= argc) {
      std::fprintf(stderr, "missing value for %s\n", flag.c_str());
      return false;
    }
    const std::string value = argv[i + 1];
    if (flag == "--profile") {
      if (value == "HT") {
        options.profile = core::AgentProfile::kHighThroughput;
      } else if (value == "LL") {
        options.profile = core::AgentProfile::kLowLatency;
      } else {
        std::fprintf(stderr, "unknown profile %s\n", value.c_str());
        return false;
      }
    } else if (flag == "--traffic") {
      if (value == "TRF1") {
        options.traffic = netsim::TrafficProfile::kTrf1;
      } else if (value == "TRF2") {
        options.traffic = netsim::TrafficProfile::kTrf2;
      } else {
        std::fprintf(stderr, "unknown traffic profile %s\n", value.c_str());
        return false;
      }
    } else if (flag == "--users") {
      options.users = static_cast<std::uint32_t>(std::stoul(value));
    } else if (flag == "--decisions") {
      options.decisions = std::stoul(value);
    } else if (flag == "--seed") {
      options.seed = std::stoull(value);
    } else if (flag == "--in") {
      options.in_file = value;
    } else if (flag == "--out") {
      options.out_file = value;
    } else {
      std::fprintf(stderr, "unknown flag %s\n", flag.c_str());
      return false;
    }
  }
  return true;
}

[[nodiscard]] netsim::ScenarioConfig scenario_of(const CliOptions& options) {
  netsim::ScenarioConfig scenario;
  scenario.profile = options.traffic;
  scenario.users_per_slice = netsim::users_for_count(
      options.users,
      options.users == 1 ? std::optional(netsim::Slice::kEmbb)
                         : std::nullopt);
  scenario.seed = options.seed;
  return scenario;
}

[[nodiscard]] harness::ExperimentOptions experiment_of(
    const CliOptions& options) {
  harness::ExperimentOptions experiment;
  experiment.decisions = options.decisions;
  experiment.deploy_explora = true;
  return experiment;
}

int cmd_record(const CliOptions& options) {
  if (options.out_file.empty()) {
    std::fputs("record requires --out FILE\n", stderr);
    return 2;
  }
  const auto system = harness::load_or_train(
      options.profile, scenario_of(options), harness::TrainingConfig{});
  const harness::RecordedRun run = harness::record_experiment(
      system, scenario_of(options), experiment_of(options));
  const oran::TraceReplaySource source =
      oran::TraceReplaySource::parse(run.trace);
  std::FILE* file = std::fopen(options.out_file.c_str(), "wb");
  if (file == nullptr) {
    std::fprintf(stderr, "cannot open %s\n", options.out_file.c_str());
    return 1;
  }
  const std::size_t written =
      std::fwrite(run.trace.data(), 1, run.trace.size(), file);
  std::fclose(file);
  if (written != run.trace.size()) {
    std::fprintf(stderr, "short write to %s\n", options.out_file.c_str());
    return 1;
  }
  common::TextTable table({"metric", "value"});
  table.add_row({"trace file", options.out_file});
  table.add_row({"trace bytes", std::to_string(run.trace.size())});
  table.add_row({"frames", std::to_string(source.frames().size())});
  table.add_row({"xapp frames",
                 std::to_string(source.frames_for(run.xapp_name).size())});
  table.add_row({"explanations",
                 std::to_string(run.result.explanations.size())});
  table.add_row({"attribution digest",
                 common::format("{}", run.attribution.digest)});
  std::fputs(table.render().c_str(), stdout);
  return 0;
}

int cmd_replay(const CliOptions& options) {
  if (options.in_file.empty()) {
    std::fputs("replay requires --in FILE\n", stderr);
    return 2;
  }
  const oran::TraceReplaySource source =
      oran::TraceReplaySource::load(options.in_file);
  const std::string xapp_name =
      source.label().empty() ? "explora_xapp" : source.label();
  const harness::ReplayOutcome outcome = harness::replay_trace(
      source, xapp_name, experiment_of(options), options.profile);
  common::TextTable table({"metric", "value"});
  table.add_row({"trace label", source.label()});
  table.add_row({"frames total", std::to_string(source.frames().size())});
  table.add_row({"frames replayed",
                 std::to_string(outcome.frames_delivered)});
  table.add_row({"explanations",
                 std::to_string(outcome.explanations.size())});
  table.add_row({"degradations",
                 std::to_string(outcome.degradations.size())});
  table.add_row({"attribution bytes",
                 std::to_string(outcome.attribution.bytes.size())});
  table.add_row({"attribution digest",
                 common::format("{}", outcome.attribution.digest)});
  std::fputs(table.render().c_str(), stdout);
  return 0;
}

int cmd_verify(const CliOptions& options) {
  const auto system = harness::load_or_train(
      options.profile, scenario_of(options), harness::TrainingConfig{});
  const harness::RoundTripReport report = harness::replay_roundtrip(
      system, scenario_of(options), experiment_of(options));
  std::printf("live attribution:   %zu bytes, digest %llu\n",
              report.live.attribution.bytes.size(),
              static_cast<unsigned long long>(report.live.attribution.digest));
  std::printf("replay attribution: %zu bytes, digest %llu\n",
              report.replayed.attribution.bytes.size(),
              static_cast<unsigned long long>(
                  report.replayed.attribution.digest));
  std::printf("bytes identical:     %s\n",
              report.bytes_identical ? "yes" : "NO");
  std::printf("telemetry identical: %s\n",
              report.telemetry_identical ? "yes" : "NO");
  if (!report.ok()) {
    std::fputs("replay determinism verification FAILED\n", stderr);
    return 1;
  }
  std::puts("replay determinism verified");
  return 0;
}

int cmd_serve(const CliOptions& options) {
  if (options.in_file.empty()) {
    std::fputs("serve requires --in FILE\n", stderr);
    return 2;
  }
  const auto system = harness::load_or_train(
      options.profile, scenario_of(options), harness::TrainingConfig{});
  const oran::TraceReplaySource source =
      oran::TraceReplaySource::load(options.in_file);
  harness::ServingOptions serving;
  const harness::ServeStats stats = harness::serve_trace(
      source, "drl_xapp", system, serving,
      harness::TrainingConfig{}.reports_per_decision);
  common::TextTable table({"metric", "value"});
  table.add_row({"indications", std::to_string(stats.indications)});
  table.add_row({"decisions", std::to_string(stats.decisions)});
  table.add_row({"queries submitted", std::to_string(stats.submitted)});
  table.add_row({"explanations delivered", std::to_string(stats.delivered)});
  table.add_row({"queries shed", std::to_string(stats.shed)});
  table.add_row({"stream digest",
                 common::format("{}", stats.stream_digest)});
  std::fputs(table.render().c_str(), stdout);
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  common::set_log_level(common::LogLevel::kWarn);
  CliOptions options;
  if (!parse(argc, argv, options)) {
    usage();
    return 2;
  }
  try {
    if (options.command == "record") return cmd_record(options);
    if (options.command == "replay") return cmd_replay(options);
    if (options.command == "verify") return cmd_verify(options);
    if (options.command == "serve") return cmd_serve(options);
  } catch (const std::exception& error) {
    std::fprintf(stderr, "error: %s\n", error.what());
    return 1;
  }
  std::fprintf(stderr, "unknown command '%s'\n", options.command.c_str());
  usage();
  return 2;
}
