#!/usr/bin/env python3
"""Determinism lint for the EXPLORA C++ sources.

The repo's headline concurrency guarantee is bit-identical results at any
thread count (see DESIGN.md). That property survives only if the code never
consults ambient nondeterminism and never lets incidental ordering leak into
artifacts. This lint bans the constructs that historically break it:

  banned-random      std::rand/srand/std::random_device - all randomness must
                     flow through common::Rng seeded streams
  wall-clock         system_clock/high_resolution_clock/time(nullptr)/... -
                     wall-clock values must never seed or order computation
                     (steady_clock is allowed: it only measures durations)
  unordered-iter     iteration over std::unordered_{map,set} - ordering is
                     implementation-defined, so results must not depend on it
  macro-side-effect  ++/--/assignment inside EXPLORA_* contract conditions -
                     conditions are compiled out at EXPLORA_CHECK_LEVEL=off,
                     so they must be evaluation-count independent
  float-eq           ==/!= against a floating-point literal outside the
                     approved helpers (contracts::approx_equal)
  fault-rng          in the fault-injection path (impairments/reliable/chaos
                     sources) every Rng must be a named .fork("...") stream -
                     an ad-hoc Rng(seed) there would share or reseed the
                     simulation's streams and break chaos-run reproducibility
  telemetry-clock    in the telemetry path (telemetry/golden/trace_diff
                     sources) ANY chrono use is banned, steady_clock
                     included - snapshots must be bit-identical across runs,
                     so spans may only consume the registry's tick clock
  telemetry-unordered  unordered containers anywhere in the telemetry path -
                     snapshots serialise by iterating their containers, so
                     even declaring one risks ordering leaking into goldens
  simd-intrinsic     raw SIMD intrinsics (immintrin.h/arm_neon.h, _mm*/__m*,
                     NEON vector ops) outside the approved GEMM kernel files
                     (src/ml/gemm_<isa>.cpp) - ad-hoc vectorization is how
                     FMA/reassociation sneaks in and silently breaks the
                     byte-identity contract of DESIGN.md §10; new kernels
                     must live in an approved file, compiled with
                     -ffp-contract=off and covered by tests/test_gemm.cpp

A finding on a line carrying `// det-ok: <rule> (<reason>)` is suppressed;
the marker documents why the construct is safe at that site (e.g. an
unordered iteration whose results are sorted before use).

Exit status: 0 = clean, 1 = findings, 2 = usage error.
"""

from __future__ import annotations

import re
import sys

import lintlib
from lintlib import line_of, strip_comments_and_strings

RULES = {
    "banned-random": re.compile(
        r"\bstd::rand\b|\bsrand\s*\(|\bstd::random_device\b|\brandom_device\b"
    ),
    "wall-clock": re.compile(
        r"\bsystem_clock\b|\bhigh_resolution_clock\b"
        r"|\btime\s*\(\s*(?:nullptr|NULL|0)\s*\)"
        r"|\bgettimeofday\s*\(|\blocaltime\s*\(|\bgmtime\s*\("
    ),
    "float-eq": re.compile(
        r"(?:==|!=)\s*[-+]?(?:\d+\.\d*|\.\d+)(?:[eE][-+]?\d+)?[fFlL]?"
        r"|(?:\d+\.\d*|\.\d+)(?:[eE][-+]?\d+)?[fFlL]?\s*(?:==|!=)"
    ),
}

DET_OK = lintlib.marker_pattern("det-ok")

# SIMD kernels live only in these files (runtime-dispatched by ml/gemm.cpp,
# pinned to -ffp-contract=off); intrinsics anywhere else are findings.
KERNEL_FILE = re.compile(r"gemm_(?:avx2|avx512|neon|sve|rvv)\.cpp$")
SIMD_INTRINSIC = re.compile(
    r"\b_mm\d*_\w+\s*\(|\b__m(?:128|256|512)[di]?\b"
    r"|\bimmintrin\.h\b|\barm_neon\.h\b|\bfloat64x\d_t\b"
    r"|\bv(?:ld1q|st1q|dupq|mulq|addq|fmaq)_f64\b"
)

CONTRACT_MACRO = re.compile(r"\bEXPLORA_(?:EXPECTS|ENSURES|ASSERT|AUDIT)(_MSG)?\s*\(")

SIDE_EFFECT = re.compile(
    r"\+\+|--"                                   # increment / decrement
    r"|(?<![=!<>+\-*/%&|^<>])=(?!=)"             # plain assignment
    r"|[+\-*/%&|^]=(?!=)"                        # compound assignment
    r"|<<=|>>="                                  # shift assignment
)

UNORDERED_DECL = re.compile(r"\bunordered_(?:map|set|multimap|multiset)\s*<")

# Files that make up the fault-injection path; Rng use there must be a named
# fork so chaos runs stay bit-reproducible and independent of other streams.
FAULT_PATH_FILE = re.compile(
    r"(?:impairments|reliable|chaos|serving|explain_service)[^/\\]*$")
FAULT_RNG = re.compile(r"\bRng\s*(?:\w+\s*)?[({]")
FORKED = re.compile(r"\.fork\s*\(")

# Files that make up the deterministic-telemetry path. Their snapshots are
# committed as goldens and must be bit-identical across runs and thread
# counts, so the whole path gets a stricter clock rule (no chrono at all,
# steady_clock included) and a declaration-level unordered-container ban.
TELEMETRY_PATH_FILE = re.compile(r"(?:telemetry|golden|trace_diff)[^/\\]*$")
TELEMETRY_RULES = {
    "telemetry-clock": re.compile(r"\bchrono\b|\bsteady_clock\b"),
    "telemetry-unordered": re.compile(
        r"\bunordered_(?:map|set|multimap|multiset)\b"
    ),
}


def declared_unordered_names(code: str) -> set[str]:
    """Names of variables/members declared with an unordered container type,
    matching template argument lists by bracket balance."""
    names = set()
    for match in UNORDERED_DECL.finditer(code):
        depth, j = 1, match.end()
        while j < len(code) and depth > 0:
            if code[j] == "<":
                depth += 1
            elif code[j] == ">":
                depth -= 1
            j += 1
        tail = code[j:]
        m = re.match(r"\s*&?\s*(\w+)\s*(?:;|=|\{|,|\))", tail)
        if m:
            names.add(m.group(1))
    return names


def contract_condition_spans(code: str):
    """Yields (offset, condition) for every EXPLORA_* macro invocation; for
    _MSG variants the condition is the first top-level argument only."""
    for match in CONTRACT_MACRO.finditer(code):
        depth, j = 1, match.end()
        start = match.end()
        end = None
        while j < len(code) and depth > 0:
            c = code[j]
            if c == "(":
                depth += 1
            elif c == ")":
                depth -= 1
            elif c == "," and depth == 1 and end is None:
                end = j
            j += 1
        if end is None:
            end = j - 1
        yield start, code[start:end]


def allowed(raw_lines: list[str], lineno: int, rule: str) -> bool:
    return lintlib.marker_allows(raw_lines, lineno, DET_OK, rule)


RANGE_FOR = re.compile(r"for\s*\(\s*[^;:()]*?:\s*([\w.\->]+)\s*\)")


def lint_text(raw: str, code: str, unordered_names: set[str],
              fault_path: bool = False, telemetry_path: bool = False,
              kernel_file: bool = False):
    """All findings for one stripped source `code` (raw kept for det-ok)."""
    raw_lines = raw.splitlines()
    code_lines = code.splitlines()
    findings = []

    if not kernel_file:
        for match in SIMD_INTRINSIC.finditer(code):
            lineno = line_of(code, match.start())
            if not allowed(raw_lines, lineno, "simd-intrinsic"):
                findings.append(
                    (lineno, "simd-intrinsic", match.group(0).strip())
                )

    if telemetry_path:
        for rule, pattern in TELEMETRY_RULES.items():
            for match in pattern.finditer(code):
                lineno = line_of(code, match.start())
                if not allowed(raw_lines, lineno, rule):
                    findings.append((lineno, rule, match.group(0).strip()))

    if fault_path:
        for match in FAULT_RNG.finditer(code):
            lineno = line_of(code, match.start())
            line = code_lines[lineno - 1] if lineno - 1 < len(code_lines) else ""
            if FORKED.search(line):
                continue  # Rng(seed).fork("name") on the same line
            if not allowed(raw_lines, lineno, "fault-rng"):
                findings.append((lineno, "fault-rng", match.group(0).strip()))

    for rule, pattern in RULES.items():
        for match in pattern.finditer(code):
            lineno = line_of(code, match.start())
            if not allowed(raw_lines, lineno, rule):
                findings.append((lineno, rule, match.group(0).strip()))

    for offset, condition in contract_condition_spans(code):
        m = SIDE_EFFECT.search(condition)
        if m:
            lineno = line_of(code, offset + m.start())
            if not allowed(raw_lines, lineno, "macro-side-effect"):
                findings.append(
                    (lineno, "macro-side-effect", condition.strip()[:60])
                )

    for match in RANGE_FOR.finditer(code):
        target = match.group(1).split(".")[-1].split("->")[-1]
        if target in unordered_names:
            lineno = line_of(code, match.start())
            if not allowed(raw_lines, lineno, "unordered-iter"):
                findings.append((lineno, "unordered-iter", match.group(0)))

    return findings


def self_test() -> int:
    bad = """
    int x = std::rand();
    auto s = std::chrono::system_clock::now();
    auto t = time(nullptr);
    if (a == 1.0) {}
    if (0.5 != b) {}
    int y = std::rand();  // conc-ok: raw-mutex (another lint's marker)
    EXPLORA_EXPECTS(++n < 5);
    EXPLORA_ASSERT(x = 3);
    EXPLORA_EXPECTS_MSG(total += 1, "grew to {}", total);
    std::unordered_map<int, int> table;
    for (const auto& kv : table) {}
    """
    good = """
    auto t0 = std::chrono::steady_clock::now();  // duration only
    if (a == 1.0) {}  // det-ok: float-eq (documented reason)
    if (b != 2.0) {}  // det-ok: float-eq (reason) conc-ok: raw-mutex (x)
    EXPLORA_EXPECTS(n + 1 < 5);
    EXPLORA_EXPECTS(a <= b && c >= d && e != f);
    EXPLORA_EXPECTS_MSG(x < y, "x = {}, y = {}", x, y);
    std::unordered_map<int, int> table;
    for (const auto& kv : table) {}  // det-ok: unordered-iter (sorted below)
    const char* doc = "std::rand() is banned";  // string literal, not code
    // comment mentioning srand( and time(nullptr) is fine
    """
    fault_bad = """
    common::Rng rng(seed);
    auto draws = common::Rng{seed};
    """
    fault_good = """
    rng_(common::Rng(seed).fork("impairments")),
    common::Rng rng(seed);  // det-ok: fault-rng (seed derivation only)
    common::Rng& stream = parent;
    """
    telemetry_bad = """
    auto t0 = std::chrono::steady_clock::now();
    std::unordered_map<std::string, MetricSnapshot> metrics;
    """
    telemetry_good = """
    std::map<std::string, MetricSnapshot, std::less<>> metrics;
    registry.set_now(now_);
    // comment naming steady_clock is fine
    """
    simd_bad = """
    #include <immintrin.h>
    __m256d acc = _mm256_setzero_pd();
    acc = _mm256_fmadd_pd(a, b, acc);
    float64x2_t lanes = vld1q_f64(ptr);
    """
    simd_good = """
    // a comment naming _mm256_add_pd( is fine
    const char* doc = "__m512d lives in gemm_avx512.cpp";
    matrix.multiply_batch(x, y);
    """
    bad_code = strip_comments_and_strings(bad)
    bad_findings = lint_text(bad, bad_code, declared_unordered_names(bad_code))
    good_code = strip_comments_and_strings(good)
    good_findings = lint_text(good, good_code,
                              declared_unordered_names(good_code))
    fault_bad_code = strip_comments_and_strings(fault_bad)
    fault_bad_findings = lint_text(fault_bad, fault_bad_code, set(),
                                   fault_path=True)
    fault_good_code = strip_comments_and_strings(fault_good)
    fault_good_findings = lint_text(fault_good, fault_good_code, set(),
                                    fault_path=True)
    telemetry_bad_code = strip_comments_and_strings(telemetry_bad)
    telemetry_bad_findings = lint_text(telemetry_bad, telemetry_bad_code,
                                       set(), telemetry_path=True)
    telemetry_good_code = strip_comments_and_strings(telemetry_good)
    telemetry_good_findings = lint_text(telemetry_good, telemetry_good_code,
                                        set(), telemetry_path=True)
    simd_bad_code = strip_comments_and_strings(simd_bad)
    simd_bad_findings = lint_text(simd_bad, simd_bad_code, set())
    simd_good_code = strip_comments_and_strings(simd_good)
    simd_good_findings = lint_text(simd_good, simd_good_code, set())
    # The same bad sample inside an approved kernel file is exempt.
    simd_kernel_findings = lint_text(simd_bad, simd_bad_code, set(),
                                     kernel_file=True)
    expect_rules = {
        "banned-random", "wall-clock", "float-eq",
        "macro-side-effect", "unordered-iter",
    }
    seen_rules = {rule for _, rule, _ in bad_findings}
    ok = expect_rules <= seen_rules and len(bad_findings) >= 8
    ok = ok and not good_findings
    ok = ok and {rule for _, rule, _ in fault_bad_findings} == {"fault-rng"}
    ok = ok and len(fault_bad_findings) == 2
    ok = ok and not fault_good_findings
    telemetry_rules = {rule for _, rule, _ in telemetry_bad_findings}
    ok = ok and telemetry_rules == {"telemetry-clock", "telemetry-unordered"}
    ok = ok and not telemetry_good_findings
    ok = ok and {rule for _, rule, _ in simd_bad_findings} == {"simd-intrinsic"}
    ok = ok and len(simd_bad_findings) >= 4
    ok = ok and not simd_good_findings
    ok = ok and not simd_kernel_findings
    bad_findings = (bad_findings + fault_bad_findings + telemetry_bad_findings
                    + simd_bad_findings)
    good_findings = (good_findings + fault_good_findings
                     + telemetry_good_findings + simd_good_findings)
    return lintlib.self_test_verdict(ok, bad_findings, good_findings)


def main() -> int:
    args = lintlib.standard_parser(__doc__).parse_args()
    if args.self_test:
        return self_test()

    root = args.root.resolve()
    files = lintlib.collect_sources(root)
    if not files:
        return lintlib.no_sources_error("lint_determinism", root)

    # Unordered container members are declared in headers and iterated in
    # .cpp files, so collect declaration names across the whole scan set.
    raws = {path: path.read_text(encoding="utf-8") for path in files}
    stripped = {path: strip_comments_and_strings(raw)
                for path, raw in raws.items()}
    unordered_names: set[str] = set()
    for code in stripped.values():
        unordered_names |= declared_unordered_names(code)

    findings = []
    for path in files:
        fault_path = bool(FAULT_PATH_FILE.search(path.name))
        telemetry_path = bool(TELEMETRY_PATH_FILE.search(path.name))
        kernel_file = bool(KERNEL_FILE.search(path.name))
        rel = path.relative_to(root).as_posix()
        for lineno, rule, snippet in lint_text(raws[path], stripped[path],
                                               unordered_names, fault_path,
                                               telemetry_path, kernel_file):
            findings.append((rel, lineno, rule, snippet))

    return lintlib.report_findings(
        "lint_determinism", findings, len(files),
        ["suppress a safe site with: // det-ok: <rule> (<why it is safe>)"])


if __name__ == "__main__":
    sys.exit(main())
