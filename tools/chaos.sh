#!/usr/bin/env bash
# Chaos gate: sweeps RMR fault intensities over full closed-loop runs and
# checks the robustness contract (tools/chaos_sweep exits non-zero when a
# control is lost/double-applied or reward degrades beyond the bound), then
# verifies bit-reproducibility: the same seed + fault configuration must
# produce byte-identical JSON across repeat runs and EXPLORA_THREADS
# values, and a second seed must satisfy the same contract.
#
# Usage:
#   tools/chaos.sh                 # configure+build into build/, then sweep
#   tools/chaos.sh build-asan      # reuse an existing build tree
set -eu

cd "$(dirname "$0")/.."

BUILD_DIR="${1:-build}"
OUT_DIR="${CHAOS_OUT_DIR:-${BUILD_DIR}/chaos}"
SEED_A="${CHAOS_SEED_A:-31}"
SEED_B="${CHAOS_SEED_B:-77}"

if [[ ! -d "${BUILD_DIR}" ]]; then
  cmake --preset default
fi
cmake --build "${BUILD_DIR}" --target chaos_sweep -j

SWEEP="${BUILD_DIR}/tools/chaos_sweep"
mkdir -p "${OUT_DIR}"

echo "==== chaos sweep: seed ${SEED_A} ===="
"${SWEEP}" --seed "${SEED_A}" --out "${OUT_DIR}/seed${SEED_A}_run1.json"
"${SWEEP}" --seed "${SEED_A}" --out "${OUT_DIR}/seed${SEED_A}_run2.json"

echo "==== determinism: repeat run ===="
cmp "${OUT_DIR}/seed${SEED_A}_run1.json" "${OUT_DIR}/seed${SEED_A}_run2.json"

echo "==== determinism: EXPLORA_THREADS invariance ===="
EXPLORA_THREADS=1 "${SWEEP}" --seed "${SEED_A}" \
  --out "${OUT_DIR}/seed${SEED_A}_t1.json"
EXPLORA_THREADS=8 "${SWEEP}" --seed "${SEED_A}" \
  --out "${OUT_DIR}/seed${SEED_A}_t8.json"
cmp "${OUT_DIR}/seed${SEED_A}_run1.json" "${OUT_DIR}/seed${SEED_A}_t1.json"
cmp "${OUT_DIR}/seed${SEED_A}_run1.json" "${OUT_DIR}/seed${SEED_A}_t8.json"

echo "==== chaos sweep: seed ${SEED_B} ===="
"${SWEEP}" --seed "${SEED_B}" --fault-seed 7 \
  --out "${OUT_DIR}/seed${SEED_B}_run1.json"

echo "==== chaos gate passed ===="
