#!/usr/bin/env python3
"""Concurrency-coverage lint for the EXPLORA C++ sources.

The concurrency model (DESIGN.md §9) routes every lock through the
annotated types in common/thread_annotations.hpp: each mutex carries a
lock-class name and a rank from common/lockorder.hpp, clang's
thread-safety analysis sees the capability annotations, and the runtime
lock-order validator sees every acquisition. All three guarantees die
silently the moment someone declares a plain std::mutex, so this lint
enforces the funnel:

  raw-mutex          std::mutex / shared_mutex / recursive_* / timed_* /
                     lock_guard / unique_lock / scoped_lock / shared_lock /
                     condition_variable(_any) anywhere outside the plumbing
                     layer itself (common/thread_annotations.hpp and
                     common/lockorder.{hpp,cpp}, which wrap the primitives
                     and are exempt by path)
  unranked-mutex     a Mutex/SharedMutex declaration whose initialiser does
                     not name a lockrank:: constant - ad-hoc numeric ranks
                     dodge the single ordering table that makes the
                     validator's verdicts meaningful
  unguarded-mutable  in a file that owns a Mutex/SharedMutex, a `mutable`
                     member that is neither the guard itself nor annotated
                     EXPLORA_GUARDED_BY - mutable members of lock-owning
                     classes are exactly the state const methods mutate
                     concurrently, so each needs a guard or an explicit
                     `// not-shared: <reason>` waiver

A finding on a line carrying `// conc-ok: <rule> (<reason>)` is
suppressed (`// not-shared: <reason>` for unguarded-mutable); the marker
documents why the construct is safe at that site.

Exit status: 0 = clean, 1 = findings, 2 = usage error.
"""

from __future__ import annotations

import re
import sys

import lintlib
from lintlib import line_of, statement_span, strip_comments_and_strings

# The annotation layer and the validator beneath it wrap the raw
# primitives; they are the one place std:: synchronisation types may
# appear (declarations there still carry conc-ok markers as
# documentation, but signatures mentioning std::mutex& are inherent).
RAW_MUTEX_EXEMPT = {
    "src/common/thread_annotations.hpp",
    "src/common/lockorder.hpp",
    "src/common/lockorder.cpp",
}

RAW_MUTEX = re.compile(
    r"\bstd::(?:recursive_timed_mutex|recursive_mutex|shared_timed_mutex"
    r"|shared_mutex|timed_mutex|mutex"
    r"|lock_guard|unique_lock|scoped_lock|shared_lock"
    r"|condition_variable_any|condition_variable)\b"
)

# A Mutex/SharedMutex variable or member declaration: the annotated type,
# an identifier, then an initialiser or terminator. Type references
# (`Mutex&`), the wrapper classes themselves (`MutexLock`, `MutexInfo`)
# and constructor declarations (`Mutex(...)`) do not match.
MUTEX_DECL = re.compile(
    r"\b(?:common::)?(?:SharedMutex|Mutex)\s+(\w+)\s*[;({=]"
)

MUTABLE = re.compile(r"\bmutable\b(?!\s*(?:\{|noexcept|->))")  # skip lambdas

GUARDED = re.compile(r"\bEXPLORA_(?:PT_)?GUARDED_BY\s*\(")
LOCKRANK = re.compile(r"\block(?:rank)?::k\w+")
MUTEX_TYPE = re.compile(r"\b(?:common::)?(?:SharedMutex|Mutex)\b")

CONC_OK = lintlib.marker_pattern("conc-ok")
NOT_SHARED = re.compile(r"//\s*not-shared:\s*\S")


def conc_allowed(raw_lines: list[str], lineno: int, rule: str) -> bool:
    return lintlib.marker_allows(raw_lines, lineno, CONC_OK, rule)


def not_shared_waived(raw_lines: list[str], first: int, last: int) -> bool:
    for lineno in range(first, last + 1):
        line = raw_lines[lineno - 1] if lineno - 1 < len(raw_lines) else ""
        if NOT_SHARED.search(line):
            return True
    return False


def lint_text(raw: str, code: str, raw_mutex_exempt: bool = False):
    """All findings for one stripped source `code` (raw kept for the
    suppression markers, which live in comments)."""
    raw_lines = raw.splitlines()
    findings = []

    if not raw_mutex_exempt:
        for match in RAW_MUTEX.finditer(code):
            lineno = line_of(code, match.start())
            if not conc_allowed(raw_lines, lineno, "raw-mutex"):
                findings.append((lineno, "raw-mutex", match.group(0)))

    owns_mutex = False
    for match in MUTEX_DECL.finditer(code):
        owns_mutex = True
        lineno = line_of(code, match.start())
        statement, _ = statement_span(code, match.start())
        if LOCKRANK.search(statement):
            continue
        if not conc_allowed(raw_lines, lineno, "unranked-mutex"):
            findings.append(
                (lineno, "unranked-mutex",
                 f"{match.group(0).rstrip('({=; ')} without a lockrank::")
            )

    if owns_mutex:
        for match in MUTABLE.finditer(code):
            lineno = line_of(code, match.start())
            statement, last_line = statement_span(code, match.start())
            if MUTEX_TYPE.search(statement):
                continue  # the guard itself
            if GUARDED.search(statement):
                continue
            if not_shared_waived(raw_lines, lineno, last_line):
                continue
            findings.append(
                (lineno, "unguarded-mutable", statement.split("\n")[0].strip()[:60])
            )

    return findings


def self_test() -> int:
    raw_bad = """
    std::mutex m;
    std::lock_guard<std::mutex> lock(m);
    std::shared_mutex rw;
    std::unique_lock<std::mutex> u(m);
    std::scoped_lock both(a, b);
    std::condition_variable cv;
    std::condition_variable_any cva;
    """
    raw_good = """
    std::mutex native_;  // conc-ok: raw-mutex (the wrapper itself)
    common::Mutex guarded_{"pool.queue", common::lockrank::kPoolQueue};
    // a comment naming std::lock_guard is fine
    const char* doc = "std::mutex is banned outside the wrapper";
    """
    unranked_bad = """
    Mutex unranked_;
    SharedMutex named_only_{"telemetry.registry"};
    common::Mutex numeric_{"x.y", 40};
    """
    unranked_good = """
    Mutex ranked_{"pool.queue", lockrank::kPoolQueue};
    mutable common::SharedMutex mutex_{"telemetry.registry",
                                       common::lockrank::kTelemetryRegistry};
    static Mutex sink("log.sink", lockrank::kLogSink);
    Mutex legacy_;  // conc-ok: unranked-mutex (rank attached in ctor body)
    MutexLock lock(ranked_);
    void lock_audited(MutexInfo* info);
    """
    mutable_bad = """
    Mutex mu_{"x.y", lockrank::kLeaf};
    mutable int cache_ = 0;
    mutable double scratch_[8];
    """
    mutable_good = """
    Mutex mu_{"x.y", lockrank::kLeaf};
    mutable common::SharedMutex rw_{"a.b", lockrank::kLeaf};
    mutable int hits_ EXPLORA_GUARDED_BY(mu_) = 0;
    mutable long spilled_
        EXPLORA_GUARDED_BY(mu_) = 0;
    mutable int misses_ = 0;  // not-shared: (owner-thread only, see ctor)
    auto f = [count]() mutable { return count + 1; };
    """
    mutable_no_mutex = """
    mutable int memo_ = 0;
    """

    def run(raw: str, exempt: bool = False):
        return lint_text(raw, strip_comments_and_strings(raw), exempt)

    raw_bad_findings = run(raw_bad)
    unranked_bad_findings = run(unranked_bad)
    mutable_bad_findings = run(mutable_bad)
    bad = raw_bad_findings + unranked_bad_findings + mutable_bad_findings
    good = (run(raw_good) + run(unranked_good) + run(mutable_good)
            + run(mutable_no_mutex) + run(raw_bad, exempt=True))

    ok = {rule for _, rule, _ in raw_bad_findings} == {"raw-mutex"}
    ok = ok and len(raw_bad_findings) >= 7
    ok = ok and ({rule for _, rule, _ in unranked_bad_findings}
                 == {"unranked-mutex"})
    ok = ok and len(unranked_bad_findings) == 3
    ok = ok and ({rule for _, rule, _ in mutable_bad_findings}
                 == {"unguarded-mutable"})
    ok = ok and len(mutable_bad_findings) == 2
    ok = ok and not good
    return lintlib.self_test_verdict(ok, bad, good)


def main() -> int:
    args = lintlib.standard_parser(__doc__).parse_args()
    if args.self_test:
        return self_test()

    root = args.root.resolve()
    files = lintlib.collect_sources(root)
    if not files:
        return lintlib.no_sources_error("lint_concurrency", root)

    findings = []
    for path in files:
        rel = path.relative_to(root).as_posix()
        raw = path.read_text(encoding="utf-8")
        code = strip_comments_and_strings(raw)
        for lineno, rule, snippet in lint_text(
                raw, code, raw_mutex_exempt=rel in RAW_MUTEX_EXEMPT):
            findings.append((rel, lineno, rule, snippet))

    return lintlib.report_findings(
        "lint_concurrency", findings, len(files),
        ["suppress a safe site with: // conc-ok: <rule> (<why it is safe>)",
         "waive a non-shared mutable with: // not-shared: <reason>"])


if __name__ == "__main__":
    sys.exit(main())
