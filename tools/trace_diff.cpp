// Golden-trace diff tool: re-runs the canonical closed-loop cases
// (harness/golden) and structurally compares their telemetry snapshots
// against the JSON documents committed under tests/golden/.
//
//   trace_diff                 diff every case, report per-metric deltas
//   trace_diff --case NAME     diff a single case
//   trace_diff --update        regenerate the committed goldens in place
//   trace_diff --golden-dir D  override the golden directory
//                              (default: EXPLORA_GOLDEN_DIR, baked in at
//                              configure time)
//
// Exit codes: 0 = all cases match, 1 = at least one difference or missing
// golden, 2 = usage or I/O error. Registered as the `golden_trace_diff`
// CTest test, so `ctest` alone catches telemetry regressions.
#include <cstdio>
#include <filesystem>
#include <fstream>
#include <map>
#include <sstream>
#include <string>
#include <string_view>
#include <vector>

#include "common/telemetry.hpp"
#include "harness/golden.hpp"

#ifndef EXPLORA_GOLDEN_DIR
#define EXPLORA_GOLDEN_DIR "tests/golden"
#endif

namespace {

// One parsed snapshot: the header fields plus metric-name -> JSON body.
// The telemetry JSON is canonical (one metric per line, sorted names),
// so a line parser is a faithful structural reader of it.
struct ParsedTrace {
  std::string schema;
  std::string now;
  std::map<std::string, std::string> metrics;
};

std::string strip_trailing_comma(std::string s) {
  if (!s.empty() && s.back() == ',') s.pop_back();
  return s;
}

// Extracts `"key": value` from a trimmed line; returns false when the
// line is not a key/value line (braces, brackets).
bool parse_key_value(std::string_view line, std::string& key,
                     std::string& value) {
  if (line.empty() || line.front() != '"') return false;
  const std::size_t close = line.find('"', 1);
  if (close == std::string_view::npos) return false;
  key.assign(line.substr(1, close - 1));
  std::size_t colon = line.find(':', close);
  if (colon == std::string_view::npos) return false;
  std::size_t start = line.find_first_not_of(' ', colon + 1);
  if (start == std::string_view::npos) return false;
  value = strip_trailing_comma(std::string(line.substr(start)));
  return true;
}

ParsedTrace parse_trace(const std::string& json) {
  ParsedTrace trace;
  std::istringstream stream(json);
  std::string line;
  bool in_metrics = false;
  while (std::getline(stream, line)) {
    const std::size_t begin = line.find_first_not_of(' ');
    if (begin == std::string::npos) continue;
    const std::string_view trimmed =
        std::string_view(line).substr(begin);
    std::string key;
    std::string value;
    if (!parse_key_value(trimmed, key, value)) continue;
    if (key == "schema") {
      trace.schema = value;
    } else if (key == "now") {
      trace.now = value;
    } else if (key == "metrics") {
      in_metrics = true;
    } else if (in_metrics) {
      trace.metrics.emplace(key, value);
    }
  }
  return trace;
}

bool read_file(const std::filesystem::path& path, std::string& out) {
  std::ifstream in(path, std::ios::binary);
  if (!in) return false;
  std::ostringstream buffer;
  buffer << in.rdbuf();
  out = buffer.str();
  return true;
}

/// Structural comparison; prints one line per differing metric.
/// Returns true when the traces match.
bool diff_traces(std::string_view case_name, const ParsedTrace& golden,
                 const ParsedTrace& run) {
  bool same = true;
  auto report = [&](const char* tag, const std::string& detail) {
    if (same) {
      std::printf("trace_diff: case '%.*s' differs from its golden\n",
                  static_cast<int>(case_name.size()), case_name.data());
      same = false;
    }
    std::printf("  %s %s\n", tag, detail.c_str());
  };
  if (golden.schema != run.schema) {
    report("~", "schema: golden " + golden.schema + ", run " + run.schema);
  }
  if (golden.now != run.now) {
    report("~", "now: golden " + golden.now + ", run " + run.now);
  }
  for (const auto& [name, body] : golden.metrics) {
    const auto it = run.metrics.find(name);
    if (it == run.metrics.end()) {
      report("-", name + " (only in golden): " + body);
    } else if (it->second != body) {
      report("~", name + ": golden " + body + ", run " + it->second);
    }
  }
  for (const auto& [name, body] : run.metrics) {
    if (golden.metrics.find(name) == golden.metrics.end()) {
      report("+", name + " (only in run): " + body);
    }
  }
  return same;
}

}  // namespace

int main(int argc, char** argv) {
  if (!explora::telemetry::kCompiledIn) {
    std::printf(
        "trace_diff: telemetry compiled out (EXPLORA_TELEMETRY=OFF); "
        "nothing to diff\n");
    return 0;
  }
  std::filesystem::path golden_dir = EXPLORA_GOLDEN_DIR;
  bool update = false;
  std::string only_case;
  for (int i = 1; i < argc; ++i) {
    const std::string_view arg = argv[i];
    if (arg == "--update") {
      update = true;
    } else if (arg == "--case" && i + 1 < argc) {
      only_case = argv[++i];
    } else if (arg == "--golden-dir" && i + 1 < argc) {
      golden_dir = argv[++i];
    } else {
      std::fprintf(stderr,
                   "usage: trace_diff [--update] [--case NAME] "
                   "[--golden-dir DIR]\n");
      return 2;
    }
  }

  bool all_match = true;
  bool case_seen = only_case.empty();
  for (const std::string_view case_name :
       explora::harness::golden_trace_cases()) {
    if (!only_case.empty() && case_name != only_case) continue;
    case_seen = true;
    const std::string run_json =
        explora::harness::run_golden_trace(case_name);
    const std::filesystem::path golden_path =
        golden_dir / explora::harness::golden_trace_filename(case_name);

    if (update) {
      std::ofstream out(golden_path, std::ios::binary | std::ios::trunc);
      if (!out) {
        std::fprintf(stderr, "trace_diff: cannot write %s\n",
                     golden_path.string().c_str());
        return 2;
      }
      out << run_json;
      std::printf("trace_diff: updated %s\n", golden_path.string().c_str());
      continue;
    }

    std::string golden_json;
    if (!read_file(golden_path, golden_json)) {
      std::fprintf(stderr,
                   "trace_diff: missing golden %s "
                   "(run `trace_diff --update` to create it)\n",
                   golden_path.string().c_str());
      all_match = false;
      continue;
    }
    if (diff_traces(case_name, parse_trace(golden_json),
                    parse_trace(run_json))) {
      std::printf("trace_diff: case '%.*s' matches its golden\n",
                  static_cast<int>(case_name.size()), case_name.data());
    } else {
      all_match = false;
    }
  }
  if (!case_seen) {
    std::fprintf(stderr, "trace_diff: unknown case '%s'\n",
                 only_case.c_str());
    return 2;
  }
  if (!all_match) {
    std::printf(
        "trace_diff: goldens are stale; if the change is intended, "
        "regenerate with `trace_diff --update` and commit the result\n");
  }
  return all_match ? 0 : 1;
}
