// explora_cli — command-line front end to the library.
//
//   explora_cli train   --profile HT|LL [--traffic TRF1|TRF2] [--users N]
//                       [--seed S]
//   explora_cli run     --profile HT|LL [--traffic ...] [--users N]
//                       [--decisions N] [--steer AR1|AR2|AR3] [--window O]
//                       [--temperature T] [--seed S]
//   explora_cli explain --profile HT|LL [--traffic ...] [--users N]
//                       [--decisions N] [--seed S]
//   explora_cli graph   --profile HT|LL [--decisions N] [--dot FILE]
//                       [--min-visits V] [--seed S]
//
// All subcommands train (or load from the artifact cache) the requested
// agent first; see README.md for the cache location.
#include <cstdio>
#include <cstring>
#include <fstream>
#include <map>
#include <optional>
#include <string>

#include "common/format.hpp"
#include "common/log.hpp"
#include "common/stats.hpp"
#include "common/table.hpp"
#include "explora/distill.hpp"
#include "harness/experiment.hpp"
#include "harness/training.hpp"

namespace {

using namespace explora;

struct CliOptions {
  std::string command;
  core::AgentProfile profile = core::AgentProfile::kHighThroughput;
  netsim::TrafficProfile traffic = netsim::TrafficProfile::kTrf1;
  std::uint32_t users = 6;
  std::size_t decisions = 720;
  std::optional<core::SteeringStrategy> steer;
  std::size_t window = 10;
  double temperature = 0.5;
  std::uint64_t seed = 42;
  std::string dot_file;
  std::uint64_t min_visits = 2;
};

void usage() {
  std::fputs(
      "usage: explora_cli <train|run|explain|graph> [options]\n"
      "  --profile HT|LL       agent profile (default HT)\n"
      "  --traffic TRF1|TRF2   traffic profile (default TRF1)\n"
      "  --users N             total users, 1-6 (default 6)\n"
      "  --decisions N         decision periods to run (default 720)\n"
      "  --steer AR1|AR2|AR3   enable EDBR steering (run only)\n"
      "  --window O            steering observation window (default 10)\n"
      "  --temperature T       PRB-head sampling temperature (default 0.5)\n"
      "  --seed S              scenario seed (default 42)\n"
      "  --dot FILE            write the graph as GraphViz dot (graph only)\n"
      "  --min-visits V        dot: elide nodes under V visits (default 2)\n",
      stderr);
}

[[nodiscard]] bool parse(int argc, char** argv, CliOptions& options) {
  if (argc < 2) return false;
  options.command = argv[1];
  for (int i = 2; i < argc; i += 2) {
    const std::string flag = argv[i];
    if (i + 1 >= argc) {
      std::fprintf(stderr, "missing value for %s\n", flag.c_str());
      return false;
    }
    const std::string value = argv[i + 1];
    if (flag == "--profile") {
      if (value == "HT") {
        options.profile = core::AgentProfile::kHighThroughput;
      } else if (value == "LL") {
        options.profile = core::AgentProfile::kLowLatency;
      } else {
        std::fprintf(stderr, "unknown profile %s\n", value.c_str());
        return false;
      }
    } else if (flag == "--traffic") {
      if (value == "TRF1") {
        options.traffic = netsim::TrafficProfile::kTrf1;
      } else if (value == "TRF2") {
        options.traffic = netsim::TrafficProfile::kTrf2;
      } else {
        std::fprintf(stderr, "unknown traffic profile %s\n", value.c_str());
        return false;
      }
    } else if (flag == "--users") {
      options.users = static_cast<std::uint32_t>(std::stoul(value));
    } else if (flag == "--decisions") {
      options.decisions = std::stoul(value);
    } else if (flag == "--steer") {
      static const std::map<std::string, core::SteeringStrategy> strategies{
          {"AR1", core::SteeringStrategy::kMaxReward},
          {"AR2", core::SteeringStrategy::kMinReward},
          {"AR3", core::SteeringStrategy::kImproveBitrate},
      };
      const auto it = strategies.find(value);
      if (it == strategies.end()) {
        std::fprintf(stderr, "unknown strategy %s\n", value.c_str());
        return false;
      }
      options.steer = it->second;
    } else if (flag == "--window") {
      options.window = std::stoul(value);
    } else if (flag == "--temperature") {
      options.temperature = std::stod(value);
    } else if (flag == "--seed") {
      options.seed = std::stoull(value);
    } else if (flag == "--dot") {
      options.dot_file = value;
    } else if (flag == "--min-visits") {
      options.min_visits = std::stoull(value);
    } else {
      std::fprintf(stderr, "unknown flag %s\n", flag.c_str());
      return false;
    }
  }
  return true;
}

[[nodiscard]] netsim::ScenarioConfig scenario_of(const CliOptions& options) {
  netsim::ScenarioConfig scenario;
  scenario.profile = options.traffic;
  scenario.users_per_slice = netsim::users_for_count(
      options.users,
      options.users == 1 ? std::optional(netsim::Slice::kEmbb)
                         : std::nullopt);
  scenario.seed = options.seed;
  return scenario;
}

[[nodiscard]] harness::ExperimentResult run_once(
    const CliOptions& options, const harness::TrainedSystem& system) {
  harness::ExperimentOptions experiment;
  experiment.decisions = options.decisions;
  experiment.prb_temperature = options.temperature;
  if (options.steer.has_value()) {
    core::ActionSteering::Config steering;
    steering.strategy = *options.steer;
    steering.observation_window = options.window;
    experiment.steering = steering;
  }
  return harness::run_experiment(system, scenario_of(options), experiment,
                                 harness::TrainingConfig{});
}

int cmd_train(const CliOptions& options) {
  const auto system = harness::load_or_train(
      options.profile, scenario_of(options), harness::TrainingConfig{});
  std::printf("trained %s agent for %s cached under %s\n",
              core::to_string(options.profile).c_str(),
              scenario_of(options).name().c_str(),
              harness::artifact_dir().string().c_str());
  (void)system;
  return 0;
}

int cmd_run(const CliOptions& options) {
  const auto system = harness::load_or_train(
      options.profile, scenario_of(options), harness::TrainingConfig{});
  const auto result = run_once(options, system);
  common::TextTable table({"metric", "value"});
  table.add_row({"decisions", std::to_string(result.decisions.size())});
  table.add_row({"mean reward", common::fmt(result.mean_reward(), 3)});
  table.add_row({"eMBB bitrate median [Mbps]",
                 common::fmt(common::median(result.embb_bitrate_mbps), 3)});
  table.add_row({"URLLC buffer p90 [B]",
                 common::fmt(common::quantile(result.urllc_buffer_bytes,
                                              0.9), 0)});
  table.add_row({"graph nodes", std::to_string(result.graph.node_count())});
  table.add_row({"controls replaced",
                 std::to_string(result.controls_replaced)});
  std::fputs(table.render().c_str(), stdout);
  return 0;
}

int cmd_explain(const CliOptions& options) {
  const auto system = harness::load_or_train(
      options.profile, scenario_of(options), harness::TrainingConfig{});
  const auto result = run_once(options, system);
  const auto knowledge =
      core::KnowledgeDistiller{}.distill(result.transitions);
  std::fputs(result.graph.describe().c_str(), stdout);
  std::puts("");
  std::fputs(knowledge.rules.c_str(), stdout);
  std::puts("");
  std::fputs(knowledge.summary_text.c_str(), stdout);
  return 0;
}

int cmd_graph(const CliOptions& options) {
  const auto system = harness::load_or_train(
      options.profile, scenario_of(options), harness::TrainingConfig{});
  const auto result = run_once(options, system);
  const std::string dot = result.graph.to_dot(options.min_visits);
  if (options.dot_file.empty()) {
    std::fputs(dot.c_str(), stdout);
  } else {
    std::ofstream out(options.dot_file);
    out << dot;
    std::printf("wrote %s (%zu nodes total, min-visits %llu)\n",
                options.dot_file.c_str(), result.graph.node_count(),
                static_cast<unsigned long long>(options.min_visits));
  }
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  common::set_log_level(common::LogLevel::kInfo);
  CliOptions options;
  if (!parse(argc, argv, options)) {
    usage();
    return 2;
  }
  try {
    if (options.command == "train") return cmd_train(options);
    if (options.command == "run") return cmd_run(options);
    if (options.command == "explain") return cmd_explain(options);
    if (options.command == "graph") return cmd_graph(options);
  } catch (const std::exception& error) {
    std::fprintf(stderr, "error: %s\n", error.what());
    return 1;
  }
  std::fprintf(stderr, "unknown command '%s'\n", options.command.c_str());
  usage();
  return 2;
}
