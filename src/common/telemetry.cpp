#include "common/telemetry.hpp"

#include <algorithm>
#include <utility>

#include "common/contracts.hpp"

namespace explora::telemetry {

namespace {

void append_u64(std::string& out, std::uint64_t v) { out += std::to_string(v); }

void append_i64(std::string& out, std::int64_t v) { out += std::to_string(v); }

// Metric names come from instrumentation-site string literals, but escape
// anyway so a hostile name cannot break document structure.
void append_escaped(std::string& out, std::string_view s) {
  out += '"';
  for (char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\t': out += "\\t"; break;
      case '\r': out += "\\r"; break;
      default: out += c; break;
    }
  }
  out += '"';
}

void append_metric(std::string& out, const MetricSnapshot& m) {
  out += "{\"type\": \"";
  out += to_string(m.kind);
  out += '"';
  switch (m.kind) {
    case MetricKind::kCounter:
      out += ", \"value\": ";
      append_u64(out, m.count);
      break;
    case MetricKind::kGauge:
      out += ", \"value\": ";
      append_i64(out, m.value);
      break;
    case MetricKind::kHistogram:
      out += ", \"count\": ";
      append_u64(out, m.count);
      out += ", \"sum\": ";
      append_i64(out, m.sum);
      out += ", \"min\": ";
      append_i64(out, m.min);
      out += ", \"max\": ";
      append_i64(out, m.max);
      out += ", \"buckets\": [";
      for (std::size_t i = 0; i < m.buckets.size(); ++i) {
        if (i > 0) out += ", ";
        out += "{\"le\": ";
        if (i < m.bounds.size()) {
          append_i64(out, m.bounds[i]);
        } else {
          out += "\"+inf\"";
        }
        out += ", \"count\": ";
        append_u64(out, m.buckets[i]);
        out += '}';
      }
      out += ']';
      break;
    case MetricKind::kSpan:
      out += ", \"count\": ";
      append_u64(out, m.count);
      out += ", \"total\": ";
      append_i64(out, m.sum);
      out += ", \"min\": ";
      append_i64(out, m.min);
      out += ", \"max\": ";
      append_i64(out, m.max);
      break;
  }
  out += '}';
}

}  // namespace

std::string_view to_string(MetricKind kind) noexcept {
  switch (kind) {
    case MetricKind::kCounter: return "counter";
    case MetricKind::kGauge: return "gauge";
    case MetricKind::kHistogram: return "histogram";
    case MetricKind::kSpan: return "span";
  }
  return "unknown";
}

// ---- Histogram --------------------------------------------------------------

Histogram::Histogram(std::span<const std::int64_t> bounds)
    : bounds_(bounds.begin(), bounds.end()),
      // Sentinels so the first observe() always wins both CAS races.
      min_(std::numeric_limits<std::int64_t>::max()),
      max_(std::numeric_limits<std::int64_t>::min()) {
  EXPLORA_EXPECTS_MSG(!bounds_.empty(),
                      "histogram needs at least one bucket bound");
  EXPLORA_EXPECTS_MSG(std::is_sorted(bounds_.begin(), bounds_.end()) &&
                          std::adjacent_find(bounds_.begin(), bounds_.end()) ==
                              bounds_.end(),
                      "histogram bounds must be strictly increasing");
  buckets_ = std::make_unique<common::interleave::Atomic<std::uint64_t>[]>(
      bounds_.size() + 1);
  for (std::size_t i = 0; i <= bounds_.size(); ++i) {
    // atomics-ok: pre-publication-init (no reader can exist before the ctor returns)
    buckets_[i].store(0, std::memory_order_relaxed);
  }
}

void Histogram::observe_batch(std::span<const std::uint64_t> bucket_counts,
                              std::uint64_t count, std::int64_t sum,
                              std::int64_t min, std::int64_t max) noexcept {
#if EXPLORA_TELEMETRY_LEVEL >= 1
  if (!enabled() || count == 0) return;
  EXPLORA_EXPECTS_MSG(bucket_counts.size() == bounds_.size() + 1,
                      "observe_batch needs {} bucket counts, got {}",
                      bounds_.size() + 1, bucket_counts.size());
  for (std::size_t i = 0; i < bucket_counts.size(); ++i) {
    if (bucket_counts[i] != 0) {
      buckets_[i].fetch_add(bucket_counts[i], std::memory_order_relaxed);
    }
  }
  count_.fetch_add(count, std::memory_order_relaxed);
  sum_.fetch_add(sum, std::memory_order_relaxed);
  detail::update_min(min_, min);
  detail::update_max(max_, max);
#else
  (void)bucket_counts;
  (void)count;
  (void)sum;
  (void)min;
  (void)max;
#endif
}

std::size_t Histogram::bucket_index(std::int64_t value) const noexcept {
  const auto it = std::lower_bound(bounds_.begin(), bounds_.end(), value);
  return static_cast<std::size_t>(it - bounds_.begin());
}

std::int64_t Histogram::min() const noexcept {
  return count() == 0 ? 0 : min_.load(std::memory_order_relaxed);
}

std::int64_t Histogram::max() const noexcept {
  return count() == 0 ? 0 : max_.load(std::memory_order_relaxed);
}

// ---- SpanStat ---------------------------------------------------------------

std::int64_t SpanStat::min() const noexcept {
  return count() == 0 ? 0 : min_.load(std::memory_order_relaxed);
}

std::int64_t SpanStat::max() const noexcept {
  return count() == 0 ? 0 : max_.load(std::memory_order_relaxed);
}

// ---- TelemetrySnapshot ------------------------------------------------------

std::string TelemetrySnapshot::to_json() const {
  std::string out;
  out.reserve(256 + metrics.size() * 96);
  out += "{\n";
  out += "  \"schema\": \"explora.telemetry.v1\",\n";
  out += "  \"now\": ";
  append_i64(out, now);
  out += ",\n";
  out += "  \"metrics\": {";
  bool first = true;
  for (const auto& [name, metric] : metrics) {
    out += first ? "\n" : ",\n";
    first = false;
    out += "    ";
    append_escaped(out, name);
    out += ": ";
    append_metric(out, metric);
  }
  out += first ? "}\n" : "\n  }\n";
  out += "}\n";
  return out;
}

TelemetrySnapshot merge(const TelemetrySnapshot& a, const TelemetrySnapshot& b) {
  TelemetrySnapshot out = a;
  out.now = std::max(a.now, b.now);
  for (const auto& [name, metric] : b.metrics) {
    auto [it, inserted] = out.metrics.try_emplace(name, metric);
    if (inserted) continue;
    MetricSnapshot& dst = it->second;
    EXPLORA_EXPECTS_MSG(dst.kind == metric.kind,
                        "merge kind mismatch for metric '{}'", name);
    switch (metric.kind) {
      case MetricKind::kCounter:
        dst.count += metric.count;
        break;
      case MetricKind::kGauge:
        dst.value = std::max(dst.value, metric.value);
        break;
      case MetricKind::kHistogram: {
        EXPLORA_EXPECTS_MSG(dst.bounds == metric.bounds,
                            "merge bucket-layout mismatch for metric '{}'",
                            name);
        const bool dst_empty = dst.count == 0;
        const bool src_empty = metric.count == 0;
        for (std::size_t i = 0; i < dst.buckets.size(); ++i) {
          dst.buckets[i] += metric.buckets[i];
        }
        dst.count += metric.count;
        dst.sum += metric.sum;
        if (dst_empty) {
          dst.min = metric.min;
          dst.max = metric.max;
        } else if (!src_empty) {
          dst.min = std::min(dst.min, metric.min);
          dst.max = std::max(dst.max, metric.max);
        }
        break;
      }
      case MetricKind::kSpan: {
        const bool dst_empty = dst.count == 0;
        const bool src_empty = metric.count == 0;
        dst.count += metric.count;
        dst.sum += metric.sum;
        if (dst_empty) {
          dst.min = metric.min;
          dst.max = metric.max;
        } else if (!src_empty) {
          dst.min = std::min(dst.min, metric.min);
          dst.max = std::max(dst.max, metric.max);
        }
        break;
      }
    }
  }
  return out;
}

// ---- Registry ---------------------------------------------------------------

struct Registry::Entry {
  explicit Entry(MetricKind k) : kind(k) {}

  MetricKind kind;
  Counter counter;
  Gauge gauge;
  std::unique_ptr<Histogram> histogram;
  SpanStat span;
};

Registry::Registry() = default;
Registry::~Registry() = default;

Registry::Entry& Registry::find_or_create(std::string_view name,
                                          MetricKind kind,
                                          std::span<const std::int64_t> bounds) {
  EXPLORA_EXPECTS_MSG(!name.empty(), "metric name must be non-empty");
  common::WriterMutexLock lock(mutex_);
  auto it = metrics_.find(name);
  if (it == metrics_.end()) {
    auto entry = std::make_unique<Entry>(kind);
    if (kind == MetricKind::kHistogram) {
      entry->histogram = std::make_unique<Histogram>(bounds);
    }
    it = metrics_.emplace(std::string(name), std::move(entry)).first;
    return *it->second;
  }
  Entry& entry = *it->second;
  EXPLORA_EXPECTS_MSG(entry.kind == kind,
                      "metric '{}' already registered as {} (requested {})",
                      std::string(name), to_string(entry.kind),
                      to_string(kind));
  if (kind == MetricKind::kHistogram) {
    EXPLORA_EXPECTS_MSG(
        entry.histogram->bounds() ==
            std::vector<std::int64_t>(bounds.begin(), bounds.end()),
        "histogram '{}' re-registered with different bounds",
        std::string(name));
  }
  return entry;
}

Counter& Registry::counter(std::string_view name) {
  return find_or_create(name, MetricKind::kCounter, {}).counter;
}

Gauge& Registry::gauge(std::string_view name) {
  return find_or_create(name, MetricKind::kGauge, {}).gauge;
}

Histogram& Registry::histogram(std::string_view name,
                               std::span<const std::int64_t> bounds) {
  return *find_or_create(name, MetricKind::kHistogram, bounds).histogram;
}

SpanStat& Registry::span(std::string_view name) {
  return find_or_create(name, MetricKind::kSpan, {}).span;
}

TelemetrySnapshot Registry::snapshot() const {
  TelemetrySnapshot snap;
  snap.now = now();
  common::ReaderMutexLock lock(mutex_);
  for (const auto& [name, entry] : metrics_) {
    MetricSnapshot m;
    m.kind = entry->kind;
    switch (entry->kind) {
      case MetricKind::kCounter:
        m.count = entry->counter.value();
        break;
      case MetricKind::kGauge:
        m.value = entry->gauge.value();
        break;
      case MetricKind::kHistogram: {
        const Histogram& h = *entry->histogram;
        m.count = h.count();
        m.sum = h.sum();
        m.min = h.min();
        m.max = h.max();
        m.bounds = h.bounds();
        m.buckets.resize(m.bounds.size() + 1);
        for (std::size_t i = 0; i < m.buckets.size(); ++i) {
          m.buckets[i] = h.bucket_count(i);
        }
        break;
      }
      case MetricKind::kSpan:
        m.count = entry->span.count();
        m.sum = entry->span.total();
        m.min = entry->span.min();
        m.max = entry->span.max();
        break;
    }
    snap.metrics.emplace(name, std::move(m));
  }
  return snap;
}

std::string Registry::snapshot_json() const { return snapshot().to_json(); }

std::size_t Registry::size() const {
  common::ReaderMutexLock lock(mutex_);
  return metrics_.size();
}

// ---- active registry --------------------------------------------------------

namespace {

// The slot is a plain pointer: reads are ubiquitous and racy-by-design
// (components bind at construction, before workers exist), while installs
// are only supported from one thread at a time — enforced fast-tier by the
// same guard the contracts scopes use.
Registry*& active_slot() noexcept {
  static Registry* active = &global_registry();
  return active;
}

contracts::SingleThreadScope& registry_scope() {
  static contracts::SingleThreadScope scope;
  return scope;
}

}  // namespace

Registry& global_registry() {
  static Registry registry;
  return registry;
}

Registry& active_registry() noexcept { return *active_slot(); }

ScopedRegistry::ScopedRegistry()
    : owned_(std::make_unique<Registry>()),
      active_(owned_.get()),
      previous_(&active_registry()) {
  registry_scope().enter("ScopedRegistry");
  active_slot() = active_;
}

ScopedRegistry::ScopedRegistry(Registry& registry)
    : active_(&registry), previous_(&active_registry()) {
  registry_scope().enter("ScopedRegistry");
  active_slot() = active_;
}

ScopedRegistry::~ScopedRegistry() {
  active_slot() = previous_;
  registry_scope().exit();
}

}  // namespace explora::telemetry
