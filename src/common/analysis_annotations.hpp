// Static-analysis annotation vocabulary for the whole-program hot-path
// analyzer (tools/lint_hotpath.py, DESIGN.md §11).
//
// The macros below expand to nothing: they are purely lexical markers the
// analyzer reads off the source text, in the same spirit as clang's
// thread-safety attributes (DESIGN.md §9) but checked by our own
// call-graph pass rather than the compiler. Placing one before a function
// *definition* declares a realtime-safety contract for everything that
// definition transitively calls:
//
//   EXPLORA_REALTIME     The strongest tier: the function is on a
//                        TTI-loop / kernel / coalition hot path and may
//                        not reach ANY sink - no heap allocation, no lock
//                        acquisition, no blocking call (condition-variable
//                        waits, sleeps, stream or file I/O) and no throw.
//                        Examples: Gnb::run_tti, the per-slice scheduler
//                        grant loops, gemm::run and its kernels, the
//                        telemetry LocalHistogram fold.
//
//   EXPLORA_NONBLOCKING  The weaker tier: the function may allocate (e.g.
//                        batch staging buffers sized per call) but must
//                        never lock or block, so it can run inside pool
//                        workers without convoying them. Examples:
//                        Mlp::forward_batch, the SHAP coalition staging
//                        path.
//
// The analyzer seeds ALLOCATES/LOCKS/BLOCKS/THROWS facts at known sinks
// (operator new / malloc, growing container ops, Mutex lock wrappers,
// CondVar::wait, stream I/O, throw, std::this_thread) and propagates them
// transitively up the extracted call graph; an annotated function whose
// reachable set contains a forbidden fact fails the lint with the full
// offending call chain. A deliberate exception is waived at the offending
// line with
//
//   // hotpath-ok: <reason>
//
// mirroring the det-ok / conc-ok markers of the sibling lints; the reason
// is mandatory and should say why the sink cannot fire in steady state
// (e.g. a scratch vector that retains capacity across TTIs) or why it is
// acceptable (a bounded, never-held-across-IO freelist lock).
//
// Annotate definitions, not declarations: the analyzer binds a marker to
// the function body that follows it, and a single source of truth per
// function keeps contract and implementation in one place.
#pragma once

#define EXPLORA_REALTIME
#define EXPLORA_NONBLOCKING
