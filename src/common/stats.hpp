// Streaming and batch statistics used across the project:
//   - RunningStats: Welford mean/variance with min/max,
//   - SampleStore: bounded reservoir preserving a distribution sketch,
//   - Histogram: fixed-bin histogram over a closed range,
//   - quantile/cdf helpers,
//   - Jensen-Shannon divergence between two empirical distributions,
//   - Ewma: exponentially weighted moving average (PF scheduler, rewards).
#pragma once

#include <cstddef>
#include <cstdint>
#include <span>
#include <vector>

#include "common/rng.hpp"

namespace explora::common {

/// Welford online accumulator: numerically stable mean/variance plus
/// min/max, mergeable with another accumulator.
class RunningStats {
 public:
  void add(double x) noexcept;
  void merge(const RunningStats& other) noexcept;

  [[nodiscard]] std::size_t count() const noexcept { return count_; }
  [[nodiscard]] bool empty() const noexcept { return count_ == 0; }
  /// Mean of the observed samples; 0 when empty.
  [[nodiscard]] double mean() const noexcept;
  /// Population variance; 0 with fewer than 2 samples.
  [[nodiscard]] double variance() const noexcept;
  /// Sample (Bessel-corrected) variance; 0 with fewer than 2 samples.
  [[nodiscard]] double sample_variance() const noexcept;
  [[nodiscard]] double stddev() const noexcept;
  [[nodiscard]] double min() const noexcept;
  [[nodiscard]] double max() const noexcept;

 private:
  std::size_t count_ = 0;
  double mean_ = 0.0;
  double m2_ = 0.0;
  double min_ = 0.0;
  double max_ = 0.0;
};

/// Bounded sample reservoir (Vitter's Algorithm R) that also tracks exact
/// running moments over *all* samples seen, not only the retained ones.
///
/// The EXPLORA attributed graph stores one SampleStore per (KPI, slice)
/// attribute: the reservoir sketch feeds distribution comparisons (JS
/// divergence, quantiles) while the moments feed expected-reward estimates.
class SampleStore {
 public:
  /// @param capacity maximum number of retained samples (> 0).
  /// @param seed reservoir-replacement RNG seed.
  explicit SampleStore(std::size_t capacity = 256, std::uint64_t seed = 1);

  void add(double x);

  [[nodiscard]] std::size_t seen() const noexcept { return stats_.count(); }
  [[nodiscard]] std::size_t retained() const noexcept { return samples_.size(); }
  [[nodiscard]] std::size_t capacity() const noexcept { return capacity_; }
  [[nodiscard]] bool empty() const noexcept { return samples_.empty(); }
  [[nodiscard]] const RunningStats& stats() const noexcept { return stats_; }
  [[nodiscard]] double mean() const noexcept { return stats_.mean(); }
  /// Retained samples, unordered.
  [[nodiscard]] std::span<const double> samples() const noexcept {
    return samples_;
  }
  /// Empirical quantile (linear interpolation) over retained samples.
  [[nodiscard]] double quantile(double q) const;

 private:
  std::size_t capacity_;
  std::vector<double> samples_;
  RunningStats stats_;
  Rng rng_;
};

/// Fixed-bin histogram over [lo, hi]; out-of-range samples clamp to the
/// edge bins so probability mass is never silently dropped.
class Histogram {
 public:
  Histogram(double lo, double hi, std::size_t bins);

  void add(double x) noexcept;
  [[nodiscard]] std::size_t total() const noexcept { return total_; }
  [[nodiscard]] std::size_t bins() const noexcept { return counts_.size(); }
  [[nodiscard]] std::size_t count(std::size_t bin) const;
  /// Normalized probability mass per bin; uniform when empty.
  [[nodiscard]] std::vector<double> pmf() const;

 private:
  double lo_;
  double hi_;
  std::vector<std::size_t> counts_;
  std::size_t total_ = 0;
};

/// Exponentially weighted moving average. alpha in (0, 1]; the first sample
/// initializes the average directly.
class Ewma {
 public:
  explicit Ewma(double alpha);

  void add(double x) noexcept;
  [[nodiscard]] bool empty() const noexcept { return !initialized_; }
  /// Current average; `fallback` when no sample was added yet.
  [[nodiscard]] double value(double fallback = 0.0) const noexcept;

 private:
  double alpha_;
  double value_ = 0.0;
  bool initialized_ = false;
};

/// Empirical quantile with linear interpolation; data need not be sorted.
[[nodiscard]] double quantile(std::span<const double> data, double q);

/// Median convenience wrapper.
[[nodiscard]] double median(std::span<const double> data);

/// Jensen-Shannon divergence (base-2 logarithm, so the result is in [0, 1])
/// between two empirical sample sets, computed over a shared `bins`-bin
/// histogram spanning the pooled range. Returns 0 when either set is empty.
[[nodiscard]] double jensen_shannon_divergence(std::span<const double> a,
                                               std::span<const double> b,
                                               std::size_t bins = 32);

/// Evaluates the empirical CDF of `data` at `points.size()` evenly spaced
/// probabilities, returning the sorted sample values (for CDF plots).
[[nodiscard]] std::vector<double> cdf_points(std::span<const double> data,
                                             std::size_t points);

}  // namespace explora::common
