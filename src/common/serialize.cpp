#include "common/serialize.hpp"

#include <bit>
#include <cstring>
#include <fstream>

#include "common/format.hpp"

namespace explora::common {

namespace {

static_assert(std::endian::native == std::endian::little,
              "serialization assumes a little-endian host");

template <typename T>
void append_raw(std::vector<std::uint8_t>& buffer, T value) {
  const auto* bytes = reinterpret_cast<const std::uint8_t*>(&value);
  buffer.insert(buffer.end(), bytes, bytes + sizeof(T));
}

}  // namespace

BinaryWriter::BinaryWriter(std::uint64_t magic, std::uint32_t version) {
  append_raw(buffer_, magic);
  append_raw(buffer_, version);
}

void BinaryWriter::write_u32(std::uint32_t v) { append_raw(buffer_, v); }
void BinaryWriter::write_u64(std::uint64_t v) { append_raw(buffer_, v); }
void BinaryWriter::write_i64(std::int64_t v) { append_raw(buffer_, v); }
void BinaryWriter::write_f64(double v) { append_raw(buffer_, v); }

void BinaryWriter::write_string(const std::string& s) {
  write_u64(s.size());
  buffer_.insert(buffer_.end(), s.begin(), s.end());
}

void BinaryWriter::write_f64_vector(const std::vector<double>& v) {
  write_u64(v.size());
  const auto* bytes = reinterpret_cast<const std::uint8_t*>(v.data());
  buffer_.insert(buffer_.end(), bytes, bytes + v.size() * sizeof(double));
}

void BinaryWriter::save(const std::filesystem::path& path) const {
  const auto parent = path.parent_path();
  if (!parent.empty()) std::filesystem::create_directories(parent);
  const auto tmp = path.string() + ".tmp";
  {
    std::ofstream out(tmp, std::ios::binary | std::ios::trunc);
    if (!out) throw SerializeError("cannot open " + tmp + " for writing");
    out.write(reinterpret_cast<const char*>(buffer_.data()),
              static_cast<std::streamsize>(buffer_.size()));
    if (!out) throw SerializeError("short write to " + tmp);
  }
  std::filesystem::rename(tmp, path);
}

BinaryReader::BinaryReader(std::vector<std::uint8_t> data, std::uint64_t magic,
                           std::uint32_t version)
    : data_(std::move(data)) {
  if (read_u64() != magic) throw SerializeError("bad magic header");
  const auto got = read_u32();
  if (got != version) {
    throw SerializeError(
        format("version mismatch: file has {}, expected {}", got, version));
  }
}

BinaryReader BinaryReader::load(const std::filesystem::path& path,
                                std::uint64_t magic, std::uint32_t version) {
  std::ifstream in(path, std::ios::binary | std::ios::ate);
  if (!in) throw SerializeError("cannot open " + path.string());
  const auto size = static_cast<std::size_t>(in.tellg());
  in.seekg(0);
  std::vector<std::uint8_t> data(size);
  in.read(reinterpret_cast<char*>(data.data()),
          static_cast<std::streamsize>(size));
  if (!in) throw SerializeError("short read from " + path.string());
  return BinaryReader(std::move(data), magic, version);
}

void BinaryReader::require(std::size_t bytes) const {
  // Overflow-safe: compare against the remaining bytes, never pos_ + bytes
  // (a hostile length field could wrap the addition).
  if (bytes > data_.size() - pos_) {
    throw SerializeError("truncated input");
  }
}

std::uint32_t BinaryReader::read_u32() {
  require(sizeof(std::uint32_t));
  std::uint32_t v;
  std::memcpy(&v, data_.data() + pos_, sizeof(v));
  pos_ += sizeof(v);
  return v;
}

std::uint64_t BinaryReader::read_u64() {
  require(sizeof(std::uint64_t));
  std::uint64_t v;
  std::memcpy(&v, data_.data() + pos_, sizeof(v));
  pos_ += sizeof(v);
  return v;
}

std::int64_t BinaryReader::read_i64() {
  require(sizeof(std::int64_t));
  std::int64_t v;
  std::memcpy(&v, data_.data() + pos_, sizeof(v));
  pos_ += sizeof(v);
  return v;
}

double BinaryReader::read_f64() {
  require(sizeof(double));
  double v;
  std::memcpy(&v, data_.data() + pos_, sizeof(v));
  pos_ += sizeof(v);
  return v;
}

std::string BinaryReader::read_string() {
  const auto size = read_u64();
  require(size);
  std::string s(reinterpret_cast<const char*>(data_.data() + pos_), size);
  pos_ += size;
  return s;
}

std::vector<double> BinaryReader::read_f64_vector() {
  const auto size = read_u64();
  if (size > (data_.size() - pos_) / sizeof(double)) {
    throw SerializeError("truncated input");
  }
  std::vector<double> v(size);
  if (size != 0) {  // empty vector: data() may be null, and memcpy(null,..,0) is UB
    std::memcpy(v.data(), data_.data() + pos_, size * sizeof(double));
    pos_ += size * sizeof(double);
  }
  return v;
}

}  // namespace explora::common
