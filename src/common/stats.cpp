#include "common/stats.hpp"

#include <algorithm>
#include <cmath>
#include <limits>

#include "common/contracts.hpp"

namespace explora::common {

void RunningStats::add(double x) noexcept {
  if (count_ == 0) {
    min_ = x;
    max_ = x;
  } else {
    min_ = std::min(min_, x);
    max_ = std::max(max_, x);
  }
  ++count_;
  const double delta = x - mean_;
  mean_ += delta / static_cast<double>(count_);
  m2_ += delta * (x - mean_);
}

void RunningStats::merge(const RunningStats& other) noexcept {
  if (other.count_ == 0) return;
  if (count_ == 0) {
    *this = other;
    return;
  }
  const auto n1 = static_cast<double>(count_);
  const auto n2 = static_cast<double>(other.count_);
  const double delta = other.mean_ - mean_;
  const double total = n1 + n2;
  mean_ += delta * n2 / total;
  m2_ += other.m2_ + delta * delta * n1 * n2 / total;
  count_ += other.count_;
  min_ = std::min(min_, other.min_);
  max_ = std::max(max_, other.max_);
}

double RunningStats::mean() const noexcept { return count_ == 0 ? 0.0 : mean_; }

double RunningStats::variance() const noexcept {
  return count_ < 2 ? 0.0 : m2_ / static_cast<double>(count_);
}

double RunningStats::sample_variance() const noexcept {
  return count_ < 2 ? 0.0 : m2_ / static_cast<double>(count_ - 1);
}

double RunningStats::stddev() const noexcept { return std::sqrt(variance()); }

double RunningStats::min() const noexcept { return count_ == 0 ? 0.0 : min_; }

double RunningStats::max() const noexcept { return count_ == 0 ? 0.0 : max_; }

SampleStore::SampleStore(std::size_t capacity, std::uint64_t seed)
    : capacity_(capacity), rng_(seed) {
  EXPLORA_EXPECTS(capacity > 0);
  samples_.reserve(capacity);
}

void SampleStore::add(double x) {
  stats_.add(x);
  if (samples_.size() < capacity_) {
    samples_.push_back(x);
    return;
  }
  // Algorithm R: replace a random retained sample with probability cap/seen.
  const std::size_t slot = rng_.index(stats_.count());
  if (slot < capacity_) samples_[slot] = x;
}

double SampleStore::quantile(double q) const {
  return common::quantile(samples_, q);
}

Histogram::Histogram(double lo, double hi, std::size_t bins)
    : lo_(lo), hi_(hi), counts_(bins, 0) {
  EXPLORA_EXPECTS(bins > 0);
  EXPLORA_EXPECTS(hi > lo);
}

void Histogram::add(double x) noexcept {
  const double width = (hi_ - lo_) / static_cast<double>(counts_.size());
  auto bin = static_cast<std::ptrdiff_t>(std::floor((x - lo_) / width));
  bin = std::clamp<std::ptrdiff_t>(
      bin, 0, static_cast<std::ptrdiff_t>(counts_.size()) - 1);
  ++counts_[static_cast<std::size_t>(bin)];
  ++total_;
}

std::size_t Histogram::count(std::size_t bin) const {
  EXPLORA_EXPECTS(bin < counts_.size());
  return counts_[bin];
}

std::vector<double> Histogram::pmf() const {
  std::vector<double> p(counts_.size(), 0.0);
  if (total_ == 0) {
    const double u = 1.0 / static_cast<double>(counts_.size());
    std::fill(p.begin(), p.end(), u);
    return p;
  }
  for (std::size_t i = 0; i < counts_.size(); ++i) {
    p[i] = static_cast<double>(counts_[i]) / static_cast<double>(total_);
  }
  return p;
}

Ewma::Ewma(double alpha) : alpha_(alpha) {
  EXPLORA_EXPECTS(alpha > 0.0 && alpha <= 1.0);
}

void Ewma::add(double x) noexcept {
  if (!initialized_) {
    value_ = x;
    initialized_ = true;
    return;
  }
  value_ = alpha_ * x + (1.0 - alpha_) * value_;
}

double Ewma::value(double fallback) const noexcept {
  return initialized_ ? value_ : fallback;
}

double quantile(std::span<const double> data, double q) {
  EXPLORA_EXPECTS(q >= 0.0 && q <= 1.0);
  if (data.empty()) return 0.0;
  std::vector<double> sorted(data.begin(), data.end());
  std::sort(sorted.begin(), sorted.end());
  if (sorted.size() == 1) return sorted.front();
  const double pos = q * static_cast<double>(sorted.size() - 1);
  const auto lo = static_cast<std::size_t>(std::floor(pos));
  const auto hi = std::min(lo + 1, sorted.size() - 1);
  const double frac = pos - static_cast<double>(lo);
  return sorted[lo] * (1.0 - frac) + sorted[hi] * frac;
}

double median(std::span<const double> data) { return quantile(data, 0.5); }

double jensen_shannon_divergence(std::span<const double> a,
                                 std::span<const double> b,
                                 std::size_t bins) {
  if (a.empty() || b.empty()) return 0.0;
  double lo = std::numeric_limits<double>::infinity();
  double hi = -std::numeric_limits<double>::infinity();
  for (double x : a) {
    lo = std::min(lo, x);
    hi = std::max(hi, x);
  }
  for (double x : b) {
    lo = std::min(lo, x);
    hi = std::max(hi, x);
  }
  if (!(hi > lo)) return 0.0;  // all samples identical across both sets
  Histogram ha(lo, hi, bins);
  Histogram hb(lo, hi, bins);
  for (double x : a) ha.add(x);
  for (double x : b) hb.add(x);
  const auto pa = ha.pmf();
  const auto pb = hb.pmf();
  auto kl = [](const std::vector<double>& p, const std::vector<double>& m) {
    double sum = 0.0;
    for (std::size_t i = 0; i < p.size(); ++i) {
      if (p[i] > 0.0 && m[i] > 0.0) sum += p[i] * std::log2(p[i] / m[i]);
    }
    return sum;
  };
  std::vector<double> mid(pa.size());
  for (std::size_t i = 0; i < pa.size(); ++i) mid[i] = 0.5 * (pa[i] + pb[i]);
  return 0.5 * kl(pa, mid) + 0.5 * kl(pb, mid);
}

std::vector<double> cdf_points(std::span<const double> data,
                               std::size_t points) {
  EXPLORA_EXPECTS(points > 1);
  std::vector<double> out;
  out.reserve(points);
  for (std::size_t i = 0; i < points; ++i) {
    const double q =
        static_cast<double>(i) / static_cast<double>(points - 1);
    out.push_back(quantile(data, q));
  }
  return out;
}

}  // namespace explora::common
