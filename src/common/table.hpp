// Console rendering helpers for the benchmark harness: aligned ASCII tables
// (for reproducing the paper's tables) and inline CDF/series plots (for its
// figures). Output is plain text so bench logs diff cleanly across runs.
#pragma once

#include <span>
#include <string>
#include <vector>

namespace explora::common {

/// Column-aligned ASCII table builder.
class TextTable {
 public:
  explicit TextTable(std::vector<std::string> header);

  void add_row(std::vector<std::string> cells);
  /// Renders with a header rule and column padding.
  [[nodiscard]] std::string render() const;

 private:
  std::vector<std::string> header_;
  std::vector<std::vector<std::string>> rows_;
};

/// Formats a double with the given number of decimals.
[[nodiscard]] std::string fmt(double value, int decimals = 2);

/// Renders an ASCII CDF: one row per probed quantile, with a proportional
/// bar. `label` heads the plot; `unit` annotates the x-axis values.
[[nodiscard]] std::string render_cdf(std::string_view label,
                                     std::span<const double> samples,
                                     std::string_view unit,
                                     std::size_t rows = 11,
                                     std::size_t width = 40);

/// Renders two CDFs side by side for visual comparison (baseline vs
/// treatment), reporting median and p90 deltas underneath.
[[nodiscard]] std::string render_cdf_comparison(
    std::string_view label, std::string_view name_a,
    std::span<const double> a, std::string_view name_b,
    std::span<const double> b, std::string_view unit);

}  // namespace explora::common
