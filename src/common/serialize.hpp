// Tiny binary serialization for model weights and cached artifacts.
//
// Format: little-endian, no alignment, with a magic header and version so
// stale caches are rejected instead of misread. Only trivially encodable
// primitives plus vectors/strings are supported — deliberately minimal.
#pragma once

#include <cstdint>
#include <filesystem>
#include <stdexcept>
#include <string>
#include <vector>

namespace explora::common {

/// Thrown on malformed input, truncated files or version mismatches.
class SerializeError : public std::runtime_error {
 public:
  using std::runtime_error::runtime_error;
};

/// Append-only binary encoder.
class BinaryWriter {
 public:
  /// @param magic 8-byte tag identifying the artifact type.
  /// @param version format version embedded in the header.
  BinaryWriter(std::uint64_t magic, std::uint32_t version);

  void write_u32(std::uint32_t v);
  void write_u64(std::uint64_t v);
  void write_i64(std::int64_t v);
  void write_f64(double v);
  void write_string(const std::string& s);
  void write_f64_vector(const std::vector<double>& v);

  [[nodiscard]] const std::vector<std::uint8_t>& buffer() const noexcept {
    return buffer_;
  }
  /// Writes the buffer atomically (temp file + rename).
  void save(const std::filesystem::path& path) const;

 private:
  std::vector<std::uint8_t> buffer_;
};

/// Sequential binary decoder; validates magic/version on construction.
class BinaryReader {
 public:
  BinaryReader(std::vector<std::uint8_t> data, std::uint64_t magic,
               std::uint32_t version);
  /// Loads from disk; throws SerializeError when missing or malformed.
  static BinaryReader load(const std::filesystem::path& path,
                           std::uint64_t magic, std::uint32_t version);

  [[nodiscard]] std::uint32_t read_u32();
  [[nodiscard]] std::uint64_t read_u64();
  [[nodiscard]] std::int64_t read_i64();
  [[nodiscard]] double read_f64();
  [[nodiscard]] std::string read_string();
  [[nodiscard]] std::vector<double> read_f64_vector();
  [[nodiscard]] bool at_end() const noexcept { return pos_ == data_.size(); }

 private:
  void require(std::size_t bytes) const;

  std::vector<std::uint8_t> data_;
  std::size_t pos_ = 0;
};

}  // namespace explora::common
