// Minimal leveled logger. Libraries log sparingly (warnings and above by
// default); benches/examples raise the level for progress reporting.
#pragma once

#include <string_view>

#include "common/format.hpp"

namespace explora::common {

enum class LogLevel { kTrace = 0, kDebug, kInfo, kWarn, kError, kOff };

/// Sets the global minimum level that is emitted. Thread-compatible: set it
/// once at startup before spawning workers.
void set_log_level(LogLevel level) noexcept;
[[nodiscard]] LogLevel log_level() noexcept;

/// Emits one line to stderr if `level` passes the global filter.
void log_line(LogLevel level, std::string_view component,
              std::string_view message);

/// Formatting convenience wrapper (common::format placeholder syntax).
template <typename... Args>
void logf(LogLevel level, std::string_view component, std::string_view fmt,
          const Args&... args) {
  if (level < log_level()) return;
  log_line(level, component, format(fmt, args...));
}

}  // namespace explora::common
