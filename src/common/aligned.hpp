// Over-aligned heap storage for numeric kernels. The SIMD GEMM backends
// (src/ml/gemm_*.cpp) load 32/64-byte vectors from Matrix storage; placing
// every buffer on a cache-line boundary keeps those loads aligned and one
// row never straddles a line it doesn't own.
#pragma once

#include <cstddef>
#include <limits>
#include <new>
#include <vector>

namespace explora::common {

/// Cache-line size every kernel-facing buffer is aligned to. 64 bytes
/// covers x86 and the common ARM implementations and is a multiple of the
/// 32-byte AVX2 vector width.
inline constexpr std::size_t kKernelAlignment = 64;

/// Minimal C++17 allocator handing out `Alignment`-aligned storage via the
/// aligned operator new. Stateless: all instances are interchangeable.
template <typename T, std::size_t Alignment = kKernelAlignment>
class AlignedAllocator {
  static_assert((Alignment & (Alignment - 1)) == 0,
                "alignment must be a power of two");
  static_assert(Alignment >= alignof(T),
                "alignment must not weaken the type's natural alignment");

 public:
  using value_type = T;
  // Explicit rebind: the allocator carries a non-type parameter, so the
  // allocator_traits default (Alloc<U, TypeArgs...>) cannot synthesize it.
  template <typename U>
  struct rebind {
    using other = AlignedAllocator<U, Alignment>;
  };

  AlignedAllocator() noexcept = default;
  template <typename U>
  AlignedAllocator(const AlignedAllocator<U, Alignment>&) noexcept {}

  [[nodiscard]] T* allocate(std::size_t n) {
    if (n > std::numeric_limits<std::size_t>::max() / sizeof(T)) {
      throw std::bad_alloc();
    }
    return static_cast<T*>(
        ::operator new(n * sizeof(T), std::align_val_t{Alignment}));
  }

  void deallocate(T* p, std::size_t) noexcept {
    ::operator delete(p, std::align_val_t{Alignment});
  }

  template <typename U>
  bool operator==(const AlignedAllocator<U, Alignment>&) const noexcept {
    return true;
  }
};

/// std::vector on cache-line-aligned storage (the Matrix backing store and
/// the kernels' packing scratch).
template <typename T>
using AlignedVector = std::vector<T, AlignedAllocator<T>>;

}  // namespace explora::common
