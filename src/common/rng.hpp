// Deterministic random number generation for the whole project.
//
// Every stochastic component (channel fading, traffic arrivals, PPO
// exploration, SHAP sampling, ...) owns its own Rng stream derived from a
// master seed, so experiments are reproducible bit-for-bit and adding a new
// consumer does not perturb existing streams.
//
// The generator is xoshiro256** (Blackman & Vigna), seeded through
// SplitMix64; both are public-domain algorithms reimplemented here.
#pragma once

#include <array>
#include <cstdint>
#include <limits>
#include <string_view>

namespace explora::common {

/// Stateless 64-bit mixing function; used for seeding and stream derivation.
[[nodiscard]] constexpr std::uint64_t splitmix64(std::uint64_t& state) noexcept {
  state += 0x9e3779b97f4a7c15ULL;
  std::uint64_t z = state;
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}

/// xoshiro256** pseudo-random generator with distribution helpers.
///
/// Satisfies UniformRandomBitGenerator so it can also be plugged into
/// <random> distributions, but the members below are preferred: they are
/// guaranteed stable across standard library implementations.
class Rng {
 public:
  using result_type = std::uint64_t;

  /// Seeds the generator from a single 64-bit seed via SplitMix64.
  explicit Rng(std::uint64_t seed = 0x853c49e6748fea9bULL) noexcept;

  static constexpr result_type min() noexcept { return 0; }
  static constexpr result_type max() noexcept {
    return std::numeric_limits<result_type>::max();
  }

  /// Next raw 64-bit output.
  result_type operator()() noexcept;

  /// Derives an independent child stream. The tag decorrelates children
  /// created from the same parent state (e.g. one stream per UE).
  [[nodiscard]] Rng fork(std::uint64_t tag) noexcept;
  [[nodiscard]] Rng fork(std::string_view tag) noexcept;

  /// Uniform double in [0, 1).
  [[nodiscard]] double uniform() noexcept;
  /// Uniform double in [lo, hi).
  [[nodiscard]] double uniform(double lo, double hi) noexcept;
  /// Uniform integer in [lo, hi] (inclusive).
  [[nodiscard]] std::int64_t uniform_int(std::int64_t lo, std::int64_t hi) noexcept;
  /// Standard normal via Box-Muller (cached second variate).
  [[nodiscard]] double normal() noexcept;
  /// Normal with the given mean and standard deviation.
  [[nodiscard]] double normal(double mean, double stddev) noexcept;
  /// Exponential with the given rate (lambda > 0).
  [[nodiscard]] double exponential(double rate) noexcept;
  /// Poisson-distributed count with the given mean (Knuth for small means,
  /// normal approximation above 64).
  [[nodiscard]] std::uint32_t poisson(double mean) noexcept;
  /// True with probability p (clamped to [0,1]).
  [[nodiscard]] bool bernoulli(double p) noexcept;
  /// Uniform index in [0, n); n must be > 0.
  [[nodiscard]] std::size_t index(std::size_t n) noexcept;

  /// Fisher-Yates shuffle.
  template <typename T>
  void shuffle(T& container) noexcept {
    if (container.size() < 2) return;
    for (std::size_t i = container.size() - 1; i > 0; --i) {
      using std::swap;
      swap(container[i], container[index(i + 1)]);
    }
  }

 private:
  std::array<std::uint64_t, 4> state_{};
  double cached_normal_ = 0.0;
  bool has_cached_normal_ = false;
};

}  // namespace explora::common
