// Dynamic lock-order (rank) validation — the runtime complement of the
// static thread-safety analysis in common/thread_annotations.hpp.
//
// Every common::Mutex / common::SharedMutex carries a name and a rank from
// the global table in explora::common::lockrank (the table itself is
// documented in DESIGN.md §9). At audit check level the validator keeps a
// per-thread stack of held locks and enforces, *before* the native mutex
// is touched:
//
//   - strictly increasing ranks: a thread may only acquire a mutex whose
//     rank is greater than every rank it already holds;
//   - no re-entrancy: acquiring a lock class this thread already holds is
//     a violation (covers both the same object and same-name objects).
//
// A violation fires the contracts failure handler (kind "lock-order") with
// both lock names before blocking on the native mutex, so a throwing test
// handler unwinds cleanly instead of deadlocking.
//
// Cost model (mirrors contracts.hpp):
//   EXPLORA_CHECK_LEVEL=off   kCompiledIn is false and every hook in
//                             Mutex/SharedMutex folds away — the lock and
//                             unlock paths are plain std::mutex calls;
//   fast (runtime default)    one relaxed atomic load per lock and one
//                             thread-local read per unlock;
//   audit                     full rank validation plus acquisition and
//                             contention accounting.
//
// Determinism: a verdict depends only on the actual nesting of locks on
// the acquiring thread, never on cross-thread timing. Counters are relaxed
// atomics and reach telemetry only through an explicit publish() call —
// harness snapshot paths never see them, so committed golden traces are
// unaffected by audit runs.
#pragma once

#include <cstdint>
#include <mutex>         // conc-ok: raw-mutex (validator plumbing layer)
#include <shared_mutex>  // conc-ok: raw-mutex (validator plumbing layer)
#include <string>
#include <vector>

#include "common/contracts.hpp"

namespace explora::telemetry {
class Registry;
}  // namespace explora::telemetry

namespace explora::common::lockrank {

// The global lock-rank table. Acquisition order must follow strictly
// increasing ranks; gaps are deliberate so new subsystems can slot in
// without renumbering. Keep this list in sync with DESIGN.md §9.
inline constexpr int kShapBaseCache = 10;      ///< xai: SHAP base-value cache
inline constexpr int kPoolQueue = 20;          ///< common: ThreadPool task queue
inline constexpr int kPoolJob = 30;            ///< common: per-parallel_for job
inline constexpr int kShapScratch = 35;        ///< xai: SHAP probe-scratch pool
inline constexpr int kTelemetryRegistry = 40;  ///< common: telemetry metric map
inline constexpr int kLogSink = 50;            ///< common: log emission
inline constexpr int kLeaf = 99;               ///< strictly-leaf locks (tests)

}  // namespace explora::common::lockrank

// Translation units may pin EXPLORA_CHECK_LEVEL below the build-wide value
// (tests/test_lockorder_off.cpp proves the compile-out). The inline ABI
// namespace keys every level-dependent inline entity on the level, so a
// mixed-level link keeps one distinct, internally consistent copy per
// level instead of an ODR clash where the linker silently picks one body.
#define EXPLORA_LOCK_ABI_CONCAT2(a, b) a##b
#define EXPLORA_LOCK_ABI_CONCAT(a, b) EXPLORA_LOCK_ABI_CONCAT2(a, b)
#define EXPLORA_LOCK_ABI \
  EXPLORA_LOCK_ABI_CONCAT(check_lvl, EXPLORA_CHECK_LEVEL)

namespace explora::common::lockorder {

inline namespace EXPLORA_LOCK_ABI {

/// True when the validator hooks are compiled into this translation unit
/// (EXPLORA_CHECK_LEVEL >= 1 — folded per TU like kCompiledCheckLevel).
inline constexpr bool kCompiledIn = EXPLORA_CHECK_LEVEL >= 1;

}  // inline namespace

struct MutexInfo;  // opaque registration record (name, rank, counters)

/// Registers (or re-finds) the named lock class. The same name must carry
/// the same rank everywhere — a mismatch is a contract violation. Distinct
/// mutex objects sharing a name share one record: they form one lock class
/// for ordering and accounting. Records live for the process lifetime, so
/// the returned pointer never dangles.
[[nodiscard]] MutexInfo* register_mutex(const char* name, int rank);

/// True when the runtime check level is audit, i.e. acquisitions are being
/// validated and counted.
[[nodiscard]] inline bool audit_active() noexcept {
  return contracts::check_level() >= contracts::CheckLevel::kAudit;
}

namespace detail {

// Number of audit-tracked locks the current thread holds. Inline (and
// shared across ABI levels) so the unlock fast path can test "anything to
// untrack?" with a plain thread-local read, even when audit mode was
// switched off while a tracked lock was still held.
inline thread_local int t_tracked_depth = 0;

}  // namespace detail

[[nodiscard]] inline bool tracking_any() noexcept {
  return detail::t_tracked_depth > 0;
}

/// Depth of the current thread's held-lock stack (for tests).
[[nodiscard]] inline int held_depth() noexcept {
  return detail::t_tracked_depth;
}

/// Audit-path acquisition hooks: validate the rank order (firing the
/// contracts handler before blocking), acquire the native lock while
/// counting contention, and push onto the per-thread held stack.
void lock_audited(MutexInfo* info, std::mutex& native);
void lock_audited(MutexInfo* info, std::shared_mutex& native);
void lock_shared_audited(MutexInfo* info, std::shared_mutex& native);
/// try-acquisition never blocks, so it skips rank validation; a successful
/// try still joins the held stack and the acquisition count.
[[nodiscard]] bool try_lock_audited(MutexInfo* info, std::mutex& native);

/// Pops `info` from the per-thread held stack. A no-op when absent (the
/// lock was acquired before audit mode was enabled) or when info is null.
void release_tracked(const MutexInfo* info) noexcept;

/// Frozen per-lock-class statistics (audit-mode acquisitions only).
struct MutexStats {
  std::string name;
  int rank = 0;
  std::uint64_t acquisitions = 0;  ///< audited acquisitions (incl. shared)
  std::uint64_t contended = 0;     ///< acquisitions that had to wait
  std::uint64_t wait_rounds = 0;   ///< total yield rounds spent waiting
};

/// All registered lock classes, sorted by name.
[[nodiscard]] std::vector<MutexStats> stats();

/// Zeroes every counter; registration records persist.
void reset_stats();

/// Exports the stats as gauges — lockorder.<name>.{rank, acquisitions,
/// contended, wait_rounds} — into `registry`. Deliberately pull-based:
/// golden-trace snapshots never contain these unless a tool asks.
void publish(telemetry::Registry& registry);

}  // namespace explora::common::lockorder
