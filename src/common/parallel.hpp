// Parallel execution substrate: a fixed-size thread pool with chunked
// parallel loops and a *deterministic* map-reduce.
//
// Determinism contract: chunk boundaries depend only on (begin, end, grain)
// — never on the thread count — and `parallel_map_reduce` merges per-chunk
// accumulators in chunk-index order. A reduction therefore performs the
// same floating-point operations in the same association regardless of
// whether it runs on 1 or 64 threads, so results are bit-identical to a
// serial run.
//
// Thread count: `configured_threads()` reads EXPLORA_THREADS (unset or 0 =
// std::thread::hardware_concurrency(); 1 = everything runs inline on the
// caller, the exact legacy serial behaviour). `global_pool()` is the lazily
// constructed process-wide pool every subsystem shares.
//
// Nested parallelism: a parallel_for issued from inside a pool worker runs
// inline on that worker (no new tasks are enqueued), so nested calls cannot
// deadlock the pool.
#pragma once

#include <cstddef>
#include <deque>
#include <exception>
#include <functional>
#include <optional>
#include <thread>
#include <type_traits>
#include <vector>

#include "common/thread_annotations.hpp"

namespace explora::common {

/// Parses an EXPLORA_THREADS-style value: nullptr/empty/"0" = fall back to
/// hardware_concurrency (never less than 1), otherwise the given count.
[[nodiscard]] std::size_t parse_threads(const char* value) noexcept;

/// Thread count the global pool is built with: $EXPLORA_THREADS or
/// hardware_concurrency.
[[nodiscard]] std::size_t configured_threads() noexcept;

class ThreadPool {
 public:
  /// @param threads worker count; 0 = configured_threads(). A pool of one
  ///        thread never spawns workers — every call runs inline.
  explicit ThreadPool(std::size_t threads = 0);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;
  ThreadPool(ThreadPool&&) = delete;
  ThreadPool& operator=(ThreadPool&&) = delete;

  [[nodiscard]] std::size_t thread_count() const noexcept {
    return thread_count_;
  }

  /// True when the calling thread is one of *this* pool's workers.
  [[nodiscard]] bool on_worker_thread() const noexcept;

  /// Runs `body(chunk_begin, chunk_end)` over [begin, end) split into
  /// chunks of at most `grain` indices (grain 0 is treated as 1). Blocks
  /// until every chunk finished; the caller participates in the work. The
  /// first exception thrown by any chunk is rethrown here after all chunks
  /// have completed or been abandoned.
  void parallel_for(std::size_t begin, std::size_t end, std::size_t grain,
                    const std::function<void(std::size_t, std::size_t)>& body);

  /// Deterministic chunked map-reduce: `chunk(b, e)` produces one partial
  /// result per chunk; `merge(acc, partial)` folds them into `init` in
  /// chunk-index order. Bit-identical results for any thread count.
  template <typename Acc, typename ChunkFn, typename MergeFn>
  Acc parallel_map_reduce(std::size_t begin, std::size_t end,
                          std::size_t grain, Acc init, ChunkFn&& chunk,
                          MergeFn&& merge) {
    using Partial =
        std::invoke_result_t<ChunkFn&, std::size_t, std::size_t>;
    if (end <= begin) return init;
    if (grain == 0) grain = 1;
    const std::size_t count = end - begin;
    const std::size_t num_chunks = (count + grain - 1) / grain;
    std::vector<std::optional<Partial>> partials(num_chunks);
    parallel_for(begin, end, grain,
                 [&](std::size_t chunk_begin, std::size_t chunk_end) {
                   const std::size_t index = (chunk_begin - begin) / grain;
                   partials[index].emplace(chunk(chunk_begin, chunk_end));
                 });
    Acc accumulator = std::move(init);
    for (auto& partial : partials) {
      merge(accumulator, std::move(*partial));
    }
    return accumulator;
  }

 private:
  struct Job;

  void worker_loop();
  /// Claims and runs chunks of `job` until none remain.
  static void drain(Job& job);

  std::size_t thread_count_ = 1;
  std::vector<std::thread> workers_;
  Mutex mutex_{"pool.queue", lockrank::kPoolQueue};
  CondVar wake_;
  std::deque<std::function<void()>> tasks_ EXPLORA_GUARDED_BY(mutex_);
  bool stopping_ EXPLORA_GUARDED_BY(mutex_) = false;
};

/// The process-wide pool (EXPLORA_THREADS workers, created on first use).
[[nodiscard]] ThreadPool& global_pool();

/// parallel_for on the global pool.
void parallel_for(std::size_t begin, std::size_t end, std::size_t grain,
                  const std::function<void(std::size_t, std::size_t)>& body);

/// parallel_map_reduce on the global pool.
template <typename Acc, typename ChunkFn, typename MergeFn>
Acc parallel_map_reduce(std::size_t begin, std::size_t end, std::size_t grain,
                        Acc init, ChunkFn&& chunk, MergeFn&& merge) {
  return global_pool().parallel_map_reduce(
      begin, end, grain, std::move(init), std::forward<ChunkFn>(chunk),
      std::forward<MergeFn>(merge));
}

}  // namespace explora::common
