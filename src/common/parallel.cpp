#include "common/parallel.hpp"

#include <algorithm>
#include <atomic>
#include <cstdlib>
#include <memory>

namespace explora::common {

namespace {

/// Set while a thread runs inside ThreadPool::worker_loop — used to run
/// same-pool nested parallel loops inline instead of deadlocking.
thread_local const ThreadPool* t_current_pool = nullptr;

}  // namespace

std::size_t parse_threads(const char* value) noexcept {
  const std::size_t hardware =
      std::max<std::size_t>(1, std::thread::hardware_concurrency());
  if (value == nullptr || *value == '\0') return hardware;
  char* end = nullptr;
  const unsigned long parsed = std::strtoul(value, &end, 10);
  if (end == value || parsed == 0) return hardware;
  return static_cast<std::size_t>(parsed);
}

std::size_t configured_threads() noexcept {
  return parse_threads(std::getenv("EXPLORA_THREADS"));
}

/// One parallel_for invocation: chunks are claimed via an atomic cursor so
/// the caller and the workers can all drain the same job.
struct ThreadPool::Job {
  std::size_t begin = 0;
  std::size_t grain = 1;
  std::size_t num_chunks = 0;
  std::size_t end = 0;
  const std::function<void(std::size_t, std::size_t)>* body = nullptr;
  // atomics-ok: claim-ticket (chunk claim; results land in disjoint slots)
  std::atomic<std::size_t> next{0};
  Mutex mutex{"pool.job", lockrank::kPoolJob};
  CondVar done_cv;
  std::size_t done EXPLORA_GUARDED_BY(mutex) = 0;
  /// First failure wins.
  std::exception_ptr error EXPLORA_GUARDED_BY(mutex);
};

ThreadPool::ThreadPool(std::size_t threads)
    : thread_count_(threads == 0 ? configured_threads() : threads) {
  // The caller participates in every parallel_for, so a pool of N threads
  // spawns N-1 workers.
  workers_.reserve(thread_count_ - 1);
  for (std::size_t i = 0; i + 1 < thread_count_; ++i) {
    workers_.emplace_back([this] { worker_loop(); });
  }
}

ThreadPool::~ThreadPool() {
  {
    MutexLock lock(mutex_);
    stopping_ = true;
  }
  wake_.notify_all();
  for (std::thread& worker : workers_) worker.join();
}

bool ThreadPool::on_worker_thread() const noexcept {
  return t_current_pool == this;
}

void ThreadPool::worker_loop() {
  t_current_pool = this;
  for (;;) {
    std::function<void()> task;
    {
      MutexLock lock(mutex_);
      while (!stopping_ && tasks_.empty()) wake_.wait(lock);
      if (tasks_.empty()) return;  // stopping
      task = std::move(tasks_.front());
      tasks_.pop_front();
    }
    task();
  }
}

void ThreadPool::drain(Job& job) {
  for (;;) {
    const std::size_t index =
        job.next.fetch_add(1, std::memory_order_relaxed);
    if (index >= job.num_chunks) return;
    const std::size_t chunk_begin = job.begin + index * job.grain;
    const std::size_t chunk_end =
        std::min(job.end, chunk_begin + job.grain);
    std::exception_ptr error;
    try {
      (*job.body)(chunk_begin, chunk_end);
    } catch (...) {
      error = std::current_exception();
    }
    MutexLock lock(job.mutex);
    if (error && !job.error) job.error = std::move(error);
    if (++job.done == job.num_chunks) job.done_cv.notify_all();
  }
}

void ThreadPool::parallel_for(
    std::size_t begin, std::size_t end, std::size_t grain,
    const std::function<void(std::size_t, std::size_t)>& body) {
  if (end <= begin) return;
  if (grain == 0) grain = 1;
  const std::size_t count = end - begin;
  const std::size_t num_chunks = (count + grain - 1) / grain;

  // Serial path: one thread, a single chunk, or a nested call from one of
  // this pool's own workers (which must not block on its own queue). The
  // chunk boundaries are identical to the parallel path, so reductions
  // built on top see the same arithmetic either way.
  if (thread_count_ <= 1 || num_chunks == 1 || on_worker_thread()) {
    for (std::size_t chunk_begin = begin; chunk_begin < end;
         chunk_begin += grain) {
      body(chunk_begin, std::min(end, chunk_begin + grain));
    }
    return;
  }

  // The job is shared with the enqueued helper tasks: a helper that runs
  // after every chunk is claimed finds the cursor exhausted and exits
  // without touching `body`, so the job outliving this call is safe.
  auto job = std::make_shared<Job>();
  job->begin = begin;
  job->end = end;
  job->grain = grain;
  job->num_chunks = num_chunks;
  job->body = &body;

  const std::size_t helpers =
      std::min(workers_.size(), num_chunks - 1);
  {
    MutexLock lock(mutex_);
    for (std::size_t i = 0; i < helpers; ++i) {
      tasks_.emplace_back([job] { drain(*job); });
    }
  }
  wake_.notify_all();

  drain(*job);
  MutexLock lock(job->mutex);
  while (job->done != job->num_chunks) job->done_cv.wait(lock);
  if (job->error) std::rethrow_exception(job->error);
}

ThreadPool& global_pool() {
  static ThreadPool pool(configured_threads());
  return pool;
}

void parallel_for(std::size_t begin, std::size_t end, std::size_t grain,
                  const std::function<void(std::size_t, std::size_t)>& body) {
  global_pool().parallel_for(begin, end, grain, body);
}

}  // namespace explora::common
