#include "common/interleave.hpp"

#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <exception>
#include <memory>
#include <semaphore>
#include <thread>

namespace explora::common::interleave {
namespace {

// splitmix64 finalizer: deterministic choice-order rotation keyed on
// (seed, decision depth). Pure arithmetic — no std::random_device, no
// clocks — so the explored schedule set is a function of Options alone.
std::uint64_t mix(std::uint64_t x) noexcept {
  x += 0x9e3779b97f4a7c15ULL;
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ULL;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebULL;
  return x ^ (x >> 31);
}

struct Decision {
  std::uint32_t choice = 0;  // index into the rotated runnable set
  std::uint32_t arity = 0;   // |runnable| at this point (replay sanity)
};

struct Session;

// Which virtual thread (if any) the calling OS thread embodies. The
// shim's yield_point() is a no-op whenever t_session is null — i.e. on
// every thread of the regular test suite and on the coordinator.
thread_local Session* t_session = nullptr;
thread_local int t_thread_index = -1;

struct Worker {
  enum class State { kRunnable, kRunning, kDone };

  explicit Worker() = default;

  std::binary_semaphore go{0};
  State state = State::kDone;
  std::thread os_thread;
};

// All cross-thread fields below are plain (non-atomic) on purpose: the
// coordinator and the single active worker alternate via binary
// semaphores, and semaphore release/acquire pairs give the necessary
// happens-before edges — tsan-clean token passing, exactly one runner
// at any instant.
struct Session {
  std::vector<ThreadFn>* bodies = nullptr;
  std::vector<std::unique_ptr<Worker>> workers;
  std::binary_semaphore to_coordinator{0};
  bool shutdown = false;

  // Per-schedule violation slot (first violation wins).
  bool violated = false;
  std::string violation;

  void note_violation(std::string message) {
    if (!violated) {
      violated = true;
      violation = std::move(message);
    }
  }
};

// A wedged exploration (a body blocked on a real lock, or a worker that
// died) cannot be unwound safely — the cooperative invariant is broken —
// so fail loudly instead of hanging ctest.
[[noreturn]] void fatal(const char* what) {
  std::fprintf(stderr, "interleave::explore fatal: %s\n", what);
  std::abort();
}

void worker_main(Session* session, int index) {
  t_session = session;
  t_thread_index = index;
  Worker& self = *session->workers[static_cast<std::size_t>(index)];
  for (;;) {
    self.go.acquire();
    if (session->shutdown) {
      break;
    }
    self.state = Worker::State::kRunning;
    try {
      (*session->bodies)[static_cast<std::size_t>(index)]();
    } catch (const ScheduleViolation& violation) {
      session->note_violation(violation.message);
    } catch (const std::exception& error) {
      session->note_violation(std::string("unexpected exception in body: ") +
                              error.what());
    } catch (...) {
      session->note_violation("unexpected non-std exception in body");
    }
    self.state = Worker::State::kDone;
    session->to_coordinator.release();
  }
}

// Hands the token to `worker` and waits for it to come back (next yield
// point or body completion). The timeout only trips when a body blocks
// outside the cooperative protocol.
void step_worker(Session& session, Worker& worker) {
  worker.go.release();
  if (!session.to_coordinator.try_acquire_for(std::chrono::seconds(120))) {
    fatal("virtual thread did not reach a yield point within 120s "
          "(body blocked on a real lock, or livelocked outside "
          "instrumented atomics?)");
  }
}

std::string format_trace(const std::vector<int>& trace) {
  std::string out = "schedule:";
  const std::size_t shown = trace.size() < 192 ? trace.size() : 192;
  for (std::size_t i = 0; i < shown; ++i) {
    out += ' ';
    out += std::to_string(trace[i]);
  }
  if (shown < trace.size()) {
    out += " ... (";
    out += std::to_string(trace.size());
    out += " steps)";
  }
  return out;
}

}  // namespace

namespace detail {

void yield_point() noexcept {
  Session* session = t_session;
  if (session == nullptr || t_thread_index < 0) {
    return;
  }
  Worker& self = *session->workers[static_cast<std::size_t>(t_thread_index)];
  self.state = Worker::State::kRunnable;
  session->to_coordinator.release();
  self.go.acquire();
  self.state = Worker::State::kRunning;
}

}  // namespace detail

bool in_exploration() noexcept {
  return t_session != nullptr && t_thread_index >= 0;
}

void fail(std::string message) { throw ScheduleViolation{std::move(message)}; }

Result explore(std::vector<ThreadFn> bodies, const Options& options,
               const HookFn& setup, const HookFn& check) {
  Result result;
  if (bodies.empty()) {
    result.exhausted = true;
    return result;
  }
  if (in_exploration()) {
    fatal("nested explore() inside a virtual thread is not supported");
  }

  const int n = static_cast<int>(bodies.size());
  Session session;
  session.bodies = &bodies;
  session.workers.reserve(bodies.size());
  for (int i = 0; i < n; ++i) {
    session.workers.push_back(std::make_unique<Worker>());
  }
  // Persistent workers: thread creation happens once, not once per
  // schedule — a schedule costs only semaphore handoffs.
  for (int i = 0; i < n; ++i) {
    session.workers[static_cast<std::size_t>(i)]->os_thread =
        std::thread(worker_main, &session, i);
  }

  // DFS over scheduling decisions. `stack` is the decision prefix being
  // replayed; decisions past the stack are taken as choice 0 and
  // appended, so after a schedule the stack holds its full decision
  // vector and advancing is the classic mixed-radix odometer step.
  std::vector<Decision> stack;
  std::vector<int> trace;
  std::vector<int> runnable;

  for (;;) {
    session.violated = false;
    session.violation.clear();
    if (setup) {
      try {
        setup();
      } catch (const ScheduleViolation& violation) {
        session.note_violation(violation.message);
      }
    }

    std::size_t decision_index = 0;
    std::uint64_t steps = 0;
    int preemptions = 0;
    int last = -1;
    trace.clear();
    for (auto& worker : session.workers) {
      worker->state = Worker::State::kRunnable;
    }

    while (!session.violated) {
      runnable.clear();
      for (int i = 0; i < n; ++i) {
        if (session.workers[static_cast<std::size_t>(i)]->state !=
            Worker::State::kDone) {
          runnable.push_back(i);
        }
      }
      if (runnable.empty()) {
        break;
      }
      int chosen;
      const bool last_runnable =
          last >= 0 && session.workers[static_cast<std::size_t>(last)]->state !=
                           Worker::State::kDone;
      if (runnable.size() == 1) {
        chosen = runnable.front();
      } else if (options.preemption_bound >= 0 && last_runnable &&
                 preemptions >= options.preemption_bound) {
        // Preemption budget spent: forced continuation, no decision
        // recorded (this branch is a pure function of the prefix, so
        // replay determinism holds).
        chosen = last;
      } else {
        std::uint32_t choice;
        if (decision_index < stack.size()) {
          if (stack[decision_index].arity !=
              static_cast<std::uint32_t>(runnable.size())) {
            fatal("non-deterministic body: runnable-set arity changed "
                  "between replays of the same prefix");
          }
          choice = stack[decision_index].choice;
        } else {
          stack.push_back(
              {0, static_cast<std::uint32_t>(runnable.size())});
          choice = 0;
        }
        const std::uint64_t rot =
            mix(options.seed ^ (0x51edULL * (decision_index + 1)));
        chosen = runnable[static_cast<std::size_t>(
            (choice + rot) % runnable.size())];
        ++decision_index;
      }
      if (last_runnable && chosen != last) {
        ++preemptions;
      }
      trace.push_back(chosen);
      if (++steps > options.max_steps) {
        session.note_violation(
            "schedule exceeded max_steps (livelocked retry loop?)");
        break;
      }
      last = chosen;
      step_worker(session,
                  *session.workers[static_cast<std::size_t>(chosen)]);
    }

    // A violation can leave other bodies parked mid-schedule; run them
    // to completion so the workers return to their top-of-loop park and
    // stay reusable. Invariant failures they hit are already moot.
    std::uint64_t drain_steps = 0;
    for (;;) {
      Worker* pending = nullptr;
      for (auto& worker : session.workers) {
        if (worker->state != Worker::State::kDone) {
          pending = worker.get();
          break;
        }
      }
      if (pending == nullptr) {
        break;
      }
      if (++drain_steps > options.max_steps * 64 + 1024) {
        fatal("could not drain virtual threads after a violation "
              "(unbounded body?)");
      }
      step_worker(session, *pending);
    }

    if (!session.violated && check) {
      try {
        check();
      } catch (const ScheduleViolation& violation) {
        session.note_violation(violation.message);
      }
    }

    ++result.schedules;
    if (stack.size() > result.max_decision_depth) {
      result.max_decision_depth = stack.size();
    }
    if (session.violated) {
      result.failed = true;
      result.failure = session.violation + "\n  " + format_trace(trace);
      break;
    }
    if (result.schedules >= options.max_schedules) {
      break;
    }
    // Odometer advance: drop exhausted trailing decisions, bump the
    // deepest live one. Empty stack => every schedule has been run.
    while (!stack.empty() && stack.back().choice + 1 >= stack.back().arity) {
      stack.pop_back();
    }
    if (stack.empty()) {
      result.exhausted = true;
      break;
    }
    ++stack.back().choice;
  }

  session.shutdown = true;
  for (auto& worker : session.workers) {
    worker->go.release();
  }
  for (auto& worker : session.workers) {
    worker->os_thread.join();
  }
  return result;
}

}  // namespace explora::common::interleave
