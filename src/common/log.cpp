#include "common/log.hpp"

#include <atomic>
#include <cstdio>
#include <string>

#include "common/thread_annotations.hpp"

namespace explora::common {

namespace {

// atomics-ok: gate-flag (severity threshold toggle; publishes no data)
std::atomic<LogLevel> g_level{LogLevel::kWarn};

/// Serializes sink writes so lines emitted by concurrent pool workers
/// never interleave. Highest rank in the table: logging is legal while
/// holding any other lock, and must itself call out to nothing.
Mutex& sink_mutex() {
  static Mutex mutex("log.sink", lockrank::kLogSink);
  return mutex;
}

[[nodiscard]] const char* level_name(LogLevel level) noexcept {
  switch (level) {
    case LogLevel::kTrace: return "TRACE";
    case LogLevel::kDebug: return "DEBUG";
    case LogLevel::kInfo: return "INFO";
    case LogLevel::kWarn: return "WARN";
    case LogLevel::kError: return "ERROR";
    case LogLevel::kOff: return "OFF";
  }
  return "?";
}

}  // namespace

void set_log_level(LogLevel level) noexcept {
  g_level.store(level, std::memory_order_relaxed);
}

LogLevel log_level() noexcept {
  return g_level.load(std::memory_order_relaxed);
}

void log_line(LogLevel level, std::string_view component,
              std::string_view message) {
  if (level < log_level()) return;
  std::string line;
  line.reserve(component.size() + message.size() + 16);
  line += '[';
  line += level_name(level);
  line += "] [";
  line += component;
  line += "] ";
  line += message;
  line += '\n';
  MutexLock lock(sink_mutex());
  std::fputs(line.c_str(), stderr);
}

}  // namespace explora::common
