#include "common/log.hpp"

#include <atomic>
#include <cstdio>
#include <string>

namespace explora::common {

namespace {

std::atomic<LogLevel> g_level{LogLevel::kWarn};

[[nodiscard]] const char* level_name(LogLevel level) noexcept {
  switch (level) {
    case LogLevel::kTrace: return "TRACE";
    case LogLevel::kDebug: return "DEBUG";
    case LogLevel::kInfo: return "INFO";
    case LogLevel::kWarn: return "WARN";
    case LogLevel::kError: return "ERROR";
    case LogLevel::kOff: return "OFF";
  }
  return "?";
}

}  // namespace

void set_log_level(LogLevel level) noexcept {
  g_level.store(level, std::memory_order_relaxed);
}

LogLevel log_level() noexcept {
  return g_level.load(std::memory_order_relaxed);
}

void log_line(LogLevel level, std::string_view component,
              std::string_view message) {
  if (level < log_level()) return;
  std::string line;
  line.reserve(component.size() + message.size() + 16);
  line += '[';
  line += level_name(level);
  line += "] [";
  line += component;
  line += "] ";
  line += message;
  line += '\n';
  std::fputs(line.c_str(), stderr);
}

}  // namespace explora::common
