// Lightweight contract checking (Core Guidelines I.6/I.8 style).
//
// EXPLORA_EXPECTS / EXPLORA_ENSURES abort with a diagnostic on violation.
// They are active in all build types: the library is a research artifact
// where silent state corruption is far worse than a crash.
#pragma once

#include <cstdio>
#include <cstdlib>

namespace explora::detail {

[[noreturn]] inline void contract_failure(const char* kind, const char* expr,
                                          const char* file, int line) {
  std::fprintf(stderr, "[explora] %s violated: (%s) at %s:%d\n", kind, expr,
               file, line);
  std::abort();
}

}  // namespace explora::detail

#define EXPLORA_EXPECTS(cond)                                               \
  ((cond) ? static_cast<void>(0)                                            \
          : ::explora::detail::contract_failure("precondition", #cond,      \
                                                __FILE__, __LINE__))

#define EXPLORA_ENSURES(cond)                                               \
  ((cond) ? static_cast<void>(0)                                            \
          : ::explora::detail::contract_failure("postcondition", #cond,     \
                                                __FILE__, __LINE__))

#define EXPLORA_ASSERT(cond)                                                \
  ((cond) ? static_cast<void>(0)                                            \
          : ::explora::detail::contract_failure("invariant", #cond,         \
                                                __FILE__, __LINE__))
