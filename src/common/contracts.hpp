// Tiered contract checking (Core Guidelines I.6/I.8 style).
//
// Every contract macro belongs to one of two tiers:
//
//   fast   EXPLORA_EXPECTS / EXPLORA_ENSURES / EXPLORA_ASSERT (+ _MSG)
//          cheap O(1) guards that stay on in production builds;
//   audit  EXPLORA_AUDIT (+ _MSG)
//          expensive whole-range invariants (NaN sweeps, probability
//          simplexes, SHAP additivity) meant for tests and debugging.
//
// Two knobs select what actually runs:
//
//   EXPLORA_CHECK_LEVEL (macro, build time) - the compiled *ceiling*:
//     0 = off    every macro expands to nothing; conditions are never
//                evaluated, so they must be side-effect free (enforced by
//                tools/lint_determinism.py);
//     1 = fast   fast tier compiled in, audit tier compiled out;
//     2 = audit  both tiers compiled in (the default).
//     Select via -DEXPLORA_CHECK_LEVEL=off|fast|audit at configure time.
//
//   check_level() (runtime, below the ceiling) - compiled-in checks are
//     additionally gated on one relaxed atomic load, so tests can raise the
//     level to audit and benchmarks can drop it to off without rebuilding.
//     Defaults to fast.
//
// A violation builds a ContractViolation carrying the failed expression and
// an optional value-carrying message, then invokes the installed failure
// handler. The default handler prints and aborts; tests install a throwing
// handler (see ScopedContractHandler) so violations are assertable without
// death tests. A handler that returns normally still aborts: code after a
// contract may rely on the checked condition.
//
// Contract conditions are evaluated exactly once when their tier is active
// and not at all otherwise - never twice.
#pragma once

#include <atomic>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <span>
#include <string>
#include <thread>
#include <utility>

#include "common/format.hpp"
#include "common/interleave.hpp"

#ifndef EXPLORA_CHECK_LEVEL
#define EXPLORA_CHECK_LEVEL 2
#endif

namespace explora::contracts {

enum class CheckLevel : int { kOff = 0, kFast = 1, kAudit = 2 };

/// The compiled ceiling of this translation unit.
inline constexpr CheckLevel kCompiledCheckLevel =
    static_cast<CheckLevel>(EXPLORA_CHECK_LEVEL);

/// Everything a failed contract knows about itself.
struct ContractViolation {
  const char* kind;      ///< "precondition", "postcondition", "invariant", "audit"
  const char* expr;      ///< the stringized condition
  const char* file;
  int line;
  std::string message;   ///< value-carrying detail ("" for plain macros)
};

/// May throw to unwind into a test; returning normally leads to abort().
using ContractHandler = void (*)(const ContractViolation&);

namespace detail {

// atomics-ok: gate-flag (runtime level toggle; no data is published through it)
inline std::atomic<int> g_check_level{static_cast<int>(CheckLevel::kFast)};
inline std::atomic<ContractHandler> g_handler{nullptr};

}  // namespace detail

/// Runtime check level (never observed above the per-TU compiled ceiling).
[[nodiscard]] inline CheckLevel check_level() noexcept {
  return static_cast<CheckLevel>(
      detail::g_check_level.load(std::memory_order_relaxed));
}

inline void set_check_level(CheckLevel level) noexcept {
  detail::g_check_level.store(static_cast<int>(level),
                              std::memory_order_relaxed);
}

/// Installs `handler` for all subsequent violations; returns the previous
/// handler (nullptr = the print-and-abort default).
inline ContractHandler set_contract_handler(ContractHandler handler) noexcept {
  return detail::g_handler.exchange(handler, std::memory_order_acq_rel);
}

[[nodiscard]] inline ContractHandler contract_handler() noexcept {
  return detail::g_handler.load(std::memory_order_acquire);
}

/// Dispatches a violation to the installed handler; aborts if the handler
/// declines to throw (or none is installed). [[noreturn]] is honest: the
/// only non-aborting exit is an exception.
[[noreturn]] inline void contract_failure(const char* kind, const char* expr,
                                          const char* file, int line,
                                          std::string message = {}) {
  ContractViolation violation{kind, expr, file, line, std::move(message)};
  if (ContractHandler handler = contract_handler()) {
    handler(violation);
  }
  std::fprintf(stderr, "[explora] %s violated: (%s) at %s:%d%s%s\n",
               violation.kind, violation.expr, violation.file, violation.line,
               violation.message.empty() ? "" : " - ",
               violation.message.c_str());
  std::abort();
}

/// Best-effort misuse detector for process-global override slots (the
/// runtime check level, the failure handler, telemetry's active registry).
/// The slots themselves stay lock-free atomics/pointers that any thread
/// may *read*; what is not supported is two threads *installing* scoped
/// overrides concurrently — the restores would interleave and resurrect a
/// stale value. Each slot owns one SingleThreadScope; enter() fires a
/// fast-tier contract when a scope opens on a second thread while another
/// thread's scope is active (nested scopes on one thread stay fine).
class SingleThreadScope {
 public:
  /// @param what guard name used in the violation message.
  /// May throw through a test-installed contract handler.
  void enter(const char* what) {
    if (active_.load(std::memory_order_acquire) > 0 &&
        owner_.load(std::memory_order_acquire) !=
            std::this_thread::get_id() &&
        check_level() >= CheckLevel::kFast) {
      contract_failure(
          "precondition", "scoped overrides install from a single thread",
          __FILE__, __LINE__,
          common::format("{} opened on a second thread while another "
                         "thread's scope is active",
                         what));
    }
    if (active_.fetch_add(1, std::memory_order_acq_rel) == 0) {
      owner_.store(std::this_thread::get_id(), std::memory_order_release);
    }
  }
  void exit() noexcept { active_.fetch_sub(1, std::memory_order_acq_rel); }

  /// Open-scope count (approximate under concurrency; exact once all
  /// scopes have exited). Exposed for the interleaving model checker.
  [[nodiscard]] int active() const noexcept {
    return active_.load(std::memory_order_acquire);
  }

 private:
  common::interleave::Atomic<int> active_{0};
  common::interleave::Atomic<std::thread::id> owner_{};
};

namespace detail {

inline SingleThreadScope g_check_level_scope;
inline SingleThreadScope g_handler_scope;

}  // namespace detail

/// RAII runtime-level override (tests raise to audit, benches drop to
/// off). Install from one thread at a time — worker threads may read the
/// level concurrently, but a second installing thread is a fast-tier
/// contract violation (see SingleThreadScope), so the constructor is not
/// noexcept.
class ScopedCheckLevel {
 public:
  explicit ScopedCheckLevel(CheckLevel level) : previous_(check_level()) {
    detail::g_check_level_scope.enter("ScopedCheckLevel");
    set_check_level(level);
  }
  ~ScopedCheckLevel() {
    set_check_level(previous_);
    detail::g_check_level_scope.exit();
  }
  ScopedCheckLevel(const ScopedCheckLevel&) = delete;
  ScopedCheckLevel& operator=(const ScopedCheckLevel&) = delete;

 private:
  CheckLevel previous_;
};

/// RAII handler override. Same single-installing-thread rule as
/// ScopedCheckLevel.
class ScopedContractHandler {
 public:
  explicit ScopedContractHandler(ContractHandler handler) {
    detail::g_handler_scope.enter("ScopedContractHandler");
    previous_ = set_contract_handler(handler);
  }
  ~ScopedContractHandler() {
    set_contract_handler(previous_);
    detail::g_handler_scope.exit();
  }
  ScopedContractHandler(const ScopedContractHandler&) = delete;
  ScopedContractHandler& operator=(const ScopedContractHandler&) = delete;

 private:
  ContractHandler previous_ = nullptr;
};

// ---- approved numeric helpers ---------------------------------------------
// These are the blessed homes for floating-point comparison; raw float ==
// elsewhere is flagged by tools/lint_determinism.py.

/// |a - b| <= atol + rtol * max(|a|, |b|), false for NaN.
[[nodiscard]] inline bool approx_equal(double a, double b, double atol = 1e-9,
                                       double rtol = 1e-9) noexcept {
  if (std::isnan(a) || std::isnan(b)) return false;
  if (a == b) return true;  // det-ok: float-eq (exact match short-circuit)
  return std::fabs(a - b) <= atol + rtol * std::fmax(std::fabs(a),
                                                     std::fabs(b));
}

/// True when every element is neither NaN nor infinite.
[[nodiscard]] inline bool all_finite(std::span<const double> values) noexcept {
  for (double v : values) {
    if (!std::isfinite(v)) return false;
  }
  return true;
}

/// True when every element is finite and >= 0.
[[nodiscard]] inline bool all_non_negative(
    std::span<const double> values) noexcept {
  for (double v : values) {
    if (!(v >= 0.0)) return false;  // also rejects NaN
  }
  return true;
}

/// True when `probs` lies on the probability simplex: every entry in
/// [0, 1] and the sum within `tol` of 1.
[[nodiscard]] inline bool is_probability_simplex(std::span<const double> probs,
                                                 double tol = 1e-9) noexcept {
  double sum = 0.0;
  for (double p : probs) {
    if (!(p >= 0.0 && p <= 1.0)) return false;  // also rejects NaN
    sum += p;
  }
  return approx_equal(sum, 1.0, tol, tol);
}

}  // namespace explora::contracts

// ---- macro layer -----------------------------------------------------------
// Conditions are bound once (EXPLORA_DETAIL_CHECK evaluates `cond` a single
// time) and never evaluated when the tier is compiled out or the runtime
// level is below the tier.

#define EXPLORA_DETAIL_CHECK(tier, kind, cond)                               \
  do {                                                                       \
    if (::explora::contracts::check_level() >=                               \
        ::explora::contracts::CheckLevel::tier) {                            \
      if (!static_cast<bool>(cond)) {                                        \
        ::explora::contracts::contract_failure(kind, #cond, __FILE__,        \
                                               __LINE__);                    \
      }                                                                      \
    }                                                                        \
  } while (false)

#define EXPLORA_DETAIL_CHECK_MSG(tier, kind, cond, ...)                      \
  do {                                                                       \
    if (::explora::contracts::check_level() >=                               \
        ::explora::contracts::CheckLevel::tier) {                            \
      if (!static_cast<bool>(cond)) {                                        \
        ::explora::contracts::contract_failure(                              \
            kind, #cond, __FILE__, __LINE__,                                 \
            ::explora::common::format(__VA_ARGS__));                         \
      }                                                                      \
    }                                                                        \
  } while (false)

#define EXPLORA_DETAIL_NOOP(cond) \
  do {                            \
  } while (false)

#if EXPLORA_CHECK_LEVEL >= 1
#define EXPLORA_EXPECTS(cond) EXPLORA_DETAIL_CHECK(kFast, "precondition", cond)
#define EXPLORA_ENSURES(cond) EXPLORA_DETAIL_CHECK(kFast, "postcondition", cond)
#define EXPLORA_ASSERT(cond) EXPLORA_DETAIL_CHECK(kFast, "invariant", cond)
#define EXPLORA_EXPECTS_MSG(cond, ...) \
  EXPLORA_DETAIL_CHECK_MSG(kFast, "precondition", cond, __VA_ARGS__)
#define EXPLORA_ENSURES_MSG(cond, ...) \
  EXPLORA_DETAIL_CHECK_MSG(kFast, "postcondition", cond, __VA_ARGS__)
#define EXPLORA_ASSERT_MSG(cond, ...) \
  EXPLORA_DETAIL_CHECK_MSG(kFast, "invariant", cond, __VA_ARGS__)
#else
#define EXPLORA_EXPECTS(cond) EXPLORA_DETAIL_NOOP(cond)
#define EXPLORA_ENSURES(cond) EXPLORA_DETAIL_NOOP(cond)
#define EXPLORA_ASSERT(cond) EXPLORA_DETAIL_NOOP(cond)
#define EXPLORA_EXPECTS_MSG(cond, ...) EXPLORA_DETAIL_NOOP(cond)
#define EXPLORA_ENSURES_MSG(cond, ...) EXPLORA_DETAIL_NOOP(cond)
#define EXPLORA_ASSERT_MSG(cond, ...) EXPLORA_DETAIL_NOOP(cond)
#endif

#if EXPLORA_CHECK_LEVEL >= 2
#define EXPLORA_AUDIT(cond) EXPLORA_DETAIL_CHECK(kAudit, "audit", cond)
#define EXPLORA_AUDIT_MSG(cond, ...) \
  EXPLORA_DETAIL_CHECK_MSG(kAudit, "audit", cond, __VA_ARGS__)
#else
#define EXPLORA_AUDIT(cond) EXPLORA_DETAIL_NOOP(cond)
#define EXPLORA_AUDIT_MSG(cond, ...) EXPLORA_DETAIL_NOOP(cond)
#endif
