// Minimal std::format replacement (the toolchain's libstdc++ predates
// <format>). Supports the subset the project uses:
//   {}            default formatting
//   {:<N} {:>N}   width with explicit alignment
//   {:+.Nf}       sign + fixed precision
//   {:.Nf}        fixed precision
//   {:>W.Nf}      width + precision
// plus {{ and }} escapes. Unknown specs throw std::invalid_argument.
#pragma once

#include <array>
#include <functional>
#include <string>
#include <string_view>
#include <type_traits>

namespace explora::common {

struct FormatSpec {
  char fill = ' ';
  char align = '\0';  ///< '<', '>' or default per type
  bool plus = false;
  int width = 0;
  int precision = -1;
  char type = '\0';   ///< 'f', 'e', 'g', 'd', 'x', 's' or default
};

/// Parses the text after ':' in a replacement field.
[[nodiscard]] FormatSpec parse_format_spec(std::string_view spec);

[[nodiscard]] std::string format_value(const FormatSpec& spec, double value);
[[nodiscard]] std::string format_value(const FormatSpec& spec, float value);
[[nodiscard]] std::string format_value(const FormatSpec& spec,
                                       long long value);
[[nodiscard]] std::string format_value(const FormatSpec& spec,
                                       unsigned long long value);
[[nodiscard]] std::string format_value(const FormatSpec& spec, bool value);
[[nodiscard]] std::string format_value(const FormatSpec& spec,
                                       std::string_view value);

template <typename T>
[[nodiscard]] std::string format_any(const FormatSpec& spec, const T& value) {
  if constexpr (std::is_same_v<T, bool>) {
    return format_value(spec, static_cast<bool>(value));
  } else if constexpr (std::is_integral_v<T> && std::is_signed_v<T>) {
    return format_value(spec, static_cast<long long>(value));
  } else if constexpr (std::is_integral_v<T>) {
    return format_value(spec, static_cast<unsigned long long>(value));
  } else if constexpr (std::is_enum_v<T>) {
    return format_value(spec, static_cast<long long>(value));
  } else if constexpr (std::is_floating_point_v<T>) {
    return format_value(spec, static_cast<double>(value));
  } else if constexpr (std::is_convertible_v<const T&, std::string_view>) {
    return format_value(spec, std::string_view(value));
  } else {
    static_assert(std::is_convertible_v<const T&, std::string_view>,
                  "unsupported format argument type");
    return {};
  }
}

namespace detail {

using Formatter = std::function<std::string(const FormatSpec&)>;

[[nodiscard]] std::string vformat(std::string_view fmt,
                                  const Formatter* formatters,
                                  std::size_t count);

}  // namespace detail

/// Formats `fmt`, replacing `{...}` fields with the arguments in order.
template <typename... Args>
[[nodiscard]] std::string format(std::string_view fmt, const Args&... args) {
  if constexpr (sizeof...(Args) == 0) {
    return detail::vformat(fmt, nullptr, 0);
  } else {
    const std::array<detail::Formatter, sizeof...(Args)> formatters = {
        detail::Formatter(
            [&args](const FormatSpec& spec) { return format_any(spec, args); })...};
    return detail::vformat(fmt, formatters.data(), formatters.size());
  }
}

}  // namespace explora::common
