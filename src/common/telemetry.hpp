// Deterministic observability layer: counters, gauges, fixed-bucket
// histograms and tick-clocked span statistics, collected in a thread-safe
// registry that snapshots to canonical sorted JSON.
//
// Determinism contract (the whole point of this layer): every recorded
// value is an *integer* in a simulation-defined unit — simulation ticks,
// dispatch rounds, PRBs, bytes, model evaluations — never wall-clock time.
// Aggregation is commutative (atomic adds, atomic min/max), so a snapshot
// taken after a run is bit-identical across repeat runs, across
// EXPLORA_THREADS values, and across machines, for fixed seeds. Wall
// clocks, floating-point accumulation and unordered-container iteration
// are banned here (enforced by tools/lint_determinism.py's telemetry-clock
// rule): any of them would make two identical runs disagree.
//
// Two knobs, mirroring common/contracts.hpp:
//
//   EXPLORA_TELEMETRY_LEVEL (macro, build time)
//     0 = off   every record method compiles to an empty inline body —
//               zero cost, no atomics touched (select with
//               -DEXPLORA_TELEMETRY=OFF at configure time);
//     1 = on    recording compiled in (the default).
//
//   set_enabled() (runtime, below the ceiling) — compiled-in recording is
//     additionally gated on one relaxed atomic load, so benches can
//     measure the enabled-vs-disabled delta without rebuilding.
//
// Instrumented components resolve their metrics once, at construction,
// from active_registry() and keep raw pointers; the hot path is then a
// single relaxed atomic add. Tests isolate themselves by constructing the
// system under test inside a ScopedRegistry (which must outlive every
// component that resolved metrics from it).
#pragma once

#include <atomic>
#include <cstdint>
#include <limits>
#include <map>
#include <memory>
#include <span>
#include <string>
#include <string_view>
#include <vector>

#include "common/analysis_annotations.hpp"
#include "common/interleave.hpp"
#include "common/thread_annotations.hpp"

#ifndef EXPLORA_TELEMETRY_LEVEL
#define EXPLORA_TELEMETRY_LEVEL 1
#endif

namespace explora::telemetry {

/// True when recording is compiled in (EXPLORA_TELEMETRY_LEVEL >= 1).
/// Golden-trace tests skip themselves when the layer is compiled out.
inline constexpr bool kCompiledIn = EXPLORA_TELEMETRY_LEVEL >= 1;

namespace detail {

// atomics-ok: gate-flag (recording on/off toggle; publishes no data)
inline std::atomic<bool> g_enabled{true};

// atomics-ok: monotone-cas (commutative min fold; readers tolerate staleness)
inline void update_min(common::interleave::Atomic<std::int64_t>& target,
                       std::int64_t value) noexcept {
  std::int64_t current = target.load(std::memory_order_relaxed);
  // hotpath-ok: bounded monotone CAS - every retry means another thread
  // already tightened the bound, so iterations <= concurrent recorders
  while (value < current &&
         !target.compare_exchange_weak(current, value,
                                       std::memory_order_relaxed)) {
  }
}

// atomics-ok: monotone-cas (commutative max fold; readers tolerate staleness)
inline void update_max(common::interleave::Atomic<std::int64_t>& target,
                       std::int64_t value) noexcept {
  std::int64_t current = target.load(std::memory_order_relaxed);
  // hotpath-ok: bounded monotone CAS - every retry means another thread
  // already tightened the bound, so iterations <= concurrent recorders
  while (value > current &&
         !target.compare_exchange_weak(current, value,
                                       std::memory_order_relaxed)) {
  }
}

}  // namespace detail

/// Runtime gate for compiled-in recording (one relaxed load per record).
[[nodiscard]] inline bool enabled() noexcept {
  return detail::g_enabled.load(std::memory_order_relaxed);
}

inline void set_enabled(bool on) noexcept {
  detail::g_enabled.store(on, std::memory_order_relaxed);
}

/// RAII runtime toggle (benches measure the enabled/disabled delta).
class ScopedEnabled {
 public:
  explicit ScopedEnabled(bool on) noexcept : previous_(enabled()) {
    set_enabled(on);
  }
  ~ScopedEnabled() { set_enabled(previous_); }
  ScopedEnabled(const ScopedEnabled&) = delete;
  ScopedEnabled& operator=(const ScopedEnabled&) = delete;

 private:
  bool previous_;
};

enum class MetricKind : std::uint8_t {
  kCounter = 0,
  kGauge = 1,
  kHistogram = 2,
  kSpan = 3,
};

[[nodiscard]] std::string_view to_string(MetricKind kind) noexcept;

/// Monotonic event count. Merge rule: values add.
class Counter {
 public:
  void add(std::uint64_t n = 1) noexcept {
#if EXPLORA_TELEMETRY_LEVEL >= 1
    if (enabled()) value_.fetch_add(n, std::memory_order_relaxed);
#else
    (void)n;
#endif
  }
  [[nodiscard]] std::uint64_t value() const noexcept {
    return value_.load(std::memory_order_relaxed);
  }

 private:
  // atomics-ok: commutative-counter (order-free add fold)
  common::interleave::Atomic<std::uint64_t> value_{0};
};

/// Last-written level (queue depths, in-flight counts). Merge rule: the
/// maximum wins — max is the only order-independent combination of two
/// last-write values, and "high-water mark" is the useful semantics when
/// folding per-shard snapshots.
class Gauge {
 public:
  void set(std::int64_t v) noexcept {
#if EXPLORA_TELEMETRY_LEVEL >= 1
    if (enabled()) value_.store(v, std::memory_order_relaxed);
#else
    (void)v;
#endif
  }
  void add(std::int64_t delta) noexcept {
#if EXPLORA_TELEMETRY_LEVEL >= 1
    if (enabled()) value_.fetch_add(delta, std::memory_order_relaxed);
#else
    (void)delta;
#endif
  }
  [[nodiscard]] std::int64_t value() const noexcept {
    return value_.load(std::memory_order_relaxed);
  }

 private:
  // atomics-ok: approx-snapshot (last-write level; no data published through it)
  common::interleave::Atomic<std::int64_t> value_{0};
};

/// Fixed-bucket histogram over integer values. Bucket i counts values
/// <= bounds[i] (first matching bound); one implicit overflow bucket
/// catches the rest. Tracks count, sum, min and max alongside. All
/// updates are commutative atomics, so concurrent observation from pool
/// workers yields the same snapshot as a serial run.
class Histogram {
 public:
  /// @param bounds strictly increasing upper bounds; at least one.
  explicit Histogram(std::span<const std::int64_t> bounds);

  void observe(std::int64_t value) noexcept {
#if EXPLORA_TELEMETRY_LEVEL >= 1
    if (!enabled()) return;
    buckets_[bucket_index(value)].fetch_add(1, std::memory_order_relaxed);
    count_.fetch_add(1, std::memory_order_relaxed);
    sum_.fetch_add(value, std::memory_order_relaxed);
    detail::update_min(min_, value);
    detail::update_max(max_, value);
#else
    (void)value;
#endif
  }

  /// Folds a locally pre-aggregated batch in one shot. Hot paths that
  /// observe on a single thread can accumulate plain (non-atomic) bucket
  /// counts and flush at a coarser cadence — e.g. the per-TTI scheduler
  /// grants flushed once per report window. `bucket_counts` must have
  /// bounds().size() + 1 entries laid out like bucket_count(); min/max are
  /// ignored when `count` is 0. Commutative, like observe().
  void observe_batch(std::span<const std::uint64_t> bucket_counts,
                     std::uint64_t count, std::int64_t sum, std::int64_t min,
                     std::int64_t max) noexcept;

  [[nodiscard]] const std::vector<std::int64_t>& bounds() const noexcept {
    return bounds_;
  }
  /// Count in bucket `i` (i == bounds().size() is the overflow bucket).
  [[nodiscard]] std::uint64_t bucket_count(std::size_t i) const noexcept {
    return buckets_[i].load(std::memory_order_relaxed);
  }
  [[nodiscard]] std::uint64_t count() const noexcept {
    return count_.load(std::memory_order_relaxed);
  }
  [[nodiscard]] std::int64_t sum() const noexcept {
    return sum_.load(std::memory_order_relaxed);
  }
  /// min()/max() are 0 while count() == 0.
  [[nodiscard]] std::int64_t min() const noexcept;
  [[nodiscard]] std::int64_t max() const noexcept;

 private:
  [[nodiscard]] std::size_t bucket_index(std::int64_t value) const noexcept;

  std::vector<std::int64_t> bounds_;
  // atomics-ok: commutative-counter (order-free add folds)
  std::unique_ptr<common::interleave::Atomic<std::uint64_t>[]> buckets_;
  // atomics-ok: commutative-counter (order-free add fold)
  common::interleave::Atomic<std::uint64_t> count_{0};
  // atomics-ok: commutative-counter (order-free add fold)
  common::interleave::Atomic<std::int64_t> sum_{0};
  // atomics-ok: monotone-cas (min fold via detail::update_min)
  common::interleave::Atomic<std::int64_t> min_;
  // atomics-ok: monotone-cas (max fold via detail::update_max)
  common::interleave::Atomic<std::int64_t> max_;
};

/// Single-thread batching front end for a shared Histogram: observe() is
/// plain integer work (no atomics), flush() folds the accumulated window
/// into the histogram via observe_batch(). For hot paths owned by one
/// thread (the gNB's TTI loop) that flush at a coarser cadence, e.g. once
/// per report window. Unflushed observations are invisible to snapshots.
class LocalHistogram {
 public:
  LocalHistogram() = default;
  explicit LocalHistogram(Histogram* target)
      : target_(target),
        window_buckets_(target != nullptr ? target->bounds().size() + 1 : 0,
                        0) {}

  EXPLORA_REALTIME void observe(std::int64_t value) noexcept {
#if EXPLORA_TELEMETRY_LEVEL >= 1
    if (!enabled()) return;
    const auto& bounds = target_->bounds();
    std::size_t bucket = 0;
    while (bucket < bounds.size() && value > bounds[bucket]) ++bucket;
    ++window_buckets_[bucket];
    ++window_count_;
    window_sum_ += value;
    if (value < window_min_) window_min_ = value;
    if (value > window_max_) window_max_ = value;
#else
    (void)value;
#endif
  }

  EXPLORA_REALTIME void flush() noexcept {
#if EXPLORA_TELEMETRY_LEVEL >= 1
    if (window_count_ == 0) return;
    target_->observe_batch(window_buckets_, window_count_, window_sum_,
                           window_min_, window_max_);
    for (auto& bucket : window_buckets_) bucket = 0;
    window_count_ = 0;
    window_sum_ = 0;
    window_min_ = std::numeric_limits<std::int64_t>::max();
    window_max_ = std::numeric_limits<std::int64_t>::min();
#endif
  }

  [[nodiscard]] std::uint64_t pending() const noexcept {
    return window_count_;
  }

 private:
  // The window_* members are this thread's plain (non-atomic) batch; the
  // distinct names keep them out of the atomics lint's cross-TU variable
  // table, which pairs atomic accesses by member name.
  Histogram* target_ = nullptr;
  std::vector<std::uint64_t> window_buckets_;
  std::uint64_t window_count_ = 0;
  std::int64_t window_sum_ = 0;
  std::int64_t window_min_ = std::numeric_limits<std::int64_t>::max();
  std::int64_t window_max_ = std::numeric_limits<std::int64_t>::min();
};

/// Aggregated integer-duration statistic (simulation ticks, dispatch
/// rounds, model evaluations — never wall-clock). count/total/min/max.
class SpanStat {
 public:
  void record(std::int64_t duration) noexcept {
#if EXPLORA_TELEMETRY_LEVEL >= 1
    if (!enabled()) return;
    count_.fetch_add(1, std::memory_order_relaxed);
    total_.fetch_add(duration, std::memory_order_relaxed);
    detail::update_min(min_, duration);
    detail::update_max(max_, duration);
#else
    (void)duration;
#endif
  }

  [[nodiscard]] std::uint64_t count() const noexcept {
    return count_.load(std::memory_order_relaxed);
  }
  [[nodiscard]] std::int64_t total() const noexcept {
    return total_.load(std::memory_order_relaxed);
  }
  /// min()/max() are 0 while count() == 0.
  [[nodiscard]] std::int64_t min() const noexcept;
  [[nodiscard]] std::int64_t max() const noexcept;

 private:
  // atomics-ok: commutative-counter (order-free add fold)
  common::interleave::Atomic<std::uint64_t> count_{0};
  // atomics-ok: commutative-counter (order-free add fold)
  common::interleave::Atomic<std::int64_t> total_{0};
  // Sentinels so the first record() always wins both CAS races.
  // atomics-ok: monotone-cas (min fold via detail::update_min)
  common::interleave::Atomic<std::int64_t> min_{
      std::numeric_limits<std::int64_t>::max()};
  // atomics-ok: monotone-cas (max fold via detail::update_max)
  common::interleave::Atomic<std::int64_t> max_{
      std::numeric_limits<std::int64_t>::min()};
};

/// One metric frozen at snapshot time. Plain data, so snapshots can be
/// stored, diffed and merged without touching the live registry.
struct MetricSnapshot {
  MetricKind kind = MetricKind::kCounter;
  std::uint64_t count = 0;   ///< counter value / histogram / span count
  std::int64_t value = 0;    ///< gauge level
  std::int64_t sum = 0;      ///< histogram sum / span total
  std::int64_t min = 0;
  std::int64_t max = 0;
  std::vector<std::int64_t> bounds;      ///< histogram upper bounds
  std::vector<std::uint64_t> buckets;    ///< bounds.size() + 1 entries

  friend bool operator==(const MetricSnapshot&,
                         const MetricSnapshot&) = default;
};

/// Full registry state at one instant, keyed by metric name (sorted — the
/// canonical order the JSON document uses).
struct TelemetrySnapshot {
  std::int64_t now = 0;  ///< registry tick clock at snapshot time
  std::map<std::string, MetricSnapshot> metrics;

  /// Canonical JSON: sorted metric names, fixed key order, integers only.
  /// Byte-identical for equal snapshots on every platform.
  [[nodiscard]] std::string to_json() const;

  friend bool operator==(const TelemetrySnapshot&,
                         const TelemetrySnapshot&) = default;
};

/// Order-independent fold of two snapshots (e.g. per-shard registries):
/// counters/histograms/spans add (min/max combine), gauges keep the max.
/// merge(a, b) == merge(b, a) and merge is associative; the `now` clock
/// keeps the larger value. Metrics present in only one input pass through
/// unchanged; a kind or bucket-layout mismatch for the same name is a
/// contract violation.
[[nodiscard]] TelemetrySnapshot merge(const TelemetrySnapshot& a,
                                      const TelemetrySnapshot& b);

class Registry {
 public:
  // Both out of line: Entry is incomplete here, and the map of
  // unique_ptr<Entry> needs its destructor instantiated by both.
  Registry();
  ~Registry();
  Registry(const Registry&) = delete;
  Registry& operator=(const Registry&) = delete;

  /// Finds or creates the named metric. Names are dot-namespaced per
  /// subsystem ("oran.rmr.delivered"). Re-requesting an existing name
  /// returns the same object; requesting it as a different kind (or a
  /// histogram with different bounds) is a contract violation. Returned
  /// references stay valid for the registry's lifetime.
  [[nodiscard]] Counter& counter(std::string_view name);
  [[nodiscard]] Gauge& gauge(std::string_view name);
  [[nodiscard]] Histogram& histogram(std::string_view name,
                                     std::span<const std::int64_t> bounds);
  [[nodiscard]] SpanStat& span(std::string_view name);

  /// The registry's simulation-tick clock, advanced by the component that
  /// owns simulated time (the gNB). ScopedSpan reads it at entry and exit.
  void set_now(std::int64_t tick) noexcept {
    now_.store(tick, std::memory_order_relaxed);
  }
  [[nodiscard]] std::int64_t now() const noexcept {
    return now_.load(std::memory_order_relaxed);
  }

  [[nodiscard]] TelemetrySnapshot snapshot() const;
  /// snapshot().to_json() in one call.
  [[nodiscard]] std::string snapshot_json() const;

  /// Number of registered metrics.
  [[nodiscard]] std::size_t size() const;

 private:
  struct Entry;

  [[nodiscard]] Entry& find_or_create(std::string_view name, MetricKind kind,
                                      std::span<const std::int64_t> bounds);

  // Writers (metric creation) are rare and front-loaded; snapshots and
  // size() read shared.
  mutable common::SharedMutex mutex_{"telemetry.registry",
                                     common::lockrank::kTelemetryRegistry};
  std::map<std::string, std::unique_ptr<Entry>, std::less<>> metrics_
      EXPLORA_GUARDED_BY(mutex_);
  // atomics-ok: approx-snapshot (tick clock; single writer, racy readers ok)
  std::atomic<std::int64_t> now_{0};
};

/// The process-wide default registry.
[[nodiscard]] Registry& global_registry();

/// The registry instrumented components resolve metrics from (the global
/// one unless a ScopedRegistry is active).
[[nodiscard]] Registry& active_registry() noexcept;

/// RAII redirection of active_registry() to a fresh or caller-owned
/// registry. Components constructed inside the scope bind their metrics to
/// it, so golden-trace runs and tests observe only their own pipeline. The
/// scoped registry must outlive every component that bound to it.
class ScopedRegistry {
 public:
  /// Activates a fresh, internally-owned registry.
  ScopedRegistry();
  /// Activates `registry` (caller-owned).
  explicit ScopedRegistry(Registry& registry);
  ~ScopedRegistry();
  ScopedRegistry(const ScopedRegistry&) = delete;
  ScopedRegistry& operator=(const ScopedRegistry&) = delete;

  [[nodiscard]] Registry& registry() noexcept { return *active_; }

 private:
  std::unique_ptr<Registry> owned_;
  Registry* active_;
  Registry* previous_;
};

/// Name-prefix helper for per-subsystem namespacing: Scope("oran.rmr")
/// resolves "delivered" as "oran.rmr.delivered" against a registry.
class Scope {
 public:
  explicit Scope(std::string prefix, Registry* registry = nullptr)
      : prefix_(std::move(prefix)),
        registry_(registry != nullptr ? registry : &active_registry()) {}

  [[nodiscard]] Counter& counter(std::string_view name) {
    return registry_->counter(qualified(name));
  }
  [[nodiscard]] Gauge& gauge(std::string_view name) {
    return registry_->gauge(qualified(name));
  }
  [[nodiscard]] Histogram& histogram(std::string_view name,
                                     std::span<const std::int64_t> bounds) {
    return registry_->histogram(qualified(name), bounds);
  }
  [[nodiscard]] SpanStat& span(std::string_view name) {
    return registry_->span(qualified(name));
  }
  [[nodiscard]] Registry& registry() noexcept { return *registry_; }

 private:
  [[nodiscard]] std::string qualified(std::string_view name) const {
    std::string full;
    full.reserve(prefix_.size() + 1 + name.size());
    full += prefix_;
    full += '.';
    full += name;
    return full;
  }

  std::string prefix_;
  Registry* registry_;
};

/// RAII span clocked by a registry's tick clock: records now() - start
/// into `stat` on destruction, and maintains a per-thread nesting depth so
/// tests can assert well-formed (properly bracketed) span nesting.
class ScopedSpan {
 public:
  ScopedSpan(SpanStat& stat, const Registry& registry) noexcept
      : stat_(&stat), registry_(&registry), start_(registry.now()) {
    ++thread_depth();
  }
  ~ScopedSpan() {
    --thread_depth();
    stat_->record(registry_->now() - start_);
  }
  ScopedSpan(const ScopedSpan&) = delete;
  ScopedSpan& operator=(const ScopedSpan&) = delete;

  /// Open ScopedSpans on the calling thread (0 = balanced).
  [[nodiscard]] static int depth() noexcept { return thread_depth(); }

 private:
  [[nodiscard]] static int& thread_depth() noexcept {
    thread_local int depth = 0;
    return depth;
  }

  SpanStat* stat_;
  const Registry* registry_;
  std::int64_t start_;
};

}  // namespace explora::telemetry
