// Deterministic interleaving model checker for the lock-free core
// (DESIGN.md §14): a cooperative virtual-thread scheduler that runs N
// thread bodies with exactly ONE thread active at a time and explores
// every scheduling decision by depth-first search, so small concurrent
// tests (the Vyukov serving ring, the contracts SingleThreadScope, the
// telemetry relaxed folds) are checked over EVERY interleaving up to a
// bounded schedule depth instead of the handful a tsan stress run
// happens to sample — in the spirit of CHESS / Relacy / CDSChecker
// stateless model checking.
//
// Two granularities, one test source:
//
//   default build        Atomic<T> is a plain std::atomic<T> alias; the
//                        explorer interleaves only at explicit
//                        checkpoint() calls, so whole operations (one
//                        try_push, one enter) are atomic steps.
//   EXPLORA_MODEL_CHECK  Atomic<T> is a shim that announces a scheduling
//                        point before every load/store/RMW, so the
//                        explorer can preempt *between* the individual
//                        atomic accesses inside an operation — the
//                        granularity at which publish/consume bugs live.
//
// The exploration is sequentially consistent (one runner at a time with
// semaphore handoff means every access is globally ordered), which is a
// sound over-approximation for bug *detection* at this granularity and
// exact for the SC outcomes; the weak-memory (relaxed/acquire/release)
// discipline itself is audited statically by tools/lint_atomics.py —
// the two halves of the memory-model layer deliberately split the work.
//
// Determinism contract: schedule choice order is a pure function of
// (seed, decision depth) via a splitmix64 mix — no wall clock, no
// std::random_device (tools/lint_determinism.py enforces this) — so a
// failing schedule replays exactly from its recorded choice trace.
//
// Virtual-thread bodies must be lock-free and bounded: only instrumented
// atomics, checkpoint() calls and plain computation. A body that blocks
// on a real mutex/condvar deadlocks the cooperative scheduler (the
// watchdog aborts with a diagnostic rather than hanging ctest), and an
// unbounded retry loop trips the per-schedule step bound.
#pragma once

#include <atomic>
#include <cstdint>
#include <functional>
#include <string>
#include <utility>
#include <vector>

namespace explora::common::interleave {

namespace detail {

/// Scheduling point: hands control back to the explorer when the calling
/// thread is a virtual thread of an active exploration, else a no-op
/// (one thread_local read). The instrumented Atomic shim calls this
/// before every access.
void yield_point() noexcept;

}  // namespace detail

/// Explicit scheduling point for code whose shared accesses are not
/// instrumented (coarse-granularity exploration in default builds, and
/// method-level interleaving of externally-synchronized state machines
/// like CircuitBreaker).
inline void checkpoint() noexcept { detail::yield_point(); }

/// True while the calling thread is a virtual thread inside explore().
[[nodiscard]] bool in_exploration() noexcept;

#if defined(EXPLORA_MODEL_CHECK)

inline constexpr bool kInstrumentedAtomics = true;

/// Drop-in std::atomic shim: every access announces a scheduling point
/// first, then forwards to the wrapped atomic with the caller's explicit
/// memory_order. Outside an exploration the announcement is one
/// thread_local read, so the full regular test suite still runs (and
/// passes) in this build flavor.
template <class T>
class Atomic {
 public:
  constexpr Atomic() noexcept = default;
  constexpr Atomic(T desired) noexcept : cell_(desired) {}  // NOLINT(google-explicit-constructor)
  Atomic(const Atomic&) = delete;
  Atomic& operator=(const Atomic&) = delete;

  T load(std::memory_order order) const noexcept {
    detail::yield_point();
    return cell_.load(order);
  }
  void store(T desired, std::memory_order order) noexcept {
    detail::yield_point();
    cell_.store(desired, order);
  }
  T exchange(T desired, std::memory_order order) noexcept {
    detail::yield_point();
    return cell_.exchange(desired, order);
  }
  bool compare_exchange_weak(T& expected, T desired,
                             std::memory_order order) noexcept {
    detail::yield_point();
    return cell_.compare_exchange_weak(expected, desired, order);
  }
  bool compare_exchange_strong(T& expected, T desired,
                               std::memory_order order) noexcept {
    detail::yield_point();
    return cell_.compare_exchange_strong(expected, desired, order);
  }
  T fetch_add(T arg, std::memory_order order) noexcept {
    detail::yield_point();
    return cell_.fetch_add(arg, order);
  }
  T fetch_sub(T arg, std::memory_order order) noexcept {
    detail::yield_point();
    return cell_.fetch_sub(arg, order);
  }

 private:
  std::atomic<T> cell_{};
};

#else  // !EXPLORA_MODEL_CHECK

inline constexpr bool kInstrumentedAtomics = false;

/// Zero-cost in the default build: the wrapped subsystems (serving ring,
/// SingleThreadScope, telemetry folds) compile to exactly the
/// std::atomic code they used before the model-check layer existed.
template <class T>
using Atomic = std::atomic<T>;

#endif  // EXPLORA_MODEL_CHECK

// ---------------------------------------------------------------------------
// Explorer
// ---------------------------------------------------------------------------

struct Options {
  /// Hard cap on schedules run; exploration stops un-exhausted at it.
  std::uint64_t max_schedules = 1u << 20;
  /// Per-schedule step bound: a schedule exceeding it (a livelocked spin)
  /// is a failure, not a hang.
  std::uint64_t max_steps = 1u << 20;
  /// CHESS-style preemption bound: at most this many switches away from a
  /// still-runnable thread per schedule (-1 = unbounded). Bounding keeps
  /// exhaustive enumeration tractable; most concurrency bugs need <= 2
  /// preemptions to manifest (see DESIGN.md §14 for the rationale).
  int preemption_bound = -1;
  /// Rotates the per-depth choice order deterministically, so independent
  /// seeds walk the same space in different orders (first-failure traces
  /// differ, the explored set does not).
  std::uint64_t seed = 0;
};

struct Result {
  std::uint64_t schedules = 0;  ///< distinct schedules executed
  bool exhausted = false;       ///< DFS frontier emptied: full enumeration
  bool failed = false;          ///< some schedule violated a check
  std::string failure;          ///< first violation + its choice trace
  std::uint64_t max_decision_depth = 0;  ///< deepest decision stack seen
};

/// Violation signal for bodies and hooks: EXPLORA_INTERLEAVE_CHECK throws
/// it; explore() catches it into Result::failure together with the
/// schedule trace that produced it.
struct ScheduleViolation {
  std::string message;
};

/// Throws ScheduleViolation{message}: fails the current schedule.
[[noreturn]] void fail(std::string message);

using ThreadFn = std::function<void()>;
using HookFn = std::function<void()>;

/// Runs `bodies` as cooperative virtual threads under every schedule the
/// DFS reaches within `options`' bounds. Per schedule: `setup` runs on
/// the calling thread (reset shared state), then the bodies execute to
/// completion under the chosen interleaving, then `check` runs on the
/// calling thread (assert invariants via EXPLORA_INTERLEAVE_CHECK /
/// fail()). Worker threads are created once and reused across schedules.
/// Either hook may be nullptr.
[[nodiscard]] Result explore(std::vector<ThreadFn> bodies,
                             const Options& options,
                             const HookFn& setup = nullptr,
                             const HookFn& check = nullptr);

}  // namespace explora::common::interleave

/// Invariant assertion usable inside virtual-thread bodies and hooks.
#define EXPLORA_INTERLEAVE_CHECK(cond, msg)                  \
  do {                                                       \
    if (!static_cast<bool>(cond)) {                          \
      ::explora::common::interleave::fail((msg));            \
    }                                                        \
  } while (false)
