#include "common/format.hpp"

#include <cctype>
#include <cstdio>
#include <stdexcept>

namespace explora::common {

namespace {

[[nodiscard]] std::string pad(std::string body, const FormatSpec& spec,
                              char default_align) {
  const auto width = static_cast<std::size_t>(spec.width);
  if (body.size() >= width) return body;
  const char align = spec.align != '\0' ? spec.align : default_align;
  const std::size_t padding = width - body.size();
  if (align == '<') return body + std::string(padding, spec.fill);
  return std::string(padding, spec.fill) + body;
}

[[nodiscard]] std::string format_double(const FormatSpec& spec, double value) {
  char printf_spec[16];
  const int precision = spec.precision >= 0 ? spec.precision : 6;
  const char type = spec.type != '\0' ? spec.type : 'g';
  std::snprintf(printf_spec, sizeof printf_spec, "%%%s.%d%c",
                spec.plus ? "+" : "", precision, type);
  char buffer[64];
  std::snprintf(buffer, sizeof buffer, printf_spec, value);
  return pad(buffer, spec, '>');
}

}  // namespace

FormatSpec parse_format_spec(std::string_view spec) {
  FormatSpec out;
  std::size_t i = 0;
  // [[fill]align]
  if (spec.size() >= 2 && (spec[1] == '<' || spec[1] == '>')) {
    out.fill = spec[0];
    out.align = spec[1];
    i = 2;
  } else if (!spec.empty() && (spec[0] == '<' || spec[0] == '>')) {
    out.align = spec[0];
    i = 1;
  }
  if (i < spec.size() && spec[i] == '+') {
    out.plus = true;
    ++i;
  }
  while (i < spec.size() && std::isdigit(static_cast<unsigned char>(spec[i]))) {
    out.width = out.width * 10 + (spec[i] - '0');
    ++i;
  }
  if (i < spec.size() && spec[i] == '.') {
    ++i;
    out.precision = 0;
    while (i < spec.size() &&
           std::isdigit(static_cast<unsigned char>(spec[i]))) {
      out.precision = out.precision * 10 + (spec[i] - '0');
      ++i;
    }
  }
  if (i < spec.size()) {
    out.type = spec[i];
    ++i;
  }
  constexpr std::string_view kAllowedTypes = "fegdxs";
  if (i != spec.size() ||
      (out.type != '\0' &&
       kAllowedTypes.find(out.type) == std::string_view::npos)) {
    throw std::invalid_argument("unsupported format spec: " +
                                std::string(spec));
  }
  return out;
}

std::string format_value(const FormatSpec& spec, double value) {
  return format_double(spec, value);
}

std::string format_value(const FormatSpec& spec, float value) {
  return format_double(spec, static_cast<double>(value));
}

std::string format_value(const FormatSpec& spec, long long value) {
  if (spec.type == 'f' || spec.type == 'e' || spec.type == 'g') {
    return format_double(spec, static_cast<double>(value));
  }
  char buffer[32];
  if (spec.type == 'x') {
    std::snprintf(buffer, sizeof buffer, "%llx", value);
  } else {
    std::snprintf(buffer, sizeof buffer, spec.plus ? "%+lld" : "%lld", value);
  }
  return pad(buffer, spec, '>');
}

std::string format_value(const FormatSpec& spec, unsigned long long value) {
  if (spec.type == 'f' || spec.type == 'e' || spec.type == 'g') {
    return format_double(spec, static_cast<double>(value));
  }
  char buffer[32];
  if (spec.type == 'x') {
    std::snprintf(buffer, sizeof buffer, "%llx", value);
  } else {
    std::snprintf(buffer, sizeof buffer, "%llu", value);
  }
  return pad(buffer, spec, '>');
}

std::string format_value(const FormatSpec& spec, bool value) {
  return pad(value ? "true" : "false", spec, '<');
}

std::string format_value(const FormatSpec& spec, std::string_view value) {
  std::string body(value);
  if (spec.precision >= 0 &&
      body.size() > static_cast<std::size_t>(spec.precision)) {
    body.resize(static_cast<std::size_t>(spec.precision));
  }
  return pad(std::move(body), spec, '<');
}

namespace detail {

std::string vformat(std::string_view fmt, const Formatter* formatters,
                    std::size_t count) {
  std::string out;
  out.reserve(fmt.size() + count * 8);
  std::size_t next_arg = 0;
  for (std::size_t i = 0; i < fmt.size(); ++i) {
    const char c = fmt[i];
    if (c == '{') {
      if (i + 1 < fmt.size() && fmt[i + 1] == '{') {
        out += '{';
        ++i;
        continue;
      }
      const std::size_t close = fmt.find('}', i);
      if (close == std::string_view::npos) {
        throw std::invalid_argument("unterminated replacement field");
      }
      std::string_view field = fmt.substr(i + 1, close - i - 1);
      FormatSpec spec;
      if (!field.empty()) {
        if (field[0] != ':') {
          throw std::invalid_argument(
              "positional/named arguments are not supported");
        }
        spec = parse_format_spec(field.substr(1));
      }
      if (next_arg >= count) {
        throw std::invalid_argument("not enough format arguments");
      }
      out += formatters[next_arg](spec);
      ++next_arg;
      i = close;
    } else if (c == '}') {
      if (i + 1 < fmt.size() && fmt[i + 1] == '}') ++i;
      out += '}';
    } else {
      out += c;
    }
  }
  return out;
}

}  // namespace detail

}  // namespace explora::common
