#include "common/rng.hpp"

#include <algorithm>
#include <cmath>
#include <numbers>

#include "common/contracts.hpp"

namespace explora::common {

namespace {

constexpr std::uint64_t rotl(std::uint64_t x, int k) noexcept {
  return (x << k) | (x >> (64 - k));
}

}  // namespace

Rng::Rng(std::uint64_t seed) noexcept {
  std::uint64_t sm = seed;
  for (auto& word : state_) word = splitmix64(sm);
  // A state of all zeros is the one invalid xoshiro256** state.
  if (state_[0] == 0 && state_[1] == 0 && state_[2] == 0 && state_[3] == 0) {
    state_[0] = 0x9e3779b97f4a7c15ULL;
  }
}

Rng::result_type Rng::operator()() noexcept {
  const std::uint64_t result = rotl(state_[1] * 5, 7) * 9;
  const std::uint64_t t = state_[1] << 17;
  state_[2] ^= state_[0];
  state_[3] ^= state_[1];
  state_[1] ^= state_[2];
  state_[0] ^= state_[3];
  state_[2] ^= t;
  state_[3] = rotl(state_[3], 45);
  return result;
}

Rng Rng::fork(std::uint64_t tag) noexcept {
  std::uint64_t mix = (*this)() ^ (tag * 0x9e3779b97f4a7c15ULL);
  return Rng{splitmix64(mix)};
}

Rng Rng::fork(std::string_view tag) noexcept {
  // FNV-1a over the tag, mixed with the parent stream.
  std::uint64_t h = 0xcbf29ce484222325ULL;
  for (char c : tag) {
    h ^= static_cast<unsigned char>(c);
    h *= 0x100000001b3ULL;
  }
  return fork(h);
}

double Rng::uniform() noexcept {
  // 53 random mantissa bits -> uniform double in [0, 1).
  return static_cast<double>((*this)() >> 11) * 0x1.0p-53;
}

double Rng::uniform(double lo, double hi) noexcept {
  return lo + (hi - lo) * uniform();
}

std::int64_t Rng::uniform_int(std::int64_t lo, std::int64_t hi) noexcept {
  EXPLORA_EXPECTS(lo <= hi);
  const auto span = static_cast<std::uint64_t>(hi - lo) + 1;
  if (span == 0) return static_cast<std::int64_t>((*this)());  // full range
  // Rejection sampling to avoid modulo bias.
  const std::uint64_t limit = max() - max() % span;
  std::uint64_t draw = (*this)();
  while (draw >= limit) draw = (*this)();
  return lo + static_cast<std::int64_t>(draw % span);
}

double Rng::normal() noexcept {
  if (has_cached_normal_) {
    has_cached_normal_ = false;
    return cached_normal_;
  }
  double u1 = uniform();
  while (u1 <= 0.0) u1 = uniform();
  const double u2 = uniform();
  const double radius = std::sqrt(-2.0 * std::log(u1));
  const double angle = 2.0 * std::numbers::pi * u2;
  cached_normal_ = radius * std::sin(angle);
  has_cached_normal_ = true;
  return radius * std::cos(angle);
}

double Rng::normal(double mean, double stddev) noexcept {
  return mean + stddev * normal();
}

double Rng::exponential(double rate) noexcept {
  EXPLORA_EXPECTS(rate > 0.0);
  double u = uniform();
  while (u <= 0.0) u = uniform();
  return -std::log(u) / rate;
}

std::uint32_t Rng::poisson(double mean) noexcept {
  EXPLORA_EXPECTS(mean >= 0.0);
  if (mean == 0.0) return 0;  // det-ok: float-eq (degenerate-rate short-circuit)
  if (mean < 64.0) {
    // Knuth's multiplication method.
    const double threshold = std::exp(-mean);
    std::uint32_t count = 0;
    double product = uniform();
    while (product > threshold) {
      ++count;
      product *= uniform();
    }
    return count;
  }
  // Normal approximation with continuity correction for large means.
  const double draw = normal(mean, std::sqrt(mean));
  return draw <= 0.0 ? 0u : static_cast<std::uint32_t>(draw + 0.5);
}

bool Rng::bernoulli(double p) noexcept {
  return uniform() < std::clamp(p, 0.0, 1.0);
}

std::size_t Rng::index(std::size_t n) noexcept {
  EXPLORA_EXPECTS(n > 0);
  return static_cast<std::size_t>(
      uniform_int(0, static_cast<std::int64_t>(n) - 1));
}

}  // namespace explora::common
