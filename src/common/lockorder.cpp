#include "common/lockorder.hpp"

#include <atomic>
#include <map>
#include <memory>
#include <thread>
#include <utility>

#include "common/format.hpp"
#include "common/telemetry.hpp"

namespace explora::common::lockorder {

/// Registration record for one lock class. Lives forever (the registry
/// below is leaked on purpose), so MutexInfo* handles never dangle — even
/// in static-destruction order corner cases.
struct MutexInfo {
  MutexInfo(std::string name_in, int rank_in)
      : name(std::move(name_in)), rank(rank_in) {}

  const std::string name;
  const int rank;
  // atomics-ok: commutative-counter (order-free add fold)
  std::atomic<std::uint64_t> acquisitions{0};
  // atomics-ok: commutative-counter (order-free add fold)
  std::atomic<std::uint64_t> contended{0};
  // atomics-ok: commutative-counter (order-free add fold)
  std::atomic<std::uint64_t> wait_rounds{0};
};

namespace {

/// Lock classes by name. The map's own mutex sits *below* the annotated
/// layer, so it must be a raw std::mutex — registration happens at mutex
/// construction time and never while an annotated lock is being acquired.
struct ClassRegistry {
  std::mutex mutex;  // conc-ok: raw-mutex (the validator's own registry)
  std::map<std::string, std::unique_ptr<MutexInfo>, std::less<>> classes;
};

ClassRegistry& class_registry() {
  // Leaked: annotated mutexes with static storage duration may be
  // destroyed (and thus unregistered-from) after any static registry
  // would have been torn down.
  static ClassRegistry* registry = new ClassRegistry();
  return *registry;
}

/// The locks the current thread holds, in acquisition order. Only touched
/// by audit-path hooks; the inline t_tracked_depth mirror stays equal to
/// this stack's size.
thread_local std::vector<const MutexInfo*> t_held;

/// Fires the contracts handler for an ordering violation. Runs before the
/// native mutex is touched, so a throwing handler unwinds without leaving
/// this thread blocked or the lock held.
void ordering_violation(const MutexInfo& incoming, const MutexInfo& held) {
  if (&incoming == &held || incoming.name == held.name) {
    contracts::contract_failure(
        "lock-order", "no re-entrant acquisition", __FILE__, __LINE__,
        format("mutex '{}' (rank {}) acquired while already held by this "
               "thread",
               incoming.name, incoming.rank));
  }
  contracts::contract_failure(
      "lock-order", "ranks strictly increase", __FILE__, __LINE__,
      format("acquiring '{}' (rank {}) while holding '{}' (rank {})",
             incoming.name, incoming.rank, held.name, held.rank));
}

/// Rank discipline: `info` must outrank everything this thread holds.
void validate_rank(const MutexInfo& info) {
  const MutexInfo* worst = nullptr;
  for (const MutexInfo* held : t_held) {
    if (held == &info || held->name == info.name ||
        held->rank >= info.rank) {
      if (worst == nullptr || held->rank >= worst->rank) worst = held;
    }
  }
  if (worst != nullptr) ordering_violation(info, *worst);
}

void push_held(const MutexInfo* info) {
  t_held.push_back(info);
  ++detail::t_tracked_depth;
}

/// Acquires `native` via try-then-yield so contention is observable
/// without wall-clock timers: one "round" is one failed try_lock.
template <typename NativeMutex, typename TryFn, typename LockFn>
void acquire_counted(MutexInfo& info, NativeMutex& native, TryFn try_fn,
                     LockFn lock_fn) {
  constexpr std::uint64_t kMaxSpinRounds = 256;
  if (!try_fn(native)) {
    std::uint64_t rounds = 1;
    for (;;) {
      if (rounds >= kMaxSpinRounds) {
        lock_fn(native);  // give up spinning; block natively
        break;
      }
      std::this_thread::yield();
      if (try_fn(native)) break;
      ++rounds;
    }
    info.contended.fetch_add(1, std::memory_order_relaxed);
    info.wait_rounds.fetch_add(rounds, std::memory_order_relaxed);
  }
  info.acquisitions.fetch_add(1, std::memory_order_relaxed);
}

}  // namespace

MutexInfo* register_mutex(const char* name, int rank) {
  EXPLORA_EXPECTS_MSG(name != nullptr && *name != '\0',
                      "annotated mutexes must be named");
  ClassRegistry& registry = class_registry();
  std::lock_guard<std::mutex> lock(  // conc-ok: raw-mutex (validator registry)
      registry.mutex);
  auto it = registry.classes.find(name);
  if (it == registry.classes.end()) {
    it = registry.classes
             .emplace(name, std::make_unique<MutexInfo>(name, rank))
             .first;
    return it->second.get();
  }
  EXPLORA_EXPECTS_MSG(it->second->rank == rank,
                      "lock class '{}' registered with rank {} but also {}",
                      it->second->name, it->second->rank, rank);
  return it->second.get();
}

void lock_audited(MutexInfo* info, std::mutex& native) {
  if (info == nullptr) {
    native.lock();
    return;
  }
  validate_rank(*info);
  acquire_counted(*info, native,
                  [](std::mutex& m) { return m.try_lock(); },
                  [](std::mutex& m) { m.lock(); });
  push_held(info);
}

void lock_audited(MutexInfo* info, std::shared_mutex& native) {
  if (info == nullptr) {
    native.lock();
    return;
  }
  validate_rank(*info);
  acquire_counted(*info, native,
                  [](std::shared_mutex& m) { return m.try_lock(); },
                  [](std::shared_mutex& m) { m.lock(); });
  push_held(info);
}

void lock_shared_audited(MutexInfo* info, std::shared_mutex& native) {
  if (info == nullptr) {
    native.lock_shared();
    return;
  }
  validate_rank(*info);
  acquire_counted(*info, native,
                  [](std::shared_mutex& m) { return m.try_lock_shared(); },
                  [](std::shared_mutex& m) { m.lock_shared(); });
  push_held(info);
}

bool try_lock_audited(MutexInfo* info, std::mutex& native) {
  if (!native.try_lock()) return false;
  if (info != nullptr) {
    info->acquisitions.fetch_add(1, std::memory_order_relaxed);
    push_held(info);
  }
  return true;
}

void release_tracked(const MutexInfo* info) noexcept {
  if (info == nullptr || t_held.empty()) return;
  // Scan newest-first: releases almost always match the innermost hold.
  for (std::size_t i = t_held.size(); i-- > 0;) {
    if (t_held[i] == info) {
      t_held.erase(t_held.begin() + static_cast<std::ptrdiff_t>(i));
      --detail::t_tracked_depth;
      return;
    }
  }
  // Absent: the lock predates audit activation. Nothing to untrack.
}

std::vector<MutexStats> stats() {
  ClassRegistry& registry = class_registry();
  std::lock_guard<std::mutex> lock(  // conc-ok: raw-mutex (validator registry)
      registry.mutex);
  std::vector<MutexStats> out;
  out.reserve(registry.classes.size());
  for (const auto& [name, info] : registry.classes) {
    MutexStats row;
    row.name = name;
    row.rank = info->rank;
    row.acquisitions = info->acquisitions.load(std::memory_order_relaxed);
    row.contended = info->contended.load(std::memory_order_relaxed);
    row.wait_rounds = info->wait_rounds.load(std::memory_order_relaxed);
    out.push_back(std::move(row));
  }
  return out;
}

void reset_stats() {
  ClassRegistry& registry = class_registry();
  std::lock_guard<std::mutex> lock(  // conc-ok: raw-mutex (validator registry)
      registry.mutex);
  for (const auto& [name, info] : registry.classes) {
    info->acquisitions.store(0, std::memory_order_relaxed);
    info->contended.store(0, std::memory_order_relaxed);
    info->wait_rounds.store(0, std::memory_order_relaxed);
  }
}

void publish(telemetry::Registry& registry) {
  for (const MutexStats& row : stats()) {
    const std::string prefix = "lockorder." + row.name + ".";
    registry.gauge(prefix + "rank").set(row.rank);
    registry.gauge(prefix + "acquisitions")
        .set(static_cast<std::int64_t>(row.acquisitions));
    registry.gauge(prefix + "contended")
        .set(static_cast<std::int64_t>(row.contended));
    registry.gauge(prefix + "wait_rounds")
        .set(static_cast<std::int64_t>(row.wait_rounds));
  }
}

}  // namespace explora::common::lockorder
