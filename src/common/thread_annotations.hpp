// Static thread-safety layer: clang capability-analysis attributes plus the
// annotated mutex types every subsystem uses.
//
// The EXPLORA_* attribute macros wrap clang's thread-safety annotations
// (https://clang.llvm.org/docs/ThreadSafetyAnalysis.html) and expand to
// nothing on other compilers, so GCC builds are unaffected. Under clang
// with -Werror=thread-safety (the `thread-safety` CMake preset and CI job)
// the compiler proves, per function, that every EXPLORA_GUARDED_BY member
// is only touched while its mutex is held.
//
// The annotated types are the only sanctioned mutex primitives in src/ —
// tools/lint_concurrency.py fails the build on raw std::mutex /
// std::lock_guard / std::unique_lock / std::scoped_lock /
// std::condition_variable anywhere else. Each Mutex carries a name and a
// rank from common::lockrank; at audit check level the lock-order
// validator (common/lockorder.hpp) enforces rank discipline dynamically,
// complementing the static analysis.
//
//   class Registry {
//     mutable SharedMutex mutex_{"telemetry.registry",
//                                lockrank::kTelemetryRegistry};
//     std::map<...> metrics_ EXPLORA_GUARDED_BY(mutex_);
//   };
//
// At EXPLORA_CHECK_LEVEL=off every validator hook folds away and Mutex is
// a plain std::mutex plus one dormant pointer member.
#pragma once

#include <condition_variable>  // conc-ok: raw-mutex (the wrapper layer itself)
#include <mutex>               // conc-ok: raw-mutex (the wrapper layer itself)
#include <shared_mutex>        // conc-ok: raw-mutex (the wrapper layer itself)

#include "common/lockorder.hpp"

// ---- clang thread-safety attribute macros ----------------------------------

#if defined(__clang__)
#define EXPLORA_THREAD_ANNOTATION(x) __attribute__((x))
#else
#define EXPLORA_THREAD_ANNOTATION(x)
#endif

#define EXPLORA_CAPABILITY(x) EXPLORA_THREAD_ANNOTATION(capability(x))
#define EXPLORA_SCOPED_CAPABILITY EXPLORA_THREAD_ANNOTATION(scoped_lockable)
#define EXPLORA_GUARDED_BY(x) EXPLORA_THREAD_ANNOTATION(guarded_by(x))
#define EXPLORA_PT_GUARDED_BY(x) EXPLORA_THREAD_ANNOTATION(pt_guarded_by(x))
#define EXPLORA_ACQUIRED_BEFORE(...) \
  EXPLORA_THREAD_ANNOTATION(acquired_before(__VA_ARGS__))
#define EXPLORA_ACQUIRED_AFTER(...) \
  EXPLORA_THREAD_ANNOTATION(acquired_after(__VA_ARGS__))
#define EXPLORA_REQUIRES(...) \
  EXPLORA_THREAD_ANNOTATION(requires_capability(__VA_ARGS__))
#define EXPLORA_REQUIRES_SHARED(...) \
  EXPLORA_THREAD_ANNOTATION(requires_shared_capability(__VA_ARGS__))
#define EXPLORA_ACQUIRE(...) \
  EXPLORA_THREAD_ANNOTATION(acquire_capability(__VA_ARGS__))
#define EXPLORA_ACQUIRE_SHARED(...) \
  EXPLORA_THREAD_ANNOTATION(acquire_shared_capability(__VA_ARGS__))
#define EXPLORA_RELEASE(...) \
  EXPLORA_THREAD_ANNOTATION(release_capability(__VA_ARGS__))
#define EXPLORA_RELEASE_SHARED(...) \
  EXPLORA_THREAD_ANNOTATION(release_shared_capability(__VA_ARGS__))
#define EXPLORA_TRY_ACQUIRE(...) \
  EXPLORA_THREAD_ANNOTATION(try_acquire_capability(__VA_ARGS__))
#define EXPLORA_EXCLUDES(...) \
  EXPLORA_THREAD_ANNOTATION(locks_excluded(__VA_ARGS__))
#define EXPLORA_RETURN_CAPABILITY(x) \
  EXPLORA_THREAD_ANNOTATION(lock_returned(x))
#define EXPLORA_NO_THREAD_SAFETY_ANALYSIS \
  EXPLORA_THREAD_ANNOTATION(no_thread_safety_analysis)

// ---- annotated mutex types -------------------------------------------------

namespace explora::common {

// Inline ABI namespace: the method bodies below fold differently per
// EXPLORA_CHECK_LEVEL, and a test TU may pin the level below the build-wide
// value (tests/test_lockorder_off.cpp). Keying the types on the level keeps
// each TU's inline code self-consistent in a mixed-level link — see the
// matching note in common/lockorder.hpp.
inline namespace EXPLORA_LOCK_ABI {

/// std::mutex with a capability annotation, a lock-class name, and a rank
/// from common::lockrank. Locking goes through the lock-order validator at
/// audit level; at EXPLORA_CHECK_LEVEL=off the hooks fold away entirely.
class EXPLORA_CAPABILITY("mutex") Mutex {
 public:
  /// @param name lock-class name; same-name mutexes share one class.
  /// @param rank position in the lockrank table (strictly increasing
  ///        acquisition order is enforced at audit level).
  explicit Mutex(const char* name, int rank)
      : info_(lockorder::kCompiledIn ? lockorder::register_mutex(name, rank)
                                     : nullptr) {}
  Mutex(const Mutex&) = delete;
  Mutex& operator=(const Mutex&) = delete;

  void lock() EXPLORA_ACQUIRE() {
    if constexpr (lockorder::kCompiledIn) {
      if (lockorder::audit_active()) {
        lockorder::lock_audited(info_, native_);
        return;
      }
    }
    native_.lock();
  }

  void unlock() EXPLORA_RELEASE() {
    if constexpr (lockorder::kCompiledIn) {
      if (lockorder::tracking_any()) lockorder::release_tracked(info_);
    }
    native_.unlock();
  }

  [[nodiscard]] bool try_lock() EXPLORA_TRY_ACQUIRE(true) {
    if constexpr (lockorder::kCompiledIn) {
      if (lockorder::audit_active()) {
        return lockorder::try_lock_audited(info_, native_);
      }
    }
    return native_.try_lock();
  }

 private:
  friend class CondVar;

  std::mutex native_;  // conc-ok: raw-mutex (the annotated wrapper itself)
  // Present at every check level so the layout never varies; nullptr when
  // the validator is compiled out.
  lockorder::MutexInfo* const info_;
};

/// std::shared_mutex counterpart: exclusive writers, shared readers.
class EXPLORA_CAPABILITY("shared_mutex") SharedMutex {
 public:
  explicit SharedMutex(const char* name, int rank)
      : info_(lockorder::kCompiledIn ? lockorder::register_mutex(name, rank)
                                     : nullptr) {}
  SharedMutex(const SharedMutex&) = delete;
  SharedMutex& operator=(const SharedMutex&) = delete;

  void lock() EXPLORA_ACQUIRE() {
    if constexpr (lockorder::kCompiledIn) {
      if (lockorder::audit_active()) {
        lockorder::lock_audited(info_, native_);
        return;
      }
    }
    native_.lock();
  }

  void unlock() EXPLORA_RELEASE() {
    if constexpr (lockorder::kCompiledIn) {
      if (lockorder::tracking_any()) lockorder::release_tracked(info_);
    }
    native_.unlock();
  }

  void lock_shared() EXPLORA_ACQUIRE_SHARED() {
    if constexpr (lockorder::kCompiledIn) {
      if (lockorder::audit_active()) {
        lockorder::lock_shared_audited(info_, native_);
        return;
      }
    }
    native_.lock_shared();
  }

  void unlock_shared() EXPLORA_RELEASE_SHARED() {
    if constexpr (lockorder::kCompiledIn) {
      if (lockorder::tracking_any()) lockorder::release_tracked(info_);
    }
    native_.unlock_shared();
  }

 private:
  std::shared_mutex native_;  // conc-ok: raw-mutex (the annotated wrapper)
  lockorder::MutexInfo* const info_;
};

/// RAII exclusive lock on a Mutex (std::lock_guard equivalent).
class EXPLORA_SCOPED_CAPABILITY MutexLock {
 public:
  explicit MutexLock(Mutex& mutex) EXPLORA_ACQUIRE(mutex) : mutex_(mutex) {
    mutex_.lock();
  }
  ~MutexLock() EXPLORA_RELEASE() { mutex_.unlock(); }
  MutexLock(const MutexLock&) = delete;
  MutexLock& operator=(const MutexLock&) = delete;

 private:
  friend class CondVar;

  Mutex& mutex_;
};

/// RAII exclusive (writer) lock on a SharedMutex.
class EXPLORA_SCOPED_CAPABILITY WriterMutexLock {
 public:
  explicit WriterMutexLock(SharedMutex& mutex) EXPLORA_ACQUIRE(mutex)
      : mutex_(mutex) {
    mutex_.lock();
  }
  ~WriterMutexLock() EXPLORA_RELEASE() { mutex_.unlock(); }
  WriterMutexLock(const WriterMutexLock&) = delete;
  WriterMutexLock& operator=(const WriterMutexLock&) = delete;

 private:
  SharedMutex& mutex_;
};

/// RAII shared (reader) lock on a SharedMutex.
class EXPLORA_SCOPED_CAPABILITY ReaderMutexLock {
 public:
  explicit ReaderMutexLock(SharedMutex& mutex) EXPLORA_ACQUIRE_SHARED(mutex)
      : mutex_(mutex) {
    mutex_.lock_shared();
  }
  ~ReaderMutexLock() EXPLORA_RELEASE() { mutex_.unlock_shared(); }
  ReaderMutexLock(const ReaderMutexLock&) = delete;
  ReaderMutexLock& operator=(const ReaderMutexLock&) = delete;

 private:
  SharedMutex& mutex_;
};

/// Condition variable for Mutex. There is deliberately no predicate
/// overload: callers write the wait loop themselves —
///
///   MutexLock lock(mutex_);
///   while (!ready_) cv_.wait(lock);
///
/// — so the thread-safety analysis sees every guarded read inside the
/// held-capability scope.
class CondVar {
 public:
  CondVar() = default;
  CondVar(const CondVar&) = delete;
  CondVar& operator=(const CondVar&) = delete;

  /// Atomically releases `held`'s mutex, blocks, and re-acquires it before
  /// returning. Spurious wakeups happen; loop on the predicate.
  void wait(MutexLock& held) {
    // The held lock stays on the validator's per-thread stack throughout:
    // a blocked waiter still owns its critical section for rank purposes.
    std::unique_lock<std::mutex> native(  // conc-ok: raw-mutex (CondVar impl)
        held.mutex_.native_, std::adopt_lock);
    cv_.wait(native);
    native.release();
  }

  void notify_one() noexcept { cv_.notify_one(); }
  void notify_all() noexcept { cv_.notify_all(); }

 private:
  std::condition_variable cv_;  // conc-ok: raw-mutex (CondVar impl)
};

}  // inline namespace

}  // namespace explora::common
