#include "common/table.hpp"

#include <algorithm>
#include <cmath>
#include <cstdio>

#include "common/contracts.hpp"
#include "common/format.hpp"
#include "common/stats.hpp"

namespace explora::common {

TextTable::TextTable(std::vector<std::string> header)
    : header_(std::move(header)) {
  EXPLORA_EXPECTS(!header_.empty());
}

void TextTable::add_row(std::vector<std::string> cells) {
  EXPLORA_EXPECTS(cells.size() == header_.size());
  rows_.push_back(std::move(cells));
}

std::string TextTable::render() const {
  std::vector<std::size_t> widths(header_.size());
  for (std::size_t c = 0; c < header_.size(); ++c) {
    widths[c] = header_[c].size();
  }
  for (const auto& row : rows_) {
    for (std::size_t c = 0; c < row.size(); ++c) {
      widths[c] = std::max(widths[c], row[c].size());
    }
  }
  auto render_row = [&](const std::vector<std::string>& row) {
    std::string line = "|";
    for (std::size_t c = 0; c < row.size(); ++c) {
      line += ' ';
      line += row[c];
      line.append(widths[c] - row[c].size(), ' ');
      line += " |";
    }
    line += '\n';
    return line;
  };
  std::string rule = "+";
  for (std::size_t w : widths) {
    rule.append(w + 2, '-');
    rule += '+';
  }
  rule += '\n';

  std::string out = rule + render_row(header_) + rule;
  for (const auto& row : rows_) out += render_row(row);
  out += rule;
  return out;
}

std::string fmt(double value, int decimals) {
  char buffer[64];
  std::snprintf(buffer, sizeof buffer, "%.*f", decimals, value);
  return buffer;
}

std::string render_cdf(std::string_view label, std::span<const double> samples,
                       std::string_view unit, std::size_t rows,
                       std::size_t width) {
  EXPLORA_EXPECTS(rows >= 2);
  std::string out = format("CDF: {} ({} samples)\n", label,
                                samples.size());
  if (samples.empty()) return out + "  <no data>\n";
  const double lo = quantile(samples, 0.0);
  const double hi = quantile(samples, 1.0);
  const double span = hi > lo ? hi - lo : 1.0;
  for (std::size_t r = 0; r < rows; ++r) {
    const double q = static_cast<double>(r) / static_cast<double>(rows - 1);
    const double v = quantile(samples, q);
    const auto bar = static_cast<std::size_t>(
        std::round((v - lo) / span * static_cast<double>(width)));
    out += format("  p{:<3} {:>12.3f} {} |{}\n",
                       static_cast<int>(std::round(q * 100)), v, unit,
                       std::string(bar, '#'));
  }
  return out;
}

std::string render_cdf_comparison(std::string_view label,
                                  std::string_view name_a,
                                  std::span<const double> a,
                                  std::string_view name_b,
                                  std::span<const double> b,
                                  std::string_view unit) {
  std::string out = format("=== {} ===\n", label);
  out += render_cdf(name_a, a, unit);
  out += render_cdf(name_b, b, unit);
  if (!a.empty() && !b.empty()) {
    const double med_a = median(a);
    const double med_b = median(b);
    const double p90_a = quantile(a, 0.9);
    const double p90_b = quantile(b, 0.9);
    auto pct = [](double base, double treat) {
      return base == 0.0 ? 0.0  // det-ok: float-eq (division-by-zero guard)
                         : (treat - base) / std::abs(base) * 100.0;
    };
    out += format(
        "  median: {} {:.3f} vs {} {:.3f} ({:+.1f}%)\n", name_a, med_a,
        name_b, med_b, pct(med_a, med_b));
    out += format(
        "  p90   : {} {:.3f} vs {} {:.3f} ({:+.1f}%)\n", name_a, p90_a,
        name_b, p90_b, pct(p90_a, p90_b));
  }
  return out;
}

}  // namespace explora::common
