#include "harness/golden.hpp"

#include "common/contracts.hpp"
#include "common/telemetry.hpp"
#include "harness/experiment.hpp"
#include "harness/replay.hpp"
#include "harness/training.hpp"

namespace explora::harness {
namespace {

// The tiny chaos-test configuration: small enough that a case runs in
// well under a second, large enough that every instrumented subsystem
// (scheduler, gNB KPIs, RMR, impairments, reliable delivery, E2
// termination, both xApps, the harness decision span) records activity.
netsim::ScenarioConfig golden_scenario() {
  netsim::ScenarioConfig scenario;
  scenario.users_per_slice = {1, 1, 1};
  scenario.seed = 31;
  return scenario;
}

TrainingConfig golden_training() {
  TrainingConfig config;
  config.collection_steps = 30;
  config.autoencoder.epochs = 5;
  config.ppo_iterations = 2;
  config.steps_per_iteration = 32;
  config.seed = 99;
  return config;
}

// Trained once per process. Training runs against whatever registry is
// active at first call; run_golden_trace opens its ScopedRegistry only
// afterwards, so ml.* training metrics never leak into golden snapshots.
const TrainedSystem& golden_system() {
  static const TrainedSystem system =
      train_system(core::AgentProfile::kHighThroughput, golden_scenario(),
                   golden_training());
  return system;
}

ExperimentOptions golden_options(std::string_view case_name) {
  ExperimentOptions options;
  options.decisions = 8;
  options.deploy_explora = true;
  // Reliable delivery on both control hops in every case, so ACK-latency
  // spans and sent/acked counters appear in the baseline trace too (with
  // zero retransmissions — the diff then shows exactly what faults add).
  options.reliable = oran::ReliableControlSender::Config{
      .ack_timeout_ticks = 1, .max_retries = 12, .backoff_factor = 1};
  if (case_name == "baseline" || case_name == "replay_roundtrip") {
    return options;
  }
  if (case_name == "serving_burst") {
    // Explanation serving under burst pressure: a deliberately small
    // queue and single worker so the ladder demotes, tight deadlines so
    // dispatch walks down, and slow/failing evals so the breaker and the
    // explora.serving.* fault counters all appear in the snapshot.
    ServingOptions serving;
    serving.requests_per_decision = 6;
    serving.queue_capacity = 4;
    serving.workers = 1;
    serving.background_rows = 4;
    serving.sampled_permutations = 4;
    serving.deadline_ticks = 64;
    serving.eval_slow_probability = 0.30;
    serving.eval_slow_factor = 4;
    serving.eval_failure_probability = 0.10;
    options.serving = serving;
    return options;
  }
  EXPLORA_EXPECTS_MSG(case_name == "chaos_drop10",
                      "unknown golden-trace case '{}'", case_name);
  FaultInjectionOptions faults;
  faults.control.drop = 0.10;
  faults.ack.drop = 0.10;
  options.faults = faults;
  return options;
}

}  // namespace

const std::vector<std::string_view>& golden_trace_cases() {
  static const std::vector<std::string_view> cases = {
      "baseline", "chaos_drop10", "serving_burst", "replay_roundtrip"};
  return cases;
}

std::string run_golden_trace(std::string_view case_name) {
  const TrainedSystem& system = golden_system();
  const ExperimentOptions options = golden_options(case_name);
  // Fresh registry for the run itself: every pipeline component built by
  // run_experiment binds its metrics here and dies before the snapshot.
  telemetry::ScopedRegistry scope;
  if (case_name == "replay_roundtrip") {
    // Record a live run, replay its trace offline, and publish the
    // byte-identity verdict (plus the stream shape) as counters. The live
    // and replayed pipelines each run in their own nested registry, so
    // this snapshot contains exactly the round-trip verdict — and the
    // golden differ flags any future change that breaks replay
    // determinism as a structural diff on these counters.
    const RoundTripReport report = replay_roundtrip(
        system, golden_scenario(), options, golden_training());
    telemetry::Scope rscope("harness.replay", &scope.registry());
    rscope.counter("trace_bytes").add(report.live.trace.size());
    rscope.counter("frames_replayed").add(report.replayed.frames_delivered);
    rscope.counter("explanations").add(report.replayed.explanations.size());
    rscope.counter("degradations").add(report.replayed.degradations.size());
    rscope.counter("attribution_bytes")
        .add(report.live.attribution.bytes.size());
    rscope.counter("attribution_digest").add(report.live.attribution.digest);
    rscope.counter("bytes_identical").add(report.bytes_identical ? 1 : 0);
    rscope.counter("telemetry_identical")
        .add(report.telemetry_identical ? 1 : 0);
    return scope.registry().snapshot_json();
  }
  (void)run_experiment(system, golden_scenario(), options,
                       golden_training());
  return scope.registry().snapshot_json();
}

std::string golden_trace_filename(std::string_view case_name) {
  return std::string(case_name) + ".json";
}

}  // namespace explora::harness
