#include "harness/training.hpp"

#include <algorithm>
#include <cstdlib>

#include "common/contracts.hpp"
#include "common/format.hpp"
#include "common/log.hpp"

namespace explora::harness {

namespace {

constexpr std::uint64_t kSystemMagic = 0x4558504c4f524131ULL;  // "EXPLORA1"
constexpr std::uint32_t kSystemVersion = 2;

/// Training-side environment loop: gNB + input window + latent encoding.
/// (The RIC message plumbing is bypassed during training for speed; the
/// deployed path through the router is exercised by the experiment runner
/// and the integration tests.)
class SliceEnv {
 public:
  SliceEnv(const netsim::ScenarioConfig& scenario,
           std::size_t reports_per_decision,
           const ml::KpiNormalizer& normalizer,
           const ml::Autoencoder* autoencoder, core::RewardModel reward)
      : scenario_(scenario),
        reports_per_decision_(reports_per_decision),
        normalizer_(&normalizer),
        autoencoder_(autoencoder),
        reward_(reward) {
    reset(scenario.seed);
  }

  void reset(std::uint64_t seed) {
    netsim::ScenarioConfig scenario = scenario_;
    scenario.seed = seed;
    gnb_ = netsim::make_gnb(scenario);
    window_.clear();
    // Warm-up under the gNB's default control until the window fills.
    while (!window_.ready()) {
      window_.push(gnb_->run_report_window());
    }
  }

  /// Latent observation of the current window.
  [[nodiscard]] ml::Vector latent() const {
    const ml::Vector input = window_.flatten(*normalizer_);
    if (autoencoder_ == nullptr) return input;
    return autoencoder_->encode(input);
  }

  /// Applies the control, advances one decision period, returns the reward.
  double step(const netsim::SlicingControl& control) {
    gnb_->apply_control(control);
    std::vector<netsim::KpiReport> reports;
    reports.reserve(reports_per_decision_);
    for (std::size_t i = 0; i < reports_per_decision_; ++i) {
      reports.push_back(gnb_->run_report_window());
      window_.push(reports.back());
    }
    return reward_.from_window(reports);
  }

  [[nodiscard]] netsim::Gnb& gnb() noexcept { return *gnb_; }

 private:
  netsim::ScenarioConfig scenario_;
  std::size_t reports_per_decision_;
  const ml::KpiNormalizer* normalizer_;
  const ml::Autoencoder* autoencoder_;
  core::RewardModel reward_;
  std::unique_ptr<netsim::Gnb> gnb_;
  ml::InputWindow window_;
};

[[nodiscard]] netsim::SlicingControl random_control(common::Rng& rng) {
  const auto& catalog = netsim::prb_catalog();
  netsim::SlicingControl control;
  control.prbs = catalog[rng.index(catalog.size())];
  for (std::size_t s = 0; s < netsim::kNumSlices; ++s) {
    control.scheduling[s] = static_cast<netsim::SchedulerPolicy>(
        rng.index(netsim::kNumSchedulerPolicies));
  }
  return control;
}

void run_ppo_iterations(TrainedSystem& system, SliceEnv& env,
                        const TrainingConfig& config, std::size_t iterations,
                        common::Rng& rng,
                        std::vector<double>* iteration_rewards) {
  ml::RolloutBuffer buffer;
  for (std::size_t iteration = 0; iteration < iterations; ++iteration) {
    buffer.clear();
    double reward_sum = 0.0;
    for (std::size_t step = 0; step < config.steps_per_iteration; ++step) {
      ml::Vector state = env.latent();
      const ml::PolicyDecision decision = system.agent->act(state, rng);
      const double reward = env.step(ml::to_control(decision.action));
      reward_sum += reward;
      buffer.add(ml::Transition{
          .state = std::move(state),
          .action = decision.action,
          .log_prob = decision.log_prob,
          .value = decision.value,
          .reward = reward,
          .terminal = false,
      });
    }
    const double bootstrap = system.agent->value(env.latent());
    buffer.compute_gae(config.ppo.gamma, config.ppo.gae_lambda, bootstrap);
    system.agent->update(buffer);
    const double mean_reward =
        reward_sum / static_cast<double>(config.steps_per_iteration);
    if (iteration_rewards != nullptr) {
      iteration_rewards->push_back(mean_reward);
    }
    common::logf(common::LogLevel::kInfo, "train",
                 "iteration {}: mean reward {:.3f}", iteration, mean_reward);
  }
}

[[nodiscard]] std::string sanitize(std::string text) {
  for (char& c : text) {
    if (c == '/' || c == '(' || c == ')' || c == ' ') c = '-';
  }
  return text;
}

}  // namespace

CollectedDataset collect_dataset(const netsim::ScenarioConfig& scenario,
                                 const TrainingConfig& config) {
  common::Rng rng(config.seed);
  auto gnb = netsim::make_gnb(scenario);

  // Pass 1: drive with random controls, retaining every report.
  std::vector<netsim::KpiReport> reports;
  reports.reserve(config.collection_steps * config.reports_per_decision);
  for (std::size_t step = 0; step < config.collection_steps; ++step) {
    gnb->apply_control(random_control(rng));
    for (std::size_t w = 0; w < config.reports_per_decision; ++w) {
      reports.push_back(gnb->run_report_window());
    }
  }

  CollectedDataset out;
  for (const auto& report : reports) out.normalizer.observe(report);

  // Pass 2: sliding window over the trace -> flattened inputs.
  ml::InputWindow window;
  for (const auto& report : reports) {
    window.push(report);
    if (window.ready()) {
      out.inputs.push_back(window.flatten(out.normalizer));
    }
  }
  EXPLORA_ENSURES(!out.inputs.empty());
  return out;
}

TrainedSystem train_system(core::AgentProfile profile,
                           const netsim::ScenarioConfig& scenario,
                           const TrainingConfig& config,
                           TrainingReport* report) {
  TrainedSystem system;
  system.profile = profile;

  common::logf(common::LogLevel::kInfo, "train",
               "collecting dataset for {} on {}", core::to_string(profile),
               scenario.name());
  CollectedDataset dataset = collect_dataset(scenario, config);
  system.normalizer = dataset.normalizer;

  system.autoencoder = std::make_unique<ml::Autoencoder>(
      config.autoencoder, config.seed ^ 0xae);
  const double mse = system.autoencoder->train(dataset.inputs);
  if (report != nullptr) report->autoencoder_mse = mse;
  common::logf(common::LogLevel::kInfo, "train",
               "autoencoder reconstruction MSE {:.5f}", mse);

  system.agent =
      std::make_unique<ml::PpoAgent>(config.ppo, config.seed ^ 0x99);
  SliceEnv env(scenario, config.reports_per_decision, system.normalizer,
               system.autoencoder.get(),
               core::RewardModel(core::weights_for(profile)));
  common::Rng rng(config.seed ^ 0x7777);
  run_ppo_iterations(system, env, config, config.ppo_iterations, rng,
                     report != nullptr ? &report->iteration_rewards
                                       : nullptr);
  return system;
}

DqnSystem train_dqn_system(core::AgentProfile profile,
                           const netsim::ScenarioConfig& scenario,
                           const TrainingConfig& config,
                           const DqnTrainingConfig& dqn_config) {
  DqnSystem system;
  system.profile = profile;

  CollectedDataset dataset = collect_dataset(scenario, config);
  system.normalizer = dataset.normalizer;
  system.autoencoder = std::make_unique<ml::Autoencoder>(
      config.autoencoder, config.seed ^ 0xae);
  system.autoencoder->train(dataset.inputs);

  system.agent =
      std::make_unique<ml::DqnAgent>(dqn_config.dqn, config.seed ^ 0xd);
  SliceEnv env(scenario, config.reports_per_decision, system.normalizer,
               system.autoencoder.get(),
               core::RewardModel(core::weights_for(profile)));
  common::Rng rng(config.seed ^ 0xdd);
  ml::ReplayBuffer buffer(10000);
  ml::Vector state = env.latent();
  for (std::size_t step = 0; step < dqn_config.environment_steps; ++step) {
    const ml::AgentAction action = system.agent->act_epsilon_greedy(state, rng);
    const double reward = env.step(ml::to_control(action));
    ml::Vector next_state = env.latent();
    buffer.add(ml::DqnExperience{
        .state = state,
        .action = action,
        .reward = reward,
        .next_state = next_state,
        .terminal = false,
    });
    state = std::move(next_state);
    if (step >= dqn_config.warmup_steps &&
        step % dqn_config.update_interval == 0) {
      (void)system.agent->update(buffer, rng);
    }
    if (step % 512 == 0) {
      common::logf(common::LogLevel::kInfo, "train-dqn",
                   "step {}: epsilon {:.2f}", step, system.agent->epsilon());
    }
  }
  return system;
}

void online_finetune(TrainedSystem& system,
                     const netsim::ScenarioConfig& scenario,
                     const TrainingConfig& config, std::size_t iterations) {
  EXPLORA_EXPECTS(system.autoencoder != nullptr && system.agent != nullptr);
  SliceEnv env(scenario, config.reports_per_decision, system.normalizer,
               system.autoencoder.get(),
               core::RewardModel(core::weights_for(system.profile)));
  common::Rng rng(config.seed ^ 0x0317);
  run_ppo_iterations(system, env, config, iterations, rng, nullptr);
}

std::filesystem::path artifact_dir() {
  if (const char* env = std::getenv("EXPLORA_ARTIFACTS");
      env != nullptr && *env != '\0') {
    return std::filesystem::path(env);
  }
#ifdef EXPLORA_ARTIFACT_ROOT
  return std::filesystem::path(EXPLORA_ARTIFACT_ROOT);
#else
  return std::filesystem::path("artifacts");
#endif
}

void save_system(const TrainedSystem& system,
                 const std::filesystem::path& path) {
  common::BinaryWriter writer(kSystemMagic, kSystemVersion);
  writer.write_u32(static_cast<std::uint32_t>(system.profile));
  system.normalizer.serialize(writer);
  system.autoencoder->serialize(writer);
  system.agent->serialize(writer);
  writer.save(path);
}

TrainedSystem load_system(const std::filesystem::path& path,
                          core::AgentProfile profile,
                          const TrainingConfig& config) {
  common::BinaryReader reader =
      common::BinaryReader::load(path, kSystemMagic, kSystemVersion);
  TrainedSystem system;
  system.profile = static_cast<core::AgentProfile>(reader.read_u32());
  if (system.profile != profile) {
    throw common::SerializeError("cached system has a different profile");
  }
  system.normalizer.deserialize(reader);
  system.autoencoder = std::make_unique<ml::Autoencoder>(
      config.autoencoder, config.seed ^ 0xae);
  system.autoencoder->deserialize(reader);
  system.agent =
      std::make_unique<ml::PpoAgent>(config.ppo, config.seed ^ 0x99);
  system.agent->deserialize(reader);
  return system;
}

TrainedSystem load_or_train(core::AgentProfile profile,
                            const netsim::ScenarioConfig& scenario,
                            const TrainingConfig& config) {
  const auto path =
      artifact_dir() /
      sanitize(common::format("system-{}-{}-t{}-v{}.bin",
                              core::to_string(profile), scenario.name(),
                              config.seed, kSystemVersion));
  if (std::filesystem::exists(path)) {
    try {
      return load_system(path, profile, config);
    } catch (const common::SerializeError& error) {
      common::logf(common::LogLevel::kWarn, "train",
                   "stale artifact {} ({}); retraining", path.string(),
                   error.what());
    }
  }
  TrainedSystem system = train_system(profile, scenario, config);
  save_system(system, path);
  return system;
}

}  // namespace explora::harness
