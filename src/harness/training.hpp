// Offline training pipeline standing in for the paper's ColO-RAN agents
// (which took 2.5 months of Colosseum data collection + GPU training):
//   1. drive the simulated gNB with exploratory random controls to collect
//      a KPI dataset and fit the [-1, 1] normalizer,
//   2. train the autoencoder on the flattened M x K x L inputs,
//   3. train the PPO agent in-sim on the latent space with the Eq. (1)
//      reward for the requested profile (HT or LL).
// Trained systems are serialized under an artifact directory so every
// bench/test reuses identical weights deterministically.
#pragma once

#include <cstdint>
#include <filesystem>
#include <memory>
#include <vector>

#include "explora/reward.hpp"
#include "ml/autoencoder.hpp"
#include "ml/dqn.hpp"
#include "ml/features.hpp"
#include "ml/ppo.hpp"
#include "netsim/scenario.hpp"

namespace explora::harness {

/// Everything the DRL xApp needs: normalizer + autoencoder + agent.
struct TrainedSystem {
  core::AgentProfile profile = core::AgentProfile::kHighThroughput;
  ml::KpiNormalizer normalizer;
  std::unique_ptr<ml::Autoencoder> autoencoder;
  std::unique_ptr<ml::PpoAgent> agent;
};

struct TrainingConfig {
  /// Exploration dataset size for the autoencoder, in decision steps.
  std::size_t collection_steps = 600;
  /// Windows (E2 reports) per decision — M.
  std::size_t reports_per_decision = ml::kHistory;
  ml::Autoencoder::Config autoencoder{};
  ml::PpoAgent::Config ppo{};
  std::size_t ppo_iterations = 30;
  std::size_t steps_per_iteration = 256;
  std::uint64_t seed = 2024;
};

/// Mean per-iteration training rewards (diagnostics).
struct TrainingReport {
  double autoencoder_mse = 0.0;
  std::vector<double> iteration_rewards;
};

/// Collects an exploration dataset from the scenario: returns the fitted
/// normalizer and the flattened input rows.
struct CollectedDataset {
  ml::KpiNormalizer normalizer;
  std::vector<ml::Vector> inputs;
};
[[nodiscard]] CollectedDataset collect_dataset(
    const netsim::ScenarioConfig& scenario, const TrainingConfig& config);

/// Trains a full system for `profile` on `scenario` from scratch.
[[nodiscard]] TrainedSystem train_system(core::AgentProfile profile,
                                         const netsim::ScenarioConfig& scenario,
                                         const TrainingConfig& config,
                                         TrainingReport* report = nullptr);

/// Continues PPO training of an existing system in a (possibly different)
/// scenario — the paper's "online training phase" used before the action
/// steering experiments (§6.1).
void online_finetune(TrainedSystem& system,
                     const netsim::ScenarioConfig& scenario,
                     const TrainingConfig& config, std::size_t iterations);

/// A trained DQN-driven system (same normalizer/autoencoder pipeline but
/// a branching-DQN agent) — used to demonstrate EXPLORA's agent-family
/// agnosticism (§4.2).
struct DqnSystem {
  core::AgentProfile profile = core::AgentProfile::kHighThroughput;
  ml::KpiNormalizer normalizer;
  std::unique_ptr<ml::Autoencoder> autoencoder;
  std::unique_ptr<ml::DqnAgent> agent;
};

struct DqnTrainingConfig {
  ml::DqnAgent::Config dqn{};
  std::size_t environment_steps = 6000;
  std::size_t warmup_steps = 200;    ///< steps before updates begin
  std::size_t update_interval = 2;   ///< environment steps per update
};

/// Trains a DQN system from scratch (reusing collect_dataset and the
/// autoencoder pipeline from `config`).
[[nodiscard]] DqnSystem train_dqn_system(core::AgentProfile profile,
                                         const netsim::ScenarioConfig& scenario,
                                         const TrainingConfig& config,
                                         const DqnTrainingConfig& dqn_config);

/// Artifact directory: $EXPLORA_ARTIFACTS or ./artifacts.
[[nodiscard]] std::filesystem::path artifact_dir();

/// Serialization for the artifact cache.
void save_system(const TrainedSystem& system,
                 const std::filesystem::path& path);
[[nodiscard]] TrainedSystem load_system(const std::filesystem::path& path,
                                        core::AgentProfile profile,
                                        const TrainingConfig& config);

/// Loads the cached system for (profile, scenario/config seed) or trains
/// and caches it. This is the single entry point benches/examples use.
[[nodiscard]] TrainedSystem load_or_train(core::AgentProfile profile,
                                          const netsim::ScenarioConfig& scenario,
                                          const TrainingConfig& config = {});

}  // namespace explora::harness
