#include "harness/replay.hpp"

#include <optional>
#include <utility>

#include "common/contracts.hpp"
#include "common/telemetry.hpp"
#include "explora/transitions.hpp"
#include "ml/features.hpp"
#include "oran/wire.hpp"

// ---------------------------------------------------------------------------
// Wire field lists for the attribution dump. These live here (not in
// oran/wire) because they describe explora-layer types, and oran sits
// below explora in the module DAG. Declared in the wire namespace so the
// visitor machinery finds them through its Encoder argument.
// ---------------------------------------------------------------------------

namespace explora::oran::wire {

/// One attribute's reservoir state: total values seen plus the retained
/// samples in reservoir order (order is part of the determinism contract).
struct AttributeDump {
  std::uint64_t seen = 0;
  std::vector<double> samples;
};

struct NodeDump {
  netsim::SlicingControl action;
  std::uint64_t visits = 0;
  std::uint64_t samples = 0;
  std::vector<AttributeDump> attributes;
  std::vector<AttributeDump> user_attributes;
};

struct EdgeDump {
  std::uint64_t from = 0;
  std::uint64_t to = 0;
  std::uint64_t count = 0;
};

struct GraphDump {
  std::uint64_t total_transitions = 0;
  std::vector<NodeDump> nodes;
  std::vector<EdgeDump> edges;
};

/// The whole attribution stream of one run, as a single wire message.
struct AttributionDump {
  std::vector<ExplanationRecord> explanations;
  std::vector<DegradationRecord> degradations;
  GraphDump graph;
  std::vector<core::TransitionEvent> transitions;
};

template <typename V>
void wire_fields(V& v, AttributeDump& a) {
  v.u64(1, "seen", a.seen);
  v.f64_list(2, "samples", a.samples);
}

template <typename V>
void wire_fields(V& v, NodeDump& n) {
  v.msg(1, "action", n.action);
  v.u64(2, "visits", n.visits);
  v.u64(3, "samples", n.samples);
  v.msg_list(4, "attributes", n.attributes);
  v.msg_list(5, "user_attributes", n.user_attributes);
}

template <typename V>
void wire_fields(V& v, EdgeDump& e) {
  v.u64(1, "from", e.from);
  v.u64(2, "to", e.to);
  v.u64(3, "count", e.count);
}

template <typename V>
void wire_fields(V& v, GraphDump& g) {
  v.u64(1, "total_transitions", g.total_transitions);
  v.msg_list(2, "nodes", g.nodes);
  v.msg_list(3, "edges", g.edges);
}

template <typename V>
void wire_fields(V& v, core::TransitionEvent& e) {
  v.msg(1, "from", e.from);
  v.msg(2, "to", e.to);
  v.enumeration(3, "cls", e.cls, core::kNumTransitionClasses - 1);
  v.f64_list(4, "delta", e.delta);
  v.f64_list(5, "js_divergence", e.js_divergence);
}

template <typename V>
void wire_fields(V& v, AttributionDump& d) {
  v.msg_list(1, "explanations", d.explanations);
  v.msg_list(2, "degradations", d.degradations);
  v.msg(3, "graph", d.graph);
  v.msg_list(4, "transitions", d.transitions);
}

}  // namespace explora::oran::wire

namespace explora::harness {

namespace {

void fnv_mix_byte(std::uint64_t& digest, std::uint8_t byte) {
  digest ^= byte;
  digest *= 1099511628211ULL;
}

[[nodiscard]] std::uint64_t fnv1a(std::span<const std::uint8_t> bytes,
                                  std::string_view text) {
  std::uint64_t digest = 14695981039346656037ULL;
  for (const std::uint8_t b : bytes) fnv_mix_byte(digest, b);
  for (const char c : text) {
    fnv_mix_byte(digest, static_cast<std::uint8_t>(c));
  }
  return digest;
}

[[nodiscard]] oran::wire::AttributeDump dump_attribute(
    const common::SampleStore& store) {
  oran::wire::AttributeDump dump;
  dump.seen = store.seen();
  const auto samples = store.samples();
  dump.samples.assign(samples.begin(), samples.end());
  return dump;
}

[[nodiscard]] oran::wire::GraphDump dump_graph(
    const core::AttributedGraph& graph) {
  oran::wire::GraphDump dump;
  dump.total_transitions = graph.total_transitions();
  dump.nodes.reserve(graph.node_count());
  for (const core::ActionNode& node : graph.nodes()) {
    oran::wire::NodeDump nd;
    nd.action = node.action;
    nd.visits = node.visits;
    nd.samples = node.samples;
    nd.attributes.reserve(node.attributes.size());
    for (const common::SampleStore& store : node.attributes) {
      nd.attributes.push_back(dump_attribute(store));
    }
    nd.user_attributes.reserve(node.user_attributes.size());
    for (const common::SampleStore& store : node.user_attributes) {
      nd.user_attributes.push_back(dump_attribute(store));
    }
    dump.nodes.push_back(std::move(nd));
  }
  for (const auto& [from, to, count] : graph.edges()) {
    dump.edges.push_back(oran::wire::EdgeDump{from, to, count});
  }
  return dump;
}

/// Canonical filtered telemetry: only the xApp's own metrics, clock
/// normalized (live and replay freeze their clocks at different final
/// instants; the metric values are the behaviour under test).
[[nodiscard]] std::string filtered_xapp_telemetry(
    const telemetry::Registry& registry) {
  const telemetry::TelemetrySnapshot snapshot = registry.snapshot();
  telemetry::TelemetrySnapshot filtered;
  filtered.now = 0;
  for (const auto& [name, metric] : snapshot.metrics) {
    if (name.starts_with("explora.xapp.")) filtered.metrics[name] = metric;
  }
  return filtered.to_json();
}

[[nodiscard]] AttributionStream encode_attribution(
    const std::vector<oran::ExplanationRecord>& explanations,
    const std::vector<oran::DegradationRecord>& degradations,
    const core::AttributedGraph& graph,
    const std::vector<core::TransitionEvent>& transitions,
    const telemetry::Registry& registry) {
  oran::wire::AttributionDump dump;
  dump.explanations = explanations;
  dump.degradations = degradations;
  dump.graph = dump_graph(graph);
  dump.transitions = transitions;

  AttributionStream stream;
  stream.bytes = oran::wire::encode_frame(dump);
  stream.telemetry_json = filtered_xapp_telemetry(registry);
  stream.digest = fnv1a(stream.bytes, stream.telemetry_json);
  return stream;
}

/// Absorbs the replayed xApp's outbound traffic (forwarded controls and
/// upstream ACKs) — offline there is no E2 termination to receive them.
class SinkEndpoint final : public oran::RmrEndpoint {
 public:
  [[nodiscard]] std::string_view endpoint_name() const noexcept override {
    return "replay_sink";
  }
  void on_message(const oran::RicMessage& /*message*/) override {
    ++absorbed_;
  }
  [[nodiscard]] std::uint64_t absorbed() const noexcept { return absorbed_; }

 private:
  std::uint64_t absorbed_ = 0;
};

}  // namespace

RecordedRun record_experiment(const TrainedSystem& system,
                              const netsim::ScenarioConfig& scenario,
                              const ExperimentOptions& options,
                              const TrainingConfig& training) {
  EXPLORA_EXPECTS(options.deploy_explora);
  EXPLORA_EXPECTS(options.recorder == nullptr);

  RecordedRun run;
  run.xapp_name =
      make_explora_config(options, system.profile,
                          training.reports_per_decision)
          .name;
  oran::TraceRecorder recorder(run.xapp_name);

  // Own registry: the trace's tick stamps and the harvested telemetry
  // describe this run only, however many runs share the process.
  telemetry::ScopedRegistry tscope;
  ExperimentOptions recording = options;
  recording.recorder = &recorder;
  run.result = run_experiment(system, scenario, recording, training);
  run.trace = recorder.serialize();
  run.attribution =
      encode_attribution(run.result.explanations, run.result.degradations,
                         run.result.graph, run.result.transitions,
                         tscope.registry());
  return run;
}

ReplayOutcome replay_trace(const oran::TraceReplaySource& source,
                           const std::string& xapp_name,
                           const ExperimentOptions& options,
                           core::AgentProfile profile,
                           const TrainingConfig& training) {
  telemetry::ScopedRegistry tscope;
  telemetry::Registry& registry = tscope.registry();

  oran::RmrRouter router;
  SinkEndpoint sink;
  router.register_endpoint(sink);

  oran::DataRepository repository;
  core::ExploraXapp::Config config =
      make_explora_config(options, profile, training.reports_per_decision);
  config.name = xapp_name;
  core::ExploraXapp xapp(config, router, &repository);
  router.register_endpoint(xapp);
  router.add_route(oran::MessageType::kRanControl, xapp_name,
                   std::string(sink.endpoint_name()));
  router.add_route(oran::MessageType::kRanControlAck, xapp_name,
                   std::string(sink.endpoint_name()));

  ReplayOutcome outcome;
  outcome.frames_delivered = source.replay_into(
      xapp, xapp_name,
      [&registry](std::int64_t tick) { registry.set_now(tick); });
  outcome.explanations = repository.explanations();
  outcome.degradations = repository.degradations();
  outcome.attribution =
      encode_attribution(outcome.explanations, outcome.degradations,
                         xapp.graph(), xapp.tracker().events(), registry);
  return outcome;
}

RoundTripReport replay_roundtrip(const TrainedSystem& system,
                                 const netsim::ScenarioConfig& scenario,
                                 const ExperimentOptions& options,
                                 const TrainingConfig& training) {
  RoundTripReport report;
  report.live = record_experiment(system, scenario, options, training);
  const oran::TraceReplaySource source =
      oran::TraceReplaySource::parse(report.live.trace);
  report.replayed = replay_trace(source, report.live.xapp_name, options,
                                 system.profile, training);
  report.bytes_identical =
      report.live.attribution.bytes == report.replayed.attribution.bytes;
  report.telemetry_identical = report.live.attribution.telemetry_json ==
                               report.replayed.attribution.telemetry_json;
  return report;
}

ServeStats serve_trace(const oran::TraceReplaySource& source,
                       const std::string& drl_xapp_name,
                       const TrainedSystem& system,
                       const ServingOptions& serving,
                       std::size_t reports_per_decision) {
  EXPLORA_EXPECTS(system.autoencoder != nullptr && system.agent != nullptr);
  EXPLORA_EXPECTS(reports_per_decision > 0);

  telemetry::ScopedRegistry tscope;
  ServeStats stats;
  stats.stream_digest = 14695981039346656037ULL;

  ml::InputWindow window;
  std::vector<ml::Vector> background;
  std::optional<ExplainService> service;
  std::int64_t service_tick = 0;
  std::size_t since_decision = 0;

  auto fold_results = [&stats](std::vector<ExplanationResult> results) {
    for (const ExplanationResult& result : results) {
      if (result.shed_reason != xai::serving::ShedReason::kNone) {
        ++stats.shed;
      } else {
        ++stats.delivered;
      }
      for (int i = 0; i < 8; ++i) {
        fnv_mix_byte(stats.stream_digest,
                     static_cast<std::uint8_t>(result.id >> (8 * i)));
      }
      fnv_mix_byte(stats.stream_digest,
                   static_cast<std::uint8_t>(result.tier));
      fnv_mix_byte(stats.stream_digest,
                   static_cast<std::uint8_t>(result.shed_reason));
    }
  };

  for (const oran::TraceFrame& frame : source.frames()) {
    if (frame.target != drl_xapp_name) continue;
    const oran::RicMessage message = frame.decode();
    if (message.type != oran::MessageType::kKpmIndication) continue;
    ++stats.indications;
    window.push(message.kpm().report);
    if (!window.ready()) continue;
    if (++since_decision < reports_per_decision) continue;
    since_decision = 0;
    ++stats.decisions;

    const ml::Vector latent =
        system.autoencoder->encode(window.flatten(system.normalizer));
    if (!service.has_value()) {
      background.push_back(latent);
      if (background.size() >= serving.background_rows) {
        ExplainService::Config config;
        config.queue_capacity = serving.queue_capacity;
        config.workers = serving.workers;
        config.sampled_permutations = serving.sampled_permutations;
        config.max_background = serving.background_rows;
        config.seed = serving.seed;
        service.emplace(*system.agent, background, nullptr, config);
        service_tick = frame.tick;
      }
      continue;
    }

    service->run_until(service_tick, frame.tick);
    service_tick = frame.tick;
    fold_results(service->drain());

    const ml::PolicyDecision decision = system.agent->act_greedy(latent);
    const auto head =
        static_cast<std::uint32_t>(stats.decisions % ml::kNumHeads);
    const std::int64_t deadline = serving.deadline_ticks > 0
                                      ? frame.tick + serving.deadline_ticks
                                      : 0;
    for (std::size_t i = 0; i < serving.requests_per_decision; ++i) {
      (void)service->submit(latent, head, decision.action, frame.tick,
                            deadline);
      ++stats.submitted;
    }
  }

  // Drain the serving tail on the simulated clock (bounded, like the live
  // harness: every pass retires work or sheds on deadline).
  if (service.has_value()) {
    const std::int64_t chunk =
        service->config().costs.cost(xai::serving::Tier::kExact) +
        service->config().default_deadline;
    for (int i = 0; i < 64 && (service->queue().depth() > 0 ||
                               service->busy_workers() > 0);
         ++i) {
      service->run_until(service_tick, service_tick + chunk);
      service_tick += chunk;
      fold_results(service->drain());
    }
    service->on_tick(service_tick + 1);
    fold_results(service->drain());
  }
  return stats;
}

}  // namespace explora::harness
