#include "harness/chaos.hpp"

#include <cmath>
#include <cstdio>

#include "common/contracts.hpp"
#include "common/log.hpp"

namespace explora::harness {

namespace {

/// Fixed-precision float for the JSON document. snprintf with "%.6f" is
/// locale-independent for the C locale the binaries run under and yields
/// the same bytes for the same double on every run.
std::string json_double(double value) {
  char buffer[64];
  std::snprintf(buffer, sizeof(buffer), "%.6f", value);
  return buffer;
}

std::string json_escape(const std::string& raw) {
  std::string out;
  out.reserve(raw.size());
  for (char c : raw) {
    if (c == '"' || c == '\\') out.push_back('\\');
    out.push_back(c);
  }
  return out;
}

ExperimentOptions base_options(const ChaosConfig& config) {
  ExperimentOptions options;
  options.decisions = config.decisions;
  options.deploy_explora = true;
  options.stochastic_agent = true;
  options.reliable = config.reliable;
  // The gNB report period is known here, so the watchdog does not need to
  // infer it from (possibly already gapped) indication spacing.
  options.expected_report_period = config.scenario.gnb.report_period_ttis;
  options.serving = config.serving;
  return options;
}

/// Serving contract for one row: the queue never grew past its bound,
/// every accepted request was either delivered or shed with a reason, and
/// shedding stayed within the configured rate.
bool serving_contract_holds(const ServingTelemetry& serving,
                            double max_shed_rate) {
  const ExplainService::Stats& stats = serving.stats;
  if (stats.submitted == 0) return true;  // service never came up
  if (stats.queue_high_water > stats.queue_capacity) return false;
  if (stats.accepted != serving.delivered + serving.shed_notices) {
    return false;
  }
  const double shed_rate =
      static_cast<double>(stats.submitted - serving.delivered) /
      static_cast<double>(stats.submitted);
  return shed_rate <= max_shed_rate;
}

}  // namespace

std::vector<ChaosFaultPoint> default_fault_points() {
  return {
      {.label = "drop2", .control_drop = 0.02, .ack_drop = 0.02},
      {.label = "drop5", .control_drop = 0.05, .ack_drop = 0.05},
      {.label = "drop10", .control_drop = 0.10, .ack_drop = 0.10},
      {.label = "delay20", .control_delay = 0.20, .delay_rounds = 2},
      {.label = "dup10", .control_duplicate = 0.10},
      {.label = "mixed",
       .control_drop = 0.05,
       .control_delay = 0.10,
       .delay_rounds = 1,
       .control_duplicate = 0.05,
       .ack_drop = 0.05},
      {.label = "kpm-gap",
       .control_drop = 0.02,
       .indication_drop = 0.15},
      {.label = "slow-explainer",
       .control_drop = 0.02,
       .explainer_slow = 0.30,
       .explainer_slow_factor = 4,
       .explainer_fail = 0.05},
  };
}

bool ChaosReport::all_exactly_once() const {
  for (const ChaosRow& row : rows) {
    if (!row.exactly_once) return false;
  }
  return true;
}

bool ChaosReport::all_bounded() const {
  for (const ChaosRow& row : rows) {
    if (!row.bounded) return false;
  }
  return true;
}

bool ChaosReport::all_serving_ok() const {
  for (const ChaosRow& row : rows) {
    if (!row.serving_ok) return false;
  }
  return true;
}

std::string ChaosReport::to_json() const {
  std::string out;
  out += "{\n";
  out += "  \"scenario_seed\": " + std::to_string(scenario_seed) + ",\n";
  out += "  \"fault_seed\": " + std::to_string(fault_seed) + ",\n";
  out += "  \"decisions\": " + std::to_string(decisions) + ",\n";
  out += "  \"baseline_reward\": " + json_double(baseline_reward) + ",\n";
  out += "  \"rows\": [\n";
  for (std::size_t i = 0; i < rows.size(); ++i) {
    const ChaosRow& row = rows[i];
    const FaultTelemetry& t = row.telemetry;
    out += "    {\"label\": \"" + json_escape(row.point.label) + "\"";
    out += ", \"control_drop\": " + json_double(row.point.control_drop);
    out += ", \"control_delay\": " + json_double(row.point.control_delay);
    out += ", \"control_duplicate\": " +
           json_double(row.point.control_duplicate);
    out += ", \"ack_drop\": " + json_double(row.point.ack_drop);
    out += ", \"indication_drop\": " + json_double(row.point.indication_drop);
    out += ", \"mean_reward\": " + json_double(row.mean_reward);
    out += ", \"degradation\": " + json_double(row.degradation);
    out += ", \"controls_decided\": " + std::to_string(t.controls_decided);
    out += ", \"controls_sent\": " + std::to_string(t.controls_sent);
    out += ", \"controls_acked\": " + std::to_string(t.controls_acked);
    out += ", \"controls_in_flight\": " + std::to_string(t.controls_in_flight);
    out += ", \"controls_applied\": " + std::to_string(t.controls_applied);
    out += ", \"controls_dropped\": " + std::to_string(t.controls_dropped);
    out += ", \"controls_delayed\": " + std::to_string(t.controls_delayed);
    out +=
        ", \"controls_duplicated\": " + std::to_string(t.controls_duplicated);
    out += ", \"acks_dropped\": " + std::to_string(t.acks_dropped);
    out +=
        ", \"indications_dropped\": " + std::to_string(t.indications_dropped);
    out += ", \"retransmissions\": " + std::to_string(t.retransmissions);
    out += ", \"retries_expired\": " + std::to_string(t.retries_expired);
    out += ", \"duplicates_ignored\": " + std::to_string(t.duplicates_ignored);
    out += ", \"controls_rejected\": " + std::to_string(t.controls_rejected);
    out += ", \"degradation_events\": " + std::to_string(t.degradation_events);
    out += ", \"indications_missed\": " + std::to_string(t.indications_missed);
    out += ", \"reports_discarded\": " + std::to_string(t.reports_discarded);
    const ServingTelemetry& s = row.serving;
    out += ", \"explainer_slow\": " + json_double(row.point.explainer_slow);
    out += ", \"explainer_fail\": " + json_double(row.point.explainer_fail);
    out += ", \"serving_submitted\": " + std::to_string(s.stats.submitted);
    out += ", \"serving_accepted\": " + std::to_string(s.stats.accepted);
    out += ", \"serving_delivered\": " + std::to_string(s.delivered);
    out += ", \"serving_shed\": " + std::to_string(s.stats.shed_total());
    out += ", \"serving_exact\": " + std::to_string(s.stats.served_by_tier[0]);
    out +=
        ", \"serving_sampled\": " + std::to_string(s.stats.served_by_tier[1]);
    out += ", \"serving_surrogate\": " +
           std::to_string(s.stats.served_by_tier[2]);
    out += ", \"serving_cached\": " + std::to_string(s.stats.served_by_tier[3]);
    out += ", \"serving_demoted\": " + std::to_string(s.stats.demoted_requests);
    out += ", \"serving_eval_faults\": " + std::to_string(s.stats.eval_faults);
    out +=
        ", \"serving_breaker_trips\": " + std::to_string(s.stats.breaker_trips);
    out += ", \"serving_queue_high_water\": " +
           std::to_string(s.stats.queue_high_water);
    out += ", \"serving_digest\": " + std::to_string(s.stream_digest);
    out += ", \"exactly_once\": " + std::string(row.exactly_once ? "true"
                                                                 : "false");
    out += ", \"bounded\": " + std::string(row.bounded ? "true" : "false");
    out +=
        ", \"serving_ok\": " + std::string(row.serving_ok ? "true" : "false");
    out += "}";
    if (i + 1 < rows.size()) out += ",";
    out += "\n";
  }
  out += "  ]\n";
  out += "}\n";
  return out;
}

ChaosReport run_chaos_sweep(const TrainedSystem& system,
                            const ChaosConfig& config) {
  EXPLORA_EXPECTS(config.decisions > 0);
  EXPLORA_EXPECTS(config.max_reward_degradation > 0.0);

  ChaosReport report;
  report.scenario_seed = config.scenario.seed;
  report.fault_seed = config.fault_seed;
  report.decisions = config.decisions;

  const ExperimentResult baseline = run_experiment(
      system, config.scenario, base_options(config), config.training);
  report.baseline_reward = baseline.mean_reward();
  common::logf(common::LogLevel::kInfo, "chaos",
               "baseline mean reward {} over {} decisions",
               report.baseline_reward, config.decisions);

  report.rows.reserve(config.points.size());
  for (const ChaosFaultPoint& point : config.points) {
    ExperimentOptions options = base_options(config);
    if (options.serving.has_value()) {
      options.serving->eval_slow_probability = point.explainer_slow;
      options.serving->eval_slow_factor = point.explainer_slow_factor;
      options.serving->eval_failure_probability = point.explainer_fail;
    }
    FaultInjectionOptions faults;
    faults.seed = config.fault_seed;
    faults.control = {.drop = point.control_drop,
                      .delay = point.control_delay,
                      .delay_rounds = point.delay_rounds,
                      .duplicate = point.control_duplicate};
    faults.ack = {.drop = point.ack_drop};
    faults.indication = {.drop = point.indication_drop};
    options.faults = faults;

    const ExperimentResult result =
        run_experiment(system, config.scenario, options, config.training);
    EXPLORA_EXPECTS(result.faults.has_value());

    ChaosRow row;
    row.point = point;
    row.mean_reward = result.mean_reward();
    row.telemetry = *result.faults;
    if (result.serving.has_value()) row.serving = *result.serving;
    row.serving_ok = serving_contract_holds(row.serving, config.max_shed_rate);
    const double scale = std::abs(report.baseline_reward);
    row.degradation =
        scale > 0.0 ? (report.baseline_reward - row.mean_reward) / scale
                    : 0.0;
    // Exactly-once: every decision reached the gNB (none expired out of
    // retries, none stranded in flight) and the (sender, seq) guards
    // absorbed every duplicate delivery.
    row.exactly_once =
        row.telemetry.retries_expired == 0 &&
        row.telemetry.controls_in_flight == 0 &&
        row.telemetry.controls_applied == row.telemetry.controls_decided &&
        row.telemetry.controls_rejected == 0;
    row.bounded = row.degradation <= config.max_reward_degradation;
    common::logf(common::LogLevel::kInfo, "chaos",
                 "point {}: reward {} (degradation {}), applied {}/{}, "
                 "retx {}, exactly_once={}, bounded={}",
                 point.label, row.mean_reward, row.degradation,
                 row.telemetry.controls_applied,
                 row.telemetry.controls_decided,
                 row.telemetry.retransmissions, row.exactly_once,
                 row.bounded);
    common::logf(common::LogLevel::kInfo, "chaos",
                 "point {} serving: {} submitted, {} delivered, {} shed, "
                 "{} demoted, {} eval faults, high water {}/{}, "
                 "serving_ok={}",
                 point.label, row.serving.stats.submitted,
                 row.serving.delivered, row.serving.stats.shed_total(),
                 row.serving.stats.demoted_requests,
                 row.serving.stats.eval_faults,
                 row.serving.stats.queue_high_water,
                 row.serving.stats.queue_capacity, row.serving_ok);
    report.rows.push_back(std::move(row));
  }
  return report;
}

}  // namespace explora::harness
