#include "harness/experiment.hpp"

#include <bit>
#include <optional>

#include "common/contracts.hpp"
#include "common/telemetry.hpp"
#include "explora/xapp.hpp"
#include "oran/drl_xapp.hpp"
#include "oran/ric.hpp"

namespace explora::harness {

namespace {

/// FNV-1a over the serving result stream. Everything folded in is either
/// an integer or the raw bits of a deterministically computed double, so
/// the digest is byte-identical whenever the decision stream is.
void fnv_mix(std::uint64_t& digest, std::uint64_t value) {
  for (int i = 0; i < 8; ++i) {
    digest ^= (value >> (8 * i)) & 0xffULL;
    digest *= 1099511628211ULL;
  }
}

void fold_serving_results(const std::vector<ExplanationResult>& results,
                          ServingTelemetry& telemetry) {
  for (const ExplanationResult& result : results) {
    if (result.shed_reason != xai::serving::ShedReason::kNone) {
      ++telemetry.shed_notices;
    } else {
      ++telemetry.delivered;
    }
    fnv_mix(telemetry.stream_digest, result.id);
    fnv_mix(telemetry.stream_digest,
            (static_cast<std::uint64_t>(result.output_index) << 32) |
                (static_cast<std::uint64_t>(result.tier) << 16) |
                (static_cast<std::uint64_t>(result.shed_reason) << 8) |
                (result.degraded ? 2ULL : 0ULL) |
                (result.from_cache ? 1ULL : 0ULL));
    fnv_mix(telemetry.stream_digest,
            static_cast<std::uint64_t>(result.latency));
    for (const double phi : result.attribution) {
      fnv_mix(telemetry.stream_digest, std::bit_cast<std::uint64_t>(phi));
    }
  }
}

}  // namespace

core::ExploraXapp::Config make_explora_config(
    const ExperimentOptions& options, core::AgentProfile profile,
    std::size_t reports_per_decision) {
  core::ExploraXapp::Config config;
  config.reports_per_decision = reports_per_decision;
  config.reward_weights = core::weights_for(profile);
  config.steering = options.steering;
  config.shield = options.shield;
  config.reliable = options.reliable;
  config.expected_report_period = options.expected_report_period;
  config.degraded_hold_last = options.degraded_hold_last;
  return config;
}

double ExperimentResult::mean_reward() const {
  if (decisions.empty()) return 0.0;
  double sum = 0.0;
  for (const auto& record : decisions) sum += record.reward;
  return sum / static_cast<double>(decisions.size());
}

ExperimentResult run_experiment(const TrainedSystem& system,
                                const netsim::ScenarioConfig& scenario,
                                const ExperimentOptions& options,
                                const TrainingConfig& training) {
  EXPLORA_EXPECTS(system.autoencoder != nullptr && system.agent != nullptr);
  return run_experiment(system.normalizer, *system.autoencoder,
                        *system.agent, system.profile, scenario, options,
                        training);
}

ExperimentResult run_experiment(const ml::KpiNormalizer& normalizer,
                                const ml::Autoencoder& autoencoder,
                                const ml::PolicyAgent& agent,
                                core::AgentProfile profile,
                                const netsim::ScenarioConfig& scenario,
                                const ExperimentOptions& options,
                                const TrainingConfig& training) {
  EXPLORA_EXPECTS(options.decisions > 0);
  EXPLORA_EXPECTS(!options.steering.has_value() || options.deploy_explora);
  EXPLORA_EXPECTS(!options.shield.has_value() || options.deploy_explora);
  EXPLORA_EXPECTS(!options.serving.has_value() || options.deploy_explora);

  const std::size_t reports_per_decision = training.reports_per_decision;
  const core::RewardModel reward_model(core::weights_for(profile));

  // Closed-loop telemetry (harness.experiment.*). The decision-period span
  // is clocked by the registry's tick clock, which the gNB advances every
  // TTI — so each record equals the simulated TTIs one decision spans.
  telemetry::Scope tscope("harness.experiment");
  tscope.counter("runs").add(1);
  telemetry::SpanStat& decision_span = tscope.span("decision_period_ttis");
  telemetry::Registry& tregistry = tscope.registry();

  oran::NearRtRic ric(netsim::make_gnb(scenario));

  if (options.recorder != nullptr) {
    options.recorder->set_tick_source(
        [&tregistry] { return tregistry.now(); });
    ric.router().set_delivery_tap(options.recorder);
  }

  if (options.faults.has_value()) {
    const FaultInjectionOptions& faults = *options.faults;
    oran::LinkImpairments& impairments =
        ric.router().configure_impairments(faults.seed);
    impairments.set_policy(oran::MessageType::kRanControl, "*",
                           faults.control);
    impairments.set_policy(oran::MessageType::kRanControlAck, "*",
                           faults.ack);
    impairments.set_policy(oran::MessageType::kKpmIndication,
                           faults.indication_target, faults.indication);
  }

  oran::DrlXapp::Config drl_config;
  drl_config.reports_per_decision = reports_per_decision;
  drl_config.stochastic = options.stochastic_agent;
  drl_config.prb_temperature = options.prb_temperature;
  drl_config.sched_temperature = options.sched_temperature;
  drl_config.seed = options.xapp_seed;
  drl_config.reliable = options.reliable;
  oran::DrlXapp drl(drl_config, normalizer, autoencoder, agent,
                    ric.router());
  ric.attach_xapp(drl);
  ric.subscribe_indications(std::string(drl.endpoint_name()));

  std::optional<core::ExploraXapp> explora;
  if (options.deploy_explora) {
    explora.emplace(make_explora_config(options, profile,
                                        reports_per_decision),
                    ric.router(), &ric.repository());
    ric.attach_xapp(*explora);
    ric.subscribe_indications(std::string(explora->endpoint_name()));
    ric.route_control_via(std::string(drl.endpoint_name()),
                          std::string(explora->endpoint_name()));
  } else {
    ric.route_control(std::string(drl.endpoint_name()));
  }

  ExperimentResult result;
  result.decisions.reserve(options.decisions);

  auto harvest_window_samples = [&result, &ric, reports_per_decision]() {
    for (const auto& report :
         ric.repository().latest_reports(reports_per_decision)) {
      result.embb_bitrate_mbps.push_back(
          report.value(netsim::Kpi::kTxBitrate, netsim::Slice::kEmbb));
      result.mmtc_tx_packets.push_back(
          report.value(netsim::Kpi::kTxPackets, netsim::Slice::kMmtc));
      result.urllc_buffer_bytes.push_back(
          report.value(netsim::Kpi::kBufferSize, netsim::Slice::kUrllc));
    }
  };
  auto window_reward = [&ric, &reward_model, reports_per_decision]() {
    const auto window = ric.repository().latest_reports(reports_per_decision);
    return reward_model.from_window(window);
  };

  // Explanation serving rides the same closed loop: the service shares
  // the xApp's degradation ladder and is ticked on the registry's TTI
  // clock, so its admission/shed/demote stream is as deterministic as the
  // control stream. It comes up once enough latents exist for a SHAP
  // background.
  std::optional<ExplainService> service;
  std::vector<ml::Vector> serving_background;
  ServingTelemetry serving_telemetry;
  std::int64_t serving_tick = 0;
  auto pump_serving = [&](std::int64_t until) {
    if (!service.has_value()) return;
    service->run_until(serving_tick, until);
    serving_tick = until;
    fold_serving_results(service->drain(), serving_telemetry);
  };

  std::uint64_t replaced_before = 0;
  for (std::size_t d = 0; d < options.decisions; ++d) {
    if (options.drop_ue_at_decision.has_value() &&
        d == *options.drop_ue_at_decision) {
      ric.gnb().detach_one_ue(options.drop_slice);
    }
    // One decision period: M report windows, after which the DRL xApp has
    // emitted (and the route has enforced) the next control.
    {
      telemetry::ScopedSpan span(decision_span, tregistry);
      ric.run_windows(reports_per_decision);
    }
    harvest_window_samples();

    // The reward of this window block credits the previous decision.
    if (!result.decisions.empty()) {
      result.decisions.back().reward = window_reward();
    }

    if (!drl.last_decision().has_value()) continue;  // warm-up block
    DecisionRecord record;
    record.latent = drl.last_latent();
    record.proposed = ml::to_control(drl.last_decision()->action);
    record.enforced = ric.gnb().control();
    if (explora.has_value()) {
      record.replaced = explora->controls_replaced() > replaced_before;
      replaced_before = explora->controls_replaced();
    }
    result.decisions.push_back(std::move(record));

    if (options.serving.has_value() && explora.has_value()) {
      const ServingOptions& serving = *options.serving;
      const auto now = static_cast<std::int64_t>(tregistry.now());
      if (!service.has_value()) {
        serving_background.push_back(drl.last_latent());
        if (serving_background.size() >= serving.background_rows) {
          ExplainService::Config service_config;
          service_config.queue_capacity = serving.queue_capacity;
          service_config.workers = serving.workers;
          service_config.sampled_permutations = serving.sampled_permutations;
          service_config.max_background = serving.background_rows;
          service_config.seed = serving.seed;
          service_config.eval_slow_probability = serving.eval_slow_probability;
          service_config.eval_slow_factor = serving.eval_slow_factor;
          service_config.eval_failure_probability =
              serving.eval_failure_probability;
          service.emplace(agent, serving_background, nullptr, service_config,
                          &explora->ladder());
          serving_tick = now;
        }
      } else {
        pump_serving(now);
        const std::int64_t deadline =
            serving.deadline_ticks > 0 ? now + serving.deadline_ticks : 0;
        for (std::size_t i = 0; i < serving.requests_per_decision; ++i) {
          const auto head =
              static_cast<std::uint32_t>((d + i) % ml::kNumHeads);
          (void)service->submit(drl.last_latent(), head,
                                drl.last_decision()->action, now, deadline);
        }
      }
    }
  }
  // Credit the final decision with one more observation block.
  ric.run_windows(reports_per_decision);
  harvest_window_samples();
  if (!result.decisions.empty()) {
    result.decisions.back().reward = window_reward();
  }

  // Drain the control-plane tail: a control decided on the last report
  // window can still be held by a link delay or awaiting a retry when the
  // loop stops. Release held messages and pump retry ticks (bounded, so a
  // hard-expired control cannot loop forever) until nothing is in flight.
  if (options.reliable.has_value()) {
    auto tail = [&]() {
      std::size_t pending = ric.router().pending_delayed();
      if (drl.reliable() != nullptr) pending += drl.reliable()->in_flight();
      if (explora.has_value() && explora->reliable() != nullptr) {
        pending += explora->reliable()->in_flight();
      }
      return pending;
    };
    for (int i = 0; i < 64 && tail() > 0; ++i) {
      ric.router().flush_delayed();
      drl.pump_reliable();
      if (explora.has_value()) explora->pump_reliable();
    }
  }

  // Drain the serving tail: queued/executing explanations finish on the
  // simulated clock, so advance it (bounded — every pass retires at least
  // one tier-cost worth of work or sheds on deadline).
  if (service.has_value()) {
    const std::int64_t chunk =
        service->config().costs.cost(xai::serving::Tier::kExact) *
            service->config().eval_slow_factor +
        service->config().default_deadline;
    for (int i = 0;
         i < 64 && (service->queue().depth() > 0 || service->busy_workers() > 0);
         ++i) {
      pump_serving(serving_tick + chunk);
    }
    pump_serving(serving_tick + 1);
    serving_telemetry.stats = service->stats();
    serving_telemetry.ladder_demotions = service->ladder().demotions();
    serving_telemetry.ladder_promotions = service->ladder().promotions();
  }
  if (options.serving.has_value()) result.serving = serving_telemetry;

  result.explanations = ric.repository().explanations();
  result.degradations = ric.repository().degradations();

  if (explora.has_value()) {
    result.graph = explora->graph();
    result.transitions = explora->tracker().events();
    result.controls_replaced = explora->controls_replaced();
    if (explora->steering_enabled()) {
      SteeringStats stats;
      stats.decisions = explora->steering().decisions();
      stats.suggestions = explora->steering().suggestions();
      stats.replacements = explora->steering().replacements();
      for (const auto& [action, count] :
           explora->steering().replacement_counts()) {
        stats.per_action_replaced_out.push_back(count);
      }
      result.steering = std::move(stats);
    }
  }

  if (options.faults.has_value() || options.reliable.has_value()) {
    FaultTelemetry telemetry;
    if (const oran::LinkImpairments* impairments =
            ric.router().impairments()) {
      telemetry.controls_dropped =
          impairments->dropped_by_type(oran::MessageType::kRanControl);
      telemetry.controls_delayed =
          impairments->delayed_by_type(oran::MessageType::kRanControl);
      telemetry.controls_duplicated =
          impairments->duplicated_by_type(oran::MessageType::kRanControl);
      telemetry.acks_dropped =
          impairments->dropped_by_type(oran::MessageType::kRanControlAck);
      telemetry.indications_dropped =
          impairments->dropped_by_type(oran::MessageType::kKpmIndication);
    }
    auto add_sender = [&telemetry](const oran::ReliableControlSender* s) {
      if (s == nullptr) return;
      telemetry.controls_sent += s->sent();
      telemetry.controls_acked += s->acked();
      telemetry.retransmissions += s->retransmissions();
      telemetry.retries_expired += s->expired();
      telemetry.controls_in_flight += s->in_flight();
    };
    telemetry.controls_decided = drl.decisions_made();
    add_sender(drl.reliable());
    if (explora.has_value()) add_sender(explora->reliable());
    telemetry.controls_applied = ric.e2_termination().controls_applied();
    telemetry.duplicates_ignored =
        ric.e2_termination().duplicate_controls_ignored();
    telemetry.controls_rejected = ric.e2_termination().controls_rejected();
    if (explora.has_value()) {
      telemetry.duplicates_ignored += explora->duplicate_controls_ignored();
      telemetry.degradation_events = explora->degradation_events();
      telemetry.indications_missed = explora->indications_missed();
      telemetry.reports_discarded = explora->reports_discarded();
    }
    result.faults = telemetry;
  }
  return result;
}

}  // namespace explora::harness
