// Deployed-experiment runner: instantiates the full O-RAN pipeline of
// Fig. 6 (gNB -> E2 termination -> RMR -> DRL xApp [-> EXPLORA xApp] ->
// E2 termination) and drives it for a configured number of decision
// periods, harvesting everything the paper's figures need: per-window KPI
// samples, per-decision actions/latents/rewards, the attributed graph,
// transition events and steering statistics.
#pragma once

#include <cstdint>
#include <optional>
#include <vector>

#include "explora/edbr.hpp"
#include "explora/explain_service.hpp"
#include "explora/shield.hpp"
#include "explora/graph.hpp"
#include "explora/reward.hpp"
#include "explora/transitions.hpp"
#include "harness/training.hpp"
#include "ml/agent.hpp"
#include "ml/features.hpp"
#include "explora/xapp.hpp"
#include "netsim/scenario.hpp"
#include "oran/impairments.hpp"
#include "oran/reliable.hpp"
#include "oran/trace.hpp"

namespace explora::harness {

/// Link-fault injection for chaos runs. Policies apply per message plane;
/// indication faults target only the EXPLORA xApp's subscription so the
/// data repository (the measurement plane) keeps an unbroken KPI record.
struct FaultInjectionOptions {
  /// Seed for the impairment decision stream (forked internally, so the
  /// same seed + policies reproduce the same fault pattern bit-for-bit).
  std::uint64_t seed = 4242;
  /// Applied to every RIC_CONTROL delivery (both hops).
  oran::LinkImpairments::Policy control{};
  /// Applied to every RIC_CONTROL_ACK delivery (both hops).
  oran::LinkImpairments::Policy ack{};
  /// Applied to KPM indications delivered to `indication_target` only.
  oran::LinkImpairments::Policy indication{};
  std::string indication_target = "explora_xapp";
};

/// Explanation-serving wiring for closed-loop runs (requires
/// deploy_explora): each decision submits queries for the latest latent
/// and enforced action against an ExplainService that shares the EXPLORA
/// xApp's degradation ladder, ticking the service on the gNB's TTI clock.
/// The service is constructed once `background_rows` latents have been
/// observed (SHAP needs a background to marginalize over).
struct ServingOptions {
  std::size_t requests_per_decision = 2;
  std::size_t queue_capacity = 16;
  std::size_t workers = 2;
  /// Latent rows collected before the service comes up.
  std::size_t background_rows = 4;
  std::size_t sampled_permutations = 8;
  std::uint64_t seed = 2027;
  /// Per-request deadline in ticks; 0 = the service default.
  std::int64_t deadline_ticks = 0;
  // Slow-explainer impairment (chaos): see ExplainService::Config.
  double eval_slow_probability = 0.0;
  std::int64_t eval_slow_factor = 4;
  double eval_failure_probability = 0.0;
};

/// End-of-run serving-path telemetry: admission/shed/tier counters from
/// the service plus an FNV-1a digest of the delivered result stream
/// (ids, tiers, shed reasons, attribution bytes in delivery order) — two
/// runs that made identical serving decisions produce identical digests.
struct ServingTelemetry {
  ExplainService::Stats stats{};
  std::uint64_t delivered = 0;     ///< results with an attribution
  std::uint64_t shed_notices = 0;  ///< dispatch-time sheds drained
  std::uint64_t ladder_demotions = 0;
  std::uint64_t ladder_promotions = 0;
  std::uint64_t stream_digest = 14695981039346656037ULL;  ///< FNV-1a basis
};

struct ExperimentOptions {
  /// Number of DRL decision periods to run (each = M report windows;
  /// 720 decisions = 30 simulated minutes at 4 decisions/s).
  std::size_t decisions = 720;
  /// Deploy the EXPLORA xApp on the control path.
  bool deploy_explora = true;
  /// EDBR steering (requires deploy_explora).
  std::optional<core::ActionSteering::Config> steering;
  /// Action shield (Opt 2; requires deploy_explora). Applied before
  /// steering inside the EXPLORA xApp.
  std::optional<core::ActionShield> shield;
  /// Sample actions from the policy instead of taking the argmax. The
  /// paper's deployed agents keep exploring; sampling reproduces the
  /// action diversity visible in its graphs.
  bool stochastic_agent = true;
  /// Sampling temperatures for the deployed policy (< 1 concentrates it;
  /// the deployed paper agents mix a dominant action with excursions).
  /// The slicing (PRB) head runs colder than the scheduler heads.
  double prb_temperature = 0.35;
  double sched_temperature = 0.9;
  std::uint64_t xapp_seed = 555;
  /// Detach one UE of `drop_slice` after this many decisions (the paper's
  /// "Users: 6, drop to 5" steering setup).
  std::optional<std::size_t> drop_ue_at_decision;
  netsim::Slice drop_slice = netsim::Slice::kMmtc;

  // --- robustness (fault-injected runs) ----------------------------------
  /// RMR link impairments; unset runs the fault-free pipeline.
  std::optional<FaultInjectionOptions> faults;
  /// Sequence-numbered ACK/retry control delivery on every control hop;
  /// unset keeps legacy fire-and-forget sends.
  std::optional<oran::ReliableControlSender::Config> reliable;
  /// EXPLORA staleness-watchdog tuning (see ExploraXapp::Config).
  netsim::Tick expected_report_period = 0;
  bool degraded_hold_last = false;
  /// Explanation serving on the closed loop (requires deploy_explora).
  std::optional<ServingOptions> serving;

  // --- record/replay -----------------------------------------------------
  /// When set, tapped onto the router for the run's duration: every
  /// delivered message is captured tick-stamped (on the telemetry
  /// registry's clock), ready to serialize as an `.etrace` stream for
  /// offline replay (DESIGN.md §13.4). Non-owning; must outlive the run.
  oran::TraceRecorder* recorder = nullptr;
};

/// The EXPLORA xApp configuration run_experiment deploys for the given
/// options — exposed so an offline replay (harness/replay.hpp) constructs
/// a byte-identical xApp from the same options that drove the live run.
[[nodiscard]] core::ExploraXapp::Config make_explora_config(
    const ExperimentOptions& options, core::AgentProfile profile,
    std::size_t reports_per_decision);

/// One DRL decision period.
struct DecisionRecord {
  ml::Vector latent;                      ///< agent input (autoencoder out)
  netsim::SlicingControl proposed;        ///< agent's action
  netsim::SlicingControl enforced;        ///< after EDBR (== proposed if off)
  bool replaced = false;
  double reward = 0.0;                    ///< Eq. (1) over the window
};

struct SteeringStats {
  std::uint64_t decisions = 0;
  std::uint64_t suggestions = 0;
  std::uint64_t replacements = 0;
  /// Replacement multiplicity per action replaced out (Fig. 15's
  /// "same action substituted more than 3 times is rare").
  std::vector<std::uint64_t> per_action_replaced_out;
};

/// End-of-run fault and resilience counters, harvested from the router,
/// both reliable senders, the E2 termination and the EXPLORA watchdog.
struct FaultTelemetry {
  // Router-level impairments (per plane).
  std::uint64_t controls_dropped = 0;
  std::uint64_t controls_delayed = 0;
  std::uint64_t controls_duplicated = 0;
  std::uint64_t acks_dropped = 0;
  std::uint64_t indications_dropped = 0;
  // Reliable-delivery counters (summed over both control hops).
  std::uint64_t controls_decided = 0;  ///< DRL decisions emitted
  std::uint64_t controls_sent = 0;
  std::uint64_t controls_acked = 0;
  std::uint64_t retransmissions = 0;
  std::uint64_t retries_expired = 0;
  std::uint64_t controls_in_flight = 0;  ///< unACKed at end of run
  // Receiver-side exactly-once guards.
  std::uint64_t controls_applied = 0;
  std::uint64_t duplicates_ignored = 0;
  std::uint64_t controls_rejected = 0;
  // EXPLORA degraded-mode watchdog.
  std::uint64_t degradation_events = 0;
  std::uint64_t indications_missed = 0;
  std::uint64_t reports_discarded = 0;
};

struct ExperimentResult {
  std::vector<DecisionRecord> decisions;
  /// The repository's explanation/degradation archives at end of run (the
  /// attribution stream a replayed trace must reproduce byte-identically).
  std::vector<oran::ExplanationRecord> explanations;
  std::vector<oran::DegradationRecord> degradations;
  /// Per report window (decisions x M entries), slice-aggregate KPIs.
  std::vector<double> embb_bitrate_mbps;
  std::vector<double> mmtc_tx_packets;
  std::vector<double> urllc_buffer_bytes;
  /// EXPLORA state (empty/default when deploy_explora is false).
  core::AttributedGraph graph;
  std::vector<core::TransitionEvent> transitions;
  std::optional<SteeringStats> steering;
  std::uint64_t controls_replaced = 0;
  /// Present whenever options.faults or options.reliable is set.
  std::optional<FaultTelemetry> faults;
  /// Present whenever options.serving is set.
  std::optional<ServingTelemetry> serving;

  /// Mean reward across decisions.
  [[nodiscard]] double mean_reward() const;
};

/// Runs one experiment; `system` provides the trained models (borrowed —
/// the xApps hold const references for the run's duration).
[[nodiscard]] ExperimentResult run_experiment(
    const TrainedSystem& system, const netsim::ScenarioConfig& scenario,
    const ExperimentOptions& options, const TrainingConfig& training = {});

/// Agent-family-agnostic variant (the paper's §4.2 claim): any PolicyAgent
/// — PPO, DQN, ... — can drive the pipeline; `profile` selects the reward
/// model EXPLORA uses for expected-reward estimates.
[[nodiscard]] ExperimentResult run_experiment(
    const ml::KpiNormalizer& normalizer, const ml::Autoencoder& autoencoder,
    const ml::PolicyAgent& agent, core::AgentProfile profile,
    const netsim::ScenarioConfig& scenario, const ExperimentOptions& options,
    const TrainingConfig& training = {});

}  // namespace explora::harness
