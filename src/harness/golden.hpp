// Golden-trace runner: short canonical closed-loop runs whose telemetry
// snapshots are committed under tests/golden/ and diffed structurally by
// tools/trace_diff and tests/test_golden_trace. Each case runs the full
// gNB -> E2 -> RMR -> xApp -> control pipeline inside a fresh telemetry
// registry, so the snapshot covers exactly the run's own components, and
// the determinism contract of common/telemetry makes the JSON byte-stable
// across repeat runs, EXPLORA_THREADS values and machines.
#pragma once

#include <string>
#include <string_view>
#include <vector>

namespace explora::harness {

/// Names of the canonical golden-trace cases, in the order they are
/// regenerated: "baseline" (fault-free) and "chaos_drop10" (10% control
/// and ACK drop with reliable ACK/retry delivery).
[[nodiscard]] const std::vector<std::string_view>& golden_trace_cases();

/// Runs the named case end to end and returns the canonical telemetry
/// snapshot JSON. The backing system is trained once per process (outside
/// the snapshot registry), so the trace captures only the closed-loop
/// pipeline. Unknown names are a contract violation.
[[nodiscard]] std::string run_golden_trace(std::string_view case_name);

/// The committed golden file name for a case ("<case>.json").
[[nodiscard]] std::string golden_trace_filename(std::string_view case_name);

}  // namespace explora::harness
