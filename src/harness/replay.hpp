// Record/replay harness (DESIGN.md §13.4): runs an experiment with a
// TraceRecorder tapped on the router, then feeds the recorded delivery
// stream back into a *fresh* EXPLORA xApp with no simulator, DRL agent or
// impairment model in the loop. Because the xApp is a deterministic
// function of its delivered message stream, the replayed run must
// reproduce the live run's attribution stream — explanations,
// degradation records, attributed graph (including reservoir sample
// contents), transition events — and its explora.xapp telemetry
// byte-for-byte. replay_roundtrip() asserts exactly that and is wired
// into the golden-trace differ as a structural case.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "explora/explain_service.hpp"
#include "harness/experiment.hpp"
#include "harness/training.hpp"
#include "oran/trace.hpp"

namespace explora::harness {

/// One canonical byte stream of everything EXPLORA produced in a run:
/// the wire-encoded attribution dump (explanations, degradations, graph,
/// transitions) plus the canonical filtered explora.xapp telemetry JSON
/// (clock normalized to 0 — live and replay stop their clocks at
/// different instants, which is presentation, not behaviour).
struct AttributionStream {
  std::vector<std::uint8_t> bytes;  ///< one wire frame (AttributionDump)
  std::string telemetry_json;       ///< explora.xapp.* metrics, now = 0
  std::uint64_t digest = 0;         ///< FNV-1a over bytes + telemetry_json

  friend bool operator==(const AttributionStream&,
                         const AttributionStream&) = default;
};

/// Products of a recorded live run.
struct RecordedRun {
  ExperimentResult result;
  std::vector<std::uint8_t> trace;  ///< serialized .etrace stream
  std::string xapp_name;            ///< replay target endpoint
  AttributionStream attribution;
};

/// Runs run_experiment inside its own telemetry registry with a delivery
/// tap installed, harvesting the serialized trace and the live
/// attribution stream. Requires options.deploy_explora.
[[nodiscard]] RecordedRun record_experiment(
    const TrainedSystem& system, const netsim::ScenarioConfig& scenario,
    const ExperimentOptions& options, const TrainingConfig& training = {});

/// Products of replaying a trace into a fresh EXPLORA xApp.
struct ReplayOutcome {
  std::size_t frames_delivered = 0;
  std::vector<oran::ExplanationRecord> explanations;
  std::vector<oran::DegradationRecord> degradations;
  AttributionStream attribution;
};

/// Replays every frame recorded for the named xApp into a fresh
/// ExploraXapp built from the same options the live run used (see
/// make_explora_config). The xApp's outbound traffic (forwarded controls,
/// ACKs) drains into a sink endpoint; the replay clock follows the
/// recorded frame ticks.
[[nodiscard]] ReplayOutcome replay_trace(
    const oran::TraceReplaySource& source, const std::string& xapp_name,
    const ExperimentOptions& options, core::AgentProfile profile,
    const TrainingConfig& training = {});

/// Record-then-replay verdict (the golden replay_roundtrip case and the
/// `tools/replay --verify` CLI both publish this).
struct RoundTripReport {
  RecordedRun live;
  ReplayOutcome replayed;
  bool bytes_identical = false;      ///< attribution wire bytes match
  bool telemetry_identical = false;  ///< filtered telemetry JSON matches
  [[nodiscard]] bool ok() const noexcept {
    return bytes_identical && telemetry_identical;
  }
};

/// Runs a live recorded experiment, replays its trace offline and
/// compares the two attribution streams byte-for-byte.
[[nodiscard]] RoundTripReport replay_roundtrip(
    const TrainedSystem& system, const netsim::ScenarioConfig& scenario,
    const ExperimentOptions& options, const TrainingConfig& training = {});

/// Explanation serving over a recorded stream: rebuilds the DRL xApp's
/// latent inputs from the replayed KPM indications (normalizer +
/// autoencoder, exactly the live feature path) and submits one
/// explanation query per decision window against an ExplainService
/// clocked by the recorded frame ticks. This is the paper's offline
/// consumption mode: explain traffic that already happened, with no RAN
/// attached.
struct ServeStats {
  std::size_t indications = 0;
  std::size_t decisions = 0;
  std::uint64_t submitted = 0;
  std::uint64_t delivered = 0;
  std::uint64_t shed = 0;
  std::uint64_t stream_digest = 0;  ///< FNV-1a over the result stream
};

[[nodiscard]] ServeStats serve_trace(const oran::TraceReplaySource& source,
                                     const std::string& drl_xapp_name,
                                     const TrainedSystem& system,
                                     const ServingOptions& serving,
                                     std::size_t reports_per_decision);

}  // namespace explora::harness
