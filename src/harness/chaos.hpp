// Chaos harness: sweeps RMR fault intensities over full closed-loop runs
// and checks the robustness contract — every DRL control is eventually
// applied exactly once at the gNB, and the mean per-slice reward degrades
// by at most a configured bound versus the fault-free baseline at the same
// seed. Results serialize to a deterministic JSON document (fixed key
// order, fixed float precision) so two runs with the same seed and fault
// configuration must produce bit-identical output.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "harness/experiment.hpp"
#include "harness/training.hpp"
#include "netsim/scenario.hpp"
#include "oran/reliable.hpp"

namespace explora::harness {

/// One point of the fault sweep: the impairment intensities injected on
/// each message plane for a full experiment run.
struct ChaosFaultPoint {
  std::string label;
  double control_drop = 0.0;       ///< RIC_CONTROL drop probability
  double control_delay = 0.0;      ///< RIC_CONTROL delay probability
  std::uint32_t delay_rounds = 1;  ///< dispatch rounds a delayed control waits
  double control_duplicate = 0.0;  ///< RIC_CONTROL duplication probability
  double ack_drop = 0.0;           ///< RIC_CONTROL_ACK drop probability
  double indication_drop = 0.0;    ///< KPM drop on the EXPLORA subscription
  // Slow-explainer impairment: per-request simulated-cost inflation and
  // outright eval failures on the serving path's model-eval tiers.
  double explainer_slow = 0.0;        ///< P(cost inflated slow_factor x)
  std::int64_t explainer_slow_factor = 4;
  double explainer_fail = 0.0;        ///< P(model eval fails; feeds breaker)
};

struct ChaosConfig {
  netsim::ScenarioConfig scenario;
  TrainingConfig training;
  std::size_t decisions = 24;
  /// Seed of the impairment decision stream (one per sweep point; the same
  /// seed is reused across points so each point is independently
  /// reproducible in isolation).
  std::uint64_t fault_seed = 4242;
  /// ACK/retry policy for both control hops. The default retries every
  /// indication tick without backoff: in the chaos loop the tick budget
  /// after the final decision is one report window, so aggressive retries
  /// keep the tail short enough for every control to land before the run
  /// ends.
  oran::ReliableControlSender::Config reliable{
      .ack_timeout_ticks = 1, .max_retries = 12, .backoff_factor = 1};
  std::vector<ChaosFaultPoint> points;
  /// Maximum tolerated mean-reward degradation vs the baseline (0.20 =
  /// 20%).
  double max_reward_degradation = 0.20;
  /// Explanation serving runs on every sweep point (and the baseline), so
  /// the serving-path contract is checked under the same faults as the
  /// control plane.
  ServingOptions serving{};
  /// Maximum tolerated fraction of submitted requests shed (admission +
  /// dispatch) per point.
  double max_shed_rate = 0.5;
};

/// The default sweep: drop rates up to 10% on the control plane, one
/// delay-heavy point, one duplication point, and one KPM-gap point that
/// forces the EXPLORA watchdog through degraded mode and back.
[[nodiscard]] std::vector<ChaosFaultPoint> default_fault_points();

struct ChaosRow {
  ChaosFaultPoint point;
  double mean_reward = 0.0;
  /// (baseline - mean) / |baseline|; negative when faults improved reward.
  double degradation = 0.0;
  FaultTelemetry telemetry;
  ServingTelemetry serving;
  bool exactly_once = false;
  bool bounded = false;
  /// Serving contract: no growth past the admission bound, every accepted
  /// request accounted for (delivered or shed with a reason), and the
  /// total shed rate within ChaosConfig::max_shed_rate.
  bool serving_ok = false;
};

struct ChaosReport {
  std::uint64_t scenario_seed = 0;
  std::uint64_t fault_seed = 0;
  std::size_t decisions = 0;
  double baseline_reward = 0.0;
  std::vector<ChaosRow> rows;
  [[nodiscard]] bool all_exactly_once() const;
  [[nodiscard]] bool all_bounded() const;
  [[nodiscard]] bool all_serving_ok() const;
  /// Deterministic JSON: fixed key order, "%.6f" floats, no locale.
  [[nodiscard]] std::string to_json() const;
};

/// Runs the fault-free baseline then every sweep point, all at the same
/// scenario/xApp seeds, and evaluates the robustness contract per point.
[[nodiscard]] ChaosReport run_chaos_sweep(const TrainedSystem& system,
                                          const ChaosConfig& config);

}  // namespace explora::harness
