// KPI report structures: the per-slice, per-UE measurements carried by E2
// KPM indications. One report covers one E2 report window (25 TTIs by
// default), and M = 10 consecutive reports form the DRL input matrix I.
#pragma once

#include <cstdint>
#include <vector>

#include "netsim/types.hpp"

namespace explora::netsim {

/// Measurements for one slice in one report window. Vectors are indexed by
/// the slice-local UE position (stable across a run).
struct SliceKpiReport {
  std::vector<double> tx_bitrate_mbps;      ///< per-UE DL bitrate
  std::vector<double> tx_packets;           ///< per-UE packets completed
  std::vector<double> buffer_bytes;         ///< per-UE buffer at window end

  /// Slice-aggregate value of one KPI (sum over the slice's UEs).
  [[nodiscard]] double aggregate(Kpi kpi) const;

  friend bool operator==(const SliceKpiReport&,
                         const SliceKpiReport&) = default;
};

/// One E2 report: all slices, one window.
struct KpiReport {
  Tick window_end = 0;                      ///< TTI at which the window closed
  PerSlice<SliceKpiReport> slices{};

  /// Slice-aggregate accessor used throughout EXPLORA.
  [[nodiscard]] double value(Kpi kpi, Slice slice) const {
    return slices[static_cast<std::size_t>(slice)].aggregate(kpi);
  }

  friend bool operator==(const KpiReport&, const KpiReport&) = default;
};

}  // namespace explora::netsim
