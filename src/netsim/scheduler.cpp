#include "netsim/scheduler.hpp"

#include <algorithm>
#include <limits>
#include <vector>

#include "common/analysis_annotations.hpp"
#include "common/contracts.hpp"

namespace explora::netsim {

namespace {

/// Serves one PRB worth of data to a UE; returns bytes actually sent.
EXPLORA_REALTIME std::uint64_t serve_one_prb(Ue& ue) {
  return ue.serve(ue.channel().bytes_per_prb());
}

/// Collects the subset of UEs with buffered data into `out`, a scratch
/// vector owned by the scheduler: its capacity survives across TTIs, so
/// after the first few TTIs of a configuration the grant loop runs
/// allocation-free.
EXPLORA_REALTIME void collect_backlogged(std::span<Ue*> ues,
                                         std::vector<Ue*>& out) {
  out.clear();
  for (Ue* ue : ues) {
    EXPLORA_EXPECTS(ue != nullptr);
    // hotpath-ok: scratch retains capacity across TTIs; grows only when
    // the attached-UE count grows (attach/detach, not the TTI loop).
    if (ue->has_data()) out.push_back(ue);
  }
}

}  // namespace

namespace {

// Upper bound kTotalPrbs: a slice can at most be granted the whole carrier.
constexpr std::int64_t kPrbBounds[] = {0, 5, 10, 20, 30, 40, kTotalPrbs};

}  // namespace

Scheduler::Scheduler() {
  static_assert(std::size(kPrbBounds) + 1 == kPrbBucketCount);
  telemetry::Scope scope("netsim.scheduler");
  tti_runs_ = &scope.counter("tti_runs");
  prb_granted_ = &scope.counter("prb_granted");
  prb_unused_ = &scope.counter("prb_unused");
  prb_per_tti_ = &scope.histogram("prb_per_tti", kPrbBounds);
}

Scheduler::~Scheduler() { flush_telemetry(); }

EXPLORA_REALTIME void Scheduler::record_grants(std::uint32_t granted,
                                               std::uint32_t budget) noexcept {
  // Plain-integer accumulation on the TTI hot path; flush_telemetry()
  // folds it into the shared atomics once per report window. Gated like
  // every other record call so runtime-disabled windows stay unrecorded.
  if constexpr (!telemetry::kCompiledIn) {
    (void)granted;
    (void)budget;
    return;
  }
  if (!telemetry::enabled()) return;
  ++pending_.runs;
  pending_.granted += granted;
  pending_.unused += budget - granted;
  ++pending_.grant_tally[granted];
}

void Scheduler::flush_telemetry() noexcept {
  if constexpr (!telemetry::kCompiledIn) return;
  if (pending_.runs == 0) return;
  tti_runs_->add(pending_.runs);
  prb_granted_->add(pending_.granted);
  prb_unused_->add(pending_.unused);
  // Derive the histogram fold from the grant tally: per-TTI values are
  // bounded by the carrier, so the tally is exhaustive and sum/min/max
  // reconstruct exactly what per-value observe() calls would have seen.
  std::array<std::uint64_t, kPrbBucketCount> buckets{};
  std::int64_t sum = 0;
  std::int64_t min = std::numeric_limits<std::int64_t>::max();
  std::int64_t max = std::numeric_limits<std::int64_t>::min();
  std::size_t bucket = 0;
  for (std::int64_t value = 0; value <= kTotalPrbs; ++value) {
    const std::uint64_t hits =
        pending_.grant_tally[static_cast<std::size_t>(value)];
    while (bucket < std::size(kPrbBounds) && value > kPrbBounds[bucket]) {
      ++bucket;
    }
    if (hits == 0) continue;
    buckets[bucket] += hits;
    sum += value * static_cast<std::int64_t>(hits);
    min = std::min(min, value);
    max = std::max(max, value);
  }
  prb_per_tti_->observe_batch(buckets, pending_.runs, sum, min, max);
  pending_ = PendingGrants{};
}

std::unique_ptr<Scheduler> make_scheduler(SchedulerPolicy policy,
                                          double pf_alpha) {
  switch (policy) {
    case SchedulerPolicy::kRoundRobin:
      return std::make_unique<RoundRobinScheduler>();
    case SchedulerPolicy::kWaterfilling:
      return std::make_unique<WaterfillingScheduler>();
    case SchedulerPolicy::kProportionalFair:
      return std::make_unique<ProportionalFairScheduler>(pf_alpha);
  }
  EXPLORA_ASSERT(false);
  return nullptr;
}

EXPLORA_REALTIME void RoundRobinScheduler::schedule_tti(
    std::span<Ue*> ues, std::uint32_t prb_budget) {
  auto& active = active_scratch_;
  collect_backlogged(ues, active);
  if (active.empty() || prb_budget == 0) {
    record_grants(0, prb_budget);
    return;
  }
  // Rotate the starting user so the head position does not systematically
  // favour low UE ids when the budget is not a multiple of the user count.
  next_ %= active.size();
  std::size_t cursor = next_;
  std::uint32_t remaining = prb_budget;
  // Cycle until the budget is spent or nobody has data left.
  std::size_t idle_passes = 0;
  while (remaining > 0 && idle_passes < active.size()) {
    Ue& ue = *active[cursor];
    cursor = (cursor + 1) % active.size();
    if (!ue.has_data()) {
      ++idle_passes;
      continue;
    }
    idle_passes = 0;
    serve_one_prb(ue);
    --remaining;
  }
  // A slice scheduler must never grant more PRBs than its slice owns,
  // or it would eat into another slice's share.
  EXPLORA_ENSURES_MSG(remaining <= prb_budget,
                      "RR served {} PRBs over a budget of {}",
                      prb_budget - remaining, prb_budget);
  record_grants(prb_budget - remaining, prb_budget);
  next_ = (next_ + 1) % active.size();
}

EXPLORA_REALTIME void WaterfillingScheduler::schedule_tti(
    std::span<Ue*> ues, std::uint32_t prb_budget) {
  auto& active = active_scratch_;
  collect_backlogged(ues, active);
  if (active.empty() || prb_budget == 0) {
    record_grants(0, prb_budget);
    return;
  }
  // Strongest channel first; ties broken by UE id for determinism.
  std::sort(active.begin(), active.end(), [](const Ue* a, const Ue* b) {
    if (a->channel().sinr_db() != b->channel().sinr_db()) {
      return a->channel().sinr_db() > b->channel().sinr_db();
    }
    return a->id() < b->id();
  });
  std::uint32_t remaining = prb_budget;
  for (Ue* ue : active) {
    while (remaining > 0 && ue->has_data()) {
      serve_one_prb(*ue);
      --remaining;
    }
    if (remaining == 0) break;
  }
  EXPLORA_ENSURES_MSG(remaining <= prb_budget,
                      "WF served {} PRBs over a budget of {}",
                      prb_budget - remaining, prb_budget);
  record_grants(prb_budget - remaining, prb_budget);
}

ProportionalFairScheduler::ProportionalFairScheduler(double alpha)
    : alpha_(alpha) {
  EXPLORA_EXPECTS(alpha > 0.0 && alpha <= 1.0);
}

EXPLORA_REALTIME void ProportionalFairScheduler::schedule_tti(
    std::span<Ue*> ues, std::uint32_t prb_budget) {
  auto& active = active_scratch_;
  collect_backlogged(ues, active);
  auto& served_bits = served_bits_scratch_;
  // hotpath-ok: scratch retains capacity across TTIs; grows only when the
  // attached-UE count grows (attach/detach, not the TTI loop).
  served_bits.assign(active.size(), 0.0);
  std::uint32_t granted = 0;
  if (!active.empty() && prb_budget > 0) {
    std::uint32_t remaining = prb_budget;
    while (remaining > 0) {
      // Pick the user with the best instantaneous-rate / average ratio.
      double best_metric = -1.0;
      std::size_t best = active.size();
      for (std::size_t i = 0; i < active.size(); ++i) {
        if (!active[i]->has_data()) continue;
        const double inst = active[i]->channel().bits_per_prb();
        const double avg = std::max(active[i]->pf_average(), 1e-3);
        const double metric = inst / avg;
        if (metric > best_metric) {
          best_metric = metric;
          best = i;
        }
      }
      if (best == active.size()) break;  // all drained
      const std::uint64_t sent = serve_one_prb(*active[best]);
      served_bits[best] += static_cast<double>(sent) * 8.0;
      --remaining;
    }
    EXPLORA_ENSURES_MSG(remaining <= prb_budget,
                        "PF served {} PRBs over a budget of {}",
                        prb_budget - remaining, prb_budget);
    granted = prb_budget - remaining;
  }
  record_grants(granted, prb_budget);
  // EWMA update for every tracked user, including the unserved ones (their
  // average decays, raising future priority) — standard PF bookkeeping.
  for (std::size_t i = 0; i < active.size(); ++i) {
    double& avg = active[i]->pf_average();
    avg = (1.0 - alpha_) * avg + alpha_ * served_bits[i];
  }
}

}  // namespace explora::netsim
