#include "netsim/types.hpp"

#include "common/format.hpp"
#include <mutex>
#include <numeric>
#include <stdexcept>

#include "common/contracts.hpp"

namespace explora::netsim {

std::string to_string(Slice s) {
  switch (s) {
    case Slice::kEmbb: return "eMBB";
    case Slice::kMmtc: return "mMTC";
    case Slice::kUrllc: return "URLLC";
  }
  return "?";
}

std::string to_string(SchedulerPolicy p) {
  switch (p) {
    case SchedulerPolicy::kRoundRobin: return "RR";
    case SchedulerPolicy::kWaterfilling: return "WF";
    case SchedulerPolicy::kProportionalFair: return "PF";
  }
  return "?";
}

std::string to_string(Kpi k) {
  switch (k) {
    case Kpi::kTxBitrate: return "tx_bitrate";
    case Kpi::kTxPackets: return "tx_packets";
    case Kpi::kBufferSize: return "DWL_buffer_size";
  }
  return "?";
}

std::string SlicingControl::to_string() const {
  return common::format("([{}, {}, {}], [{}, {}, {}])", prbs[0], prbs[1],
                     prbs[2], static_cast<int>(scheduling[0]),
                     static_cast<int>(scheduling[1]),
                     static_cast<int>(scheduling[2]));
}

bool operator<(const SlicingControl& a, const SlicingControl& b) {
  if (a.prbs != b.prbs) return a.prbs < b.prbs;
  return a.scheduling < b.scheduling;
}

bool is_valid_control(const SlicingControl& control) noexcept {
  const std::uint32_t total =
      std::accumulate(control.prbs.begin(), control.prbs.end(), 0u);
  if (total == 0 || total > kTotalPrbs) return false;
  for (const SchedulerPolicy policy : control.scheduling) {
    if (static_cast<std::size_t>(policy) >= kNumSchedulerPolicies) {
      return false;
    }
  }
  return true;
}

std::size_t SlicingControlHash::operator()(
    const SlicingControl& a) const noexcept {
  std::uint64_t h = 0xcbf29ce484222325ULL;
  auto mix = [&h](std::uint64_t v) {
    h ^= v;
    h *= 0x100000001b3ULL;
  };
  for (auto prb : a.prbs) mix(prb);
  for (auto pol : a.scheduling) mix(static_cast<std::uint64_t>(pol));
  return static_cast<std::size_t>(h);
}

const std::vector<PerSlice<std::uint32_t>>& prb_catalog() {
  static const std::vector<PerSlice<std::uint32_t>> catalog = [] {
    std::vector<PerSlice<std::uint32_t>> entries;
    // eMBB gets the coarse share (it carries the broadband load), mMTC a
    // small share, URLLC the remainder. Steps of 6/6 PRBs keep the action
    // space at a size comparable to ColO-RAN's slicing profiles.
    for (std::uint32_t embb = 6; embb <= 42; embb += 6) {
      for (std::uint32_t mmtc = 3; mmtc <= 27; mmtc += 6) {
        const std::uint32_t used = embb + mmtc;
        if (used + 2 > kTotalPrbs) continue;
        const std::uint32_t urllc = kTotalPrbs - used;
        entries.push_back({embb, mmtc, urllc});
      }
    }
    EXPLORA_ENSURES(!entries.empty());
    for (const auto& e : entries) {
      EXPLORA_ENSURES(std::accumulate(e.begin(), e.end(), 0u) == kTotalPrbs);
    }
    return entries;
  }();
  return catalog;
}

std::size_t prb_catalog_index(const PerSlice<std::uint32_t>& prbs) {
  const auto& catalog = prb_catalog();
  for (std::size_t i = 0; i < catalog.size(); ++i) {
    if (catalog[i] == prbs) return i;
  }
  throw std::out_of_range(common::format(
      "PRB split [{}, {}, {}] is not in the slicing catalogue", prbs[0],
      prbs[1], prbs[2]));
}

}  // namespace explora::netsim
