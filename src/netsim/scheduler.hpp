// Per-slice MAC schedulers: Round-Robin, Waterfilling and Proportional
// Fair. Each scheduler distributes the slice's PRB budget among the slice's
// backlogged UEs for one TTI.
//
// - RR cycles a pointer over backlogged users, ignoring channel state.
// - WF is throughput-greedy: PRBs go to the users with the best channel
//   (the discrete-resource analogue of power waterfilling), draining the
//   strongest links first.
// - PF ranks users by instantaneous-rate / EWMA-served-rate, trading
//   throughput against long-run fairness.
#pragma once

#include <cstdint>
#include <memory>
#include <span>

#include "netsim/types.hpp"
#include "netsim/ue.hpp"

namespace explora::netsim {

/// Strategy interface: allocate `prb_budget` PRBs among `ues` (all from one
/// slice) for the current TTI and serve their buffers.
class Scheduler {
 public:
  virtual ~Scheduler() = default;

  /// Runs one TTI. Implementations must serve at most `prb_budget` PRBs and
  /// only touch UEs with buffered data.
  virtual void schedule_tti(std::span<Ue*> ues, std::uint32_t prb_budget) = 0;

  [[nodiscard]] virtual SchedulerPolicy policy() const noexcept = 0;
};

/// Factory keyed by policy; `pf_alpha` is the PF EWMA smoothing factor.
[[nodiscard]] std::unique_ptr<Scheduler> make_scheduler(
    SchedulerPolicy policy, double pf_alpha = 0.05);

/// Round-robin PRB allocation over backlogged users.
class RoundRobinScheduler final : public Scheduler {
 public:
  void schedule_tti(std::span<Ue*> ues, std::uint32_t prb_budget) override;
  [[nodiscard]] SchedulerPolicy policy() const noexcept override {
    return SchedulerPolicy::kRoundRobin;
  }

 private:
  std::size_t next_ = 0;  ///< rotating start offset for fairness
};

/// Channel-greedy ("waterfilling") allocation: best CQI first.
class WaterfillingScheduler final : public Scheduler {
 public:
  void schedule_tti(std::span<Ue*> ues, std::uint32_t prb_budget) override;
  [[nodiscard]] SchedulerPolicy policy() const noexcept override {
    return SchedulerPolicy::kWaterfilling;
  }
};

/// Proportional-fair allocation with EWMA throughput tracking.
class ProportionalFairScheduler final : public Scheduler {
 public:
  explicit ProportionalFairScheduler(double alpha = 0.05);

  void schedule_tti(std::span<Ue*> ues, std::uint32_t prb_budget) override;
  [[nodiscard]] SchedulerPolicy policy() const noexcept override {
    return SchedulerPolicy::kProportionalFair;
  }

 private:
  double alpha_;
};

}  // namespace explora::netsim
