// Per-slice MAC schedulers: Round-Robin, Waterfilling and Proportional
// Fair. Each scheduler distributes the slice's PRB budget among the slice's
// backlogged UEs for one TTI.
//
// - RR cycles a pointer over backlogged users, ignoring channel state.
// - WF is throughput-greedy: PRBs go to the users with the best channel
//   (the discrete-resource analogue of power waterfilling), draining the
//   strongest links first.
// - PF ranks users by instantaneous-rate / EWMA-served-rate, trading
//   throughput against long-run fairness.
#pragma once

#include <array>
#include <cstdint>
#include <memory>
#include <span>
#include <vector>

#include "common/telemetry.hpp"
#include "netsim/types.hpp"
#include "netsim/ue.hpp"

namespace explora::netsim {

/// Strategy interface: allocate `prb_budget` PRBs among `ues` (all from one
/// slice) for the current TTI and serve their buffers.
class Scheduler {
 public:
  Scheduler();
  /// Flushes any pending grant telemetry so that replacing a scheduler
  /// mid-run (policy change) never drops recorded TTIs.
  virtual ~Scheduler();

  /// Runs one TTI. Implementations must serve at most `prb_budget` PRBs and
  /// only touch UEs with buffered data.
  virtual void schedule_tti(std::span<Ue*> ues, std::uint32_t prb_budget) = 0;

  [[nodiscard]] virtual SchedulerPolicy policy() const noexcept = 0;

  /// Folds the locally-accumulated per-TTI grant telemetry into the bound
  /// registry metrics. Schedulers run on the gNB's simulation thread, so
  /// record_grants accumulates in plain integers (no atomics on the TTI
  /// hot path) and the gNB flushes once per report window.
  void flush_telemetry() noexcept;

 protected:
  /// Telemetry hook: every schedule_tti implementation reports how many of
  /// its budgeted PRBs it actually granted this TTI.
  void record_grants(std::uint32_t granted, std::uint32_t budget) noexcept;

  /// Per-TTI backlogged-UE scratch shared by every policy. Hoisted into a
  /// member so the grant loop never allocates in steady state: the vector
  /// keeps its capacity across TTIs and only grows when UEs attach
  /// (verified by the EXPLORA_REALTIME contract on schedule_tti, see
  /// tools/lint_hotpath.py / DESIGN.md §11).
  std::vector<Ue*> active_scratch_;

 private:
  /// prb_per_tti bucket upper bounds (+1 implicit overflow bucket).
  static constexpr std::size_t kPrbBucketCount = 8;

  // Bound once per scheduler construction against the then-active registry
  // (netsim.scheduler.* namespace).
  telemetry::Counter* tti_runs_;
  telemetry::Counter* prb_granted_;
  telemetry::Counter* prb_unused_;
  telemetry::Histogram* prb_per_tti_;

  // Window-local accumulation, drained by flush_telemetry(). Grants are
  // bounded by the carrier size, so the per-TTI record is one increment of
  // a value-indexed tally; buckets, sum, min and max are all derived from
  // the tally at flush time, off the hot path.
  struct PendingGrants {
    std::uint64_t runs = 0;
    std::uint64_t granted = 0;
    std::uint64_t unused = 0;
    std::array<std::uint64_t, kTotalPrbs + 1> grant_tally{};
  };
  PendingGrants pending_{};
};

/// Factory keyed by policy; `pf_alpha` is the PF EWMA smoothing factor.
[[nodiscard]] std::unique_ptr<Scheduler> make_scheduler(
    SchedulerPolicy policy, double pf_alpha = 0.05);

/// Round-robin PRB allocation over backlogged users.
class RoundRobinScheduler final : public Scheduler {
 public:
  void schedule_tti(std::span<Ue*> ues, std::uint32_t prb_budget) override;
  [[nodiscard]] SchedulerPolicy policy() const noexcept override {
    return SchedulerPolicy::kRoundRobin;
  }

 private:
  std::size_t next_ = 0;  ///< rotating start offset for fairness
};

/// Channel-greedy ("waterfilling") allocation: best CQI first.
class WaterfillingScheduler final : public Scheduler {
 public:
  void schedule_tti(std::span<Ue*> ues, std::uint32_t prb_budget) override;
  [[nodiscard]] SchedulerPolicy policy() const noexcept override {
    return SchedulerPolicy::kWaterfilling;
  }
};

/// Proportional-fair allocation with EWMA throughput tracking.
class ProportionalFairScheduler final : public Scheduler {
 public:
  explicit ProportionalFairScheduler(double alpha = 0.05);

  void schedule_tti(std::span<Ue*> ues, std::uint32_t prb_budget) override;
  [[nodiscard]] SchedulerPolicy policy() const noexcept override {
    return SchedulerPolicy::kProportionalFair;
  }

 private:
  double alpha_;
  /// Per-TTI served-bits tally, one slot per backlogged UE; member scratch
  /// for the same no-steady-state-allocation reason as active_scratch_.
  std::vector<double> served_bits_scratch_;
};

}  // namespace explora::netsim
