// Core domain types for the downlink RAN simulator: slices, schedulers,
// KPIs, and the multi-modal slicing/scheduling control action that the DRL
// agent (and EXPLORA) manipulate.
#pragma once

#include <array>
#include <cstdint>
#include <string>
#include <vector>

namespace explora::netsim {

/// One TTI (transmission time interval) is 1 ms of simulated time.
using Tick = std::int64_t;

/// Network slices, in the paper's fixed order (indices into all per-slice
/// arrays throughout the project).
enum class Slice : std::uint8_t { kEmbb = 0, kMmtc = 1, kUrllc = 2 };

inline constexpr std::size_t kNumSlices = 3;

/// Per-slice MAC scheduling policies selectable by the agent. The numeric
/// values match the paper's encoding (Appendix B): 0 = RR, 1 = WF, 2 = PF.
enum class SchedulerPolicy : std::uint8_t {
  kRoundRobin = 0,
  kWaterfilling = 1,
  kProportionalFair = 2,
};

inline constexpr std::size_t kNumSchedulerPolicies = 3;

/// The K = 3 KPIs monitored over E2 (paper §3.1).
enum class Kpi : std::uint8_t {
  kTxBitrate = 0,     ///< downlink transmission bitrate [Mbit/s]
  kTxPackets = 1,     ///< packets fully transmitted in the report window
  kBufferSize = 2,    ///< downlink RLC buffer occupancy [bytes]
};

inline constexpr std::size_t kNumKpis = 3;

/// Total PRBs of the 10 MHz carrier (50 PRBs at 15 kHz subcarrier spacing).
inline constexpr std::uint32_t kTotalPrbs = 50;

[[nodiscard]] std::string to_string(Slice s);
[[nodiscard]] std::string to_string(SchedulerPolicy p);
[[nodiscard]] std::string to_string(Kpi k);

/// Per-slice array helper.
template <typename T>
using PerSlice = std::array<T, kNumSlices>;

/// The c = 2 multi-modal control action: a RAN slicing policy (PRBs per
/// slice) and a per-slice scheduling policy. This is the unit the DRL xApp
/// emits over E2 and the node identity in EXPLORA's attributed graph.
struct SlicingControl {
  PerSlice<std::uint32_t> prbs{};              ///< PRBs reserved per slice
  PerSlice<SchedulerPolicy> scheduling{};      ///< scheduler per slice

  friend bool operator==(const SlicingControl&,
                         const SlicingControl&) = default;
  /// Renders like the paper's node labels: ([36, 3, 11], [2, 0, 1]).
  [[nodiscard]] std::string to_string() const;
};

/// Strict weak ordering so SlicingControl can key ordered containers.
[[nodiscard]] bool operator<(const SlicingControl& a, const SlicingControl& b);

/// Well-formedness of a control as received over E2: the PRB mask is
/// non-empty (at least one PRB granted somewhere), the per-slice budgets
/// fit in the carrier, and every scheduler id names a known policy. The
/// E2 termination rejects controls failing this instead of applying them;
/// Gnb::apply_control enforces it as a fast-tier contract.
[[nodiscard]] bool is_valid_control(const SlicingControl& control) noexcept;

/// FNV-1a hash over the action fields for unordered containers.
struct SlicingControlHash {
  [[nodiscard]] std::size_t operator()(const SlicingControl& a) const noexcept;
};

/// The catalogue of valid PRB partitions the DRL agent chooses from (the
/// first mode of the action). Mirrors ColO-RAN's discrete slicing profiles:
/// every entry sums to kTotalPrbs and reserves at least a minimal share per
/// slice. Deterministic and sorted, so an index into this catalogue is a
/// stable action encoding.
[[nodiscard]] const std::vector<PerSlice<std::uint32_t>>& prb_catalog();

/// Index of `prbs` in prb_catalog(); throws std::out_of_range when absent.
[[nodiscard]] std::size_t prb_catalog_index(
    const PerSlice<std::uint32_t>& prbs);

}  // namespace explora::netsim
