#include "netsim/traffic.hpp"

#include "common/contracts.hpp"

namespace explora::netsim {

namespace {

constexpr double kTtisPerSecond = 1000.0;

}  // namespace

CbrSource::CbrSource(double rate_bps, std::uint32_t packet_bytes)
    : rate_bps_(rate_bps), packet_bytes_(packet_bytes) {
  EXPLORA_EXPECTS(rate_bps > 0.0);
  EXPLORA_EXPECTS(packet_bytes > 0);
}

ArrivalBatch CbrSource::arrivals(Tick /*now*/) {
  carry_bytes_ += rate_bps_ / 8.0 / kTtisPerSecond;
  ArrivalBatch batch;
  while (carry_bytes_ >= static_cast<double>(packet_bytes_)) {
    carry_bytes_ -= static_cast<double>(packet_bytes_);
    batch.bytes += packet_bytes_;
    ++batch.packets;
  }
  return batch;
}

PoissonSource::PoissonSource(double rate_bps, std::uint32_t packet_bytes,
                             common::Rng rng)
    : rate_bps_(rate_bps),
      packet_bytes_(packet_bytes),
      packets_per_tti_(rate_bps / 8.0 / static_cast<double>(packet_bytes) /
                       kTtisPerSecond),
      rng_(rng) {
  EXPLORA_EXPECTS(rate_bps > 0.0);
  EXPLORA_EXPECTS(packet_bytes > 0);
}

ArrivalBatch PoissonSource::arrivals(Tick /*now*/) {
  const std::uint32_t packets = rng_.poisson(packets_per_tti_);
  return ArrivalBatch{
      .bytes = static_cast<std::uint64_t>(packets) * packet_bytes_,
      .packets = packets,
  };
}

std::string to_string(TrafficProfile profile) {
  return profile == TrafficProfile::kTrf1 ? "TRF1" : "TRF2";
}

std::unique_ptr<TrafficSource> make_traffic_source(TrafficProfile profile,
                                                   Slice slice,
                                                   common::Rng rng) {
  // Rates from §6.1; packet sizes: 1500 B broadband MTU for eMBB, small
  // 125 B datagrams for the machine-type and low-latency slices.
  switch (slice) {
    case Slice::kEmbb: {
      const double rate = profile == TrafficProfile::kTrf1 ? 4e6 : 2e6;
      return std::make_unique<CbrSource>(rate, 1500);
    }
    case Slice::kMmtc: {
      const double rate = profile == TrafficProfile::kTrf1 ? 44.6e3 : 133.9e3;
      return std::make_unique<PoissonSource>(rate, 125, rng);
    }
    case Slice::kUrllc: {
      const double rate = profile == TrafficProfile::kTrf1 ? 89.3e3 : 178.6e3;
      return std::make_unique<PoissonSource>(rate, 125, rng);
    }
  }
  EXPLORA_ASSERT(false);
  return nullptr;
}

}  // namespace explora::netsim
