#include "netsim/scenario.hpp"

#include <algorithm>

#include "common/format.hpp"

#include "common/contracts.hpp"

namespace explora::netsim {

std::string ScenarioConfig::name() const {
  return common::format("{}-{}u(e{}/m{}/u{})-seed{}", to_string(profile),
                     total_users(), users_per_slice[0], users_per_slice[1],
                     users_per_slice[2], seed);
}

PerSlice<std::uint32_t> users_for_count(std::uint32_t total,
                                        std::optional<Slice> single_user_slice) {
  switch (total) {
    case 6: return {2, 2, 2};
    case 5: return {2, 1, 2};
    case 4: return {1, 1, 2};
    case 3: return {1, 1, 1};
    case 2: return {1, 0, 1};
    case 1: {
      EXPLORA_EXPECTS(single_user_slice.has_value());
      PerSlice<std::uint32_t> users{0, 0, 0};
      users[static_cast<std::size_t>(*single_user_slice)] = 1;
      return users;
    }
    default:
      break;
  }
  EXPLORA_EXPECTS(false && "user counts follow the paper's Table 3 (1..6)");
  return {};
}

std::unique_ptr<Gnb> make_gnb(const ScenarioConfig& config) {
  EXPLORA_EXPECTS(config.total_users() > 0);
  EXPLORA_EXPECTS(config.max_distance_m > config.min_distance_m);

  common::Rng master(config.seed);
  common::Rng placement = master.fork("placement");

  std::vector<std::unique_ptr<Ue>> ues;
  std::uint32_t next_id = 0;
  const ChannelConfig channel_config{};
  for (std::size_t s = 0; s < kNumSlices; ++s) {
    const auto slice = static_cast<Slice>(s);
    for (std::uint32_t u = 0; u < config.users_per_slice[s]; ++u) {
      const double distance =
          placement.uniform(config.min_distance_m, config.max_distance_m);
      UeChannel channel(distance, channel_config,
                        master.fork(common::format("chan-{}", next_id)));
      if (config.mobility_speed_mps > 0.0) {
        MobilityConfig mobility;
        mobility.speed_mps = config.mobility_speed_mps;
        mobility.min_distance_m = std::max(50.0, config.min_distance_m / 2.0);
        mobility.max_distance_m = config.max_distance_m * 1.5;
        channel.set_mobility(mobility);
      }
      auto traffic = make_traffic_source(
          config.profile, slice, master.fork(common::format("trf-{}", next_id)));
      ues.push_back(std::make_unique<Ue>(next_id, slice, std::move(channel),
                                         std::move(traffic)));
      ++next_id;
    }
  }
  return std::make_unique<Gnb>(std::move(ues), config.gnb);
}

}  // namespace explora::netsim
