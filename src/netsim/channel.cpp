#include "netsim/channel.hpp"

#include <algorithm>
#include <array>
#include <cmath>

#include "common/contracts.hpp"
#include "netsim/types.hpp"

namespace explora::netsim {

namespace {

// 36.213 Table 7.2.3-1 spectral efficiencies, CQI 1..15.
constexpr std::array<double, 16> kCqiEfficiency = {
    0.0,    0.1523, 0.2344, 0.3770, 0.6016, 0.8770, 1.1758, 1.4766,
    1.9141, 2.4063, 2.7305, 3.3223, 3.9023, 4.5234, 5.1152, 5.5547};

// Approximate SINR thresholds [dB] above which each CQI is selected
// (10% BLER operating points).
constexpr std::array<double, 16> kCqiSinrThresholdDb = {
    -100.0, -6.7, -4.7, -2.3, 0.2, 2.4, 4.3, 5.9,
    8.1,    10.3, 11.7, 14.1, 16.3, 18.7, 21.0, 22.7};

constexpr double kSubcarriersPerPrb = 12.0;
constexpr double kSymbolsPerTti = 14.0;
constexpr double kOverheadFactor = 0.75;  // PDCCH + DMRS overhead

}  // namespace

// Largest transport-block size one PRB can carry in one TTI: CQI 15
// efficiency over 12 subcarriers x 14 symbols at 75% usable overhead.
constexpr std::uint32_t kMaxBytesPerPrb = 87;

std::uint32_t sinr_to_cqi(double sinr_db) noexcept {
  std::uint32_t cqi = 1;
  for (std::uint32_t i = 15; i >= 1; --i) {
    if (sinr_db >= kCqiSinrThresholdDb[i]) {
      cqi = i;
      break;
    }
  }
  EXPLORA_ENSURES(cqi >= 1 && cqi <= 15);
  return cqi;
}

double cqi_spectral_efficiency(std::uint32_t cqi) {
  EXPLORA_EXPECTS_MSG(cqi <= 15, "CQI {} outside the 4-bit table range [0, 15]",
                      cqi);
  // Clamp as defensive fallback for EXPLORA_CHECK_LEVEL=off builds.
  return kCqiEfficiency[std::min(cqi, 15u)];
}

std::uint32_t cqi_bytes_per_prb(std::uint32_t cqi) {
  const double bits = cqi_spectral_efficiency(cqi) * kSubcarriersPerPrb *
                      kSymbolsPerTti * kOverheadFactor;
  const auto bytes = static_cast<std::uint32_t>(bits / 8.0);
  EXPLORA_ENSURES_MSG(bytes <= kMaxBytesPerPrb,
                      "TBS {} bytes/PRB exceeds the CQI-15 ceiling of {}",
                      bytes, kMaxBytesPerPrb);
  return bytes;
}

UeChannel::UeChannel(double distance_m, const ChannelConfig& config,
                     common::Rng rng)
    : distance_m_(distance_m), config_(config), rng_(rng) {
  EXPLORA_EXPECTS(distance_m > 1.0);
  set_distance(distance_m);
  if (config_.fading_enabled) {
    // Warm-start shadowing from its stationary distribution.
    shadowing_db_ = rng_.normal(0.0, config_.shadowing_sigma_db);
    fading_gain_ = rng_.exponential(1.0);
  }
  refresh_sinr();
}

void UeChannel::set_distance(double distance_m) {
  EXPLORA_EXPECTS(distance_m > 1.0);
  distance_m_ = distance_m;
  // Log-distance path loss (3GPP macro): 128.1 + 37.6 log10(d/km).
  const double pl_db = 128.1 + 37.6 * std::log10(distance_m_ / 1000.0);
  // Noise over one PRB (180 kHz) plus receiver noise figure.
  const double noise_dbm =
      -174.0 + 10.0 * std::log10(180e3) + config_.noise_figure_db;
  // Power is split evenly across the carrier's PRBs.
  const double tx_per_prb_dbm =
      config_.tx_power_dbm - 10.0 * std::log10(static_cast<double>(kTotalPrbs));
  mean_snr_db_ = tx_per_prb_dbm - pl_db - noise_dbm;
  refresh_sinr();
}

void UeChannel::set_mobility(const MobilityConfig& mobility) {
  EXPLORA_EXPECTS(mobility.speed_mps >= 0.0);
  EXPLORA_EXPECTS(mobility.max_distance_m > mobility.min_distance_m);
  EXPLORA_EXPECTS(mobility.min_distance_m > 1.0);
  mobility_ = mobility;
}

void UeChannel::advance() noexcept {
  if (mobility_.speed_mps > 0.0 && ++ttis_since_move_ >= 1000) {
    // One mobility step per simulated second.
    ttis_since_move_ = 0;
    double next = distance_m_ + rng_.normal(0.0, mobility_.speed_mps);
    if (next < mobility_.min_distance_m) {
      next = 2.0 * mobility_.min_distance_m - next;
    }
    if (next > mobility_.max_distance_m) {
      next = 2.0 * mobility_.max_distance_m - next;
    }
    set_distance(std::clamp(next, mobility_.min_distance_m,
                            mobility_.max_distance_m));
  }
  if (!config_.fading_enabled) return;
  // AR(1) shadowing: rho-correlated Gaussian with stationary sigma.
  const double innovation_sigma =
      config_.shadowing_sigma_db *
      std::sqrt(1.0 - config_.shadowing_rho * config_.shadowing_rho);
  shadowing_db_ = config_.shadowing_rho * shadowing_db_ +
                  rng_.normal(0.0, innovation_sigma);
  if (++ttis_into_block_ >= config_.fading_block_ttis) {
    ttis_into_block_ = 0;
    fading_gain_ = rng_.exponential(1.0);  // Rayleigh power gain
  }
  refresh_sinr();
}

void UeChannel::refresh_sinr() noexcept {
  const double fading_db =
      10.0 * std::log10(std::max(fading_gain_, 1e-6));
  sinr_db_ = mean_snr_db_ + shadowing_db_ + fading_db;
}

std::uint32_t UeChannel::cqi() const noexcept { return sinr_to_cqi(sinr_db_); }

std::uint32_t UeChannel::bytes_per_prb() const noexcept {
  return cqi_bytes_per_prb(cqi());
}

double UeChannel::bits_per_prb() const noexcept {
  return static_cast<double>(bytes_per_prb()) * 8.0;
}

}  // namespace explora::netsim
