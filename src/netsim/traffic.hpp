// Downlink traffic sources replacing the paper's MGEN generator: constant
// bitrate (eMBB) and Poisson packet arrivals (mMTC / URLLC), with the exact
// rates of the paper's TRF1 and TRF2 profiles.
#pragma once

#include <cstdint>
#include <memory>

#include "common/rng.hpp"
#include "netsim/types.hpp"

namespace explora::netsim {

/// Bytes arriving for one UE in one TTI.
struct ArrivalBatch {
  std::uint64_t bytes = 0;
  std::uint32_t packets = 0;
};

/// Abstract downlink packet source, pulled once per TTI.
class TrafficSource {
 public:
  virtual ~TrafficSource() = default;
  /// Packets/bytes arriving during the TTI starting at `now`.
  [[nodiscard]] virtual ArrivalBatch arrivals(Tick now) = 0;
  /// Nominal offered load in bits per second (for reporting).
  [[nodiscard]] virtual double offered_bps() const noexcept = 0;
};

/// Constant-bitrate source emitting fixed-size packets at a fixed cadence.
class CbrSource final : public TrafficSource {
 public:
  /// @param rate_bps target bitrate (> 0).
  /// @param packet_bytes size of each packet (> 0).
  CbrSource(double rate_bps, std::uint32_t packet_bytes);

  [[nodiscard]] ArrivalBatch arrivals(Tick now) override;
  [[nodiscard]] double offered_bps() const noexcept override {
    return rate_bps_;
  }

 private:
  double rate_bps_;
  std::uint32_t packet_bytes_;
  double carry_bytes_ = 0.0;  ///< fractional accumulation between TTIs
};

/// Poisson packet-arrival source (memoryless inter-arrivals).
class PoissonSource final : public TrafficSource {
 public:
  /// @param rate_bps average offered bitrate (> 0).
  /// @param packet_bytes size of each packet (> 0).
  /// @param rng dedicated arrival stream.
  PoissonSource(double rate_bps, std::uint32_t packet_bytes, common::Rng rng);

  [[nodiscard]] ArrivalBatch arrivals(Tick now) override;
  [[nodiscard]] double offered_bps() const noexcept override {
    return rate_bps_;
  }

 private:
  double rate_bps_;
  std::uint32_t packet_bytes_;
  double packets_per_tti_;
  common::Rng rng_;
};

/// The paper's traffic profiles (§6.1).
enum class TrafficProfile : std::uint8_t {
  kTrf1 = 0,  ///< 4 Mbit/s CBR eMBB; 44.6 / 89.3 kbit/s Poisson mMTC/URLLC
  kTrf2 = 1,  ///< 2 Mbit/s CBR eMBB; 133.9 / 178.6 kbit/s Poisson mMTC/URLLC
};

[[nodiscard]] std::string to_string(TrafficProfile profile);

/// Builds the per-slice source prescribed by `profile` for one UE.
[[nodiscard]] std::unique_ptr<TrafficSource> make_traffic_source(
    TrafficProfile profile, Slice slice, common::Rng rng);

}  // namespace explora::netsim
