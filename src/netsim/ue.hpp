// User equipment: a downlink RLC-style byte queue fed by a traffic source
// and drained by the slice scheduler, plus the per-window KPI counters the
// E2 agent reports (tx_bitrate, tx_packets, DWL_buffer_size).
#pragma once

#include <cstdint>
#include <deque>
#include <memory>

#include "netsim/channel.hpp"
#include "netsim/traffic.hpp"
#include "netsim/types.hpp"

namespace explora::netsim {

/// Per-UE KPI counters accumulated over one E2 report window.
struct UeWindowCounters {
  std::uint64_t tx_bytes = 0;      ///< bytes served in the window
  std::uint32_t tx_packets = 0;    ///< packets fully drained in the window
  std::uint64_t dropped_bytes = 0; ///< arrivals discarded on buffer overflow
};

/// One downlink user attached to a slice.
class Ue {
 public:
  /// @param id unique UE identifier within the gNB.
  /// @param slice slice membership.
  /// @param channel time-varying channel for this UE.
  /// @param traffic downlink source feeding the buffer (non-null).
  /// @param buffer_capacity_bytes RLC buffer cap; excess arrivals drop.
  Ue(std::uint32_t id, Slice slice, UeChannel channel,
     std::unique_ptr<TrafficSource> traffic,
     std::uint64_t buffer_capacity_bytes = 2'000'000);

  [[nodiscard]] std::uint32_t id() const noexcept { return id_; }
  [[nodiscard]] Slice slice() const noexcept { return slice_; }
  [[nodiscard]] UeChannel& channel() noexcept { return channel_; }
  [[nodiscard]] const UeChannel& channel() const noexcept { return channel_; }

  /// Pulls this TTI's arrivals into the buffer and advances the channel.
  void begin_tti(Tick now);

  /// Serves up to `bytes` from the head of the buffer; returns bytes
  /// actually transmitted and updates window counters.
  std::uint64_t serve(std::uint64_t bytes);

  [[nodiscard]] std::uint64_t buffer_bytes() const noexcept {
    return buffer_bytes_;
  }
  [[nodiscard]] bool has_data() const noexcept { return buffer_bytes_ > 0; }

  /// Snapshots and resets the window counters (called at each E2 report).
  [[nodiscard]] UeWindowCounters harvest_window() noexcept;

  /// Average served throughput tracker used by the PF scheduler [bits/TTI].
  [[nodiscard]] double& pf_average() noexcept { return pf_average_; }

 private:
  std::uint32_t id_;
  Slice slice_;
  UeChannel channel_;
  std::unique_ptr<TrafficSource> traffic_;
  std::uint64_t buffer_capacity_;

  std::deque<std::uint32_t> packet_queue_;   ///< per-packet remaining bytes
  std::uint64_t buffer_bytes_ = 0;
  UeWindowCounters window_{};
  double pf_average_ = 1.0;
};

}  // namespace explora::netsim
