#include "netsim/gnb.hpp"

#include <numeric>

#include "common/analysis_annotations.hpp"
#include "common/contracts.hpp"

namespace explora::netsim {

Gnb::Gnb(std::vector<std::unique_ptr<Ue>> ues, GnbConfig config)
    : ues_(std::move(ues)), config_(config) {
  EXPLORA_EXPECTS(!ues_.empty());
  EXPLORA_EXPECTS(config_.report_period_ttis > 0);
  telemetry::Scope scope("netsim.gnb");
  telemetry_ = &scope.registry();
  ttis_ = &scope.counter("ttis");
  report_windows_ = &scope.counter("report_windows");
  controls_applied_ = &scope.counter("controls_applied");
  static constexpr std::int64_t kCqiBounds[] = {3, 6, 9, 12, 15};
  cqi_ = &scope.histogram("cqi", kCqiBounds);
  // 87 bytes/PRB is the CQI-15 ceiling enforced in channel.cpp.
  static constexpr std::int64_t kTbsBounds[] = {10, 20, 40, 60, 87};
  tbs_bytes_per_prb_ = &scope.histogram("tbs_bytes_per_prb", kTbsBounds);
  static constexpr std::int64_t kBufferBounds[] = {0,     1000,   4000,
                                                   16000, 64000, 256000};
  buffer_bytes_ = &scope.histogram("buffer_bytes", kBufferBounds);
  cqi_local_ = telemetry::LocalHistogram(cqi_);
  tbs_local_ = telemetry::LocalHistogram(tbs_bytes_per_prb_);
  buffer_local_ = telemetry::LocalHistogram(buffer_bytes_);
  rebuild_slice_index();
  // Default control: even-ish split, round robin everywhere.
  SlicingControl initial;
  initial.prbs = {18, 15, 17};
  initial.scheduling = {SchedulerPolicy::kRoundRobin,
                        SchedulerPolicy::kRoundRobin,
                        SchedulerPolicy::kRoundRobin};
  apply_control(initial);
}

Gnb::~Gnb() { flush_telemetry(); }

void Gnb::flush_telemetry() noexcept {
  if constexpr (!telemetry::kCompiledIn) return;
  // Schedulers also flush from their own destructors, so a mid-run policy
  // swap in apply_control never loses the replaced scheduler's window.
  for (auto& scheduler : schedulers_) {
    if (scheduler != nullptr) scheduler->flush_telemetry();
  }
  cqi_local_.flush();
  tbs_local_.flush();
  buffer_local_.flush();
  if (pending_ttis_ != 0) {
    ttis_->add(pending_ttis_);
    pending_ttis_ = 0;
  }
  if (pending_windows_ != 0) {
    report_windows_->add(pending_windows_);
    pending_windows_ = 0;
  }
  windows_since_flush_ = 0;
}

void Gnb::rebuild_slice_index() {
  for (auto& list : slice_ues_) list.clear();
  for (const auto& ue : ues_) {
    slice_ues_[static_cast<std::size_t>(ue->slice())].push_back(ue.get());
  }
}

void Gnb::apply_control(const SlicingControl& control) {
  // PRB disjointness: per-slice budgets partition the carrier, so their sum
  // must fit in it (no PRB can be granted to two slices). A zero budget is
  // legal — starving a slice is a modeled failure scenario, not a bug.
  const std::uint32_t total =
      std::accumulate(control.prbs.begin(), control.prbs.end(), 0u);
  EXPLORA_EXPECTS_MSG(total <= kTotalPrbs,
                      "slice PRB budgets sum to {} but the carrier has {}",
                      total, kTotalPrbs);
  // Malformed-control gate (fast tier, stays on in production): an empty
  // PRB mask or an out-of-range scheduler id must be rejected upstream
  // (E2Termination::on_message); reaching here with one is a bug. Checked
  // after the oversubscription contract so that violation keeps its more
  // specific message.
  EXPLORA_EXPECTS_MSG(is_valid_control(control),
                      "malformed control {} reached the gNB",
                      control.to_string());
  for (std::size_t s = 0; s < kNumSlices; ++s) {
    if (schedulers_[s] == nullptr ||
        schedulers_[s]->policy() != control.scheduling[s]) {
      schedulers_[s] = make_scheduler(control.scheduling[s], config_.pf_alpha);
    }
  }
  control_ = control;
  controls_applied_->add(1);
}

EXPLORA_REALTIME void Gnb::run_tti() {
  for (auto& ue : ues_) ue->begin_tti(now_);
  for (std::size_t s = 0; s < kNumSlices; ++s) {
    auto& ues = slice_ues_[s];
    if (ues.empty()) continue;
    schedulers_[s]->schedule_tti(std::span<Ue*>(ues), control_.prbs[s]);
  }
  ++now_;
  // Counted locally and folded into the ttis counter once per report
  // window; gated like Counter::add so disabled stretches stay unrecorded.
  if (telemetry::kCompiledIn && telemetry::enabled()) ++pending_ttis_;
  // Advance the registry's tick clock: spans anywhere in the closed loop
  // measure durations against the gNB's simulated time, never wall-clock.
  telemetry_->set_now(now_);
}

KpiReport Gnb::run_report_window() {
  for (Tick i = 0; i < config_.report_period_ttis; ++i) run_tti();

  KpiReport report;
  report.window_end = now_;
  const double window_seconds =
      static_cast<double>(config_.report_period_ttis) / 1000.0;
  for (std::size_t s = 0; s < kNumSlices; ++s) {
    auto& slice_report = report.slices[s];
    for (Ue* ue : slice_ues_[s]) {
      const UeWindowCounters counters = ue->harvest_window();
      slice_report.tx_bitrate_mbps.push_back(
          static_cast<double>(counters.tx_bytes) * 8.0 / window_seconds /
          1e6);
      slice_report.tx_packets.push_back(
          static_cast<double>(counters.tx_packets));
      slice_report.buffer_bytes.push_back(
          static_cast<double>(ue->buffer_bytes()));
      cqi_local_.observe(static_cast<std::int64_t>(ue->channel().cqi()));
      tbs_local_.observe(
          static_cast<std::int64_t>(ue->channel().bytes_per_prb()));
      buffer_local_.observe(static_cast<std::int64_t>(ue->buffer_bytes()));
    }
  }
  if (telemetry::kCompiledIn && telemetry::enabled()) ++pending_windows_;
  // Fold the window-local accumulators into the registry on a fixed
  // deterministic cadence; the destructor drains whatever remains.
  if (++windows_since_flush_ >= kTelemetryFlushWindows) flush_telemetry();
  return report;
}

bool Gnb::detach_one_ue(Slice slice) {
  const auto slice_index = static_cast<std::size_t>(slice);
  if (slice_ues_[slice_index].empty()) return false;
  const Ue* victim = slice_ues_[slice_index].back();
  for (auto it = ues_.begin(); it != ues_.end(); ++it) {
    if (it->get() == victim) {
      ues_.erase(it);
      break;
    }
  }
  rebuild_slice_index();
  return true;
}

}  // namespace explora::netsim
