#include "netsim/gnb.hpp"

#include <numeric>

#include "common/contracts.hpp"

namespace explora::netsim {

Gnb::Gnb(std::vector<std::unique_ptr<Ue>> ues, GnbConfig config)
    : ues_(std::move(ues)), config_(config) {
  EXPLORA_EXPECTS(!ues_.empty());
  EXPLORA_EXPECTS(config_.report_period_ttis > 0);
  rebuild_slice_index();
  // Default control: even-ish split, round robin everywhere.
  SlicingControl initial;
  initial.prbs = {18, 15, 17};
  initial.scheduling = {SchedulerPolicy::kRoundRobin,
                        SchedulerPolicy::kRoundRobin,
                        SchedulerPolicy::kRoundRobin};
  apply_control(initial);
}

void Gnb::rebuild_slice_index() {
  for (auto& list : slice_ues_) list.clear();
  for (const auto& ue : ues_) {
    slice_ues_[static_cast<std::size_t>(ue->slice())].push_back(ue.get());
  }
}

void Gnb::apply_control(const SlicingControl& control) {
  // PRB disjointness: per-slice budgets partition the carrier, so their sum
  // must fit in it (no PRB can be granted to two slices). A zero budget is
  // legal — starving a slice is a modeled failure scenario, not a bug.
  const std::uint32_t total =
      std::accumulate(control.prbs.begin(), control.prbs.end(), 0u);
  EXPLORA_EXPECTS_MSG(total <= kTotalPrbs,
                      "slice PRB budgets sum to {} but the carrier has {}",
                      total, kTotalPrbs);
  // Malformed-control gate (fast tier, stays on in production): an empty
  // PRB mask or an out-of-range scheduler id must be rejected upstream
  // (E2Termination::on_message); reaching here with one is a bug. Checked
  // after the oversubscription contract so that violation keeps its more
  // specific message.
  EXPLORA_EXPECTS_MSG(is_valid_control(control),
                      "malformed control {} reached the gNB",
                      control.to_string());
  for (std::size_t s = 0; s < kNumSlices; ++s) {
    if (schedulers_[s] == nullptr ||
        schedulers_[s]->policy() != control.scheduling[s]) {
      schedulers_[s] = make_scheduler(control.scheduling[s], config_.pf_alpha);
    }
  }
  control_ = control;
}

void Gnb::run_tti() {
  for (auto& ue : ues_) ue->begin_tti(now_);
  for (std::size_t s = 0; s < kNumSlices; ++s) {
    auto& ues = slice_ues_[s];
    if (ues.empty()) continue;
    schedulers_[s]->schedule_tti(std::span<Ue*>(ues), control_.prbs[s]);
  }
  ++now_;
}

KpiReport Gnb::run_report_window() {
  for (Tick i = 0; i < config_.report_period_ttis; ++i) run_tti();

  KpiReport report;
  report.window_end = now_;
  const double window_seconds =
      static_cast<double>(config_.report_period_ttis) / 1000.0;
  for (std::size_t s = 0; s < kNumSlices; ++s) {
    auto& slice_report = report.slices[s];
    for (Ue* ue : slice_ues_[s]) {
      const UeWindowCounters counters = ue->harvest_window();
      slice_report.tx_bitrate_mbps.push_back(
          static_cast<double>(counters.tx_bytes) * 8.0 / window_seconds /
          1e6);
      slice_report.tx_packets.push_back(
          static_cast<double>(counters.tx_packets));
      slice_report.buffer_bytes.push_back(
          static_cast<double>(ue->buffer_bytes()));
    }
  }
  return report;
}

bool Gnb::detach_one_ue(Slice slice) {
  const auto slice_index = static_cast<std::size_t>(slice);
  if (slice_ues_[slice_index].empty()) return false;
  const Ue* victim = slice_ues_[slice_index].back();
  for (auto it = ues_.begin(); it != ues_.end(); ++it) {
    if (it->get() == victim) {
      ues_.erase(it);
      break;
    }
  }
  rebuild_slice_index();
  return true;
}

}  // namespace explora::netsim
