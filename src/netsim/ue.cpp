#include "netsim/ue.hpp"

#include <algorithm>

#include "common/analysis_annotations.hpp"
#include "common/contracts.hpp"

namespace explora::netsim {

Ue::Ue(std::uint32_t id, Slice slice, UeChannel channel,
       std::unique_ptr<TrafficSource> traffic,
       std::uint64_t buffer_capacity_bytes)
    : id_(id),
      slice_(slice),
      channel_(std::move(channel)),
      traffic_(std::move(traffic)),
      buffer_capacity_(buffer_capacity_bytes) {
  EXPLORA_EXPECTS(traffic_ != nullptr);
  EXPLORA_EXPECTS(buffer_capacity_bytes > 0);
}

EXPLORA_REALTIME void Ue::begin_tti(Tick now) {
  channel_.advance();
  const ArrivalBatch batch = traffic_->arrivals(now);
  if (batch.packets == 0) return;
  const std::uint32_t packet_size =
      static_cast<std::uint32_t>(batch.bytes / batch.packets);
  for (std::uint32_t i = 0; i < batch.packets; ++i) {
    if (buffer_bytes_ + packet_size > buffer_capacity_) {
      window_.dropped_bytes += packet_size;
      continue;
    }
    // hotpath-ok: deque block allocation is amortized and bounded by the
    // UE buffer cap; serve() recycles blocks so steady state stays flat.
    packet_queue_.push_back(packet_size);
    buffer_bytes_ += packet_size;
  }
}

EXPLORA_REALTIME std::uint64_t Ue::serve(std::uint64_t bytes) {
  std::uint64_t served = 0;
  while (bytes > 0 && !packet_queue_.empty()) {
    std::uint32_t& head = packet_queue_.front();
    const std::uint64_t take = std::min<std::uint64_t>(bytes, head);
    head -= static_cast<std::uint32_t>(take);
    bytes -= take;
    served += take;
    if (head == 0) {
      packet_queue_.pop_front();
      ++window_.tx_packets;
    }
  }
  EXPLORA_ASSERT(served <= buffer_bytes_);
  buffer_bytes_ -= served;
  window_.tx_bytes += served;
  return served;
}

UeWindowCounters Ue::harvest_window() noexcept {
  const UeWindowCounters out = window_;
  window_ = UeWindowCounters{};
  return out;
}

}  // namespace explora::netsim
