// The gNB MAC model: owns the UEs, enforces the current slicing/scheduling
// control, advances TTIs and emits KPI reports. This is the "RAN node"
// endpoint of the E2 interface in the O-RAN layer.
#pragma once

#include <cstdint>
#include <memory>
#include <vector>

#include "netsim/kpi.hpp"
#include "netsim/scheduler.hpp"
#include "netsim/types.hpp"
#include "netsim/ue.hpp"

namespace explora::netsim {

/// gNB runtime parameters.
struct GnbConfig {
  Tick report_period_ttis = 25;  ///< E2 KPM indication cadence
  double pf_alpha = 0.05;        ///< PF scheduler EWMA factor
};

class Gnb {
 public:
  /// @param ues the attached users (takes ownership; at least one).
  /// @param config runtime parameters.
  Gnb(std::vector<std::unique_ptr<Ue>> ues, GnbConfig config = {});

  /// Flushes any window-local telemetry still pending (see
  /// flush_telemetry) so end-of-run snapshots are always complete.
  ~Gnb();

  /// Applies a new slicing + scheduling control. PRBs must not exceed the
  /// carrier total; scheduler state is retained when the policy for a slice
  /// is unchanged (so PF averages survive pure-slicing updates).
  void apply_control(const SlicingControl& control);

  [[nodiscard]] const SlicingControl& control() const noexcept {
    return control_;
  }

  /// Advances one TTI: traffic arrivals, channel evolution, per-slice
  /// scheduling under the current control.
  void run_tti();

  /// Runs exactly one report window (config.report_period_ttis TTIs) and
  /// returns the harvested KPI report.
  [[nodiscard]] KpiReport run_report_window();

  [[nodiscard]] Tick now() const noexcept { return now_; }
  [[nodiscard]] std::size_t num_ues() const noexcept { return ues_.size(); }
  /// UEs of one slice (slice-local ordering is construction order).
  [[nodiscard]] const std::vector<Ue*>& slice_ues(Slice slice) const {
    return slice_ues_[static_cast<std::size_t>(slice)];
  }

  /// Detaches the last-attached UE of `slice` (used by the action-steering
  /// experiments where the user count drops mid-run). Returns false when
  /// the slice has no users.
  bool detach_one_ue(Slice slice);

 private:
  std::vector<std::unique_ptr<Ue>> ues_;
  PerSlice<std::vector<Ue*>> slice_ues_{};
  PerSlice<std::unique_ptr<Scheduler>> schedulers_{};
  SlicingControl control_{};
  GnbConfig config_;
  Tick now_ = 0;

  // Telemetry (netsim.gnb.*), bound at construction. The gNB owns simulated
  // time, so it also drives the registry's tick clock for ScopedSpan users.
  // The closed loop records into plain window-local accumulators and folds
  // them into the shared registry atomics only every kTelemetryFlushWindows
  // report windows (plus on destruction), keeping the TTI loop — and the
  // window harvest — free of atomic read-modify-writes.
  static constexpr Tick kTelemetryFlushWindows = 8;
  telemetry::Registry* telemetry_;
  telemetry::Counter* ttis_;
  telemetry::Counter* report_windows_;
  telemetry::Counter* controls_applied_;
  telemetry::Histogram* cqi_;
  telemetry::Histogram* tbs_bytes_per_prb_;
  telemetry::Histogram* buffer_bytes_;
  telemetry::LocalHistogram cqi_local_;
  telemetry::LocalHistogram tbs_local_;
  telemetry::LocalHistogram buffer_local_;
  std::uint64_t pending_ttis_ = 0;
  std::uint64_t pending_windows_ = 0;
  Tick windows_since_flush_ = 0;

  void rebuild_slice_index();
  void flush_telemetry() noexcept;
};

}  // namespace explora::netsim
