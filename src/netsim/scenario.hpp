// Scenario builder reproducing the paper's experiment configurations
// (Table 3): traffic profile, user counts and their slice assignment, and
// a deterministic seed.
#pragma once

#include <cstdint>
#include <memory>
#include <optional>
#include <string>

#include "netsim/gnb.hpp"
#include "netsim/traffic.hpp"

namespace explora::netsim {

/// One experiment configuration C (Table 3, Appendix A).
struct ScenarioConfig {
  TrafficProfile profile = TrafficProfile::kTrf1;
  PerSlice<std::uint32_t> users_per_slice{2, 2, 2};
  std::uint64_t seed = 42;
  GnbConfig gnb{};
  /// UE random-walk speed [m/s]; 0 keeps the paper's static deployment.
  double mobility_speed_mps = 0.0;
  /// UE placement band around the BS [meters]. Cell-edge-heavy macro
  /// distances keep the eMBB slice capacity-limited (CQI mostly 3-10), so
  /// the slicing/scheduling decision actually constrains the served
  /// bitrate — the regime the paper's contended Colosseum cell operates in.
  double min_distance_m = 1000.0;
  double max_distance_m = 2200.0;

  [[nodiscard]] std::uint32_t total_users() const {
    return users_per_slice[0] + users_per_slice[1] + users_per_slice[2];
  }
  [[nodiscard]] std::string name() const;
};

/// The paper's user-to-slice assignment for a total user count (Appendix A):
/// 6 -> 2/2/2, 5 -> 2/1/2, 4 -> 1/1/2, 3 -> 1/1/1, 2 -> 1/0/1.
/// 1-user experiments put the single user in `single_user_slice`.
[[nodiscard]] PerSlice<std::uint32_t> users_for_count(
    std::uint32_t total, std::optional<Slice> single_user_slice = {});

/// Instantiates the gNB (UEs with channels, traffic and buffers) described
/// by `config`.
[[nodiscard]] std::unique_ptr<Gnb> make_gnb(const ScenarioConfig& config);

}  // namespace explora::netsim
