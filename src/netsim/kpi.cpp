#include "netsim/kpi.hpp"

#include <numeric>

namespace explora::netsim {

double SliceKpiReport::aggregate(Kpi kpi) const {
  const std::vector<double>* values = nullptr;
  switch (kpi) {
    case Kpi::kTxBitrate: values = &tx_bitrate_mbps; break;
    case Kpi::kTxPackets: values = &tx_packets; break;
    case Kpi::kBufferSize: values = &buffer_bytes; break;
  }
  if (values == nullptr) return 0.0;
  return std::accumulate(values->begin(), values->end(), 0.0);
}

}  // namespace explora::netsim
