#include "netsim/kpi.hpp"

#include <numeric>

#include "common/contracts.hpp"

namespace explora::netsim {

double SliceKpiReport::aggregate(Kpi kpi) const {
  const std::vector<double>* values = nullptr;
  switch (kpi) {
    case Kpi::kTxBitrate: values = &tx_bitrate_mbps; break;
    case Kpi::kTxPackets: values = &tx_packets; break;
    case Kpi::kBufferSize: values = &buffer_bytes; break;
  }
  if (values == nullptr) return 0.0;
  // Every KPI the E2 stream carries is a count or a rate: negative or
  // non-finite values mean upstream state corruption, not a valid report.
  EXPLORA_AUDIT_MSG(contracts::all_non_negative(*values),
                    "KPI {} carries a negative or non-finite per-UE value",
                    to_string(kpi));
  const double total =
      std::accumulate(values->begin(), values->end(), 0.0);
  EXPLORA_ENSURES_MSG(!(total < 0.0), "KPI {} aggregated to {}",
                      to_string(kpi), total);
  return total;
}

}  // namespace explora::netsim
