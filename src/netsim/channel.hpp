// Downlink channel model: log-distance path loss, AR(1) log-normal
// shadowing, and Rayleigh block fading, mapped to CQI and per-PRB transport
// capacity via the LTE CQI table.
//
// The model is deliberately frequency-flat (one SINR per UE per TTI): the
// schedulers differentiate users by *time-selective* channel quality, which
// is what drives RR/WF/PF behaviour differences at the slicing granularity
// EXPLORA observes.
#pragma once

#include <cstdint>

#include "common/rng.hpp"
#include "netsim/types.hpp"

namespace explora::netsim {

/// Static link-budget parameters (3GPP-macro-like defaults).
struct ChannelConfig {
  double tx_power_dbm = 46.0;        ///< gNB transmit power over the carrier
  double noise_figure_db = 7.0;      ///< UE receiver noise figure
  double shadowing_sigma_db = 6.0;   ///< log-normal shadowing std-dev
  double shadowing_rho = 0.995;      ///< AR(1) correlation per TTI
  Tick fading_block_ttis = 10;       ///< Rayleigh coherence block [TTI]
  /// Disable for a deterministic channel (tests, ablations): fading gain
  /// pins to 1 and shadowing to 0.
  bool fading_enabled = true;
};

/// Random-walk mobility along the BS-UE axis: each second the UE drifts
/// by a bounded Gaussian step, reflecting at the band edges. speed 0
/// disables movement (the paper's static deployment).
struct MobilityConfig {
  double speed_mps = 0.0;      ///< RMS drift speed
  double min_distance_m = 50.0;
  double max_distance_m = 3000.0;
};

/// Per-UE time-varying channel. Advance once per TTI; query SINR/CQI and
/// the bytes one PRB can carry in the current TTI.
class UeChannel {
 public:
  /// @param distance_m UE-gNB distance in meters (> 1).
  /// @param config link-budget parameters.
  /// @param rng dedicated RNG stream for this UE's channel.
  UeChannel(double distance_m, const ChannelConfig& config,
            common::Rng rng);

  /// Enables mobility (disabled by default).
  void set_mobility(const MobilityConfig& mobility);

  /// Evolves shadowing each TTI and redraws fading at block boundaries.
  void advance() noexcept;

  /// Current post-fading SINR in dB.
  [[nodiscard]] double sinr_db() const noexcept { return sinr_db_; }
  /// Current CQI in [1, 15].
  [[nodiscard]] std::uint32_t cqi() const noexcept;
  /// Transport-block bytes one PRB carries this TTI at the current CQI.
  [[nodiscard]] std::uint32_t bytes_per_prb() const noexcept;
  /// Achievable rate this TTI in bits per PRB (for PF/WF metrics).
  [[nodiscard]] double bits_per_prb() const noexcept;
  [[nodiscard]] double distance_m() const noexcept { return distance_m_; }

  /// Moves the UE to a new distance (mobility / scenario changes).
  void set_distance(double distance_m);

 private:
  void refresh_sinr() noexcept;

  double distance_m_;
  ChannelConfig config_;
  common::Rng rng_;
  double mean_snr_db_ = 0.0;     ///< distance-dependent component
  double shadowing_db_ = 0.0;    ///< AR(1) state
  double fading_gain_ = 1.0;     ///< Rayleigh power gain, per block
  double sinr_db_ = 0.0;
  std::int64_t ttis_into_block_ = 0;
  MobilityConfig mobility_{};
  std::int64_t ttis_since_move_ = 0;
};

/// Maps SINR [dB] to CQI index 1..15 (LTE 4-bit CQI, SINR thresholds from
/// the standard link-level curves).
[[nodiscard]] std::uint32_t sinr_to_cqi(double sinr_db) noexcept;

/// Spectral efficiency [bits/symbol] for a CQI index 0..15 (36.213 Table
/// 7.2.3-1; index 0 reports 0). CQI > 15 is a contract violation.
[[nodiscard]] double cqi_spectral_efficiency(std::uint32_t cqi);

/// Transport-block bytes carried by a single PRB in one TTI at `cqi`:
/// 12 subcarriers x 14 symbols, minus ~25% control/reference overhead.
/// CQI > 15 is a contract violation.
[[nodiscard]] std::uint32_t cqi_bytes_per_prb(std::uint32_t cqi);

}  // namespace explora::netsim
