// Action shielding (the paper's Opt 2, §4.4): unlike steering — which
// substitutes an action only when the graph knows a better one — a shield
// *unconditionally* inhibits actions considered dangerous, independent of
// the observed environment. Shields are built post-training from operator
// rules [1] (e.g. "never leave the URLLC slice under 5 PRBs").
//
// The paper argues (and Appendix D quantifies) that for non-stationary
// RAN control steering is preferable because it never permanently removes
// actions; this module exists to make that comparison runnable (see
// bench_ablation_shield_vs_steer).
#pragma once

#include <cstdint>
#include <functional>
#include <map>
#include <optional>
#include <string>
#include <vector>

#include "netsim/types.hpp"

namespace explora::core {

/// One shielding rule: a predicate marking actions as forbidden, with a
/// human-readable rationale for the explanation archive.
struct ShieldRule {
  std::string name;
  std::function<bool(const netsim::SlicingControl&)> forbids;
};

/// Outcome of applying the shield to one proposed action.
struct ShieldOutcome {
  netsim::SlicingControl enforced;
  bool blocked = false;          ///< the proposal violated a rule
  std::string violated_rule;     ///< first matching rule name
  std::string rationale;
};

class ActionShield {
 public:
  /// @param fallback action enforced when a proposal is blocked; must
  ///        itself satisfy every rule added later (checked on add_rule).
  explicit ActionShield(netsim::SlicingControl fallback);

  /// Adds a rule; throws std::invalid_argument when the fallback action
  /// itself violates it (a shield that can deadlock is misconfigured).
  void add_rule(ShieldRule rule);

  /// Convenience rules mirroring common operator intents.
  /// Forbids actions reserving fewer than `min_prbs` PRBs for `slice`.
  static ShieldRule min_prbs_rule(netsim::Slice slice,
                                  std::uint32_t min_prbs);
  /// Forbids an explicit action (blanket ban).
  static ShieldRule ban_action_rule(const netsim::SlicingControl& action);
  /// Forbids using a scheduling policy on a slice.
  static ShieldRule ban_scheduler_rule(netsim::Slice slice,
                                       netsim::SchedulerPolicy policy);

  /// Applies the shield: forwards compliant actions, substitutes the
  /// fallback otherwise.
  [[nodiscard]] ShieldOutcome apply(const netsim::SlicingControl& proposed);

  [[nodiscard]] std::size_t rule_count() const noexcept {
    return rules_.size();
  }
  [[nodiscard]] std::uint64_t decisions() const noexcept {
    return decisions_;
  }
  [[nodiscard]] std::uint64_t blocked() const noexcept { return blocked_; }
  /// Block counts per rule (telemetry).
  [[nodiscard]] const std::map<std::string, std::uint64_t>& blocks_by_rule()
      const noexcept {
    return blocks_by_rule_;
  }

 private:
  netsim::SlicingControl fallback_;
  std::vector<ShieldRule> rules_;
  std::uint64_t decisions_ = 0;
  std::uint64_t blocked_ = 0;
  std::map<std::string, std::uint64_t> blocks_by_rule_;
};

}  // namespace explora::core
