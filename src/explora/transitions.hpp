// Transition taxonomy and the (pi, v) pairs of §4.3: for the c = 2
// multi-modal action there are 2^c = 4 transition classes, and each
// observed transition is paired with the per-(KPI, slice) change of impact
// on the environment — the features EXPLORA distills knowledge from.
#pragma once

#include <array>
#include <cstdint>
#include <string>
#include <vector>

#include "explora/graph.hpp"
#include "netsim/kpi.hpp"
#include "netsim/types.hpp"

namespace explora::core {

/// The 2^c transition classes for the slicing+scheduling action (§6.2).
enum class TransitionClass : std::uint8_t {
  kSelf = 0,       ///< identical action repeated
  kSamePrb = 1,    ///< same PRB allocation, different scheduling
  kSameSched = 2,  ///< same scheduling, different PRB allocation
  kDistinct = 3,   ///< both modes changed
};

inline constexpr std::size_t kNumTransitionClasses = 4;

[[nodiscard]] std::string to_string(TransitionClass cls);

/// Classifies the transition a_t -> a_{t+1}.
[[nodiscard]] TransitionClass classify_transition(
    const netsim::SlicingControl& from, const netsim::SlicingControl& to);

/// One observed transition with its change-of-impact features v:
/// per-(KPI, slice) differences of the window-mean KPI between the state
/// following `from` and the state following `to`, plus per-KPI aggregates
/// for the paper's scatter plots (Fig. 7 / Fig. 13).
struct TransitionEvent {
  netsim::SlicingControl from;
  netsim::SlicingControl to;
  TransitionClass cls = TransitionClass::kSelf;
  /// v: mean-delta per attribute (size kNumAttributes).
  std::vector<double> delta;
  /// Jensen-Shannon divergence per attribute (size kNumAttributes).
  std::vector<double> js_divergence;

  /// Sum of the deltas of one KPI across slices (scatter-plot axes).
  [[nodiscard]] double kpi_delta(netsim::Kpi kpi) const;
};

/// Accumulates TransitionEvents from a decision trace: feed the enforced
/// action and the per-decision window of KPI reports; consecutive decisions
/// produce one event each.
class TransitionTracker {
 public:
  /// Records one decision step: `action` was enforced and `window` is the
  /// set of KPI reports observed while it was active.
  void record_step(const netsim::SlicingControl& action,
                   const std::vector<netsim::KpiReport>& window);

  /// Drops the temporal linkage (episode boundary).
  void reset_link() noexcept;

  [[nodiscard]] const std::vector<TransitionEvent>& events() const noexcept {
    return events_;
  }
  /// Share of each transition class among recorded events (sums to 1).
  [[nodiscard]] std::array<double, kNumTransitionClasses> class_shares()
      const;

 private:
  struct StepSnapshot {
    netsim::SlicingControl action;
    std::array<double, kNumAttributes> means{};
    std::vector<std::vector<double>> samples;  ///< per attribute
  };
  [[nodiscard]] static StepSnapshot snapshot(
      const netsim::SlicingControl& action,
      const std::vector<netsim::KpiReport>& window);

  std::vector<TransitionEvent> events_;
  bool has_previous_ = false;
  StepSnapshot previous_{};
};

/// Feature names for the distillation DT, aligned with TransitionEvent::
/// delta ("d_tx_bitrate[eMBB]", ...) followed by js_divergence entries when
/// `include_js` is set.
[[nodiscard]] std::vector<std::string> transition_feature_names(
    bool include_js);

/// Class names aligned with TransitionClass values.
[[nodiscard]] std::vector<std::string> transition_class_names();

}  // namespace explora::core
