#include "explora/graph.hpp"

#include <algorithm>

#include "common/contracts.hpp"
#include "common/format.hpp"

namespace explora::core {

namespace {

constexpr std::uint64_t kEdgeStride = 1u << 20;  // far above any node count

[[nodiscard]] std::uint64_t edge_key(std::size_t from, std::size_t to) {
  return static_cast<std::uint64_t>(from) * kEdgeStride +
         static_cast<std::uint64_t>(to);
}

}  // namespace

std::string attribute_name(std::size_t attribute) {
  EXPLORA_EXPECTS(attribute < kNumAttributes);
  const auto kpi =
      static_cast<netsim::Kpi>(attribute / netsim::kNumSlices);
  const auto slice =
      static_cast<netsim::Slice>(attribute % netsim::kNumSlices);
  return common::format("{}[{}]", netsim::to_string(kpi),
                        netsim::to_string(slice));
}

double ActionNode::attribute_mean(netsim::Kpi kpi,
                                  netsim::Slice slice) const {
  return attributes[attribute_index(kpi, slice)].mean();
}

double ActionNode::user_attribute_mean(netsim::Kpi kpi,
                                       netsim::Slice slice) const {
  return user_attributes[attribute_index(kpi, slice)].mean();
}

AttributedGraph::AttributedGraph() : AttributedGraph(Config{}) {}

AttributedGraph::AttributedGraph(Config config) : config_(config) {
  EXPLORA_EXPECTS(config.attribute_capacity > 0);
}

std::size_t AttributedGraph::find_or_create(
    const netsim::SlicingControl& action) {
  const auto it = index_.find(action);
  if (it != index_.end()) return it->second;

  const std::size_t node_index = nodes_.size();
  EXPLORA_ASSERT(node_index < kEdgeStride);
  ActionNode node;
  node.action = action;
  node.attributes.reserve(kNumAttributes);
  node.user_attributes.reserve(kNumAttributes);
  for (std::size_t p = 0; p < kNumAttributes; ++p) {
    node.attributes.emplace_back(config_.attribute_capacity,
                                 config_.seed + next_attribute_seed_++);
    node.user_attributes.emplace_back(config_.attribute_capacity,
                                      config_.seed + next_attribute_seed_++);
  }
  nodes_.push_back(std::move(node));
  adjacency_.emplace_back();
  index_.emplace(action, node_index);
  return node_index;
}

void AttributedGraph::begin_action(const netsim::SlicingControl& action) {
  const std::size_t node_index = find_or_create(action);
  ++nodes_[node_index].visits;
  if (current_node_.has_value()) {
    const std::size_t from = *current_node_;
    const auto key = edge_key(from, node_index);
    auto [it, inserted] = edges_.emplace(key, 0);
    ++it->second;
    if (inserted) adjacency_[from].push_back(node_index);
    ++total_transitions_;
  }
  current_node_ = node_index;
}

void AttributedGraph::record_consequence(const netsim::KpiReport& report) {
  EXPLORA_EXPECTS(current_node_.has_value());
  ActionNode& node = nodes_[*current_node_];
  for (std::size_t k = 0; k < netsim::kNumKpis; ++k) {
    for (std::size_t l = 0; l < netsim::kNumSlices; ++l) {
      const auto kpi = static_cast<netsim::Kpi>(k);
      const auto slice = static_cast<netsim::Slice>(l);
      const std::size_t index = attribute_index(kpi, slice);
      node.attributes[index].add(report.value(kpi, slice));
      // Appendix-B attribute form: one sample per user.
      const netsim::SliceKpiReport& slice_report =
          report.slices[static_cast<std::size_t>(slice)];
      const std::vector<double>* per_ue = nullptr;
      switch (kpi) {
        case netsim::Kpi::kTxBitrate:
          per_ue = &slice_report.tx_bitrate_mbps;
          break;
        case netsim::Kpi::kTxPackets:
          per_ue = &slice_report.tx_packets;
          break;
        case netsim::Kpi::kBufferSize:
          per_ue = &slice_report.buffer_bytes;
          break;
      }
      if (per_ue != nullptr) {
        for (double value : *per_ue) node.user_attributes[index].add(value);
      }
    }
  }
  ++node.samples;
}

void AttributedGraph::break_temporal_link() noexcept {
  current_node_.reset();
}

bool AttributedGraph::contains(const netsim::SlicingControl& action) const {
  return index_.find(action) != index_.end();
}

const ActionNode* AttributedGraph::find(
    const netsim::SlicingControl& action) const {
  const auto it = index_.find(action);
  return it == index_.end() ? nullptr : &nodes_[it->second];
}

std::vector<std::size_t> AttributedGraph::neighbors(
    const netsim::SlicingControl& action) const {
  const auto it = index_.find(action);
  if (it == index_.end()) return {};
  return adjacency_[it->second];
}

const ActionNode& AttributedGraph::node(std::size_t index) const {
  EXPLORA_EXPECTS(index < nodes_.size());
  return nodes_[index];
}

std::uint64_t AttributedGraph::edge_visits(
    const netsim::SlicingControl& from,
    const netsim::SlicingControl& to) const {
  const auto from_it = index_.find(from);
  const auto to_it = index_.find(to);
  if (from_it == index_.end() || to_it == index_.end()) return 0;
  const auto it = edges_.find(edge_key(from_it->second, to_it->second));
  return it == edges_.end() ? 0 : it->second;
}

std::vector<std::tuple<std::size_t, std::size_t, std::uint64_t>>
AttributedGraph::edges() const {
  std::vector<std::tuple<std::size_t, std::size_t, std::uint64_t>> out;
  out.reserve(edges_.size());
  for (const auto& [key, count] : edges_) {  // det-ok: unordered-iter (sorted below)
    out.emplace_back(static_cast<std::size_t>(key / kEdgeStride),
                     static_cast<std::size_t>(key % kEdgeStride), count);
  }
  std::sort(out.begin(), out.end());
  return out;
}

std::string AttributedGraph::describe(std::size_t top_n) const {
  std::string out = common::format(
      "AttributedGraph: {} nodes, {} edges, {} transitions\n", nodes_.size(),
      edges_.size(), total_transitions_);
  std::vector<std::size_t> order(nodes_.size());
  for (std::size_t i = 0; i < order.size(); ++i) order[i] = i;
  std::sort(order.begin(), order.end(), [this](std::size_t a, std::size_t b) {
    return nodes_[a].visits > nodes_[b].visits;
  });
  const std::size_t shown = std::min(top_n, order.size());
  for (std::size_t i = 0; i < shown; ++i) {
    const ActionNode& node = nodes_[order[i]];
    out += common::format("  {} visits={} samples={} out-degree={}\n",
                          node.action.to_string(), node.visits, node.samples,
                          adjacency_[order[i]].size());
  }
  return out;
}

std::string AttributedGraph::to_dot(std::uint64_t min_visits) const {
  std::string out = "digraph explora {\n  rankdir=LR;\n  node [shape=box, fontsize=9];\n";
  std::vector<bool> kept(nodes_.size(), false);
  for (std::size_t i = 0; i < nodes_.size(); ++i) {
    const ActionNode& node = nodes_[i];
    if (node.visits < min_visits) continue;
    kept[i] = true;
    out += common::format("  n{} [label=\"{}\\nvisits={}\"];\n", i,
                          node.action.to_string(), node.visits);
  }
  for (const auto& [from, to, count] : edges()) {
    if (!kept[from] || !kept[to]) continue;
    out += common::format("  n{} -> n{} [label=\"{}\"];\n", from, to,
                          count);
  }
  out += "}\n";
  return out;
}

}  // namespace explora::core
