#include "explora/shield.hpp"

#include <stdexcept>

#include "common/contracts.hpp"
#include "common/format.hpp"

namespace explora::core {

ActionShield::ActionShield(netsim::SlicingControl fallback)
    : fallback_(fallback) {}

void ActionShield::add_rule(ShieldRule rule) {
  EXPLORA_EXPECTS(rule.forbids != nullptr);
  EXPLORA_EXPECTS(!rule.name.empty());
  if (rule.forbids(fallback_)) {
    throw std::invalid_argument(common::format(
        "shield fallback {} violates rule '{}'", fallback_.to_string(),
        rule.name));
  }
  rules_.push_back(std::move(rule));
}

ShieldRule ActionShield::min_prbs_rule(netsim::Slice slice,
                                       std::uint32_t min_prbs) {
  return ShieldRule{
      .name = common::format("min-{}-prbs-{}", netsim::to_string(slice),
                             min_prbs),
      .forbids =
          [slice, min_prbs](const netsim::SlicingControl& action) {
            return action.prbs[static_cast<std::size_t>(slice)] < min_prbs;
          },
  };
}

ShieldRule ActionShield::ban_action_rule(
    const netsim::SlicingControl& action) {
  return ShieldRule{
      .name = common::format("ban-{}", action.to_string()),
      .forbids = [action](const netsim::SlicingControl& proposed) {
        return proposed == action;
      },
  };
}

ShieldRule ActionShield::ban_scheduler_rule(netsim::Slice slice,
                                            netsim::SchedulerPolicy policy) {
  return ShieldRule{
      .name = common::format("ban-{}-on-{}", netsim::to_string(policy),
                             netsim::to_string(slice)),
      .forbids = [slice, policy](const netsim::SlicingControl& action) {
        return action.scheduling[static_cast<std::size_t>(slice)] == policy;
      },
  };
}

ShieldOutcome ActionShield::apply(const netsim::SlicingControl& proposed) {
  ++decisions_;
  for (const ShieldRule& rule : rules_) {
    if (rule.forbids(proposed)) {
      ++blocked_;
      ++blocks_by_rule_[rule.name];
      return ShieldOutcome{
          .enforced = fallback_,
          .blocked = true,
          .violated_rule = rule.name,
          .rationale = common::format(
              "shield: {} violates rule '{}'; enforcing fallback {}",
              proposed.to_string(), rule.name, fallback_.to_string()),
      };
    }
  }
  return ShieldOutcome{
      .enforced = proposed,
      .blocked = false,
      .violated_rule = {},
      .rationale = "shield: proposal compliant",
  };
}

}  // namespace explora::core
