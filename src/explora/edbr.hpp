// The Explanation-Driven Behavior Refiner (EDBR, §4.4/§5.2, Algorithm 1):
// intent-based action steering. When the agent proposes an action whose
// expected reward (from the attributed graph) violates the operator's
// intent, EDBR explores the first-hop neighbourhood of the previous
// action's node and substitutes a better-known action:
//   AR1 "Max-reward"      — replace expected-low-reward actions with the
//                           neighbour of highest expected reward,
//   AR2 "Min-reward"      — replace expected-high-reward actions with the
//                           neighbour of lowest expected reward (favours
//                           the URLLC slice under the LL agent),
//   AR3 "Improve bitrate" — replace expected-low-reward actions with the
//                           neighbour of highest expected tx_bitrate.
#pragma once

#include <cstdint>
#include <deque>
#include <map>
#include <optional>
#include <string>

#include "explora/graph.hpp"
#include "explora/reward.hpp"
#include "netsim/types.hpp"

namespace explora::core {

enum class SteeringStrategy : std::uint8_t {
  kMaxReward = 0,      ///< AR 1
  kMinReward = 1,      ///< AR 2
  kImproveBitrate = 2, ///< AR 3
};

[[nodiscard]] std::string to_string(SteeringStrategy strategy);

/// Result of one steering decision.
struct SteeringOutcome {
  netsim::SlicingControl enforced;  ///< action actually sent to the RAN
  bool triggered = false;   ///< the omega condition fired and G was usable
  bool suggested = false;   ///< the graph proposed a replacement candidate
  bool replaced = false;    ///< the candidate was enforced instead of a_t
  double expected_reward_proposed = 0.0;
  double expected_reward_enforced = 0.0;
  std::string rationale;    ///< human-readable explanation of the decision
};

class ActionSteering {
 public:
  struct Config {
    SteeringStrategy strategy = SteeringStrategy::kMaxReward;
    /// O: number of past measured rewards averaged in the omega test.
    std::size_t observation_window = 10;
    /// Graph-exploration radius for the candidate set Q. The paper limits
    /// the demonstration to the first hop ("worst-case scenario", §5.2);
    /// larger radii consider actions reachable through longer observed
    /// action sequences (see bench_ablation_khop).
    std::size_t exploration_hops = 1;
  };

  /// @param graph the (live) attributed graph; non-owning.
  /// @param reward reward model matching the agent profile.
  ActionSteering(const AttributedGraph& graph, RewardModel reward,
                 Config config);

  /// Records the measured reward of the latest completed decision window.
  void push_measured_reward(double reward);

  /// Algorithm 1: decides whether to forward `proposed` or substitute it,
  /// given the previously enforced action (if any).
  [[nodiscard]] SteeringOutcome steer(
      const netsim::SlicingControl& proposed,
      const std::optional<netsim::SlicingControl>& previous);

  // --- statistics for Fig. 15 -------------------------------------------
  [[nodiscard]] std::uint64_t decisions() const noexcept {
    return decisions_;
  }
  [[nodiscard]] std::uint64_t suggestions() const noexcept {
    return suggestions_;
  }
  [[nodiscard]] std::uint64_t replacements() const noexcept {
    return replacements_;
  }
  /// How many times each action was substituted *out* (paper: rarely > 3
  /// for the same action, i.e. steering is not shielding).
  [[nodiscard]] const std::map<netsim::SlicingControl, std::uint64_t>&
  replacement_counts() const noexcept {
    return replaced_out_counts_;
  }
  /// How many times each graph action was substituted *in*.
  [[nodiscard]] const std::map<netsim::SlicingControl, std::uint64_t>&
  substitute_counts() const noexcept {
    return substituted_in_counts_;
  }

 private:
  /// Candidate set Q: the previous node plus everything reachable within
  /// config_.exploration_hops observed transitions.
  [[nodiscard]] std::vector<const ActionNode*> candidate_set(
      const netsim::SlicingControl& previous) const;

  const AttributedGraph* graph_;
  RewardModel reward_;
  Config config_;
  std::deque<double> recent_rewards_;
  std::uint64_t decisions_ = 0;
  std::uint64_t suggestions_ = 0;
  std::uint64_t replacements_ = 0;
  std::map<netsim::SlicingControl, std::uint64_t> replaced_out_counts_;
  std::map<netsim::SlicingControl, std::uint64_t> substituted_in_counts_;
};

}  // namespace explora::core
