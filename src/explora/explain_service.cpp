#include "explora/explain_service.hpp"

#include <algorithm>

#include "common/contracts.hpp"
#include "xai/agent_model.hpp"

namespace explora {

namespace {

using xai::serving::ShedReason;
using xai::serving::Tick;
using xai::serving::Tier;

constexpr std::array<std::int64_t, 11> kLatencyBounds{1,  2,   4,   8,   16, 32,
                                                      64, 128, 256, 512, 1024};

}  // namespace

ExplainService::ExplainService(const ml::PolicyAgent& agent,
                               std::vector<ml::Vector> background,
                               const xai::DecisionTreeClassifier* surrogate,
                               Config config,
                               xai::serving::DegradationLadder* shared_ladder)
    : agent_(agent),
      background_(std::move(background)),
      surrogate_(surrogate),
      config_(config),
      queue_(config.queue_capacity,
             background_.empty() ? 0 : background_.front().size()),
      fault_rng_(common::Rng(config.seed).fork("serving.eval_faults")),
      pop_scratch_() {
  EXPLORA_EXPECTS_MSG(!background_.empty(),
                      "ExplainService needs background rows for SHAP");
  if (background_.size() > config_.max_background) {
    background_.resize(config_.max_background);
  }
  if (shared_ladder != nullptr) {
    ladder_ = shared_ladder;
  } else {
    owned_ladder_ =
        std::make_unique<xai::serving::DegradationLadder>(config_.ladder);
    ladder_ = owned_ladder_.get();
  }
  breaker_ = xai::serving::CircuitBreaker(config_.breaker);
  if (config_.in_flight_budget == 0) {
    config_.in_flight_budget = queue_.capacity() + config_.workers;
  }
  workers_.resize(std::max<std::size_t>(config_.workers, 1));
  for (auto& slot : workers_) {
    slot.request.x.resize(queue_.feature_dim());
    slot.attribution.reserve(queue_.feature_dim());
  }
  pop_scratch_.x.resize(queue_.feature_dim());
  cache_.resize(ml::kNumHeads);

  telemetry::Scope scope("explora.serving");
  tm_submitted_ = &scope.counter("submitted");
  tm_accepted_ = &scope.counter("accepted");
  for (std::size_t t = 0; t < xai::serving::kNumTiers; ++t) {
    const auto tier = static_cast<Tier>(t);
    tm_served_[t] = &scope.counter(std::string("served.") +
                                   std::string(to_string(tier)));
    tm_latency_[t] = &scope.histogram(
        std::string("latency_ticks.") + std::string(to_string(tier)),
        kLatencyBounds);
  }
  for (std::size_t r = 0; r < shed_by_reason_.size(); ++r) {
    tm_shed_[r] = &scope.counter(
        std::string("shed.") +
        std::string(to_string(static_cast<ShedReason>(r))));
  }
  tm_demotions_ = &scope.counter("demoted_requests");
  tm_eval_faults_ = &scope.counter("eval_faults");
  tm_breaker_state_ = &scope.gauge("breaker_state");
  tm_active_tier_ = &scope.gauge("active_tier");
  tm_queue_depth_ = &scope.gauge("queue_depth");
}

std::size_t ExplainService::busy_workers() const {
  std::size_t busy = 0;
  for (const auto& slot : workers_) {
    if (slot.active) ++busy;
  }
  return busy;
}

ExplainService::SubmitResult ExplainService::submit(
    std::span<const double> x, std::uint32_t output_index,
    const ml::AgentAction& chosen, Tick now, Tick deadline) {
  EXPLORA_EXPECTS(x.size() == queue_.feature_dim());
  EXPLORA_EXPECTS(output_index < ml::kNumHeads);
  ++submitted_;
  tm_submitted_->add(1);
  SubmitResult result;
  result.id = next_id_.fetch_add(1, std::memory_order_relaxed);
  if (deadline == 0) deadline = now + config_.default_deadline;

  if (queue_.depth() + busy_workers() >= config_.in_flight_budget) {
    result.shed_reason = ShedReason::kInFlightBudget;
    shed_by_reason_[static_cast<std::size_t>(result.shed_reason)] += 1;
    tm_shed_[static_cast<std::size_t>(result.shed_reason)]->add(1);
    return result;
  }
  const std::array<std::uint32_t, 4> context{
      static_cast<std::uint32_t>(chosen.prb_choice),
      static_cast<std::uint32_t>(chosen.sched_choice[0]),
      static_cast<std::uint32_t>(chosen.sched_choice[1]),
      static_cast<std::uint32_t>(chosen.sched_choice[2])};
  if (!queue_.try_push(result.id, output_index, context, now, deadline, x)) {
    result.shed_reason = ShedReason::kQueueFull;
    shed_by_reason_[static_cast<std::size_t>(result.shed_reason)] += 1;
    tm_shed_[static_cast<std::size_t>(result.shed_reason)]->add(1);
    return result;
  }
  result.accepted = true;
  ++accepted_;
  tm_accepted_->add(1);
  return result;
}

void ExplainService::on_tick(Tick now) {
  breaker_.on_tick(now);
  ladder_->set_model_available(breaker_.allow_eval(), now);
  complete_finished(now);
  ladder_->observe_pressure(
      static_cast<std::int64_t>(queue_.depth() + busy_workers()), now);
  dispatch_queued(now);
  tm_breaker_state_->set(static_cast<std::int64_t>(breaker_.state()));
  tm_active_tier_->set(static_cast<std::int64_t>(ladder_->active_tier()));
  tm_queue_depth_->set(static_cast<std::int64_t>(queue_.depth()));
}

void ExplainService::complete_finished(Tick now) {
  finished_scratch_.clear();
  for (std::size_t i = 0; i < workers_.size(); ++i) {
    if (workers_[i].active && workers_[i].finish <= now) {
      finished_scratch_.push_back(i);
    }
  }
  // Deliver in (finish tick, id) order so the result stream never depends
  // on worker-slot assignment.
  std::sort(finished_scratch_.begin(), finished_scratch_.end(),
            [this](std::size_t a, std::size_t b) {
              const InFlight& wa = workers_[a];
              const InFlight& wb = workers_[b];
              if (wa.finish != wb.finish) return wa.finish < wb.finish;
              return wa.request.id < wb.request.id;
            });
  for (const std::size_t i : finished_scratch_) {
    InFlight& slot = workers_[i];
    ExplanationResult result;
    result.id = slot.request.id;
    result.output_index = slot.request.output_index;
    result.tier = slot.tier;
    result.submitted = slot.request.submitted;
    result.completed = slot.finish;
    result.latency = slot.finish - slot.request.submitted;
    result.degraded = slot.degraded;
    result.from_cache = slot.from_cache;
    result.attribution = slot.attribution;

    const auto t = static_cast<std::size_t>(slot.tier);
    served_by_tier_[t] += 1;
    tm_served_[t]->add(1);
    tm_latency_[t]->observe(result.latency);
    if (slot.degraded) {
      ++demoted_requests_;
      tm_demotions_->add(1);
    }
    if (!slot.from_cache) {
      CacheEntry& entry = cache_[slot.request.output_index];
      entry.valid = true;
      entry.at = slot.finish;
      entry.attribution = slot.attribution;
    }
    drained_.push_back(std::move(result));
    slot.active = false;
  }
}

void ExplainService::dispatch_queued(Tick now) {
  for (auto& slot : workers_) {
    // A shed request frees the slot again, so keep popping until this
    // slot actually holds work (or the queue runs dry).
    while (!slot.active) {
      if (!queue_.try_pop(pop_scratch_)) return;
      const Tick budget = pop_scratch_.deadline - now;
      const Tier floor = ladder_->active_tier();
      const auto fit = config_.costs.cheapest_tier_fitting(budget, floor);
      if (!fit.has_value()) {
        shed(pop_scratch_, ShedReason::kDeadlineInfeasible, now);
        continue;
      }
      slot.request.id = pop_scratch_.id;
      slot.request.output_index = pop_scratch_.output_index;
      slot.request.submitted = pop_scratch_.submitted;
      slot.request.deadline = pop_scratch_.deadline;
      slot.request.context = pop_scratch_.context;
      std::copy(pop_scratch_.x.begin(), pop_scratch_.x.end(),
                slot.request.x.begin());
      slot.tier = *fit;
      slot.degraded = slot.tier != Tier::kExact;
      slot.from_cache = false;
      execute(slot, now);
    }
  }
}

void ExplainService::execute(InFlight& slot, Tick now) {
  Tick cost = config_.costs.cost(slot.tier);
  if (slot.tier == Tier::kExact || slot.tier == Tier::kSampled) {
    // Deterministic fault injection on the model-eval path: the draw
    // sequence is part of the decision stream (one slow + one failure
    // draw per model-eval dispatch, in dispatch order).
    const bool slow = fault_rng_.bernoulli(config_.eval_slow_probability);
    const bool fail = fault_rng_.bernoulli(config_.eval_failure_probability);
    if (slow) cost *= config_.eval_slow_factor;
    const bool timed_out = config_.breaker.eval_timeout_ticks > 0 &&
                           cost > config_.breaker.eval_timeout_ticks;
    if (fail || timed_out) {
      ++eval_faults_;
      tm_eval_faults_->add(1);
      breaker_.record_failure(now);
      // Fall back without touching the model: surrogate if distilled,
      // else last-good cache, else shed.
      if (surrogate_ != nullptr) {
        slot.tier = Tier::kSurrogate;
        slot.degraded = true;
      } else if (cache_[slot.request.output_index].valid) {
        slot.tier = Tier::kCached;
        slot.degraded = true;
      } else {
        shed(slot.request, ShedReason::kNoCachedResult, now);
        slot.active = false;
        return;
      }
      cost = config_.costs.cost(slot.tier);
    } else {
      breaker_.record_success(now);
    }
  }

  switch (slot.tier) {
    case Tier::kExact:
    case Tier::kSampled:
      slot.attribution = shap_attribution(slot.request, slot.tier);
      slot.from_cache = false;
      break;
    case Tier::kSurrogate: {
      if (surrogate_ == nullptr) {
        if (!cache_[slot.request.output_index].valid) {
          shed(slot.request, ShedReason::kNoCachedResult, now);
          slot.active = false;
          return;
        }
        slot.tier = Tier::kCached;
        slot.degraded = true;
        slot.attribution = cache_[slot.request.output_index].attribution;
        slot.from_cache = true;
        cost = config_.costs.cost(Tier::kCached);
        break;
      }
      slot.attribution = surrogate_->path_attribution(slot.request.x);
      slot.from_cache = false;
      break;
    }
    case Tier::kCached: {
      const CacheEntry& entry = cache_[slot.request.output_index];
      if (!entry.valid) {
        shed(slot.request, ShedReason::kNoCachedResult, now);
        slot.active = false;
        return;
      }
      slot.attribution = entry.attribution;
      slot.from_cache = true;
      break;
    }
  }
  slot.finish = now + cost;
  slot.active = true;
}

std::vector<double> ExplainService::shap_attribution(
    const xai::serving::Request& request, Tier tier) {
  ml::AgentAction chosen;
  chosen.prb_choice = request.context[0];
  chosen.sched_choice = {request.context[1], request.context[2],
                         request.context[3]};
  xai::ShapExplainer::Config shap_config;
  shap_config.mode = tier == Tier::kExact
                         ? xai::ShapExplainer::Mode::kExact
                         : xai::ShapExplainer::Mode::kSampling;
  shap_config.permutations = config_.sampled_permutations;
  shap_config.max_background = config_.max_background;
  shap_config.seed = config_.seed;
  shap_config.pool = config_.pool;
  xai::ShapExplainer explainer(xai::head_probability_model(agent_, chosen),
                               background_, shap_config);
  return explainer.explain(request.x, request.output_index);
}

void ExplainService::shed(const xai::serving::Request& request,
                          ShedReason reason, Tick now) {
  shed_by_reason_[static_cast<std::size_t>(reason)] += 1;
  tm_shed_[static_cast<std::size_t>(reason)]->add(1);
  ExplanationResult notice;
  notice.id = request.id;
  notice.output_index = request.output_index;
  notice.shed_reason = reason;
  notice.submitted = request.submitted;
  notice.completed = now;
  drained_.push_back(std::move(notice));
}

std::vector<ExplanationResult> ExplainService::drain() {
  std::vector<ExplanationResult> out;
  out.swap(drained_);
  return out;
}

ExplainService::Stats ExplainService::stats() const {
  Stats stats;
  stats.submitted = submitted_;
  stats.accepted = accepted_;
  stats.served_by_tier = served_by_tier_;
  stats.shed_by_reason = shed_by_reason_;
  stats.demoted_requests = demoted_requests_;
  stats.eval_faults = eval_faults_;
  stats.breaker_trips = breaker_.trips();
  stats.queue_high_water = queue_.high_water();
  stats.queue_capacity = queue_.capacity();
  return stats;
}

}  // namespace explora
