#include "explora/edbr.hpp"

#include <algorithm>
#include <set>

#include "common/contracts.hpp"
#include "common/format.hpp"

namespace explora::core {

std::string to_string(SteeringStrategy strategy) {
  switch (strategy) {
    case SteeringStrategy::kMaxReward: return "AR1-max-reward";
    case SteeringStrategy::kMinReward: return "AR2-min-reward";
    case SteeringStrategy::kImproveBitrate: return "AR3-improve-bitrate";
  }
  return "?";
}

ActionSteering::ActionSteering(const AttributedGraph& graph,
                               RewardModel reward, Config config)
    : graph_(&graph), reward_(reward), config_(config) {
  EXPLORA_EXPECTS(config.observation_window > 0);
  EXPLORA_EXPECTS(config.exploration_hops >= 1);
}

void ActionSteering::push_measured_reward(double reward) {
  recent_rewards_.push_back(reward);
  while (recent_rewards_.size() > config_.observation_window) {
    recent_rewards_.pop_front();
  }
}

std::vector<const ActionNode*> ActionSteering::candidate_set(
    const netsim::SlicingControl& previous) const {
  std::vector<const ActionNode*> candidates;
  const ActionNode* previous_node = graph_->find(previous);
  if (previous_node == nullptr) return candidates;
  // Algorithm 1 lines 4-10: BFS from n_{t-1}, bounded by the exploration
  // radius (the paper demonstrates the 1-hop worst case).
  std::vector<const ActionNode*> frontier{previous_node};
  std::set<const ActionNode*> visited{previous_node};
  candidates.push_back(previous_node);
  for (std::size_t hop = 0; hop < config_.exploration_hops; ++hop) {
    std::vector<const ActionNode*> next_frontier;
    for (const ActionNode* node : frontier) {
      for (std::size_t neighbor : graph_->neighbors(node->action)) {
        const ActionNode& candidate = graph_->node(neighbor);
        if (visited.insert(&candidate).second) {
          candidates.push_back(&candidate);
          next_frontier.push_back(&candidate);
        }
      }
    }
    if (next_frontier.empty()) break;
    frontier = std::move(next_frontier);
  }
  return candidates;
}

SteeringOutcome ActionSteering::steer(
    const netsim::SlicingControl& proposed,
    const std::optional<netsim::SlicingControl>& previous) {
  ++decisions_;
  SteeringOutcome outcome;
  outcome.enforced = proposed;

  const ActionNode* proposed_node = graph_->find(proposed);
  if (proposed_node == nullptr || proposed_node->samples == 0 ||
      recent_rewards_.empty() || !previous.has_value()) {
    outcome.rationale = "no graph knowledge for the proposed action yet";
    return outcome;
  }

  const double expected = reward_.from_node(*proposed_node);
  outcome.expected_reward_proposed = expected;
  outcome.expected_reward_enforced = expected;

  double average = 0.0;
  for (double r : recent_rewards_) average += r;
  average /= static_cast<double>(recent_rewards_.size());

  // Line 1: omega = r(b(a_t)) < avg_{x=t-O-1}^{t-1} r(a_x).
  const bool omega = expected < average;
  // Line 2: strategies fire on (omega, AR1), (!omega, AR2), (omega, AR3).
  const bool fire =
      (omega && config_.strategy == SteeringStrategy::kMaxReward) ||
      (!omega && config_.strategy == SteeringStrategy::kMinReward) ||
      (omega && config_.strategy == SteeringStrategy::kImproveBitrate);
  if (!fire) {
    outcome.rationale = common::format(
        "intent satisfied: expected reward {:.3f} vs recent avg {:.3f}",
        expected, average);
    return outcome;
  }

  const auto candidates = candidate_set(*previous);
  if (candidates.empty()) {
    // Line 13: previous action unknown to G -> forward a_t unchanged.
    outcome.rationale = "previous action not in G; forwarding agent action";
    return outcome;
  }
  outcome.triggered = true;

  // Score the candidate set Q per strategy.
  auto bitrate_of = [](const ActionNode& node) {
    double total = 0.0;
    for (std::size_t l = 0; l < netsim::kNumSlices; ++l) {
      total += node.attribute_mean(netsim::Kpi::kTxBitrate,
                                   static_cast<netsim::Slice>(l));
    }
    return total;
  };

  const ActionNode* best = nullptr;
  double best_score = 0.0;
  for (const ActionNode* candidate : candidates) {
    if (candidate->samples == 0) continue;
    double score = 0.0;
    switch (config_.strategy) {
      case SteeringStrategy::kMaxReward:
        score = reward_.from_node(*candidate);
        break;
      case SteeringStrategy::kMinReward:
        score = -reward_.from_node(*candidate);
        break;
      case SteeringStrategy::kImproveBitrate:
        score = bitrate_of(*candidate);
        break;
    }
    if (best == nullptr || score > best_score) {
      best = candidate;
      best_score = score;
    }
  }
  if (best == nullptr) {
    outcome.rationale = "no first-hop candidate with recorded consequences";
    return outcome;
  }
  ++suggestions_;
  outcome.suggested = true;

  // Procedure-specific improvement test (lines 16/21/27).
  bool improves = false;
  switch (config_.strategy) {
    case SteeringStrategy::kMaxReward:
      improves = reward_.from_node(*best) > expected;
      break;
    case SteeringStrategy::kMinReward:
      improves = reward_.from_node(*best) < expected;
      break;
    case SteeringStrategy::kImproveBitrate:
      improves = bitrate_of(*best) > bitrate_of(*proposed_node);
      break;
  }
  if (!improves || best->action == proposed) {
    outcome.rationale = common::format(
        "{}: best graph candidate {} does not beat the proposed action",
        to_string(config_.strategy), best->action.to_string());
    return outcome;
  }

  outcome.replaced = true;
  outcome.enforced = best->action;
  outcome.expected_reward_enforced = reward_.from_node(*best);
  ++replacements_;
  ++replaced_out_counts_[proposed];
  ++substituted_in_counts_[best->action];
  outcome.rationale = common::format(
      "{}: replaced {} (expected reward {:.3f} vs recent avg {:.3f}) with "
      "{} (expected reward {:.3f})",
      to_string(config_.strategy), proposed.to_string(), expected, average,
      best->action.to_string(), outcome.expected_reward_enforced);
  return outcome;
}

}  // namespace explora::core
