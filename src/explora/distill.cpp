#include "explora/distill.hpp"

#include <cmath>
#include <set>

#include "common/contracts.hpp"
#include "common/format.hpp"
#include "common/stats.hpp"

namespace explora::core {

std::string to_string(EffectMagnitude effect) {
  switch (effect) {
    case EffectMagnitude::kNoChange: return "no change in";
    case EffectMagnitude::kAugmentsLightly: return "augments lightly";
    case EffectMagnitude::kAugments: return "augments";
    case EffectMagnitude::kDiminishesLightly: return "diminishes lightly";
    case EffectMagnitude::kDiminishes: return "diminishes";
  }
  return "?";
}

KnowledgeDistiller::KnowledgeDistiller() : KnowledgeDistiller(Config{}) {}

KnowledgeDistiller::KnowledgeDistiller(Config config) : config_(config) {
  EXPLORA_EXPECTS(config.no_change_threshold >= 0.0);
  EXPLORA_EXPECTS(config.strong_threshold > config.no_change_threshold);
}

EffectMagnitude KnowledgeDistiller::classify_effect(
    double mean_delta, double standard_error) const {
  if (standard_error <= 0.0) return EffectMagnitude::kNoChange;
  const double ratio = mean_delta / standard_error;
  if (std::abs(ratio) < config_.no_change_threshold) {
    return EffectMagnitude::kNoChange;
  }
  if (ratio > 0.0) {
    return ratio >= config_.strong_threshold
               ? EffectMagnitude::kAugments
               : EffectMagnitude::kAugmentsLightly;
  }
  return -ratio >= config_.strong_threshold
             ? EffectMagnitude::kDiminishes
             : EffectMagnitude::kDiminishesLightly;
}

xai::Dataset build_transition_dataset(
    const std::vector<TransitionEvent>& events, bool include_js_features) {
  xai::Dataset data;
  data.features.reserve(events.size());
  data.labels.reserve(events.size());
  for (const auto& event : events) {
    xai::Vector row = event.delta;
    if (include_js_features) {
      row.insert(row.end(), event.js_divergence.begin(),
                 event.js_divergence.end());
    }
    data.features.push_back(std::move(row));
    data.labels.push_back(static_cast<std::size_t>(event.cls));
  }
  return data;
}

DistilledKnowledge KnowledgeDistiller::distill(
    const std::vector<TransitionEvent>& events) const {
  EXPLORA_EXPECTS(!events.empty());

  DistilledKnowledge out;
  out.feature_names =
      transition_feature_names(config_.include_js_features);
  out.class_names = transition_class_names();

  xai::Dataset data =
      build_transition_dataset(events, config_.include_js_features);

  std::set<std::size_t> distinct(data.labels.begin(), data.labels.end());
  if (distinct.size() >= 2) {
    out.tree = xai::DecisionTreeClassifier(config_.tree);
    out.tree.fit(data, kNumTransitionClasses);
    out.rules = out.tree.to_rules(out.feature_names, out.class_names);
    out.decision_paths =
        out.tree.decision_paths(out.feature_names, out.class_names);
    out.tree_accuracy = out.tree.accuracy(data);
  }

  // ---- per-class effect summaries (Tables 2/4) ----
  // Scale per KPI: std-dev of that KPI's aggregated delta over all events.
  std::array<common::RunningStats, netsim::kNumKpis> kpi_stats;
  for (const auto& event : events) {
    for (std::size_t k = 0; k < netsim::kNumKpis; ++k) {
      kpi_stats[k].add(event.kpi_delta(static_cast<netsim::Kpi>(k)));
    }
  }

  std::array<common::RunningStats, kNumTransitionClasses * netsim::kNumKpis>
      class_kpi_stats;
  std::array<std::size_t, kNumTransitionClasses> counts{};
  for (const auto& event : events) {
    const auto c = static_cast<std::size_t>(event.cls);
    ++counts[c];
    for (std::size_t k = 0; k < netsim::kNumKpis; ++k) {
      class_kpi_stats[c * netsim::kNumKpis + k].add(
          event.kpi_delta(static_cast<netsim::Kpi>(k)));
    }
  }

  out.summary_text =
      "Summary of explanations (per transition class):\n";
  for (std::size_t c = 0; c < kNumTransitionClasses; ++c) {
    ClassSummary& summary = out.summaries[c];
    summary.cls = static_cast<TransitionClass>(c);
    summary.count = counts[c];
    summary.share =
        static_cast<double>(counts[c]) / static_cast<double>(events.size());
    std::string effects;
    for (std::size_t k = 0; k < netsim::kNumKpis; ++k) {
      const auto& stats = class_kpi_stats[c * netsim::kNumKpis + k];
      const double mean = stats.mean();
      summary.mean_kpi_delta[k] = mean;
      // Standard error of the class mean, with the across-class KPI noise
      // as the variance estimate (robust for small classes).
      const double standard_error =
          stats.count() > 0
              ? kpi_stats[k].stddev() /
                    std::sqrt(static_cast<double>(stats.count()))
              : 0.0;
      summary.effect[k] = classify_effect(mean, standard_error);
      if (!effects.empty()) effects += ", ";
      effects += common::format(
          "{} {}", to_string(summary.effect[k]),
          netsim::to_string(static_cast<netsim::Kpi>(k)));
    }
    if (counts[c] == 0) {
      summary.interpretation = common::format(
          "{}: never observed in this run", to_string(summary.cls));
    } else {
      summary.interpretation = common::format(
          "{} ({:.0f}% of transitions): {}", to_string(summary.cls),
          summary.share * 100.0, effects);
    }
    out.summary_text += "  " + summary.interpretation + "\n";
  }
  return out;
}

}  // namespace explora::core
