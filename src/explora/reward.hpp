// The reward function of Eq. (1): a weighted sum of each slice's target
// KPI, with the paper's two agent profiles — High-Throughput (HT)
// prioritizes the eMBB bitrate contribution, Low-Latency (LL) prioritizes
// minimizing the URLLC downlink buffer.
#pragma once

#include <span>
#include <string>

#include "netsim/kpi.hpp"
#include "netsim/types.hpp"

namespace explora::core {

struct ActionNode;  // graph.hpp

/// The target KPI kappa(s) per slice (§3.1): eMBB -> tx_bitrate,
/// mMTC -> tx_packets, URLLC -> DWL_buffer_size.
[[nodiscard]] netsim::Kpi target_kpi(netsim::Slice slice) noexcept;

/// Per-slice weights w_l. Units fold in KPI scale: bitrate is in Mbit/s,
/// packets in packets/window, buffer in bytes, so the weights normalize
/// them to comparable magnitudes. The URLLC weight is negative (buffer
/// occupancy is a latency proxy to be minimized).
struct RewardWeights {
  netsim::PerSlice<double> w{};

  /// HT: eMBB bitrate dominates.
  [[nodiscard]] static RewardWeights high_throughput() noexcept;
  /// LL: URLLC buffer dominates.
  [[nodiscard]] static RewardWeights low_latency() noexcept;
};

enum class AgentProfile : std::uint8_t { kHighThroughput = 0, kLowLatency = 1 };

[[nodiscard]] std::string to_string(AgentProfile profile);
[[nodiscard]] RewardWeights weights_for(AgentProfile profile) noexcept;

/// Evaluates Eq. (1) against different KPI sources.
class RewardModel {
 public:
  explicit RewardModel(RewardWeights weights) noexcept;

  [[nodiscard]] const RewardWeights& weights() const noexcept {
    return weights_;
  }

  /// Reward of a single KPI report.
  [[nodiscard]] double from_report(const netsim::KpiReport& report) const;
  /// Mean reward across a window of reports (the per-decision reward).
  [[nodiscard]] double from_window(
      std::span<const netsim::KpiReport> window) const;
  /// Expected reward of an action from its graph attributes (§5.2:
  /// "instantaneous KPIs replaced with average values from b(a)").
  [[nodiscard]] double from_node(const ActionNode& node) const;

 private:
  RewardWeights weights_;
};

}  // namespace explora::core
