#include "explora/xapp.hpp"

#include "common/contracts.hpp"
#include "common/log.hpp"

namespace explora::core {

ExploraXapp::ExploraXapp(Config config, oran::RmrRouter& router,
                         oran::DataRepository* repository)
    : config_(std::move(config)),
      router_(&router),
      repository_(repository),
      reward_(config_.reward_weights),
      graph_(config_.graph) {
  EXPLORA_EXPECTS(config_.reports_per_decision > 0);
  EXPLORA_EXPECTS(config_.expected_report_period >= 0);
  if (config_.steering.has_value()) {
    steering_.emplace(graph_, reward_, *config_.steering);
  }
  if (config_.shield.has_value()) {
    shield_ = config_.shield;
  }
  if (config_.reliable.has_value()) {
    reliable_.emplace(*config_.reliable, router, config_.name);
  }
  report_period_ = config_.expected_report_period;

  // Unified degradation ladder: the staleness watchdog is its gap/clean
  // axis; recovery needs the same clean streak the old watchdog required.
  // Load/breaker tier movements (driven by an ExplainService sharing this
  // ladder) are archived here as demote/promote DegradationRecords, so
  // the repository holds ONE degradation history for the whole xApp.
  // Stale enter/recover records are archived by enter_degraded /
  // exit_degraded themselves (they carry gap measurements the ladder
  // does not know), so those triggers are skipped here.
  xai::serving::LadderConfig ladder_config;
  ladder_config.recovery_clean_reports = recovery_target();
  ladder_ = xai::serving::DegradationLadder(ladder_config);
  ladder_.set_transition_hook(
      [this](const xai::serving::DegradationLadder::Transition& t) {
        using Trigger = xai::serving::DegradationLadder::Trigger;
        if (t.trigger != Trigger::kLoad && t.trigger != Trigger::kBreaker) {
          return;
        }
        if (repository_ == nullptr) return;
        const bool demote = t.to > t.from;
        repository_->store_degradation(oran::DegradationRecord{
            .phase = demote ? oran::DegradationRecord::Phase::kDemote
                            : oran::DegradationRecord::Phase::kPromote,
            .detected_at = t.at,
            .missed_windows = 0,
            .tier_from = static_cast<std::uint8_t>(t.from),
            .tier_to = static_cast<std::uint8_t>(t.to),
            .detail = common::format(
                "serving tier {} -> {} ({})", to_string(t.from),
                to_string(t.to), to_string(t.trigger)),
        });
      });

  telemetry::Scope scope("explora.xapp");
  tm_indications_ = &scope.counter("indications");
  tm_controls_seen_ = &scope.counter("controls_seen");
  tm_controls_replaced_ = &scope.counter("controls_replaced");
  tm_windows_finalized_ = &scope.counter("windows_finalized");
  tm_reports_discarded_ = &scope.counter("reports_discarded");
  tm_degraded_episodes_ = &scope.counter("degraded_episodes");
  tm_degraded_ticks_ = &scope.span("degraded_ticks");
}

const ActionShield& ExploraXapp::shield() const {
  EXPLORA_EXPECTS(shield_.has_value());
  return *shield_;
}

const ActionSteering& ExploraXapp::steering() const {
  EXPLORA_EXPECTS(steering_.has_value());
  return *steering_;
}

void ExploraXapp::on_a1_policy(const oran::A1Policy& policy) {
  ++a1_policies_applied_;
  common::logf(common::LogLevel::kInfo, "explora-xapp",
               "A1 policy {}: intent {}", policy.policy_id,
               oran::to_string(policy.intent));
  if (policy.intent == oran::A1Intent::kObserveOnly) {
    steering_.reset();
    return;
  }
  ActionSteering::Config config;
  config.observation_window = policy.observation_window;
  switch (policy.intent) {
    case oran::A1Intent::kMaxReward:
      config.strategy = SteeringStrategy::kMaxReward;
      break;
    case oran::A1Intent::kMinReward:
      config.strategy = SteeringStrategy::kMinReward;
      break;
    case oran::A1Intent::kImproveBitrate:
      config.strategy = SteeringStrategy::kImproveBitrate;
      break;
    case oran::A1Intent::kObserveOnly:
      break;  // handled above
  }
  steering_.emplace(graph_, reward_, config);
}

void ExploraXapp::on_message(const oran::RicMessage& message) {
  switch (message.type) {
    case oran::MessageType::kKpmIndication: {
      // Each indication is one reliable-delivery tick for the downstream
      // hop: overdue unACKed forwards are resent at window cadence.
      if (reliable_.has_value()) reliable_->on_tick();
      const netsim::KpiReport& report = message.kpm().report;
      tm_indications_->add(1);
      observe_indication_timing(report);
      if (ladder_.stale()) {
        // Quarantine: count clean in-sequence reports, feed nothing to the
        // graph or the transition tracker until a full clean window passed.
        // (The report that revealed a gap already went through record_gap,
        // so it counts as clean streak 1 — same semantics as before the
        // ladder unification.)
        if (!ladder_.record_clean(report.window_end)) return;
        exit_degraded(report.window_end);  // resume with this report
      }
      if (!current_action_.has_value()) return;  // nothing enforced yet
      // b(a): the consequence of the enforced action on the future state.
      graph_.record_consequence(report);
      pending_window_.push_back(report);
      if (pending_window_.size() >= config_.reports_per_decision) {
        finalize_decision_window();
      }
      return;
    }
    case oran::MessageType::kRanControlAck: {
      if (reliable_.has_value()) {
        reliable_->on_ack(message.control_ack().seq);
      }
      return;
    }
    case oran::MessageType::kRanControl: {
      const oran::RanControl& ran_control = message.ran_control();
      if (ran_control.seq > 0) {
        // Per-hop reliability: confirm receipt to the upstream sender and
        // process each (sender, seq) exactly once — a retransmission whose
        // original arrived is re-ACKed (its ACK may have been lost) but
        // never re-steered, re-archived or re-forwarded.
        const bool first_time =
            seen_upstream_seqs_.emplace(message.sender, ran_control.seq)
                .second;
        router_->send(
            oran::make_ran_control_ack(config_.name, ran_control.seq));
        if (!first_time) {
          ++duplicate_controls_ignored_;
          return;
        }
      }
      ++controls_seen_;
      tm_controls_seen_->add(1);
      const netsim::SlicingControl proposed = ran_control.control;

      // Close the still-open window of the previous action (the agent may
      // decide on a different cadence than our window bookkeeping).
      if (!pending_window_.empty()) finalize_decision_window();

      netsim::SlicingControl enforced = proposed;
      std::string rationale = "forwarded unchanged (steering disabled)";
      bool replaced = false;
      if (ladder_.stale()) {
        // Telemetry is stale: steering would reason over gapped evidence,
        // so fall back to hold-last-safe or shield-only forwarding.
        if (config_.degraded_hold_last && last_safe_action_.has_value()) {
          enforced = *last_safe_action_;
          replaced = enforced != proposed;
          rationale = common::format(
              "degraded mode: holding last safe action {}",
              enforced.to_string());
        } else {
          rationale = "degraded mode: shield-only forwarding";
        }
        if (shield_.has_value()) {
          ShieldOutcome shielded = shield_->apply(enforced);
          if (shielded.blocked) {
            enforced = shielded.enforced;
            replaced = true;
            rationale = "degraded mode: " + shielded.rationale;
          }
        }
      } else {
        // Opt 2 first: the shield is a hard constraint; whatever it
        // enforces is what steering (Opt 1) then reasons about.
        if (shield_.has_value()) {
          ShieldOutcome shielded = shield_->apply(enforced);
          if (shielded.blocked) {
            enforced = shielded.enforced;
            replaced = true;
            rationale = std::move(shielded.rationale);
          }
        }
        if (steering_.has_value()) {
          SteeringOutcome outcome =
              steering_->steer(enforced, current_action_);
          if (outcome.replaced || !replaced) {
            rationale = std::move(outcome.rationale);
          }
          enforced = outcome.enforced;
          replaced = replaced || outcome.replaced;
        }
      }
      if (replaced) {
        ++controls_replaced_;
        tm_controls_replaced_->add(1);
      }

      // Node visits and temporal edges track genuinely enforced actions
      // even while degraded; only KPI attribution and transition windows
      // freeze (they would ingest gapped data).
      graph_.begin_action(enforced);
      current_action_ = enforced;
      if (!ladder_.stale()) last_safe_action_ = enforced;

      if (repository_ != nullptr) {
        repository_->store_explanation(oran::ExplanationRecord{
            .decision_id = ran_control.decision_id,
            .proposed = proposed,
            .enforced = enforced,
            .replaced = replaced,
            .explanation = rationale,
        });
      }
      if (reliable_.has_value()) {
        reliable_->send(enforced, ran_control.decision_id);
      } else {
        router_->send(oran::make_ran_control(config_.name, enforced,
                                             ran_control.decision_id));
      }
      return;
    }
  }
}

void ExploraXapp::observe_indication_timing(const netsim::KpiReport& report) {
  const netsim::Tick window_end = report.window_end;
  std::uint64_t missed = 0;
  if (last_window_end_.has_value()) {
    const netsim::Tick gap = window_end - *last_window_end_;
    if (report_period_ <= 0) {
      // First spacing observed fixes the expected cadence.
      report_period_ = gap > 0 ? gap : 0;
    } else if (gap > report_period_) {
      missed = static_cast<std::uint64_t>((gap - 1) / report_period_);
    }
  }
  last_window_end_ = window_end;
  if (missed > 0) enter_degraded(window_end, missed);
}

void ExploraXapp::enter_degraded(netsim::Tick detected_at,
                                 std::uint64_t missed) {
  indications_missed_ += missed;
  reports_discarded_ += pending_window_.size();
  tm_reports_discarded_->add(pending_window_.size());
  pending_window_.clear();  // never build transitions from a gapped window
  const bool was_stale = ladder_.stale();
  ladder_.record_gap(detected_at);  // a repeat gap restarts the quarantine
  if (was_stale) return;
  ++degradation_events_;
  tm_degraded_episodes_->add(1);
  degraded_entered_at_ = detected_at;
  common::logf(common::LogLevel::kWarn, "explora-xapp",
               "KPM stream gap at tick {} (~{} indication(s) missed): "
               "entering degraded mode",
               detected_at, missed);
  if (repository_ != nullptr) {
    repository_->store_degradation(oran::DegradationRecord{
        .phase = oran::DegradationRecord::Phase::kEnter,
        .detected_at = detected_at,
        .missed_windows = missed,
        .detail = common::format(
            "KPM indication gap; freezing graph/transition updates, "
            "{} forwarding",
            config_.degraded_hold_last ? "hold-last-safe"
                                       : "shield-only"),
    });
  }
}

void ExploraXapp::exit_degraded(netsim::Tick detected_at) {
  // The ladder already cleared its stale bit (record_clean completed the
  // streak); this hook only archives/logs the recovery.
  tm_degraded_ticks_->record(detected_at - degraded_entered_at_);
  common::logf(common::LogLevel::kInfo, "explora-xapp",
               "KPM stream recovered at tick {}: leaving degraded mode",
               detected_at);
  if (repository_ != nullptr) {
    repository_->store_degradation(oran::DegradationRecord{
        .phase = oran::DegradationRecord::Phase::kRecover,
        .detected_at = detected_at,
        .missed_windows = 0,
        .detail = common::format("{} consecutive in-sequence indications",
                                 recovery_target()),
    });
  }
}

void ExploraXapp::finalize_decision_window() {
  EXPLORA_EXPECTS(current_action_.has_value());
  EXPLORA_EXPECTS(!pending_window_.empty());
  tracker_.record_step(*current_action_, pending_window_);
  if (steering_.has_value()) {
    steering_->push_measured_reward(reward_.from_window(pending_window_));
  }
  pending_window_.clear();
  tm_windows_finalized_->add(1);
}

DistilledKnowledge ExploraXapp::explain(
    KnowledgeDistiller::Config distiller) const {
  EXPLORA_EXPECTS(!tracker_.events().empty());
  return KnowledgeDistiller(distiller).distill(tracker_.events());
}

}  // namespace explora::core
