#include "explora/xapp.hpp"

#include "common/contracts.hpp"
#include "common/log.hpp"

namespace explora::core {

ExploraXapp::ExploraXapp(Config config, oran::RmrRouter& router,
                         oran::DataRepository* repository)
    : config_(std::move(config)),
      router_(&router),
      repository_(repository),
      reward_(config_.reward_weights),
      graph_(config_.graph) {
  EXPLORA_EXPECTS(config_.reports_per_decision > 0);
  if (config_.steering.has_value()) {
    steering_.emplace(graph_, reward_, *config_.steering);
  }
  if (config_.shield.has_value()) {
    shield_ = config_.shield;
  }
}

const ActionShield& ExploraXapp::shield() const {
  EXPLORA_EXPECTS(shield_.has_value());
  return *shield_;
}

const ActionSteering& ExploraXapp::steering() const {
  EXPLORA_EXPECTS(steering_.has_value());
  return *steering_;
}

void ExploraXapp::on_a1_policy(const oran::A1Policy& policy) {
  ++a1_policies_applied_;
  common::logf(common::LogLevel::kInfo, "explora-xapp",
               "A1 policy {}: intent {}", policy.policy_id,
               oran::to_string(policy.intent));
  if (policy.intent == oran::A1Intent::kObserveOnly) {
    steering_.reset();
    return;
  }
  ActionSteering::Config config;
  config.observation_window = policy.observation_window;
  switch (policy.intent) {
    case oran::A1Intent::kMaxReward:
      config.strategy = SteeringStrategy::kMaxReward;
      break;
    case oran::A1Intent::kMinReward:
      config.strategy = SteeringStrategy::kMinReward;
      break;
    case oran::A1Intent::kImproveBitrate:
      config.strategy = SteeringStrategy::kImproveBitrate;
      break;
    case oran::A1Intent::kObserveOnly:
      break;  // handled above
  }
  steering_.emplace(graph_, reward_, config);
}

void ExploraXapp::on_message(const oran::RicMessage& message) {
  switch (message.type) {
    case oran::MessageType::kKpmIndication: {
      if (!current_action_.has_value()) return;  // nothing enforced yet
      const netsim::KpiReport& report = message.kpm().report;
      // b(a): the consequence of the enforced action on the future state.
      graph_.record_consequence(report);
      pending_window_.push_back(report);
      if (pending_window_.size() >= config_.reports_per_decision) {
        finalize_decision_window();
      }
      return;
    }
    case oran::MessageType::kRanControl: {
      ++controls_seen_;
      const netsim::SlicingControl proposed =
          message.ran_control().control;

      // Close the still-open window of the previous action (the agent may
      // decide on a different cadence than our window bookkeeping).
      if (!pending_window_.empty()) finalize_decision_window();

      netsim::SlicingControl enforced = proposed;
      std::string rationale = "forwarded unchanged (steering disabled)";
      bool replaced = false;
      // Opt 2 first: the shield is a hard constraint; whatever it enforces
      // is what steering (Opt 1) then reasons about.
      if (shield_.has_value()) {
        ShieldOutcome shielded = shield_->apply(enforced);
        if (shielded.blocked) {
          enforced = shielded.enforced;
          replaced = true;
          rationale = std::move(shielded.rationale);
        }
      }
      if (steering_.has_value()) {
        SteeringOutcome outcome =
            steering_->steer(enforced, current_action_);
        if (outcome.replaced || !replaced) {
          rationale = std::move(outcome.rationale);
        }
        enforced = outcome.enforced;
        replaced = replaced || outcome.replaced;
      }
      if (replaced) ++controls_replaced_;

      graph_.begin_action(enforced);
      current_action_ = enforced;

      if (repository_ != nullptr) {
        repository_->store_explanation(oran::ExplanationRecord{
            .decision_id = message.ran_control().decision_id,
            .proposed = proposed,
            .enforced = enforced,
            .replaced = replaced,
            .explanation = rationale,
        });
      }
      router_->send(oran::make_ran_control(config_.name, enforced,
                                           message.ran_control().decision_id));
      return;
    }
  }
}

void ExploraXapp::finalize_decision_window() {
  EXPLORA_EXPECTS(current_action_.has_value());
  EXPLORA_EXPECTS(!pending_window_.empty());
  tracker_.record_step(*current_action_, pending_window_);
  if (steering_.has_value()) {
    steering_->push_measured_reward(reward_.from_window(pending_window_));
  }
  pending_window_.clear();
}

DistilledKnowledge ExploraXapp::explain(
    KnowledgeDistiller::Config distiller) const {
  EXPLORA_EXPECTS(!tracker_.events().empty());
  return KnowledgeDistiller(distiller).distill(tracker_.events());
}

}  // namespace explora::core
