// The attributed graph G = (N, E, B) at the heart of EXPLORA (§4.1-4.2):
//   - nodes N: multi-modal actions (SlicingControl) taken by the agent,
//   - attributes B: per-(KPI, slice) distributions of the network state
//     observed *after* the action was enforced (its consequence),
//   - edges E: temporal transitions between subsequently enforced actions,
//     with occurrence counts.
// This re-establishes the input-output link the autoencoder breaks
// (Challenge 1), encodes the memory of the decision process in the edge
// structure (Challenge 2), and keeps each mode of the multi-modal action
// inspectable (Challenge 3).
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <unordered_map>
#include <vector>

#include "common/stats.hpp"
#include "netsim/kpi.hpp"
#include "netsim/types.hpp"

namespace explora::core {

/// Attribute count P = K x L (one distribution per KPI per slice).
inline constexpr std::size_t kNumAttributes =
    netsim::kNumKpis * netsim::kNumSlices;

/// Flat attribute index for (kpi, slice).
[[nodiscard]] constexpr std::size_t attribute_index(
    netsim::Kpi kpi, netsim::Slice slice) noexcept {
  return static_cast<std::size_t>(kpi) * netsim::kNumSlices +
         static_cast<std::size_t>(slice);
}

/// Human-readable attribute name, e.g. "tx_bitrate[eMBB]".
[[nodiscard]] std::string attribute_name(std::size_t attribute);

/// One node: an action and the empirical distribution of its consequences.
struct ActionNode {
  netsim::SlicingControl action;
  /// Slice-aggregate KPI distributions (reward estimation, JS comparison).
  std::vector<common::SampleStore> attributes;  ///< size kNumAttributes
  /// Per-user KPI distributions — the paper's Appendix-B attribute form
  /// ("SL0 [225, 234]"): every UE's value enters as an individual sample.
  std::vector<common::SampleStore> user_attributes;  ///< size kNumAttributes
  std::uint64_t visits = 0;      ///< times the action was enforced
  std::uint64_t samples = 0;     ///< KPI reports recorded under the action

  /// Mean of one slice-aggregate attribute's distribution (0 when empty).
  [[nodiscard]] double attribute_mean(netsim::Kpi kpi,
                                      netsim::Slice slice) const;
  /// Mean per-user value of one attribute (0 when empty).
  [[nodiscard]] double user_attribute_mean(netsim::Kpi kpi,
                                           netsim::Slice slice) const;
};

class AttributedGraph {
 public:
  struct Config {
    std::size_t attribute_capacity = 256;  ///< reservoir size per attribute
    std::uint64_t seed = 97;
  };

  AttributedGraph();
  explicit AttributedGraph(Config config);

  /// Registers that `action` was enforced; creates its node when new,
  /// increments visits, and records the temporal edge from the previously
  /// enforced action (including self-edges for repeated actions).
  void begin_action(const netsim::SlicingControl& action);

  /// Records one post-action KPI report into the current action's
  /// attributes. Requires at least one begin_action() call.
  void record_consequence(const netsim::KpiReport& report);

  /// Resets the temporal linkage without clearing knowledge (e.g. across
  /// episode boundaries), so no spurious edge is created.
  void break_temporal_link() noexcept;

  // --- queries -----------------------------------------------------------
  [[nodiscard]] std::size_t node_count() const noexcept {
    return nodes_.size();
  }
  [[nodiscard]] std::size_t edge_count() const noexcept {
    return edges_.size();
  }
  [[nodiscard]] std::uint64_t total_transitions() const noexcept {
    return total_transitions_;
  }
  [[nodiscard]] bool contains(const netsim::SlicingControl& action) const;
  /// Node for an action; nullptr when the action was never observed.
  [[nodiscard]] const ActionNode* find(
      const netsim::SlicingControl& action) const;
  [[nodiscard]] const std::vector<ActionNode>& nodes() const noexcept {
    return nodes_;
  }
  /// First-hop out-neighbours of an action's node (indices into nodes()).
  /// Empty when the action is unknown.
  [[nodiscard]] std::vector<std::size_t> neighbors(
      const netsim::SlicingControl& action) const;
  [[nodiscard]] const ActionNode& node(std::size_t index) const;
  /// Count of observed transitions a -> b (0 when never seen).
  [[nodiscard]] std::uint64_t edge_visits(
      const netsim::SlicingControl& from,
      const netsim::SlicingControl& to) const;
  /// All edges as (from_index, to_index, count).
  [[nodiscard]] std::vector<std::tuple<std::size_t, std::size_t,
                                       std::uint64_t>> edges() const;

  /// Multi-line structural summary (node/edge counts, top actions).
  [[nodiscard]] std::string describe(std::size_t top_n = 8) const;

  /// GraphViz (dot) rendering of the graph (the paper's Fig. 12 artwork):
  /// node size annotation = visit count, edge label = transition count.
  /// Nodes with fewer than `min_visits` visits are elided to keep large
  /// graphs readable.
  [[nodiscard]] std::string to_dot(std::uint64_t min_visits = 1) const;

 private:
  [[nodiscard]] std::size_t find_or_create(
      const netsim::SlicingControl& action);

  Config config_;
  std::vector<ActionNode> nodes_;
  std::unordered_map<netsim::SlicingControl, std::size_t,
                     netsim::SlicingControlHash> index_;
  /// Edge key: from * kEdgeStride + to (node indices).
  std::unordered_map<std::uint64_t, std::uint64_t> edges_;
  std::vector<std::vector<std::size_t>> adjacency_;  ///< out-neighbours
  std::optional<std::size_t> current_node_;
  std::uint64_t total_transitions_ = 0;
  std::uint64_t next_attribute_seed_ = 1;
};

}  // namespace explora::core
