#include "explora/transitions.hpp"

#include "common/contracts.hpp"
#include "common/format.hpp"
#include "common/stats.hpp"

namespace explora::core {

std::string to_string(TransitionClass cls) {
  switch (cls) {
    case TransitionClass::kSelf: return "Self";
    case TransitionClass::kSamePrb: return "Same-PRB";
    case TransitionClass::kSameSched: return "Same-Sched";
    case TransitionClass::kDistinct: return "Distinct";
  }
  return "?";
}

TransitionClass classify_transition(const netsim::SlicingControl& from,
                                    const netsim::SlicingControl& to) {
  const bool same_prb = from.prbs == to.prbs;
  const bool same_sched = from.scheduling == to.scheduling;
  if (same_prb && same_sched) return TransitionClass::kSelf;
  if (same_prb) return TransitionClass::kSamePrb;
  if (same_sched) return TransitionClass::kSameSched;
  return TransitionClass::kDistinct;
}

double TransitionEvent::kpi_delta(netsim::Kpi kpi) const {
  double sum = 0.0;
  for (std::size_t l = 0; l < netsim::kNumSlices; ++l) {
    sum += delta[attribute_index(kpi, static_cast<netsim::Slice>(l))];
  }
  return sum;
}

TransitionTracker::StepSnapshot TransitionTracker::snapshot(
    const netsim::SlicingControl& action,
    const std::vector<netsim::KpiReport>& window) {
  EXPLORA_EXPECTS(!window.empty());
  StepSnapshot snap;
  snap.action = action;
  snap.samples.assign(kNumAttributes, {});
  for (std::size_t p = 0; p < kNumAttributes; ++p) {
    snap.samples[p].reserve(window.size());
  }
  for (const auto& report : window) {
    for (std::size_t k = 0; k < netsim::kNumKpis; ++k) {
      for (std::size_t l = 0; l < netsim::kNumSlices; ++l) {
        const auto kpi = static_cast<netsim::Kpi>(k);
        const auto slice = static_cast<netsim::Slice>(l);
        snap.samples[attribute_index(kpi, slice)].push_back(
            report.value(kpi, slice));
      }
    }
  }
  for (std::size_t p = 0; p < kNumAttributes; ++p) {
    double sum = 0.0;
    for (double v : snap.samples[p]) sum += v;
    snap.means[p] = sum / static_cast<double>(snap.samples[p].size());
  }
  return snap;
}

void TransitionTracker::record_step(
    const netsim::SlicingControl& action,
    const std::vector<netsim::KpiReport>& window) {
  StepSnapshot current = snapshot(action, window);
  if (has_previous_) {
    TransitionEvent event;
    event.from = previous_.action;
    event.to = current.action;
    event.cls = classify_transition(event.from, event.to);
    event.delta.resize(kNumAttributes);
    event.js_divergence.resize(kNumAttributes);
    for (std::size_t p = 0; p < kNumAttributes; ++p) {
      event.delta[p] = current.means[p] - previous_.means[p];
      event.js_divergence[p] = common::jensen_shannon_divergence(
          previous_.samples[p], current.samples[p]);
    }
    events_.push_back(std::move(event));
  }
  previous_ = std::move(current);
  has_previous_ = true;
}

void TransitionTracker::reset_link() noexcept { has_previous_ = false; }

std::array<double, kNumTransitionClasses> TransitionTracker::class_shares()
    const {
  std::array<double, kNumTransitionClasses> shares{};
  if (events_.empty()) return shares;
  for (const auto& event : events_) {
    shares[static_cast<std::size_t>(event.cls)] += 1.0;
  }
  for (double& s : shares) s /= static_cast<double>(events_.size());
  return shares;
}

std::vector<std::string> transition_feature_names(bool include_js) {
  std::vector<std::string> names;
  names.reserve(include_js ? 2 * kNumAttributes : kNumAttributes);
  for (std::size_t p = 0; p < kNumAttributes; ++p) {
    names.push_back(common::format("d_{}", attribute_name(p)));
  }
  if (include_js) {
    for (std::size_t p = 0; p < kNumAttributes; ++p) {
      names.push_back(common::format("js_{}", attribute_name(p)));
    }
  }
  return names;
}

std::vector<std::string> transition_class_names() {
  std::vector<std::string> names;
  names.reserve(kNumTransitionClasses);
  for (std::size_t c = 0; c < kNumTransitionClasses; ++c) {
    names.push_back(to_string(static_cast<TransitionClass>(c)));
  }
  return names;
}

}  // namespace explora::core
