// The EXPLORA xApp (§5.1, Fig. 6): a standalone xApp interposed on the
// RAN-control route. It watches E2 KPM indications to build the attributed
// graph online (module 1, XAI) and optionally steers the DRL agent's
// proposed actions per Algorithm 1 (module 2, EDBR) before forwarding them
// to the E2 termination. Every decision is archived as a
// (state, action, explanation) record in the RIC data repository.
#pragma once

#include <cstdint>
#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "explora/distill.hpp"
#include "explora/edbr.hpp"
#include "explora/graph.hpp"
#include "explora/reward.hpp"
#include "explora/shield.hpp"
#include "explora/transitions.hpp"
#include "oran/a1.hpp"
#include "oran/data_repository.hpp"
#include "oran/rmr.hpp"

namespace explora::core {

class ExploraXapp final : public oran::RmrEndpoint,
                          public oran::A1PolicyConsumer {
 public:
  struct Config {
    std::string name = "explora_xapp";
    /// KPM indications forming one decision window (M in the paper).
    std::size_t reports_per_decision = 10;
    AttributedGraph::Config graph{};
    RewardWeights reward_weights = RewardWeights::high_throughput();
    /// Enables EDBR steering; without it the xApp observes and explains
    /// but always forwards the agent's action unchanged.
    std::optional<ActionSteering::Config> steering;
    /// Optional action shield (the paper's Opt 2): applied *before*
    /// steering, unconditionally blocking rule-violating proposals.
    std::optional<ActionShield> shield;
  };

  /// @param router used to forward (possibly substituted) controls.
  /// @param repository archive for explanation records; may be null.
  ExploraXapp(Config config, oran::RmrRouter& router,
              oran::DataRepository* repository);

  [[nodiscard]] std::string_view endpoint_name() const noexcept override {
    return config_.name;
  }
  void on_message(const oran::RicMessage& message) override;

  /// A1 policy guidance from the non-RT RIC: switches the EDBR intent at
  /// runtime. Graph knowledge is retained; steering statistics restart
  /// with the new policy (they describe the policy's own behaviour).
  void on_a1_policy(const oran::A1Policy& policy) override;
  [[nodiscard]] std::uint64_t a1_policies_applied() const noexcept {
    return a1_policies_applied_;
  }

  // --- XAI module access --------------------------------------------------
  [[nodiscard]] const AttributedGraph& graph() const noexcept {
    return graph_;
  }
  [[nodiscard]] const TransitionTracker& tracker() const noexcept {
    return tracker_;
  }
  /// Synthesizes the post-hoc explanations (DT + Table 2/4 summaries) from
  /// the transitions observed so far.
  [[nodiscard]] DistilledKnowledge explain(
      KnowledgeDistiller::Config distiller = {}) const;

  // --- EDBR access ----------------------------------------------------------
  [[nodiscard]] bool steering_enabled() const noexcept {
    return steering_.has_value();
  }
  [[nodiscard]] const ActionSteering& steering() const;
  [[nodiscard]] std::uint64_t controls_seen() const noexcept {
    return controls_seen_;
  }
  [[nodiscard]] std::uint64_t controls_replaced() const noexcept {
    return controls_replaced_;
  }
  [[nodiscard]] bool shield_enabled() const noexcept {
    return shield_.has_value();
  }
  [[nodiscard]] const ActionShield& shield() const;
  [[nodiscard]] const RewardModel& reward_model() const noexcept {
    return reward_;
  }

 private:
  void finalize_decision_window();

  Config config_;
  oran::RmrRouter* router_;
  oran::DataRepository* repository_;
  RewardModel reward_;
  AttributedGraph graph_;
  TransitionTracker tracker_;
  std::optional<ActionSteering> steering_;
  std::optional<ActionShield> shield_;

  std::optional<netsim::SlicingControl> current_action_;
  std::vector<netsim::KpiReport> pending_window_;
  std::uint64_t controls_seen_ = 0;
  std::uint64_t controls_replaced_ = 0;
  std::uint64_t a1_policies_applied_ = 0;
};

}  // namespace explora::core
