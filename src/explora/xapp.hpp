// The EXPLORA xApp (§5.1, Fig. 6): a standalone xApp interposed on the
// RAN-control route. It watches E2 KPM indications to build the attributed
// graph online (module 1, XAI) and optionally steers the DRL agent's
// proposed actions per Algorithm 1 (module 2, EDBR) before forwarding them
// to the E2 termination. Every decision is archived as a
// (state, action, explanation) record in the RIC data repository.
#pragma once

#include <cstdint>
#include <memory>
#include <optional>
#include <set>
#include <string>
#include <utility>
#include <vector>

#include "explora/distill.hpp"
#include "explora/edbr.hpp"
#include "explora/graph.hpp"
#include "explora/reward.hpp"
#include "explora/shield.hpp"
#include "explora/transitions.hpp"
#include "oran/a1.hpp"
#include "oran/data_repository.hpp"
#include "oran/reliable.hpp"
#include "oran/rmr.hpp"
#include "xai/serving.hpp"

namespace explora::core {

class ExploraXapp final : public oran::RmrEndpoint,
                          public oran::A1PolicyConsumer {
 public:
  struct Config {
    std::string name = "explora_xapp";
    /// KPM indications forming one decision window (M in the paper).
    std::size_t reports_per_decision = 10;
    AttributedGraph::Config graph{};
    RewardWeights reward_weights = RewardWeights::high_throughput();
    /// Enables EDBR steering; without it the xApp observes and explains
    /// but always forwards the agent's action unchanged.
    std::optional<ActionSteering::Config> steering;
    /// Optional action shield (the paper's Opt 2): applied *before*
    /// steering, unconditionally blocking rule-violating proposals.
    std::optional<ActionShield> shield;

    // --- resilience (fault-injected deployments) -------------------------
    /// Reliable forwarding of enforced controls to the E2 termination
    /// (seq + ACK + retry); unset keeps fire-and-forget forwarding.
    std::optional<oran::ReliableControlSender::Config> reliable;
    /// Expected KPM indication spacing in TTIs (the gNB report period).
    /// 0 = infer from the first two indications.
    netsim::Tick expected_report_period = 0;
    /// Consecutive in-sequence indications required to exit degraded
    /// mode; 0 = reports_per_decision (one full clean window).
    std::size_t recovery_reports = 0;
    /// Degraded-mode forwarding policy: false = shield-only (forward the
    /// agent's proposal through the shield, skip steering), true = hold
    /// the last action enforced while the telemetry stream was healthy.
    bool degraded_hold_last = false;
  };

  /// @param router used to forward (possibly substituted) controls.
  /// @param repository archive for explanation records; may be null.
  ExploraXapp(Config config, oran::RmrRouter& router,
              oran::DataRepository* repository);

  [[nodiscard]] std::string_view endpoint_name() const noexcept override {
    return config_.name;
  }
  void on_message(const oran::RicMessage& message) override;

  /// A1 policy guidance from the non-RT RIC: switches the EDBR intent at
  /// runtime. Graph knowledge is retained; steering statistics restart
  /// with the new policy (they describe the policy's own behaviour).
  void on_a1_policy(const oran::A1Policy& policy) override;
  [[nodiscard]] std::uint64_t a1_policies_applied() const noexcept {
    return a1_policies_applied_;
  }

  // --- XAI module access --------------------------------------------------
  [[nodiscard]] const AttributedGraph& graph() const noexcept {
    return graph_;
  }
  [[nodiscard]] const TransitionTracker& tracker() const noexcept {
    return tracker_;
  }
  /// Synthesizes the post-hoc explanations (DT + Table 2/4 summaries) from
  /// the transitions observed so far.
  [[nodiscard]] DistilledKnowledge explain(
      KnowledgeDistiller::Config distiller = {}) const;

  // --- EDBR access ----------------------------------------------------------
  [[nodiscard]] bool steering_enabled() const noexcept {
    return steering_.has_value();
  }
  [[nodiscard]] const ActionSteering& steering() const;
  [[nodiscard]] std::uint64_t controls_seen() const noexcept {
    return controls_seen_;
  }
  [[nodiscard]] std::uint64_t controls_replaced() const noexcept {
    return controls_replaced_;
  }
  [[nodiscard]] bool shield_enabled() const noexcept {
    return shield_.has_value();
  }
  [[nodiscard]] const ActionShield& shield() const;
  [[nodiscard]] const RewardModel& reward_model() const noexcept {
    return reward_;
  }

  // --- resilience access ----------------------------------------------------
  /// True while the staleness watchdog distrusts the KPM stream. This is
  /// the staleness axis of the unified degradation ladder — the same
  /// state machine the explanation-serving layer reads, so the watchdog's
  /// clean-streak accounting and the serving-tier hysteresis can never
  /// disagree about the active tier.
  [[nodiscard]] bool degraded() const noexcept { return ladder_.stale(); }
  /// The xApp's single degradation state machine. Hand this to an
  /// ExplainService (shared_ladder) to serve explanations under the same
  /// staleness/load/breaker state the control path honours.
  [[nodiscard]] xai::serving::DegradationLadder& ladder() noexcept {
    return ladder_;
  }
  [[nodiscard]] const xai::serving::DegradationLadder& ladder()
      const noexcept {
    return ladder_;
  }
  /// Times the watchdog entered degraded mode.
  [[nodiscard]] std::uint64_t degradation_events() const noexcept {
    return degradation_events_;
  }
  /// KPI reports discarded from partial (gapped) decision windows.
  [[nodiscard]] std::uint64_t reports_discarded() const noexcept {
    return reports_discarded_;
  }
  /// Estimated KPM indications lost across all detected gaps.
  [[nodiscard]] std::uint64_t indications_missed() const noexcept {
    return indications_missed_;
  }
  /// Retransmitted upstream controls suppressed by the (sender, seq) guard.
  [[nodiscard]] std::uint64_t duplicate_controls_ignored() const noexcept {
    return duplicate_controls_ignored_;
  }
  /// Reliable-hop telemetry (nullptr when config.reliable is unset).
  [[nodiscard]] const oran::ReliableControlSender* reliable() const noexcept {
    return reliable_.has_value() ? &*reliable_ : nullptr;
  }
  /// Advances reliable-delivery time without an indication — used by the
  /// harness to drain in-flight controls after the last report window.
  void pump_reliable() {
    if (reliable_.has_value()) reliable_->on_tick();
  }

 private:
  void finalize_decision_window();
  void observe_indication_timing(const netsim::KpiReport& report);
  void enter_degraded(netsim::Tick detected_at, std::uint64_t missed);
  void exit_degraded(netsim::Tick detected_at);
  [[nodiscard]] std::size_t recovery_target() const noexcept {
    return config_.recovery_reports > 0 ? config_.recovery_reports
                                        : config_.reports_per_decision;
  }

  Config config_;
  oran::RmrRouter* router_;
  oran::DataRepository* repository_;
  RewardModel reward_;
  AttributedGraph graph_;
  TransitionTracker tracker_;
  std::optional<ActionSteering> steering_;
  std::optional<ActionShield> shield_;
  std::optional<oran::ReliableControlSender> reliable_;

  std::optional<netsim::SlicingControl> current_action_;
  std::vector<netsim::KpiReport> pending_window_;
  std::uint64_t controls_seen_ = 0;
  std::uint64_t controls_replaced_ = 0;
  std::uint64_t a1_policies_applied_ = 0;

  // Staleness watchdog state. The degraded bit and clean-streak counter
  // live inside the unified ladder (configured in the constructor with
  // recovery_clean_reports = recovery_target()); only gap *measurement*
  // stays here.
  std::optional<netsim::Tick> last_window_end_;
  netsim::Tick report_period_ = 0;
  xai::serving::DegradationLadder ladder_;
  std::uint64_t degradation_events_ = 0;
  std::uint64_t reports_discarded_ = 0;
  std::uint64_t indications_missed_ = 0;
  /// Last action enforced while the stream was healthy (hold-last policy).
  std::optional<netsim::SlicingControl> last_safe_action_;
  /// (sender, seq) of upstream controls already processed (apply-once).
  std::set<std::pair<std::string, std::uint64_t>> seen_upstream_seqs_;
  std::uint64_t duplicate_controls_ignored_ = 0;

  // Telemetry (explora.xapp.*), bound at construction. degraded_ticks is
  // a span over gNB ticks from gap detection to recovery, one record per
  // degraded episode.
  telemetry::Counter* tm_indications_;
  telemetry::Counter* tm_controls_seen_;
  telemetry::Counter* tm_controls_replaced_;
  telemetry::Counter* tm_windows_finalized_;
  telemetry::Counter* tm_reports_discarded_;
  telemetry::Counter* tm_degraded_episodes_;
  telemetry::SpanStat* tm_degraded_ticks_;
  netsim::Tick degraded_entered_at_ = 0;
};

}  // namespace explora::core
