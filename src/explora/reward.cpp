#include "explora/reward.hpp"

#include "common/contracts.hpp"
#include "explora/graph.hpp"

namespace explora::core {

netsim::Kpi target_kpi(netsim::Slice slice) noexcept {
  switch (slice) {
    case netsim::Slice::kEmbb: return netsim::Kpi::kTxBitrate;
    case netsim::Slice::kMmtc: return netsim::Kpi::kTxPackets;
    case netsim::Slice::kUrllc: return netsim::Kpi::kBufferSize;
  }
  return netsim::Kpi::kTxBitrate;
}

RewardWeights RewardWeights::high_throughput() noexcept {
  // eMBB bitrate [Mbit/s] dominates; the mMTC packet count [~10^2/window]
  // and the URLLC buffer [~10^5 B] contribute at an order of magnitude
  // less after scaling.
  return RewardWeights{{1.0, 5e-3, -1e-6}};
}

RewardWeights RewardWeights::low_latency() noexcept {
  // URLLC buffer occupancy dominates (negatively); throughput matters at
  // an order of magnitude less.
  return RewardWeights{{0.1, 5e-3, -2e-5}};
}

std::string to_string(AgentProfile profile) {
  return profile == AgentProfile::kHighThroughput ? "HT" : "LL";
}

RewardWeights weights_for(AgentProfile profile) noexcept {
  return profile == AgentProfile::kHighThroughput
             ? RewardWeights::high_throughput()
             : RewardWeights::low_latency();
}

RewardModel::RewardModel(RewardWeights weights) noexcept
    : weights_(weights) {}

double RewardModel::from_report(const netsim::KpiReport& report) const {
  double reward = 0.0;
  for (std::size_t l = 0; l < netsim::kNumSlices; ++l) {
    const auto slice = static_cast<netsim::Slice>(l);
    reward += weights_.w[l] * report.value(target_kpi(slice), slice);
  }
  return reward;
}

double RewardModel::from_window(
    std::span<const netsim::KpiReport> window) const {
  EXPLORA_EXPECTS(!window.empty());
  double sum = 0.0;
  for (const auto& report : window) sum += from_report(report);
  return sum / static_cast<double>(window.size());
}

double RewardModel::from_node(const ActionNode& node) const {
  double reward = 0.0;
  for (std::size_t l = 0; l < netsim::kNumSlices; ++l) {
    const auto slice = static_cast<netsim::Slice>(l);
    reward += weights_.w[l] * node.attribute_mean(target_kpi(slice), slice);
  }
  return reward;
}

}  // namespace explora::core
