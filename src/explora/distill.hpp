// Knowledge distillation (§4.3, Fig. 8/14, Tables 2/4): fit a decision
// tree on the (v -> transition class) pairs extracted from the attributed
// graph, extract its decision paths, and synthesize the concise
// human-readable summaries that explain *why* the agent uses each class of
// multi-modal transition.
//
// Note (paper §4.3): the DT here explains EXPLORA's transition knowledge;
// it does not — and per Table 1 could not — replace the DRL agent itself.
#pragma once

#include <array>
#include <cstdint>
#include <string>
#include <vector>

#include "explora/transitions.hpp"
#include "xai/tree.hpp"

namespace explora::core {

/// Aggregated effect of one transition class on one KPI.
enum class EffectMagnitude : std::uint8_t {
  kNoChange = 0,
  kAugmentsLightly,
  kAugments,
  kDiminishesLightly,
  kDiminishes,
};

[[nodiscard]] std::string to_string(EffectMagnitude effect);

/// Table 2/4 row: one transition class and its interpretation.
struct ClassSummary {
  TransitionClass cls = TransitionClass::kSelf;
  std::size_t count = 0;
  double share = 0.0;  ///< fraction of all transitions
  /// Per-KPI aggregated mean delta (summed over slices).
  std::array<double, netsim::kNumKpis> mean_kpi_delta{};
  std::array<EffectMagnitude, netsim::kNumKpis> effect{};
  std::string interpretation;  ///< human-readable sentence
};

/// Full distillation output.
struct DistilledKnowledge {
  xai::DecisionTreeClassifier tree;
  std::vector<std::string> feature_names;
  std::vector<std::string> class_names;
  std::string rules;                       ///< rendered DT (Fig. 8/14)
  std::vector<std::string> decision_paths; ///< root-to-leaf traces
  double tree_accuracy = 0.0;              ///< fit accuracy on the events
  std::array<ClassSummary, kNumTransitionClasses> summaries{};
  std::string summary_text;                ///< Table 2/4 rendering
};

/// Assembles the DT training set from recorded transitions: one row per
/// event (mean KPI deltas, plus the JS-divergence block when
/// `include_js_features`), labeled with the event's transition class.
/// Shared by KnowledgeDistiller::distill and the benchmarks/tools that fit
/// surrogate trees on the same data.
[[nodiscard]] xai::Dataset build_transition_dataset(
    const std::vector<TransitionEvent>& events, bool include_js_features);

class KnowledgeDistiller {
 public:
  struct Config {
    /// Append JS-divergence features to the mean-delta features.
    bool include_js_features = false;
    xai::DecisionTreeClassifier::Config tree{
        .max_depth = 3,
        .min_samples_leaf = 5,
        .min_gain = 1e-4,
        .criterion = xai::DecisionTreeClassifier::Criterion::kGini,
    };
    /// Effect wording is based on the t-statistic of the class mean
    /// (mean / standard-error): below `no_change_threshold` reads as
    /// "no change"; above `strong_threshold` it reads as strong.
    double no_change_threshold = 2.0;
    double strong_threshold = 6.0;
  };

  KnowledgeDistiller();
  explicit KnowledgeDistiller(Config config);

  /// Distills knowledge from the recorded transitions. Requires at least
  /// two distinct classes among the events (otherwise there is nothing to
  /// discriminate and the result contains summaries only, no tree).
  [[nodiscard]] DistilledKnowledge distill(
      const std::vector<TransitionEvent>& events) const;

 private:
  [[nodiscard]] EffectMagnitude classify_effect(double mean_delta,
                                                double standard_error) const;

  Config config_;
};

}  // namespace explora::core
