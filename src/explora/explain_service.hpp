// Explanation-as-a-service in front of the XAI explainers (DESIGN.md §12):
// the overload-robust serving layer ROADMAP item 5(a) asks for. It
// composes the xai::serving substrate — bounded admission queue,
// degradation ladder, circuit breaker, per-tier cost model — around the
// actual explainers:
//
//   tier kExact     exact KernelSHAP over head_probability_model
//   tier kSampled   sampled SHAP (budgeted permutations)
//   tier kSurrogate distilled-tree path attribution (no model evals)
//   tier kCached    last-good attribution for that output head
//
// The service is tick-clocked: submit() admits (or sheds, with a reason)
// at the caller's tick, on_tick() dispatches queued requests onto a fixed
// number of simulated worker slots and delivers results when each
// request's simulated tier cost has elapsed. Attribution values are
// computed at dispatch (so they are always a function of the request
// snapshot, never of later state) but delivered at the finish tick.
// Latency is therefore the *simulated* cost model, and the whole
// admission/shed/demote/complete decision stream is byte-identical across
// runs, hosts and EXPLORA_THREADS — the wall-clock speed of the explainers
// never feeds back into any decision.
//
// Fault injection (for the chaos sweep's slow-explainer impairment and
// the breaker path) draws from a named RNG fork, so fault sequences are
// part of the deterministic stream too.
#pragma once

#include <array>
#include <cstdint>
#include <functional>
#include <memory>
#include <optional>
#include <span>
#include <vector>

#include "common/parallel.hpp"
#include "common/rng.hpp"
#include "common/telemetry.hpp"
#include "ml/agent.hpp"
#include "ml/features.hpp"
#include "xai/serving.hpp"
#include "xai/tree.hpp"

namespace explora {

/// One delivered explanation (or a shed notice: tier/attribution empty
/// when `shed_reason != kNone`).
struct ExplanationResult {
  std::uint64_t id = 0;
  std::uint32_t output_index = 0;
  xai::serving::Tier tier = xai::serving::Tier::kExact;
  xai::serving::ShedReason shed_reason = xai::serving::ShedReason::kNone;
  xai::serving::Tick submitted = 0;
  xai::serving::Tick completed = 0;
  /// completed - submitted for served requests; 0 for shed ones.
  xai::serving::Tick latency = 0;
  /// True when the request was served below the tier admission asked for
  /// (ladder demotion, deadline walk-down, or eval-fault fallback).
  bool degraded = false;
  /// True when the attribution came from a stale cache entry (kCached).
  bool from_cache = false;
  std::vector<double> attribution;
};

/// Deterministic explanation-serving layer. Single-threaded by contract:
/// submit() and on_tick() must be called from the driving (simulation)
/// thread. submit() itself is nonblocking and allocation-free — it is the
/// path a TTI loop may call — and the underlying queue additionally
/// tolerates concurrent producers (exercised by the tsan enqueue leg).
class ExplainService {
 public:
  struct Config {
    /// Admission bound: requests queued at once (rounded up to pow2).
    std::size_t queue_capacity = 64;
    /// Admission bound: queued + executing; 0 = queue capacity + workers.
    std::size_t in_flight_budget = 0;
    /// Simulated worker slots draining the queue each tick.
    std::size_t workers = 2;
    /// Worst-case per-tier cost in ticks (deadline feasibility + the
    /// simulated service time).
    xai::serving::CostModel costs{};
    /// Deadline granted to submit() calls that pass deadline = 0.
    xai::serving::Tick default_deadline = 192;
    /// SHAP budget of the sampled tier.
    std::size_t sampled_permutations = 24;
    /// Background rows per SHAP value (both SHAP tiers).
    std::size_t max_background = 16;
    std::uint64_t seed = 2027;
    /// Pool for SHAP fan-out; nullptr = global EXPLORA_THREADS pool.
    common::ThreadPool* pool = nullptr;
    xai::serving::LadderConfig ladder{};
    xai::serving::BreakerConfig breaker{};
    /// Fault injection on the model-eval tiers (exact/sampled):
    /// probability a dispatch's simulated cost is inflated slow_factor x,
    /// and probability an eval fails outright (breaker food).
    double eval_slow_probability = 0.0;
    xai::serving::Tick eval_slow_factor = 4;
    double eval_failure_probability = 0.0;
  };

  /// @param agent policy under explanation (must outlive the service).
  /// @param background latent background rows for SHAP marginalization
  ///        (truncated to config.max_background).
  /// @param surrogate distilled tree for the surrogate tier; may be null
  ///        (the surrogate tier then falls through to cached).
  /// @param shared_ladder when non-null the service drives this ladder
  ///        (the xApp's single degradation state machine) instead of an
  ///        internally owned one; must outlive the service.
  ExplainService(const ml::PolicyAgent& agent,
                 std::vector<ml::Vector> background,
                 const xai::DecisionTreeClassifier* surrogate, Config config,
                 xai::serving::DegradationLadder* shared_ladder = nullptr);

  ExplainService(const ExplainService&) = delete;
  ExplainService& operator=(const ExplainService&) = delete;

  struct SubmitResult {
    bool accepted = false;
    std::uint64_t id = 0;
    xai::serving::ShedReason shed_reason = xai::serving::ShedReason::kNone;
  };

  /// Admission control. Never blocks, locks or allocates: the request
  /// either lands in a pre-sized queue slot or is rejected with a reason.
  /// @param x latent feature snapshot (dimension fixed at construction).
  /// @param output_index agent head to explain (< ml::kNumHeads).
  /// @param chosen the action whose head probabilities are explained.
  /// @param now current tick; @param deadline absolute tick budget
  ///        (0 = now + config.default_deadline).
  EXPLORA_NONBLOCKING SubmitResult submit(std::span<const double> x,
                                          std::uint32_t output_index,
                                          const ml::AgentAction& chosen,
                                          xai::serving::Tick now,
                                          xai::serving::Tick deadline = 0);

  /// Advances the service clock: completes finished work, feeds the
  /// pressure EWMA, dispatches queued requests (deadline-aware walk-down
  /// or shed), and steps the breaker. Results for requests finishing at
  /// or before `now` are appended to the drain buffer in deterministic
  /// (finish tick, id) order.
  void on_tick(xai::serving::Tick now);

  /// Delivered results since the last drain (shed notices included, in
  /// decision order). Moves the buffer out.
  [[nodiscard]] std::vector<ExplanationResult> drain();

  /// Runs on_tick over (from, to] — convenience for window-grained hosts.
  void run_until(xai::serving::Tick from, xai::serving::Tick to) {
    for (xai::serving::Tick t = from + 1; t <= to; ++t) on_tick(t);
  }

  struct Stats {
    std::uint64_t submitted = 0;
    std::uint64_t accepted = 0;
    std::array<std::uint64_t, xai::serving::kNumTiers> served_by_tier{};
    std::array<std::uint64_t, 5> shed_by_reason{};  ///< by ShedReason
    std::uint64_t demoted_requests = 0;  ///< served below requested tier
    std::uint64_t eval_faults = 0;
    std::uint64_t breaker_trips = 0;
    std::size_t queue_high_water = 0;
    std::size_t queue_capacity = 0;

    [[nodiscard]] std::uint64_t shed_total() const noexcept {
      std::uint64_t total = 0;
      for (const auto n : shed_by_reason) total += n;
      return total;
    }
  };
  [[nodiscard]] Stats stats() const;

  [[nodiscard]] const xai::serving::DegradationLadder& ladder() const {
    return *ladder_;
  }
  [[nodiscard]] const xai::serving::CircuitBreaker& breaker() const {
    return breaker_;
  }
  [[nodiscard]] const xai::serving::BoundedRequestQueue& queue() const {
    return queue_;
  }
  [[nodiscard]] const Config& config() const { return config_; }
  [[nodiscard]] std::size_t feature_dim() const {
    return queue_.feature_dim();
  }
  /// In-flight (executing) requests right now.
  [[nodiscard]] std::size_t busy_workers() const;

 private:
  struct InFlight {
    bool active = false;
    xai::serving::Request request;
    xai::serving::Tick finish = 0;
    xai::serving::Tier tier = xai::serving::Tier::kExact;
    bool degraded = false;
    bool from_cache = false;
    std::vector<double> attribution;
  };

  struct CacheEntry {
    bool valid = false;
    xai::serving::Tick at = 0;
    std::vector<double> attribution;
  };

  void complete_finished(xai::serving::Tick now);
  void dispatch_queued(xai::serving::Tick now);
  /// Computes the attribution for `slot` at its chosen tier; applies
  /// eval-fault injection and breaker accounting. May downgrade the
  /// slot's tier (fault fallback).
  void execute(InFlight& slot, xai::serving::Tick now);
  [[nodiscard]] std::vector<double> shap_attribution(
      const xai::serving::Request& request, xai::serving::Tier tier);
  void shed(const xai::serving::Request& request,
            xai::serving::ShedReason reason, xai::serving::Tick now);

  const ml::PolicyAgent& agent_;
  std::vector<ml::Vector> background_;
  const xai::DecisionTreeClassifier* surrogate_;
  Config config_;
  xai::serving::BoundedRequestQueue queue_;
  std::unique_ptr<xai::serving::DegradationLadder> owned_ladder_;
  xai::serving::DegradationLadder* ladder_;
  xai::serving::CircuitBreaker breaker_;
  common::Rng fault_rng_;
  std::vector<InFlight> workers_;
  std::vector<CacheEntry> cache_;  ///< one last-good slot per output head
  std::vector<ExplanationResult> drained_;
  std::vector<std::size_t> finished_scratch_;
  xai::serving::Request pop_scratch_;
  // atomics-ok: id-allocator (uniqueness only; no ordering implied by ids)
  std::atomic<std::uint64_t> next_id_{1};
  std::uint64_t last_breaker_trips_ = 0;

  std::uint64_t submitted_ = 0;
  std::uint64_t accepted_ = 0;
  std::array<std::uint64_t, xai::serving::kNumTiers> served_by_tier_{};
  std::array<std::uint64_t, 5> shed_by_reason_{};
  std::uint64_t demoted_requests_ = 0;
  std::uint64_t eval_faults_ = 0;

  // Telemetry (explora.serving.*), integer-only like everything else.
  telemetry::Counter* tm_submitted_;
  telemetry::Counter* tm_accepted_;
  std::array<telemetry::Counter*, xai::serving::kNumTiers> tm_served_;
  std::array<telemetry::Counter*, 5> tm_shed_;
  telemetry::Counter* tm_demotions_;
  telemetry::Counter* tm_eval_faults_;
  telemetry::Gauge* tm_breaker_state_;
  telemetry::Gauge* tm_active_tier_;
  telemetry::Gauge* tm_queue_depth_;
  std::array<telemetry::Histogram*, xai::serving::kNumTiers> tm_latency_;
};

}  // namespace explora
