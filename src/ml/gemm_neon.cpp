// NEON backend (aarch64): 4 batch rows x 4 output neurons per tile, packed
// transposed weight panels, separate vmul + vadd (never vfma).
//
// Mirrors gemm_avx2.cpp with 2-wide double vectors: lane l of a panel owns
// output neuron r0+l and runs the scalar kernel's sequential-over-c chain,
// so results are byte-identical to detail::scalar_kernel. Compiled with
// -ffp-contract=off so the compiler cannot fuse the explicit mul/add.
#include "ml/gemm.hpp"

#if defined(EXPLORA_SIMD_NEON)

#include <arm_neon.h>  // det-ok: simd-intrinsic (approved kernel file)

#include <cstddef>

#include "common/aligned.hpp"
#include "common/analysis_annotations.hpp"

namespace explora::ml::gemm::detail {

namespace {

constexpr std::size_t kPanel = 4;      ///< output neurons per packed panel
constexpr std::size_t kBatchTile = 4;  ///< batch rows per microkernel call

std::size_t pack_weights(const double* w, std::size_t out, std::size_t in,
                         common::AlignedVector<double>& packed) {
  const std::size_t panels = (out + kPanel - 1) / kPanel;
  // hotpath-ok: thread-local panel scratch reaches steady-state capacity
  // after the first call per layer shape; resize is then a no-op.
  packed.resize(panels * in * kPanel);
  for (std::size_t p = 0; p < panels; ++p) {
    const std::size_t r0 = p * kPanel;
    double* panel = packed.data() + p * in * kPanel;
    for (std::size_t c = 0; c < in; ++c) {
      for (std::size_t l = 0; l < kPanel; ++l) {
        panel[c * kPanel + l] =
            r0 + l < out ? w[(r0 + l) * in + c] : 0.0;
      }
    }
  }
  return panels;
}

template <std::size_t BT>
void micro_tile(const double* panel, std::size_t in, const double* x,
                std::size_t x_stride, double* y, std::size_t y_stride,
                const double* bias, std::size_t r0, std::size_t valid,
                Epilogue epilogue) {
  float64x2_t acc_lo[BT];
  float64x2_t acc_hi[BT];
  for (std::size_t bt = 0; bt < BT; ++bt) {
    acc_lo[bt] = vdupq_n_f64(0.0);
    acc_hi[bt] = vdupq_n_f64(0.0);
  }
  for (std::size_t c = 0; c < in; ++c) {
    const float64x2_t w_lo = vld1q_f64(panel + c * kPanel);
    const float64x2_t w_hi = vld1q_f64(panel + c * kPanel + 2);
    for (std::size_t bt = 0; bt < BT; ++bt) {
      const float64x2_t xv = vdupq_n_f64(x[bt * x_stride + c]);
      acc_lo[bt] = vaddq_f64(acc_lo[bt], vmulq_f64(w_lo, xv));
      acc_hi[bt] = vaddq_f64(acc_hi[bt], vmulq_f64(w_hi, xv));
    }
  }
  alignas(16) double tile[kPanel];
  for (std::size_t bt = 0; bt < BT; ++bt) {
    vst1q_f64(tile, acc_lo[bt]);
    vst1q_f64(tile + 2, acc_hi[bt]);
    apply_epilogue(y + bt * y_stride + r0, tile, bias, r0, valid, epilogue);
  }
}

}  // namespace

EXPLORA_REALTIME void neon_kernel(const double* w, std::size_t out,
                                  std::size_t in, const double* x,
                                  std::size_t batch, double* y,
                                  const double* bias, Epilogue epilogue) {
  thread_local common::AlignedVector<double> t_packed;
  const std::size_t panels = pack_weights(w, out, in, t_packed);

  std::size_t b = 0;
  for (; b + kBatchTile <= batch; b += kBatchTile) {
    for (std::size_t p = 0; p < panels; ++p) {
      const std::size_t r0 = p * kPanel;
      const std::size_t valid = out - r0 < kPanel ? out - r0 : kPanel;
      micro_tile<kBatchTile>(t_packed.data() + p * in * kPanel, in,
                             x + b * in, in, y + b * out, out, bias, r0,
                             valid, epilogue);
    }
  }
  for (; b < batch; ++b) {
    for (std::size_t p = 0; p < panels; ++p) {
      const std::size_t r0 = p * kPanel;
      const std::size_t valid = out - r0 < kPanel ? out - r0 : kPanel;
      micro_tile<1>(t_packed.data() + p * in * kPanel, in, x + b * in, in,
                    y + b * out, out, bias, r0, valid, epilogue);
    }
  }
}

}  // namespace explora::ml::gemm::detail

#endif  // EXPLORA_SIMD_NEON
