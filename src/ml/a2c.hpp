// Advantage Actor-Critic with multi-head categorical policy — the
// (synchronous) variant of A3C, the third agent family the paper names in
// §4.2 ("DQN, PPO or A3C"). Same multi-modal action structure as PpoAgent
// but with the vanilla policy-gradient update (no ratio clipping, single
// pass per rollout) and n-step returns instead of GAE.
#pragma once

#include <array>
#include <cstdint>
#include <vector>

#include "common/rng.hpp"
#include "common/serialize.hpp"
#include "ml/agent.hpp"
#include "ml/nn.hpp"
#include "ml/ppo.hpp"  // Transition

namespace explora::ml {

class A2cAgent final : public PolicyAgent {
 public:
  struct Config {
    std::size_t state_dim = kLatentDim;
    std::size_t hidden_dim = 64;
    double gamma = 0.95;
    double learning_rate = 7e-4;
    double value_coef = 0.5;
    double entropy_coef = 0.01;
  };

  explicit A2cAgent(std::uint64_t seed = 31);
  A2cAgent(Config config, std::uint64_t seed);

  // Pinned like the other agents (optimizers hold parameter pointers).
  A2cAgent(const A2cAgent&) = delete;
  A2cAgent& operator=(const A2cAgent&) = delete;
  A2cAgent(A2cAgent&&) = delete;
  A2cAgent& operator=(A2cAgent&&) = delete;

  // --- PolicyAgent ----------------------------------------------------------
  [[nodiscard]] PolicyDecision act_greedy(
      std::span<const double> state) const override;
  [[nodiscard]] PolicyDecision act(
      std::span<const double> state, common::Rng& rng,
      const std::array<double, kNumHeads>& temperatures) const override;
  [[nodiscard]] std::vector<Vector> head_distributions(
      std::span<const double> state) const override;
  /// Batched: all states flow through the actor as one forward_batch.
  [[nodiscard]] std::vector<std::vector<Vector>> head_distributions(
      const Matrix& states) const override;

  [[nodiscard]] double value(std::span<const double> state) const;

  /// One synchronous actor-critic update over an n-step rollout (oldest
  /// first). `bootstrap_value` is the critic estimate of the state after
  /// the last step (0 when terminal). Returns the mean loss.
  double update(const std::vector<Transition>& rollout,
                double bootstrap_value);

  [[nodiscard]] const Config& config() const noexcept { return config_; }

  void serialize(common::BinaryWriter& writer) const;
  void deserialize(common::BinaryReader& reader);

 private:
  [[nodiscard]] static std::array<std::size_t, kNumHeads> head_sizes();
  [[nodiscard]] std::array<std::size_t, kNumHeads + 1> head_offsets() const;
  [[nodiscard]] std::vector<Vector> split_softmax(
      std::span<const double> logits,
      const std::array<double, kNumHeads>& temperatures) const;
  [[nodiscard]] PolicyDecision decide(
      std::span<const double> state, common::Rng* rng,
      const std::array<double, kNumHeads>& temperatures) const;

  Config config_;
  common::Rng init_rng_;
  Mlp actor_;
  Mlp critic_;
  AdamOptimizer actor_opt_;
  AdamOptimizer critic_opt_;
};

}  // namespace explora::ml
