// AVX2 backend: 4 batch rows x 8 output neurons per tile, packed
// transposed weight panels, separate mul + add (never FMA).
//
// Determinism: vector lane l of a panel owns output neuron r0+l and
// accumulates w[r0+l][c] * x[b][c] for c = 0,1,2,... — the same serial
// dependency chain the scalar kernel runs, just eight neurons at a time.
// No horizontal reduction ever happens, so every output double is
// byte-identical to detail::scalar_kernel. The TU is compiled with
// -mavx2 -ffp-contract=off (src/ml/CMakeLists.txt) so the compiler cannot
// re-fuse the explicit mul/add pairs.
#include "ml/gemm.hpp"

#if defined(EXPLORA_SIMD_AVX2)

#include <immintrin.h>  // det-ok: simd-intrinsic (approved kernel file)

#include <cstddef>

#include "common/aligned.hpp"
#include "common/analysis_annotations.hpp"

namespace explora::ml::gemm::detail {

namespace {

constexpr std::size_t kPanel = 8;  ///< output neurons per packed panel
constexpr std::size_t kBatchTile = 4;  ///< batch rows per microkernel call

/// Packs w (out x in, row-major) into transposed panels: panel p holds
/// neurons [p*8, p*8+8); within a panel the 8 weights of input c are
/// contiguous at offset c*8. Lanes past `out` are zero (their results are
/// discarded). Thread-local so concurrent pool workers never share it.
std::size_t pack_weights(const double* w, std::size_t out, std::size_t in,
                         common::AlignedVector<double>& packed) {
  const std::size_t panels = (out + kPanel - 1) / kPanel;
  // hotpath-ok: thread-local panel scratch reaches steady-state capacity
  // after the first call per layer shape; resize is then a no-op.
  packed.resize(panels * in * kPanel);
  for (std::size_t p = 0; p < panels; ++p) {
    const std::size_t r0 = p * kPanel;
    double* panel = packed.data() + p * in * kPanel;
    for (std::size_t c = 0; c < in; ++c) {
      for (std::size_t l = 0; l < kPanel; ++l) {
        panel[c * kPanel + l] =
            r0 + l < out ? w[(r0 + l) * in + c] : 0.0;
      }
    }
  }
  return panels;
}

/// One (BT batch rows) x (8 neurons) tile: BT*2 independent accumulators,
/// each lane advancing its own strictly-sequential c-chain.
template <std::size_t BT>
void micro_tile(const double* panel, std::size_t in, const double* x,
                std::size_t x_stride, double* y, std::size_t y_stride,
                const double* bias, std::size_t r0, std::size_t valid,
                Epilogue epilogue) {
  __m256d acc_lo[BT];
  __m256d acc_hi[BT];
  for (std::size_t bt = 0; bt < BT; ++bt) {
    acc_lo[bt] = _mm256_setzero_pd();
    acc_hi[bt] = _mm256_setzero_pd();
  }
  for (std::size_t c = 0; c < in; ++c) {
    const __m256d w_lo = _mm256_load_pd(panel + c * kPanel);
    const __m256d w_hi = _mm256_load_pd(panel + c * kPanel + 4);
    for (std::size_t bt = 0; bt < BT; ++bt) {
      const __m256d xv = _mm256_set1_pd(x[bt * x_stride + c]);
      acc_lo[bt] = _mm256_add_pd(acc_lo[bt], _mm256_mul_pd(w_lo, xv));
      acc_hi[bt] = _mm256_add_pd(acc_hi[bt], _mm256_mul_pd(w_hi, xv));
    }
  }
  // Full panels store vectorized for the non-tanh epilogues: one add for
  // the bias (the same single rounding as scalar), and relu via max with
  // acc as the first operand — VMAXPD returns the *second* operand on a
  // NaN/equal-zero first operand, exactly matching the scalar
  // `v > 0.0 ? v : 0.0` (which yields +0.0 for -0.0 and NaN inputs).
  if (valid == kPanel && epilogue != Epilogue::kBiasTanh) {
    const bool none = epilogue == Epilogue::kNone;
    const __m256d b_lo = none ? _mm256_setzero_pd()
                              : _mm256_loadu_pd(bias + r0);
    const __m256d b_hi = none ? _mm256_setzero_pd()
                              : _mm256_loadu_pd(bias + r0 + 4);
    for (std::size_t bt = 0; bt < BT; ++bt) {
      __m256d v_lo = none ? acc_lo[bt] : _mm256_add_pd(acc_lo[bt], b_lo);
      __m256d v_hi = none ? acc_hi[bt] : _mm256_add_pd(acc_hi[bt], b_hi);
      if (epilogue == Epilogue::kBiasRelu) {
        v_lo = _mm256_max_pd(v_lo, _mm256_setzero_pd());
        v_hi = _mm256_max_pd(v_hi, _mm256_setzero_pd());
      }
      _mm256_storeu_pd(y + bt * y_stride + r0, v_lo);
      _mm256_storeu_pd(y + bt * y_stride + r0 + 4, v_hi);
    }
    return;
  }
  alignas(32) double tile[kPanel];
  for (std::size_t bt = 0; bt < BT; ++bt) {
    _mm256_store_pd(tile, acc_lo[bt]);
    _mm256_store_pd(tile + 4, acc_hi[bt]);
    apply_epilogue(y + bt * y_stride + r0, tile, bias, r0, valid, epilogue);
  }
}

}  // namespace

EXPLORA_REALTIME void avx2_kernel(const double* w, std::size_t out,
                                  std::size_t in, const double* x,
                                  std::size_t batch, double* y,
                                  const double* bias, Epilogue epilogue) {
  thread_local common::AlignedVector<double> t_packed;
  const std::size_t panels = pack_weights(w, out, in, t_packed);

  std::size_t b = 0;
  for (; b + kBatchTile <= batch; b += kBatchTile) {
    for (std::size_t p = 0; p < panels; ++p) {
      const std::size_t r0 = p * kPanel;
      const std::size_t valid = out - r0 < kPanel ? out - r0 : kPanel;
      micro_tile<kBatchTile>(t_packed.data() + p * in * kPanel, in,
                             x + b * in, in, y + b * out, out, bias, r0,
                             valid, epilogue);
    }
  }
  for (; b < batch; ++b) {
    for (std::size_t p = 0; p < panels; ++p) {
      const std::size_t r0 = p * kPanel;
      const std::size_t valid = out - r0 < kPanel ? out - r0 : kPanel;
      micro_tile<1>(t_packed.data() + p * in * kPanel, in, x + b * in, in,
                    y + b * out, out, bias, r0, valid, epilogue);
    }
  }
}

}  // namespace explora::ml::gemm::detail

#endif  // EXPLORA_SIMD_AVX2
