// Dense row-major matrix of doubles with the handful of operations the
// neural-network layer needs. Deliberately minimal: no expression
// templates, no views — value semantics and clear loops.
#pragma once

#include <cstddef>
#include <span>
#include <vector>

#include "common/aligned.hpp"

namespace explora::ml {

using Vector = std::vector<double>;

class Matrix {
 public:
  Matrix() = default;
  /// Zero-initialized rows x cols matrix.
  Matrix(std::size_t rows, std::size_t cols);

  [[nodiscard]] std::size_t rows() const noexcept { return rows_; }
  [[nodiscard]] std::size_t cols() const noexcept { return cols_; }
  [[nodiscard]] std::size_t size() const noexcept { return data_.size(); }

  [[nodiscard]] double& operator()(std::size_t r, std::size_t c) noexcept {
    return data_[r * cols_ + c];
  }
  [[nodiscard]] double operator()(std::size_t r, std::size_t c) const noexcept {
    return data_[r * cols_ + c];
  }

  [[nodiscard]] std::span<double> data() noexcept { return data_; }
  [[nodiscard]] std::span<const double> data() const noexcept { return data_; }

  void fill(double value) noexcept;

  /// Reshapes to rows x cols, reusing the existing allocation when it is
  /// large enough (scratch-buffer reuse on hot paths). Element values are
  /// unspecified afterwards — callers overwrite every cell.
  void resize(std::size_t rows, std::size_t cols);

  /// y = A x (x.size() == cols, y.size() == rows).
  void multiply(std::span<const double> x, std::span<double> y) const;
  /// Batched variant: Y = X A^T with X (batch x cols) and Y (batch x rows),
  /// one GEMM-style loop instead of `batch` multiply() calls. Each output
  /// row is bit-identical to multiply() on the corresponding input row.
  void multiply_batch(const Matrix& x, Matrix& y) const;
  /// y = A^T x (x.size() == rows, y.size() == cols).
  void multiply_transposed(std::span<const double> x,
                           std::span<double> y) const;
  /// A += alpha * outer(u, v) with u.size() == rows, v.size() == cols.
  void add_outer(double alpha, std::span<const double> u,
                 std::span<const double> v);

 private:
  std::size_t rows_ = 0;
  std::size_t cols_ = 0;
  // Cache-line aligned so the SIMD GEMM backends get aligned panel loads.
  common::AlignedVector<double> data_;
};

}  // namespace explora::ml
