#include "ml/ppo.hpp"

#include <algorithm>
#include <cmath>
#include <numeric>

#include "common/contracts.hpp"
#include "netsim/types.hpp"

namespace explora::ml {

namespace {

/// Samples an index from a probability vector.
std::size_t sample_categorical(std::span<const double> probs,
                               common::Rng& rng) {
  const double u = rng.uniform();
  double acc = 0.0;
  for (std::size_t i = 0; i < probs.size(); ++i) {
    acc += probs[i];
    if (u < acc) return i;
  }
  return probs.size() - 1;  // numerical slack
}

std::size_t argmax(std::span<const double> values) {
  return static_cast<std::size_t>(
      std::distance(values.begin(),
                    std::max_element(values.begin(), values.end())));
}

constexpr double kProbFloor = 1e-12;

}  // namespace

void RolloutBuffer::add(Transition transition) {
  steps_.push_back(std::move(transition));
}

void RolloutBuffer::clear() noexcept {
  steps_.clear();
  advantages_.clear();
  returns_.clear();
}

void RolloutBuffer::compute_gae(double gamma, double lambda,
                                double bootstrap_value) {
  const std::size_t n = steps_.size();
  advantages_.assign(n, 0.0);
  returns_.assign(n, 0.0);
  if (n == 0) return;
  double gae = 0.0;
  double next_value = bootstrap_value;
  for (std::size_t i = n; i-- > 0;) {
    const Transition& step = steps_[i];
    const double not_terminal = step.terminal ? 0.0 : 1.0;
    const double delta =
        step.reward + gamma * next_value * not_terminal - step.value;
    gae = delta + gamma * lambda * not_terminal * gae;
    advantages_[i] = gae;
    returns_[i] = gae + step.value;
    next_value = step.value;
  }
  // Normalize advantages (standard PPO practice).
  const double mean =
      std::accumulate(advantages_.begin(), advantages_.end(), 0.0) /
      static_cast<double>(n);
  double var = 0.0;
  for (double a : advantages_) var += (a - mean) * (a - mean);
  const double stddev = std::sqrt(var / static_cast<double>(n)) + 1e-8;
  for (double& a : advantages_) a = (a - mean) / stddev;
}

std::array<std::size_t, kNumHeads> PpoAgent::head_sizes() {
  std::array<std::size_t, kNumHeads> sizes{};
  sizes[0] = netsim::prb_catalog().size();
  for (std::size_t s = 0; s < netsim::kNumSlices; ++s) {
    sizes[1 + s] = netsim::kNumSchedulerPolicies;
  }
  return sizes;
}

std::array<std::size_t, kNumHeads + 1> PpoAgent::head_offsets() const {
  const auto sizes = head_sizes();
  std::array<std::size_t, kNumHeads + 1> offsets{};
  for (std::size_t h = 0; h < kNumHeads; ++h) {
    offsets[h + 1] = offsets[h] + sizes[h];
  }
  return offsets;
}

std::array<std::size_t, kNumHeads> PpoAgent::action_indices(
    const AgentAction& action) {
  std::array<std::size_t, kNumHeads> indices{};
  indices[0] = action.prb_choice;
  for (std::size_t s = 0; s < netsim::kNumSlices; ++s) {
    indices[1 + s] = action.sched_choice[s];
  }
  return indices;
}

PpoAgent::PpoAgent(std::uint64_t seed) : PpoAgent(Config{}, seed) {}

PpoAgent::PpoAgent(Config config, std::uint64_t seed)
    : config_(config),
      init_rng_(seed),
      actor_({config_.state_dim, config_.hidden_dim, config_.hidden_dim,
              head_offsets()[kNumHeads]},
             Activation::kTanh, Activation::kLinear, init_rng_),
      critic_({config_.state_dim, config_.hidden_dim, config_.hidden_dim, 1},
              Activation::kTanh, Activation::kLinear, init_rng_),
      shuffle_rng_(init_rng_.fork("shuffle")) {
  telemetry::Scope scope("ml.ppo");
  tm_updates_ = &scope.counter("updates");
  tm_epochs_ = &scope.counter("epochs");
  tm_minibatches_ = &scope.counter("minibatches");
  static constexpr std::int64_t kStepBounds[] = {32, 64, 128, 256, 512, 1024};
  tm_rollout_steps_ = &scope.histogram("rollout_steps", kStepBounds);
  static constexpr std::int64_t kRowBounds[] = {8, 16, 32, 64, 128};
  tm_minibatch_rows_ = &scope.histogram("minibatch_rows", kRowBounds);
  AdamOptimizer::Config opt;
  opt.learning_rate = config_.learning_rate;
  actor_opt_ = AdamOptimizer(opt);
  critic_opt_ = AdamOptimizer(opt);
  actor_opt_.attach(actor_);
  critic_opt_.attach(critic_);
}

std::vector<Vector> PpoAgent::split_softmax(
    std::span<const double> logits,
    const std::array<double, kNumHeads>& temperatures) const {
  const auto offsets = head_offsets();
  std::vector<Vector> heads;
  heads.reserve(kNumHeads);
  for (std::size_t h = 0; h < kNumHeads; ++h) {
    EXPLORA_EXPECTS(temperatures[h] > 0.0);
    Vector head(logits.begin() + static_cast<std::ptrdiff_t>(offsets[h]),
                logits.begin() + static_cast<std::ptrdiff_t>(offsets[h + 1]));
    if (temperatures[h] != 1.0) {  // det-ok: float-eq (skip exact identity temperature)
      for (double& v : head) v /= temperatures[h];
    }
    softmax(head);
    EXPLORA_AUDIT_MSG(contracts::is_probability_simplex(head),
                      "PPO head {} is not a probability distribution", h);
    heads.push_back(std::move(head));
  }
  return heads;
}

namespace {

[[nodiscard]] std::array<double, kNumHeads> uniform_temperatures(
    double temperature) {
  std::array<double, kNumHeads> temps{};
  temps.fill(temperature);
  return temps;
}

}  // namespace

PolicyDecision PpoAgent::act(std::span<const double> state,
                             common::Rng& rng, double temperature) const {
  return act(state, rng, uniform_temperatures(temperature));
}

PolicyDecision PpoAgent::act(
    std::span<const double> state, common::Rng& rng,
    const std::array<double, kNumHeads>& temperatures) const {
  Vector logits(actor_.out_size(), 0.0);
  actor_.infer(state, logits);
  const auto heads = split_softmax(logits, temperatures);

  PolicyDecision decision;
  std::array<std::size_t, kNumHeads> chosen{};
  for (std::size_t h = 0; h < kNumHeads; ++h) {
    chosen[h] = sample_categorical(heads[h], rng);
    const double p = std::max(heads[h][chosen[h]], kProbFloor);
    decision.log_prob += std::log(p);
    decision.head_probs[h] = heads[h][chosen[h]];
  }
  decision.action.prb_choice = chosen[0];
  for (std::size_t s = 0; s < netsim::kNumSlices; ++s) {
    decision.action.sched_choice[s] = chosen[1 + s];
  }
  decision.value = value(state);
  return decision;
}

PolicyDecision PpoAgent::act_greedy(std::span<const double> state) const {
  Vector logits(actor_.out_size(), 0.0);
  actor_.infer(state, logits);
  const auto heads = split_softmax(logits, uniform_temperatures(1.0));

  PolicyDecision decision;
  std::array<std::size_t, kNumHeads> chosen{};
  for (std::size_t h = 0; h < kNumHeads; ++h) {
    chosen[h] = argmax(heads[h]);
    const double p = std::max(heads[h][chosen[h]], kProbFloor);
    decision.log_prob += std::log(p);
    decision.head_probs[h] = heads[h][chosen[h]];
  }
  decision.action.prb_choice = chosen[0];
  for (std::size_t s = 0; s < netsim::kNumSlices; ++s) {
    decision.action.sched_choice[s] = chosen[1 + s];
  }
  decision.value = value(state);
  return decision;
}

double PpoAgent::value(std::span<const double> state) const {
  Vector out(1, 0.0);
  critic_.infer(state, out);
  return out[0];
}

std::vector<Vector> PpoAgent::head_distributions(
    std::span<const double> state) const {
  Vector logits(actor_.out_size(), 0.0);
  actor_.infer(state, logits);
  return split_softmax(logits, uniform_temperatures(1.0));
}

std::vector<std::vector<Vector>> PpoAgent::head_distributions(
    const Matrix& states) const {
  const Matrix logits = actor_.forward_batch(states);
  std::vector<std::vector<Vector>> results;
  results.reserve(states.rows());
  for (std::size_t r = 0; r < states.rows(); ++r) {
    results.push_back(split_softmax(
        logits.data().subspan(r * logits.cols(), logits.cols()),
        uniform_temperatures(1.0)));
  }
  return results;
}

double PpoAgent::update(const RolloutBuffer& buffer) {
  const auto& steps = buffer.steps();
  const auto& advantages = buffer.advantages();
  const auto& returns = buffer.returns();
  EXPLORA_EXPECTS(!steps.empty());
  EXPLORA_EXPECTS(advantages.size() == steps.size());

  const auto offsets = head_offsets();
  std::vector<std::size_t> order(steps.size());
  std::iota(order.begin(), order.end(), 0);

  tm_updates_->add(1);
  tm_rollout_steps_->observe(static_cast<std::int64_t>(steps.size()));

  double last_epoch_loss = 0.0;
  for (std::size_t epoch = 0; epoch < config_.update_epochs; ++epoch) {
    shuffle_rng_.shuffle(order);
    tm_epochs_->add(1);
    last_epoch_loss = 0.0;
    std::size_t cursor = 0;
    while (cursor < order.size()) {
      const std::size_t batch_end =
          std::min(cursor + config_.minibatch_size, order.size());
      const double batch_n = static_cast<double>(batch_end - cursor);
      tm_minibatches_->add(1);
      tm_minibatch_rows_->observe(
          static_cast<std::int64_t>(batch_end - cursor));
      actor_.zero_grad();
      critic_.zero_grad();
      double batch_loss = 0.0;
      for (std::size_t b = cursor; b < batch_end; ++b) {
        const std::size_t i = order[b];
        const Transition& step = steps[i];
        const double advantage = advantages[i];

        // ---- Actor ----
        const Vector& logits = actor_.forward(step.state);
        const auto heads = split_softmax(logits, uniform_temperatures(1.0));
        const auto chosen = action_indices(step.action);
        double new_log_prob = 0.0;
        for (std::size_t h = 0; h < kNumHeads; ++h) {
          new_log_prob += std::log(std::max(heads[h][chosen[h]], kProbFloor));
        }
        const double ratio = std::exp(new_log_prob - step.log_prob);
        const double clipped = std::clamp(ratio, 1.0 - config_.clip_epsilon,
                                          1.0 + config_.clip_epsilon);
        const double surrogate =
            std::min(ratio * advantage, clipped * advantage);
        // The clipped-surrogate gradient flows only when the unclipped
        // branch is active.
        const bool pass_through = ratio * advantage <= clipped * advantage;
        const double dsurr_dlogp = pass_through ? ratio * advantage : 0.0;

        double entropy = 0.0;
        Vector logit_grad(logits.size(), 0.0);
        for (std::size_t h = 0; h < kNumHeads; ++h) {
          const auto& p = heads[h];
          // Entropy and its logit gradient.
          double h_ent = 0.0;
          double mean_logp_term = 0.0;
          for (std::size_t j = 0; j < p.size(); ++j) {
            const double pj = std::max(p[j], kProbFloor);
            h_ent -= pj * std::log(pj);
            mean_logp_term += pj * std::log(pj);
          }
          entropy += h_ent;
          for (std::size_t j = 0; j < p.size(); ++j) {
            const double pj = std::max(p[j], kProbFloor);
            // d(-logp_chosen)/dlogit_j = p_j - 1[j == chosen]
            const double dlogp =
                (j == chosen[h] ? 1.0 : 0.0) - p[j];
            // dH/dlogit_j = -p_j (log p_j - sum_k p_k log p_k)
            const double dent = -pj * (std::log(pj) - mean_logp_term);
            // Loss = -(surrogate + entropy_coef * H); average over batch.
            logit_grad[offsets[h] + j] =
                -(dsurr_dlogp * dlogp + config_.entropy_coef * dent) /
                batch_n;
          }
        }
        actor_.backward(logit_grad);

        // ---- Critic ----
        const Vector& v = critic_.forward(step.state);
        const double value_error = v[0] - returns[i];
        Vector value_grad(1, 2.0 * config_.value_coef * value_error / batch_n);
        critic_.backward(value_grad);

        batch_loss += -surrogate - config_.entropy_coef * entropy +
                      config_.value_coef * value_error * value_error;
      }
      actor_opt_.step();
      critic_opt_.step();
      last_epoch_loss += batch_loss;
      cursor = batch_end;
    }
    last_epoch_loss /= static_cast<double>(steps.size());
  }
  return last_epoch_loss;
}

void PpoAgent::serialize(common::BinaryWriter& writer) const {
  writer.write_u64(config_.state_dim);
  writer.write_u64(config_.hidden_dim);
  actor_.serialize(writer);
  critic_.serialize(writer);
}

void PpoAgent::deserialize(common::BinaryReader& reader) {
  if (reader.read_u64() != config_.state_dim ||
      reader.read_u64() != config_.hidden_dim) {
    throw common::SerializeError("agent shape mismatch");
  }
  actor_.deserialize(reader);
  critic_.deserialize(reader);
}

}  // namespace explora::ml
