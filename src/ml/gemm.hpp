// Blocked GEMM core behind Matrix::multiply / Mlp::forward_batch, with a
// deterministic fixed reduction order.
//
// Every backend computes, for each (batch row b, output neuron r):
//
//   acc = ((w[r][0]*x[b][0]) + w[r][1]*x[b][1]) + ... + w[r][in-1]*x[b][in-1]
//   y[b][r] = epilogue(acc [+ bias[r]])
//
// i.e. one multiply and one add per term, strictly in ascending input
// order — the exact dependency chain of the naive scalar loop. The SIMD
// backends vectorize ACROSS output neurons (each vector lane owns one r
// and keeps its own sequential-over-c chain, reading a packed transposed
// weight panel) and never use FMA or horizontal reductions, so their
// results are byte-identical to the scalar fallback on every input. That
// invariant is what keeps golden traces and SHAP attributions unchanged
// when EXPLORA_SIMD toggles; tests/test_gemm.cpp enforces it per shape
// and tools/lint_determinism.py bans raw intrinsics outside these kernels.
//
// Backend selection: the best compiled-in backend the CPU supports is
// picked on first use (avx512 > avx2 > neon > scalar); the EXPLORA_SIMD
// environment variable ("off"/"0"/"scalar" to disable, or a backend name
// like "avx2" to pin one) and set_backend()/ScopedBackend (tests, benches)
// override it at runtime. Configure-time: the EXPLORA_SIMD CMake option
// compiles the SIMD translation units out entirely.
#pragma once

#include <cstddef>
#include <cstdint>

namespace explora::ml::gemm {

enum class Backend : std::uint8_t {
  kScalar = 0,
  kAvx2 = 1,
  kNeon = 2,
  kAvx512 = 3,
};

[[nodiscard]] const char* to_string(Backend backend) noexcept;

/// Element-wise finisher fused into the kernel while the output tile is
/// cache-hot: y = act(acc + bias). kNone ignores `bias` (may be null).
enum class Epilogue : std::uint8_t {
  kNone = 0,
  kBias = 1,
  kBiasRelu = 2,
  kBiasTanh = 3,
};

/// True when `backend` is compiled in and supported by this CPU. kScalar
/// is always available.
[[nodiscard]] bool backend_available(Backend backend) noexcept;

/// Backend the next run() call dispatches to.
[[nodiscard]] Backend active_backend() noexcept;

/// Selects the dispatch backend. Returns false (keeping the current one)
/// when `backend` is unavailable on this build/CPU.
bool set_backend(Backend backend) noexcept;

/// RAII backend override for tests and benches; restores the previous
/// backend on destruction. Selecting an unavailable backend is a no-op
/// (engaged() reports whether the switch took).
class ScopedBackend {
 public:
  explicit ScopedBackend(Backend backend) noexcept
      : previous_(active_backend()), engaged_(set_backend(backend)) {}
  ~ScopedBackend() { set_backend(previous_); }
  ScopedBackend(const ScopedBackend&) = delete;
  ScopedBackend& operator=(const ScopedBackend&) = delete;
  [[nodiscard]] bool engaged() const noexcept { return engaged_; }

 private:
  Backend previous_;
  bool engaged_;
};

/// y (batch x out) = x (batch x in) * w (out x in)^T, plus the fused
/// epilogue. All pointers are row-major and must not alias. `bias` must
/// have `out` elements unless the epilogue is kNone.
void run(const double* w, std::size_t out, std::size_t in, const double* x,
         std::size_t batch, double* y, const double* bias, Epilogue epilogue);

namespace detail {

/// Portable reference kernel — the reduction-order contract in executable
/// form. Every SIMD backend must match it byte-for-byte.
void scalar_kernel(const double* w, std::size_t out, std::size_t in,
                   const double* x, std::size_t batch, double* y,
                   const double* bias, Epilogue epilogue);

#if defined(EXPLORA_SIMD_AVX2)
void avx2_kernel(const double* w, std::size_t out, std::size_t in,
                 const double* x, std::size_t batch, double* y,
                 const double* bias, Epilogue epilogue);
#endif
#if defined(EXPLORA_SIMD_AVX512)
void avx512_kernel(const double* w, std::size_t out, std::size_t in,
                   const double* x, std::size_t batch, double* y,
                   const double* bias, Epilogue epilogue);
#endif
#if defined(EXPLORA_SIMD_NEON)
void neon_kernel(const double* w, std::size_t out, std::size_t in,
                 const double* x, std::size_t batch, double* y,
                 const double* bias, Epilogue epilogue);
#endif

/// Scalar epilogue over one packed tile; shared by the SIMD backends so
/// the finisher semantics can't drift from scalar_kernel's.
void apply_epilogue(double* dst, const double* acc, const double* bias,
                    std::size_t r0, std::size_t valid,
                    Epilogue epilogue) noexcept;

}  // namespace detail

}  // namespace explora::ml::gemm
