// A small feed-forward neural network with reverse-mode gradients and an
// Adam optimizer — enough to train the paper's autoencoder and PPO
// actor/critic from scratch, with serialization for weight caching.
#pragma once

#include <cstdint>
#include <span>
#include <string>
#include <vector>

#include "common/rng.hpp"
#include "common/serialize.hpp"
#include "common/telemetry.hpp"
#include "ml/matrix.hpp"

namespace explora::ml {

enum class Activation : std::uint8_t { kLinear = 0, kRelu = 1, kTanh = 2 };

/// Applies an activation in place.
void apply_activation(Activation act, std::span<double> values) noexcept;
/// Multiplies `grad` in place by the activation derivative, given the
/// *post-activation* values in `activated`.
void apply_activation_grad(Activation act, std::span<const double> activated,
                           std::span<double> grad) noexcept;

/// Numerically stable in-place softmax.
void softmax(std::span<double> logits) noexcept;

/// Fully-connected layer y = act(Wx + b) with gradient accumulation.
class DenseLayer {
 public:
  /// He/Xavier-style initialization scaled for the activation.
  DenseLayer(std::size_t in, std::size_t out, Activation act,
             common::Rng& rng);

  [[nodiscard]] std::size_t in_size() const noexcept { return weights_.cols(); }
  [[nodiscard]] std::size_t out_size() const noexcept {
    return weights_.rows();
  }
  [[nodiscard]] Activation activation() const noexcept { return act_; }

  /// Forward pass; `out.size() == out_size()`. Caches nothing — the MLP
  /// owns the activation tape so one layer can serve many passes.
  void forward(std::span<const double> in, std::span<double> out) const;

  /// Batched forward: `in` is (batch x in_size), `out` (batch x out_size).
  /// Row b of `out` is bit-identical to forward() on row b of `in`.
  void forward_batch(const Matrix& in, Matrix& out) const;

  /// Backward pass. `activated` is this layer's forward output for `in`;
  /// `grad_out` is dL/d(activated) and is clobbered; `grad_in` receives
  /// dL/d(in). Parameter gradients are accumulated into the grad buffers.
  void backward(std::span<const double> in, std::span<const double> activated,
                std::span<double> grad_out, std::span<double> grad_in);

  void zero_grad() noexcept;

  /// Flattened parameter / gradient access for the optimizer.
  [[nodiscard]] std::size_t parameter_count() const noexcept;
  void collect_parameters(std::vector<double*>& params,
                          std::vector<double*>& grads);

  void serialize(common::BinaryWriter& writer) const;
  void deserialize(common::BinaryReader& reader);

 private:
  Matrix weights_;
  Vector bias_;
  Matrix weight_grad_;
  Vector bias_grad_;
  Activation act_;
};

/// Multi-layer perceptron: a stack of DenseLayers with a forward tape so
/// backward() can be called right after forward() for the same input.
class Mlp {
 public:
  /// @param layer_sizes sizes including input and output, e.g. {90,32,9}.
  /// @param hidden activation for all layers but the last.
  /// @param output activation of the final layer.
  Mlp(std::vector<std::size_t> layer_sizes, Activation hidden,
      Activation output, common::Rng& rng);

  [[nodiscard]] std::size_t in_size() const noexcept;
  [[nodiscard]] std::size_t out_size() const noexcept;

  /// Forward pass recording the activation tape; returns the output.
  [[nodiscard]] const Vector& forward(std::span<const double> in);
  /// Forward without touching the tape (thread-compatible inference).
  void infer(std::span<const double> in, std::span<double> out) const;

  /// Batched inference: pushes all rows of `in` (batch x in_size) through
  /// the network layer by layer — one multiply_batch per layer instead of
  /// `batch` infer() calls. Thread-compatible (no tape); each returned row
  /// is bit-identical to infer() on that input row.
  [[nodiscard]] Matrix forward_batch(const Matrix& in) const;

  /// Backpropagates dL/d(output) through the recorded tape, accumulating
  /// parameter gradients; returns dL/d(input).
  Vector backward(std::span<const double> grad_output);

  void zero_grad() noexcept;
  [[nodiscard]] std::size_t parameter_count() const noexcept;
  void collect_parameters(std::vector<double*>& params,
                          std::vector<double*>& grads);

  void serialize(common::BinaryWriter& writer) const;
  void deserialize(common::BinaryReader& reader);

 private:
  std::vector<DenseLayer> layers_;
  /// tape_[0] = input copy, tape_[i+1] = output of layer i.
  std::vector<Vector> tape_;

  // Telemetry (ml.mlp.*), bound at construction; copies of an Mlp share
  // the originals' metrics. Batched forwards run concurrently from pool
  // workers, so the underlying metrics are atomics.
  telemetry::Counter* tm_forward_batches_;
  telemetry::Counter* tm_backward_calls_;
  telemetry::Histogram* tm_batch_rows_;
};

/// Adam optimizer over pointers into one or more networks' parameters.
class AdamOptimizer {
 public:
  struct Config {
    double learning_rate = 1e-3;
    double beta1 = 0.9;
    double beta2 = 0.999;
    double epsilon = 1e-8;
    double max_grad_norm = 5.0;  ///< global-norm clip; <= 0 disables
  };

  AdamOptimizer();
  explicit AdamOptimizer(Config config);

  /// Registers a network's parameters; call once per network before step().
  void attach(Mlp& network);

  /// One Adam update from the currently accumulated gradients, then zeros
  /// nothing (callers zero grads when starting the next accumulation).
  void step();

  void set_learning_rate(double lr) noexcept { config_.learning_rate = lr; }
  [[nodiscard]] double learning_rate() const noexcept {
    return config_.learning_rate;
  }

 private:
  Config config_;
  std::vector<double*> params_;
  std::vector<double*> grads_;
  std::vector<double> m_;
  std::vector<double> v_;
  std::int64_t t_ = 0;
};

}  // namespace explora::ml
