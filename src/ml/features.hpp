// The feature pipeline of the paper's DRL framework (Fig. 2): the input
// matrix I (M x K x L slice-aggregated KPI measurements), per-KPI
// normalization into [-1, 1], and the mapping between the agent's discrete
// action heads and the gNB's SlicingControl.
#pragma once

#include <array>
#include <cstdint>
#include <deque>

#include "common/serialize.hpp"
#include "ml/matrix.hpp"
#include "netsim/kpi.hpp"
#include "netsim/types.hpp"

namespace explora::ml {

/// M: individual E2 measurements per decision (paper §3.1).
inline constexpr std::size_t kHistory = 10;
/// Flattened input dimension M * K * L = 10 * 3 * 3.
inline constexpr std::size_t kInputDim =
    kHistory * netsim::kNumKpis * netsim::kNumSlices;
/// Latent dimension K * L = 9 (autoencoder output, Fig. 2).
inline constexpr std::size_t kLatentDim =
    netsim::kNumKpis * netsim::kNumSlices;

/// Per-(KPI, slice) affine scaler into [-1, 1], fit on observed data.
/// The paper applies the same basic scaling before the autoencoder (§3.1
/// footnote). Serializable so the training-time fit is reused at inference.
class KpiNormalizer {
 public:
  KpiNormalizer();

  /// Expands the fitted range to cover this report's values.
  void observe(const netsim::KpiReport& report);
  /// Normalizes one raw slice-aggregate value into [-1, 1] (clamped).
  [[nodiscard]] double normalize(netsim::Kpi kpi, netsim::Slice slice,
                                 double value) const;
  /// Inverse transform (for reconstruction/error reporting).
  [[nodiscard]] double denormalize(netsim::Kpi kpi, netsim::Slice slice,
                                   double value) const;

  void serialize(common::BinaryWriter& writer) const;
  void deserialize(common::BinaryReader& reader);

 private:
  struct Range {
    double lo = 0.0;
    double hi = 1.0;
  };
  [[nodiscard]] Range& range(netsim::Kpi kpi, netsim::Slice slice);
  [[nodiscard]] const Range& range(netsim::Kpi kpi,
                                   netsim::Slice slice) const;

  std::array<Range, netsim::kNumKpis * netsim::kNumSlices> ranges_;
};

/// Sliding window over the last M KPI reports that assembles the flattened,
/// normalized input matrix I for the autoencoder.
class InputWindow {
 public:
  /// Pushes the newest report, evicting the oldest beyond M.
  void push(const netsim::KpiReport& report);

  /// True once M reports have been observed.
  [[nodiscard]] bool ready() const noexcept {
    return reports_.size() == kHistory;
  }
  [[nodiscard]] std::size_t size() const noexcept { return reports_.size(); }

  /// Flattened normalized input (size kInputDim), ordered m-major then
  /// KPI-major then slice: i[m][k][l]. Requires ready().
  [[nodiscard]] Vector flatten(const KpiNormalizer& normalizer) const;

  /// Raw (un-normalized) slice aggregate of the most recent report.
  [[nodiscard]] const netsim::KpiReport& latest() const;
  /// Mean of a KPI's slice aggregate across the window (reward input).
  [[nodiscard]] double window_mean(netsim::Kpi kpi,
                                   netsim::Slice slice) const;

  void clear() noexcept { reports_.clear(); }

 private:
  std::deque<netsim::KpiReport> reports_;
};

/// The agent's discrete multi-modal action: index into the PRB-split
/// catalogue plus one scheduler choice per slice.
struct AgentAction {
  std::size_t prb_choice = 0;
  std::array<std::size_t, netsim::kNumSlices> sched_choice{};

  friend bool operator==(const AgentAction&, const AgentAction&) = default;
};

/// Converts an AgentAction to the gNB control it encodes.
[[nodiscard]] netsim::SlicingControl to_control(const AgentAction& action);

/// Inverse mapping; throws std::out_of_range when the control's PRB split
/// is not in the catalogue.
[[nodiscard]] AgentAction from_control(const netsim::SlicingControl& control);

}  // namespace explora::ml
