// The agent abstraction the paper's Fig. 5 relies on: EXPLORA (and the
// DRL xApp) only need a policy that maps latent states to multi-modal
// actions — "this approach can be easily applied to a variety of DRL
// models such as DQN, PPO or A3C" (§4.2). PpoAgent and DqnAgent implement
// this interface; the xApps program against it.
#pragma once

#include <array>
#include <cstdint>
#include <span>

#include "common/rng.hpp"
#include "ml/features.hpp"
#include "ml/matrix.hpp"

namespace explora::ml {

/// Number of categorical heads: PRB split + one scheduler per slice.
inline constexpr std::size_t kNumHeads = 1 + netsim::kNumSlices;

/// Policy evaluation output for one state.
struct PolicyDecision {
  AgentAction action{};
  double log_prob = 0.0;
  double value = 0.0;
  /// Per-head probability (or normalized preference) of the chosen
  /// component (diagnostics/XAI).
  std::array<double, kNumHeads> head_probs{};
};

/// Inference-side view of a trained multi-modal agent.
class PolicyAgent {
 public:
  virtual ~PolicyAgent() = default;

  /// Deterministic (deployment) action.
  [[nodiscard]] virtual PolicyDecision act_greedy(
      std::span<const double> state) const = 0;

  /// Stochastic action; `temperatures[h]` controls how sharply head h
  /// concentrates around its greedy choice (1.0 = the trained policy /
  /// canonical exploration, lower = colder).
  [[nodiscard]] virtual PolicyDecision act(
      std::span<const double> state, common::Rng& rng,
      const std::array<double, kNumHeads>& temperatures) const = 0;

  /// Per-head distributions over the action components at `state`
  /// (what SHAP explains).
  [[nodiscard]] virtual std::vector<Vector> head_distributions(
      std::span<const double> state) const = 0;

  /// Batched variant: one state per row of `states`, one per-head result
  /// per row. The default walks rows through the single-state overload;
  /// agents backed by an Mlp override it to push the whole batch through
  /// each layer as one blocked-GEMM sweep (same arithmetic per row, so the
  /// results are bit-identical to the default).
  [[nodiscard]] virtual std::vector<std::vector<Vector>> head_distributions(
      const Matrix& states) const {
    std::vector<std::vector<Vector>> results;
    results.reserve(states.rows());
    for (std::size_t r = 0; r < states.rows(); ++r) {
      results.push_back(head_distributions(
          states.data().subspan(r * states.cols(), states.cols())));
    }
    return results;
  }
};

}  // namespace explora::ml
