#include "ml/autoencoder.hpp"

#include <algorithm>
#include <numeric>

#include "common/contracts.hpp"

namespace explora::ml {

namespace {

Mlp make_encoder(const Autoencoder::Config& config, common::Rng& rng) {
  // tanh latent keeps the code bounded in [-1, 1], matching the KPI scaling.
  return Mlp({config.input_dim, config.hidden_dim, config.latent_dim},
             Activation::kRelu, Activation::kTanh, rng);
}

Mlp make_decoder(const Autoencoder::Config& config, common::Rng& rng) {
  return Mlp({config.latent_dim, config.hidden_dim, config.input_dim},
             Activation::kRelu, Activation::kLinear, rng);
}

}  // namespace

Autoencoder::Autoencoder(std::uint64_t seed) : Autoencoder(Config{}, seed) {}

Autoencoder::Autoencoder(Config config, std::uint64_t seed)
    : config_(config),
      rng_(seed),
      encoder_(make_encoder(config_, rng_)),
      decoder_(make_decoder(config_, rng_)) {
  EXPLORA_EXPECTS(config.input_dim > config.latent_dim);
  EXPLORA_EXPECTS(config.batch_size > 0);
}

double Autoencoder::train(const std::vector<Vector>& dataset) {
  EXPLORA_EXPECTS(!dataset.empty());
  for (const auto& row : dataset) {
    EXPLORA_EXPECTS(row.size() == config_.input_dim);
  }

  AdamOptimizer::Config opt_config;
  opt_config.learning_rate = config_.learning_rate;
  AdamOptimizer enc_opt(opt_config);
  AdamOptimizer dec_opt(opt_config);
  enc_opt.attach(encoder_);
  dec_opt.attach(decoder_);

  std::vector<std::size_t> order(dataset.size());
  std::iota(order.begin(), order.end(), 0);

  double epoch_mse = 0.0;
  for (std::size_t epoch = 0; epoch < config_.epochs; ++epoch) {
    rng_.shuffle(order);
    epoch_mse = 0.0;
    std::size_t cursor = 0;
    while (cursor < order.size()) {
      const std::size_t batch_end =
          std::min(cursor + config_.batch_size, order.size());
      const double batch_n = static_cast<double>(batch_end - cursor);
      encoder_.zero_grad();
      decoder_.zero_grad();
      for (std::size_t b = cursor; b < batch_end; ++b) {
        const Vector& x = dataset[order[b]];
        const Vector& code = encoder_.forward(x);
        const Vector& recon = decoder_.forward(code);
        // MSE loss: L = mean((recon - x)^2); dL/drecon = 2(recon - x)/n.
        Vector grad(recon.size());
        double mse = 0.0;
        for (std::size_t i = 0; i < recon.size(); ++i) {
          const double diff = recon[i] - x[i];
          mse += diff * diff;
          grad[i] = 2.0 * diff /
                    (static_cast<double>(recon.size()) * batch_n);
        }
        epoch_mse += mse / static_cast<double>(recon.size());
        const Vector code_grad = decoder_.backward(grad);
        encoder_.backward(code_grad);
      }
      enc_opt.step();
      dec_opt.step();
      cursor = batch_end;
    }
    epoch_mse /= static_cast<double>(dataset.size());
  }
  return epoch_mse;
}

Vector Autoencoder::encode(std::span<const double> input) const {
  Vector code(config_.latent_dim, 0.0);
  encoder_.infer(input, code);
  return code;
}

Vector Autoencoder::reconstruct(std::span<const double> input) const {
  Vector code(config_.latent_dim, 0.0);
  encoder_.infer(input, code);
  Vector recon(config_.input_dim, 0.0);
  decoder_.infer(code, recon);
  return recon;
}

double Autoencoder::evaluate(const std::vector<Vector>& dataset) const {
  EXPLORA_EXPECTS(!dataset.empty());
  double total = 0.0;
  for (const auto& x : dataset) {
    const Vector recon = reconstruct(x);
    double mse = 0.0;
    for (std::size_t i = 0; i < x.size(); ++i) {
      const double diff = recon[i] - x[i];
      mse += diff * diff;
    }
    total += mse / static_cast<double>(x.size());
  }
  return total / static_cast<double>(dataset.size());
}

void Autoencoder::serialize(common::BinaryWriter& writer) const {
  writer.write_u64(config_.input_dim);
  writer.write_u64(config_.hidden_dim);
  writer.write_u64(config_.latent_dim);
  encoder_.serialize(writer);
  decoder_.serialize(writer);
}

void Autoencoder::deserialize(common::BinaryReader& reader) {
  if (reader.read_u64() != config_.input_dim ||
      reader.read_u64() != config_.hidden_dim ||
      reader.read_u64() != config_.latent_dim) {
    throw common::SerializeError("autoencoder shape mismatch");
  }
  encoder_.deserialize(reader);
  decoder_.deserialize(reader);
}

}  // namespace explora::ml
