#include "ml/a2c.hpp"

#include <algorithm>
#include <cmath>

#include "common/contracts.hpp"
#include "netsim/types.hpp"

namespace explora::ml {

namespace {

constexpr double kProbFloor = 1e-12;

std::size_t sample_categorical(std::span<const double> probs,
                               common::Rng& rng) {
  const double u = rng.uniform();
  double acc = 0.0;
  for (std::size_t i = 0; i < probs.size(); ++i) {
    acc += probs[i];
    if (u < acc) return i;
  }
  return probs.size() - 1;
}

}  // namespace

std::array<std::size_t, kNumHeads> A2cAgent::head_sizes() {
  std::array<std::size_t, kNumHeads> sizes{};
  sizes[0] = netsim::prb_catalog().size();
  for (std::size_t s = 0; s < netsim::kNumSlices; ++s) {
    sizes[1 + s] = netsim::kNumSchedulerPolicies;
  }
  return sizes;
}

std::array<std::size_t, kNumHeads + 1> A2cAgent::head_offsets() const {
  const auto sizes = head_sizes();
  std::array<std::size_t, kNumHeads + 1> offsets{};
  for (std::size_t h = 0; h < kNumHeads; ++h) {
    offsets[h + 1] = offsets[h] + sizes[h];
  }
  return offsets;
}

A2cAgent::A2cAgent(std::uint64_t seed) : A2cAgent(Config{}, seed) {}

A2cAgent::A2cAgent(Config config, std::uint64_t seed)
    : config_(config),
      init_rng_(seed),
      actor_({config_.state_dim, config_.hidden_dim, config_.hidden_dim,
              head_offsets()[kNumHeads]},
             Activation::kTanh, Activation::kLinear, init_rng_),
      critic_({config_.state_dim, config_.hidden_dim, config_.hidden_dim, 1},
              Activation::kTanh, Activation::kLinear, init_rng_) {
  AdamOptimizer::Config opt;
  opt.learning_rate = config_.learning_rate;
  actor_opt_ = AdamOptimizer(opt);
  critic_opt_ = AdamOptimizer(opt);
  actor_opt_.attach(actor_);
  critic_opt_.attach(critic_);
}

std::vector<Vector> A2cAgent::split_softmax(
    std::span<const double> logits,
    const std::array<double, kNumHeads>& temperatures) const {
  const auto offsets = head_offsets();
  std::vector<Vector> heads;
  heads.reserve(kNumHeads);
  for (std::size_t h = 0; h < kNumHeads; ++h) {
    EXPLORA_EXPECTS(temperatures[h] > 0.0);
    Vector head(logits.begin() + static_cast<std::ptrdiff_t>(offsets[h]),
                logits.begin() + static_cast<std::ptrdiff_t>(offsets[h + 1]));
    if (temperatures[h] != 1.0) {  // det-ok: float-eq (skip exact identity temperature)
      for (double& v : head) v /= temperatures[h];
    }
    softmax(head);
    EXPLORA_AUDIT_MSG(contracts::is_probability_simplex(head),
                      "A2C head {} is not a probability distribution", h);
    heads.push_back(std::move(head));
  }
  return heads;
}

PolicyDecision A2cAgent::decide(std::span<const double> state,
                                common::Rng* rng,
                                const std::array<double, kNumHeads>&
                                    temperatures) const {
  Vector logits(actor_.out_size(), 0.0);
  actor_.infer(state, logits);
  const auto heads = split_softmax(logits, temperatures);

  PolicyDecision decision;
  std::array<std::size_t, kNumHeads> chosen{};
  for (std::size_t h = 0; h < kNumHeads; ++h) {
    if (rng != nullptr) {
      chosen[h] = sample_categorical(heads[h], *rng);
    } else {
      chosen[h] = static_cast<std::size_t>(
          std::distance(heads[h].begin(),
                        std::max_element(heads[h].begin(), heads[h].end())));
    }
    const double p = std::max(heads[h][chosen[h]], kProbFloor);
    decision.log_prob += std::log(p);
    decision.head_probs[h] = heads[h][chosen[h]];
  }
  decision.action.prb_choice = chosen[0];
  for (std::size_t s = 0; s < netsim::kNumSlices; ++s) {
    decision.action.sched_choice[s] = chosen[1 + s];
  }
  decision.value = value(state);
  return decision;
}

PolicyDecision A2cAgent::act_greedy(std::span<const double> state) const {
  std::array<double, kNumHeads> unit{};
  unit.fill(1.0);
  return decide(state, nullptr, unit);
}

PolicyDecision A2cAgent::act(
    std::span<const double> state, common::Rng& rng,
    const std::array<double, kNumHeads>& temperatures) const {
  return decide(state, &rng, temperatures);
}

std::vector<Vector> A2cAgent::head_distributions(
    std::span<const double> state) const {
  Vector logits(actor_.out_size(), 0.0);
  actor_.infer(state, logits);
  std::array<double, kNumHeads> unit{};
  unit.fill(1.0);
  return split_softmax(logits, unit);
}

std::vector<std::vector<Vector>> A2cAgent::head_distributions(
    const Matrix& states) const {
  const Matrix logits = actor_.forward_batch(states);
  std::array<double, kNumHeads> unit{};
  unit.fill(1.0);
  std::vector<std::vector<Vector>> results;
  results.reserve(states.rows());
  for (std::size_t r = 0; r < states.rows(); ++r) {
    results.push_back(split_softmax(
        logits.data().subspan(r * logits.cols(), logits.cols()), unit));
  }
  return results;
}

double A2cAgent::value(std::span<const double> state) const {
  Vector out(1, 0.0);
  critic_.infer(state, out);
  return out[0];
}

double A2cAgent::update(const std::vector<Transition>& rollout,
                        double bootstrap_value) {
  EXPLORA_EXPECTS(!rollout.empty());
  const auto offsets = head_offsets();

  // n-step discounted returns from the tail.
  Vector returns(rollout.size(), 0.0);
  double running = bootstrap_value;
  for (std::size_t i = rollout.size(); i-- > 0;) {
    running = rollout[i].terminal
                  ? rollout[i].reward
                  : rollout[i].reward + config_.gamma * running;
    returns[i] = running;
  }

  actor_.zero_grad();
  critic_.zero_grad();
  const double n = static_cast<double>(rollout.size());
  double total_loss = 0.0;
  for (std::size_t i = 0; i < rollout.size(); ++i) {
    const Transition& step = rollout[i];
    const auto chosen = std::array<std::size_t, kNumHeads>{
        step.action.prb_choice, step.action.sched_choice[0],
        step.action.sched_choice[1], step.action.sched_choice[2]};

    // Critic: value regression toward the n-step return.
    const Vector& v = critic_.forward(step.state);
    const double advantage = returns[i] - v[0];
    critic_.backward(Vector{2.0 * config_.value_coef * (v[0] - returns[i]) /
                            n});

    // Actor: vanilla policy gradient with the critic baseline + entropy.
    const Vector& logits = actor_.forward(step.state);
    std::array<double, kNumHeads> unit{};
    unit.fill(1.0);
    const auto heads = split_softmax(logits, unit);
    Vector logit_grad(logits.size(), 0.0);
    double entropy = 0.0;
    for (std::size_t h = 0; h < kNumHeads; ++h) {
      const auto& p = heads[h];
      double mean_logp = 0.0;
      for (double pj : p) {
        const double clamped = std::max(pj, kProbFloor);
        entropy -= clamped * std::log(clamped);
        mean_logp += clamped * std::log(clamped);
      }
      for (std::size_t j = 0; j < p.size(); ++j) {
        const double pj = std::max(p[j], kProbFloor);
        const double dlogp = (j == chosen[h] ? 1.0 : 0.0) - p[j];
        const double dent = -pj * (std::log(pj) - mean_logp);
        logit_grad[offsets[h] + j] =
            -(advantage * dlogp + config_.entropy_coef * dent) / n;
      }
    }
    actor_.backward(logit_grad);
    total_loss += -advantage * step.log_prob +
                  config_.value_coef * advantage * advantage;
  }
  actor_opt_.step();
  critic_opt_.step();
  return total_loss / n;
}

void A2cAgent::serialize(common::BinaryWriter& writer) const {
  writer.write_u64(config_.state_dim);
  writer.write_u64(config_.hidden_dim);
  actor_.serialize(writer);
  critic_.serialize(writer);
}

void A2cAgent::deserialize(common::BinaryReader& reader) {
  if (reader.read_u64() != config_.state_dim ||
      reader.read_u64() != config_.hidden_dim) {
    throw common::SerializeError("A2C shape mismatch");
  }
  actor_.deserialize(reader);
  critic_.deserialize(reader);
}

}  // namespace explora::ml
