#include "ml/nn.hpp"

#include <algorithm>
#include <cmath>

#include "common/analysis_annotations.hpp"
#include "common/contracts.hpp"
#include "ml/gemm.hpp"

namespace explora::ml {

namespace {

/// Maps a layer activation to the GEMM epilogue that fuses bias-add and
/// activation into the kernel while the output tile is cache-hot. The
/// fused arithmetic is the same (acc + bias, then the activation) in the
/// same element order, so results match the old two-pass code exactly.
[[nodiscard]] gemm::Epilogue epilogue_for(Activation act) noexcept {
  switch (act) {
    case Activation::kLinear: return gemm::Epilogue::kBias;
    case Activation::kRelu: return gemm::Epilogue::kBiasRelu;
    case Activation::kTanh: return gemm::Epilogue::kBiasTanh;
  }
  return gemm::Epilogue::kBias;
}

}  // namespace

void apply_activation(Activation act, std::span<double> values) noexcept {
  switch (act) {
    case Activation::kLinear:
      return;
    case Activation::kRelu:
      for (double& v : values) v = v > 0.0 ? v : 0.0;
      return;
    case Activation::kTanh:
      for (double& v : values) v = std::tanh(v);
      return;
  }
}

void apply_activation_grad(Activation act, std::span<const double> activated,
                           std::span<double> grad) noexcept {
  EXPLORA_EXPECTS(activated.size() == grad.size());
  switch (act) {
    case Activation::kLinear:
      return;
    case Activation::kRelu:
      for (std::size_t i = 0; i < grad.size(); ++i) {
        if (activated[i] <= 0.0) grad[i] = 0.0;
      }
      return;
    case Activation::kTanh:
      for (std::size_t i = 0; i < grad.size(); ++i) {
        grad[i] *= 1.0 - activated[i] * activated[i];
      }
      return;
  }
}

void softmax(std::span<double> logits) noexcept {
  if (logits.empty()) return;
  EXPLORA_AUDIT_MSG(contracts::all_finite(logits),
                    "softmax over {} non-finite logits", logits.size());
  const double peak = *std::max_element(logits.begin(), logits.end());
  double sum = 0.0;
  for (double& v : logits) {
    v = std::exp(v - peak);
    sum += v;
  }
  for (double& v : logits) v /= sum;
  EXPLORA_AUDIT_MSG(contracts::is_probability_simplex(logits),
                    "softmax output of size {} left the probability simplex",
                    logits.size());
}

DenseLayer::DenseLayer(std::size_t in, std::size_t out, Activation act,
                       common::Rng& rng)
    : weights_(out, in),
      bias_(out, 0.0),
      weight_grad_(out, in),
      bias_grad_(out, 0.0),
      act_(act) {
  EXPLORA_EXPECTS(in > 0 && out > 0);
  // He initialization for ReLU, Xavier for tanh/linear.
  const double scale =
      act == Activation::kRelu
          ? std::sqrt(2.0 / static_cast<double>(in))
          : std::sqrt(1.0 / static_cast<double>(in));
  for (double& w : weights_.data()) w = rng.normal(0.0, scale);
}

EXPLORA_REALTIME void DenseLayer::forward(std::span<const double> in,
                                          std::span<double> out) const {
  EXPLORA_EXPECTS(in.size() == in_size() && out.size() == out_size());
  EXPLORA_AUDIT(contracts::all_finite(in));
  gemm::run(weights_.data().data(), out_size(), in_size(), in.data(), 1,
            out.data(), bias_.data(), epilogue_for(act_));
}

EXPLORA_REALTIME void DenseLayer::forward_batch(const Matrix& in,
                                                Matrix& out) const {
  EXPLORA_EXPECTS(in.cols() == in_size());
  EXPLORA_EXPECTS(out.rows() == in.rows() && out.cols() == out_size());
  EXPLORA_AUDIT(contracts::all_finite(in.data()));
  gemm::run(weights_.data().data(), out_size(), in_size(), in.data().data(),
            in.rows(), out.data().data(), bias_.data(), epilogue_for(act_));
}

void DenseLayer::backward(std::span<const double> in,
                          std::span<const double> activated,
                          std::span<double> grad_out,
                          std::span<double> grad_in) {
  apply_activation_grad(act_, activated, grad_out);
  // dW += grad_out (x) in ; db += grad_out
  weight_grad_.add_outer(1.0, grad_out, in);
  for (std::size_t i = 0; i < grad_out.size(); ++i) {
    bias_grad_[i] += grad_out[i];
  }
  weights_.multiply_transposed(grad_out, grad_in);
}

void DenseLayer::zero_grad() noexcept {
  weight_grad_.fill(0.0);
  std::fill(bias_grad_.begin(), bias_grad_.end(), 0.0);
}

std::size_t DenseLayer::parameter_count() const noexcept {
  return weights_.size() + bias_.size();
}

void DenseLayer::collect_parameters(std::vector<double*>& params,
                                    std::vector<double*>& grads) {
  auto weight_data = weights_.data();
  auto grad_data = weight_grad_.data();
  for (std::size_t i = 0; i < weight_data.size(); ++i) {
    params.push_back(&weight_data[i]);
    grads.push_back(&grad_data[i]);
  }
  for (std::size_t i = 0; i < bias_.size(); ++i) {
    params.push_back(&bias_[i]);
    grads.push_back(&bias_grad_[i]);
  }
}

void DenseLayer::serialize(common::BinaryWriter& writer) const {
  writer.write_u64(weights_.rows());
  writer.write_u64(weights_.cols());
  writer.write_u32(static_cast<std::uint32_t>(act_));
  writer.write_f64_vector(
      std::vector<double>(weights_.data().begin(), weights_.data().end()));
  writer.write_f64_vector(bias_);
}

void DenseLayer::deserialize(common::BinaryReader& reader) {
  const auto rows = reader.read_u64();
  const auto cols = reader.read_u64();
  const auto act = static_cast<Activation>(reader.read_u32());
  if (rows != weights_.rows() || cols != weights_.cols() || act != act_) {
    throw common::SerializeError("layer shape mismatch on load");
  }
  const auto weight_values = reader.read_f64_vector();
  const auto bias_values = reader.read_f64_vector();
  if (weight_values.size() != weights_.size() ||
      bias_values.size() != bias_.size()) {
    throw common::SerializeError("layer payload size mismatch");
  }
  std::copy(weight_values.begin(), weight_values.end(),
            weights_.data().begin());
  bias_ = bias_values;
}

Mlp::Mlp(std::vector<std::size_t> layer_sizes, Activation hidden,
         Activation output, common::Rng& rng) {
  EXPLORA_EXPECTS(layer_sizes.size() >= 2);
  layers_.reserve(layer_sizes.size() - 1);
  for (std::size_t i = 0; i + 1 < layer_sizes.size(); ++i) {
    const bool last = i + 2 == layer_sizes.size();
    layers_.emplace_back(layer_sizes[i], layer_sizes[i + 1],
                         last ? output : hidden, rng);
  }
  tape_.resize(layer_sizes.size());
  for (std::size_t i = 0; i < layer_sizes.size(); ++i) {
    tape_[i].resize(layer_sizes[i], 0.0);
  }
  telemetry::Scope scope("ml.mlp");
  tm_forward_batches_ = &scope.counter("forward_batches");
  tm_backward_calls_ = &scope.counter("backward_calls");
  static constexpr std::int64_t kRowBounds[] = {1, 8, 32, 128, 512, 2048};
  tm_batch_rows_ = &scope.histogram("forward_batch_rows", kRowBounds);
}

std::size_t Mlp::in_size() const noexcept { return layers_.front().in_size(); }
std::size_t Mlp::out_size() const noexcept {
  return layers_.back().out_size();
}

const Vector& Mlp::forward(std::span<const double> in) {
  EXPLORA_EXPECTS(in.size() == in_size());
  std::copy(in.begin(), in.end(), tape_[0].begin());
  for (std::size_t i = 0; i < layers_.size(); ++i) {
    layers_[i].forward(tape_[i], tape_[i + 1]);
  }
  return tape_.back();
}

void Mlp::infer(std::span<const double> in, std::span<double> out) const {
  EXPLORA_EXPECTS(in.size() == in_size());
  EXPLORA_EXPECTS(out.size() == out_size());
  Vector scratch_a(in.begin(), in.end());
  Vector scratch_b;
  for (std::size_t i = 0; i < layers_.size(); ++i) {
    scratch_b.assign(layers_[i].out_size(), 0.0);
    layers_[i].forward(scratch_a, scratch_b);
    scratch_a.swap(scratch_b);
  }
  std::copy(scratch_a.begin(), scratch_a.end(), out.begin());
}

EXPLORA_NONBLOCKING Matrix Mlp::forward_batch(const Matrix& in) const {
  EXPLORA_EXPECTS(in.cols() == in_size());
  tm_forward_batches_->add(1);
  tm_batch_rows_->observe(static_cast<std::int64_t>(in.rows()));
  Matrix current(in.rows(), layers_.front().out_size());
  layers_.front().forward_batch(in, current);
  for (std::size_t i = 1; i < layers_.size(); ++i) {
    Matrix next(current.rows(), layers_[i].out_size());
    layers_[i].forward_batch(current, next);
    current = std::move(next);
  }
  return current;
}

Vector Mlp::backward(std::span<const double> grad_output) {
  EXPLORA_EXPECTS(grad_output.size() == out_size());
  tm_backward_calls_->add(1);
  Vector grad_out(grad_output.begin(), grad_output.end());
  Vector grad_in;
  for (std::size_t i = layers_.size(); i-- > 0;) {
    grad_in.assign(layers_[i].in_size(), 0.0);
    layers_[i].backward(tape_[i], tape_[i + 1], grad_out, grad_in);
    grad_out.swap(grad_in);
  }
  return grad_out;
}

void Mlp::zero_grad() noexcept {
  for (auto& layer : layers_) layer.zero_grad();
}

std::size_t Mlp::parameter_count() const noexcept {
  std::size_t total = 0;
  for (const auto& layer : layers_) total += layer.parameter_count();
  return total;
}

void Mlp::collect_parameters(std::vector<double*>& params,
                             std::vector<double*>& grads) {
  for (auto& layer : layers_) layer.collect_parameters(params, grads);
}

void Mlp::serialize(common::BinaryWriter& writer) const {
  writer.write_u64(layers_.size());
  for (const auto& layer : layers_) layer.serialize(writer);
}

void Mlp::deserialize(common::BinaryReader& reader) {
  const auto count = reader.read_u64();
  if (count != layers_.size()) {
    throw common::SerializeError("network depth mismatch on load");
  }
  for (auto& layer : layers_) layer.deserialize(reader);
}

AdamOptimizer::AdamOptimizer() : AdamOptimizer(Config{}) {}

AdamOptimizer::AdamOptimizer(Config config) : config_(config) {
  EXPLORA_EXPECTS(config.learning_rate > 0.0);
}

void AdamOptimizer::attach(Mlp& network) {
  network.collect_parameters(params_, grads_);
  m_.assign(params_.size(), 0.0);
  v_.assign(params_.size(), 0.0);
  t_ = 0;
}

void AdamOptimizer::step() {
  EXPLORA_EXPECTS(!params_.empty());
  if (config_.max_grad_norm > 0.0) {
    double norm_sq = 0.0;
    for (const double* g : grads_) norm_sq += *g * *g;
    const double norm = std::sqrt(norm_sq);
    if (norm > config_.max_grad_norm) {
      const double scale = config_.max_grad_norm / norm;
      for (double* g : grads_) *g *= scale;
    }
  }
  ++t_;
  const double bias1 = 1.0 - std::pow(config_.beta1, static_cast<double>(t_));
  const double bias2 = 1.0 - std::pow(config_.beta2, static_cast<double>(t_));
  for (std::size_t i = 0; i < params_.size(); ++i) {
    const double g = *grads_[i];
    m_[i] = config_.beta1 * m_[i] + (1.0 - config_.beta1) * g;
    v_[i] = config_.beta2 * v_[i] + (1.0 - config_.beta2) * g * g;
    const double m_hat = m_[i] / bias1;
    const double v_hat = v_[i] / bias2;
    *params_[i] -=
        config_.learning_rate * m_hat / (std::sqrt(v_hat) + config_.epsilon);
  }
}

}  // namespace explora::ml
