#include "ml/matrix.hpp"

#include <algorithm>

#include "common/contracts.hpp"

namespace explora::ml {

Matrix::Matrix(std::size_t rows, std::size_t cols)
    : rows_(rows), cols_(cols), data_(rows * cols, 0.0) {}

void Matrix::fill(double value) noexcept {
  std::fill(data_.begin(), data_.end(), value);
}

void Matrix::multiply(std::span<const double> x, std::span<double> y) const {
  EXPLORA_EXPECTS(x.size() == cols_);
  EXPLORA_EXPECTS(y.size() == rows_);
  for (std::size_t r = 0; r < rows_; ++r) {
    const double* row = data_.data() + r * cols_;
    double acc = 0.0;
    for (std::size_t c = 0; c < cols_; ++c) acc += row[c] * x[c];
    y[r] = acc;
  }
}

void Matrix::multiply_batch(const Matrix& x, Matrix& y) const {
  EXPLORA_EXPECTS(x.cols() == cols_);
  EXPLORA_EXPECTS(y.rows() == x.rows() && y.cols() == rows_);
  for (std::size_t b = 0; b < x.rows(); ++b) {
    const double* in = x.data_.data() + b * cols_;
    double* out = y.data_.data() + b * rows_;
    for (std::size_t r = 0; r < rows_; ++r) {
      const double* row = data_.data() + r * cols_;
      double acc = 0.0;
      for (std::size_t c = 0; c < cols_; ++c) acc += row[c] * in[c];
      out[r] = acc;
    }
  }
}

void Matrix::multiply_transposed(std::span<const double> x,
                                 std::span<double> y) const {
  EXPLORA_EXPECTS(x.size() == rows_);
  EXPLORA_EXPECTS(y.size() == cols_);
  std::fill(y.begin(), y.end(), 0.0);
  for (std::size_t r = 0; r < rows_; ++r) {
    const double* row = data_.data() + r * cols_;
    const double xr = x[r];
    if (xr == 0.0) continue;
    for (std::size_t c = 0; c < cols_; ++c) y[c] += row[c] * xr;
  }
}

void Matrix::add_outer(double alpha, std::span<const double> u,
                       std::span<const double> v) {
  EXPLORA_EXPECTS(u.size() == rows_);
  EXPLORA_EXPECTS(v.size() == cols_);
  for (std::size_t r = 0; r < rows_; ++r) {
    double* row = data_.data() + r * cols_;
    const double scale = alpha * u[r];
    if (scale == 0.0) continue;
    for (std::size_t c = 0; c < cols_; ++c) row[c] += scale * v[c];
  }
}

}  // namespace explora::ml
