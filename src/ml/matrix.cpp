#include "ml/matrix.hpp"

#include <algorithm>

#include "common/contracts.hpp"
#include "ml/gemm.hpp"

namespace explora::ml {

Matrix::Matrix(std::size_t rows, std::size_t cols)
    : rows_(rows), cols_(cols), data_(rows * cols, 0.0) {}

void Matrix::fill(double value) noexcept {
  std::fill(data_.begin(), data_.end(), value);
}

void Matrix::resize(std::size_t rows, std::size_t cols) {
  rows_ = rows;
  cols_ = cols;
  data_.resize(rows * cols);
}

void Matrix::multiply(std::span<const double> x, std::span<double> y) const {
  EXPLORA_EXPECTS_MSG(x.size() == cols_, "x has {} elements, matrix has {} cols",
                      x.size(), cols_);
  EXPLORA_EXPECTS_MSG(y.size() == rows_, "y has {} elements, matrix has {} rows",
                      y.size(), rows_);
  EXPLORA_AUDIT(contracts::all_finite(x));
  gemm::run(data_.data(), rows_, cols_, x.data(), 1, y.data(), nullptr,
            gemm::Epilogue::kNone);
}

void Matrix::multiply_batch(const Matrix& x, Matrix& y) const {
  EXPLORA_EXPECTS_MSG(x.cols() == cols_, "x is {}x{}, matrix has {} cols",
                      x.rows(), x.cols(), cols_);
  EXPLORA_EXPECTS_MSG(y.rows() == x.rows() && y.cols() == rows_,
                      "y is {}x{}, want {}x{}", y.rows(), y.cols(), x.rows(),
                      rows_);
  EXPLORA_AUDIT(contracts::all_finite(x.data()));
  gemm::run(data_.data(), rows_, cols_, x.data_.data(), x.rows(),
            y.data_.data(), nullptr, gemm::Epilogue::kNone);
}

void Matrix::multiply_transposed(std::span<const double> x,
                                 std::span<double> y) const {
  EXPLORA_EXPECTS_MSG(x.size() == rows_, "x has {} elements, matrix has {} rows",
                      x.size(), rows_);
  EXPLORA_EXPECTS_MSG(y.size() == cols_, "y has {} elements, matrix has {} cols",
                      y.size(), cols_);
  EXPLORA_AUDIT(contracts::all_finite(x));
  std::fill(y.begin(), y.end(), 0.0);
  for (std::size_t r = 0; r < rows_; ++r) {
    const double* row = data_.data() + r * cols_;
    const double xr = x[r];
    if (xr == 0.0) continue;  // det-ok: float-eq (exact-zero skip is bit-safe)
    for (std::size_t c = 0; c < cols_; ++c) y[c] += row[c] * xr;
  }
}

void Matrix::add_outer(double alpha, std::span<const double> u,
                       std::span<const double> v) {
  EXPLORA_EXPECTS_MSG(u.size() == rows_, "u has {} elements, matrix has {} rows",
                      u.size(), rows_);
  EXPLORA_EXPECTS_MSG(v.size() == cols_, "v has {} elements, matrix has {} cols",
                      v.size(), cols_);
  EXPLORA_AUDIT(contracts::all_finite(u) && contracts::all_finite(v));
  for (std::size_t r = 0; r < rows_; ++r) {
    double* row = data_.data() + r * cols_;
    const double scale = alpha * u[r];
    if (scale == 0.0) continue;  // det-ok: float-eq (exact-zero skip is bit-safe)
    for (std::size_t c = 0; c < cols_; ++c) row[c] += scale * v[c];
  }
}

}  // namespace explora::ml
