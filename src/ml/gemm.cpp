// Scalar reference kernel + runtime backend dispatch. This translation
// unit is compiled with -ffp-contract=off (see src/ml/CMakeLists.txt) so
// the compiler can never fuse the mul+add below into an FMA — the scalar
// reduction order is the byte-identity contract every backend honors.
#include "ml/gemm.hpp"

#include <atomic>
#include <cmath>
#include <cstdlib>
#include <cstring>

#include "common/analysis_annotations.hpp"
#include "common/contracts.hpp"

namespace explora::ml::gemm {

const char* to_string(Backend backend) noexcept {
  switch (backend) {
    case Backend::kScalar: return "scalar";
    case Backend::kAvx2: return "avx2";
    case Backend::kNeon: return "neon";
    case Backend::kAvx512: return "avx512";
  }
  return "?";
}

namespace detail {

EXPLORA_REALTIME void scalar_kernel(const double* w, std::size_t out,
                                    std::size_t in, const double* x,
                                    std::size_t batch, double* y,
                                    const double* bias, Epilogue epilogue) {
  for (std::size_t b = 0; b < batch; ++b) {
    const double* row_in = x + b * in;
    double* row_out = y + b * out;
    for (std::size_t r = 0; r < out; ++r) {
      const double* weights = w + r * in;
      double acc = 0.0;
      for (std::size_t c = 0; c < in; ++c) acc += weights[c] * row_in[c];
      switch (epilogue) {
        case Epilogue::kNone:
          row_out[r] = acc;
          break;
        case Epilogue::kBias:
          row_out[r] = acc + bias[r];
          break;
        case Epilogue::kBiasRelu: {
          const double v = acc + bias[r];
          row_out[r] = v > 0.0 ? v : 0.0;
          break;
        }
        case Epilogue::kBiasTanh:
          row_out[r] = std::tanh(acc + bias[r]);
          break;
      }
    }
  }
}

EXPLORA_REALTIME void apply_epilogue(double* dst, const double* acc,
                                     const double* bias, std::size_t r0,
                                     std::size_t valid,
                                     Epilogue epilogue) noexcept {
  switch (epilogue) {
    case Epilogue::kNone:
      std::memcpy(dst, acc, valid * sizeof(double));
      return;
    case Epilogue::kBias:
      for (std::size_t l = 0; l < valid; ++l) dst[l] = acc[l] + bias[r0 + l];
      return;
    case Epilogue::kBiasRelu:
      for (std::size_t l = 0; l < valid; ++l) {
        const double v = acc[l] + bias[r0 + l];
        dst[l] = v > 0.0 ? v : 0.0;
      }
      return;
    case Epilogue::kBiasTanh:
      for (std::size_t l = 0; l < valid; ++l) {
        dst[l] = std::tanh(acc[l] + bias[r0 + l]);
      }
      return;
  }
}

}  // namespace detail

namespace {

[[nodiscard]] bool compiled_in(Backend backend) noexcept {
  switch (backend) {
    case Backend::kScalar:
      return true;
    case Backend::kAvx2:
#if defined(EXPLORA_SIMD_AVX2)
      return true;
#else
      return false;
#endif
    case Backend::kNeon:
#if defined(EXPLORA_SIMD_NEON)
      return true;
#else
      return false;
#endif
    case Backend::kAvx512:
#if defined(EXPLORA_SIMD_AVX512)
      return true;
#else
      return false;
#endif
  }
  return false;
}

[[nodiscard]] bool cpu_supports(Backend backend) noexcept {
  switch (backend) {
    case Backend::kScalar:
      return true;
    case Backend::kAvx2:
#if defined(__x86_64__) || defined(__i386__)
      return __builtin_cpu_supports("avx2") != 0;
#else
      return false;
#endif
    case Backend::kNeon:
      // NEON with double lanes is baseline on aarch64; the TU only builds
      // there.
      return true;
    case Backend::kAvx512:
#if defined(__x86_64__) || defined(__i386__)
      return __builtin_cpu_supports("avx512f") != 0;
#else
      return false;
#endif
  }
  return false;
}

[[nodiscard]] Backend detect_backend() noexcept {
  // Runtime escape hatch mirroring the CMake option, for A/B runs of an
  // already-built binary. Results are byte-identical either way, so this
  // only ever changes speed.
  if (const char* env = std::getenv("EXPLORA_SIMD")) {
    if (std::strcmp(env, "off") == 0 || std::strcmp(env, "0") == 0 ||
        std::strcmp(env, "scalar") == 0) {
      return Backend::kScalar;
    }
    // Pin a specific backend by name; silently falls through to auto
    // detection when it is not available on this build/CPU.
    for (Backend pin : {Backend::kAvx512, Backend::kAvx2, Backend::kNeon}) {
      if (std::strcmp(env, to_string(pin)) == 0 && compiled_in(pin) &&
          cpu_supports(pin)) {
        return pin;
      }
    }
  }
  for (Backend best : {Backend::kAvx512, Backend::kAvx2, Backend::kNeon}) {
    if (compiled_in(best) && cpu_supports(best)) return best;
  }
  return Backend::kScalar;
}

[[nodiscard]] std::atomic<Backend>& backend_slot() noexcept {
  // atomics-ok: dispatch-slot (any racing reader gets a valid backend)
  static std::atomic<Backend> slot{detect_backend()};
  return slot;
}

}  // namespace

bool backend_available(Backend backend) noexcept {
  return compiled_in(backend) && cpu_supports(backend);
}

Backend active_backend() noexcept {
  return backend_slot().load(std::memory_order_relaxed);
}

bool set_backend(Backend backend) noexcept {
  if (!backend_available(backend)) return false;
  backend_slot().store(backend, std::memory_order_relaxed);
  return true;
}

EXPLORA_REALTIME void run(const double* w, std::size_t out, std::size_t in,
                          const double* x, std::size_t batch, double* y,
                          const double* bias, Epilogue epilogue) {
  EXPLORA_EXPECTS(bias != nullptr || epilogue == Epilogue::kNone);
  if (batch == 0 || out == 0) return;
  switch (active_backend()) {
#if defined(EXPLORA_SIMD_AVX2)
    case Backend::kAvx2:
      detail::avx2_kernel(w, out, in, x, batch, y, bias, epilogue);
      return;
#endif
#if defined(EXPLORA_SIMD_AVX512)
    case Backend::kAvx512:
      detail::avx512_kernel(w, out, in, x, batch, y, bias, epilogue);
      return;
#endif
#if defined(EXPLORA_SIMD_NEON)
    case Backend::kNeon:
      detail::neon_kernel(w, out, in, x, batch, y, bias, epilogue);
      return;
#endif
    default:
      detail::scalar_kernel(w, out, in, x, batch, y, bias, epilogue);
      return;
  }
}

}  // namespace explora::ml::gemm
