// Proximal Policy Optimization with a multi-head categorical policy: one
// head selects the RAN slicing profile (PRB split) and one head per slice
// selects the scheduling policy — the paper's c = 2 multi-modal action.
// Actor and critic are independent MLPs over the autoencoder latent space.
#pragma once

#include <array>
#include <cstdint>
#include <vector>

#include "common/rng.hpp"
#include "common/serialize.hpp"
#include "ml/agent.hpp"
#include "ml/features.hpp"
#include "ml/nn.hpp"

namespace explora::ml {

/// One environment step stored for training.
struct Transition {
  Vector state;                          ///< latent observation
  AgentAction action{};
  double log_prob = 0.0;                 ///< sum over heads at sample time
  double value = 0.0;                    ///< critic estimate at sample time
  double reward = 0.0;
  bool terminal = false;
};

/// On-policy rollout storage with GAE(lambda) post-processing.
class RolloutBuffer {
 public:
  void add(Transition transition);
  void clear() noexcept;
  [[nodiscard]] std::size_t size() const noexcept { return steps_.size(); }
  [[nodiscard]] const std::vector<Transition>& steps() const noexcept {
    return steps_;
  }

  /// Computes advantages (normalized) and discounted returns.
  /// @param bootstrap_value critic estimate for the state after the last
  ///        stored step (0 when that step was terminal).
  void compute_gae(double gamma, double lambda, double bootstrap_value);

  [[nodiscard]] const std::vector<double>& advantages() const noexcept {
    return advantages_;
  }
  [[nodiscard]] const std::vector<double>& returns() const noexcept {
    return returns_;
  }

 private:
  std::vector<Transition> steps_;
  std::vector<double> advantages_;
  std::vector<double> returns_;
};

class PpoAgent final : public PolicyAgent {
 public:
  struct Config {
    std::size_t state_dim = kLatentDim;
    std::size_t hidden_dim = 64;
    double gamma = 0.95;
    double gae_lambda = 0.95;
    double clip_epsilon = 0.2;
    double learning_rate = 3e-4;
    double value_coef = 0.5;
    double entropy_coef = 0.01;
    std::size_t update_epochs = 4;
    std::size_t minibatch_size = 64;
  };

  explicit PpoAgent(std::uint64_t seed = 11);
  PpoAgent(Config config, std::uint64_t seed);

  // The Adam optimizers hold pointers into the actor/critic parameters, so
  // the agent is pinned in memory (hold it via std::unique_ptr to move it).
  PpoAgent(const PpoAgent&) = delete;
  PpoAgent& operator=(const PpoAgent&) = delete;
  PpoAgent(PpoAgent&&) = delete;
  PpoAgent& operator=(PpoAgent&&) = delete;

  /// Stochastic action (training / exploration); `rng` supplies the
  /// sampling noise so the agent itself stays const. `temperature` scales
  /// the logits before sampling: 1.0 reproduces the trained policy, lower
  /// values concentrate it toward the greedy action (deployment).
  [[nodiscard]] PolicyDecision act(std::span<const double> state,
                                   common::Rng& rng,
                                   double temperature = 1.0) const;
  /// Per-head temperatures (index 0 = PRB head, 1..3 = scheduler heads).
  /// Deployment uses a colder PRB head than scheduler heads: the slicing
  /// mode has a much larger alphabet, so equal temperatures would make it
  /// disproportionately noisy.
  [[nodiscard]] PolicyDecision act(
      std::span<const double> state, common::Rng& rng,
      const std::array<double, kNumHeads>& temperatures) const override;
  /// Deterministic argmax action (deployment).
  [[nodiscard]] PolicyDecision act_greedy(
      std::span<const double> state) const override;
  /// Critic value of a state.
  [[nodiscard]] double value(std::span<const double> state) const;
  /// Full per-head probability vectors for a state (used by SHAP / XAI).
  [[nodiscard]] std::vector<Vector> head_distributions(
      std::span<const double> state) const override;
  /// Batched: all states flow through the actor as one forward_batch.
  [[nodiscard]] std::vector<std::vector<Vector>> head_distributions(
      const Matrix& states) const override;

  /// One PPO update over the buffer (which must have GAE computed).
  /// Returns the mean total loss of the final epoch.
  double update(const RolloutBuffer& buffer);

  [[nodiscard]] const Config& config() const noexcept { return config_; }

  void serialize(common::BinaryWriter& writer) const;
  void deserialize(common::BinaryReader& reader);

 private:
  /// Logit offsets per head inside the actor output.
  [[nodiscard]] std::array<std::size_t, kNumHeads + 1> head_offsets() const;
  [[nodiscard]] static std::array<std::size_t, kNumHeads> head_sizes();
  /// Splits raw logits into per-head softmax distributions.
  [[nodiscard]] std::vector<Vector> split_softmax(
      std::span<const double> logits,
      const std::array<double, kNumHeads>& temperatures) const;
  [[nodiscard]] static std::array<std::size_t, kNumHeads> action_indices(
      const AgentAction& action);

  Config config_;
  common::Rng init_rng_;
  Mlp actor_;
  Mlp critic_;
  AdamOptimizer actor_opt_;
  AdamOptimizer critic_opt_;
  common::Rng shuffle_rng_;

  // Telemetry (ml.ppo.*), bound at construction.
  telemetry::Counter* tm_updates_;
  telemetry::Counter* tm_epochs_;
  telemetry::Counter* tm_minibatches_;
  telemetry::Histogram* tm_rollout_steps_;
  telemetry::Histogram* tm_minibatch_rows_;
};

}  // namespace explora::ml
