#include "ml/features.hpp"

#include <algorithm>

#include "common/contracts.hpp"

namespace explora::ml {

namespace {

[[nodiscard]] std::size_t flat_index(netsim::Kpi kpi, netsim::Slice slice) {
  return static_cast<std::size_t>(kpi) * netsim::kNumSlices +
         static_cast<std::size_t>(slice);
}

}  // namespace

KpiNormalizer::KpiNormalizer() { ranges_.fill(Range{}); }

KpiNormalizer::Range& KpiNormalizer::range(netsim::Kpi kpi,
                                           netsim::Slice slice) {
  return ranges_[flat_index(kpi, slice)];
}

const KpiNormalizer::Range& KpiNormalizer::range(netsim::Kpi kpi,
                                                 netsim::Slice slice) const {
  return ranges_[flat_index(kpi, slice)];
}

void KpiNormalizer::observe(const netsim::KpiReport& report) {
  for (std::size_t k = 0; k < netsim::kNumKpis; ++k) {
    for (std::size_t l = 0; l < netsim::kNumSlices; ++l) {
      const auto kpi = static_cast<netsim::Kpi>(k);
      const auto slice = static_cast<netsim::Slice>(l);
      const double v = report.value(kpi, slice);
      Range& r = range(kpi, slice);
      r.lo = std::min(r.lo, v);
      r.hi = std::max(r.hi, v);
    }
  }
}

double KpiNormalizer::normalize(netsim::Kpi kpi, netsim::Slice slice,
                                double value) const {
  const Range& r = range(kpi, slice);
  const double span = r.hi - r.lo;
  if (span <= 0.0) return 0.0;
  const double unit = (value - r.lo) / span;  // [0, 1] on the fitted range
  return std::clamp(unit * 2.0 - 1.0, -1.0, 1.0);
}

double KpiNormalizer::denormalize(netsim::Kpi kpi, netsim::Slice slice,
                                  double value) const {
  const Range& r = range(kpi, slice);
  const double unit = (std::clamp(value, -1.0, 1.0) + 1.0) / 2.0;
  return r.lo + unit * (r.hi - r.lo);
}

void KpiNormalizer::serialize(common::BinaryWriter& writer) const {
  writer.write_u64(ranges_.size());
  for (const Range& r : ranges_) {
    writer.write_f64(r.lo);
    writer.write_f64(r.hi);
  }
}

void KpiNormalizer::deserialize(common::BinaryReader& reader) {
  if (reader.read_u64() != ranges_.size()) {
    throw common::SerializeError("normalizer size mismatch");
  }
  for (Range& r : ranges_) {
    r.lo = reader.read_f64();
    r.hi = reader.read_f64();
  }
}

void InputWindow::push(const netsim::KpiReport& report) {
  reports_.push_back(report);
  while (reports_.size() > kHistory) reports_.pop_front();
}

Vector InputWindow::flatten(const KpiNormalizer& normalizer) const {
  EXPLORA_EXPECTS(ready());
  Vector out;
  out.reserve(kInputDim);
  for (const auto& report : reports_) {
    for (std::size_t k = 0; k < netsim::kNumKpis; ++k) {
      for (std::size_t l = 0; l < netsim::kNumSlices; ++l) {
        const auto kpi = static_cast<netsim::Kpi>(k);
        const auto slice = static_cast<netsim::Slice>(l);
        out.push_back(normalizer.normalize(kpi, slice,
                                           report.value(kpi, slice)));
      }
    }
  }
  EXPLORA_ENSURES(out.size() == kInputDim);
  return out;
}

const netsim::KpiReport& InputWindow::latest() const {
  EXPLORA_EXPECTS(!reports_.empty());
  return reports_.back();
}

double InputWindow::window_mean(netsim::Kpi kpi, netsim::Slice slice) const {
  EXPLORA_EXPECTS(!reports_.empty());
  double sum = 0.0;
  for (const auto& report : reports_) sum += report.value(kpi, slice);
  return sum / static_cast<double>(reports_.size());
}

netsim::SlicingControl to_control(const AgentAction& action) {
  const auto& catalog = netsim::prb_catalog();
  EXPLORA_EXPECTS(action.prb_choice < catalog.size());
  netsim::SlicingControl control;
  control.prbs = catalog[action.prb_choice];
  for (std::size_t s = 0; s < netsim::kNumSlices; ++s) {
    EXPLORA_EXPECTS(action.sched_choice[s] < netsim::kNumSchedulerPolicies);
    control.scheduling[s] =
        static_cast<netsim::SchedulerPolicy>(action.sched_choice[s]);
  }
  return control;
}

AgentAction from_control(const netsim::SlicingControl& control) {
  AgentAction action;
  action.prb_choice = netsim::prb_catalog_index(control.prbs);
  for (std::size_t s = 0; s < netsim::kNumSlices; ++s) {
    action.sched_choice[s] =
        static_cast<std::size_t>(control.scheduling[s]);
  }
  return action;
}

}  // namespace explora::ml
