// The autoencoder of the paper's DRL framework (Fig. 2): compresses the
// M x K x L input matrix I (90 values) into a K x L latent representation
// (9 values, AE_0..AE_8) that feeds the PPO agent. Trained offline with MSE
// reconstruction loss, exactly as the well-established RL practice the
// paper cites [38, 62].
#pragma once

#include <cstdint>
#include <filesystem>
#include <vector>

#include "common/rng.hpp"
#include "ml/nn.hpp"

namespace explora::ml {

class Autoencoder {
 public:
  struct Config {
    std::size_t input_dim = 90;
    std::size_t hidden_dim = 48;
    std::size_t latent_dim = 9;
    double learning_rate = 1e-3;
    std::size_t epochs = 60;
    std::size_t batch_size = 32;
  };

  /// @param config network/training shape.
  /// @param seed weight-initialization and shuffling seed.
  explicit Autoencoder(std::uint64_t seed = 7);
  Autoencoder(Config config, std::uint64_t seed);

  /// Trains encoder+decoder on `dataset` (each row of size input_dim).
  /// Returns the final epoch's mean reconstruction MSE.
  double train(const std::vector<Vector>& dataset);

  /// Latent representation of one input (size latent_dim).
  [[nodiscard]] Vector encode(std::span<const double> input) const;
  /// Decoder round-trip (size input_dim), for fidelity checks.
  [[nodiscard]] Vector reconstruct(std::span<const double> input) const;
  /// Mean squared reconstruction error over a dataset.
  [[nodiscard]] double evaluate(const std::vector<Vector>& dataset) const;

  [[nodiscard]] const Config& config() const noexcept { return config_; }

  void serialize(common::BinaryWriter& writer) const;
  void deserialize(common::BinaryReader& reader);

 private:
  Config config_;
  common::Rng rng_;
  Mlp encoder_;
  Mlp decoder_;
};

}  // namespace explora::ml
