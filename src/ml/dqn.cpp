#include "ml/dqn.hpp"

#include <algorithm>
#include <cmath>

#include "common/contracts.hpp"
#include "netsim/types.hpp"

namespace explora::ml {

namespace {

std::size_t argmax_range(std::span<const double> values, std::size_t begin,
                         std::size_t end) {
  std::size_t best = begin;
  for (std::size_t i = begin + 1; i < end; ++i) {
    if (values[i] > values[best]) best = i;
  }
  return best - begin;
}

}  // namespace

ReplayBuffer::ReplayBuffer(std::size_t capacity) : capacity_(capacity) {
  EXPLORA_EXPECTS(capacity > 0);
}

void ReplayBuffer::add(DqnExperience experience) {
  buffer_.push_back(std::move(experience));
  while (buffer_.size() > capacity_) buffer_.pop_front();
}

const DqnExperience& ReplayBuffer::sample(common::Rng& rng) const {
  EXPLORA_EXPECTS(!buffer_.empty());
  return buffer_[rng.index(buffer_.size())];
}

std::array<std::size_t, kNumHeads> DqnAgent::head_sizes() {
  std::array<std::size_t, kNumHeads> sizes{};
  sizes[0] = netsim::prb_catalog().size();
  for (std::size_t s = 0; s < netsim::kNumSlices; ++s) {
    sizes[1 + s] = netsim::kNumSchedulerPolicies;
  }
  return sizes;
}

std::array<std::size_t, kNumHeads + 1> DqnAgent::head_offsets() const {
  const auto sizes = head_sizes();
  std::array<std::size_t, kNumHeads + 1> offsets{};
  for (std::size_t h = 0; h < kNumHeads; ++h) {
    offsets[h + 1] = offsets[h] + sizes[h];
  }
  return offsets;
}

DqnAgent::DqnAgent(std::uint64_t seed) : DqnAgent(Config{}, seed) {}

DqnAgent::DqnAgent(Config config, std::uint64_t seed)
    : config_(config),
      init_rng_(seed),
      online_({config_.state_dim, config_.hidden_dim, config_.hidden_dim,
               head_offsets()[kNumHeads]},
              Activation::kRelu, Activation::kLinear, init_rng_),
      target_({config_.state_dim, config_.hidden_dim, config_.hidden_dim,
               head_offsets()[kNumHeads]},
              Activation::kRelu, Activation::kLinear, init_rng_) {
  AdamOptimizer::Config opt;
  opt.learning_rate = config_.learning_rate;
  optimizer_ = AdamOptimizer(opt);
  optimizer_.attach(online_);
  sync_target();
}

void DqnAgent::sync_target() {
  // Copy weights via the serialization path (keeps one code path exact).
  common::BinaryWriter writer(0x71, 1);
  online_.serialize(writer);
  common::BinaryReader reader(writer.buffer(), 0x71, 1);
  target_.deserialize(reader);
}

Vector DqnAgent::q_values(const Mlp& network,
                          std::span<const double> state) const {
  Vector q(network.out_size(), 0.0);
  network.infer(state, q);
  EXPLORA_AUDIT_MSG(contracts::all_finite(q),
                    "DQN produced non-finite Q-values over {} actions",
                    q.size());
  return q;
}

AgentAction DqnAgent::greedy_from(
    const Vector& q, const std::array<std::size_t, kNumHeads + 1>& offsets) {
  AgentAction action;
  action.prb_choice = argmax_range(q, offsets[0], offsets[1]);
  for (std::size_t s = 0; s < netsim::kNumSlices; ++s) {
    action.sched_choice[s] =
        argmax_range(q, offsets[1 + s], offsets[2 + s]);
  }
  return action;
}

PolicyDecision DqnAgent::act_greedy(std::span<const double> state) const {
  const auto offsets = head_offsets();
  const Vector q = q_values(online_, state);
  PolicyDecision decision;
  decision.action = greedy_from(q, offsets);
  const auto heads = head_distributions(state);
  const auto chosen = std::array<std::size_t, kNumHeads>{
      decision.action.prb_choice, decision.action.sched_choice[0],
      decision.action.sched_choice[1], decision.action.sched_choice[2]};
  for (std::size_t h = 0; h < kNumHeads; ++h) {
    decision.head_probs[h] = heads[h][chosen[h]];
    decision.log_prob += std::log(std::max(heads[h][chosen[h]], 1e-12));
  }
  // The greedy Q-value is the natural state-value analogue.
  double value = 0.0;
  for (std::size_t h = 0; h < kNumHeads; ++h) {
    value += q[offsets[h] + chosen[h]];
  }
  decision.value = value / static_cast<double>(kNumHeads);
  return decision;
}

PolicyDecision DqnAgent::act(
    std::span<const double> state, common::Rng& rng,
    const std::array<double, kNumHeads>& temperatures) const {
  const auto offsets = head_offsets();
  const Vector q = q_values(online_, state);

  PolicyDecision decision;
  std::array<std::size_t, kNumHeads> chosen{};
  for (std::size_t h = 0; h < kNumHeads; ++h) {
    EXPLORA_EXPECTS(temperatures[h] > 0.0);
    Vector probs(q.begin() + static_cast<std::ptrdiff_t>(offsets[h]),
                 q.begin() + static_cast<std::ptrdiff_t>(offsets[h + 1]));
    for (double& v : probs) v /= temperatures[h];
    softmax(probs);
    EXPLORA_AUDIT_MSG(contracts::is_probability_simplex(probs),
                      "DQN Boltzmann head {} is not a probability distribution",
                      h);
    const double u = rng.uniform();
    double acc = 0.0;
    chosen[h] = probs.size() - 1;
    for (std::size_t i = 0; i < probs.size(); ++i) {
      acc += probs[i];
      if (u < acc) {
        chosen[h] = i;
        break;
      }
    }
    decision.head_probs[h] = probs[chosen[h]];
    decision.log_prob += std::log(std::max(probs[chosen[h]], 1e-12));
  }
  decision.action.prb_choice = chosen[0];
  for (std::size_t s = 0; s < netsim::kNumSlices; ++s) {
    decision.action.sched_choice[s] = chosen[1 + s];
  }
  double value = 0.0;
  for (std::size_t h = 0; h < kNumHeads; ++h) {
    value += q[offsets[h] + chosen[h]];
  }
  decision.value = value / static_cast<double>(kNumHeads);
  return decision;
}

std::vector<Vector> DqnAgent::head_distributions(
    std::span<const double> state) const {
  const auto offsets = head_offsets();
  const Vector q = q_values(online_, state);
  std::vector<Vector> heads;
  heads.reserve(kNumHeads);
  for (std::size_t h = 0; h < kNumHeads; ++h) {
    Vector head(q.begin() + static_cast<std::ptrdiff_t>(offsets[h]),
                q.begin() + static_cast<std::ptrdiff_t>(offsets[h + 1]));
    softmax(head);  // Boltzmann view of the Q-values
    heads.push_back(std::move(head));
  }
  return heads;
}

double DqnAgent::epsilon() const noexcept {
  const double progress =
      std::min(1.0, static_cast<double>(updates_) /
                        static_cast<double>(config_.epsilon_decay_updates));
  return config_.epsilon_start +
         (config_.epsilon_end - config_.epsilon_start) * progress;
}

AgentAction DqnAgent::act_epsilon_greedy(std::span<const double> state,
                                         common::Rng& rng) const {
  const double eps = epsilon();
  AgentAction action = act_greedy(state).action;
  // Per-head exploration: each head independently randomizes with
  // probability epsilon (standard for branching Q architectures).
  if (rng.bernoulli(eps)) {
    action.prb_choice = rng.index(netsim::prb_catalog().size());
  }
  for (std::size_t s = 0; s < netsim::kNumSlices; ++s) {
    if (rng.bernoulli(eps)) {
      action.sched_choice[s] = rng.index(netsim::kNumSchedulerPolicies);
    }
  }
  return action;
}

double DqnAgent::update(const ReplayBuffer& buffer, common::Rng& rng) {
  EXPLORA_EXPECTS(buffer.size() > 0);
  const auto offsets = head_offsets();

  online_.zero_grad();
  double batch_loss = 0.0;
  const double batch_n = static_cast<double>(config_.batch_size);
  for (std::size_t b = 0; b < config_.batch_size; ++b) {
    const DqnExperience& exp = buffer.sample(rng);

    // Per-head TD target from the target network.
    const Vector next_q = q_values(target_, exp.next_state);
    std::array<double, kNumHeads> targets{};
    for (std::size_t h = 0; h < kNumHeads; ++h) {
      double max_next = next_q[offsets[h]];
      for (std::size_t i = offsets[h] + 1; i < offsets[h + 1]; ++i) {
        max_next = std::max(max_next, next_q[i]);
      }
      targets[h] = exp.reward +
                   (exp.terminal ? 0.0 : config_.gamma * max_next);
    }

    const Vector& q = online_.forward(exp.state);
    const std::array<std::size_t, kNumHeads> chosen{
        exp.action.prb_choice, exp.action.sched_choice[0],
        exp.action.sched_choice[1], exp.action.sched_choice[2]};
    Vector grad(q.size(), 0.0);
    for (std::size_t h = 0; h < kNumHeads; ++h) {
      const std::size_t index = offsets[h] + chosen[h];
      const double error = q[index] - targets[h];
      batch_loss += error * error / static_cast<double>(kNumHeads);
      grad[index] = 2.0 * error /
                    (static_cast<double>(kNumHeads) * batch_n);
    }
    online_.backward(grad);
  }
  optimizer_.step();
  ++updates_;
  if (updates_ % config_.target_sync_interval == 0) sync_target();
  return batch_loss / batch_n;
}

void DqnAgent::serialize(common::BinaryWriter& writer) const {
  writer.write_u64(config_.state_dim);
  writer.write_u64(config_.hidden_dim);
  online_.serialize(writer);
}

void DqnAgent::deserialize(common::BinaryReader& reader) {
  if (reader.read_u64() != config_.state_dim ||
      reader.read_u64() != config_.hidden_dim) {
    throw common::SerializeError("DQN shape mismatch");
  }
  online_.deserialize(reader);
  sync_target();
}

}  // namespace explora::ml
