// AVX-512 backend: 8 batch rows x 8 output neurons per tile, one 512-bit
// register per packed weight panel column, separate mul + add (never FMA).
//
// Determinism: identical contract to the AVX2 backend — vector lane l of a
// panel owns output neuron r0+l and accumulates w[r0+l][c] * x[b][c] for
// c = 0,1,2,... in its own strictly-sequential chain; no horizontal
// reductions, so every output double is byte-identical to
// detail::scalar_kernel. The wider registers only change *which* neurons
// advance together (all 8 of a panel in one register instead of two
// 4-lane halves), never the per-neuron arithmetic order. The TU is
// compiled with -mavx512f -ffp-contract=off (src/ml/CMakeLists.txt).
#include "ml/gemm.hpp"

#if defined(EXPLORA_SIMD_AVX512)

#include <immintrin.h>  // det-ok: simd-intrinsic (approved kernel file)

#include <cstddef>

#include "common/aligned.hpp"
#include "common/analysis_annotations.hpp"

namespace explora::ml::gemm::detail {

namespace {

constexpr std::size_t kPanel = 8;      ///< output neurons per packed panel
constexpr std::size_t kBatchTile = 8;  ///< batch rows per microkernel call

/// Same packed layout as the AVX2 backend: panel p holds neurons
/// [p*8, p*8+8), the 8 weights of input c contiguous at offset c*8 —
/// exactly one aligned 512-bit load per (panel, c). Pad lanes are zero.
std::size_t pack_weights(const double* w, std::size_t out, std::size_t in,
                         common::AlignedVector<double>& packed) {
  const std::size_t panels = (out + kPanel - 1) / kPanel;
  // hotpath-ok: thread-local panel scratch reaches steady-state capacity
  // after the first call per layer shape; resize is then a no-op.
  packed.resize(panels * in * kPanel);
  for (std::size_t p = 0; p < panels; ++p) {
    const std::size_t r0 = p * kPanel;
    double* panel = packed.data() + p * in * kPanel;
    for (std::size_t c = 0; c < in; ++c) {
      for (std::size_t l = 0; l < kPanel; ++l) {
        panel[c * kPanel + l] =
            r0 + l < out ? w[(r0 + l) * in + c] : 0.0;
      }
    }
  }
  return panels;
}

/// One (BT batch rows) x (8 neurons) tile: BT independent 8-lane
/// accumulators, each lane advancing its own strictly-sequential c-chain.
template <std::size_t BT>
void micro_tile(const double* panel, std::size_t in, const double* x,
                std::size_t x_stride, double* y, std::size_t y_stride,
                const double* bias, std::size_t r0, std::size_t valid,
                Epilogue epilogue) {
  __m512d acc[BT];
  for (std::size_t bt = 0; bt < BT; ++bt) acc[bt] = _mm512_setzero_pd();
  for (std::size_t c = 0; c < in; ++c) {
    const __m512d wv = _mm512_load_pd(panel + c * kPanel);
    for (std::size_t bt = 0; bt < BT; ++bt) {
      const __m512d xv = _mm512_set1_pd(x[bt * x_stride + c]);
      acc[bt] = _mm512_add_pd(acc[bt], _mm512_mul_pd(wv, xv));
    }
  }
  // Full panels store vectorized for the non-tanh epilogues: one add for
  // the bias (the same single rounding as scalar), and relu via max with
  // acc as the first operand — VMAXPD returns the *second* operand on a
  // NaN/equal-zero first operand, exactly matching the scalar
  // `v > 0.0 ? v : 0.0` (which yields +0.0 for -0.0 and NaN inputs).
  if (valid == kPanel && epilogue != Epilogue::kBiasTanh) {
    const __m512d bv = epilogue == Epilogue::kNone
                           ? _mm512_setzero_pd()
                           : _mm512_loadu_pd(bias + r0);
    for (std::size_t bt = 0; bt < BT; ++bt) {
      __m512d v = epilogue == Epilogue::kNone ? acc[bt]
                                              : _mm512_add_pd(acc[bt], bv);
      if (epilogue == Epilogue::kBiasRelu) {
        v = _mm512_max_pd(v, _mm512_setzero_pd());
      }
      _mm512_storeu_pd(y + bt * y_stride + r0, v);
    }
    return;
  }
  alignas(64) double tile[kPanel];
  for (std::size_t bt = 0; bt < BT; ++bt) {
    _mm512_store_pd(tile, acc[bt]);
    apply_epilogue(y + bt * y_stride + r0, tile, bias, r0, valid, epilogue);
  }
}

}  // namespace

EXPLORA_REALTIME void avx512_kernel(const double* w, std::size_t out,
                                    std::size_t in, const double* x,
                                    std::size_t batch, double* y,
                                    const double* bias, Epilogue epilogue) {
  thread_local common::AlignedVector<double> t_packed;
  const std::size_t panels = pack_weights(w, out, in, t_packed);

  std::size_t b = 0;
  for (; b + kBatchTile <= batch; b += kBatchTile) {
    for (std::size_t p = 0; p < panels; ++p) {
      const std::size_t r0 = p * kPanel;
      const std::size_t valid = out - r0 < kPanel ? out - r0 : kPanel;
      micro_tile<kBatchTile>(t_packed.data() + p * in * kPanel, in,
                             x + b * in, in, y + b * out, out, bias, r0,
                             valid, epilogue);
    }
  }
  for (; b < batch; ++b) {
    for (std::size_t p = 0; p < panels; ++p) {
      const std::size_t r0 = p * kPanel;
      const std::size_t valid = out - r0 < kPanel ? out - r0 : kPanel;
      micro_tile<1>(t_packed.data() + p * in * kPanel, in, x + b * in, in,
                    y + b * out, out, bias, r0, valid, epilogue);
    }
  }
}

}  // namespace explora::ml::gemm::detail

#endif  // EXPLORA_SIMD_AVX512
