// Deep Q-Network with action branching (BDQ-style): one Q-head per action
// mode (PRB split + the three per-slice schedulers) over a shared trunk,
// trained with experience replay and a target network. Demonstrates the
// paper's §4.2 claim that EXPLORA is agnostic to the agent family (DQN,
// PPO, A3C) — DqnAgent plugs into the same DRL xApp and EXPLORA pipeline
// as PpoAgent via the PolicyAgent interface.
#pragma once

#include <cstdint>
#include <deque>
#include <vector>

#include "common/rng.hpp"
#include "common/serialize.hpp"
#include "ml/agent.hpp"
#include "ml/nn.hpp"

namespace explora::ml {

/// One replayed experience.
struct DqnExperience {
  Vector state;
  AgentAction action{};
  double reward = 0.0;
  Vector next_state;
  bool terminal = false;
};

/// Uniform-sampling ring replay buffer.
class ReplayBuffer {
 public:
  explicit ReplayBuffer(std::size_t capacity = 10000);

  void add(DqnExperience experience);
  [[nodiscard]] std::size_t size() const noexcept { return buffer_.size(); }
  [[nodiscard]] std::size_t capacity() const noexcept { return capacity_; }
  /// Uniform sample with replacement; requires size() > 0.
  [[nodiscard]] const DqnExperience& sample(common::Rng& rng) const;

 private:
  std::size_t capacity_;
  std::deque<DqnExperience> buffer_;
};

class DqnAgent final : public PolicyAgent {
 public:
  struct Config {
    std::size_t state_dim = kLatentDim;
    std::size_t hidden_dim = 64;
    double gamma = 0.95;
    double learning_rate = 1e-3;
    std::size_t batch_size = 64;
    /// Online-network updates between target-network syncs.
    std::size_t target_sync_interval = 200;
    /// Epsilon-greedy exploration schedule (linear decay per update).
    double epsilon_start = 1.0;
    double epsilon_end = 0.05;
    std::size_t epsilon_decay_updates = 2000;
  };

  explicit DqnAgent(std::uint64_t seed = 21);
  DqnAgent(Config config, std::uint64_t seed);

  // Pinned like PpoAgent (the optimizer holds parameter pointers).
  DqnAgent(const DqnAgent&) = delete;
  DqnAgent& operator=(const DqnAgent&) = delete;
  DqnAgent(DqnAgent&&) = delete;
  DqnAgent& operator=(DqnAgent&&) = delete;

  // --- PolicyAgent ----------------------------------------------------------
  [[nodiscard]] PolicyDecision act_greedy(
      std::span<const double> state) const override;
  /// Boltzmann sampling over Q-values: head h samples proportionally to
  /// softmax(Q_h / temperature_h).
  [[nodiscard]] PolicyDecision act(
      std::span<const double> state, common::Rng& rng,
      const std::array<double, kNumHeads>& temperatures) const override;
  [[nodiscard]] std::vector<Vector> head_distributions(
      std::span<const double> state) const override;
  /// Keep the base class's batched overload visible alongside the
  /// single-state override above.
  using PolicyAgent::head_distributions;

  // --- training ---------------------------------------------------------------
  /// Epsilon-greedy action for environment interaction (training time).
  [[nodiscard]] AgentAction act_epsilon_greedy(std::span<const double> state,
                                               common::Rng& rng) const;
  /// Current exploration epsilon (decays with updates performed).
  [[nodiscard]] double epsilon() const noexcept;
  /// One minibatch TD update from the replay buffer; returns the batch's
  /// mean TD loss. Requires buffer.size() > 0.
  double update(const ReplayBuffer& buffer, common::Rng& rng);
  [[nodiscard]] std::size_t updates_performed() const noexcept {
    return updates_;
  }

  [[nodiscard]] const Config& config() const noexcept { return config_; }

  void serialize(common::BinaryWriter& writer) const;
  void deserialize(common::BinaryReader& reader);

 private:
  [[nodiscard]] static std::array<std::size_t, kNumHeads> head_sizes();
  [[nodiscard]] std::array<std::size_t, kNumHeads + 1> head_offsets() const;
  /// Q-values of every head component, from the given network.
  [[nodiscard]] Vector q_values(const Mlp& network,
                                std::span<const double> state) const;
  [[nodiscard]] static AgentAction greedy_from(
      const Vector& q, const std::array<std::size_t, kNumHeads + 1>& offsets);
  void sync_target();

  Config config_;
  common::Rng init_rng_;
  Mlp online_;
  Mlp target_;
  AdamOptimizer optimizer_;
  std::size_t updates_ = 0;
};

}  // namespace explora::ml
