// SHAP (SHapley Additive exPlanations) from scratch — the state-of-the-art
// XAI baseline the paper evaluates against (§3.2, Eq. 2, Figs. 3-4).
//
// Two estimators over a background dataset:
//   - exact: enumerates all 2^N feature coalitions (N = 9 latent features
//     in the paper's use case) and applies the exact Shapley weights — this
//     is Eq. (2) and is deliberately expensive, reproducing the cost the
//     paper measures in Fig. 4;
//   - sampling: Monte Carlo over random permutations (Castro et al.),
//     unbiased with configurable sample count.
//
// Missing features are marginalized by substituting values from background
// rows (the interventional conditional expectation used by KernelSHAP).
//
// Parallelism: coalition values (exact mode) and permutation chains
// (sampling mode) are evaluated on a thread pool (Config::pool, default
// the EXPLORA_THREADS-sized global pool). Each permutation draws from its
// own RNG stream derived from Config::seed, and partial sums are merged in
// a fixed chunk order, so results are bit-identical for any thread count.
// The model callback must therefore be safe to invoke concurrently
// (e.g. Mlp::infer / PpoAgent::head_distributions, which are const and
// allocation-local).
#pragma once

#include <atomic>
#include <cstdint>
#include <functional>
#include <optional>
#include <span>
#include <vector>

#include "common/parallel.hpp"
#include "common/rng.hpp"
#include "common/telemetry.hpp"
#include "common/thread_annotations.hpp"
#include "ml/matrix.hpp"

namespace explora::ml {
class Mlp;
}  // namespace explora::ml

namespace explora::xai {

using ml::Vector;

/// Black-box model: feature vector in, output vector out (e.g. the agent's
/// per-head action scores). Must be callable concurrently from several
/// threads.
using ModelFn = std::function<Vector(const Vector&)>;

/// Batched black-box model: evaluates a whole batch of probes in one call
/// (one output row per input row). Lets models amortize per-call overhead —
/// e.g. Mlp::forward_batch pushes all rows through each layer as one
/// GEMM-style loop. Must be callable concurrently from several threads.
using BatchModelFn =
    std::function<std::vector<Vector>(const std::vector<Vector>&)>;

/// Matrix-batched black-box model — the explainer's native entry point:
/// one probe per input row, one output row per probe, no per-row vector
/// allocations on either side. The whole coalition chunk (many coalitions
/// x |background| rows) reaches the model as a single matrix, which the
/// blocked GEMM backends turn into one kernel sweep. Must be callable
/// concurrently from several threads.
using MatrixModelFn = std::function<ml::Matrix(const ml::Matrix&)>;

/// Wraps an Mlp into a MatrixModelFn backed by Mlp::forward_batch, so a
/// whole chunk of coalition probes goes through the network at once.
/// The Mlp must outlive the returned callable.
[[nodiscard]] MatrixModelFn batch_model(const ml::Mlp& mlp);

/// Adapts a per-row model to the matrix-batched entry point (row-by-row
/// evaluation; the fallback for truly black-box callables).
[[nodiscard]] MatrixModelFn matrix_model(ModelFn model);

class ShapExplainer {
 public:
  enum class Mode : std::uint8_t { kExact = 0, kSampling = 1 };

  struct Config {
    Mode mode = Mode::kExact;
    std::size_t permutations = 200;     ///< sampling mode only
    std::size_t max_background = 32;    ///< background rows used per v(S)
    std::uint64_t seed = 17;
    /// Pool for the coalition/permutation fan-out; nullptr = the global
    /// EXPLORA_THREADS pool. A 1-thread pool reproduces serial execution.
    common::ThreadPool* pool = nullptr;
  };

  /// @param model black-box to explain (never null).
  /// @param background reference dataset for marginalizing missing
  ///        features; at least one row.
  ShapExplainer(ModelFn model, std::vector<Vector> background);
  ShapExplainer(ModelFn model, std::vector<Vector> background, Config config);
  /// Batched variant: `model` receives whole probe batches (one coalition
  /// = |background| rows per inner vector batch).
  ShapExplainer(BatchModelFn model, std::vector<Vector> background);
  ShapExplainer(BatchModelFn model, std::vector<Vector> background,
                Config config);
  /// Matrix-batched variant (native): `model` receives one matrix holding
  /// a whole chunk of coalition probes and returns one output row per
  /// probe row.
  ShapExplainer(MatrixModelFn model, std::vector<Vector> background);
  ShapExplainer(MatrixModelFn model, std::vector<Vector> background,
                Config config);

  /// Shapley values of every feature for output `output_index` at `x`.
  /// Exact mode cost: O(2^N * |background|) model evaluations.
  [[nodiscard]] Vector explain(const Vector& x, std::size_t output_index);

  /// Shapley values for all model outputs at once (shares the coalition
  /// evaluations). Result: [output][feature].
  [[nodiscard]] std::vector<Vector> explain_all_outputs(const Vector& x);

  /// Model evaluations performed so far (cost accounting for Fig. 4).
  [[nodiscard]] std::uint64_t model_evaluations() const noexcept {
    return evaluations_.load(std::memory_order_relaxed);
  }
  void reset_evaluation_counter() noexcept {
    evaluations_.store(0, std::memory_order_relaxed);
  }

  /// Expected model output over the background (the SHAP base value).
  /// Computed on first call and cached; safe to call concurrently.
  [[nodiscard]] Vector base_values();

 private:
  /// Batched v(S): one fused model call for all `masks`. Result i is the
  /// expected model output with features in masks[i] taken from x and the
  /// rest marginalized over the background (averaged in background order,
  /// exactly as the old per-coalition path did). Thread-safe: the probe
  /// matrix comes from the explainer-owned scratch pool.
  [[nodiscard]] std::vector<Vector> coalition_values(
      const Vector& x, std::span<const std::uint32_t> masks);
  [[nodiscard]] std::vector<Vector> explain_exact(const Vector& x);
  [[nodiscard]] std::vector<Vector> explain_sampling(const Vector& x);
  [[nodiscard]] common::ThreadPool& pool() const noexcept {
    return config_.pool != nullptr ? *config_.pool : common::global_pool();
  }

  /// Reusable probe matrices (hoisted out of the per-coalition hot path);
  /// workers check one out, fill + evaluate it, and return it.
  [[nodiscard]] ml::Matrix acquire_scratch();
  void release_scratch(ml::Matrix&& scratch);

  MatrixModelFn model_;
  std::vector<Vector> background_;
  ml::Matrix background_matrix_;  ///< same rows, kernel-ready layout
  Config config_;
  // atomics-ok: commutative-counter (model-eval tally; order-free add fold)
  std::atomic<std::uint64_t> evaluations_ = 0;

  // Lowest rank in the table: base_values() holds it across a model call,
  // which may fan out onto the pool (whose locks rank higher).
  common::Mutex base_mutex_{"shap.base_cache",
                            common::lockrank::kShapBaseCache};
  std::optional<Vector> base_cache_ EXPLORA_GUARDED_BY(base_mutex_);

  // Scratch freelist; acquired briefly from pool workers that hold no
  // other lock (rank sits above the pool locks, below telemetry).
  common::Mutex scratch_mutex_{"shap.probe_scratch",
                               common::lockrank::kShapScratch};
  std::vector<ml::Matrix> scratch_pool_ EXPLORA_GUARDED_BY(scratch_mutex_);

  // Telemetry (xai.shap.*), bound at construction. model_evals mirrors
  // evaluations_ into snapshots (atomic adds from pool workers, so totals
  // are thread-count independent); evals_per_explanation is the exact
  // per-explanation cost the paper's Fig. 4 accounts (coalitions x
  // background rows, computed analytically, not raced).
  telemetry::Counter* tm_explanations_;
  telemetry::Counter* tm_model_evals_;
  telemetry::Histogram* tm_coalitions_;
  telemetry::SpanStat* tm_evals_per_explanation_;
};

/// Factorials 0..31 as doubles (Shapley weight computation; covers the full
/// feature range both estimators accept).
[[nodiscard]] double factorial(std::size_t n) noexcept;

/// The exact-mode Shapley coalition weight |S|! (N-|S|-1)! / N! for a
/// coalition of size `coalition_size` out of `num_features` features,
/// precomputable per size (hoisted out of the per-(feature, mask) loop).
[[nodiscard]] double shapley_weight(std::size_t num_features,
                                    std::size_t coalition_size) noexcept;

}  // namespace explora::xai
