// SHAP (SHapley Additive exPlanations) from scratch — the state-of-the-art
// XAI baseline the paper evaluates against (§3.2, Eq. 2, Figs. 3-4).
//
// Two estimators over a background dataset:
//   - exact: enumerates all 2^N feature coalitions (N = 9 latent features
//     in the paper's use case) and applies the exact Shapley weights — this
//     is Eq. (2) and is deliberately expensive, reproducing the cost the
//     paper measures in Fig. 4;
//   - sampling: Monte Carlo over random permutations (Castro et al.),
//     unbiased with configurable sample count.
//
// Missing features are marginalized by substituting values from background
// rows (the interventional conditional expectation used by KernelSHAP).
#pragma once

#include <cstdint>
#include <functional>
#include <vector>

#include "common/rng.hpp"
#include "ml/matrix.hpp"

namespace explora::xai {

using ml::Vector;

/// Black-box model: feature vector in, output vector out (e.g. the agent's
/// per-head action scores).
using ModelFn = std::function<Vector(const Vector&)>;

class ShapExplainer {
 public:
  enum class Mode : std::uint8_t { kExact = 0, kSampling = 1 };

  struct Config {
    Mode mode = Mode::kExact;
    std::size_t permutations = 200;     ///< sampling mode only
    std::size_t max_background = 32;    ///< background rows used per v(S)
    std::uint64_t seed = 17;
  };

  /// @param model black-box to explain (never null).
  /// @param background reference dataset for marginalizing missing
  ///        features; at least one row.
  ShapExplainer(ModelFn model, std::vector<Vector> background);
  ShapExplainer(ModelFn model, std::vector<Vector> background, Config config);

  /// Shapley values of every feature for output `output_index` at `x`.
  /// Exact mode cost: O(2^N * |background|) model evaluations.
  [[nodiscard]] Vector explain(const Vector& x, std::size_t output_index);

  /// Shapley values for all model outputs at once (shares the coalition
  /// evaluations). Result: [output][feature].
  [[nodiscard]] std::vector<Vector> explain_all_outputs(const Vector& x);

  /// Model evaluations performed so far (cost accounting for Fig. 4).
  [[nodiscard]] std::uint64_t model_evaluations() const noexcept {
    return evaluations_;
  }
  void reset_evaluation_counter() noexcept { evaluations_ = 0; }

  /// Expected model output over the background (the SHAP base value).
  [[nodiscard]] Vector base_values();

 private:
  /// v(S): expected model output with features in S taken from x and the
  /// rest marginalized over the background.
  [[nodiscard]] Vector coalition_value(const Vector& x,
                                       std::uint32_t coalition_mask);
  [[nodiscard]] std::vector<Vector> explain_exact(const Vector& x);
  [[nodiscard]] std::vector<Vector> explain_sampling(const Vector& x);

  ModelFn model_;
  std::vector<Vector> background_;
  Config config_;
  common::Rng rng_;
  std::uint64_t evaluations_ = 0;
};

/// Factorials up to 20 as doubles (Shapley weight computation).
[[nodiscard]] double factorial(std::size_t n) noexcept;

}  // namespace explora::xai
