#include "xai/boosted.hpp"

#include <algorithm>
#include <cmath>

#include "common/contracts.hpp"
#include "ml/nn.hpp"

namespace explora::xai {

GradientBoostedClassifier::GradientBoostedClassifier()
    : GradientBoostedClassifier(Config{}) {}

GradientBoostedClassifier::GradientBoostedClassifier(Config config)
    : config_(config) {
  EXPLORA_EXPECTS(config.rounds >= 1);
  EXPLORA_EXPECTS(config.learning_rate > 0.0);
}

void GradientBoostedClassifier::fit(const Dataset& data,
                                    std::size_t num_classes) {
  EXPLORA_EXPECTS(data.size() > 0);
  EXPLORA_EXPECTS(num_classes >= 2);
  num_classes_ = num_classes;
  ensemble_.clear();

  const std::size_t n = data.size();
  // Class-prior base scores (log of empirical frequency, floored).
  base_scores_.assign(num_classes_, 0.0);
  {
    Vector freq(num_classes_, 0.0);
    for (std::size_t label : data.labels) freq[label] += 1.0;
    for (std::size_t c = 0; c < num_classes_; ++c) {
      base_scores_[c] =
          std::log(std::max(freq[c] / static_cast<double>(n), 1e-6));
    }
  }

  // scores[i][c]: current additive model output per row.
  std::vector<Vector> scores(n, base_scores_);
  std::vector<Vector> probs(n, Vector(num_classes_, 0.0));

  for (std::size_t round = 0; round < config_.rounds; ++round) {
    for (std::size_t i = 0; i < n; ++i) {
      probs[i] = scores[i];
      ml::softmax(probs[i]);
    }
    std::vector<RegressionTree> round_trees;
    round_trees.reserve(num_classes_);
    for (std::size_t c = 0; c < num_classes_; ++c) {
      // Negative gradient of softmax cross-entropy: y_c - p_c.
      Vector residuals(n, 0.0);
      for (std::size_t i = 0; i < n; ++i) {
        const double y = data.labels[i] == c ? 1.0 : 0.0;
        residuals[i] = y - probs[i][c];
      }
      RegressionTree tree(config_.tree);
      tree.fit(data.features, residuals);
      for (std::size_t i = 0; i < n; ++i) {
        scores[i][c] +=
            config_.learning_rate * tree.predict(data.features[i]);
      }
      round_trees.push_back(std::move(tree));
    }
    ensemble_.push_back(std::move(round_trees));
  }
}

Vector GradientBoostedClassifier::decision_function(const Vector& x) const {
  EXPLORA_EXPECTS(num_classes_ > 0);
  Vector scores = base_scores_;
  for (const auto& round_trees : ensemble_) {
    for (std::size_t c = 0; c < num_classes_; ++c) {
      scores[c] += config_.learning_rate * round_trees[c].predict(x);
    }
  }
  return scores;
}

Vector GradientBoostedClassifier::predict_proba(const Vector& x) const {
  Vector scores = decision_function(x);
  ml::softmax(scores);
  return scores;
}

std::size_t GradientBoostedClassifier::predict(const Vector& x) const {
  const Vector scores = decision_function(x);
  return static_cast<std::size_t>(
      std::distance(scores.begin(),
                    std::max_element(scores.begin(), scores.end())));
}

double GradientBoostedClassifier::accuracy(const Dataset& data) const {
  EXPLORA_EXPECTS(data.size() > 0);
  std::size_t correct = 0;
  for (std::size_t i = 0; i < data.size(); ++i) {
    if (predict(data.features[i]) == data.labels[i]) ++correct;
  }
  return static_cast<double>(correct) / static_cast<double>(data.size());
}

}  // namespace explora::xai
