#include "xai/lime.hpp"

#include <cmath>

#include "common/contracts.hpp"

namespace explora::xai {

Vector solve_linear_system(std::vector<Vector> a, Vector b) {
  const std::size_t n = b.size();
  EXPLORA_EXPECTS(a.size() == n);
  for (const auto& row : a) EXPLORA_EXPECTS(row.size() == n);

  for (std::size_t col = 0; col < n; ++col) {
    // Partial pivoting.
    std::size_t pivot = col;
    for (std::size_t row = col + 1; row < n; ++row) {
      if (std::abs(a[row][col]) > std::abs(a[pivot][col])) pivot = row;
    }
    std::swap(a[col], a[pivot]);
    std::swap(b[col], b[pivot]);
    EXPLORA_EXPECTS(std::abs(a[col][col]) > 1e-12);
    // Eliminate below.
    for (std::size_t row = col + 1; row < n; ++row) {
      const double factor = a[row][col] / a[col][col];
      if (factor == 0.0) continue;  // det-ok: float-eq (exact-zero skip is bit-safe)
      for (std::size_t k = col; k < n; ++k) a[row][k] -= factor * a[col][k];
      b[row] -= factor * b[col];
    }
  }
  // Back substitution.
  Vector x(n, 0.0);
  for (std::size_t row = n; row-- > 0;) {
    double acc = b[row];
    for (std::size_t k = row + 1; k < n; ++k) acc -= a[row][k] * x[k];
    x[row] = acc / a[row][row];
  }
  return x;
}

LimeExplainer::LimeExplainer(ModelFn model)
    : LimeExplainer(matrix_model(std::move(model)), Config{}) {}

LimeExplainer::LimeExplainer(ModelFn model, Config config)
    : LimeExplainer(matrix_model(std::move(model)), config) {}

LimeExplainer::LimeExplainer(MatrixModelFn model)
    : LimeExplainer(std::move(model), Config{}) {}

LimeExplainer::LimeExplainer(MatrixModelFn model, Config config)
    : model_(std::move(model)), config_(config), rng_(config.seed) {
  EXPLORA_EXPECTS(model_ != nullptr);
  EXPLORA_EXPECTS(config.samples >= 16);
  EXPLORA_EXPECTS(config.perturbation_sigma > 0.0);
  EXPLORA_EXPECTS(config.kernel_width > 0.0);
  EXPLORA_EXPECTS(config.ridge_lambda >= 0.0);
}

Vector LimeExplainer::explain(const Vector& x, std::size_t output_index) {
  const std::size_t num_features = x.size();
  EXPLORA_EXPECTS(num_features > 0);
  const std::size_t dim = num_features + 1;  // + intercept

  // Phase 1: draw every perturbation up front (the RNG stream is exactly
  // the per-sample order the old interleaved loop consumed) and hand the
  // whole probe batch to the model as one matrix — one fused GEMM sweep
  // per layer instead of `samples` single-row calls.
  ml::Matrix probes(config_.samples, num_features);
  Vector distance_sq(config_.samples, 0.0);
  for (std::size_t s = 0; s < config_.samples; ++s) {
    double* probe = probes.data().data() + s * num_features;
    for (std::size_t f = 0; f < num_features; ++f) {
      const double delta = rng_.normal(0.0, config_.perturbation_sigma);
      probe[f] = x[f] + delta;
      distance_sq[s] += delta * delta;
    }
  }
  const ml::Matrix outputs = model_(probes);
  EXPLORA_ASSERT(outputs.rows() == config_.samples);
  EXPLORA_EXPECTS(output_index < outputs.cols());
  evaluations_ += config_.samples;

  // Phase 2: accumulate the weighted normal equations in sample order —
  // (Z^T W Z + lambda I) beta = Z^T W y, each row of Z = [1, probe...] and
  // W the locality kernel — identical arithmetic to the old fused loop.
  std::vector<Vector> normal(dim, Vector(dim, 0.0));
  Vector rhs(dim, 0.0);
  double weighted_y_sum = 0.0;
  double weight_sum = 0.0;

  struct Sample {
    Vector z;       // [1, features...]
    double y;
    double weight;
  };
  std::vector<Sample> samples;
  samples.reserve(config_.samples);

  for (std::size_t s = 0; s < config_.samples; ++s) {
    const auto probe = probes.data().subspan(s * num_features, num_features);
    const double weight = std::exp(
        -distance_sq[s] / (config_.kernel_width * config_.kernel_width));

    Sample sample;
    sample.z.reserve(dim);
    sample.z.push_back(1.0);
    sample.z.insert(sample.z.end(), probe.begin(), probe.end());
    sample.y = outputs(s, output_index);
    sample.weight = weight;

    for (std::size_t i = 0; i < dim; ++i) {
      for (std::size_t j = i; j < dim; ++j) {
        normal[i][j] += weight * sample.z[i] * sample.z[j];
      }
      rhs[i] += weight * sample.z[i] * sample.y;
    }
    weighted_y_sum += weight * sample.y;
    weight_sum += weight;
    samples.push_back(std::move(sample));
  }
  // Symmetrize and regularize (no penalty on the intercept).
  for (std::size_t i = 0; i < dim; ++i) {
    for (std::size_t j = 0; j < i; ++j) normal[i][j] = normal[j][i];
    if (i > 0) normal[i][i] += config_.ridge_lambda;
  }

  const Vector beta = solve_linear_system(std::move(normal), std::move(rhs));
  intercept_ = beta[0];

  // Weighted R^2 fidelity of the surrogate.
  const double y_mean = weight_sum > 0.0 ? weighted_y_sum / weight_sum : 0.0;
  double ss_res = 0.0;
  double ss_tot = 0.0;
  for (const Sample& sample : samples) {
    double prediction = 0.0;
    for (std::size_t i = 0; i < dim; ++i) {
      prediction += beta[i] * sample.z[i];
    }
    ss_res += sample.weight * (sample.y - prediction) * (sample.y - prediction);
    ss_tot += sample.weight * (sample.y - y_mean) * (sample.y - y_mean);
  }
  r2_ = ss_tot > 0.0 ? 1.0 - ss_res / ss_tot : 1.0;

  return Vector(beta.begin() + 1, beta.end());
}

}  // namespace explora::xai
