#include "xai/shap.hpp"

#include <algorithm>
#include <array>
#include <bit>
#include <utility>

#include "common/analysis_annotations.hpp"
#include "common/contracts.hpp"
#include "ml/nn.hpp"

namespace explora::xai {

double factorial(std::size_t n) noexcept {
  static const std::array<double, 32> table = [] {
    std::array<double, 32> t{};
    t[0] = 1.0;
    for (std::size_t i = 1; i < t.size(); ++i) {
      t[i] = t[i - 1] * static_cast<double>(i);
    }
    return t;
  }();
  EXPLORA_EXPECTS(n < table.size());
  return table[n];
}

double shapley_weight(std::size_t num_features,
                      std::size_t coalition_size) noexcept {
  return factorial(coalition_size) *
         factorial(num_features - coalition_size - 1) /
         factorial(num_features);
}

MatrixModelFn batch_model(const ml::Mlp& mlp) {
  return [&mlp](const ml::Matrix& probes) { return mlp.forward_batch(probes); };
}

MatrixModelFn matrix_model(ModelFn model) {
  return [model = std::move(model)](const ml::Matrix& probes) {
    ml::Matrix outputs;
    Vector probe(probes.cols());
    for (std::size_t r = 0; r < probes.rows(); ++r) {
      const auto row = probes.data().subspan(r * probes.cols(), probes.cols());
      probe.assign(row.begin(), row.end());
      const Vector out = model(probe);
      if (r == 0) outputs = ml::Matrix(probes.rows(), out.size());
      EXPLORA_ASSERT(out.size() == outputs.cols());
      std::copy(out.begin(), out.end(),
                outputs.data().begin() +
                    static_cast<std::ptrdiff_t>(r * outputs.cols()));
    }
    return outputs;
  };
}

namespace {

/// Adapts a vector-of-rows batched model to the matrix entry point.
[[nodiscard]] MatrixModelFn wrap_row_batched(BatchModelFn model) {
  return [model = std::move(model)](const ml::Matrix& probes) {
    std::vector<Vector> rows(probes.rows());
    for (std::size_t r = 0; r < probes.rows(); ++r) {
      const auto row = probes.data().subspan(r * probes.cols(), probes.cols());
      rows[r].assign(row.begin(), row.end());
    }
    const std::vector<Vector> outputs = model(rows);
    EXPLORA_ASSERT(outputs.size() == probes.rows());
    ml::Matrix result(outputs.size(),
                      outputs.empty() ? 0 : outputs.front().size());
    for (std::size_t r = 0; r < outputs.size(); ++r) {
      EXPLORA_ASSERT(outputs[r].size() == result.cols());
      std::copy(outputs[r].begin(), outputs[r].end(),
                result.data().begin() +
                    static_cast<std::ptrdiff_t>(r * result.cols()));
    }
    return result;
  };
}

}  // namespace

ShapExplainer::ShapExplainer(ModelFn model, std::vector<Vector> background)
    : ShapExplainer(std::move(model), std::move(background), Config{}) {}

ShapExplainer::ShapExplainer(ModelFn model, std::vector<Vector> background,
                             Config config)
    : ShapExplainer(matrix_model(std::move(model)), std::move(background),
                    config) {}

ShapExplainer::ShapExplainer(BatchModelFn model,
                             std::vector<Vector> background)
    : ShapExplainer(std::move(model), std::move(background), Config{}) {}

ShapExplainer::ShapExplainer(BatchModelFn model, std::vector<Vector> background,
                             Config config)
    : ShapExplainer(wrap_row_batched(std::move(model)), std::move(background),
                    config) {}

ShapExplainer::ShapExplainer(MatrixModelFn model,
                             std::vector<Vector> background)
    : ShapExplainer(std::move(model), std::move(background), Config{}) {}

ShapExplainer::ShapExplainer(MatrixModelFn model,
                             std::vector<Vector> background, Config config)
    : model_(std::move(model)),
      background_(std::move(background)),
      config_(config) {
  EXPLORA_EXPECTS(model_ != nullptr);
  EXPLORA_EXPECTS(!background_.empty());
  telemetry::Scope scope("xai.shap");
  tm_explanations_ = &scope.counter("explanations");
  tm_model_evals_ = &scope.counter("model_evals");
  // 512 = 2^9: the exact-mode coalition count for the paper's 9 latent
  // features; sampling mode typically lands in the overflow bucket.
  static constexpr std::int64_t kCoalitionBounds[] = {16, 64, 128, 256, 512};
  tm_coalitions_ = &scope.histogram("coalitions_per_explanation",
                                    kCoalitionBounds);
  tm_evals_per_explanation_ = &scope.span("evals_per_explanation");
  if (background_.size() > config_.max_background) {
    // Deterministic subsample: stride through the background.
    std::vector<Vector> reduced;
    reduced.reserve(config_.max_background);
    const double stride = static_cast<double>(background_.size()) /
                          static_cast<double>(config_.max_background);
    for (std::size_t i = 0; i < config_.max_background; ++i) {
      reduced.push_back(
          background_[static_cast<std::size_t>(stride * static_cast<double>(i))]);
    }
    background_ = std::move(reduced);
  }
  // Kernel-ready copy of the (possibly subsampled) background, built once:
  // base_values() feeds it straight to the model and coalition probes copy
  // rows out of contiguous storage.
  background_matrix_ = ml::Matrix(background_.size(), background_[0].size());
  for (std::size_t b = 0; b < background_.size(); ++b) {
    EXPLORA_EXPECTS(background_[b].size() == background_matrix_.cols());
    std::copy(background_[b].begin(), background_[b].end(),
              background_matrix_.data().begin() +
                  static_cast<std::ptrdiff_t>(b * background_matrix_.cols()));
  }
}

ml::Matrix ShapExplainer::acquire_scratch() {
  common::MutexLock lock(scratch_mutex_);
  if (scratch_pool_.empty()) return {};
  ml::Matrix scratch = std::move(scratch_pool_.back());
  scratch_pool_.pop_back();
  return scratch;
}

void ShapExplainer::release_scratch(ml::Matrix&& scratch) {
  common::MutexLock lock(scratch_mutex_);
  scratch_pool_.push_back(std::move(scratch));
}

EXPLORA_NONBLOCKING std::vector<Vector> ShapExplainer::coalition_values(
    const Vector& x, std::span<const std::uint32_t> masks) {
  const std::size_t bg = background_.size();
  const std::size_t rows = masks.size() * bg;
  EXPLORA_EXPECTS(background_matrix_.cols() == x.size());

  // All probes of the whole coalition chunk go through the model as ONE
  // matrix — one fused GEMM sweep per layer instead of a model call per
  // coalition (let alone per probe row).
  // hotpath-ok: bounded freelist pop under scratch_mutex_, never held
  // across a model evaluation; convoying is impossible.
  ml::Matrix probes = acquire_scratch();
  probes.resize(rows, x.size());
  for (std::size_t m = 0; m < masks.size(); ++m) {
    const std::uint32_t mask = masks[m];
    for (std::size_t b = 0; b < bg; ++b) {
      const double* row = background_matrix_.data().data() + b * x.size();
      double* probe = probes.data().data() + (m * bg + b) * x.size();
      for (std::size_t f = 0; f < x.size(); ++f) {
        probe[f] = (mask >> f) & 1u ? x[f] : row[f];
      }
    }
  }
  const ml::Matrix outputs = model_(probes);
  EXPLORA_ASSERT(outputs.rows() == rows);
  // hotpath-ok: bounded freelist push under scratch_mutex_, never held
  // across a model evaluation; convoying is impossible.
  release_scratch(std::move(probes));
  evaluations_.fetch_add(rows, std::memory_order_relaxed);
  tm_model_evals_->add(rows);

  // Per-coalition background average, accumulated in background order —
  // the exact summation the old per-coalition path ran, so values are
  // bit-identical to pre-batching results.
  std::vector<Vector> values(masks.size());
  const std::size_t num_outputs = outputs.cols();
  for (std::size_t m = 0; m < masks.size(); ++m) {
    const auto first =
        outputs.data().subspan(m * bg * num_outputs, num_outputs);
    Vector accumulator(first.begin(), first.end());
    for (std::size_t b = 1; b < bg; ++b) {
      const double* row =
          outputs.data().data() + (m * bg + b) * num_outputs;
      for (std::size_t i = 0; i < num_outputs; ++i) accumulator[i] += row[i];
    }
    for (double& v : accumulator) v /= static_cast<double>(bg);
    values[m] = std::move(accumulator);
  }
  return values;
}

Vector ShapExplainer::base_values() {
  common::MutexLock lock(base_mutex_);
  if (base_cache_) return *base_cache_;
  const ml::Matrix outputs = model_(background_matrix_);
  EXPLORA_ASSERT(outputs.rows() == background_.size());
  evaluations_.fetch_add(background_.size(), std::memory_order_relaxed);
  tm_model_evals_->add(background_.size());
  const std::size_t num_outputs = outputs.cols();
  const auto first = outputs.data().subspan(0, num_outputs);
  Vector accumulator(first.begin(), first.end());
  for (std::size_t b = 1; b < outputs.rows(); ++b) {
    const double* row = outputs.data().data() + b * num_outputs;
    for (std::size_t i = 0; i < num_outputs; ++i) accumulator[i] += row[i];
  }
  for (double& v : accumulator) {
    v /= static_cast<double>(background_.size());
  }
  base_cache_ = accumulator;
  return accumulator;
}

std::vector<Vector> ShapExplainer::explain_exact(const Vector& x) {
  const std::size_t num_features = x.size();
  EXPLORA_EXPECTS(num_features > 0 && num_features <= 20);

  // Evaluate v(S) for every coalition once. Coalition values are mutually
  // independent, so the 2^N evaluations fan out across the pool in chunks
  // of kCoalitionGrain coalitions; each chunk assembles its probes into
  // one matrix and makes ONE model call (grain x |background| rows per
  // GEMM sweep), bounding memory while keeping the kernels fed. Each slot
  // is written by exactly one chunk and the per-coalition arithmetic is
  // untouched, keeping results identical to a serial run.
  constexpr std::size_t kCoalitionGrain = 16;
  const std::uint32_t num_coalitions = 1u << num_features;
  std::vector<Vector> values(num_coalitions);
  pool().parallel_for(
      0, num_coalitions, kCoalitionGrain,
      [&](std::size_t begin, std::size_t end) {
        std::vector<std::uint32_t> masks(end - begin);
        for (std::size_t i = 0; i < masks.size(); ++i) {
          masks[i] = static_cast<std::uint32_t>(begin + i);
        }
        std::vector<Vector> chunk = coalition_values(x, masks);
        for (std::size_t i = 0; i < masks.size(); ++i) {
          values[begin + i] = std::move(chunk[i]);
        }
      });
  const std::size_t num_outputs = values[0].size();

  // phi_i = sum_S |S|! (N-|S|-1)! / N! * (v(S u {i}) - v(S)), i not in S.
  // The weight depends only on |S|: precompute it per coalition size
  // instead of recomputing factorials per (feature, mask) pair.
  std::vector<double> weight_by_size(num_features);
  for (std::size_t k = 0; k < num_features; ++k) {
    weight_by_size[k] = shapley_weight(num_features, k);
  }
  std::vector<Vector> phi(num_outputs, Vector(num_features, 0.0));
  for (std::size_t f = 0; f < num_features; ++f) {
    const std::uint32_t f_bit = 1u << f;
    for (std::uint32_t mask = 0; mask < num_coalitions; ++mask) {
      if (mask & f_bit) continue;
      const double weight =
          weight_by_size[static_cast<std::size_t>(std::popcount(mask))];
      const Vector& with = values[mask | f_bit];
      const Vector& without = values[mask];
      for (std::size_t o = 0; o < num_outputs; ++o) {
        phi[o][f] += weight * (with[o] - without[o]);
      }
    }
  }
  // Shapley efficiency (additivity): sum_i phi_i must recover
  // f(x) - E[f(background)], i.e. v(full) - v(empty). A drift here means
  // the coalition fan-out or the weight table is corrupt.
  if (contracts::check_level() >= contracts::CheckLevel::kAudit) {
    const Vector& v_full = values[num_coalitions - 1];
    const Vector& v_empty = values[0];
    for (std::size_t o = 0; o < num_outputs; ++o) {
      double phi_sum = 0.0;
      for (std::size_t f = 0; f < num_features; ++f) phi_sum += phi[o][f];
      EXPLORA_AUDIT_MSG(
          contracts::approx_equal(phi_sum, v_full[o] - v_empty[o], 1e-6, 1e-6),
          "output {}: sum(phi) + base = {} but f(x) = {}", o,
          phi_sum + v_empty[o], v_full[o]);
    }
  }
  return phi;
}

std::vector<Vector> ShapExplainer::explain_sampling(const Vector& x) {
  const std::size_t num_features = x.size();
  EXPLORA_EXPECTS(num_features > 0 && num_features < 32);

  // Permutation chains are independent given per-permutation RNG streams
  // derived from the seed, so they run concurrently; partial phi sums are
  // merged in permutation order (grain 1 = one chunk per permutation),
  // which reproduces the serial summation bit-for-bit.
  using Phi = std::vector<Vector>;
  Phi phi = pool().parallel_map_reduce(
      std::size_t{0}, config_.permutations, /*grain=*/1, Phi{},
      [&](std::size_t p, std::size_t) {
        std::uint64_t stream = config_.seed + p + 1;
        common::Rng rng(common::splitmix64(stream));
        std::vector<std::size_t> order(num_features);
        for (std::size_t i = 0; i < num_features; ++i) order[i] = i;
        rng.shuffle(order);

        // The chain's coalitions are its prefix masks — all known before
        // any evaluation, so the whole permutation goes through the model
        // as one batched call.
        std::vector<std::uint32_t> masks(num_features + 1, 0u);
        std::uint32_t mask = 0;
        for (std::size_t i = 0; i < num_features; ++i) {
          mask |= 1u << order[i];
          masks[i + 1] = mask;
        }
        const std::vector<Vector> values = coalition_values(x, masks);
        Phi local(values[0].size(), Vector(num_features, 0.0));
        for (std::size_t i = 0; i < num_features; ++i) {
          const Vector& current = values[i + 1];
          const Vector& previous = values[i];
          const std::size_t f = order[i];
          for (std::size_t o = 0; o < local.size(); ++o) {
            local[o][f] += current[o] - previous[o];
          }
        }
        return local;
      },
      [](Phi& acc, Phi&& partial) {
        if (acc.empty()) {
          acc = std::move(partial);
          return;
        }
        for (std::size_t o = 0; o < acc.size(); ++o) {
          for (std::size_t f = 0; f < acc[o].size(); ++f) {
            acc[o][f] += partial[o][f];
          }
        }
      });
  for (auto& per_output : phi) {
    for (double& v : per_output) {
      v /= static_cast<double>(config_.permutations);
    }
  }
  return phi;
}

Vector ShapExplainer::explain(const Vector& x, std::size_t output_index) {
  const auto all = explain_all_outputs(x);
  EXPLORA_EXPECTS(output_index < all.size());
  return all[output_index];
}

std::vector<Vector> ShapExplainer::explain_all_outputs(const Vector& x) {
  // Per-explanation cost accounting, computed analytically so it is exact
  // under any thread count: coalitions evaluated and model evaluations
  // (coalitions x background rows) for this one explanation.
  const std::size_t num_features = x.size();
  const std::size_t coalitions =
      config_.mode == Mode::kExact
          ? (std::size_t{1} << num_features)
          : config_.permutations * (num_features + 1);
  tm_explanations_->add(1);
  tm_coalitions_->observe(static_cast<std::int64_t>(coalitions));
  tm_evals_per_explanation_->record(
      static_cast<std::int64_t>(coalitions * background_.size()));
  return config_.mode == Mode::kExact ? explain_exact(x)
                                      : explain_sampling(x);
}

}  // namespace explora::xai
