#include "xai/shap.hpp"

#include <algorithm>
#include <array>
#include <bit>
#include <utility>

#include "common/contracts.hpp"
#include "ml/nn.hpp"

namespace explora::xai {

double factorial(std::size_t n) noexcept {
  static const std::array<double, 32> table = [] {
    std::array<double, 32> t{};
    t[0] = 1.0;
    for (std::size_t i = 1; i < t.size(); ++i) {
      t[i] = t[i - 1] * static_cast<double>(i);
    }
    return t;
  }();
  EXPLORA_EXPECTS(n < table.size());
  return table[n];
}

double shapley_weight(std::size_t num_features,
                      std::size_t coalition_size) noexcept {
  return factorial(coalition_size) *
         factorial(num_features - coalition_size - 1) /
         factorial(num_features);
}

BatchModelFn batch_model(const ml::Mlp& mlp) {
  return [&mlp](const std::vector<Vector>& probes) {
    ml::Matrix inputs(probes.size(), probes.front().size());
    for (std::size_t r = 0; r < probes.size(); ++r) {
      std::copy(probes[r].begin(), probes[r].end(),
                inputs.data().begin() +
                    static_cast<std::ptrdiff_t>(r * inputs.cols()));
    }
    const ml::Matrix outputs = mlp.forward_batch(inputs);
    std::vector<Vector> rows(outputs.rows());
    for (std::size_t r = 0; r < outputs.rows(); ++r) {
      const auto row = outputs.data().subspan(r * outputs.cols(),
                                              outputs.cols());
      rows[r].assign(row.begin(), row.end());
    }
    return rows;
  };
}

ShapExplainer::ShapExplainer(ModelFn model, std::vector<Vector> background)
    : ShapExplainer(std::move(model), std::move(background), Config{}) {}

ShapExplainer::ShapExplainer(ModelFn model, std::vector<Vector> background,
                             Config config)
    : ShapExplainer(
          [model = std::move(model)](const std::vector<Vector>& probes) {
            std::vector<Vector> outputs;
            outputs.reserve(probes.size());
            for (const Vector& probe : probes) outputs.push_back(model(probe));
            return outputs;
          },
          std::move(background), config) {}

ShapExplainer::ShapExplainer(BatchModelFn model,
                             std::vector<Vector> background)
    : ShapExplainer(std::move(model), std::move(background), Config{}) {}

ShapExplainer::ShapExplainer(BatchModelFn model, std::vector<Vector> background,
                             Config config)
    : model_(std::move(model)),
      background_(std::move(background)),
      config_(config) {
  EXPLORA_EXPECTS(model_ != nullptr);
  EXPLORA_EXPECTS(!background_.empty());
  telemetry::Scope scope("xai.shap");
  tm_explanations_ = &scope.counter("explanations");
  tm_model_evals_ = &scope.counter("model_evals");
  // 512 = 2^9: the exact-mode coalition count for the paper's 9 latent
  // features; sampling mode typically lands in the overflow bucket.
  static constexpr std::int64_t kCoalitionBounds[] = {16, 64, 128, 256, 512};
  tm_coalitions_ = &scope.histogram("coalitions_per_explanation",
                                    kCoalitionBounds);
  tm_evals_per_explanation_ = &scope.span("evals_per_explanation");
  if (background_.size() > config_.max_background) {
    // Deterministic subsample: stride through the background.
    std::vector<Vector> reduced;
    reduced.reserve(config_.max_background);
    const double stride = static_cast<double>(background_.size()) /
                          static_cast<double>(config_.max_background);
    for (std::size_t i = 0; i < config_.max_background; ++i) {
      reduced.push_back(
          background_[static_cast<std::size_t>(stride * static_cast<double>(i))]);
    }
    background_ = std::move(reduced);
  }
}

Vector ShapExplainer::coalition_value(const Vector& x,
                                      std::uint32_t coalition_mask) {
  // One probe per background row; the whole coalition batch goes through
  // the model in a single call so batched backends amortize per-call work.
  std::vector<Vector> probes(background_.size());
  for (std::size_t b = 0; b < background_.size(); ++b) {
    const Vector& row = background_[b];
    EXPLORA_EXPECTS(row.size() == x.size());
    Vector& probe = probes[b];
    probe.resize(x.size());
    for (std::size_t f = 0; f < x.size(); ++f) {
      probe[f] = (coalition_mask >> f) & 1u ? x[f] : row[f];
    }
  }
  const std::vector<Vector> outputs = model_(probes);
  EXPLORA_ASSERT(outputs.size() == background_.size());
  evaluations_.fetch_add(background_.size(), std::memory_order_relaxed);
  tm_model_evals_->add(background_.size());

  Vector accumulator = outputs.front();
  for (std::size_t b = 1; b < outputs.size(); ++b) {
    for (std::size_t i = 0; i < accumulator.size(); ++i) {
      accumulator[i] += outputs[b][i];
    }
  }
  for (double& v : accumulator) {
    v /= static_cast<double>(background_.size());
  }
  return accumulator;
}

Vector ShapExplainer::base_values() {
  common::MutexLock lock(base_mutex_);
  if (base_cache_) return *base_cache_;
  const std::vector<Vector> outputs = model_(background_);
  EXPLORA_ASSERT(outputs.size() == background_.size());
  evaluations_.fetch_add(background_.size(), std::memory_order_relaxed);
  tm_model_evals_->add(background_.size());
  Vector accumulator = outputs.front();
  for (std::size_t b = 1; b < outputs.size(); ++b) {
    for (std::size_t i = 0; i < accumulator.size(); ++i) {
      accumulator[i] += outputs[b][i];
    }
  }
  for (double& v : accumulator) {
    v /= static_cast<double>(background_.size());
  }
  base_cache_ = accumulator;
  return accumulator;
}

std::vector<Vector> ShapExplainer::explain_exact(const Vector& x) {
  const std::size_t num_features = x.size();
  EXPLORA_EXPECTS(num_features > 0 && num_features <= 20);

  // Evaluate v(S) for every coalition once. Coalition values are mutually
  // independent, so the 2^N evaluations fan out across the pool; each
  // slot is written by exactly one chunk and the per-coalition arithmetic
  // is untouched, keeping results identical to a serial run.
  const std::uint32_t num_coalitions = 1u << num_features;
  std::vector<Vector> values(num_coalitions);
  pool().parallel_for(0, num_coalitions, /*grain=*/4,
                      [&](std::size_t begin, std::size_t end) {
                        for (std::size_t mask = begin; mask < end; ++mask) {
                          values[mask] = coalition_value(
                              x, static_cast<std::uint32_t>(mask));
                        }
                      });
  const std::size_t num_outputs = values[0].size();

  // phi_i = sum_S |S|! (N-|S|-1)! / N! * (v(S u {i}) - v(S)), i not in S.
  // The weight depends only on |S|: precompute it per coalition size
  // instead of recomputing factorials per (feature, mask) pair.
  std::vector<double> weight_by_size(num_features);
  for (std::size_t k = 0; k < num_features; ++k) {
    weight_by_size[k] = shapley_weight(num_features, k);
  }
  std::vector<Vector> phi(num_outputs, Vector(num_features, 0.0));
  for (std::size_t f = 0; f < num_features; ++f) {
    const std::uint32_t f_bit = 1u << f;
    for (std::uint32_t mask = 0; mask < num_coalitions; ++mask) {
      if (mask & f_bit) continue;
      const double weight =
          weight_by_size[static_cast<std::size_t>(std::popcount(mask))];
      const Vector& with = values[mask | f_bit];
      const Vector& without = values[mask];
      for (std::size_t o = 0; o < num_outputs; ++o) {
        phi[o][f] += weight * (with[o] - without[o]);
      }
    }
  }
  // Shapley efficiency (additivity): sum_i phi_i must recover
  // f(x) - E[f(background)], i.e. v(full) - v(empty). A drift here means
  // the coalition fan-out or the weight table is corrupt.
  if (contracts::check_level() >= contracts::CheckLevel::kAudit) {
    const Vector& v_full = values[num_coalitions - 1];
    const Vector& v_empty = values[0];
    for (std::size_t o = 0; o < num_outputs; ++o) {
      double phi_sum = 0.0;
      for (std::size_t f = 0; f < num_features; ++f) phi_sum += phi[o][f];
      EXPLORA_AUDIT_MSG(
          contracts::approx_equal(phi_sum, v_full[o] - v_empty[o], 1e-6, 1e-6),
          "output {}: sum(phi) + base = {} but f(x) = {}", o,
          phi_sum + v_empty[o], v_full[o]);
    }
  }
  return phi;
}

std::vector<Vector> ShapExplainer::explain_sampling(const Vector& x) {
  const std::size_t num_features = x.size();
  EXPLORA_EXPECTS(num_features > 0 && num_features < 32);

  // Permutation chains are independent given per-permutation RNG streams
  // derived from the seed, so they run concurrently; partial phi sums are
  // merged in permutation order (grain 1 = one chunk per permutation),
  // which reproduces the serial summation bit-for-bit.
  using Phi = std::vector<Vector>;
  Phi phi = pool().parallel_map_reduce(
      std::size_t{0}, config_.permutations, /*grain=*/1, Phi{},
      [&](std::size_t p, std::size_t) {
        std::uint64_t stream = config_.seed + p + 1;
        common::Rng rng(common::splitmix64(stream));
        std::vector<std::size_t> order(num_features);
        for (std::size_t i = 0; i < num_features; ++i) order[i] = i;
        rng.shuffle(order);

        std::uint32_t mask = 0;
        Vector previous = coalition_value(x, mask);
        Phi local(previous.size(), Vector(num_features, 0.0));
        for (std::size_t f : order) {
          mask |= 1u << f;
          Vector current = coalition_value(x, mask);
          for (std::size_t o = 0; o < local.size(); ++o) {
            local[o][f] += current[o] - previous[o];
          }
          previous = std::move(current);
        }
        return local;
      },
      [](Phi& acc, Phi&& partial) {
        if (acc.empty()) {
          acc = std::move(partial);
          return;
        }
        for (std::size_t o = 0; o < acc.size(); ++o) {
          for (std::size_t f = 0; f < acc[o].size(); ++f) {
            acc[o][f] += partial[o][f];
          }
        }
      });
  for (auto& per_output : phi) {
    for (double& v : per_output) {
      v /= static_cast<double>(config_.permutations);
    }
  }
  return phi;
}

Vector ShapExplainer::explain(const Vector& x, std::size_t output_index) {
  const auto all = explain_all_outputs(x);
  EXPLORA_EXPECTS(output_index < all.size());
  return all[output_index];
}

std::vector<Vector> ShapExplainer::explain_all_outputs(const Vector& x) {
  // Per-explanation cost accounting, computed analytically so it is exact
  // under any thread count: coalitions evaluated and model evaluations
  // (coalitions x background rows) for this one explanation.
  const std::size_t num_features = x.size();
  const std::size_t coalitions =
      config_.mode == Mode::kExact
          ? (std::size_t{1} << num_features)
          : config_.permutations * (num_features + 1);
  tm_explanations_->add(1);
  tm_coalitions_->observe(static_cast<std::int64_t>(coalitions));
  tm_evals_per_explanation_->record(
      static_cast<std::int64_t>(coalitions * background_.size()));
  return config_.mode == Mode::kExact ? explain_exact(x)
                                      : explain_sampling(x);
}

}  // namespace explora::xai
