#include "xai/shap.hpp"

#include <algorithm>
#include <array>
#include <bit>

#include "common/contracts.hpp"

namespace explora::xai {

double factorial(std::size_t n) noexcept {
  static const std::array<double, 21> table = [] {
    std::array<double, 21> t{};
    t[0] = 1.0;
    for (std::size_t i = 1; i < t.size(); ++i) {
      t[i] = t[i - 1] * static_cast<double>(i);
    }
    return t;
  }();
  return n < table.size() ? table[n] : table.back();
}

ShapExplainer::ShapExplainer(ModelFn model, std::vector<Vector> background)
    : ShapExplainer(std::move(model), std::move(background), Config{}) {}

ShapExplainer::ShapExplainer(ModelFn model, std::vector<Vector> background,
                             Config config)
    : model_(std::move(model)),
      background_(std::move(background)),
      config_(config),
      rng_(config.seed) {
  EXPLORA_EXPECTS(model_ != nullptr);
  EXPLORA_EXPECTS(!background_.empty());
  if (background_.size() > config_.max_background) {
    // Deterministic subsample: stride through the background.
    std::vector<Vector> reduced;
    reduced.reserve(config_.max_background);
    const double stride = static_cast<double>(background_.size()) /
                          static_cast<double>(config_.max_background);
    for (std::size_t i = 0; i < config_.max_background; ++i) {
      reduced.push_back(
          background_[static_cast<std::size_t>(stride * static_cast<double>(i))]);
    }
    background_ = std::move(reduced);
  }
}

Vector ShapExplainer::coalition_value(const Vector& x,
                                      std::uint32_t coalition_mask) {
  Vector accumulator;
  Vector probe(x.size(), 0.0);
  for (const Vector& row : background_) {
    EXPLORA_EXPECTS(row.size() == x.size());
    for (std::size_t f = 0; f < x.size(); ++f) {
      probe[f] = (coalition_mask >> f) & 1u ? x[f] : row[f];
    }
    Vector out = model_(probe);
    ++evaluations_;
    if (accumulator.empty()) {
      accumulator = std::move(out);
    } else {
      for (std::size_t i = 0; i < accumulator.size(); ++i) {
        accumulator[i] += out[i];
      }
    }
  }
  for (double& v : accumulator) {
    v /= static_cast<double>(background_.size());
  }
  return accumulator;
}

Vector ShapExplainer::base_values() {
  Vector accumulator;
  for (const Vector& row : background_) {
    Vector out = model_(row);
    ++evaluations_;
    if (accumulator.empty()) {
      accumulator = std::move(out);
    } else {
      for (std::size_t i = 0; i < accumulator.size(); ++i) {
        accumulator[i] += out[i];
      }
    }
  }
  for (double& v : accumulator) {
    v /= static_cast<double>(background_.size());
  }
  return accumulator;
}

std::vector<Vector> ShapExplainer::explain_exact(const Vector& x) {
  const std::size_t num_features = x.size();
  EXPLORA_EXPECTS(num_features > 0 && num_features <= 20);

  // Evaluate v(S) for every coalition once.
  const std::uint32_t num_coalitions = 1u << num_features;
  std::vector<Vector> values(num_coalitions);
  for (std::uint32_t mask = 0; mask < num_coalitions; ++mask) {
    values[mask] = coalition_value(x, mask);
  }
  const std::size_t num_outputs = values[0].size();

  // phi_i = sum_S |S|! (N-|S|-1)! / N! * (v(S u {i}) - v(S)), i not in S.
  std::vector<Vector> phi(num_outputs, Vector(num_features, 0.0));
  const double n_factorial = factorial(num_features);
  for (std::size_t f = 0; f < num_features; ++f) {
    const std::uint32_t f_bit = 1u << f;
    for (std::uint32_t mask = 0; mask < num_coalitions; ++mask) {
      if (mask & f_bit) continue;
      const auto coalition_size =
          static_cast<std::size_t>(std::popcount(mask));
      const double weight = factorial(coalition_size) *
                            factorial(num_features - coalition_size - 1) /
                            n_factorial;
      const Vector& with = values[mask | f_bit];
      const Vector& without = values[mask];
      for (std::size_t o = 0; o < num_outputs; ++o) {
        phi[o][f] += weight * (with[o] - without[o]);
      }
    }
  }
  return phi;
}

std::vector<Vector> ShapExplainer::explain_sampling(const Vector& x) {
  const std::size_t num_features = x.size();
  EXPLORA_EXPECTS(num_features > 0 && num_features < 32);

  std::vector<std::size_t> order(num_features);
  for (std::size_t i = 0; i < num_features; ++i) order[i] = i;

  std::vector<Vector> phi;
  std::size_t num_outputs = 0;
  for (std::size_t p = 0; p < config_.permutations; ++p) {
    rng_.shuffle(order);
    std::uint32_t mask = 0;
    Vector previous = coalition_value(x, mask);
    if (phi.empty()) {
      num_outputs = previous.size();
      phi.assign(num_outputs, Vector(num_features, 0.0));
    }
    for (std::size_t f : order) {
      mask |= 1u << f;
      Vector current = coalition_value(x, mask);
      for (std::size_t o = 0; o < num_outputs; ++o) {
        phi[o][f] += current[o] - previous[o];
      }
      previous = std::move(current);
    }
  }
  for (auto& per_output : phi) {
    for (double& v : per_output) {
      v /= static_cast<double>(config_.permutations);
    }
  }
  return phi;
}

Vector ShapExplainer::explain(const Vector& x, std::size_t output_index) {
  const auto all = explain_all_outputs(x);
  EXPLORA_EXPECTS(output_index < all.size());
  return all[output_index];
}

std::vector<Vector> ShapExplainer::explain_all_outputs(const Vector& x) {
  return config_.mode == Mode::kExact ? explain_exact(x)
                                      : explain_sampling(x);
}

}  // namespace explora::xai
