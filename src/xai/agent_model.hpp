// Bridges a trained PolicyAgent into the XAI explainers' matrix-batched
// model interface. This is the "model under explanation" of the paper's
// Figs. 3-4: latent state in, probability the agent assigns to the chosen
// component of each action head out (kNumHeads outputs: PRB split + one
// scheduler per slice).
#pragma once

#include "ml/agent.hpp"
#include "xai/shap.hpp"

namespace explora::xai {

/// Wraps `agent` into a MatrixModelFn: row r of the result holds the
/// per-head probabilities of `chosen`'s components at probe row r. The
/// whole probe matrix flows through the agent's batched
/// head_distributions — for Mlp-backed agents that is one blocked-GEMM
/// sweep per layer instead of one forward pass per probe, with
/// bit-identical probabilities. The agent must outlive the returned
/// callable; safe to invoke concurrently.
[[nodiscard]] MatrixModelFn head_probability_model(
    const ml::PolicyAgent& agent, const ml::AgentAction& chosen);

}  // namespace explora::xai
