#include "xai/serving.hpp"

#include <algorithm>
#include <thread>

namespace explora::xai::serving {

namespace {

std::size_t round_up_pow2(std::size_t n) {
  std::size_t p = 1;
  while (p < n) p <<= 1;
  return p;
}

}  // namespace

std::string_view to_string(Tier tier) noexcept {
  switch (tier) {
    case Tier::kExact:
      return "exact";
    case Tier::kSampled:
      return "sampled";
    case Tier::kSurrogate:
      return "surrogate";
    case Tier::kCached:
      return "cached";
  }
  return "unknown";
}

std::string_view to_string(ShedReason reason) noexcept {
  switch (reason) {
    case ShedReason::kNone:
      return "none";
    case ShedReason::kQueueFull:
      return "queue_full";
    case ShedReason::kInFlightBudget:
      return "in_flight_budget";
    case ShedReason::kDeadlineInfeasible:
      return "deadline_infeasible";
    case ShedReason::kNoCachedResult:
      return "no_cached_result";
  }
  return "unknown";
}

std::string_view to_string(DegradationLadder::Trigger trigger) noexcept {
  switch (trigger) {
    case DegradationLadder::Trigger::kLoad:
      return "load";
    case DegradationLadder::Trigger::kStaleGap:
      return "stale_gap";
    case DegradationLadder::Trigger::kRecovery:
      return "recovery";
    case DegradationLadder::Trigger::kBreaker:
      return "breaker";
  }
  return "unknown";
}

std::string_view to_string(CircuitBreaker::State state) noexcept {
  switch (state) {
    case CircuitBreaker::State::kClosed:
      return "closed";
    case CircuitBreaker::State::kOpen:
      return "open";
    case CircuitBreaker::State::kHalfOpen:
      return "half_open";
  }
  return "unknown";
}

// ---------------------------------------------------------------------------
// BoundedRequestQueue
// ---------------------------------------------------------------------------

BoundedRequestQueue::BoundedRequestQueue(std::size_t capacity,
                                         std::size_t feature_dim)
    : capacity_(round_up_pow2(std::max<std::size_t>(capacity, 2))),
      mask_(capacity_ - 1),
      feature_dim_(feature_dim),
      slots_(std::make_unique<Slot[]>(capacity_)) {
  for (std::size_t i = 0; i < capacity_; ++i) {
    // atomics-ok: pre-publication-init (no reader can exist before the ctor returns)
    slots_[i].sequence.store(i, std::memory_order_relaxed);
    slots_[i].request.x.resize(feature_dim_);
  }
}

bool BoundedRequestQueue::try_push(std::uint64_t id,
                                   std::uint32_t output_index,
                                   std::span<const std::uint32_t> context,
                                   Tick submitted, Tick deadline,
                                   std::span<const double> x) noexcept {
  EXPLORA_EXPECTS(x.size() == feature_dim_);
  std::size_t pos = enqueue_pos_.load(std::memory_order_relaxed);
  Slot* slot = nullptr;
  for (;;) {
    slot = &slots_[pos & mask_];
    const std::size_t seq = slot->sequence.load(std::memory_order_acquire);
    const auto diff = static_cast<std::intptr_t>(seq) -
                      static_cast<std::intptr_t>(pos);
    if (diff == 0) {
      if (enqueue_pos_.compare_exchange_weak(pos, pos + 1,
                                             std::memory_order_relaxed)) {
        break;
      }
    } else if (diff < 0) {
      return false;  // ring full
    } else {
      pos = enqueue_pos_.load(std::memory_order_relaxed);
    }
  }
  Request& req = slot->request;
  req.id = id;
  req.output_index = output_index;
  req.submitted = submitted;
  req.deadline = deadline;
  req.context.fill(0);
  std::copy(context.begin(),
            context.begin() +
                static_cast<std::ptrdiff_t>(
                    std::min(context.size(), req.context.size())),
            req.context.begin());
  std::copy(x.begin(), x.end(), req.x.begin());
  slot->sequence.store(pos + 1, std::memory_order_release);

  // Best-effort high-water tracking: exact under the single-threaded
  // deterministic driver, a snapshot under concurrent stress.
  const std::size_t d = depth();
  std::size_t hw = high_water_.load(std::memory_order_relaxed);
  // hotpath-ok: bounded monotone CAS - every retry means another pusher
  // already raised the watermark past us, so iterations <= concurrent pushers
  while (d > hw && !high_water_.compare_exchange_weak(
                       hw, d, std::memory_order_relaxed)) {
  }
  return true;
}

bool BoundedRequestQueue::try_pop(Request& out) noexcept {
  EXPLORA_EXPECTS(out.x.size() == feature_dim_);
  std::size_t pos = dequeue_pos_.load(std::memory_order_relaxed);
  Slot* slot = nullptr;
  for (;;) {
    slot = &slots_[pos & mask_];
    const std::size_t seq = slot->sequence.load(std::memory_order_acquire);
    const auto diff = static_cast<std::intptr_t>(seq) -
                      static_cast<std::intptr_t>(pos + 1);
    if (diff == 0) {
      if (dequeue_pos_.compare_exchange_weak(pos, pos + 1,
                                             std::memory_order_relaxed)) {
        break;
      }
    } else if (diff < 0) {
      return false;  // ring empty
    } else {
      pos = dequeue_pos_.load(std::memory_order_relaxed);
    }
  }
  const Request& req = slot->request;
  out.id = req.id;
  out.output_index = req.output_index;
  out.submitted = req.submitted;
  out.deadline = req.deadline;
  out.context = req.context;
  std::copy(req.x.begin(), req.x.end(), out.x.begin());
  slot->sequence.store(pos + capacity_, std::memory_order_release);
  return true;
}

void BoundedRequestQueue::push_blocking(
    std::uint64_t id, std::uint32_t output_index,
    std::span<const std::uint32_t> context, Tick submitted, Tick deadline,
    std::span<const double> x) noexcept {
  // hotpath-ok: stress-driver-only unbounded spin, never on a serving path -
  // annotated callers are flagged at the call site (block-queue-blocking)
  while (!try_push(id, output_index, context, submitted, deadline, x)) {
    std::this_thread::yield();
  }
}

bool BoundedRequestQueue::pop_blocking(Request& out,
                                       std::size_t spin_limit) noexcept {
  for (std::size_t spin = 0; spin < spin_limit; ++spin) {
    if (try_pop(out)) return true;
    std::this_thread::yield();
  }
  return false;
}

// ---------------------------------------------------------------------------
// DegradationLadder
// ---------------------------------------------------------------------------

DegradationLadder::DegradationLadder() : DegradationLadder(LadderConfig{}) {}

DegradationLadder::DegradationLadder(LadderConfig config)
    : config_(config) {
  EXPLORA_EXPECTS(config_.demote_streak >= 1);
  EXPLORA_EXPECTS(config_.promote_streak >= 1);
  EXPLORA_EXPECTS(config_.ewma_shift >= 0);
  EXPLORA_EXPECTS(config_.recovery_clean_reports >= 1);
}

Tier DegradationLadder::active_tier() const noexcept {
  auto tier = static_cast<std::uint8_t>(load_tier_);
  if (!model_available_) {
    tier = std::max(tier, static_cast<std::uint8_t>(Tier::kSurrogate));
  }
  if (stale_) {
    tier = std::max(tier, static_cast<std::uint8_t>(Tier::kCached));
  }
  return static_cast<Tier>(tier);
}

void DegradationLadder::observe_pressure(std::int64_t pressure, Tick now) {
  EXPLORA_EXPECTS(pressure >= 0);
  const std::int64_t sample = pressure * kPressureScale;
  ewma_ += (sample - ewma_) >> config_.ewma_shift;
  step_load_tier(now);
}

void DegradationLadder::step_load_tier(Tick now) {
  const auto t = static_cast<std::size_t>(load_tier_);
  const bool can_demote = load_tier_ != Tier::kCached;
  const bool can_promote = load_tier_ != Tier::kExact;

  if (can_demote && ewma_ >= config_.demote_above[t]) {
    ++demote_run_;
    promote_run_ = 0;
  } else if (can_promote && ewma_ <= config_.promote_below[t]) {
    ++promote_run_;
    demote_run_ = 0;
  } else {
    demote_run_ = 0;
    promote_run_ = 0;
  }

  if (can_demote && demote_run_ >= config_.demote_streak) {
    const Tier before = active_tier();
    load_tier_ = static_cast<Tier>(t + 1);
    demote_run_ = 0;
    promote_run_ = 0;
    ++demotions_;
    emit(before, active_tier(), Trigger::kLoad, now);
  } else if (can_promote && promote_run_ >= config_.promote_streak) {
    const Tier before = active_tier();
    load_tier_ = static_cast<Tier>(t - 1);
    demote_run_ = 0;
    promote_run_ = 0;
    ++promotions_;
    emit(before, active_tier(), Trigger::kLoad, now);
  }
}

void DegradationLadder::record_gap(Tick now) {
  clean_streak_ = 0;
  if (!stale_) {
    const Tier before = active_tier();
    stale_ = true;
    emit(before, active_tier(), Trigger::kStaleGap, now);
  }
}

bool DegradationLadder::record_clean(Tick now) {
  if (!stale_) return false;
  ++clean_streak_;
  if (clean_streak_ < config_.recovery_clean_reports) return false;
  const Tier before = active_tier();
  stale_ = false;
  clean_streak_ = 0;
  emit(before, active_tier(), Trigger::kRecovery, now);
  return true;
}

void DegradationLadder::set_model_available(bool available, Tick now) {
  if (available == model_available_) return;
  const Tier before = active_tier();
  model_available_ = available;
  emit(before, active_tier(), Trigger::kBreaker, now);
}

void DegradationLadder::emit(Tier from, Tier to, Trigger trigger, Tick now) {
  if (from == to || !on_transition_) return;
  Transition transition;
  transition.at = now;
  transition.from = from;
  transition.to = to;
  transition.trigger = trigger;
  on_transition_(transition);
}

// ---------------------------------------------------------------------------
// CircuitBreaker
// ---------------------------------------------------------------------------

void CircuitBreaker::on_tick(Tick now) {
  if (state_ == State::kOpen && now >= open_until_) {
    state_ = State::kHalfOpen;
    half_open_successes_ = 0;
  }
}

void CircuitBreaker::record_success(Tick now) {
  (void)now;
  consecutive_failures_ = 0;
  if (state_ == State::kHalfOpen) {
    ++half_open_successes_;
    if (half_open_successes_ >= config_.successes_to_close) {
      state_ = State::kClosed;
      half_open_successes_ = 0;
    }
  }
}

void CircuitBreaker::record_failure(Tick now) {
  ++consecutive_failures_;
  if (state_ == State::kHalfOpen ||
      (state_ == State::kClosed &&
       consecutive_failures_ >= config_.failure_threshold)) {
    state_ = State::kOpen;
    open_until_ = now + config_.open_ticks;
    half_open_successes_ = 0;
    ++trips_;
  }
}

}  // namespace explora::xai::serving
