#include "xai/tree.hpp"

#include <algorithm>
#include <cmath>
#include <numeric>

#include "common/contracts.hpp"
#include "common/format.hpp"

namespace explora::xai {

namespace {

/// Candidate split: sorted unique midpoints of one feature column.
struct SplitResult {
  bool found = false;
  std::int32_t feature = -1;
  double threshold = 0.0;
  double gain = 0.0;
};

}  // namespace

RegressionTree::RegressionTree() : RegressionTree(Config{}) {}

RegressionTree::RegressionTree(Config config) : config_(config) {
  EXPLORA_EXPECTS(config.max_depth >= 1);
  EXPLORA_EXPECTS(config.min_samples_leaf >= 1);
}

void RegressionTree::fit(const std::vector<Vector>& features,
                         const Vector& targets) {
  EXPLORA_EXPECTS(!features.empty());
  EXPLORA_EXPECTS(features.size() == targets.size());
  nodes_.clear();
  std::vector<std::size_t> rows(features.size());
  std::iota(rows.begin(), rows.end(), 0);
  build(features, targets, rows, 0);
}

std::int32_t RegressionTree::build(const std::vector<Vector>& features,
                                   const Vector& targets,
                                   std::vector<std::size_t>& rows,
                                   std::size_t depth) {
  const double n = static_cast<double>(rows.size());
  double sum = 0.0;
  double sum_sq = 0.0;
  for (std::size_t r : rows) {
    sum += targets[r];
    sum_sq += targets[r] * targets[r];
  }
  const double mean = sum / n;
  const double sse = sum_sq - sum * sum / n;

  const auto node_index = static_cast<std::int32_t>(nodes_.size());
  nodes_.emplace_back();
  nodes_[static_cast<std::size_t>(node_index)].value = mean;

  if (depth >= config_.max_depth ||
      rows.size() < 2 * config_.min_samples_leaf || sse <= config_.min_gain) {
    return node_index;
  }

  SplitResult best;
  const std::size_t num_features = features.front().size();
  std::vector<std::size_t> sorted = rows;
  for (std::size_t f = 0; f < num_features; ++f) {
    std::sort(sorted.begin(), sorted.end(),
              [&](std::size_t a, std::size_t b) {
                return features[a][f] < features[b][f];
              });
    double left_sum = 0.0;
    double left_sq = 0.0;
    for (std::size_t i = 0; i + 1 < sorted.size(); ++i) {
      const double y = targets[sorted[i]];
      left_sum += y;
      left_sq += y * y;
      const double x_now = features[sorted[i]][f];
      const double x_next = features[sorted[i + 1]][f];
      if (x_now == x_next) continue;
      const auto left_n = static_cast<double>(i + 1);
      const double right_n = n - left_n;
      if (left_n < static_cast<double>(config_.min_samples_leaf) ||
          right_n < static_cast<double>(config_.min_samples_leaf)) {
        continue;
      }
      const double right_sum = sum - left_sum;
      const double right_sq = sum_sq - left_sq;
      const double left_sse = left_sq - left_sum * left_sum / left_n;
      const double right_sse = right_sq - right_sum * right_sum / right_n;
      const double gain = sse - left_sse - right_sse;
      if (gain > best.gain + config_.min_gain) {
        best.found = true;
        best.feature = static_cast<std::int32_t>(f);
        best.threshold = (x_now + x_next) / 2.0;
        best.gain = gain;
      }
    }
  }
  if (!best.found) return node_index;

  std::vector<std::size_t> left_rows;
  std::vector<std::size_t> right_rows;
  for (std::size_t r : rows) {
    if (features[r][static_cast<std::size_t>(best.feature)] <=
        best.threshold) {
      left_rows.push_back(r);
    } else {
      right_rows.push_back(r);
    }
  }
  const std::int32_t left = build(features, targets, left_rows, depth + 1);
  const std::int32_t right = build(features, targets, right_rows, depth + 1);
  TreeNode& node = nodes_[static_cast<std::size_t>(node_index)];
  node.feature = best.feature;
  node.threshold = best.threshold;
  node.left = left;
  node.right = right;
  return node_index;
}

double RegressionTree::predict(const Vector& x) const {
  EXPLORA_EXPECTS(!nodes_.empty());
  const TreeNode* node = &nodes_.front();
  while (node->feature >= 0) {
    node = x[static_cast<std::size_t>(node->feature)] <= node->threshold
               ? &nodes_[static_cast<std::size_t>(node->left)]
               : &nodes_[static_cast<std::size_t>(node->right)];
  }
  return node->value;
}

DecisionTreeClassifier::DecisionTreeClassifier()
    : DecisionTreeClassifier(Config{}) {}

DecisionTreeClassifier::DecisionTreeClassifier(Config config)
    : config_(config) {
  EXPLORA_EXPECTS(config.max_depth >= 1);
  EXPLORA_EXPECTS(config.min_samples_leaf >= 1);
}

double DecisionTreeClassifier::impurity(const std::vector<double>& counts,
                                        double total) const {
  if (total <= 0.0) return 0.0;
  double result = 0.0;
  if (config_.criterion == Criterion::kGini) {
    double sum_sq = 0.0;
    for (double c : counts) sum_sq += (c / total) * (c / total);
    result = 1.0 - sum_sq;
  } else {
    for (double c : counts) {
      if (c > 0.0) {
        const double p = c / total;
        result -= p * std::log2(p);
      }
    }
  }
  return result;
}

void DecisionTreeClassifier::fit(const Dataset& data,
                                 std::size_t num_classes) {
  EXPLORA_EXPECTS(data.size() > 0);
  EXPLORA_EXPECTS(data.features.size() == data.labels.size());
  EXPLORA_EXPECTS(num_classes >= 2);
  for (std::size_t label : data.labels) {
    EXPLORA_EXPECTS(label < num_classes);
  }
  num_classes_ = num_classes;
  num_features_ = data.features.front().size();
  nodes_.clear();
  importances_.assign(num_features_, 0.0);
  std::vector<std::size_t> rows(data.size());
  std::iota(rows.begin(), rows.end(), 0);
  build(data, rows, 0);
  // Normalize importances to sum to one (when any split was made).
  const double total =
      std::accumulate(importances_.begin(), importances_.end(), 0.0);
  if (total > 0.0) {
    for (double& imp : importances_) imp /= total;
  }
}

std::int32_t DecisionTreeClassifier::build(const Dataset& data,
                                           std::vector<std::size_t>& rows,
                                           std::size_t depth) {
  const double n = static_cast<double>(rows.size());
  std::vector<double> counts(num_classes_, 0.0);
  for (std::size_t r : rows) counts[data.labels[r]] += 1.0;
  const double node_impurity = impurity(counts, n);

  const auto node_index = static_cast<std::int32_t>(nodes_.size());
  nodes_.emplace_back();
  {
    TreeNode& node = nodes_.back();
    node.class_counts = counts;
    node.value = static_cast<double>(static_cast<std::size_t>(
        std::distance(counts.begin(),
                      std::max_element(counts.begin(), counts.end()))));
  }

  if (depth >= config_.max_depth ||
      rows.size() < 2 * config_.min_samples_leaf ||
      node_impurity <= config_.min_gain) {
    return node_index;
  }

  SplitResult best;
  std::vector<std::size_t> sorted = rows;
  for (std::size_t f = 0; f < num_features_; ++f) {
    std::sort(sorted.begin(), sorted.end(),
              [&](std::size_t a, std::size_t b) {
                return data.features[a][f] < data.features[b][f];
              });
    std::vector<double> left_counts(num_classes_, 0.0);
    for (std::size_t i = 0; i + 1 < sorted.size(); ++i) {
      left_counts[data.labels[sorted[i]]] += 1.0;
      const double x_now = data.features[sorted[i]][f];
      const double x_next = data.features[sorted[i + 1]][f];
      if (x_now == x_next) continue;
      const auto left_n = static_cast<double>(i + 1);
      const double right_n = n - left_n;
      if (left_n < static_cast<double>(config_.min_samples_leaf) ||
          right_n < static_cast<double>(config_.min_samples_leaf)) {
        continue;
      }
      std::vector<double> right_counts(num_classes_, 0.0);
      for (std::size_t c = 0; c < num_classes_; ++c) {
        right_counts[c] = counts[c] - left_counts[c];
      }
      const double gain =
          node_impurity - (left_n / n) * impurity(left_counts, left_n) -
          (right_n / n) * impurity(right_counts, right_n);
      if (gain > best.gain + config_.min_gain) {
        best.found = true;
        best.feature = static_cast<std::int32_t>(f);
        best.threshold = (x_now + x_next) / 2.0;
        best.gain = gain;
      }
    }
  }
  if (!best.found) return node_index;

  importances_[static_cast<std::size_t>(best.feature)] += best.gain * n;

  std::vector<std::size_t> left_rows;
  std::vector<std::size_t> right_rows;
  for (std::size_t r : rows) {
    if (data.features[r][static_cast<std::size_t>(best.feature)] <=
        best.threshold) {
      left_rows.push_back(r);
    } else {
      right_rows.push_back(r);
    }
  }
  const std::int32_t left = build(data, left_rows, depth + 1);
  const std::int32_t right = build(data, right_rows, depth + 1);
  TreeNode& node = nodes_[static_cast<std::size_t>(node_index)];
  node.feature = best.feature;
  node.threshold = best.threshold;
  node.left = left;
  node.right = right;
  return node_index;
}

const TreeNode& DecisionTreeClassifier::walk(const Vector& x) const {
  EXPLORA_EXPECTS(!nodes_.empty());
  EXPLORA_EXPECTS(x.size() == num_features_);
  const TreeNode* node = &nodes_.front();
  while (node->feature >= 0) {
    node = x[static_cast<std::size_t>(node->feature)] <= node->threshold
               ? &nodes_[static_cast<std::size_t>(node->left)]
               : &nodes_[static_cast<std::size_t>(node->right)];
  }
  return *node;
}

std::size_t DecisionTreeClassifier::predict(const Vector& x) const {
  return static_cast<std::size_t>(walk(x).value);
}

Vector DecisionTreeClassifier::predict_proba(const Vector& x) const {
  const TreeNode& leaf = walk(x);
  const double total = std::accumulate(leaf.class_counts.begin(),
                                       leaf.class_counts.end(), 0.0);
  Vector probs(num_classes_, 0.0);
  if (total > 0.0) {
    for (std::size_t c = 0; c < num_classes_; ++c) {
      probs[c] = leaf.class_counts[c] / total;
    }
  }
  return probs;
}

double DecisionTreeClassifier::accuracy(const Dataset& data) const {
  EXPLORA_EXPECTS(data.size() > 0);
  std::size_t correct = 0;
  for (std::size_t i = 0; i < data.size(); ++i) {
    if (predict(data.features[i]) == data.labels[i]) ++correct;
  }
  return static_cast<double>(correct) / static_cast<double>(data.size());
}

Vector DecisionTreeClassifier::feature_importances() const {
  return importances_;
}

Vector DecisionTreeClassifier::path_attribution(const Vector& x) const {
  EXPLORA_EXPECTS(!nodes_.empty());
  EXPLORA_EXPECTS(x.size() == num_features_);
  Vector attribution(num_features_, 0.0);
  const TreeNode* node = &nodes_.front();
  double total = 0.0;
  while (node->feature >= 0) {
    const auto f = static_cast<std::size_t>(node->feature);
    const bool unseen =
        attribution[f] == 0.0;  // det-ok: float-eq (sentinel we wrote)
    if (unseen && importances_[f] > 0.0) {
      attribution[f] = importances_[f];
      total += importances_[f];
    }
    node = x[f] <= node->threshold
               ? &nodes_[static_cast<std::size_t>(node->left)]
               : &nodes_[static_cast<std::size_t>(node->right)];
  }
  if (total > 0.0) {
    for (double& a : attribution) a /= total;
  }
  return attribution;
}

std::size_t DecisionTreeClassifier::depth() const noexcept {
  // Iterative depth computation over the index-linked nodes.
  if (nodes_.empty()) return 0;
  std::vector<std::pair<std::int32_t, std::size_t>> stack{{0, 1}};
  std::size_t max_depth = 0;
  while (!stack.empty()) {
    const auto [index, depth] = stack.back();
    stack.pop_back();
    max_depth = std::max(max_depth, depth);
    const TreeNode& node = nodes_[static_cast<std::size_t>(index)];
    if (node.feature >= 0) {
      stack.push_back({node.left, depth + 1});
      stack.push_back({node.right, depth + 1});
    }
  }
  return max_depth;
}

std::string DecisionTreeClassifier::to_rules(
    const std::vector<std::string>& feature_names,
    const std::vector<std::string>& class_names) const {
  EXPLORA_EXPECTS(feature_names.size() == num_features_);
  EXPLORA_EXPECTS(class_names.size() == num_classes_);
  std::string out;
  std::function<void(std::int32_t, std::size_t)> render =
      [&](std::int32_t index, std::size_t indent) {
        const TreeNode& node = nodes_[static_cast<std::size_t>(index)];
        const std::string pad(indent * 2, ' ');
        if (node.feature < 0) {
          const double total = std::accumulate(node.class_counts.begin(),
                                               node.class_counts.end(), 0.0);
          const auto cls = static_cast<std::size_t>(node.value);
          out += common::format("{}-> {} ({} samples, {:.0f}% purity)\n", pad,
                                class_names[cls], total,
                                total > 0.0
                                    ? node.class_counts[cls] / total * 100.0
                                    : 0.0);
          return;
        }
        out += common::format(
            "{}if {} <= {:.4f}:\n", pad,
            feature_names[static_cast<std::size_t>(node.feature)],
            node.threshold);
        render(node.left, indent + 1);
        out += common::format(
            "{}else:  # {} > {:.4f}\n", pad,
            feature_names[static_cast<std::size_t>(node.feature)],
            node.threshold);
        render(node.right, indent + 1);
      };
  render(0, 0);
  return out;
}

std::vector<std::string> DecisionTreeClassifier::decision_paths(
    const std::vector<std::string>& feature_names,
    const std::vector<std::string>& class_names) const {
  EXPLORA_EXPECTS(feature_names.size() == num_features_);
  EXPLORA_EXPECTS(class_names.size() == num_classes_);
  std::vector<std::string> paths;
  std::function<void(std::int32_t, std::string)> visit =
      [&](std::int32_t index, std::string prefix) {
        const TreeNode& node = nodes_[static_cast<std::size_t>(index)];
        if (node.feature < 0) {
          const auto cls = static_cast<std::size_t>(node.value);
          paths.push_back(prefix.empty()
                              ? common::format("always -> {}",
                                               class_names[cls])
                              : common::format("{} -> {}", prefix,
                                               class_names[cls]));
          return;
        }
        const std::string& name =
            feature_names[static_cast<std::size_t>(node.feature)];
        const std::string left_cond =
            common::format("{} <= {:.4f}", name, node.threshold);
        const std::string right_cond =
            common::format("{} > {:.4f}", name, node.threshold);
        visit(node.left,
              prefix.empty() ? left_cond : prefix + " AND " + left_cond);
        visit(node.right,
              prefix.empty() ? right_cond : prefix + " AND " + right_cond);
      };
  visit(0, "");
  return paths;
}

}  // namespace explora::xai
