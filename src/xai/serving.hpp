// Overload-robust explanation serving substrate (DESIGN.md §12): the
// deterministic building blocks the explanation-as-a-service layer
// (explora/explain_service) composes in front of the explainers.
//
//   - BoundedRequestQueue: a fixed-capacity lock-free MPMC ring (Vyukov
//     sequence-number scheme). Admission is try_push — it either claims a
//     pre-sized slot or reports "full"; nothing ever grows, blocks or
//     locks, so the enqueue path can sit on the realtime tier of the
//     hot-path analyzer. The *_blocking convenience variants spin and are
//     for stress drivers only — the analyzer's sink table flags them in
//     annotated code (tools/lint_hotpath.py "block-queue-blocking").
//   - DegradationLadder: one hysteresis state machine over the serving
//     tiers exact → sampled → surrogate → cached, driven by an integer
//     fixed-point pressure EWMA, unified with the staleness watchdog
//     (record_gap/record_clean) and the circuit breaker
//     (set_model_available) so every consumer agrees on ONE active tier.
//   - CircuitBreaker: tick-clocked closed → open → half-open protection
//     of the model-eval path; consecutive eval failures/timeouts trip it,
//     tick-based probes close it.
//
// Determinism contract: every clock in this file is a simulation tick
// (std::int64_t) supplied by the caller, every threshold is an integer,
// and nothing here consults wall time or unseeded randomness — two runs
// that feed the same tick/pressure/outcome sequence traverse exactly the
// same states, on any machine and for any EXPLORA_THREADS.
#pragma once

#include <array>
#include <atomic>
#include <cstdint>
#include <functional>
#include <limits>
#include <memory>
#include <optional>
#include <span>
#include <string_view>
#include <vector>

#include "common/analysis_annotations.hpp"
#include "common/contracts.hpp"
#include "common/interleave.hpp"

namespace explora::xai::serving {

/// Serving clock: an abstract simulation tick (the gNB TTI in closed-loop
/// deployments, a bench-defined step in bench_serving). Deliberately not
/// netsim::Tick — xai sits below netsim in the module DAG.
using Tick = std::int64_t;

// ---------------------------------------------------------------------------
// Tiers and shed reasons
// ---------------------------------------------------------------------------

/// The degradation ladder, cheapest last. Order is meaningful: demotion
/// moves to a strictly higher enum value, and per-tier cost estimates are
/// strictly decreasing along it.
enum class Tier : std::uint8_t {
  kExact = 0,      ///< exact KernelSHAP (2^k coalitions)
  kSampled = 1,    ///< sampled SHAP (budgeted permutations)
  kSurrogate = 2,  ///< distilled-tree surrogate attribution
  kCached = 3,     ///< last-good attribution, no fresh computation
};
inline constexpr std::size_t kNumTiers = 4;

[[nodiscard]] std::string_view to_string(Tier tier) noexcept;

/// Why a request was refused (at admission) or shed (at dispatch) without
/// any explanation work being done.
enum class ShedReason : std::uint8_t {
  kNone = 0,               ///< not shed — the request was served
  kQueueFull = 1,          ///< ring at capacity
  kInFlightBudget = 2,     ///< queued + executing budget exceeded
  kDeadlineInfeasible = 3, ///< no tier's worst-case cost fits the budget
  kNoCachedResult = 4,     ///< demoted to kCached but nothing cached yet
};

[[nodiscard]] std::string_view to_string(ShedReason reason) noexcept;

// ---------------------------------------------------------------------------
// Bounded request queue
// ---------------------------------------------------------------------------

/// One queued explanation request. The feature vector lives in a slot
/// pre-sized at queue construction, so moving a request through the ring
/// never allocates; `context` is an opaque fixed-size payload the service
/// layer uses to rebind the model (e.g. the chosen action's head indices).
struct Request {
  std::uint64_t id = 0;
  std::uint32_t output_index = 0;
  Tick submitted = 0;
  Tick deadline = 0;  ///< absolute tick the result must be delivered by
  std::array<std::uint32_t, 8> context{};
  std::vector<double> x;
};

/// Fixed-capacity lock-free MPMC ring buffer (Vyukov sequence scheme).
/// Capacity is rounded up to a power of two; every slot's feature vector
/// is sized once at construction. try_push/try_pop are wait-free in the
/// uncontended case and never allocate, lock or block — the admission
/// path of the serving layer is built on exactly these two calls.
///
/// depth()/high_water() are *approximate snapshots*: each reads the two
/// positions with independent relaxed loads, so under concurrent pushes
/// and pops the pair may come from different instants and the raw
/// difference can momentarily under- or overflow the true occupancy.
/// Both are therefore clamped into [0, capacity] — a caller can never
/// observe an impossible depth — but within that range the value is
/// best-effort, not linearizable. They are exact under single-threaded
/// use (the deterministic driver, which is what feeds telemetry and the
/// load ladder).
class BoundedRequestQueue {
 public:
  /// @param capacity requested depth bound (rounded up to a power of two).
  /// @param feature_dim dimension every pushed feature vector must have.
  BoundedRequestQueue(std::size_t capacity, std::size_t feature_dim);

  BoundedRequestQueue(const BoundedRequestQueue&) = delete;
  BoundedRequestQueue& operator=(const BoundedRequestQueue&) = delete;

  /// Admission: claims a slot and copies the request into it. Returns
  /// false when the ring is full. Never allocates, locks or blocks.
  EXPLORA_REALTIME bool try_push(std::uint64_t id, std::uint32_t output_index,
                                 std::span<const std::uint32_t> context,
                                 Tick submitted, Tick deadline,
                                 std::span<const double> x) noexcept;

  /// Dequeue into caller-owned storage. `out.x` must already have
  /// feature_dim() elements (pre-size it once). Returns false when empty.
  EXPLORA_REALTIME bool try_pop(Request& out) noexcept;

  /// Spinning convenience variants for stress drivers (the tsan enqueue
  /// leg). NOT for serving paths: they busy-wait until space/data shows
  /// up, which is exactly the unbounded stall admission control exists to
  /// prevent — the hot-path analyzer's sink table flags any use of them
  /// inside annotated code.
  void push_blocking(std::uint64_t id, std::uint32_t output_index,
                     std::span<const std::uint32_t> context, Tick submitted,
                     Tick deadline, std::span<const double> x) noexcept;
  bool pop_blocking(Request& out, std::size_t spin_limit) noexcept;

  [[nodiscard]] std::size_t capacity() const noexcept { return capacity_; }
  [[nodiscard]] std::size_t feature_dim() const noexcept {
    return feature_dim_;
  }
  /// Approximate occupancy snapshot, clamped into [0, capacity] (see the
  /// class comment: the two relaxed loads are not taken atomically, so a
  /// pop landing between them could otherwise underflow head - tail into
  /// a huge bogus value).
  [[nodiscard]] std::size_t depth() const noexcept {
    const std::size_t head = enqueue_pos_.load(std::memory_order_relaxed);
    const std::size_t tail = dequeue_pos_.load(std::memory_order_relaxed);
    const std::size_t raw = head >= tail ? head - tail : 0;
    return raw < capacity_ ? raw : capacity_;
  }
  /// Deepest depth() ever observed right after a successful push
  /// (approximate under concurrency, same caveat as depth()).
  [[nodiscard]] std::size_t high_water() const noexcept {
    return high_water_.load(std::memory_order_relaxed);
  }

 private:
  struct Slot {
    common::interleave::Atomic<std::size_t> sequence{0};
    Request request;
  };

  std::size_t capacity_;
  std::size_t mask_;
  std::size_t feature_dim_;
  std::unique_ptr<Slot[]> slots_;
  // Pairing discipline (tools/lint_atomics.py): the positions are pure
  // claim tickets — the slot sequence numbers carry the release/acquire
  // publication edges — and the high-water mark is a monotone CAS fold.
  // atomics-ok: claim-ticket (slot claim; sequence release/acquire publishes)
  alignas(64) common::interleave::Atomic<std::size_t> enqueue_pos_{0};
  // atomics-ok: claim-ticket (slot claim; sequence release/acquire publishes)
  alignas(64) common::interleave::Atomic<std::size_t> dequeue_pos_{0};
  // atomics-ok: monotone-cas (telemetry watermark, raise-only)
  common::interleave::Atomic<std::size_t> high_water_{0};
};

// ---------------------------------------------------------------------------
// Degradation ladder
// ---------------------------------------------------------------------------

/// Fixed-point scale of the pressure EWMA (x16: four fractional bits).
inline constexpr std::int64_t kPressureScale = 16;

struct LadderConfig {
  /// While at tier t, a pressure EWMA at or above demote_above[t] (scaled
  /// by kPressureScale) for demote_streak consecutive observations demotes
  /// to t+1. The last entry is never reached (kCached cannot demote).
  std::array<std::int64_t, kNumTiers> demote_above{
      6 * kPressureScale, 12 * kPressureScale, 24 * kPressureScale,
      std::numeric_limits<std::int64_t>::max()};
  /// While at tier t, an EWMA at or below promote_below[t] for
  /// promote_streak observations promotes to t-1. promote_below[t] <
  /// demote_above[t-1] keeps a hysteresis band between the two edges so a
  /// tier cannot oscillate on a load level sitting between them. The
  /// first entry is unused (kExact cannot promote).
  std::array<std::int64_t, kNumTiers> promote_below{
      0, 2 * kPressureScale, 5 * kPressureScale, 10 * kPressureScale};
  /// Consecutive out-of-band observations required to move (hysteresis in
  /// time, on top of the threshold band): a single-sample spike never
  /// flips the tier while demote_streak > 1.
  int demote_streak = 2;
  int promote_streak = 4;
  /// EWMA smoothing: ewma += (sample - ewma) >> ewma_shift. Integer
  /// arithmetic only — bit-identical across platforms.
  int ewma_shift = 2;
  /// Consecutive clean (in-sequence) telemetry reports required to leave
  /// staleness; mirrors the PR-3 watchdog's recovery_reports.
  std::size_t recovery_clean_reports = 10;
};

/// The single degradation state machine shared by the staleness watchdog
/// (PR 3) and the serving tier ladder: one active tier, three inputs.
///
///   - load axis: observe_pressure() maintains the EWMA and walks the
///     hysteresis tier (load_tier()) one rung at a time;
///   - staleness axis: record_gap()/record_clean() implement the KPM
///     watchdog quarantine — while stale() the active tier is pinned to
///     kCached because every fresher tier would attribute a gapped
///     snapshot;
///   - breaker axis: set_model_available(false) floors the active tier at
///     kSurrogate (the model-eval path is fused off).
///
/// active_tier() is the max (cheapest) of the three axes, so recovery
/// clean-streak accounting and serving-tier hysteresis can never disagree
/// about the tier actually served — there is only one tier.
class DegradationLadder {
 public:
  enum class Trigger : std::uint8_t {
    kLoad = 0,      ///< pressure EWMA crossed a hysteresis edge
    kStaleGap = 1,  ///< telemetry gap detected (watchdog)
    kRecovery = 2,  ///< clean-streak target reached
    kBreaker = 3,   ///< model-eval circuit breaker opened/closed
  };

  struct Transition {
    Tick at = 0;
    Tier from = Tier::kExact;
    Tier to = Tier::kExact;
    Trigger trigger = Trigger::kLoad;
  };

  /// Observer for active-tier changes (the xApp archives these as
  /// DegradationRecords). Fired only when the *active* tier changes.
  using TransitionHook = std::function<void(const Transition&)>;

  DegradationLadder();
  explicit DegradationLadder(LadderConfig config);

  void set_transition_hook(TransitionHook hook) {
    on_transition_ = std::move(hook);
  }

  /// Feeds one load observation (queue depth + busy workers) at `now`.
  void observe_pressure(std::int64_t pressure, Tick now);

  /// Staleness watchdog inputs. record_clean returns true exactly when
  /// this report completes the recovery streak (stale just cleared).
  void record_gap(Tick now);
  [[nodiscard]] bool record_clean(Tick now);

  /// Breaker input: false pins the active tier at kSurrogate or below.
  void set_model_available(bool available, Tick now);

  [[nodiscard]] bool stale() const noexcept { return stale_; }
  [[nodiscard]] std::size_t clean_streak() const noexcept {
    return clean_streak_;
  }
  [[nodiscard]] bool model_available() const noexcept {
    return model_available_;
  }
  /// The hysteresis (load-only) tier.
  [[nodiscard]] Tier load_tier() const noexcept { return load_tier_; }
  /// The one true tier: max of the load tier, the staleness floor
  /// (kCached) and the breaker floor (kSurrogate).
  [[nodiscard]] Tier active_tier() const noexcept;
  /// Pressure EWMA in kPressureScale fixed point (diagnostics/tests).
  [[nodiscard]] std::int64_t pressure_ewma() const noexcept { return ewma_; }

  [[nodiscard]] std::uint64_t demotions() const noexcept {
    return demotions_;
  }
  [[nodiscard]] std::uint64_t promotions() const noexcept {
    return promotions_;
  }
  [[nodiscard]] const LadderConfig& config() const noexcept {
    return config_;
  }

 private:
  void step_load_tier(Tick now);
  void emit(Tier from, Tier to, Trigger trigger, Tick now);

  LadderConfig config_;
  std::int64_t ewma_ = 0;
  int demote_run_ = 0;
  int promote_run_ = 0;
  Tier load_tier_ = Tier::kExact;
  bool stale_ = false;
  std::size_t clean_streak_ = 0;
  bool model_available_ = true;
  std::uint64_t demotions_ = 0;
  std::uint64_t promotions_ = 0;
  TransitionHook on_transition_;
};

[[nodiscard]] std::string_view to_string(DegradationLadder::Trigger trigger)
    noexcept;

// ---------------------------------------------------------------------------
// Circuit breaker
// ---------------------------------------------------------------------------

struct BreakerConfig {
  /// Consecutive model-eval failures (contract failure or timeout) that
  /// trip the breaker open.
  int failure_threshold = 3;
  /// Ticks the breaker stays open before admitting half-open probes.
  Tick open_ticks = 32;
  /// Consecutive half-open probe successes required to close again.
  int successes_to_close = 2;
  /// A model eval whose (simulated) cost exceeds this is a timeout
  /// failure. 0 disables timeout detection.
  Tick eval_timeout_ticks = 0;
};

/// Tick-clocked circuit breaker on the model-eval path. Deterministic by
/// construction: state changes happen only in record_success /
/// record_failure / on_tick, all driven by the caller's tick stream.
class CircuitBreaker {
 public:
  enum class State : std::uint8_t { kClosed = 0, kOpen = 1, kHalfOpen = 2 };

  CircuitBreaker() = default;
  explicit CircuitBreaker(BreakerConfig config) : config_(config) {}

  /// Advances open → half-open once the open window has elapsed.
  void on_tick(Tick now);
  /// True when a model eval may be attempted (closed, or probing).
  [[nodiscard]] bool allow_eval() const noexcept {
    return state_ != State::kOpen;
  }
  void record_success(Tick now);
  void record_failure(Tick now);

  [[nodiscard]] State state() const noexcept { return state_; }
  [[nodiscard]] std::uint64_t trips() const noexcept { return trips_; }
  [[nodiscard]] int consecutive_failures() const noexcept {
    return consecutive_failures_;
  }
  [[nodiscard]] const BreakerConfig& config() const noexcept {
    return config_;
  }

 private:
  BreakerConfig config_{};
  State state_ = State::kClosed;
  int consecutive_failures_ = 0;
  int half_open_successes_ = 0;
  Tick open_until_ = 0;
  std::uint64_t trips_ = 0;
};

[[nodiscard]] std::string_view to_string(CircuitBreaker::State state) noexcept;

// ---------------------------------------------------------------------------
// Cost model
// ---------------------------------------------------------------------------

/// Worst-case per-tier cost estimates in ticks, strictly decreasing along
/// the ladder. cheapest_tier_fitting walks down from `floor` to the first
/// tier whose estimate fits the remaining budget (deadline-aware shedding
/// decides *before* any work is done).
struct CostModel {
  std::array<Tick, kNumTiers> worst_case{128, 32, 4, 1};

  [[nodiscard]] Tick cost(Tier tier) const noexcept {
    return worst_case[static_cast<std::size_t>(tier)];
  }
  /// First tier at or below `floor` whose worst case fits `budget`;
  /// nullopt-like sentinel: returns kNumTiers (cast) when nothing fits.
  [[nodiscard]] std::optional<Tier> cheapest_tier_fitting(
      Tick budget, Tier floor) const noexcept {
    for (std::size_t t = static_cast<std::size_t>(floor); t < kNumTiers;
         ++t) {
      if (worst_case[t] <= budget) return static_cast<Tier>(t);
    }
    return std::nullopt;
  }
};

}  // namespace explora::xai::serving
