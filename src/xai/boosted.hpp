// Gradient-boosted trees for multiclass classification — the XGBoost-style
// model the paper trains on (latent features -> agent action) to obtain the
// (poor) classification accuracies of Table 1.
//
// Implementation: softmax cross-entropy objective, one regression tree per
// class per round fitted to the negative gradient (residual p_k - y_k),
// with shrinkage. Exact greedy splits via the RegressionTree weak learner.
#pragma once

#include <cstdint>
#include <vector>

#include "xai/tree.hpp"

namespace explora::xai {

class GradientBoostedClassifier {
 public:
  struct Config {
    std::size_t rounds = 40;              ///< boosting iterations
    double learning_rate = 0.3;           ///< shrinkage
    RegressionTree::Config tree{};        ///< weak-learner shape
  };

  GradientBoostedClassifier();
  explicit GradientBoostedClassifier(Config config);

  void fit(const Dataset& data, std::size_t num_classes);

  /// Raw additive scores (log-odds) per class.
  [[nodiscard]] Vector decision_function(const Vector& x) const;
  /// Softmax class probabilities.
  [[nodiscard]] Vector predict_proba(const Vector& x) const;
  [[nodiscard]] std::size_t predict(const Vector& x) const;
  [[nodiscard]] double accuracy(const Dataset& data) const;

  [[nodiscard]] std::size_t num_classes() const noexcept {
    return num_classes_;
  }
  [[nodiscard]] std::size_t rounds_fitted() const noexcept {
    return ensemble_.size();
  }

 private:
  Config config_;
  std::size_t num_classes_ = 0;
  /// ensemble_[round][class]
  std::vector<std::vector<RegressionTree>> ensemble_;
  Vector base_scores_;  ///< class-prior log-odds
};

}  // namespace explora::xai
