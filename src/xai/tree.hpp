// CART decision trees built from scratch:
//   - RegressionTree: variance-reduction splits (the weak learner of the
//     gradient-boosted ensemble, and usable standalone),
//   - DecisionTreeClassifier: Gini/entropy splits with rule extraction —
//     the tool EXPLORA uses to distill knowledge from the attributed graph
//     (paper §4.3, Fig. 8/14) and the baseline that fails when applied
//     directly to the agent (Table 1).
#pragma once

#include <cstdint>
#include <functional>
#include <string>
#include <vector>

#include "ml/matrix.hpp"

namespace explora::xai {

using ml::Vector;

/// Training data: row-major feature matrix plus a label per row.
struct Dataset {
  std::vector<Vector> features;
  std::vector<std::size_t> labels;  ///< class ids in [0, num_classes)

  [[nodiscard]] std::size_t size() const noexcept { return features.size(); }
};

/// Internal tree node (index-linked, stored contiguously).
struct TreeNode {
  std::int32_t feature = -1;    ///< -1 for leaves
  double threshold = 0.0;       ///< go left when x[feature] <= threshold
  std::int32_t left = -1;
  std::int32_t right = -1;
  double value = 0.0;           ///< regression output / majority class
  std::vector<double> class_counts;  ///< classifier leaves only
};

/// Regression tree minimizing squared error.
class RegressionTree {
 public:
  struct Config {
    std::size_t max_depth = 4;
    std::size_t min_samples_leaf = 2;
    double min_gain = 1e-9;
  };

  RegressionTree();
  explicit RegressionTree(Config config);

  /// Fits on features/targets (row-wise aligned).
  void fit(const std::vector<Vector>& features, const Vector& targets);
  [[nodiscard]] double predict(const Vector& x) const;
  [[nodiscard]] std::size_t node_count() const noexcept {
    return nodes_.size();
  }

 private:
  std::int32_t build(const std::vector<Vector>& features,
                     const Vector& targets, std::vector<std::size_t>& rows,
                     std::size_t depth);

  Config config_;
  std::vector<TreeNode> nodes_;
};

/// Multiclass CART classifier.
class DecisionTreeClassifier {
 public:
  enum class Criterion : std::uint8_t { kGini = 0, kEntropy = 1 };

  struct Config {
    std::size_t max_depth = 4;
    std::size_t min_samples_leaf = 2;
    double min_gain = 1e-6;
    Criterion criterion = Criterion::kGini;
  };

  DecisionTreeClassifier();
  explicit DecisionTreeClassifier(Config config);

  /// @param num_classes label alphabet size (labels must be < num_classes).
  void fit(const Dataset& data, std::size_t num_classes);

  [[nodiscard]] std::size_t predict(const Vector& x) const;
  /// Class-probability vector at the reached leaf.
  [[nodiscard]] Vector predict_proba(const Vector& x) const;
  /// Fraction of rows classified correctly.
  [[nodiscard]] double accuracy(const Dataset& data) const;

  /// Total impurity decrease contributed by each feature (normalized).
  [[nodiscard]] Vector feature_importances() const;

  /// Per-feature attribution for the single root-to-leaf path `x` takes:
  /// the tree's impurity-decrease importances masked to the features
  /// actually tested on that path and renormalized to sum to 1. This is
  /// the degradation ladder's surrogate tier — a cheap, deterministic
  /// stand-in for SHAP when the serving layer has shed the model-eval
  /// budget (DESIGN.md §12). All-zero only if the tree is a single leaf.
  [[nodiscard]] Vector path_attribution(const Vector& x) const;

  /// Renders the tree as indented if/else rules using the given feature and
  /// class names (the paper's Fig. 8/14 visual form).
  [[nodiscard]] std::string to_rules(
      const std::vector<std::string>& feature_names,
      const std::vector<std::string>& class_names) const;

  /// Root-to-leaf decision paths, one string per leaf, annotated with the
  /// predicted class — the traversal the paper uses to generate knowledge.
  [[nodiscard]] std::vector<std::string> decision_paths(
      const std::vector<std::string>& feature_names,
      const std::vector<std::string>& class_names) const;

  [[nodiscard]] std::size_t node_count() const noexcept {
    return nodes_.size();
  }
  [[nodiscard]] std::size_t depth() const noexcept;
  [[nodiscard]] std::size_t num_classes() const noexcept {
    return num_classes_;
  }

 private:
  std::int32_t build(const Dataset& data, std::vector<std::size_t>& rows,
                     std::size_t depth);
  [[nodiscard]] double impurity(const std::vector<double>& counts,
                                double total) const;
  [[nodiscard]] const TreeNode& walk(const Vector& x) const;

  Config config_;
  std::size_t num_classes_ = 0;
  std::size_t num_features_ = 0;
  std::vector<TreeNode> nodes_;
  Vector importances_;
};

}  // namespace explora::xai
