// LIME (Local Interpretable Model-agnostic Explanations, Ribeiro et al.) —
// the second model-agnostic baseline the paper names in §2.3 next to SHAP.
// Explains one prediction by sampling perturbations around the input,
// weighting them by a locality kernel, and fitting a weighted ridge
// regression whose coefficients are the local feature attributions.
#pragma once

#include <cstdint>

#include "common/rng.hpp"
#include "xai/shap.hpp"  // ModelFn / MatrixModelFn

namespace explora::xai {

class LimeExplainer {
 public:
  struct Config {
    std::size_t samples = 500;       ///< perturbations per explanation
    double perturbation_sigma = 0.3; ///< Gaussian noise scale per feature
    /// Locality kernel: exp(-d^2 / width^2) over Euclidean distance.
    double kernel_width = 0.75;
    double ridge_lambda = 1e-3;      ///< L2 regularization of the surrogate
    std::uint64_t seed = 29;
  };

  LimeExplainer(ModelFn model, Config config);
  explicit LimeExplainer(ModelFn model);
  /// Matrix-batched variant: all perturbation probes of one explanation
  /// reach the model as a single matrix (e.g. xai::batch_model(mlp) or
  /// xai::head_probability_model) — one fused GEMM sweep per layer.
  LimeExplainer(MatrixModelFn model, Config config);
  explicit LimeExplainer(MatrixModelFn model);

  /// Local attributions (surrogate slope per feature) of output
  /// `output_index` at `x`. The surrogate also has an intercept, exposed
  /// via last_intercept().
  [[nodiscard]] Vector explain(const Vector& x, std::size_t output_index);

  /// Intercept of the most recent surrogate fit.
  [[nodiscard]] double last_intercept() const noexcept { return intercept_; }
  /// Weighted R^2 of the most recent surrogate fit (explanation fidelity).
  [[nodiscard]] double last_fit_r2() const noexcept { return r2_; }
  /// Model evaluations performed so far (cost accounting).
  [[nodiscard]] std::uint64_t model_evaluations() const noexcept {
    return evaluations_;
  }

 private:
  MatrixModelFn model_;
  Config config_;
  common::Rng rng_;
  double intercept_ = 0.0;
  double r2_ = 0.0;
  std::uint64_t evaluations_ = 0;
};

/// Solves the symmetric positive-definite system A x = b in place via
/// Gaussian elimination with partial pivoting (small dense systems).
/// Exposed for testing.
[[nodiscard]] Vector solve_linear_system(std::vector<Vector> a, Vector b);

}  // namespace explora::xai
