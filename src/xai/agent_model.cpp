#include "xai/agent_model.hpp"

#include "common/contracts.hpp"

namespace explora::xai {

MatrixModelFn head_probability_model(const ml::PolicyAgent& agent,
                                     const ml::AgentAction& chosen) {
  return [&agent, chosen](const ml::Matrix& probes) {
    const auto per_row = agent.head_distributions(probes);
    ml::Matrix out(probes.rows(), ml::kNumHeads);
    for (std::size_t r = 0; r < per_row.size(); ++r) {
      const auto& heads = per_row[r];
      EXPLORA_EXPECTS(heads.size() == ml::kNumHeads);
      EXPLORA_EXPECTS(chosen.prb_choice < heads[0].size());
      out(r, 0) = heads[0][chosen.prb_choice];
      for (std::size_t s = 0; s < netsim::kNumSlices; ++s) {
        EXPLORA_EXPECTS(chosen.sched_choice[s] < heads[1 + s].size());
        out(r, 1 + s) = heads[1 + s][chosen.sched_choice[s]];
      }
    }
    return out;
  };
}

}  // namespace explora::xai
