#include "oran/data_repository.hpp"

#include "common/contracts.hpp"

namespace explora::oran {

DataRepository::DataRepository(std::size_t history_capacity)
    : capacity_(history_capacity) {
  EXPLORA_EXPECTS(history_capacity > 0);
}

void DataRepository::on_message(const RicMessage& message) {
  if (message.type != MessageType::kKpmIndication) return;
  reports_.push_back(message.kpm().report);
  while (reports_.size() > capacity_) reports_.pop_front();
}

std::vector<netsim::KpiReport> DataRepository::latest_reports(
    std::size_t count) const {
  const std::size_t available = std::min(count, reports_.size());
  std::vector<netsim::KpiReport> out;
  out.reserve(available);
  for (std::size_t i = reports_.size() - available; i < reports_.size();
       ++i) {
    out.push_back(reports_[i]);
  }
  return out;
}

void DataRepository::store_explanation(ExplanationRecord record) {
  explanations_.push_back(std::move(record));
}

void DataRepository::store_degradation(DegradationRecord record) {
  degradations_.push_back(std::move(record));
}

std::string to_string(DegradationRecord::Phase phase) {
  switch (phase) {
    case DegradationRecord::Phase::kEnter: return "enter";
    case DegradationRecord::Phase::kRecover: return "recover";
    case DegradationRecord::Phase::kDemote: return "demote";
    case DegradationRecord::Phase::kPromote: return "promote";
  }
  return "?";
}

}  // namespace explora::oran
