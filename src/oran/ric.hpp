// The near-real-time RIC composition (Fig. 6): router + data repository +
// E2 termination, with helpers to attach xApps and wire the paper's two
// RAN-control routings (direct, or interposed through the EXPLORA xApp).
#pragma once

#include <memory>
#include <string>

#include "netsim/gnb.hpp"
#include "oran/data_repository.hpp"
#include "oran/e2_term.hpp"
#include "oran/rmr.hpp"

namespace explora::oran {

class NearRtRic {
 public:
  /// @param gnb the controlled RAN node (owned by the RIC for lifetime
  ///        simplicity — in a real deployment the E2 link is remote).
  explicit NearRtRic(std::unique_ptr<netsim::Gnb> gnb);

  [[nodiscard]] RmrRouter& router() noexcept { return router_; }
  [[nodiscard]] DataRepository& repository() noexcept { return repository_; }
  [[nodiscard]] E2Termination& e2_termination() noexcept { return e2term_; }
  [[nodiscard]] netsim::Gnb& gnb() noexcept { return *gnb_; }

  /// Registers an xApp endpoint with the router.
  void attach_xapp(RmrEndpoint& xapp);

  /// Subscribes an endpoint to E2 KPM indications.
  void subscribe_indications(const std::string& endpoint);

  /// Wires RAN-control routing. Without an interposer: drl -> e2term (the
  /// red dashed path in Fig. 6). With one: drl -> interposer -> e2term.
  void route_control(const std::string& drl_endpoint);
  void route_control_via(const std::string& drl_endpoint,
                         const std::string& interposer_endpoint);

  /// Runs `windows` E2 report windows (each publishes one indication).
  void run_windows(std::size_t windows);

 private:
  std::unique_ptr<netsim::Gnb> gnb_;
  RmrRouter router_;
  DataRepository repository_;
  E2Termination e2term_;
};

}  // namespace explora::oran
