#include "oran/ric.hpp"

#include "common/contracts.hpp"

namespace explora::oran {

NearRtRic::NearRtRic(std::unique_ptr<netsim::Gnb> gnb)
    : gnb_(std::move(gnb)), e2term_(*gnb_, router_) {
  EXPLORA_EXPECTS(gnb_ != nullptr);
  router_.register_endpoint(repository_);
  router_.register_endpoint(e2term_);
  // Every KPM indication is archived in the data repository.
  router_.add_route(MessageType::kKpmIndication, "e2term", "data_repo");
}

void NearRtRic::attach_xapp(RmrEndpoint& xapp) {
  router_.register_endpoint(xapp);
}

void NearRtRic::subscribe_indications(const std::string& endpoint) {
  router_.add_route(MessageType::kKpmIndication, "e2term", endpoint);
}

void NearRtRic::route_control(const std::string& drl_endpoint) {
  router_.remove_route(MessageType::kRanControl, drl_endpoint);
  router_.add_route(MessageType::kRanControl, drl_endpoint, "e2term");
  // Reliable delivery is per hop: the E2 termination ACKs straight back
  // to the DRL xApp on the direct path.
  router_.remove_route(MessageType::kRanControlAck, "e2term");
  router_.add_route(MessageType::kRanControlAck, "e2term", drl_endpoint);
}

void NearRtRic::route_control_via(const std::string& drl_endpoint,
                                  const std::string& interposer_endpoint) {
  router_.remove_route(MessageType::kRanControl, drl_endpoint);
  router_.add_route(MessageType::kRanControl, drl_endpoint,
                    interposer_endpoint);
  router_.remove_route(MessageType::kRanControl, interposer_endpoint);
  router_.add_route(MessageType::kRanControl, interposer_endpoint, "e2term");
  // ACKs retrace each control hop: e2term confirms to the interposer, the
  // interposer confirms to the DRL xApp.
  router_.remove_route(MessageType::kRanControlAck, "e2term");
  router_.add_route(MessageType::kRanControlAck, "e2term",
                    interposer_endpoint);
  router_.remove_route(MessageType::kRanControlAck, interposer_endpoint);
  router_.add_route(MessageType::kRanControlAck, interposer_endpoint,
                    drl_endpoint);
}

void NearRtRic::run_windows(std::size_t windows) {
  for (std::size_t i = 0; i < windows; ++i) {
    e2term_.collect_and_publish();
  }
}

}  // namespace explora::oran
