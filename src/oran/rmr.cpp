#include "oran/rmr.hpp"

#include <algorithm>
#include <limits>

#include "common/contracts.hpp"
#include "common/log.hpp"

namespace explora::oran {

RmrRouter::RmrRouter() {
  telemetry::Scope scope("oran.rmr");
  tm_rounds_ = &scope.counter("rounds");
  tm_delivered_ = &scope.counter("delivered");
  tm_dropped_unroutable_ = &scope.counter("dropped_unroutable");
  static constexpr std::int64_t kDepthBounds[] = {1, 2, 4, 8, 16, 32};
  tm_queue_depth_ = &scope.histogram("queue_depth", kDepthBounds);
  tm_held_delayed_ = &scope.gauge("held_delayed");
}

void RmrRouter::register_endpoint(RmrEndpoint& endpoint) {
  const std::string name(endpoint.endpoint_name());
  EXPLORA_EXPECTS(!name.empty());
  const auto [it, inserted] = endpoints_.emplace(name, &endpoint);
  EXPLORA_EXPECTS(inserted && "endpoint names must be unique");
  (void)it;
}

bool RmrRouter::has_endpoint(std::string_view name) const {
  return endpoints_.find(name) != endpoints_.end();
}

void RmrRouter::add_route(MessageType type, std::string sender,
                          std::string target) {
  routes_[RouteKey{type, std::move(sender)}].push_back(std::move(target));
}

void RmrRouter::remove_route(MessageType type, std::string_view sender) {
  routes_.erase(RouteKey{type, std::string(sender)});
}

LinkImpairments& RmrRouter::configure_impairments(std::uint64_t seed) {
  impairments_ = std::make_unique<LinkImpairments>(seed);
  return *impairments_;
}

const std::vector<std::string>* RmrRouter::find_targets(
    const RicMessage& message) const {
  // Most specific first: exact sender, then wildcard.
  auto it = routes_.find(RouteKey{message.type, message.sender});
  if (it != routes_.end()) return &it->second;
  it = routes_.find(RouteKey{message.type, "*"});
  if (it != routes_.end()) return &it->second;
  return nullptr;
}

void RmrRouter::send(RicMessage message) {
  queue_.push_back(Envelope{std::move(message), std::nullopt});
  if (dispatching_) return;  // the active drain loop will pick it up
  ++round_;
  tm_rounds_->add(1);
  release_due(round_);
  tm_queue_depth_->observe(static_cast<std::int64_t>(queue_.size()));
  drain();
  tm_held_delayed_->set(static_cast<std::int64_t>(held_.size()));
}

void RmrRouter::flush_delayed() {
  if (held_.empty()) return;
  release_due(std::numeric_limits<std::uint64_t>::max());
  if (!dispatching_) drain();
  tm_held_delayed_->set(static_cast<std::int64_t>(held_.size()));
}

void RmrRouter::release_due(std::uint64_t up_to_round) {
  if (held_.empty()) return;
  // Stable: due messages re-enter the queue in the order they were held.
  auto due_end = std::stable_partition(
      held_.begin(), held_.end(), [up_to_round](const HeldEnvelope& held) {
        return held.release_round <= up_to_round;
      });
  for (auto it = held_.begin(); it != due_end; ++it) {
    queue_.push_back(std::move(it->envelope));
  }
  held_.erase(held_.begin(), due_end);
}

void RmrRouter::drain() {
  dispatching_ = true;
  while (!queue_.empty()) {
    Envelope current = std::move(queue_.front());
    queue_.pop_front();
    dispatch(std::move(current));
  }
  dispatching_ = false;
}

void RmrRouter::drop_unroutable(const RicMessage& message,
                                std::string_view reason) {
  ++dropped_;
  ++dropped_by_type_[static_cast<std::size_t>(message.type)];
  tm_dropped_unroutable_->add(1);
  common::logf(common::LogLevel::kWarn, "rmr", "dropped {} from {} ({})",
               to_string(message.type), message.sender, reason);
}

void RmrRouter::dispatch(Envelope envelope) {
  // Router-reinjected deliveries (released delays, duplicate copies,
  // reordered messages) bypass routing and the impairment model.
  if (envelope.direct_target.has_value()) {
    const auto it = endpoints_.find(*envelope.direct_target);
    if (it == endpoints_.end()) {
      drop_unroutable(envelope.message, "target vanished");
      return;
    }
    deliver(envelope.message, *envelope.direct_target);
    return;
  }

  const auto* targets = find_targets(envelope.message);
  if (targets == nullptr || targets->empty()) {
    drop_unroutable(envelope.message, "no route");
    return;
  }
  for (const std::string& target : *targets) {
    const auto it = endpoints_.find(target);
    if (it == endpoints_.end()) {
      drop_unroutable(envelope.message, "route target not registered");
      continue;
    }
    if (impairments_ != nullptr) {
      switch (impairments_->decide(envelope.message.type, target)) {
        case LinkImpairments::Fate::kDrop:
          continue;  // lost on this hop
        case LinkImpairments::Fate::kDelay:
          held_.push_back(HeldEnvelope{
              round_ + impairments_->delay_rounds(envelope.message.type,
                                                  target),
              Envelope{envelope.message, target}});
          continue;
        case LinkImpairments::Fate::kDuplicate:
          // Deliver now; the copy arrives one round later.
          held_.push_back(HeldEnvelope{round_ + 1,
                                       Envelope{envelope.message, target}});
          break;
        case LinkImpairments::Fate::kReorder:
          // Re-queue behind everything currently pending; no re-impairment.
          queue_.push_back(Envelope{envelope.message, target});
          continue;
        case LinkImpairments::Fate::kDeliver:
          break;
      }
    }
    deliver(envelope.message, target);
  }
}

void RmrRouter::deliver(const RicMessage& message, const std::string& target) {
  const auto it = endpoints_.find(target);
  EXPLORA_ASSERT(it != endpoints_.end());
  ++delivery_counts_[target];
  tm_delivered_->add(1);
  if (tap_ != nullptr) tap_->on_deliver(message, target, round_);
  it->second->on_message(message);
}

std::uint64_t RmrRouter::delivered_to(std::string_view target) const {
  const auto it = delivery_counts_.find(target);
  return it == delivery_counts_.end() ? 0 : it->second;
}

}  // namespace explora::oran
