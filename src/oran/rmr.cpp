#include "oran/rmr.hpp"

#include "common/contracts.hpp"
#include "common/log.hpp"

namespace explora::oran {

void RmrRouter::register_endpoint(RmrEndpoint& endpoint) {
  const std::string name(endpoint.endpoint_name());
  EXPLORA_EXPECTS(!name.empty());
  const auto [it, inserted] = endpoints_.emplace(name, &endpoint);
  EXPLORA_EXPECTS(inserted && "endpoint names must be unique");
  (void)it;
}

bool RmrRouter::has_endpoint(std::string_view name) const {
  return endpoints_.find(name) != endpoints_.end();
}

void RmrRouter::add_route(MessageType type, std::string sender,
                          std::string target) {
  routes_[RouteKey{type, std::move(sender)}].push_back(std::move(target));
}

void RmrRouter::remove_route(MessageType type, std::string_view sender) {
  routes_.erase(RouteKey{type, std::string(sender)});
}

const std::vector<std::string>* RmrRouter::find_targets(
    const RicMessage& message) const {
  // Most specific first: exact sender, then wildcard.
  auto it = routes_.find(RouteKey{message.type, message.sender});
  if (it != routes_.end()) return &it->second;
  it = routes_.find(RouteKey{message.type, "*"});
  if (it != routes_.end()) return &it->second;
  return nullptr;
}

void RmrRouter::send(RicMessage message) {
  queue_.push_back(std::move(message));
  if (dispatching_) return;  // the active drain loop will pick it up
  dispatching_ = true;
  while (!queue_.empty()) {
    const RicMessage current = std::move(queue_.front());
    queue_.pop_front();
    dispatch(current);
  }
  dispatching_ = false;
}

void RmrRouter::dispatch(const RicMessage& message) {
  const auto* targets = find_targets(message);
  if (targets == nullptr || targets->empty()) {
    ++dropped_;
    common::logf(common::LogLevel::kDebug, "rmr",
                 "dropped {} from {} (no route)", to_string(message.type),
                 message.sender);
    return;
  }
  for (const std::string& target : *targets) {
    const auto it = endpoints_.find(target);
    if (it == endpoints_.end()) {
      ++dropped_;
      common::logf(common::LogLevel::kWarn, "rmr",
                   "route target {} is not registered", target);
      continue;
    }
    ++delivery_counts_[target];
    it->second->on_message(message);
  }
}

std::uint64_t RmrRouter::delivered_to(std::string_view target) const {
  const auto it = delivery_counts_.find(target);
  return it == delivery_counts_.end() ? 0 : it->second;
}

}  // namespace explora::oran
