#include "oran/e2_term.hpp"

#include "common/contracts.hpp"
#include "common/log.hpp"

namespace explora::oran {

E2Termination::E2Termination(netsim::Gnb& gnb, RmrRouter& router)
    : gnb_(&gnb), router_(&router) {}

void E2Termination::on_message(const RicMessage& message) {
  if (message.type != MessageType::kRanControl) return;
  const RanControl& ran_control = message.ran_control();

  if (!netsim::is_valid_control(ran_control.control)) {
    ++controls_rejected_;
    common::logf(common::LogLevel::kWarn, "e2term",
                 "rejected malformed control {} from {} (decision {})",
                 ran_control.control.to_string(), message.sender,
                 ran_control.decision_id);
    return;  // no apply, no ACK: malformed traffic must not look delivered
  }

  if (ran_control.seq > 0) {
    const auto [it, first_time] =
        applied_seqs_.emplace(message.sender, ran_control.seq);
    (void)it;
    if (!first_time) {
      // A retransmission whose original made it through (the ACK was
      // lost): apply-once, but re-ACK so the sender stops resending.
      ++duplicate_controls_ignored_;
      router_->send(make_ran_control_ack(std::string(endpoint_name()),
                                         ran_control.seq));
      return;
    }
  }

  gnb_->apply_control(ran_control.control);
  ++controls_applied_;
  if (ran_control.seq > 0) {
    router_->send(make_ran_control_ack(std::string(endpoint_name()),
                                       ran_control.seq));
  }
}

void E2Termination::collect_and_publish() {
  netsim::KpiReport report = gnb_->run_report_window();
  ++indications_sent_;
  router_->send(
      make_kpm_indication(std::string(endpoint_name()), std::move(report)));
}

}  // namespace explora::oran
