#include "oran/e2_term.hpp"

#include "common/contracts.hpp"
#include "common/log.hpp"

namespace explora::oran {

E2Termination::E2Termination(netsim::Gnb& gnb, RmrRouter& router)
    : gnb_(&gnb), router_(&router) {
  telemetry::Scope scope("oran.e2term");
  tm_controls_applied_ = &scope.counter("controls_applied");
  tm_controls_rejected_ = &scope.counter("controls_rejected");
  tm_duplicate_controls_ = &scope.counter("duplicate_controls");
  tm_indications_ = &scope.counter("indications");
  tm_control_loop_lag_ = &scope.span("control_loop_lag_ttis");
}

void E2Termination::on_message(const RicMessage& message) {
  if (message.type != MessageType::kRanControl) return;
  const RanControl& ran_control = message.ran_control();

  if (!netsim::is_valid_control(ran_control.control)) {
    ++controls_rejected_;
    tm_controls_rejected_->add(1);
    common::logf(common::LogLevel::kWarn, "e2term",
                 "rejected malformed control {} from {} (decision {})",
                 ran_control.control.to_string(), message.sender,
                 ran_control.decision_id);
    return;  // no apply, no ACK: malformed traffic must not look delivered
  }

  if (ran_control.seq > 0) {
    const auto [it, first_time] =
        applied_seqs_.emplace(message.sender, ran_control.seq);
    (void)it;
    if (!first_time) {
      // A retransmission whose original made it through (the ACK was
      // lost): apply-once, but re-ACK so the sender stops resending.
      ++duplicate_controls_ignored_;
      tm_duplicate_controls_->add(1);
      router_->send(make_ran_control_ack(std::string(endpoint_name()),
                                         ran_control.seq));
      return;
    }
  }

  gnb_->apply_control(ran_control.control);
  ++controls_applied_;
  tm_controls_applied_->add(1);
  if (last_indication_window_end_ >= 0) {
    // KPM indication -> RIC control lag: gNB ticks elapsed between the end
    // of the last published report window and this control landing. 0 in a
    // healthy synchronous loop; grows under delay/drop impairments.
    tm_control_loop_lag_->record(gnb_->now() - last_indication_window_end_);
  }
  if (ran_control.seq > 0) {
    router_->send(make_ran_control_ack(std::string(endpoint_name()),
                                       ran_control.seq));
  }
}

void E2Termination::collect_and_publish() {
  netsim::KpiReport report = gnb_->run_report_window();
  ++indications_sent_;
  tm_indications_->add(1);
  last_indication_window_end_ = report.window_end;
  router_->send(
      make_kpm_indication(std::string(endpoint_name()), std::move(report)));
}

}  // namespace explora::oran
