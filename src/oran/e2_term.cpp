#include "oran/e2_term.hpp"

#include "common/contracts.hpp"

namespace explora::oran {

E2Termination::E2Termination(netsim::Gnb& gnb, RmrRouter& router)
    : gnb_(&gnb), router_(&router) {}

void E2Termination::on_message(const RicMessage& message) {
  if (message.type != MessageType::kRanControl) return;
  gnb_->apply_control(message.ran_control().control);
  ++controls_applied_;
}

void E2Termination::collect_and_publish() {
  netsim::KpiReport report = gnb_->run_report_window();
  ++indications_sent_;
  router_->send(
      make_kpm_indication(std::string(endpoint_name()), std::move(report)));
}

}  // namespace explora::oran
