// Wire codec for RIC messages: a compact binary framing standing in for
// the E2AP/ASN.1 encoding a production RIC uses on the wire. The
// in-process router passes RicMessage by value; this codec exists for the
// boundaries where messages leave the process (persistence, cross-process
// xApps, trace capture) and as the reference for the message grammar.
//
// Since the oran/wire layer landed, these entry points are thin wrappers
// over wire::encode_message_frame / wire::decode_message_frame: the
// field-tag/varint grammar, version header, unknown-field skip and strict
// bounds-checked decode all live there (DESIGN.md §13).
#pragma once

#include <cstdint>
#include <vector>

#include "oran/messages.hpp"

namespace explora::oran {

/// Serializes a message to its wire form (framed, versioned).
[[nodiscard]] std::vector<std::uint8_t> encode_message(
    const RicMessage& message);

/// Parses a wire-form message; throws common::SerializeError on malformed,
/// truncated or version-mismatched input.
[[nodiscard]] RicMessage decode_message(
    const std::vector<std::uint8_t>& wire);

}  // namespace explora::oran
