// Deterministic link-impairment model for the RMR-style router: per
// (message type, target endpoint) drop / delay / duplicate / reorder
// policies, drawn from one named common::Rng stream so a chaos run is
// bit-reproducible for a given (seed, policy set) and independent of
// EXPLORA_THREADS (dispatch is single-threaded and ordered).
//
// Fates are decided once per (message, target) delivery, in dispatch
// order. Deliveries that the router re-injects itself — released delayed
// messages, duplicate copies, reordered messages — are NOT re-impaired;
// this keeps every chaos run terminating and makes "delay by N rounds"
// mean exactly N rounds.
#pragma once

#include <array>
#include <cstdint>
#include <map>
#include <string>
#include <string_view>

#include "common/rng.hpp"
#include "common/telemetry.hpp"
#include "oran/messages.hpp"

namespace explora::oran {

class LinkImpairments {
 public:
  /// Per-route fault rates. All probabilities in [0, 1]; a default policy
  /// is a perfect link. Precedence when several faults draw true:
  /// drop > delay > duplicate > reorder.
  struct Policy {
    double drop = 0.0;        ///< message lost on this hop
    double delay = 0.0;       ///< message held for `delay_rounds` rounds
    std::uint32_t delay_rounds = 1;  ///< dispatch rounds a delayed message waits
    double duplicate = 0.0;   ///< delivered now and again next round
    double reorder = 0.0;     ///< pushed behind the currently queued messages

    [[nodiscard]] bool perfect() const noexcept {
      return drop <= 0.0 && delay <= 0.0 && duplicate <= 0.0 &&
             reorder <= 0.0;
    }
  };

  /// What the router should do with one (message, target) delivery.
  enum class Fate : std::uint8_t {
    kDeliver = 0,
    kDrop,
    kDelay,
    kDuplicate,
    kReorder,
  };

  explicit LinkImpairments(std::uint64_t seed);

  /// Installs `policy` for messages of `type` delivered to `target`;
  /// target "*" matches any endpoint without a more specific policy.
  void set_policy(MessageType type, std::string target, Policy policy);

  /// The policy governing one delivery (most specific first), or nullptr.
  [[nodiscard]] const Policy* policy_for(MessageType type,
                                         std::string_view target) const;

  /// Draws the fate of one delivery and updates the per-type counters.
  [[nodiscard]] Fate decide(MessageType type, std::string_view target);

  /// Rounds a delayed message of this (type, target) waits (>= 1).
  [[nodiscard]] std::uint32_t delay_rounds(MessageType type,
                                           std::string_view target) const;

  // Per-message-type fault counters (chaos telemetry; index by MessageType).
  [[nodiscard]] std::uint64_t dropped_by_type(MessageType type) const noexcept {
    return dropped_[static_cast<std::size_t>(type)];
  }
  [[nodiscard]] std::uint64_t delayed_by_type(MessageType type) const noexcept {
    return delayed_[static_cast<std::size_t>(type)];
  }
  [[nodiscard]] std::uint64_t duplicated_by_type(
      MessageType type) const noexcept {
    return duplicated_[static_cast<std::size_t>(type)];
  }
  [[nodiscard]] std::uint64_t reordered_by_type(
      MessageType type) const noexcept {
    return reordered_[static_cast<std::size_t>(type)];
  }

 private:
  struct PolicyKey {
    MessageType type;
    std::string target;
    [[nodiscard]] friend bool operator<(const PolicyKey& a,
                                        const PolicyKey& b) {
      if (a.type != b.type) return a.type < b.type;
      return a.target < b.target;
    }
  };

  std::map<PolicyKey, Policy> policies_;
  common::Rng rng_;
  // Telemetry (oran.impairments.*): the per-type arrays below feed the
  // chaos report; these counters fold the same events into snapshots.
  telemetry::Counter* tm_dropped_;
  telemetry::Counter* tm_delayed_;
  telemetry::Counter* tm_duplicated_;
  telemetry::Counter* tm_reordered_;
  std::array<std::uint64_t, kNumMessageTypes> dropped_{};
  std::array<std::uint64_t, kNumMessageTypes> delayed_{};
  std::array<std::uint64_t, kNumMessageTypes> duplicated_{};
  std::array<std::uint64_t, kNumMessageTypes> reordered_{};
};

}  // namespace explora::oran
