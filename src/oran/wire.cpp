#include "oran/wire.hpp"

#include "common/format.hpp"

namespace explora::oran::wire {

namespace {

/// Varints are LEB128, at most 10 bytes for 64 bits; the 10th byte may
/// only carry the top bit of the value.
constexpr std::size_t kMaxVarintBytes = 10;

[[nodiscard]] std::uint64_t zigzag_encode(std::int64_t v) noexcept {
  return (static_cast<std::uint64_t>(v) << 1) ^
         static_cast<std::uint64_t>(v >> 63);
}

[[nodiscard]] std::int64_t zigzag_decode(std::uint64_t v) noexcept {
  return static_cast<std::int64_t>(v >> 1) ^
         -static_cast<std::int64_t>(v & 1);
}

}  // namespace

std::string to_string(WireType type) {
  switch (type) {
    case WireType::kVarint:
      return "varint";
    case WireType::kFixed64:
      return "fixed64";
    case WireType::kBytes:
      return "bytes";
  }
  return "unknown";
}

// ---- Writer ----------------------------------------------------------------

void Writer::varint(std::uint64_t v) {
  while (v >= 0x80) {
    buffer_.push_back(static_cast<std::uint8_t>(v) | 0x80u);
    v >>= 7;
  }
  buffer_.push_back(static_cast<std::uint8_t>(v));
}

void Writer::zigzag(std::int64_t v) { varint(zigzag_encode(v)); }

void Writer::fixed64(std::uint64_t v) {
  for (std::size_t i = 0; i < 8; ++i) {
    buffer_.push_back(static_cast<std::uint8_t>(v >> (8 * i)));
  }
}

void Writer::byte(std::uint8_t v) { buffer_.push_back(v); }

void Writer::raw(std::span<const std::uint8_t> bytes) {
  buffer_.insert(buffer_.end(), bytes.begin(), bytes.end());
}

void Writer::tag(std::uint32_t field_id, WireType type) {
  varint((static_cast<std::uint64_t>(field_id) << 3) |
         static_cast<std::uint64_t>(type));
}

void Writer::u64_field(std::uint32_t field_id, std::uint64_t v) {
  tag(field_id, WireType::kVarint);
  varint(v);
}

void Writer::i64_field(std::uint32_t field_id, std::int64_t v) {
  tag(field_id, WireType::kVarint);
  zigzag(v);
}

void Writer::bool_field(std::uint32_t field_id, bool v) {
  tag(field_id, WireType::kVarint);
  varint(v ? 1 : 0);
}

void Writer::f64_field(std::uint32_t field_id, double v) {
  tag(field_id, WireType::kFixed64);
  fixed64(std::bit_cast<std::uint64_t>(v));
}

void Writer::bytes_field(std::uint32_t field_id,
                         std::span<const std::uint8_t> v) {
  tag(field_id, WireType::kBytes);
  varint(v.size());
  raw(v);
}

void Writer::string_field(std::uint32_t field_id, std::string_view v) {
  tag(field_id, WireType::kBytes);
  varint(v.size());
  buffer_.insert(buffer_.end(), v.begin(), v.end());
}

void Writer::f64_list_field(std::uint32_t field_id,
                            std::span<const double> v) {
  tag(field_id, WireType::kBytes);
  varint(v.size() * sizeof(double));
  for (const double x : v) {
    const auto raw_bits = std::bit_cast<std::uint64_t>(x);
    for (std::size_t i = 0; i < 8; ++i) {
      buffer_.push_back(static_cast<std::uint8_t>(raw_bits >> (8 * i)));
    }
  }
}

// ---- Reader ----------------------------------------------------------------

void Reader::require(std::size_t n) const {
  // Overflow-safe: compare against the remaining bytes, never pos_ + n.
  if (n > data_.size() - pos_) {
    throw SerializeError("truncated wire input");
  }
}

std::uint64_t Reader::varint() {
  std::uint64_t value = 0;
  for (std::size_t i = 0; i < kMaxVarintBytes; ++i) {
    require(1);
    const std::uint8_t b = data_[pos_++];
    if (i == kMaxVarintBytes - 1 && (b & ~std::uint8_t{1}) != 0) {
      throw SerializeError("varint overflows 64 bits");
    }
    value |= static_cast<std::uint64_t>(b & 0x7F) << (7 * i);
    if ((b & 0x80) == 0) return value;
  }
  throw SerializeError("varint longer than 10 bytes");
}

std::int64_t Reader::zigzag() { return zigzag_decode(varint()); }

std::uint64_t Reader::fixed64() {
  require(8);
  std::uint64_t value = 0;
  for (std::size_t i = 0; i < 8; ++i) {
    value |= static_cast<std::uint64_t>(data_[pos_ + i]) << (8 * i);
  }
  pos_ += 8;
  return value;
}

std::uint8_t Reader::byte() {
  require(1);
  return data_[pos_++];
}

Reader::Tag Reader::tag() {
  const std::uint64_t raw = varint();
  const auto type_bits = static_cast<std::uint8_t>(raw & 0x7);
  if (type_bits > static_cast<std::uint8_t>(WireType::kBytes)) {
    throw SerializeError(
        common::format("unknown wire type {} on the wire", type_bits));
  }
  const std::uint64_t field_id = raw >> 3;
  if (field_id == 0 || field_id > 0xFFFFFFFFull) {
    throw SerializeError(
        common::format("invalid field id {} on the wire", field_id));
  }
  return Tag{static_cast<std::uint32_t>(field_id),
             static_cast<WireType>(type_bits)};
}

std::span<const std::uint8_t> Reader::bytes() {
  const std::uint64_t size = varint();
  if (size > remaining()) {
    throw SerializeError("truncated wire input");
  }
  const auto out = data_.subspan(pos_, static_cast<std::size_t>(size));
  pos_ += static_cast<std::size_t>(size);
  return out;
}

void Reader::skip(WireType type) {
  switch (type) {
    case WireType::kVarint:
      (void)varint();
      return;
    case WireType::kFixed64:
      (void)fixed64();
      return;
    case WireType::kBytes:
      (void)bytes();
      return;
  }
  throw SerializeError("unknown wire type in skip");
}

// ---- frame header ----------------------------------------------------------

void write_frame_header(Writer& writer) {
  for (std::size_t i = 0; i < 4; ++i) {
    writer.byte(static_cast<std::uint8_t>(kFrameMagic >> (8 * i)));
  }
  writer.byte(kWireMajor);
  writer.byte(kWireMinor);
}

FrameVersion read_frame_header(Reader& reader) {
  std::uint32_t magic = 0;
  for (std::size_t i = 0; i < 4; ++i) {
    magic |= static_cast<std::uint32_t>(reader.byte()) << (8 * i);
  }
  if (magic != kFrameMagic) {
    throw SerializeError("bad wire frame magic");
  }
  FrameVersion version;
  version.major = reader.byte();
  version.minor = reader.byte();
  if (version.major != kWireMajor) {
    throw SerializeError(common::format(
        "incompatible wire format: frame has major version {}, this "
        "decoder supports major version {}",
        version.major, kWireMajor));
  }
  return version;
}

// ---- Decoder error helpers --------------------------------------------------

void Decoder::throw_out_of_range(const char* name, std::uint64_t raw,
                                 std::uint64_t max_value) {
  throw SerializeError(common::format(
      "field '{}' has out-of-range value {} (max {})", name, raw, max_value));
}

void Decoder::throw_too_many(const char* name, std::size_t max) {
  throw SerializeError(common::format(
      "repeated field '{}' has more than {} elements", name, max));
}

// ---- JsonView ---------------------------------------------------------------

namespace {

void append_json_escaped(std::string& out, std::string_view s) {
  out += '"';
  for (const char c : s) {
    switch (c) {
      case '"':
        out += "\\\"";
        break;
      case '\\':
        out += "\\\\";
        break;
      case '\n':
        out += "\\n";
        break;
      case '\t':
        out += "\\t";
        break;
      case '\r':
        out += "\\r";
        break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          out += common::format("\\u{:04x}", static_cast<unsigned>(c));
        } else {
          out += c;
        }
    }
  }
  out += '"';
}

}  // namespace

void JsonView::key(const char* name) {
  if (!first_) *out_ += ", ";
  first_ = false;
  append_json_escaped(*out_, name);
  *out_ += ": ";
}

void JsonView::append_u64(std::uint64_t v) {
  *out_ += common::format("{}", v);
}

void JsonView::u64(std::uint32_t, const char* name, std::uint64_t& v) {
  key(name);
  append_u64(v);
}

void JsonView::u8(std::uint32_t, const char* name, std::uint8_t& v) {
  key(name);
  append_u64(v);
}

void JsonView::i64(std::uint32_t, const char* name, std::int64_t& v) {
  key(name);
  *out_ += common::format("{}", v);
}

void JsonView::boolean(std::uint32_t, const char* name, bool& v) {
  key(name);
  *out_ += v ? "true" : "false";
}

void JsonView::f64(std::uint32_t, const char* name, double& v) {
  key(name);
  *out_ += common::format("{}", v);
}

void JsonView::str(std::uint32_t, const char* name, std::string& v) {
  key(name);
  append_json_escaped(*out_, v);
}

void JsonView::blob(std::uint32_t, const char* name,
                    std::vector<std::uint8_t>& v) {
  key(name);
  static constexpr char kHex[] = "0123456789abcdef";
  *out_ += '"';
  for (const std::uint8_t b : v) {
    *out_ += kHex[b >> 4];
    *out_ += kHex[b & 0x0F];
  }
  *out_ += '"';
}

void JsonView::f64_list(std::uint32_t, const char* name,
                        std::vector<double>& v) {
  key(name);
  *out_ += '[';
  for (std::size_t i = 0; i < v.size(); ++i) {
    if (i > 0) *out_ += ", ";
    *out_ += common::format("{}", v[i]);
  }
  *out_ += ']';
}

// ---- RicMessage entry points ------------------------------------------------

std::vector<std::uint8_t> encode_message_frame(const RicMessage& message) {
  return encode_frame(message);
}

RicMessage decode_message_frame(std::span<const std::uint8_t> data) {
  RicMessage message = decode_frame<RicMessage>(data);
  if (message.payload.index() != static_cast<std::size_t>(message.type)) {
    throw SerializeError(common::format(
        "RIC message payload does not match its declared type {}",
        to_string(message.type)));
  }
  return message;
}

}  // namespace explora::oran::wire
