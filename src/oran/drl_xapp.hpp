// The DRL xApp (Fig. 2 + Fig. 6): consumes E2 KPM indications, maintains
// the M-report input window, feeds it through the autoencoder, and lets the
// PPO agent emit a slicing/scheduling RAN-control message once per decision
// period. The emitted message is routed by the RMR — directly to the E2
// termination, or through the EXPLORA xApp when it is deployed.
#pragma once

#include <cstdint>
#include <optional>
#include <string>

#include "ml/agent.hpp"
#include "ml/autoencoder.hpp"
#include "ml/features.hpp"
#include "oran/reliable.hpp"
#include "oran/rmr.hpp"

namespace explora::oran {

class DrlXapp final : public RmrEndpoint {
 public:
  struct Config {
    std::string name = "drl_xapp";
    /// Decisions fire every this many indications (M = 10 in the paper).
    std::size_t reports_per_decision = ml::kHistory;
    /// Sample from the policy instead of argmax (exploration mode).
    bool stochastic = false;
    /// Sampling temperatures (< 1 sharpens toward the greedy action).
    /// The PRB head runs colder than the scheduler heads: its alphabet is
    /// an order of magnitude larger, so matching temperatures would make
    /// the slicing mode disproportionately noisy.
    double prb_temperature = 1.0;
    double sched_temperature = 1.0;
    std::uint64_t seed = 1234;
    /// When set, controls are sequence-numbered and resent until the next
    /// hop ACKs (timeout/backoff clocked by incoming KPM indications).
    /// Unset keeps the legacy fire-and-forget seq-0 sends.
    std::optional<ReliableControlSender::Config> reliable;
  };

  /// Model components are borrowed (non-owning): the caller — typically
  /// the experiment harness holding a TrainedSystem — must keep them alive
  /// for the xApp's lifetime. Inference is const on all of them.
  DrlXapp(Config config, const ml::KpiNormalizer& normalizer,
          const ml::Autoencoder& autoencoder, const ml::PolicyAgent& agent,
          RmrRouter& router);

  [[nodiscard]] std::string_view endpoint_name() const noexcept override {
    return config_.name;
  }
  void on_message(const RicMessage& message) override;

  [[nodiscard]] std::uint64_t decisions_made() const noexcept {
    return decision_id_;
  }
  /// Latent state used for the most recent decision (empty before the
  /// first); this is what SHAP and EXPLORA introspect.
  [[nodiscard]] const ml::Vector& last_latent() const noexcept {
    return last_latent_;
  }
  [[nodiscard]] const std::optional<ml::PolicyDecision>& last_decision()
      const noexcept {
    return last_decision_;
  }
  [[nodiscard]] const ml::InputWindow& window() const noexcept {
    return window_;
  }
  [[nodiscard]] const ml::Autoencoder& autoencoder() const noexcept {
    return *autoencoder_;
  }
  [[nodiscard]] const ml::PolicyAgent& agent() const noexcept {
    return *agent_;
  }
  [[nodiscard]] const ml::KpiNormalizer& normalizer() const noexcept {
    return *normalizer_;
  }
  /// Reliable-delivery telemetry (nullptr when config.reliable is unset).
  [[nodiscard]] const ReliableControlSender* reliable() const noexcept {
    return reliable_.has_value() ? &*reliable_ : nullptr;
  }
  /// Advances reliable-delivery time without an indication — used by the
  /// harness to drain in-flight controls after the last report window.
  void pump_reliable() {
    if (reliable_.has_value()) reliable_->on_tick();
  }

 private:
  void decide();

  Config config_;
  const ml::KpiNormalizer* normalizer_;
  const ml::Autoencoder* autoencoder_;
  const ml::PolicyAgent* agent_;
  RmrRouter* router_;
  common::Rng rng_;
  ml::InputWindow window_;
  std::optional<ReliableControlSender> reliable_;
  std::uint64_t indications_seen_ = 0;
  std::uint64_t decision_id_ = 0;
  ml::Vector last_latent_;
  std::optional<ml::PolicyDecision> last_decision_;

  // Telemetry (oran.drl_xapp.*), bound at construction.
  telemetry::Counter* tm_indications_;
  telemetry::Counter* tm_decisions_;
};

}  // namespace explora::oran
