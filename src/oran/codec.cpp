#include "oran/codec.hpp"

#include "oran/wire.hpp"

namespace explora::oran {

// The legacy entry points now delegate to the shared oran/wire layer: one
// field-list definition per type drives the tagged binary grammar, the
// strict bounds-checked reader, unknown-field skip and version handling.
// The old hand-rolled fixed-layout parser (with its own truncation
// handling) is gone; RejectsTruncatedWire-style guarantees now come from
// wire::Reader for every message type at once.

std::vector<std::uint8_t> encode_message(const RicMessage& message) {
  return wire::encode_message_frame(message);
}

RicMessage decode_message(const std::vector<std::uint8_t>& bytes) {
  return wire::decode_message_frame(bytes);
}

}  // namespace explora::oran
