#include "oran/codec.hpp"

#include "common/serialize.hpp"

namespace explora::oran {

namespace {

constexpr std::uint64_t kWireMagic = 0x453241502d4d5347ULL;  // "E2AP-MSG"
// v2: RanControl grew a per-hop delivery `seq`, and RIC_CONTROL_ACK joined
// the grammar (reliable control delivery under link impairments).
constexpr std::uint32_t kWireVersion = 2;

void write_report(common::BinaryWriter& writer,
                  const netsim::KpiReport& report) {
  writer.write_i64(report.window_end);
  for (const auto& slice : report.slices) {
    writer.write_f64_vector(slice.tx_bitrate_mbps);
    writer.write_f64_vector(slice.tx_packets);
    writer.write_f64_vector(slice.buffer_bytes);
  }
}

[[nodiscard]] netsim::KpiReport read_report(common::BinaryReader& reader) {
  netsim::KpiReport report;
  report.window_end = reader.read_i64();
  for (auto& slice : report.slices) {
    slice.tx_bitrate_mbps = reader.read_f64_vector();
    slice.tx_packets = reader.read_f64_vector();
    slice.buffer_bytes = reader.read_f64_vector();
  }
  return report;
}

void write_control(common::BinaryWriter& writer,
                   const netsim::SlicingControl& control) {
  for (auto prbs : control.prbs) writer.write_u32(prbs);
  for (auto policy : control.scheduling) {
    writer.write_u32(static_cast<std::uint32_t>(policy));
  }
}

[[nodiscard]] netsim::SlicingControl read_control(
    common::BinaryReader& reader) {
  netsim::SlicingControl control;
  for (auto& prbs : control.prbs) prbs = reader.read_u32();
  for (auto& policy : control.scheduling) {
    const auto raw = reader.read_u32();
    if (raw >= netsim::kNumSchedulerPolicies) {
      throw common::SerializeError("invalid scheduler policy on the wire");
    }
    policy = static_cast<netsim::SchedulerPolicy>(raw);
  }
  return control;
}

}  // namespace

std::vector<std::uint8_t> encode_message(const RicMessage& message) {
  common::BinaryWriter writer(kWireMagic, kWireVersion);
  writer.write_u32(static_cast<std::uint32_t>(message.type));
  writer.write_string(message.sender);
  switch (message.type) {
    case MessageType::kKpmIndication:
      write_report(writer, message.kpm().report);
      break;
    case MessageType::kRanControl:
      write_control(writer, message.ran_control().control);
      writer.write_u64(message.ran_control().decision_id);
      writer.write_u64(message.ran_control().seq);
      break;
    case MessageType::kRanControlAck:
      writer.write_u64(message.control_ack().seq);
      break;
  }
  return writer.buffer();
}

RicMessage decode_message(const std::vector<std::uint8_t>& wire) {
  common::BinaryReader reader(wire, kWireMagic, kWireVersion);
  const auto raw_type = reader.read_u32();
  if (raw_type >= static_cast<std::uint32_t>(kNumMessageTypes)) {
    throw common::SerializeError("unknown RIC message type on the wire");
  }
  RicMessage message;
  message.type = static_cast<MessageType>(raw_type);
  message.sender = reader.read_string();
  switch (message.type) {
    case MessageType::kKpmIndication:
      message.payload = KpmIndication{read_report(reader)};
      break;
    case MessageType::kRanControl: {
      RanControl control;
      control.control = read_control(reader);
      control.decision_id = reader.read_u64();
      control.seq = reader.read_u64();
      message.payload = control;
      break;
    }
    case MessageType::kRanControlAck:
      message.payload = RanControlAck{reader.read_u64()};
      break;
  }
  if (!reader.at_end()) {
    throw common::SerializeError("trailing bytes after RIC message");
  }
  return message;
}

}  // namespace explora::oran
