// Record/replay for the RIC message fabric (DESIGN.md §13.4). A
// TraceRecorder taps RmrRouter deliveries and persists the tick-stamped
// E2/KPM/control stream to a framed `.etrace` file; a TraceReplaySource
// parses such a file and re-delivers the recorded stream into any
// endpoint — so a recorded live run can be explained offline, with no
// simulator in the loop, and must reproduce the live attribution stream
// byte-identically.
//
// File grammar (all multi-byte pieces via the oran/wire primitives):
//
//   file   := magic:u32le("ETRC") major:u8 minor:u8
//             header_len:varint header frame*
//   header := field*        (1: label string)
//   frame  := len:varint field*
//             (1: tick zigzag, 2: dispatch round varint,
//              3: target string, 4: encoded RicMessage frame bytes)
//
// The same compatibility rules as wire frames apply: unknown field ids
// are skipped (minor growth is free), a different major version is
// rejected naming both versions, and every length is bounds-checked.
#pragma once

#include <cstdint>
#include <functional>
#include <span>
#include <string>
#include <string_view>
#include <vector>

#include "oran/rmr.hpp"

namespace explora::oran {

/// Trace-file magic: "ETRC" as a little-endian u32.
inline constexpr std::uint32_t kTraceMagic = 0x43525445u;
inline constexpr std::uint8_t kTraceMajor = 1;
inline constexpr std::uint8_t kTraceMinor = 0;

/// One recorded delivery: which tick it happened at (simulation clock at
/// delivery time), which router dispatch round, which endpoint received
/// it, and the message in its versioned wire-frame encoding.
struct TraceFrame {
  std::int64_t tick = 0;
  std::uint64_t round = 0;
  std::string target;
  std::vector<std::uint8_t> message;  ///< wire::encode_message_frame output

  /// Decodes the stored message (validating frame version and payload
  /// type); throws common::SerializeError on a tampered frame.
  [[nodiscard]] RicMessage decode() const;

  friend bool operator==(const TraceFrame&, const TraceFrame&) = default;
};

/// Delivery tap that captures every routed delivery as a TraceFrame.
/// Install on a router with set_delivery_tap(&recorder); ticks come from
/// the registered tick source (typically the telemetry registry clock).
class TraceRecorder final : public DeliveryTap {
 public:
  explicit TraceRecorder(std::string label = "");

  /// Clock queried once per recorded delivery. Unset => tick 0.
  void set_tick_source(std::function<std::int64_t()> source) {
    tick_source_ = std::move(source);
  }

  void on_deliver(const RicMessage& message, std::string_view target,
                  std::uint64_t round) override;

  [[nodiscard]] const std::string& label() const noexcept { return label_; }
  [[nodiscard]] const std::vector<TraceFrame>& frames() const noexcept {
    return frames_;
  }
  /// Total encoded message payload bytes captured so far.
  [[nodiscard]] std::size_t message_bytes() const noexcept {
    return message_bytes_;
  }

  /// Serializes the full trace (header + all frames) to `.etrace` bytes.
  [[nodiscard]] std::vector<std::uint8_t> serialize() const;
  /// Writes the trace to `path` atomically (temp file + rename); throws
  /// common::SerializeError on I/O failure.
  void save(const std::string& path) const;

 private:
  std::string label_;
  std::function<std::int64_t()> tick_source_;
  std::vector<TraceFrame> frames_;
  std::size_t message_bytes_ = 0;
};

/// Parsed `.etrace` stream, ready to feed back into an endpoint.
class TraceReplaySource {
 public:
  /// Parses serialized trace bytes; throws common::SerializeError on
  /// malformed input or an incompatible trace major version.
  [[nodiscard]] static TraceReplaySource parse(
      std::span<const std::uint8_t> data);
  /// Reads and parses a trace file; throws on I/O or parse failure.
  [[nodiscard]] static TraceReplaySource load(const std::string& path);

  [[nodiscard]] const std::string& label() const noexcept { return label_; }
  [[nodiscard]] const std::vector<TraceFrame>& frames() const noexcept {
    return frames_;
  }
  /// Frames recorded for a specific endpoint, in delivery order.
  [[nodiscard]] std::vector<const TraceFrame*> frames_for(
      std::string_view target) const;

  /// Re-delivers every frame recorded for `target` into `endpoint`, in
  /// recorded order. `on_tick(frame.tick)` runs before each delivery so
  /// the caller can advance its clock (telemetry registry) to the
  /// recorded timestamp. Returns the number of frames delivered; throws
  /// common::SerializeError if a stored message fails to decode.
  std::size_t replay_into(
      RmrEndpoint& endpoint, std::string_view target,
      const std::function<void(std::int64_t)>& on_tick = {}) const;

 private:
  std::string label_;
  std::vector<TraceFrame> frames_;
};

}  // namespace explora::oran
