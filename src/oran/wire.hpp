// The versioned binary wire layer (DESIGN.md §13): a field-tag/varint
// serialization format in the spirit of protobuf wire encoding, driven by
// one per-type field list — `wire_fields(visitor, value)` — that a binary
// encoder, a strict bounds-checked decoder and a JSON view all walk. This
// replaces per-type hand-rolled parsers (the old oran/codec byte layout)
// with a single grammar:
//
//   frame   := magic:u32le major:u8 minor:u8 field*
//   field   := tag:varint value
//   tag     := field_id << 3 | wire_type      (field_id >= 1)
//   value   := varint                          (wire_type 0)
//            | fixed64                         (wire_type 1)
//            | len:varint byte[len]            (wire_type 2)
//
// Compatibility rules: a decoder skips fields it does not know (minor
// version growth is free); a frame whose *major* version differs from the
// decoder's is rejected with an error naming both versions. Decoding is
// strict: every length is bounds-checked against the remaining input,
// varints longer than 10 bytes, unknown wire types, out-of-range enum
// values and mismatched field wire types all throw common::SerializeError
// — malformed input can never touch memory out of bounds.
#pragma once

#include <array>
#include <bit>
#include <cstdint>
#include <span>
#include <string>
#include <string_view>
#include <utility>
#include <variant>
#include <vector>

#include "common/serialize.hpp"
#include "netsim/kpi.hpp"
#include "oran/data_repository.hpp"
#include "oran/messages.hpp"

namespace explora::oran::wire {

using common::SerializeError;

/// Frame magic: "EWIR" as a little-endian u32.
inline constexpr std::uint32_t kFrameMagic = 0x52495745u;
/// Format major version: decoders reject frames with a different major.
inline constexpr std::uint8_t kWireMajor = 1;
/// Format minor version: newer minors may add fields; old decoders skip
/// them, old frames simply lack them.
inline constexpr std::uint8_t kWireMinor = 0;

/// The three value encodings a tag can announce.
enum class WireType : std::uint8_t {
  kVarint = 0,
  kFixed64 = 1,
  kBytes = 2,
};

[[nodiscard]] std::string to_string(WireType type);

/// Append-only tagged-field encoder (no header; frames add their own).
class Writer {
 public:
  void varint(std::uint64_t v);
  /// ZigZag-encoded signed varint (small magnitudes stay small).
  void zigzag(std::int64_t v);
  void fixed64(std::uint64_t v);
  void byte(std::uint8_t v);
  void raw(std::span<const std::uint8_t> bytes);
  void tag(std::uint32_t field_id, WireType type);

  void u64_field(std::uint32_t field_id, std::uint64_t v);
  void i64_field(std::uint32_t field_id, std::int64_t v);
  void bool_field(std::uint32_t field_id, bool v);
  void f64_field(std::uint32_t field_id, double v);
  void bytes_field(std::uint32_t field_id, std::span<const std::uint8_t> v);
  void string_field(std::uint32_t field_id, std::string_view v);
  /// Packed doubles: one bytes field holding size * 8 raw little-endian
  /// IEEE-754 values.
  void f64_list_field(std::uint32_t field_id, std::span<const double> v);

  [[nodiscard]] const std::vector<std::uint8_t>& buffer() const& noexcept {
    return buffer_;
  }
  [[nodiscard]] std::vector<std::uint8_t> take() && noexcept {
    return std::move(buffer_);
  }
  [[nodiscard]] std::size_t size() const noexcept { return buffer_.size(); }

 private:
  std::vector<std::uint8_t> buffer_;
};

/// Strict sequential decoder over a borrowed byte span. Every read is
/// bounds-checked; all failures throw SerializeError, never read out of
/// bounds. The span must outlive the reader.
class Reader {
 public:
  explicit Reader(std::span<const std::uint8_t> data) noexcept
      : data_(data) {}

  [[nodiscard]] std::uint64_t varint();
  [[nodiscard]] std::int64_t zigzag();
  [[nodiscard]] std::uint64_t fixed64();
  [[nodiscard]] std::uint8_t byte();

  struct Tag {
    std::uint32_t field_id = 0;
    WireType type = WireType::kVarint;
  };
  /// Reads and validates one field tag (field_id >= 1, known wire type).
  [[nodiscard]] Tag tag();

  /// Length-prefixed bytes; the returned span borrows from the input.
  [[nodiscard]] std::span<const std::uint8_t> bytes();

  /// Skips one value of the given wire type (unknown-field tolerance).
  void skip(WireType type);

  [[nodiscard]] bool at_end() const noexcept { return pos_ == data_.size(); }
  [[nodiscard]] std::size_t remaining() const noexcept {
    return data_.size() - pos_;
  }
  [[nodiscard]] std::size_t pos() const noexcept { return pos_; }

 private:
  void require(std::size_t n) const;

  std::span<const std::uint8_t> data_;
  std::size_t pos_ = 0;
};

/// Writes the frame header (magic + format version) onto a writer.
void write_frame_header(Writer& writer);

struct FrameVersion {
  std::uint8_t major = 0;
  std::uint8_t minor = 0;
};

/// Reads and validates a frame header. Throws on bad magic; throws an
/// error naming both versions when the major version is incompatible.
FrameVersion read_frame_header(Reader& reader);

// ---------------------------------------------------------------------------
// Visitors. Each serializable type defines exactly one
//   template <typename V> void wire_fields(V& v, T& value)
// listing (field_id, name, member) triples; Encoder, Decoder and JsonView
// below interpret that list. Field ids are part of the wire contract:
// never reuse or renumber them — add new ids and bump kWireMinor.
// ---------------------------------------------------------------------------

template <typename V, typename T>
void wire_fields(V& v, T& value);  // primary template: specialized below

/// Binary encoding pass over a field list.
class Encoder {
 public:
  explicit Encoder(Writer& writer) noexcept : writer_(&writer) {}

  void u64(std::uint32_t id, const char* /*name*/, std::uint64_t& v) {
    writer_->u64_field(id, v);
  }
  void u8(std::uint32_t id, const char* /*name*/, std::uint8_t& v) {
    writer_->u64_field(id, v);
  }
  void i64(std::uint32_t id, const char* /*name*/, std::int64_t& v) {
    writer_->i64_field(id, v);
  }
  void boolean(std::uint32_t id, const char* /*name*/, bool& v) {
    writer_->bool_field(id, v);
  }
  void f64(std::uint32_t id, const char* /*name*/, double& v) {
    writer_->f64_field(id, v);
  }
  void str(std::uint32_t id, const char* /*name*/, std::string& v) {
    writer_->string_field(id, v);
  }
  template <typename E>
  void enumeration(std::uint32_t id, const char* /*name*/, E& v,
                   std::uint64_t /*max_value*/) {
    writer_->u64_field(id, static_cast<std::uint64_t>(v));
  }
  void f64_list(std::uint32_t id, const char* /*name*/,
                std::vector<double>& v) {
    writer_->f64_list_field(id, v);
  }
  void blob(std::uint32_t id, const char* /*name*/,
            std::vector<std::uint8_t>& v) {
    writer_->bytes_field(id, v);
  }
  template <typename T>
  void msg(std::uint32_t id, const char* /*name*/, T& v) {
    Writer sub;
    Encoder nested(sub);
    wire_fields(nested, v);
    writer_->bytes_field(id, sub.buffer());
  }
  template <typename T, std::size_t N>
  void msg_array(std::uint32_t id, const char* name, std::array<T, N>& v) {
    for (T& element : v) msg(id, name, element);
  }
  template <typename T>
  void msg_list(std::uint32_t id, const char* name, std::vector<T>& v) {
    for (T& element : v) msg(id, name, element);
  }
  template <std::size_t N>
  void u32_array(std::uint32_t id, const char* /*name*/,
                 std::array<std::uint32_t, N>& v) {
    for (const std::uint32_t element : v) writer_->u64_field(id, element);
  }
  template <typename E, std::size_t N>
  void enum_array(std::uint32_t id, const char* /*name*/, std::array<E, N>& v,
                  std::uint64_t /*max_value*/) {
    for (const E element : v) {
      writer_->u64_field(id, static_cast<std::uint64_t>(element));
    }
  }
  template <typename Alt, typename... Ts>
  void variant_alt(std::uint32_t id, const char* name,
                   std::variant<Ts...>& v) {
    if (auto* alt = std::get_if<Alt>(&v)) msg(id, name, *alt);
  }

 private:
  Writer* writer_;
};

/// One-field match pass: constructed per incoming tag, walks the field
/// list and decodes the member whose id matches; repeated fields use the
/// occurrence index maintained by decode_fields.
class Decoder {
 public:
  Decoder(Reader& reader, std::uint32_t field_id, WireType type,
          std::size_t occurrence) noexcept
      : reader_(&reader),
        field_id_(field_id),
        type_(type),
        occurrence_(occurrence) {}

  [[nodiscard]] bool matched() const noexcept { return matched_; }

  void u64(std::uint32_t id, const char* name, std::uint64_t& v) {
    if (!take(id)) return;
    expect(WireType::kVarint, name);
    v = reader_->varint();
  }
  void u8(std::uint32_t id, const char* name, std::uint8_t& v) {
    if (!take(id)) return;
    expect(WireType::kVarint, name);
    const std::uint64_t raw = reader_->varint();
    if (raw > 0xFF) throw_out_of_range(name, raw, 0xFF);
    v = static_cast<std::uint8_t>(raw);
  }
  void i64(std::uint32_t id, const char* name, std::int64_t& v) {
    if (!take(id)) return;
    expect(WireType::kVarint, name);
    v = reader_->zigzag();
  }
  void boolean(std::uint32_t id, const char* name, bool& v) {
    if (!take(id)) return;
    expect(WireType::kVarint, name);
    const std::uint64_t raw = reader_->varint();
    if (raw > 1) throw_out_of_range(name, raw, 1);
    v = raw != 0;
  }
  void f64(std::uint32_t id, const char* name, double& v) {
    if (!take(id)) return;
    expect(WireType::kFixed64, name);
    v = std::bit_cast<double>(reader_->fixed64());
  }
  void str(std::uint32_t id, const char* name, std::string& v) {
    if (!take(id)) return;
    expect(WireType::kBytes, name);
    const auto bytes = reader_->bytes();
    v.assign(reinterpret_cast<const char*>(bytes.data()), bytes.size());
  }
  template <typename E>
  void enumeration(std::uint32_t id, const char* name, E& v,
                   std::uint64_t max_value) {
    if (!take(id)) return;
    expect(WireType::kVarint, name);
    const std::uint64_t raw = reader_->varint();
    if (raw > max_value) throw_out_of_range(name, raw, max_value);
    v = static_cast<E>(raw);
  }
  void f64_list(std::uint32_t id, const char* name, std::vector<double>& v) {
    if (!take(id)) return;
    expect(WireType::kBytes, name);
    const auto bytes = reader_->bytes();
    if (bytes.size() % sizeof(double) != 0) {
      throw SerializeError(std::string("packed double list '") + name +
                           "' has a length that is not a multiple of 8");
    }
    v.assign(bytes.size() / sizeof(double), 0.0);
    for (std::size_t i = 0; i < v.size(); ++i) {
      std::uint64_t raw = 0;
      for (std::size_t b = 0; b < sizeof(double); ++b) {
        raw |= static_cast<std::uint64_t>(bytes[i * sizeof(double) + b])
               << (8 * b);
      }
      v[i] = std::bit_cast<double>(raw);
    }
  }
  void blob(std::uint32_t id, const char* name, std::vector<std::uint8_t>& v) {
    if (!take(id)) return;
    expect(WireType::kBytes, name);
    const auto bytes = reader_->bytes();
    v.assign(bytes.begin(), bytes.end());
  }
  template <typename T>
  void msg(std::uint32_t id, const char* name, T& v) {
    if (!take(id)) return;
    expect(WireType::kBytes, name);
    decode_nested(v);
  }
  template <typename T, std::size_t N>
  void msg_array(std::uint32_t id, const char* name, std::array<T, N>& v) {
    if (!take(id)) return;
    expect(WireType::kBytes, name);
    if (occurrence_ >= N) throw_too_many(name, N);
    decode_nested(v[occurrence_]);
  }
  template <typename T>
  void msg_list(std::uint32_t id, const char* name, std::vector<T>& v) {
    if (!take(id)) return;
    expect(WireType::kBytes, name);
    v.emplace_back();
    decode_nested(v.back());
  }
  template <std::size_t N>
  void u32_array(std::uint32_t id, const char* name,
                 std::array<std::uint32_t, N>& v) {
    if (!take(id)) return;
    expect(WireType::kVarint, name);
    if (occurrence_ >= N) throw_too_many(name, N);
    const std::uint64_t raw = reader_->varint();
    if (raw > 0xFFFFFFFFull) throw_out_of_range(name, raw, 0xFFFFFFFFull);
    v[occurrence_] = static_cast<std::uint32_t>(raw);
  }
  template <typename E, std::size_t N>
  void enum_array(std::uint32_t id, const char* name, std::array<E, N>& v,
                  std::uint64_t max_value) {
    if (!take(id)) return;
    expect(WireType::kVarint, name);
    if (occurrence_ >= N) throw_too_many(name, N);
    const std::uint64_t raw = reader_->varint();
    if (raw > max_value) throw_out_of_range(name, raw, max_value);
    v[occurrence_] = static_cast<E>(raw);
  }
  template <typename Alt, typename... Ts>
  void variant_alt(std::uint32_t id, const char* name,
                   std::variant<Ts...>& v) {
    if (!take(id)) return;
    expect(WireType::kBytes, name);
    decode_nested(v.template emplace<Alt>());
  }

 private:
  [[nodiscard]] bool take(std::uint32_t id) noexcept {
    if (matched_ || id != field_id_) return false;
    matched_ = true;
    return true;
  }
  void expect(WireType type, const char* name) const {
    if (type_ != type) {
      throw SerializeError(std::string("field '") + name + "' has wire type " +
                           to_string(type_) + " (expected " + to_string(type) +
                           ")");
    }
  }
  [[noreturn]] static void throw_out_of_range(const char* name,
                                              std::uint64_t raw,
                                              std::uint64_t max_value);
  [[noreturn]] static void throw_too_many(const char* name, std::size_t max);
  template <typename T>
  void decode_nested(T& out);

  Reader* reader_;
  std::uint32_t field_id_;
  WireType type_;
  std::size_t occurrence_;
  bool matched_ = false;
};

/// Decodes tagged fields from `reader` (until end of input) into `out`.
/// Unknown field ids are skipped; repeated fields fill array slots in
/// arrival order; scalar re-occurrences are last-wins.
template <typename T>
void decode_fields(Reader& reader, T& out) {
  // Tiny linear (field_id -> occurrence) map: field lists are short and
  // this is not a realtime path.
  std::vector<std::pair<std::uint32_t, std::size_t>> occurrences;
  while (!reader.at_end()) {
    const Reader::Tag tag = reader.tag();
    std::size_t* slot = nullptr;
    for (auto& [id, count] : occurrences) {
      if (id == tag.field_id) {
        slot = &count;
        break;
      }
    }
    if (slot == nullptr) {
      occurrences.emplace_back(tag.field_id, 0);
      slot = &occurrences.back().second;
    }
    Decoder decoder(reader, tag.field_id, tag.type, *slot);
    wire_fields(decoder, out);
    if (!decoder.matched()) {
      reader.skip(tag.type);
    } else {
      ++*slot;
    }
  }
}

template <typename T>
void Decoder::decode_nested(T& out) {
  const auto bytes = reader_->bytes();
  Reader nested(bytes);
  decode_fields(nested, out);
}

/// JSON rendering pass over the same field list (the human-readable view
/// of any wire-encodable value; object keys follow field-list order).
class JsonView {
 public:
  explicit JsonView(std::string& out) noexcept : out_(&out) {}

  void u64(std::uint32_t, const char* name, std::uint64_t& v);
  void u8(std::uint32_t, const char* name, std::uint8_t& v);
  void i64(std::uint32_t, const char* name, std::int64_t& v);
  void boolean(std::uint32_t, const char* name, bool& v);
  void f64(std::uint32_t, const char* name, double& v);
  void str(std::uint32_t, const char* name, std::string& v);
  template <typename E>
  void enumeration(std::uint32_t id, const char* name, E& v,
                   std::uint64_t /*max_value*/) {
    auto raw = static_cast<std::uint64_t>(v);
    u64(id, name, raw);
  }
  void f64_list(std::uint32_t, const char* name, std::vector<double>& v);
  /// Opaque bytes render as a lowercase hex string.
  void blob(std::uint32_t, const char* name, std::vector<std::uint8_t>& v);
  template <typename T>
  void msg(std::uint32_t, const char* name, T& v) {
    key(name);
    append_object(v);
  }
  template <typename T, std::size_t N>
  void msg_array(std::uint32_t, const char* name, std::array<T, N>& v) {
    key(name);
    *out_ += '[';
    for (std::size_t i = 0; i < N; ++i) {
      if (i > 0) *out_ += ", ";
      append_object(v[i]);
    }
    *out_ += ']';
  }
  template <typename T>
  void msg_list(std::uint32_t, const char* name, std::vector<T>& v) {
    key(name);
    *out_ += '[';
    for (std::size_t i = 0; i < v.size(); ++i) {
      if (i > 0) *out_ += ", ";
      append_object(v[i]);
    }
    *out_ += ']';
  }
  template <std::size_t N>
  void u32_array(std::uint32_t, const char* name,
                 std::array<std::uint32_t, N>& v) {
    key(name);
    *out_ += '[';
    for (std::size_t i = 0; i < N; ++i) {
      if (i > 0) *out_ += ", ";
      append_u64(v[i]);
    }
    *out_ += ']';
  }
  template <typename E, std::size_t N>
  void enum_array(std::uint32_t, const char* name, std::array<E, N>& v,
                  std::uint64_t /*max_value*/) {
    key(name);
    *out_ += '[';
    for (std::size_t i = 0; i < N; ++i) {
      if (i > 0) *out_ += ", ";
      append_u64(static_cast<std::uint64_t>(v[i]));
    }
    *out_ += ']';
  }
  template <typename Alt, typename... Ts>
  void variant_alt(std::uint32_t, const char* name, std::variant<Ts...>& v) {
    if (auto* alt = std::get_if<Alt>(&v)) {
      key(name);
      append_object(*alt);
    }
  }

 private:
  void key(const char* name);
  void append_u64(std::uint64_t v);
  template <typename T>
  void append_object(T& v) {
    *out_ += '{';
    JsonView nested(*out_);
    wire_fields(nested, v);
    *out_ += '}';
  }

  std::string* out_;
  bool first_ = true;
};

// ---------------------------------------------------------------------------
// Frame-level API.
// ---------------------------------------------------------------------------

/// Encodes a value as one self-contained versioned frame.
template <typename T>
[[nodiscard]] std::vector<std::uint8_t> encode_frame(const T& value) {
  Writer writer;
  write_frame_header(writer);
  Encoder encoder(writer);
  // The encode pass only reads; the shared field list is declared on
  // mutable references so the decode pass can write through it.
  wire_fields(encoder, const_cast<T&>(value));
  return std::move(writer).take();
}

/// Decodes one versioned frame. Throws SerializeError on malformed input,
/// truncation, or an incompatible major version.
template <typename T>
[[nodiscard]] T decode_frame(std::span<const std::uint8_t> data) {
  Reader reader(data);
  (void)read_frame_header(reader);
  T out{};
  decode_fields(reader, out);
  return out;
}

/// JSON view of any wire-encodable value (no frame header; a plain
/// object in field-list order).
template <typename T>
[[nodiscard]] std::string to_json(const T& value) {
  std::string out;
  out += '{';
  JsonView view(out);
  wire_fields(view, const_cast<T&>(value));
  out += '}';
  return out;
}

// ---------------------------------------------------------------------------
// Field lists. One definition per type; binary codec and JSON view both
// derive from it. Ids are frozen wire contract.
// ---------------------------------------------------------------------------

template <typename V>
void wire_fields(V& v, netsim::SliceKpiReport& s) {
  v.f64_list(1, "tx_bitrate_mbps", s.tx_bitrate_mbps);
  v.f64_list(2, "tx_packets", s.tx_packets);
  v.f64_list(3, "buffer_bytes", s.buffer_bytes);
}

template <typename V>
void wire_fields(V& v, netsim::KpiReport& r) {
  v.i64(1, "window_end", r.window_end);
  v.msg_array(2, "slices", r.slices);
}

template <typename V>
void wire_fields(V& v, netsim::SlicingControl& c) {
  v.u32_array(1, "prbs", c.prbs);
  v.enum_array(2, "scheduling", c.scheduling,
               netsim::kNumSchedulerPolicies - 1);
}

template <typename V>
void wire_fields(V& v, KpmIndication& m) {
  v.msg(1, "report", m.report);
}

template <typename V>
void wire_fields(V& v, RanControl& m) {
  v.msg(1, "control", m.control);
  v.u64(2, "decision_id", m.decision_id);
  v.u64(3, "seq", m.seq);
}

template <typename V>
void wire_fields(V& v, RanControlAck& m) {
  v.u64(1, "seq", m.seq);
}

template <typename V>
void wire_fields(V& v, RicMessage& m) {
  v.enumeration(1, "type", m.type, kNumMessageTypes - 1);
  v.str(2, "sender", m.sender);
  v.template variant_alt<KpmIndication>(3, "kpm", m.payload);
  v.template variant_alt<RanControl>(4, "ran_control", m.payload);
  v.template variant_alt<RanControlAck>(5, "control_ack", m.payload);
}

template <typename V>
void wire_fields(V& v, ExplanationRecord& r) {
  v.u64(1, "decision_id", r.decision_id);
  v.msg(2, "proposed", r.proposed);
  v.msg(3, "enforced", r.enforced);
  v.boolean(4, "replaced", r.replaced);
  v.str(5, "explanation", r.explanation);
}

template <typename V>
void wire_fields(V& v, DegradationRecord& r) {
  v.enumeration(1, "phase", r.phase, 3);
  v.i64(2, "detected_at", r.detected_at);
  v.u64(3, "missed_windows", r.missed_windows);
  v.u8(4, "tier_from", r.tier_from);
  v.u8(5, "tier_to", r.tier_to);
  v.str(6, "detail", r.detail);
}

// ---------------------------------------------------------------------------
// RicMessage convenience entry points (type/payload cross-validation).
// ---------------------------------------------------------------------------

/// Wire frame for one RIC message.
[[nodiscard]] std::vector<std::uint8_t> encode_message_frame(
    const RicMessage& message);

/// Decodes a RIC message frame, additionally verifying that the payload
/// alternative matches the declared message type.
[[nodiscard]] RicMessage decode_message_frame(
    std::span<const std::uint8_t> data);

}  // namespace explora::oran::wire
