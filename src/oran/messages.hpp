// RIC-internal messages exchanged over the RMR-style router: E2 KPM
// indications carrying KPI reports upstream, and RAN-control messages
// carrying slicing/scheduling decisions downstream (O-RAN WG3 E2SM-KPM /
// E2SM-RC analogues, reduced to the fields this system uses).
#pragma once

#include <cstdint>
#include <string>
#include <variant>

#include "netsim/kpi.hpp"
#include "netsim/types.hpp"

namespace explora::oran {

/// RMR message types (stand-ins for numeric RMR message IDs).
enum class MessageType : std::uint8_t {
  kKpmIndication = 0,   ///< E2SM-KPM styled KPI report, RAN -> RIC
  kRanControl = 1,      ///< E2SM-RC styled control action, xApp -> RAN
  kRanControlAck = 2,   ///< RIC_CONTROL_ACK: per-hop delivery confirmation
};

inline constexpr std::size_t kNumMessageTypes = 3;

[[nodiscard]] std::string to_string(MessageType type);

/// E2 Service Model KPM indication payload.
struct KpmIndication {
  netsim::KpiReport report;

  friend bool operator==(const KpmIndication&,
                         const KpmIndication&) = default;
};

/// E2 Service Model RAN-Control payload.
struct RanControl {
  netsim::SlicingControl control;
  /// Monotonic decision counter assigned by the emitting xApp.
  std::uint64_t decision_id = 0;
  /// Per-hop delivery sequence number assigned by the transmitting endpoint
  /// (ReliableControlSender). 0 = unsequenced legacy send: applied
  /// unconditionally, never ACKed, never deduplicated.
  std::uint64_t seq = 0;

  friend bool operator==(const RanControl&, const RanControl&) = default;
};

/// RIC_CONTROL_ACK payload: confirms receipt of the control carrying `seq`.
/// Routed back to the transmitting endpoint by (type, acker) routes.
struct RanControlAck {
  std::uint64_t seq = 0;

  friend bool operator==(const RanControlAck&,
                         const RanControlAck&) = default;
};

/// One RIC-internal message with its routing metadata.
struct RicMessage {
  MessageType type = MessageType::kKpmIndication;
  std::string sender;  ///< emitting endpoint name
  std::variant<KpmIndication, RanControl, RanControlAck> payload;

  [[nodiscard]] const KpmIndication& kpm() const {
    return std::get<KpmIndication>(payload);
  }
  [[nodiscard]] const RanControl& ran_control() const {
    return std::get<RanControl>(payload);
  }
  [[nodiscard]] const RanControlAck& control_ack() const {
    return std::get<RanControlAck>(payload);
  }

  friend bool operator==(const RicMessage&, const RicMessage&) = default;
};

/// Builds a KPM indication message.
[[nodiscard]] RicMessage make_kpm_indication(std::string sender,
                                             netsim::KpiReport report);

/// Builds a RAN-control message. `seq` = 0 keeps the legacy unsequenced
/// semantics (no ACK, no duplicate suppression).
[[nodiscard]] RicMessage make_ran_control(std::string sender,
                                          netsim::SlicingControl control,
                                          std::uint64_t decision_id,
                                          std::uint64_t seq = 0);

/// Builds a RIC_CONTROL_ACK for the control carrying `seq`.
[[nodiscard]] RicMessage make_ran_control_ack(std::string sender,
                                              std::uint64_t seq);

}  // namespace explora::oran
