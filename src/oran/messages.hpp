// RIC-internal messages exchanged over the RMR-style router: E2 KPM
// indications carrying KPI reports upstream, and RAN-control messages
// carrying slicing/scheduling decisions downstream (O-RAN WG3 E2SM-KPM /
// E2SM-RC analogues, reduced to the fields this system uses).
#pragma once

#include <cstdint>
#include <string>
#include <variant>

#include "netsim/kpi.hpp"
#include "netsim/types.hpp"

namespace explora::oran {

/// RMR message types (stand-ins for numeric RMR message IDs).
enum class MessageType : std::uint8_t {
  kKpmIndication = 0,  ///< E2SM-KPM styled KPI report, RAN -> RIC
  kRanControl = 1,     ///< E2SM-RC styled control action, xApp -> RAN
};

[[nodiscard]] std::string to_string(MessageType type);

/// E2 Service Model KPM indication payload.
struct KpmIndication {
  netsim::KpiReport report;
};

/// E2 Service Model RAN-Control payload.
struct RanControl {
  netsim::SlicingControl control;
  /// Monotonic decision counter assigned by the emitting xApp.
  std::uint64_t decision_id = 0;
};

/// One RIC-internal message with its routing metadata.
struct RicMessage {
  MessageType type = MessageType::kKpmIndication;
  std::string sender;  ///< emitting endpoint name
  std::variant<KpmIndication, RanControl> payload;

  [[nodiscard]] const KpmIndication& kpm() const {
    return std::get<KpmIndication>(payload);
  }
  [[nodiscard]] const RanControl& ran_control() const {
    return std::get<RanControl>(payload);
  }
};

/// Builds a KPM indication message.
[[nodiscard]] RicMessage make_kpm_indication(std::string sender,
                                             netsim::KpiReport report);

/// Builds a RAN-control message.
[[nodiscard]] RicMessage make_ran_control(std::string sender,
                                          netsim::SlicingControl control,
                                          std::uint64_t decision_id);

}  // namespace explora::oran
