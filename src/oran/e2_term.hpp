// E2 termination: the RIC-side endpoint of the E2 interface. Downstream it
// applies RAN-control messages to the gNB; upstream it wraps the gNB's KPI
// reports into KPM indications for the router.
#pragma once

#include <cstdint>

#include "netsim/gnb.hpp"
#include "oran/rmr.hpp"

namespace explora::oran {

class E2Termination final : public RmrEndpoint {
 public:
  /// @param gnb the controlled RAN node (non-owning, must outlive this).
  /// @param router used to publish indications (non-owning).
  E2Termination(netsim::Gnb& gnb, RmrRouter& router);

  [[nodiscard]] std::string_view endpoint_name() const noexcept override {
    return "e2term";
  }
  /// Applies RAN-control messages to the gNB.
  void on_message(const RicMessage& message) override;

  /// Runs one E2 report window on the gNB and publishes the KPM indication.
  void collect_and_publish();

  [[nodiscard]] std::uint64_t controls_applied() const noexcept {
    return controls_applied_;
  }
  [[nodiscard]] std::uint64_t indications_sent() const noexcept {
    return indications_sent_;
  }

 private:
  netsim::Gnb* gnb_;
  RmrRouter* router_;
  std::uint64_t controls_applied_ = 0;
  std::uint64_t indications_sent_ = 0;
};

}  // namespace explora::oran
