// E2 termination: the RIC-side endpoint of the E2 interface. Downstream it
// applies RAN-control messages to the gNB — rejecting malformed controls,
// deduplicating retransmissions on (sender, seq), and confirming
// sequenced deliveries with RIC_CONTROL_ACK. Upstream it wraps the gNB's
// KPI reports into KPM indications for the router.
#pragma once

#include <cstdint>
#include <set>
#include <string>
#include <utility>

#include "common/telemetry.hpp"
#include "netsim/gnb.hpp"
#include "oran/rmr.hpp"

namespace explora::oran {

class E2Termination final : public RmrEndpoint {
 public:
  /// @param gnb the controlled RAN node (non-owning, must outlive this).
  /// @param router used to publish indications (non-owning).
  E2Termination(netsim::Gnb& gnb, RmrRouter& router);

  [[nodiscard]] std::string_view endpoint_name() const noexcept override {
    return "e2term";
  }
  /// Applies RAN-control messages to the gNB. A control carrying seq > 0
  /// is ACKed back to its sender and applied at most once per (sender,
  /// seq) — a retransmitted duplicate is re-ACKed but not re-applied.
  /// Malformed controls (empty PRB mask, over-budget PRBs, unknown
  /// scheduler id) are rejected, counted, and never ACKed.
  void on_message(const RicMessage& message) override;

  /// Runs one E2 report window on the gNB and publishes the KPM indication.
  void collect_and_publish();

  [[nodiscard]] std::uint64_t controls_applied() const noexcept {
    return controls_applied_;
  }
  [[nodiscard]] std::uint64_t indications_sent() const noexcept {
    return indications_sent_;
  }
  /// Retransmitted controls suppressed by the (sender, seq) guard.
  [[nodiscard]] std::uint64_t duplicate_controls_ignored() const noexcept {
    return duplicate_controls_ignored_;
  }
  /// Malformed controls refused (satellite: reject, don't apply).
  [[nodiscard]] std::uint64_t controls_rejected() const noexcept {
    return controls_rejected_;
  }

 private:
  netsim::Gnb* gnb_;
  RmrRouter* router_;
  std::uint64_t controls_applied_ = 0;
  std::uint64_t indications_sent_ = 0;
  std::uint64_t duplicate_controls_ignored_ = 0;
  std::uint64_t controls_rejected_ = 0;
  /// (sender, seq) pairs already applied — the idempotency guard. seq 0
  /// (legacy unsequenced sends) is never recorded here.
  std::set<std::pair<std::string, std::uint64_t>> applied_seqs_;
  /// window_end of the most recent published indication; -1 before the
  /// first one. Basis for the control-loop-lag span.
  netsim::Tick last_indication_window_end_ = -1;

  // Telemetry (oran.e2term.*), bound at construction. control_loop_lag is
  // a span over gNB ticks from the last KPM indication's window end to the
  // moment the resulting control lands — the paper's KPM->control loop
  // latency, in simulated TTIs.
  telemetry::Counter* tm_controls_applied_;
  telemetry::Counter* tm_controls_rejected_;
  telemetry::Counter* tm_duplicate_controls_;
  telemetry::Counter* tm_indications_;
  telemetry::SpanStat* tm_control_loop_lag_;
};

}  // namespace explora::oran
