// The RIC Message Router (RMR) analogue: named endpoints plus a route
// table keyed by (message type, sender). This is the mechanism the paper
// uses to interpose the EXPLORA xApp on RAN-control messages without
// modifying the DRL xApp (§5.1, Fig. 6): re-pointing one route swaps the
// direct "DRL xApp -> E2 termination" path for
// "DRL xApp -> EXPLORA xApp -> E2 termination".
//
// Dispatch is synchronous but queued (breadth-first), so a handler that
// emits messages never recurses into other handlers.
//
// An optional LinkImpairments model makes the router lossy on purpose:
// per-(type, target) drop / delay / duplicate / reorder fates, decided in
// dispatch order from one seeded stream. Time for delayed messages is
// counted in *dispatch rounds* — one round per top-level send() — so a
// chaos run needs no wall clock and stays bit-reproducible.
#pragma once

#include <array>
#include <cstdint>
#include <deque>
#include <map>
#include <memory>
#include <optional>
#include <string>
#include <string_view>
#include <vector>

#include "common/telemetry.hpp"
#include "oran/impairments.hpp"
#include "oran/messages.hpp"

namespace explora::oran {

/// Anything addressable by the router (xApps, E2 termination, microservices).
class RmrEndpoint {
 public:
  virtual ~RmrEndpoint() = default;
  [[nodiscard]] virtual std::string_view endpoint_name() const noexcept = 0;
  /// Handles one delivered message; may send follow-ups via the router.
  virtual void on_message(const RicMessage& message) = 0;
};

/// Observer of successful deliveries (trace capture). The tap fires once
/// per delivered (message, target) pair, in delivery order, immediately
/// before the endpoint handler runs — so a recorded stream replayed into
/// an endpoint presents exactly the inputs the live endpoint saw.
class DeliveryTap {
 public:
  virtual ~DeliveryTap() = default;
  virtual void on_deliver(const RicMessage& message, std::string_view target,
                          std::uint64_t round) = 0;
};

class RmrRouter {
 public:
  RmrRouter();

  /// Registers an endpoint (non-owning; the endpoint must outlive the
  /// router's use). The endpoint name must be unique.
  void register_endpoint(RmrEndpoint& endpoint);
  [[nodiscard]] bool has_endpoint(std::string_view name) const;

  /// Adds a route: messages of `type` from `sender` go to `target`.
  /// sender "*" matches any sender without a more specific rule.
  void add_route(MessageType type, std::string sender, std::string target);
  /// Removes all routes for (type, sender).
  void remove_route(MessageType type, std::string_view sender);

  /// Enqueues and dispatches until the queue drains. Each top-level call
  /// (not re-entrant sends from handlers) advances the dispatch round and
  /// first releases any impairment-delayed messages that are due.
  void send(RicMessage message);

  /// Installs the impairment model (replacing any previous one) and
  /// returns it for policy configuration. The router owns the model.
  LinkImpairments& configure_impairments(std::uint64_t seed);
  /// The active impairment model, or nullptr for a perfect fabric.
  [[nodiscard]] LinkImpairments* impairments() noexcept {
    return impairments_.get();
  }
  [[nodiscard]] const LinkImpairments* impairments() const noexcept {
    return impairments_.get();
  }
  void clear_impairments() noexcept { impairments_.reset(); }

  /// Installs (or clears, with nullptr) the delivery tap. Non-owning; the
  /// tap must outlive the router's use or be cleared first.
  void set_delivery_tap(DeliveryTap* tap) noexcept { tap_ = tap; }
  [[nodiscard]] DeliveryTap* delivery_tap() const noexcept { return tap_; }

  /// Releases every still-held delayed message immediately and drains the
  /// queue (end-of-run cleanup for chaos harnesses).
  void flush_delayed();
  /// Messages currently held back by a delay fate.
  [[nodiscard]] std::size_t pending_delayed() const noexcept {
    return held_.size();
  }
  /// Top-level dispatch rounds completed so far.
  [[nodiscard]] std::uint64_t rounds() const noexcept { return round_; }

  /// Messages delivered per target endpoint (telemetry / tests).
  [[nodiscard]] std::uint64_t delivered_to(std::string_view target) const;
  /// Messages that matched no route or an unregistered target (dropped,
  /// like RMR — but loudly: each drop logs a warning).
  [[nodiscard]] std::uint64_t dropped() const noexcept { return dropped_; }
  /// Unroutable drops broken down by message type.
  [[nodiscard]] std::uint64_t dropped_by_type(MessageType type) const noexcept {
    return dropped_by_type_[static_cast<std::size_t>(type)];
  }

 private:
  struct RouteKey {
    MessageType type;
    std::string sender;
    [[nodiscard]] friend bool operator<(const RouteKey& a, const RouteKey& b) {
      if (a.type != b.type) return a.type < b.type;
      return a.sender < b.sender;
    }
  };

  /// One queued delivery. Routed envelopes (no target) are resolved
  /// against the route table and pass the impairment model; direct
  /// envelopes (router-reinjected: released delays, duplicates, reorders)
  /// go straight to their target.
  struct Envelope {
    RicMessage message;
    std::optional<std::string> direct_target;
  };

  struct HeldEnvelope {
    std::uint64_t release_round = 0;
    Envelope envelope;
  };

  [[nodiscard]] const std::vector<std::string>* find_targets(
      const RicMessage& message) const;
  void dispatch(Envelope envelope);
  void deliver(const RicMessage& message, const std::string& target);
  void drop_unroutable(const RicMessage& message, std::string_view reason);
  void release_due(std::uint64_t up_to_round);
  void drain();

  std::map<std::string, RmrEndpoint*, std::less<>> endpoints_;
  std::map<RouteKey, std::vector<std::string>> routes_;
  std::map<std::string, std::uint64_t, std::less<>> delivery_counts_;
  std::uint64_t dropped_ = 0;
  std::array<std::uint64_t, kNumMessageTypes> dropped_by_type_{};
  std::deque<Envelope> queue_;
  std::vector<HeldEnvelope> held_;
  std::unique_ptr<LinkImpairments> impairments_;
  DeliveryTap* tap_ = nullptr;
  std::uint64_t round_ = 0;
  bool dispatching_ = false;

  // Telemetry (oran.rmr.*), bound at construction.
  telemetry::Counter* tm_rounds_;
  telemetry::Counter* tm_delivered_;
  telemetry::Counter* tm_dropped_unroutable_;
  telemetry::Histogram* tm_queue_depth_;
  telemetry::Gauge* tm_held_delayed_;
};

}  // namespace explora::oran
