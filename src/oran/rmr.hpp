// The RIC Message Router (RMR) analogue: named endpoints plus a route
// table keyed by (message type, sender). This is the mechanism the paper
// uses to interpose the EXPLORA xApp on RAN-control messages without
// modifying the DRL xApp (§5.1, Fig. 6): re-pointing one route swaps the
// direct "DRL xApp -> E2 termination" path for
// "DRL xApp -> EXPLORA xApp -> E2 termination".
//
// Dispatch is synchronous but queued (breadth-first), so a handler that
// emits messages never recurses into other handlers.
#pragma once

#include <cstdint>
#include <deque>
#include <map>
#include <string>
#include <string_view>
#include <vector>

#include "oran/messages.hpp"

namespace explora::oran {

/// Anything addressable by the router (xApps, E2 termination, microservices).
class RmrEndpoint {
 public:
  virtual ~RmrEndpoint() = default;
  [[nodiscard]] virtual std::string_view endpoint_name() const noexcept = 0;
  /// Handles one delivered message; may send follow-ups via the router.
  virtual void on_message(const RicMessage& message) = 0;
};

class RmrRouter {
 public:
  /// Registers an endpoint (non-owning; the endpoint must outlive the
  /// router's use). The endpoint name must be unique.
  void register_endpoint(RmrEndpoint& endpoint);
  [[nodiscard]] bool has_endpoint(std::string_view name) const;

  /// Adds a route: messages of `type` from `sender` go to `target`.
  /// sender "*" matches any sender without a more specific rule.
  void add_route(MessageType type, std::string sender, std::string target);
  /// Removes all routes for (type, sender).
  void remove_route(MessageType type, std::string_view sender);

  /// Enqueues and dispatches until the queue drains.
  void send(RicMessage message);

  /// Messages delivered per target endpoint (telemetry / tests).
  [[nodiscard]] std::uint64_t delivered_to(std::string_view target) const;
  /// Messages that matched no route (silently dropped, like RMR).
  [[nodiscard]] std::uint64_t dropped() const noexcept { return dropped_; }

 private:
  struct RouteKey {
    MessageType type;
    std::string sender;
    [[nodiscard]] friend bool operator<(const RouteKey& a, const RouteKey& b) {
      if (a.type != b.type) return a.type < b.type;
      return a.sender < b.sender;
    }
  };

  [[nodiscard]] const std::vector<std::string>* find_targets(
      const RicMessage& message) const;
  void dispatch(const RicMessage& message);

  std::map<std::string, RmrEndpoint*, std::less<>> endpoints_;
  std::map<RouteKey, std::vector<std::string>> routes_;
  std::map<std::string, std::uint64_t, std::less<>> delivery_counts_;
  std::uint64_t dropped_ = 0;
  std::deque<RicMessage> queue_;
  bool dispatching_ = false;
};

}  // namespace explora::oran
