// The A1 interface and a minimal non-real-time RIC (Fig. 1 of the paper):
// the non-RT RIC watches long-term KPI summaries and pushes policy-based
// guidance — here, the operator *intent* that selects EXPLORA's steering
// strategy (§4.4: "previously identified intents to be fulfilled").
//
// A1 is a direct management interface between the two RICs (not an
// RMR-routed RAN message), so policies are delivered through the
// A1PolicyConsumer callback rather than the message router.
#pragma once

#include <cstdint>
#include <optional>
#include <string>

#include "common/stats.hpp"

namespace explora::oran {

/// High-level intents an operator can express; these map 1:1 onto
/// EXPLORA's EDBR strategies (plus observe-only).
enum class A1Intent : std::uint8_t {
  kObserveOnly = 0,     ///< explanations only, no action changes
  kMaxReward = 1,       ///< AR 1
  kMinReward = 2,       ///< AR 2
  kImproveBitrate = 3,  ///< AR 3
};

[[nodiscard]] std::string to_string(A1Intent intent);

/// One A1 policy instance.
struct A1Policy {
  std::uint64_t policy_id = 0;
  A1Intent intent = A1Intent::kObserveOnly;
  /// Observation window O handed to the steering strategy.
  std::size_t observation_window = 10;
};

/// Near-RT-side A1 termination: anything that accepts policy guidance.
class A1PolicyConsumer {
 public:
  virtual ~A1PolicyConsumer() = default;
  virtual void on_a1_policy(const A1Policy& policy) = 0;
};

/// A QoS-guard rApp: derives the intent from long-term KPI summaries.
/// When the URLLC buffer tail exceeds its ceiling, latency protection
/// (AR 2) wins; otherwise, when the eMBB bitrate median drops below its
/// floor, throughput recovery (AR 3) kicks in; else observe only.
class QosIntentRapp {
 public:
  struct Config {
    double embb_bitrate_floor_mbps = 3.0;
    double urllc_buffer_ceiling_bytes = 50'000.0;
    std::size_t observation_window = 10;
  };

  QosIntentRapp();
  explicit QosIntentRapp(Config config);

  [[nodiscard]] A1Intent evaluate(double embb_bitrate_median_mbps,
                                  double urllc_buffer_p90_bytes) const;
  [[nodiscard]] const Config& config() const noexcept { return config_; }

 private:
  Config config_;
};

/// Minimal non-RT RIC: hosts the rApp, aggregates KPI summaries arriving
/// over the O1-like reporting path, and pushes an A1 policy whenever the
/// derived intent changes.
class NonRtRic {
 public:
  explicit NonRtRic(QosIntentRapp rapp = QosIntentRapp{});

  /// Connects the near-RT consumer (e.g. the EXPLORA xApp). The current
  /// policy, if any, is re-announced on attach.
  void attach_consumer(A1PolicyConsumer& consumer);

  /// Feeds one long-term KPI summary (aggregated by the SMO/O1 path);
  /// may emit an A1 policy update.
  void report_kpi_summary(double embb_bitrate_median_mbps,
                          double urllc_buffer_p90_bytes);

  [[nodiscard]] std::optional<A1Policy> current_policy() const noexcept {
    return current_policy_;
  }
  [[nodiscard]] std::uint64_t policies_issued() const noexcept {
    return policies_issued_;
  }

 private:
  void issue(A1Intent intent);

  QosIntentRapp rapp_;
  A1PolicyConsumer* consumer_ = nullptr;
  std::optional<A1Policy> current_policy_;
  std::uint64_t policies_issued_ = 0;
};

}  // namespace explora::oran
