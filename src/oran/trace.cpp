#include "oran/trace.hpp"

#include <cstdio>
#include <utility>

#include "common/format.hpp"
#include "oran/wire.hpp"

namespace explora::oran::wire {
namespace {

/// Trace-file header payload (field ids are frozen wire contract).
struct TraceHeader {
  std::string label;
};

}  // namespace

template <typename V>
void wire_fields(V& v, TraceHeader& h) {
  v.str(1, "label", h.label);
}

template <typename V>
void wire_fields(V& v, TraceFrame& f) {
  v.i64(1, "tick", f.tick);
  v.u64(2, "round", f.round);
  v.str(3, "target", f.target);
  v.blob(4, "message", f.message);
}

}  // namespace explora::oran::wire

namespace explora::oran {

using common::SerializeError;

RicMessage TraceFrame::decode() const {
  return wire::decode_message_frame(message);
}

TraceRecorder::TraceRecorder(std::string label) : label_(std::move(label)) {}

void TraceRecorder::on_deliver(const RicMessage& message,
                               std::string_view target, std::uint64_t round) {
  TraceFrame frame;
  frame.tick = tick_source_ ? tick_source_() : 0;
  frame.round = round;
  frame.target.assign(target);
  frame.message = wire::encode_message_frame(message);
  message_bytes_ += frame.message.size();
  frames_.push_back(std::move(frame));
}

namespace {

/// Appends one length-prefixed tagged-field body.
template <typename T>
void append_sized_body(wire::Writer& writer, T& value) {
  wire::Writer body;
  wire::Encoder encoder(body);
  wire_fields(encoder, value);
  writer.varint(body.size());
  writer.raw(body.buffer());
}

/// Reads one length-prefixed body and decodes it into `out`.
template <typename T>
void read_sized_body(wire::Reader& reader, T& out) {
  const auto bytes = reader.bytes();
  wire::Reader body(bytes);
  wire::decode_fields(body, out);
}

}  // namespace

std::vector<std::uint8_t> TraceRecorder::serialize() const {
  wire::Writer writer;
  writer.byte(static_cast<std::uint8_t>(kTraceMagic & 0xFF));
  writer.byte(static_cast<std::uint8_t>((kTraceMagic >> 8) & 0xFF));
  writer.byte(static_cast<std::uint8_t>((kTraceMagic >> 16) & 0xFF));
  writer.byte(static_cast<std::uint8_t>((kTraceMagic >> 24) & 0xFF));
  writer.byte(kTraceMajor);
  writer.byte(kTraceMinor);
  wire::TraceHeader header{label_};
  append_sized_body(writer, header);
  for (const TraceFrame& frame : frames_) {
    append_sized_body(writer, const_cast<TraceFrame&>(frame));
  }
  return std::move(writer).take();
}

void TraceRecorder::save(const std::string& path) const {
  const std::vector<std::uint8_t> bytes = serialize();
  const std::string tmp = path + ".tmp";
  std::FILE* file = std::fopen(tmp.c_str(), "wb");
  if (file == nullptr) {
    throw SerializeError(
        common::format("cannot open trace file '{}' for writing", tmp));
  }
  const std::size_t written =
      bytes.empty() ? 0 : std::fwrite(bytes.data(), 1, bytes.size(), file);
  const bool flushed = std::fclose(file) == 0;
  if (written != bytes.size() || !flushed) {
    std::remove(tmp.c_str());
    throw SerializeError(
        common::format("short write to trace file '{}'", tmp));
  }
  if (std::rename(tmp.c_str(), path.c_str()) != 0) {
    std::remove(tmp.c_str());
    throw SerializeError(
        common::format("cannot move trace file into place at '{}'", path));
  }
}

TraceReplaySource TraceReplaySource::parse(std::span<const std::uint8_t> data) {
  wire::Reader reader(data);
  std::uint32_t magic = 0;
  for (int shift = 0; shift < 32; shift += 8) {
    magic |= static_cast<std::uint32_t>(reader.byte()) << shift;
  }
  if (magic != kTraceMagic) {
    throw SerializeError("bad trace magic (not an .etrace stream)");
  }
  const std::uint8_t major = reader.byte();
  [[maybe_unused]] const std::uint8_t minor = reader.byte();
  if (major != kTraceMajor) {
    throw SerializeError(common::format(
        "incompatible trace format: file has major version {}, this reader "
        "supports major version {}",
        major, kTraceMajor));
  }
  TraceReplaySource out;
  wire::TraceHeader header;
  read_sized_body(reader, header);
  out.label_ = std::move(header.label);
  while (!reader.at_end()) {
    TraceFrame frame;
    read_sized_body(reader, frame);
    out.frames_.push_back(std::move(frame));
  }
  return out;
}

TraceReplaySource TraceReplaySource::load(const std::string& path) {
  std::FILE* file = std::fopen(path.c_str(), "rb");
  if (file == nullptr) {
    throw SerializeError(
        common::format("cannot open trace file '{}' for reading", path));
  }
  std::vector<std::uint8_t> bytes;
  std::uint8_t chunk[4096];
  std::size_t n = 0;
  while ((n = std::fread(chunk, 1, sizeof(chunk), file)) > 0) {
    bytes.insert(bytes.end(), chunk, chunk + n);
  }
  const bool read_error = std::ferror(file) != 0;
  std::fclose(file);
  if (read_error) {
    throw SerializeError(
        common::format("error reading trace file '{}'", path));
  }
  return parse(bytes);
}

std::vector<const TraceFrame*> TraceReplaySource::frames_for(
    std::string_view target) const {
  std::vector<const TraceFrame*> matches;
  for (const TraceFrame& frame : frames_) {
    if (frame.target == target) matches.push_back(&frame);
  }
  return matches;
}

std::size_t TraceReplaySource::replay_into(
    RmrEndpoint& endpoint, std::string_view target,
    const std::function<void(std::int64_t)>& on_tick) const {
  std::size_t delivered = 0;
  for (const TraceFrame& frame : frames_) {
    if (frame.target != target) continue;
    if (on_tick) on_tick(frame.tick);
    endpoint.on_message(frame.decode());
    ++delivered;
  }
  return delivered;
}

}  // namespace explora::oran
