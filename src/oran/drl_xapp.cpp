#include "oran/drl_xapp.hpp"

#include "common/contracts.hpp"

namespace explora::oran {

DrlXapp::DrlXapp(Config config, const ml::KpiNormalizer& normalizer,
                 const ml::Autoencoder& autoencoder,
                 const ml::PolicyAgent& agent, RmrRouter& router)
    : config_(std::move(config)),
      normalizer_(&normalizer),
      autoencoder_(&autoencoder),
      agent_(&agent),
      router_(&router),
      rng_(config_.seed) {
  EXPLORA_EXPECTS(config_.reports_per_decision > 0);
}

void DrlXapp::on_message(const RicMessage& message) {
  if (message.type != MessageType::kKpmIndication) return;
  window_.push(message.kpm().report);
  ++indications_seen_;
  if (window_.ready() &&
      indications_seen_ % config_.reports_per_decision == 0) {
    decide();
  }
}

void DrlXapp::decide() {
  const ml::Vector input = window_.flatten(*normalizer_);
  last_latent_ = autoencoder_->encode(input);
  if (config_.stochastic) {
    std::array<double, ml::kNumHeads> temperatures{};
    temperatures.fill(config_.sched_temperature);
    temperatures[0] = config_.prb_temperature;
    last_decision_ = agent_->act(last_latent_, rng_, temperatures);
  } else {
    last_decision_ = agent_->act_greedy(last_latent_);
  }
  ++decision_id_;
  router_->send(make_ran_control(config_.name,
                                 ml::to_control(last_decision_->action),
                                 decision_id_));
}

}  // namespace explora::oran
