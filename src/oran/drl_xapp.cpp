#include "oran/drl_xapp.hpp"

#include "common/contracts.hpp"

namespace explora::oran {

DrlXapp::DrlXapp(Config config, const ml::KpiNormalizer& normalizer,
                 const ml::Autoencoder& autoencoder,
                 const ml::PolicyAgent& agent, RmrRouter& router)
    : config_(std::move(config)),
      normalizer_(&normalizer),
      autoencoder_(&autoencoder),
      agent_(&agent),
      router_(&router),
      rng_(config_.seed) {
  EXPLORA_EXPECTS(config_.reports_per_decision > 0);
  telemetry::Scope scope("oran.drl_xapp");
  tm_indications_ = &scope.counter("indications");
  tm_decisions_ = &scope.counter("decisions");
  if (config_.reliable.has_value()) {
    reliable_.emplace(*config_.reliable, router, config_.name);
  }
}

void DrlXapp::on_message(const RicMessage& message) {
  if (message.type == MessageType::kRanControlAck) {
    if (reliable_.has_value()) reliable_->on_ack(message.control_ack().seq);
    return;
  }
  if (message.type != MessageType::kKpmIndication) return;
  // Each report window is one reliable-delivery tick: overdue unACKed
  // controls are resent here, at window cadence, not from a wall clock.
  if (reliable_.has_value()) reliable_->on_tick();
  window_.push(message.kpm().report);
  ++indications_seen_;
  tm_indications_->add(1);
  if (window_.ready() &&
      indications_seen_ % config_.reports_per_decision == 0) {
    decide();
  }
}

void DrlXapp::decide() {
  const ml::Vector input = window_.flatten(*normalizer_);
  last_latent_ = autoencoder_->encode(input);
  if (config_.stochastic) {
    std::array<double, ml::kNumHeads> temperatures{};
    temperatures.fill(config_.sched_temperature);
    temperatures[0] = config_.prb_temperature;
    last_decision_ = agent_->act(last_latent_, rng_, temperatures);
  } else {
    last_decision_ = agent_->act_greedy(last_latent_);
  }
  ++decision_id_;
  tm_decisions_->add(1);
  const netsim::SlicingControl control = ml::to_control(last_decision_->action);
  if (reliable_.has_value()) {
    reliable_->send(control, decision_id_);
  } else {
    router_->send(make_ran_control(config_.name, control, decision_id_));
  }
}

}  // namespace explora::oran
