// Reliable per-hop delivery for RAN-control messages over the lossy RMR
// fabric: the transmitting endpoint assigns a monotonic sequence number,
// tracks the message until the next hop returns a RIC_CONTROL_ACK, and
// resends on timeout with exponential backoff and a bounded retry budget.
//
// Time is counted in *ticks*, not wall clock: the owning xApp calls
// on_tick() once per E2 report window (each KPM indication it receives),
// so retransmission timing is deterministic and seed-reproducible. The
// receiving hop deduplicates on (sender, seq) — the apply-exactly-once
// guard — and re-ACKs duplicates so a lost ACK does not strand the sender.
#pragma once

#include <cstdint>
#include <map>
#include <string>

#include "common/telemetry.hpp"
#include "netsim/types.hpp"
#include "oran/rmr.hpp"

namespace explora::oran {

class ReliableControlSender {
 public:
  struct Config {
    /// Ticks (report windows) to wait for an ACK before the first resend.
    std::uint32_t ack_timeout_ticks = 2;
    /// Resends per control before giving up.
    std::uint32_t max_retries = 6;
    /// Timeout multiplier applied after every resend (exponential backoff).
    std::uint32_t backoff_factor = 2;
  };

  /// @param endpoint name stamped as the sender of (re)transmissions.
  ReliableControlSender(Config config, RmrRouter& router,
                        std::string endpoint);

  /// Assigns the next sequence number, sends the control, and tracks it
  /// until ACKed or expired. Returns the assigned seq.
  std::uint64_t send(netsim::SlicingControl control, std::uint64_t decision_id);

  /// Handles a RIC_CONTROL_ACK for `seq` (unknown seqs are ignored — the
  /// ACK of an already-expired or duplicate-covered transmission).
  void on_ack(std::uint64_t seq);

  /// Advances reliable-delivery time by one report window: overdue
  /// in-flight controls are resent (or expired once out of retries).
  void on_tick();

  [[nodiscard]] std::size_t in_flight() const noexcept {
    return in_flight_.size();
  }
  [[nodiscard]] std::uint64_t sent() const noexcept { return sent_; }
  [[nodiscard]] std::uint64_t acked() const noexcept { return acked_; }
  [[nodiscard]] std::uint64_t retransmissions() const noexcept {
    return retransmissions_;
  }
  /// Controls abandoned after exhausting the retry budget.
  [[nodiscard]] std::uint64_t expired() const noexcept { return expired_; }

 private:
  struct InFlight {
    netsim::SlicingControl control;
    std::uint64_t decision_id = 0;
    std::uint32_t ticks_waited = 0;
    std::uint32_t timeout = 0;
    std::uint32_t retries = 0;
    std::uint32_t total_ticks = 0;  ///< ticks since first send (ACK latency)
  };

  Config config_;
  RmrRouter* router_;
  std::string endpoint_;
  std::map<std::uint64_t, InFlight> in_flight_;  ///< keyed by seq
  std::uint64_t next_seq_ = 1;
  std::uint64_t sent_ = 0;
  std::uint64_t acked_ = 0;
  std::uint64_t retransmissions_ = 0;
  std::uint64_t expired_ = 0;

  // Telemetry (oran.reliable.*), bound at construction. ack_latency is a
  // span over report-window ticks from first transmission to ACK.
  telemetry::Counter* tm_sent_;
  telemetry::Counter* tm_acked_;
  telemetry::Counter* tm_retransmissions_;
  telemetry::Counter* tm_expired_;
  telemetry::SpanStat* tm_ack_latency_;
};

}  // namespace explora::oran
