#include "oran/reliable.hpp"

#include <vector>

#include "common/contracts.hpp"
#include "common/log.hpp"

namespace explora::oran {

ReliableControlSender::ReliableControlSender(Config config, RmrRouter& router,
                                             std::string endpoint)
    : config_(config), router_(&router), endpoint_(std::move(endpoint)) {
  EXPLORA_EXPECTS(config_.ack_timeout_ticks >= 1);
  EXPLORA_EXPECTS(config_.backoff_factor >= 1);
  EXPLORA_EXPECTS(!endpoint_.empty());
  telemetry::Scope scope("oran.reliable");
  tm_sent_ = &scope.counter("sent");
  tm_acked_ = &scope.counter("acked");
  tm_retransmissions_ = &scope.counter("retransmissions");
  tm_expired_ = &scope.counter("expired");
  tm_ack_latency_ = &scope.span("ack_latency_ticks");
}

std::uint64_t ReliableControlSender::send(netsim::SlicingControl control,
                                          std::uint64_t decision_id) {
  const std::uint64_t seq = next_seq_++;
  in_flight_.emplace(seq, InFlight{control, decision_id, 0,
                                   config_.ack_timeout_ticks, 0});
  ++sent_;
  tm_sent_->add(1);
  // Dispatch is synchronous: a fault-free hop ACKs within this call and
  // on_ack() erases the entry before send() returns.
  router_->send(make_ran_control(endpoint_, control, decision_id, seq));
  return seq;
}

void ReliableControlSender::on_ack(std::uint64_t seq) {
  const auto it = in_flight_.find(seq);
  if (it == in_flight_.end()) return;  // expired or duplicate ACK
  tm_ack_latency_->record(static_cast<std::int64_t>(it->second.total_ticks));
  in_flight_.erase(it);
  ++acked_;
  tm_acked_->add(1);
}

void ReliableControlSender::on_tick() {
  // Collect first, resend after: a resend that reaches the hop ACKs
  // synchronously, and on_ack() mutates in_flight_ mid-iteration.
  std::vector<std::uint64_t> overdue;
  std::vector<std::uint64_t> dead;
  for (auto& [seq, entry] : in_flight_) {
    ++entry.total_ticks;
    if (++entry.ticks_waited < entry.timeout) continue;
    if (entry.retries >= config_.max_retries) {
      dead.push_back(seq);
      continue;
    }
    entry.ticks_waited = 0;
    entry.timeout *= config_.backoff_factor;
    ++entry.retries;
    overdue.push_back(seq);
  }
  for (const std::uint64_t seq : dead) {
    const auto it = in_flight_.find(seq);
    common::logf(common::LogLevel::kWarn, "reliable",
                 "{} gave up on control seq {} (decision {}) after {} retries",
                 endpoint_, seq, it->second.decision_id, config_.max_retries);
    in_flight_.erase(it);
    ++expired_;
    tm_expired_->add(1);
  }
  for (const std::uint64_t seq : overdue) {
    const auto it = in_flight_.find(seq);
    if (it == in_flight_.end()) continue;  // ACKed by an earlier resend
    ++retransmissions_;
    tm_retransmissions_->add(1);
    router_->send(make_ran_control(endpoint_, it->second.control,
                                   it->second.decision_id, seq));
  }
}

}  // namespace explora::oran
