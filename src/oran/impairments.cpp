#include "oran/impairments.hpp"

#include "common/contracts.hpp"

namespace explora::oran {

namespace {

[[nodiscard]] bool valid_probability(double p) noexcept {
  return p >= 0.0 && p <= 1.0;
}

}  // namespace

LinkImpairments::LinkImpairments(std::uint64_t seed)
    : rng_(common::Rng(seed).fork("impairments")) {
  telemetry::Scope scope("oran.impairments");
  tm_dropped_ = &scope.counter("dropped");
  tm_delayed_ = &scope.counter("delayed");
  tm_duplicated_ = &scope.counter("duplicated");
  tm_reordered_ = &scope.counter("reordered");
}

void LinkImpairments::set_policy(MessageType type, std::string target,
                                 Policy policy) {
  EXPLORA_EXPECTS(valid_probability(policy.drop));
  EXPLORA_EXPECTS(valid_probability(policy.delay));
  EXPLORA_EXPECTS(valid_probability(policy.duplicate));
  EXPLORA_EXPECTS(valid_probability(policy.reorder));
  EXPLORA_EXPECTS(policy.delay_rounds >= 1);
  policies_[PolicyKey{type, std::move(target)}] = policy;
}

const LinkImpairments::Policy* LinkImpairments::policy_for(
    MessageType type, std::string_view target) const {
  auto it = policies_.find(PolicyKey{type, std::string(target)});
  if (it != policies_.end()) return &it->second;
  it = policies_.find(PolicyKey{type, "*"});
  if (it != policies_.end()) return &it->second;
  return nullptr;
}

LinkImpairments::Fate LinkImpairments::decide(MessageType type,
                                              std::string_view target) {
  const Policy* policy = policy_for(type, target);
  if (policy == nullptr || policy->perfect()) return Fate::kDeliver;
  const auto index = static_cast<std::size_t>(type);
  // All four faults draw unconditionally so the stream consumes exactly
  // four variates per impaired delivery regardless of the outcome.
  const bool drop = rng_.bernoulli(policy->drop);
  const bool delay = rng_.bernoulli(policy->delay);
  const bool duplicate = rng_.bernoulli(policy->duplicate);
  const bool reorder = rng_.bernoulli(policy->reorder);
  if (drop) {
    ++dropped_[index];
    tm_dropped_->add(1);
    return Fate::kDrop;
  }
  if (delay) {
    ++delayed_[index];
    tm_delayed_->add(1);
    return Fate::kDelay;
  }
  if (duplicate) {
    ++duplicated_[index];
    tm_duplicated_->add(1);
    return Fate::kDuplicate;
  }
  if (reorder) {
    ++reordered_[index];
    tm_reordered_->add(1);
    return Fate::kReorder;
  }
  return Fate::kDeliver;
}

std::uint32_t LinkImpairments::delay_rounds(MessageType type,
                                            std::string_view target) const {
  const Policy* policy = policy_for(type, target);
  return policy == nullptr ? 1 : policy->delay_rounds;
}

}  // namespace explora::oran
