#include "oran/a1.hpp"

#include "common/contracts.hpp"

namespace explora::oran {

std::string to_string(A1Intent intent) {
  switch (intent) {
    case A1Intent::kObserveOnly: return "observe-only";
    case A1Intent::kMaxReward: return "max-reward";
    case A1Intent::kMinReward: return "min-reward";
    case A1Intent::kImproveBitrate: return "improve-bitrate";
  }
  return "?";
}

QosIntentRapp::QosIntentRapp() : QosIntentRapp(Config{}) {}

QosIntentRapp::QosIntentRapp(Config config) : config_(config) {
  EXPLORA_EXPECTS(config.embb_bitrate_floor_mbps >= 0.0);
  EXPLORA_EXPECTS(config.urllc_buffer_ceiling_bytes >= 0.0);
}

A1Intent QosIntentRapp::evaluate(double embb_bitrate_median_mbps,
                                 double urllc_buffer_p90_bytes) const {
  if (urllc_buffer_p90_bytes > config_.urllc_buffer_ceiling_bytes) {
    return A1Intent::kMinReward;  // protect URLLC latency first
  }
  if (embb_bitrate_median_mbps < config_.embb_bitrate_floor_mbps) {
    return A1Intent::kImproveBitrate;
  }
  return A1Intent::kObserveOnly;
}

NonRtRic::NonRtRic(QosIntentRapp rapp) : rapp_(std::move(rapp)) {}

void NonRtRic::attach_consumer(A1PolicyConsumer& consumer) {
  consumer_ = &consumer;
  if (current_policy_.has_value()) {
    consumer_->on_a1_policy(*current_policy_);
  }
}

void NonRtRic::issue(A1Intent intent) {
  A1Policy policy;
  policy.policy_id = ++policies_issued_;
  policy.intent = intent;
  policy.observation_window = rapp_.config().observation_window;
  current_policy_ = policy;
  if (consumer_ != nullptr) consumer_->on_a1_policy(policy);
}

void NonRtRic::report_kpi_summary(double embb_bitrate_median_mbps,
                                  double urllc_buffer_p90_bytes) {
  const A1Intent intent =
      rapp_.evaluate(embb_bitrate_median_mbps, urllc_buffer_p90_bytes);
  if (!current_policy_.has_value() || current_policy_->intent != intent) {
    issue(intent);
  }
}

}  // namespace explora::oran
