#include "oran/messages.hpp"

namespace explora::oran {

std::string to_string(MessageType type) {
  switch (type) {
    case MessageType::kKpmIndication: return "KPM_INDICATION";
    case MessageType::kRanControl: return "RAN_CONTROL";
    case MessageType::kRanControlAck: return "RIC_CONTROL_ACK";
  }
  return "?";
}

RicMessage make_kpm_indication(std::string sender, netsim::KpiReport report) {
  RicMessage msg;
  msg.type = MessageType::kKpmIndication;
  msg.sender = std::move(sender);
  msg.payload = KpmIndication{std::move(report)};
  return msg;
}

RicMessage make_ran_control(std::string sender, netsim::SlicingControl control,
                            std::uint64_t decision_id, std::uint64_t seq) {
  RicMessage msg;
  msg.type = MessageType::kRanControl;
  msg.sender = std::move(sender);
  msg.payload = RanControl{control, decision_id, seq};
  return msg;
}

RicMessage make_ran_control_ack(std::string sender, std::uint64_t seq) {
  RicMessage msg;
  msg.type = MessageType::kRanControlAck;
  msg.sender = std::move(sender);
  msg.payload = RanControlAck{seq};
  return msg;
}

}  // namespace explora::oran
