// The RIC's data repository plus its data-access microservice facade
// (Fig. 6): stores E2 KPI history for xApps to query, and archives the
// (state, action, explanation) tuples the EXPLORA xApp produces for later
// quality assurance / dataset generation.
#pragma once

#include <cstdint>
#include <deque>
#include <string>
#include <vector>

#include "netsim/kpi.hpp"
#include "oran/rmr.hpp"

namespace explora::oran {

/// One archived explanation record (paper §5.1).
struct ExplanationRecord {
  std::uint64_t decision_id = 0;
  netsim::SlicingControl proposed;   ///< action suggested by the DRL agent
  netsim::SlicingControl enforced;   ///< action actually sent to the RAN
  bool replaced = false;
  std::string explanation;           ///< human-readable rationale

  friend bool operator==(const ExplanationRecord&,
                         const ExplanationRecord&) = default;
};

/// One archived degradation event from the EXPLORA xApp's unified
/// degradation ladder: staleness entry when the KPM indication stream
/// gaps, recovery when a full clean window has been observed again, and
/// serving-tier demotions/promotions from the explanation-serving ladder
/// (load pressure or the model-eval circuit breaker). One archive, one
/// record shape, regardless of which axis moved.
struct DegradationRecord {
  enum class Phase : std::uint8_t {
    kEnter = 0,    ///< staleness watchdog engaged (KPM gap)
    kRecover = 1,  ///< staleness cleared (clean streak complete)
    kDemote = 2,   ///< serving tier demoted (load/breaker)
    kPromote = 3,  ///< serving tier promoted (load/breaker)
  };
  Phase phase = Phase::kEnter;
  netsim::Tick detected_at = 0;        ///< window_end of the triggering report
  std::uint64_t missed_windows = 0;    ///< estimated indications lost (enter)
  /// Serving-tier movement (kDemote/kPromote only); values index
  /// xai::serving::Tier — stored as raw bytes because oran sits beside,
  /// not above, xai in the module DAG.
  std::uint8_t tier_from = 0;
  std::uint8_t tier_to = 0;
  std::string detail;                  ///< human-readable context

  friend bool operator==(const DegradationRecord&,
                         const DegradationRecord&) = default;
};

[[nodiscard]] std::string to_string(DegradationRecord::Phase phase);

class DataRepository final : public RmrEndpoint {
 public:
  /// @param history_capacity maximum retained KPI reports (ring buffer).
  explicit DataRepository(std::size_t history_capacity = 8192);

  [[nodiscard]] std::string_view endpoint_name() const noexcept override {
    return "data_repo";
  }
  /// Subscribes to KPM indications (ignores other message types).
  void on_message(const RicMessage& message) override;

  /// Data-access queries.
  [[nodiscard]] std::size_t report_count() const noexcept {
    return reports_.size();
  }
  /// Most recent `count` reports, oldest first.
  [[nodiscard]] std::vector<netsim::KpiReport> latest_reports(
      std::size_t count) const;
  [[nodiscard]] const std::deque<netsim::KpiReport>& all_reports()
      const noexcept {
    return reports_;
  }

  /// Explanation archive.
  void store_explanation(ExplanationRecord record);
  [[nodiscard]] const std::vector<ExplanationRecord>& explanations()
      const noexcept {
    return explanations_;
  }

  /// Degradation-event archive (quality assurance: when and why the
  /// EXPLORA xApp stopped trusting the telemetry stream).
  void store_degradation(DegradationRecord record);
  [[nodiscard]] const std::vector<DegradationRecord>& degradations()
      const noexcept {
    return degradations_;
  }

 private:
  std::size_t capacity_;
  std::deque<netsim::KpiReport> reports_;
  std::vector<ExplanationRecord> explanations_;
  std::vector<DegradationRecord> degradations_;
};

}  // namespace explora::oran
