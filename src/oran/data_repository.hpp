// The RIC's data repository plus its data-access microservice facade
// (Fig. 6): stores E2 KPI history for xApps to query, and archives the
// (state, action, explanation) tuples the EXPLORA xApp produces for later
// quality assurance / dataset generation.
#pragma once

#include <cstdint>
#include <deque>
#include <string>
#include <vector>

#include "netsim/kpi.hpp"
#include "oran/rmr.hpp"

namespace explora::oran {

/// One archived explanation record (paper §5.1).
struct ExplanationRecord {
  std::uint64_t decision_id = 0;
  netsim::SlicingControl proposed;   ///< action suggested by the DRL agent
  netsim::SlicingControl enforced;   ///< action actually sent to the RAN
  bool replaced = false;
  std::string explanation;           ///< human-readable rationale
};

class DataRepository final : public RmrEndpoint {
 public:
  /// @param history_capacity maximum retained KPI reports (ring buffer).
  explicit DataRepository(std::size_t history_capacity = 8192);

  [[nodiscard]] std::string_view endpoint_name() const noexcept override {
    return "data_repo";
  }
  /// Subscribes to KPM indications (ignores other message types).
  void on_message(const RicMessage& message) override;

  /// Data-access queries.
  [[nodiscard]] std::size_t report_count() const noexcept {
    return reports_.size();
  }
  /// Most recent `count` reports, oldest first.
  [[nodiscard]] std::vector<netsim::KpiReport> latest_reports(
      std::size_t count) const;
  [[nodiscard]] const std::deque<netsim::KpiReport>& all_reports()
      const noexcept {
    return reports_;
  }

  /// Explanation archive.
  void store_explanation(ExplanationRecord record);
  [[nodiscard]] const std::vector<ExplanationRecord>& explanations()
      const noexcept {
    return explanations_;
  }

 private:
  std::size_t capacity_;
  std::deque<netsim::KpiReport> reports_;
  std::vector<ExplanationRecord> explanations_;
};

}  // namespace explora::oran
