// Reproduces Fig. 8 and Table 2: the decision tree built on EXPLORA's
// explanations (transition features -> transition class) for the HT agent,
// its root-to-leaf decision paths, and the concise human-readable summary
// of the agent's behaviour.
#include <cstdio>

#include "bench_common.hpp"
#include "explora/distill.hpp"

int main() {
  using namespace explora;
  bench::print_header(
      "Fig. 8 + Table 2 - DT on EXPLORA explanations, HT agent");

  const auto result = bench::run_standard(
      core::AgentProfile::kHighThroughput, netsim::TrafficProfile::kTrf1, 6);

  core::KnowledgeDistiller distiller;
  const core::DistilledKnowledge knowledge =
      distiller.distill(result.transitions);

  std::printf("Decision tree over the (v -> transition class) pairs "
              "(fit accuracy %.1f%%):\n\n",
              knowledge.tree_accuracy * 100.0);
  std::fputs(knowledge.rules.c_str(), stdout);

  std::printf("\nDecision paths (tracing root to leaves generates the "
              "knowledge):\n");
  for (const auto& path : knowledge.decision_paths) {
    std::printf("  %s\n", path.c_str());
  }

  std::printf("\nTable 2 - summary of explanations for the HT agent:\n");
  std::fputs(knowledge.summary_text.c_str(), stdout);
  std::printf(
      "\nPaper's Table 2 for comparison:\n"
      "  Same-PRB: sustains tx_bitrate with minor variations in the other "
      "KPIs\n"
      "  Same-Sched: diminishes tx_bitrate and diminishes tx_packets\n"
      "  Distinct: produces large DWL_buffer_size variations\n"
      "  Self: no change in KPIs\n");
  return 0;
}
