// Reproduces Appendix B (Figs. 11-12): the attributed-graph construction
// trace — three consecutive steps with nodes, attributes and edges spelled
// out — and the structure of the full graph for the HT agent on TRF1.
#include <cstdio>

#include "bench_common.hpp"
#include "common/format.hpp"

namespace {

using namespace explora;

void print_node_attributes(const core::AttributedGraph& graph,
                           const netsim::SlicingControl& action) {
  const core::ActionNode* node = graph.find(action);
  if (node == nullptr) {
    std::printf("    <not in G>\n");
    return;
  }
  for (std::size_t k = 0; k < netsim::kNumKpis; ++k) {
    const auto kpi = static_cast<netsim::Kpi>(k);
    std::string line =
        common::format("    {:<16}", netsim::to_string(kpi) + ":");
    for (std::size_t l = 0; l < netsim::kNumSlices; ++l) {
      const auto slice = static_cast<netsim::Slice>(l);
      line += common::format(" SL{} avg={:.1f} (n={})", l,
                             node->attribute_mean(kpi, slice),
                             node->attributes[core::attribute_index(kpi,
                                                                    slice)]
                                 .seen());
    }
    std::printf("%s\n", line.c_str());
  }
  // Appendix-B attribute form: a few retained per-user samples per slice.
  std::string users = "    per-user sketch: ";
  for (std::size_t l = 0; l < netsim::kNumSlices; ++l) {
    const auto& store = node->user_attributes[core::attribute_index(
        netsim::Kpi::kTxPackets, static_cast<netsim::Slice>(l))];
    users += common::format("SL{} tx_packets [", l);
    const auto samples = store.samples();
    for (std::size_t i = 0; i < samples.size() && i < 2; ++i) {
      if (i > 0) users += ", ";
      users += common::format("{:.0f}", samples[i]);
    }
    users += "] ";
  }
  std::printf("%s\n", users.c_str());
}

}  // namespace

int main() {
  bench::print_header(
      "Fig. 11/12 - attributed-graph construction and structure, HT, TRF1");

  const auto result = bench::run_standard(
      core::AgentProfile::kHighThroughput, netsim::TrafficProfile::kTrf1, 6);
  const auto& graph = result.graph;

  // ---- Fig. 11: three consecutive steps ---------------------------------
  std::printf("Three consecutive decision steps (t0, t1, t2) and the nodes\n"
              "they touch (attributes store the KPI distributions observed\n"
              "after each action was enforced):\n\n");
  for (std::size_t t = 0; t < 3 && t < result.decisions.size(); ++t) {
    const auto& action = result.decisions[t].enforced;
    std::printf("  t%zu: action %s %s\n", t, action.to_string().c_str(),
                graph.edge_visits(action, action) > 0 ||
                        graph.find(action)->visits > 1
                    ? "(node reused, attributes updated)"
                    : "(new node)");
    print_node_attributes(graph, action);
  }

  // ---- Fig. 12: the full graph ------------------------------------------
  std::printf("\nFull graph after %zu decisions:\n", result.decisions.size());
  std::fputs(graph.describe(12).c_str(), stdout);

  std::size_t self_edges = 0;
  std::uint64_t heaviest = 0;
  for (const auto& [from, to, count] : graph.edges()) {
    if (from == to) ++self_edges;
    heaviest = std::max(heaviest, count);
  }
  std::printf(
      "  self-loops: %zu, heaviest edge weight: %llu, avg out-degree: %.2f\n",
      self_edges, static_cast<unsigned long long>(heaviest),
      graph.node_count() == 0
          ? 0.0
          : static_cast<double>(graph.edge_count()) /
                static_cast<double>(graph.node_count()));
  std::printf(
      "\nShape to compare with the paper's Fig. 12: a few frequently used\n"
      "actions with high degree plus a fringe of rarely-visited nodes.\n");
  return 0;
}
