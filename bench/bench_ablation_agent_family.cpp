// Ablation (paper §4.2): "this approach can be easily applied to a variety
// of DRL models such as DQN, PPO or A3C". This bench trains a branching
// DQN on the same scenario, deploys it through the identical RIC + EXPLORA
// pipeline, and compares the synthesized explanations with the PPO agent's
// — the attributed graph and the distillation are agent-family agnostic.
#include <cstdio>

#include "bench_common.hpp"
#include "common/table.hpp"
#include "explora/distill.hpp"

int main() {
  using namespace explora;
  bench::print_header(
      "Ablation - agent family (PPO vs DQN) under the same EXPLORA pipeline");

  const auto scenario =
      bench::paper_scenario(netsim::TrafficProfile::kTrf1, 6);
  const auto training = bench::bench_training();

  // --- PPO run (the paper's agent) -----------------------------------------
  const auto ppo_result = bench::run_standard(
      core::AgentProfile::kHighThroughput, netsim::TrafficProfile::kTrf1, 6);

  // --- DQN run --------------------------------------------------------------
  std::puts("training branching DQN in-simulator...");
  const harness::DqnSystem dqn = harness::train_dqn_system(
      core::AgentProfile::kHighThroughput, scenario,
      training, harness::DqnTrainingConfig{});
  harness::ExperimentOptions options;
  options.decisions = bench::bench_decisions();
  options.prb_temperature = 0.35;
  options.sched_temperature = 0.9;
  const auto dqn_result = harness::run_experiment(
      dqn.normalizer, *dqn.autoencoder, *dqn.agent, dqn.profile, scenario,
      options, training);

  // --- compare ---------------------------------------------------------------
  common::TextTable table({"agent", "mean reward", "graph nodes",
                           "graph edges", "transitions", "DT fit acc."});
  core::KnowledgeDistiller distiller;
  auto add_row = [&](const std::string& name,
                     const harness::ExperimentResult& result) {
    const auto knowledge = distiller.distill(result.transitions);
    table.add_row({name, common::fmt(result.mean_reward(), 3),
                   std::to_string(result.graph.node_count()),
                   std::to_string(result.graph.edge_count()),
                   std::to_string(result.transitions.size()),
                   common::fmt(knowledge.tree_accuracy * 100.0, 1) + " %"});
  };
  add_row("PPO (paper)", ppo_result);
  add_row("branching DQN", dqn_result);
  std::fputs(table.render().c_str(), stdout);

  std::puts("\nclass shares, PPO:");
  std::fputs(bench::class_share_table(ppo_result.transitions).c_str(),
             stdout);
  std::puts("class shares, DQN:");
  std::fputs(bench::class_share_table(dqn_result.transitions).c_str(),
             stdout);
  std::puts(
      "\nEXPLORA builds a meaningful graph and distills explanations for\n"
      "both agent families without any pipeline change - the PolicyAgent\n"
      "interface is the only contact surface (paper §4.2).");
  return 0;
}
