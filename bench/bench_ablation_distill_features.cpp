// Ablation (paper §4.3): EXPLORA can compare the attribute distributions
// of consecutive states "using either statistical techniques like the
// Jensen Shannon divergence or directly comparing averages". This bench
// measures what each feature family contributes to the distillation DT:
// mean-delta features only, JS-divergence features appended, and a DT
// depth sweep.
#include <cstdio>

#include "bench_common.hpp"
#include "common/table.hpp"
#include "explora/distill.hpp"

int main() {
  using namespace explora;
  bench::print_header(
      "Ablation - distillation features (mean deltas vs +JS divergence)");

  const auto result = bench::run_standard(
      core::AgentProfile::kHighThroughput, netsim::TrafficProfile::kTrf1, 6);
  std::printf("%zu transitions from the HT/TRF1 run\n\n",
              result.transitions.size());

  common::TextTable table({"features", "DT depth", "fit accuracy",
                           "tree nodes"});
  for (const bool with_js : {false, true}) {
    for (const std::size_t depth : {std::size_t{2}, std::size_t{3},
                                    std::size_t{4}, std::size_t{6}}) {
      core::KnowledgeDistiller::Config config;
      config.include_js_features = with_js;
      config.tree.max_depth = depth;
      core::KnowledgeDistiller distiller(config);
      const auto knowledge = distiller.distill(result.transitions);
      table.add_row({with_js ? "deltas + JS" : "deltas only",
                     std::to_string(depth),
                     common::fmt(knowledge.tree_accuracy * 100.0, 1) + " %",
                     std::to_string(knowledge.tree.node_count())});
    }
  }
  std::fputs(table.render().c_str(), stdout);
  std::printf(
      "\nThe JS-divergence features capture distribution-shape changes the\n"
      "mean deltas miss (e.g. a variance blow-up with an unchanged mean),\n"
      "typically buying a few accuracy points at equal depth; deeper trees\n"
      "trade the paper's at-a-glance readability for fit.\n");
  return 0;
}
