// Ablation (paper §4.4): Opt 1 "intent-based action steering" vs Opt 2
// "action shielding". The paper argues steering is more attractive for
// non-stationary RAN control because it substitutes actions *consciously*
// (only when the graph knows a better alternative), while a shield
// inhibits actions unconditionally. This bench quantifies that argument on
// the HT agent: a shield enforcing "eMBB gets at least 30 PRBs" against
// AR1 steering with the same high-level goal.
#include <cstdio>

#include "bench_common.hpp"
#include "common/stats.hpp"
#include "common/table.hpp"
#include "explora/shield.hpp"

namespace {

using namespace explora;

harness::ExperimentResult run_variant(
    const harness::TrainedSystem& system,
    const netsim::ScenarioConfig& scenario, bool steer, bool shield) {
  harness::ExperimentOptions options;
  options.decisions = bench::bench_decisions();
  options.prb_temperature = 0.8;  // imperfect-policy regime (cf. Fig. 10)
  if (steer) {
    core::ActionSteering::Config steering;
    steering.strategy = core::SteeringStrategy::kMaxReward;
    steering.observation_window = 10;
    options.steering = steering;
  }
  // NOTE: the shield variant is wired through the harness by attaching it
  // to the EXPLORA xApp config via run_experiment's options; the harness
  // keeps the shield optional, so we re-run the pipeline manually here
  // when a shield is requested.
  if (!shield) {
    return harness::run_experiment(system, scenario, options,
                                   bench::bench_training());
  }
  // Shield run: same pipeline, shield installed in the xApp.
  // Fallback: a compliant mid-catalogue action.
  netsim::SlicingControl fallback;
  fallback.prbs = {36, 3, 11};
  fallback.scheduling = {netsim::SchedulerPolicy::kWaterfilling,
                         netsim::SchedulerPolicy::kRoundRobin,
                         netsim::SchedulerPolicy::kRoundRobin};
  core::ActionShield action_shield(fallback);
  action_shield.add_rule(
      core::ActionShield::min_prbs_rule(netsim::Slice::kEmbb, 30));
  options.shield = std::move(action_shield);
  return harness::run_experiment(system, scenario, options,
                                 bench::bench_training());
}

}  // namespace

int main() {
  bench::print_header(
      "Ablation - action steering (Opt 1) vs action shielding (Opt 2)");

  const auto& system =
      bench::trained_system(core::AgentProfile::kHighThroughput);
  const auto scenario =
      bench::paper_scenario(netsim::TrafficProfile::kTrf1, 6);

  const auto baseline = run_variant(system, scenario, false, false);
  const auto steered = run_variant(system, scenario, true, false);
  const auto shielded = run_variant(system, scenario, false, true);

  common::TextTable table({"variant", "mean reward",
                           "eMBB bitrate median [Mbps]",
                           "eMBB bitrate p10 [Mbps]", "actions changed",
                           "distinct actions used"});
  auto distinct_actions = [](const harness::ExperimentResult& result) {
    return result.graph.node_count();
  };
  auto add_row = [&](const std::string& name,
                     const harness::ExperimentResult& result) {
    table.add_row({name, common::fmt(result.mean_reward(), 3),
                   common::fmt(common::median(result.embb_bitrate_mbps), 3),
                   common::fmt(common::quantile(result.embb_bitrate_mbps,
                                                0.1), 3),
                   std::to_string(result.controls_replaced),
                   std::to_string(distinct_actions(result))});
  };
  add_row("baseline", baseline);
  add_row("AR1 steering", steered);
  add_row("shield (eMBB >= 30 PRBs)", shielded);
  std::fputs(table.render().c_str(), stdout);

  std::printf(
      "\nExpected shape (paper §4.4 + Appendix D): both mechanisms lift the\n"
      "lower tail, but the shield collapses the action space (far fewer\n"
      "distinct actions survive) while steering preserves the agent's\n"
      "ability to probe actions - it substitutes conditionally, based on\n"
      "expected reward, instead of banning outright.\n");
  return 0;
}
