// Reproduces Table 1: the accuracy of an XGBoost-style boosted-tree
// classifier trained to predict the agent's action from the latent
// features, across the paper's six configurations. The paper's point: the
// ensemble performs poorly (18-59%), so DTs cannot explain the
// latent -> action mapping and a divide-and-conquer explanation of the
// autoencoder + agent stack is not viable.
#include <cstdio>

#include "bench_common.hpp"
#include "common/format.hpp"
#include "common/parallel.hpp"
#include "common/table.hpp"
#include "xai/boosted.hpp"

namespace {

using namespace explora;

struct TableRow {
  std::string name;
  core::AgentProfile profile;
  netsim::TrafficProfile traffic;
  std::uint32_t users;
  double paper_accuracy;  ///< the value Table 1 reports [%]
};

/// 70/30 chronological train/test split.
std::pair<xai::Dataset, xai::Dataset> split(const xai::Dataset& data) {
  const std::size_t cut = data.size() * 7 / 10;
  xai::Dataset train;
  xai::Dataset test;
  for (std::size_t i = 0; i < data.size(); ++i) {
    auto& part = i < cut ? train : test;
    part.features.push_back(data.features[i]);
    part.labels.push_back(data.labels[i]);
  }
  return {std::move(train), std::move(test)};
}

}  // namespace

int main() {
  bench::print_header(
      "Table 1 - boosted-tree classification accuracy (latent -> action)");

  const std::vector<TableRow> rows = {
      {"C_LL,trf1-4", core::AgentProfile::kLowLatency,
       netsim::TrafficProfile::kTrf1, 4, 18.74},
      {"C_HT,trf1-3", core::AgentProfile::kHighThroughput,
       netsim::TrafficProfile::kTrf1, 3, 43.35},
      {"C_LL,trf2-3", core::AgentProfile::kLowLatency,
       netsim::TrafficProfile::kTrf2, 3, 58.52},
      {"C_LL,trf1-1", core::AgentProfile::kLowLatency,
       netsim::TrafficProfile::kTrf1, 1, 23.20},
      {"C_HT,trf1-1", core::AgentProfile::kHighThroughput,
       netsim::TrafficProfile::kTrf1, 1, 35.71},
      {"C_HT,trf2-1", core::AgentProfile::kHighThroughput,
       netsim::TrafficProfile::kTrf2, 1, 37.86},
  };

  // The six configurations are independent: run + fit them across the
  // pool, then render in row order.
  struct RowResult {
    double accuracy = 0.0;
    std::size_t classes = 0;
    double majority_share = 0.0;
  };
  std::vector<RowResult> measured(rows.size());
  (void)bench::trained_system(core::AgentProfile::kHighThroughput);
  common::parallel_for(0, rows.size(), 1, [&](std::size_t begin,
                                              std::size_t end) {
    for (std::size_t i = begin; i < end; ++i) {
      const auto& row = rows[i];
      const auto result =
          bench::run_standard(row.profile, row.traffic, row.users);
      const auto dataset = bench::latent_action_dataset(result);
      const auto [train, test] = split(dataset.data);

      xai::GradientBoostedClassifier::Config config;
      config.rounds = 20;
      config.tree.max_depth = 3;
      xai::GradientBoostedClassifier model(config);
      model.fit(train, dataset.num_classes);
      measured[i] = {model.accuracy(test) * 100.0, dataset.num_classes,
                     dataset.majority_share};
    }
  });

  common::TextTable table({"config", "paper DT acc.", "measured DT acc.",
                           "classes", "majority share"});
  for (std::size_t i = 0; i < rows.size(); ++i) {
    table.add_row({rows[i].name, common::fmt(rows[i].paper_accuracy, 2) + " %",
                   common::fmt(measured[i].accuracy, 2) + " %",
                   std::to_string(measured[i].classes),
                   common::fmt(measured[i].majority_share * 100.0, 1) + " %"});
  }
  std::fputs(table.render().c_str(), stdout);
  std::printf(
      "\nShape to compare with the paper: accuracies are scattered well\n"
      "below a usable level (the paper's range is 18-59%%), because the\n"
      "latent -> multi-modal-action mapping is not tree-separable. This is\n"
      "the Table 1 argument for why a DT cannot stand in for the agent.\n");
  return 0;
}
