// Ablation (paper §5.2): the paper restricts EDBR's graph exploration to
// first-hop neighbours "to highlight the benefits of the strategies in a
// worst-case scenario". This bench lifts that restriction: AR1 steering
// with exploration radii of 1, 2 and 3 hops, measuring how the candidate
// pool and the achieved KPIs change.
#include <cstdio>

#include "bench_common.hpp"
#include "common/stats.hpp"
#include "common/table.hpp"

namespace {

using namespace explora;

harness::ExperimentResult run_hops(const harness::TrainedSystem& system,
                                   const netsim::ScenarioConfig& scenario,
                                   std::size_t hops) {
  harness::ExperimentOptions options;
  options.decisions = bench::bench_decisions();
  options.prb_temperature = 0.8;  // imperfect-policy regime
  if (hops > 0) {
    core::ActionSteering::Config steering;
    steering.strategy = core::SteeringStrategy::kMaxReward;
    steering.observation_window = 10;
    steering.exploration_hops = hops;
    options.steering = steering;
  }
  return harness::run_experiment(system, scenario, options,
                                 bench::bench_training());
}

}  // namespace

int main() {
  bench::print_header("Ablation - EDBR graph-exploration radius (k hops)");

  const auto& system =
      bench::trained_system(core::AgentProfile::kHighThroughput);
  const auto scenario =
      bench::paper_scenario(netsim::TrafficProfile::kTrf1, 6);

  common::TextTable table({"exploration", "mean reward",
                           "eMBB bitrate median [Mbps]",
                           "eMBB bitrate p10 [Mbps]", "suggestions",
                           "replacements"});
  const auto baseline = run_hops(system, scenario, 0);
  table.add_row({"none (baseline)", common::fmt(baseline.mean_reward(), 3),
                 common::fmt(common::median(baseline.embb_bitrate_mbps), 3),
                 common::fmt(common::quantile(baseline.embb_bitrate_mbps,
                                              0.1), 3),
                 "-", "-"});
  for (const std::size_t hops : {std::size_t{1}, std::size_t{2},
                                 std::size_t{3}}) {
    const auto result = run_hops(system, scenario, hops);
    table.add_row(
        {std::to_string(hops) + "-hop",
         common::fmt(result.mean_reward(), 3),
         common::fmt(common::median(result.embb_bitrate_mbps), 3),
         common::fmt(common::quantile(result.embb_bitrate_mbps, 0.1), 3),
         std::to_string(result.steering ? result.steering->suggestions : 0),
         std::to_string(result.steering ? result.steering->replacements
                                        : 0)});
  }
  std::fputs(table.render().c_str(), stdout);
  std::printf(
      "\nThe paper's first-hop limit is the worst case: wider exploration\n"
      "gives the strategies a larger candidate pool Q, so the replacement\n"
      "quality can only improve (at linear extra lookup cost per hop).\n");
  return 0;
}
