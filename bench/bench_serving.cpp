// bench_serving — SLO benchmark for the explanation-serving layer
// (DESIGN.md §12): drives thousands of queries through ExplainService
// under uniform and bursty arrivals, plus a fault-injected slow-model
// arm, and emits per-tier p50/p99 latency, shed/demotion rates and the
// FNV-1a result-stream digest as a deterministic JSON SLO report.
//
//   bench_serving [--requests N] [--seed S] [--out FILE]
//                 [--check] [--threads-check] [--tsan-enqueue]
//
//   --check          enforce the committed SLO thresholds (CI gate):
//                    zero queue overflow, full request accounting,
//                    per-tier p99 within the deadline-derived bound, and
//                    nonzero demotions on the slow arm.
//   --threads-check  run every arm under ThreadPool(1) and ThreadPool(4)
//                    and require byte-identical result-stream digests.
//   --tsan-enqueue   concurrent producer/consumer stress over the
//                    bounded queue (the CI tsan leg); no JSON output.
//
// Everything is tick-clocked and seeded: two runs with the same flags
// produce byte-identical JSON on any machine and thread count.
#include <algorithm>
#include <array>
#include <atomic>
#include <bit>
#include <cstdio>
#include <cstring>
#include <fstream>
#include <string>
#include <thread>
#include <vector>

#include "common/parallel.hpp"
#include "common/rng.hpp"
#include "common/telemetry.hpp"
#include "explora/explain_service.hpp"
#include "ml/features.hpp"
#include "ml/ppo.hpp"
#include "xai/serving.hpp"
#include "xai/tree.hpp"

namespace {

using namespace explora;
using xai::serving::kNumTiers;
using xai::serving::ShedReason;
using xai::serving::Tier;

struct CliOptions {
  std::size_t requests = 600;  ///< arrivals per arm
  std::uint64_t seed = 2027;
  std::string out_file;
  bool check = false;
  bool threads_check = false;
  bool tsan_enqueue = false;
};

void usage() {
  std::fputs(
      "usage: bench_serving [options]\n"
      "  --requests N     arrivals per arm (default 600)\n"
      "  --seed S         arrival/latent stream seed (default 2027)\n"
      "  --out FILE       write the JSON SLO report here (default stdout)\n"
      "  --check          enforce committed SLO thresholds\n"
      "  --threads-check  byte-compare digests across thread pools {1,4}\n"
      "  --tsan-enqueue   concurrent enqueue stress (tsan leg)\n",
      stderr);
}

/// One load arm: arrival pattern plus fault injection on the model-eval
/// tiers. A burst of `burst_size` requests lands every `burst_period`
/// ticks (size 1 = uniform arrivals).
struct ArmSpec {
  const char* name;
  std::size_t burst_size;
  std::int64_t burst_period;
  double eval_slow_probability;
  std::int64_t eval_slow_factor;
  double eval_failure_probability;
};

constexpr std::array<ArmSpec, 3> kArms{{
    {"uniform", 1, 96, 0.0, 4, 0.0},
    {"bursty", 12, 256, 0.0, 4, 0.0},
    {"bursty_slow", 12, 256, 0.30, 4, 0.05},
}};

struct ArmResult {
  ExplainService::Stats stats;
  std::uint64_t delivered = 0;
  std::uint64_t shed_notices = 0;
  std::uint64_t ladder_demotions = 0;
  std::uint64_t ladder_promotions = 0;
  std::uint64_t digest = 14695981039346656037ULL;
  std::array<std::vector<std::int64_t>, kNumTiers> latencies;
};

/// Byte-wise FNV-1a over one 64-bit word (the same digest the harness
/// serving telemetry uses, so digests are comparable across drivers).
void fnv_mix(std::uint64_t& digest, std::uint64_t word) {
  for (int b = 0; b < 8; ++b) {
    digest ^= (word >> (8 * b)) & 0xffu;
    digest *= 1099511628211ULL;
  }
}

void fold_results(const std::vector<ExplanationResult>& results,
                  ArmResult& arm) {
  for (const ExplanationResult& r : results) {
    if (r.shed_reason == ShedReason::kNone) {
      ++arm.delivered;
      arm.latencies[static_cast<std::size_t>(r.tier)].push_back(r.latency);
    } else {
      ++arm.shed_notices;
    }
    fnv_mix(arm.digest, r.id);
    const std::uint64_t packed =
        (static_cast<std::uint64_t>(r.output_index) << 32) |
        (static_cast<std::uint64_t>(r.tier) << 16) |
        (static_cast<std::uint64_t>(r.shed_reason) << 8) |
        (static_cast<std::uint64_t>(r.degraded) << 1) |
        static_cast<std::uint64_t>(r.from_cache);
    fnv_mix(arm.digest, packed);
    fnv_mix(arm.digest, static_cast<std::uint64_t>(r.latency));
    for (const double phi : r.attribution) {
      fnv_mix(arm.digest, std::bit_cast<std::uint64_t>(phi));
    }
  }
}

xai::DecisionTreeClassifier make_surrogate(std::uint64_t seed) {
  xai::Dataset data;
  common::Rng rng(seed);
  for (int i = 0; i < 64; ++i) {
    ml::Vector x(ml::kLatentDim);
    for (auto& v : x) v = rng.uniform(-1.0, 1.0);
    data.labels.push_back(x[0] > 0.0 ? 1u : 0u);
    data.features.push_back(std::move(x));
  }
  xai::DecisionTreeClassifier tree;
  tree.fit(data, 2);
  return tree;
}

ExplainService::Config service_config(const ArmSpec& spec,
                                      std::uint64_t seed,
                                      common::ThreadPool* pool) {
  ExplainService::Config config;
  config.queue_capacity = 16;
  config.workers = 2;
  config.sampled_permutations = 8;
  config.max_background = 4;
  config.seed = seed;
  config.pool = pool;
  config.eval_slow_probability = spec.eval_slow_probability;
  config.eval_slow_factor = spec.eval_slow_factor;
  config.eval_failure_probability = spec.eval_failure_probability;
  return config;
}

ArmResult run_arm(const ArmSpec& spec, std::size_t requests,
                  std::uint64_t seed, common::ThreadPool* pool) {
  telemetry::ScopedRegistry registry;
  ml::PpoAgent agent(11);
  const xai::DecisionTreeClassifier surrogate = make_surrogate(seed + 1);

  common::Rng root(seed);
  common::Rng latents = root.fork(std::string("serving.bench.latents.") +
                                  spec.name);
  common::Rng heads =
      root.fork(std::string("serving.bench.heads.") + spec.name);

  std::vector<ml::Vector> background;
  for (int r = 0; r < 4; ++r) {
    ml::Vector row(ml::kLatentDim);
    for (auto& v : row) v = latents.uniform(-1.0, 1.0);
    background.push_back(std::move(row));
  }

  ExplainService service(agent, background, &surrogate,
                         service_config(spec, seed, pool));

  ArmResult arm;
  ml::Vector x(ml::kLatentDim);
  ml::AgentAction action;
  std::size_t submitted = 0;
  std::int64_t tick = 0;
  while (submitted < requests) {
    ++tick;
    service.on_tick(tick);
    if (tick % spec.burst_period == 0) {
      for (std::size_t b = 0; b < spec.burst_size && submitted < requests;
           ++b, ++submitted) {
        for (auto& v : x) v = latents.uniform(-1.0, 1.0);
        const auto head =
            static_cast<std::uint32_t>(heads.index(ml::kNumHeads));
        action.prb_choice = heads.index(4);
        action.sched_choice = {heads.index(3), heads.index(3),
                               heads.index(3)};
        (void)service.submit(x, head, action, tick);
      }
    }
    fold_results(service.drain(), arm);
  }
  // Bounded tail drain: worst case is a slow-inflated exact eval plus the
  // full deadline, repeated for everything still queued.
  const std::int64_t chunk =
      service.config().costs.cost(Tier::kExact) * spec.eval_slow_factor +
      service.config().default_deadline;
  for (int rounds = 0;
       rounds < 64 && (service.queue().depth() > 0 ||
                       service.busy_workers() > 0);
       ++rounds) {
    service.run_until(tick, tick + chunk);
    tick += chunk;
    fold_results(service.drain(), arm);
  }
  fold_results(service.drain(), arm);

  arm.stats = service.stats();
  arm.ladder_demotions = service.ladder().demotions();
  arm.ladder_promotions = service.ladder().promotions();
  for (auto& tier_latencies : arm.latencies) {
    std::sort(tier_latencies.begin(), tier_latencies.end());
  }
  return arm;
}

/// Nearest-rank percentile of a sorted sample; 0 when empty.
std::int64_t percentile(const std::vector<std::int64_t>& sorted, int pct) {
  if (sorted.empty()) return 0;
  const std::size_t rank =
      (sorted.size() * static_cast<std::size_t>(pct) + 99) / 100;
  return sorted[rank == 0 ? 0 : rank - 1];
}

std::string json_report(const std::vector<ArmResult>& arms,
                        const CliOptions& options) {
  std::string out;
  out += "{\n";
  out += "  \"requests_per_arm\": " + std::to_string(options.requests) +
         ",\n";
  out += "  \"seed\": " + std::to_string(options.seed) + ",\n";
  out += "  \"arms\": [\n";
  for (std::size_t a = 0; a < arms.size(); ++a) {
    const ArmSpec& spec = kArms[a];
    const ArmResult& arm = arms[a];
    out += std::string("    {\"name\": \"") + spec.name + "\"";
    out += ", \"submitted\": " + std::to_string(arm.stats.submitted);
    out += ", \"accepted\": " + std::to_string(arm.stats.accepted);
    out += ", \"delivered\": " + std::to_string(arm.delivered);
    out += ", \"shed\": " + std::to_string(arm.stats.shed_total());
    for (std::size_t r = 1; r < arm.stats.shed_by_reason.size(); ++r) {
      out += std::string(", \"shed_") +
             std::string(to_string(static_cast<ShedReason>(r))) +
             "\": " + std::to_string(arm.stats.shed_by_reason[r]);
    }
    out += ", \"demoted_requests\": " +
           std::to_string(arm.stats.demoted_requests);
    out += ", \"ladder_demotions\": " +
           std::to_string(arm.ladder_demotions);
    out += ", \"ladder_promotions\": " +
           std::to_string(arm.ladder_promotions);
    out += ", \"eval_faults\": " + std::to_string(arm.stats.eval_faults);
    out += ", \"breaker_trips\": " +
           std::to_string(arm.stats.breaker_trips);
    out += ", \"queue_high_water\": " +
           std::to_string(arm.stats.queue_high_water);
    out += ", \"queue_capacity\": " +
           std::to_string(arm.stats.queue_capacity);
    out += ", \"tiers\": {";
    for (std::size_t t = 0; t < kNumTiers; ++t) {
      const auto& lat = arm.latencies[t];
      out += std::string(t == 0 ? "" : ", ") + "\"" +
             std::string(to_string(static_cast<Tier>(t))) + "\": ";
      out += "{\"served\": " + std::to_string(lat.size());
      out += ", \"p50\": " + std::to_string(percentile(lat, 50));
      out += ", \"p99\": " + std::to_string(percentile(lat, 99)) + "}";
    }
    out += "}";
    out += ", \"digest\": " + std::to_string(arm.digest);
    out += "}";
    if (a + 1 < arms.size()) out += ",";
    out += "\n";
  }
  out += "  ]\n";
  out += "}\n";
  return out;
}

/// Committed SLO thresholds. The p99 bound per tier is derived from the
/// dispatch rule, not tuned: a request is dispatched at tier t only while
/// deadline - now >= cost[t], so latency <= (deadline - cost[t]) +
/// actual_cost, and actual cost is at most slow_factor * cost[t] on the
/// model-eval tiers (surrogate/cached are never inflated).
bool check_slos(const std::vector<ArmResult>& arms) {
  bool ok = true;
  auto fail = [&ok](const std::string& message) {
    std::fprintf(stderr, "bench_serving: SLO FAIL — %s\n", message.c_str());
    ok = false;
  };
  for (std::size_t a = 0; a < arms.size(); ++a) {
    const ArmSpec& spec = kArms[a];
    const ArmResult& arm = arms[a];
    const std::string prefix = std::string(spec.name) + ": ";
    if (arm.stats.queue_high_water > arm.stats.queue_capacity) {
      fail(prefix + "queue grew past its bound");
    }
    if (arm.stats.accepted != arm.delivered + arm.shed_notices) {
      fail(prefix + "accepted != delivered + shed notices (" +
           std::to_string(arm.stats.accepted) + " != " +
           std::to_string(arm.delivered) + " + " +
           std::to_string(arm.shed_notices) + ")");
    }
    if (arm.delivered == 0) fail(prefix + "nothing delivered");
    const xai::serving::CostModel costs;
    const std::int64_t deadline = 192;  // ExplainService default
    for (std::size_t t = 0; t < kNumTiers; ++t) {
      if (arm.latencies[t].empty()) continue;
      const bool eval_tier = t <= static_cast<std::size_t>(Tier::kSampled);
      const std::int64_t slow =
          eval_tier ? spec.eval_slow_factor : 1;
      const std::int64_t cost = costs.worst_case[t];
      const std::int64_t bound = deadline - cost + slow * cost;
      const std::int64_t p99 = percentile(arm.latencies[t], 99);
      if (p99 > bound) {
        fail(prefix + std::string(to_string(static_cast<Tier>(t))) +
             " p99 " + std::to_string(p99) + " > bound " +
             std::to_string(bound));
      }
    }
  }
  // Burst pressure must actually exercise the ladder, and the slow arm
  // must demote requests and record eval faults.
  const ArmResult& bursty = arms[1];
  if (bursty.ladder_demotions == 0) {
    fail("bursty: ladder never demoted under burst load");
  }
  const ArmResult& slow = arms[2];
  if (slow.stats.demoted_requests == 0) {
    fail("bursty_slow: no demoted requests");
  }
  if (slow.stats.eval_faults == 0) {
    fail("bursty_slow: fault injection produced no eval faults");
  }
  return ok;
}

bool threads_check(const CliOptions& options) {
  bool ok = true;
  common::ThreadPool pool_one(1);
  common::ThreadPool pool_four(4);
  for (const ArmSpec& spec : kArms) {
    const ArmResult one =
        run_arm(spec, options.requests, options.seed, &pool_one);
    const ArmResult four =
        run_arm(spec, options.requests, options.seed, &pool_four);
    if (one.digest != four.digest) {
      std::fprintf(stderr,
                   "bench_serving: THREADS FAIL — arm %s digest %llu "
                   "(1 thread) != %llu (4 threads)\n",
                   spec.name,
                   static_cast<unsigned long long>(one.digest),
                   static_cast<unsigned long long>(four.digest));
      ok = false;
    } else {
      std::fprintf(stderr,
                   "bench_serving: arm %s byte-identical across thread "
                   "pools (digest %llu)\n",
                   spec.name,
                   static_cast<unsigned long long>(one.digest));
    }
  }
  return ok;
}

/// Concurrent enqueue/dequeue stress for the tsan CI leg: 4 producers
/// push_blocking, 2 consumers pop_blocking, every id delivered exactly
/// once (validated via count and id-sum).
int tsan_enqueue_stress() {
  constexpr std::size_t kProducers = 4;
  constexpr std::size_t kConsumers = 2;
  constexpr std::uint64_t kPerProducer = 5000;
  constexpr std::uint64_t kTotal = kProducers * kPerProducer;
  xai::serving::BoundedRequestQueue queue(16, 4);

  std::atomic<std::uint64_t> popped{0};
  std::atomic<std::uint64_t> id_sum{0};
  std::vector<std::thread> threads;
  for (std::size_t c = 0; c < kConsumers; ++c) {
    threads.emplace_back([&queue, &popped, &id_sum] {
      xai::serving::Request out;
      out.x.resize(4);
      while (popped.load(std::memory_order_acquire) < kTotal) {
        if (queue.pop_blocking(out, 2048)) {
          id_sum.fetch_add(out.id, std::memory_order_relaxed);
          popped.fetch_add(1, std::memory_order_acq_rel);
        }
      }
    });
  }
  for (std::size_t p = 0; p < kProducers; ++p) {
    threads.emplace_back([&queue, p] {
      const std::array<std::uint32_t, 4> context{
          static_cast<std::uint32_t>(p), 0, 0, 0};
      const std::vector<double> x{1.0, 2.0, 3.0, 4.0};
      for (std::uint64_t i = 0; i < kPerProducer; ++i) {
        const std::uint64_t id = p * kPerProducer + i + 1;
        queue.push_blocking(id, 0, context, 0, 1 << 20, x);
      }
    });
  }
  for (auto& t : threads) t.join();

  const std::uint64_t want_sum = kTotal * (kTotal + 1) / 2;
  if (popped.load() != kTotal || id_sum.load() != want_sum) {
    std::fprintf(stderr,
                 "bench_serving: tsan-enqueue FAIL — popped %llu/%llu, "
                 "id sum %llu (want %llu)\n",
                 static_cast<unsigned long long>(popped.load()),
                 static_cast<unsigned long long>(kTotal),
                 static_cast<unsigned long long>(id_sum.load()),
                 static_cast<unsigned long long>(want_sum));
    return 1;
  }
  std::fprintf(stderr,
               "bench_serving: tsan-enqueue ok — %llu requests, every id "
               "delivered exactly once, high water %zu/%zu\n",
               static_cast<unsigned long long>(kTotal),
               queue.high_water(), queue.capacity());
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  CliOptions options;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    auto next = [&]() -> const char* {
      if (i + 1 >= argc) {
        usage();
        std::exit(2);
      }
      return argv[++i];
    };
    if (arg == "--requests") {
      options.requests = std::strtoull(next(), nullptr, 10);
    } else if (arg == "--seed") {
      options.seed = std::strtoull(next(), nullptr, 10);
    } else if (arg == "--out") {
      options.out_file = next();
    } else if (arg == "--check") {
      options.check = true;
    } else if (arg == "--threads-check") {
      options.threads_check = true;
    } else if (arg == "--tsan-enqueue") {
      options.tsan_enqueue = true;
    } else {
      usage();
      return 2;
    }
  }
  if (options.tsan_enqueue) return tsan_enqueue_stress();

  std::vector<ArmResult> arms;
  arms.reserve(kArms.size());
  for (const ArmSpec& spec : kArms) {
    arms.push_back(run_arm(spec, options.requests, options.seed, nullptr));
  }

  const std::string json = json_report(arms, options);
  if (options.out_file.empty()) {
    std::fputs(json.c_str(), stdout);
  } else {
    std::ofstream out(options.out_file, std::ios::binary);
    if (!out) {
      std::fprintf(stderr, "bench_serving: cannot write %s\n",
                   options.out_file.c_str());
      return 2;
    }
    out << json;
  }

  bool ok = true;
  if (options.check) ok = check_slos(arms) && ok;
  if (options.threads_check) ok = threads_check(options) && ok;
  return ok ? 0 : 1;
}
