// Reproduces Appendix D (Fig. 15): across all AR 1 steering settings
// (HT/LL agents x TRF1/TRF2 x O in {10, 20}), how often the attributed
// graph *suggests* replacing an action vs how often the action is
// *actually* replaced — and that the same action is rarely substituted
// more than 3 times (steering is not shielding).
#include <algorithm>
#include <cstdio>

#include "bench_common.hpp"
#include "common/stats.hpp"
#include "common/table.hpp"

int main() {
  using namespace explora;
  bench::print_header(
      "Fig. 15 - suggested vs actual action replacements (AR1)");

  common::TextTable table({"agent", "traffic", "O", "decisions", "suggested",
                           "replaced", "replaced/suggested",
                           "median same-action repl.",
                           "max same-action repl."});

  std::vector<double> suggestion_rates_o10;
  std::vector<double> suggestion_rates_o20;
  std::vector<double> usage_drop_o10;
  std::vector<double> usage_drop_o20;

  for (const auto profile : {core::AgentProfile::kHighThroughput,
                             core::AgentProfile::kLowLatency}) {
    for (const auto traffic :
         {netsim::TrafficProfile::kTrf1, netsim::TrafficProfile::kTrf2}) {
      for (const std::size_t window : {std::size_t{10}, std::size_t{20}}) {
        const auto run = bench::run_steered(
            profile, traffic, core::SteeringStrategy::kMaxReward, window);
        if (!run.steering.has_value()) continue;
        const auto& stats = *run.steering;
        const double ratio =
            stats.suggestions == 0
                ? 0.0
                : static_cast<double>(stats.replacements) /
                      static_cast<double>(stats.suggestions);
        std::uint64_t max_per_action = 0;
        std::vector<double> per_action;
        for (std::uint64_t count : stats.per_action_replaced_out) {
          max_per_action = std::max(max_per_action, count);
          per_action.push_back(static_cast<double>(count));
        }
        table.add_row({core::to_string(profile), to_string(traffic),
                       std::to_string(window),
                       std::to_string(stats.decisions),
                       std::to_string(stats.suggestions),
                       std::to_string(stats.replacements),
                       common::fmt(ratio * 100.0, 1) + " %",
                       common::fmt(common::median(per_action), 1),
                       std::to_string(max_per_action)});

        const double suggestion_rate =
            stats.decisions == 0
                ? 0.0
                : static_cast<double>(stats.suggestions) /
                      static_cast<double>(stats.decisions);
        (window == 10 ? suggestion_rates_o10 : suggestion_rates_o20)
            .push_back(suggestion_rate);
        (window == 10 ? usage_drop_o10 : usage_drop_o20)
            .push_back(1.0 - ratio);
      }
    }
  }
  std::fputs(table.render().c_str(), stdout);

  std::printf(
      "\nAcross configurations (paper: O=10 triggers slightly more changes\n"
      "than O=20 - 63%% vs 59%% on average - and the suggested-to-used\n"
      "reduction is 25%% for O=10 vs 18%% for O=20):\n");
  std::printf("  median suggestion rate: O=10 %.1f%%, O=20 %.1f%%\n",
              common::median(suggestion_rates_o10) * 100.0,
              common::median(suggestion_rates_o20) * 100.0);
  std::printf("  median suggested-but-not-used: O=10 %.1f%%, O=20 %.1f%%\n",
              common::median(usage_drop_o10) * 100.0,
              common::median(usage_drop_o20) * 100.0);
  return 0;
}
