#include "bench_common.hpp"

#include <algorithm>
#include <array>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <map>

#include "common/format.hpp"
#include "common/parallel.hpp"
#include "common/table.hpp"

namespace explora::bench {

std::size_t bench_decisions() {
  if (const char* env = std::getenv("EXPLORA_BENCH_FULL");
      env != nullptr && *env == '1') {
    return 7200;  // the paper's 30 minutes at 4 decisions/s
  }
  return 1440;  // 6 simulated minutes
}

netsim::ScenarioConfig paper_scenario(netsim::TrafficProfile profile,
                                      std::uint32_t users,
                                      std::uint64_t seed) {
  netsim::ScenarioConfig scenario;
  scenario.profile = profile;
  scenario.users_per_slice = netsim::users_for_count(
      users, users == 1 ? std::optional(netsim::Slice::kEmbb) : std::nullopt);
  scenario.seed = seed;
  return scenario;
}

harness::TrainingConfig bench_training() {
  harness::TrainingConfig config;  // defaults are the paper-shaped models
  return config;
}

const harness::TrainedSystem& trained_system(core::AgentProfile profile) {
  // Both profiles warm up concurrently on first use: each trains (or loads)
  // against its own artifact file and scenario copy, so the two
  // load_or_train calls share no mutable state.
  static const std::array<harness::TrainedSystem, 2> systems = [] {
    constexpr std::array<core::AgentProfile, 2> profiles = {
        core::AgentProfile::kHighThroughput, core::AgentProfile::kLowLatency};
    std::array<harness::TrainedSystem, 2> trained;
    common::parallel_for(0, profiles.size(), 1,
                         [&](std::size_t begin, std::size_t end) {
                           for (std::size_t i = begin; i < end; ++i) {
                             trained[i] = harness::load_or_train(
                                 profiles[i],
                                 paper_scenario(netsim::TrafficProfile::kTrf1,
                                                6),
                                 bench_training());
                           }
                         });
    return trained;
  }();
  return profile == core::AgentProfile::kHighThroughput ? systems[0]
                                                        : systems[1];
}

harness::ExperimentResult run_standard(core::AgentProfile profile,
                                       netsim::TrafficProfile traffic,
                                       std::uint32_t users,
                                       std::uint64_t seed) {
  harness::ExperimentOptions options;
  options.decisions = bench_decisions();
  options.deploy_explora = true;
  // Deployment-policy calibration (Appendix C): the LL agent performs more
  // transitions than HT and spreads over the classes more evenly, so its
  // slicing head runs warmer.
  options.prb_temperature =
      profile == core::AgentProfile::kLowLatency ? 0.6 : 0.35;
  return harness::run_experiment(trained_system(profile),
                                 paper_scenario(traffic, users, seed),
                                 options, bench_training());
}

std::vector<harness::ExperimentResult> run_standard_sweep(
    core::AgentProfile profile, netsim::TrafficProfile traffic,
    std::uint32_t users, const std::vector<std::uint64_t>& seeds) {
  // Force the shared trained system into existence before fanning out, so
  // the sweep tasks only ever read it.
  (void)trained_system(profile);
  std::vector<harness::ExperimentResult> results(seeds.size());
  common::parallel_for(0, seeds.size(), 1,
                       [&](std::size_t begin, std::size_t end) {
                         for (std::size_t i = begin; i < end; ++i) {
                           results[i] = run_standard(profile, traffic, users,
                                                     seeds[i]);
                         }
                       });
  return results;
}

harness::ExperimentResult run_steered(
    core::AgentProfile profile, netsim::TrafficProfile traffic,
    std::optional<core::SteeringStrategy> strategy,
    std::size_t observation_window, std::uint64_t seed) {
  const netsim::ScenarioConfig scenario = paper_scenario(traffic, 6, seed);

  // Per-(profile, traffic) fine-tuned system, built once: reload the cached
  // offline weights and run the paper's online training phase on the target
  // traffic profile.
  struct Key {
    core::AgentProfile profile;
    netsim::TrafficProfile traffic;
    bool operator<(const Key& other) const {
      if (profile != other.profile) return profile < other.profile;
      return traffic < other.traffic;
    }
  };
  static std::map<Key, harness::TrainedSystem> cache;
  const Key key{profile, traffic};
  auto it = cache.find(key);
  if (it == cache.end()) {
    harness::TrainedSystem system = harness::load_or_train(
        profile, paper_scenario(netsim::TrafficProfile::kTrf1, 6),
        bench_training());
    harness::online_finetune(system, scenario, bench_training(), 3);
    it = cache.emplace(key, std::move(system)).first;
  }

  harness::ExperimentOptions options;
  options.decisions = bench_decisions();
  options.deploy_explora = true;
  // The paper's premise for §6.3: the agent's offline training is
  // imperfect, so deployed decisions include suboptimal excursions that
  // EXPLORA can recognise and substitute. A warmer PRB head reproduces
  // that imperfect-policy regime (cf. DESIGN.md).
  options.prb_temperature = 0.8;
  options.drop_ue_at_decision = options.decisions / 2;
  options.drop_slice = netsim::Slice::kMmtc;  // 2/2/2 -> 2/1/2 (5 users)
  if (strategy.has_value()) {
    core::ActionSteering::Config steering;
    steering.strategy = *strategy;
    steering.observation_window = observation_window;
    options.steering = steering;
  }
  return harness::run_experiment(it->second, scenario, options,
                                 bench_training());
}

LatentActionDataset latent_action_dataset(
    const harness::ExperimentResult& result) {
  LatentActionDataset out;
  std::map<netsim::SlicingControl, std::size_t> action_ids;
  std::map<std::size_t, std::size_t> counts;
  for (const auto& record : result.decisions) {
    const auto [it, inserted] =
        action_ids.emplace(record.enforced, action_ids.size());
    out.data.features.push_back(record.latent);
    out.data.labels.push_back(it->second);
    ++counts[it->second];
  }
  out.num_classes = action_ids.size();
  std::size_t majority = 0;
  for (const auto& [label, count] : counts) {
    majority = std::max(majority, count);
  }
  out.majority_share = out.data.labels.empty()
                           ? 0.0
                           : static_cast<double>(majority) /
                                 static_cast<double>(out.data.labels.size());
  return out;
}

std::string transition_scatter(
    const std::vector<core::TransitionEvent>& events, netsim::Kpi x_kpi,
    netsim::Kpi y_kpi, std::size_t width, std::size_t height) {
  std::string out = common::format(
      "Transition scatter: x = d_{}, y = d_{}  (S=Self P=Same-PRB "
      "C=Same-Sched D=Distinct, * = overlap)\n",
      netsim::to_string(x_kpi), netsim::to_string(y_kpi));
  if (events.empty()) return out + "  <no transitions>\n";

  double x_lo = 0.0;
  double x_hi = 0.0;
  double y_lo = 0.0;
  double y_hi = 0.0;
  for (const auto& event : events) {
    x_lo = std::min(x_lo, event.kpi_delta(x_kpi));
    x_hi = std::max(x_hi, event.kpi_delta(x_kpi));
    y_lo = std::min(y_lo, event.kpi_delta(y_kpi));
    y_hi = std::max(y_hi, event.kpi_delta(y_kpi));
  }
  if (x_hi == x_lo) x_hi = x_lo + 1.0;
  if (y_hi == y_lo) y_hi = y_lo + 1.0;

  std::vector<std::string> grid(height, std::string(width, ' '));
  const char glyphs[] = {'S', 'P', 'C', 'D'};
  for (const auto& event : events) {
    const double fx = (event.kpi_delta(x_kpi) - x_lo) / (x_hi - x_lo);
    const double fy = (event.kpi_delta(y_kpi) - y_lo) / (y_hi - y_lo);
    const auto col = std::min(
        width - 1, static_cast<std::size_t>(fx * static_cast<double>(width)));
    const auto row_from_top = std::min(
        height - 1,
        static_cast<std::size_t>((1.0 - fy) * static_cast<double>(height)));
    char& cell = grid[row_from_top][col];
    const char glyph = glyphs[static_cast<std::size_t>(event.cls)];
    cell = (cell == ' ' || cell == glyph) ? glyph : '*';
  }
  for (std::size_t r = 0; r < height; ++r) {
    out += common::format("  {:>10.3g} |{}\n",
                          y_hi - (y_hi - y_lo) * static_cast<double>(r) /
                                     static_cast<double>(height - 1),
                          grid[r]);
  }
  out += common::format("             +{}\n", std::string(width, '-'));
  out += common::format("              {:<12.4g}{}{:>12.4g}\n", x_lo,
                        std::string(width > 24 ? width - 24 : 0, ' '), x_hi);
  return out;
}

std::string class_share_table(
    const std::vector<core::TransitionEvent>& events) {
  std::array<std::size_t, core::kNumTransitionClasses> counts{};
  for (const auto& event : events) {
    ++counts[static_cast<std::size_t>(event.cls)];
  }
  common::TextTable table({"transition class", "count", "share"});
  for (std::size_t c = 0; c < core::kNumTransitionClasses; ++c) {
    const double share =
        events.empty() ? 0.0
                       : static_cast<double>(counts[c]) /
                             static_cast<double>(events.size());
    table.add_row({core::to_string(static_cast<core::TransitionClass>(c)),
                   std::to_string(counts[c]),
                   common::fmt(share * 100.0, 1) + " %"});
  }
  return table.render();
}

void print_header(const std::string& title) {
  const std::string rule(title.size() + 8, '=');
  std::printf("\n%s\n=== %s ===\n%s\n", rule.c_str(), title.c_str(),
              rule.c_str());
}

}  // namespace explora::bench
