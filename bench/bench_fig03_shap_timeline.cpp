// Reproduces Fig. 3: SHAP relevance scores of the DRL inputs (the
// autoencoder latents AE_0..AE_8) for 20 consecutive decision steps of the
// HT agent, next to the actions taken. As in the paper, the explanations
// are per-latent-feature relevances — precise but non-intuitive, since the
// latents are not the actual KPIs (Challenge 1).
#include <cmath>
#include <cstdio>

#include "bench_common.hpp"
#include "common/format.hpp"
#include "common/table.hpp"
#include "ml/ppo.hpp"
#include "xai/agent_model.hpp"
#include "xai/shap.hpp"

namespace {

using namespace explora;

/// 0-9 digit encoding of a relevance magnitude (the paper's color bar).
char relevance_glyph(double value, double max_abs) {
  if (max_abs <= 0.0) return '0';
  const int level = static_cast<int>(
      std::round(std::abs(value) / max_abs * 9.0));
  return static_cast<char>('0' + std::min(level, 9));
}

}  // namespace

int main() {
  bench::print_header(
      "Fig. 3 - SHAP explanations of the HT agent over 20 time steps");

  const auto& system = bench::trained_system(core::AgentProfile::kHighThroughput);
  const auto result = bench::run_standard(
      core::AgentProfile::kHighThroughput, netsim::TrafficProfile::kTrf1, 6);

  // Background: the latents visited during the run.
  std::vector<xai::Vector> background;
  for (const auto& record : result.decisions) {
    background.push_back(record.latent);
  }
  if (background.size() < 40) {
    std::fprintf(stderr, "run too short for Fig. 3\n");
    return 1;
  }

  // Explain 20 consecutive steps mid-run (the paper shows indices ~565-584).
  const std::size_t start = background.size() / 2;
  std::printf(
      "Per-step SHAP relevance of the 9 latent features (0 = irrelevant,"
      " 9 = dominant),\naggregated over the 4 action modes."
      " The agent action is shown per step.\n\n");
  common::TextTable table({"step", "AE relevance [0..8]", "PRB split",
                           "schedulers", "sum|phi|"});
  for (std::size_t step = start; step < start + 20; ++step) {
    const auto& record = result.decisions[step];
    const ml::AgentAction action = ml::from_control(record.enforced);
    xai::ShapExplainer::Config config;
    config.max_background = 16;
    xai::ShapExplainer explainer(
        xai::head_probability_model(*system.agent, action), background,
        config);
    const auto phi = explainer.explain_all_outputs(record.latent);

    // Aggregate |phi| over the four outputs per latent feature.
    xai::Vector relevance(ml::kLatentDim, 0.0);
    for (const auto& per_output : phi) {
      for (std::size_t f = 0; f < relevance.size(); ++f) {
        relevance[f] += std::abs(per_output[f]);
      }
    }
    double max_abs = 0.0;
    double total = 0.0;
    for (double r : relevance) {
      max_abs = std::max(max_abs, r);
      total += r;
    }
    std::string bar;
    for (double r : relevance) bar += relevance_glyph(r, max_abs);

    table.add_row({std::to_string(step), bar,
                   common::format("[{}, {}, {}]", record.enforced.prbs[0],
                                  record.enforced.prbs[1],
                                  record.enforced.prbs[2]),
                   common::format("[{}, {}, {}]",
                                  static_cast<int>(record.enforced.scheduling[0]),
                                  static_cast<int>(record.enforced.scheduling[1]),
                                  static_cast<int>(record.enforced.scheduling[2])),
                   common::fmt(total, 4)});
  }
  std::fputs(table.render().c_str(), stdout);
  std::printf(
      "\nObservation (as in the paper): relevance concentrates on a few\n"
      "latents and shifts when the action changes; steps where all latents\n"
      "are low-relevance precede scheduling-policy changes. The scores\n"
      "explain the *latent* inputs, not the user-level KPIs - the\n"
      "limitation EXPLORA addresses.\n");
  return 0;
}
