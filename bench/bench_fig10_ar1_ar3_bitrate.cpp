// Reproduces Fig. 10 and the headline F2 finding: the "Max-reward" (AR 1)
// and "Improve bitrate" (AR 3) steering policies on the HT agent improve
// the eMBB transmission bitrate over the no-steering baseline — median
// improvements around 4% and tail (p90) improvements around 10% — with
// AR 3 the more aggressive of the two, across both traffic profiles.
#include <cstdio>

#include "bench_common.hpp"
#include "common/format.hpp"
#include "common/stats.hpp"
#include "common/table.hpp"

int main() {
  using namespace explora;
  bench::print_header(
      "Fig. 10 - AR1/AR3 steering vs baseline, HT agent (6 -> 5 users)");

  common::TextTable summary({"traffic", "strategy", "O", "median [Mbps]",
                             "median vs base", "p90 [Mbps]", "p90 vs base",
                             "replacements"});

  for (const auto traffic :
       {netsim::TrafficProfile::kTrf1, netsim::TrafficProfile::kTrf2}) {
    const auto baseline = bench::run_steered(
        core::AgentProfile::kHighThroughput, traffic, std::nullopt, 10);
    const double base_median = common::median(baseline.embb_bitrate_mbps);
    const double base_p90 =
        common::quantile(baseline.embb_bitrate_mbps, 0.9);
    summary.add_row({to_string(traffic), "baseline", "-",
                     common::fmt(base_median, 3), "-",
                     common::fmt(base_p90, 3), "-", "0"});

    for (const auto strategy : {core::SteeringStrategy::kMaxReward,
                                core::SteeringStrategy::kImproveBitrate}) {
      for (const std::size_t window : {std::size_t{10}, std::size_t{20}}) {
        const auto run = bench::run_steered(
            core::AgentProfile::kHighThroughput, traffic, strategy, window);
        const double median = common::median(run.embb_bitrate_mbps);
        const double p90 = common::quantile(run.embb_bitrate_mbps, 0.9);
        auto pct = [](double base, double value) {
          return base == 0.0
                     ? std::string("-")
                     : common::fmt((value - base) / base * 100.0, 1) + " %";
        };
        summary.add_row(
            {to_string(traffic), core::to_string(strategy),
             std::to_string(window), common::fmt(median, 3),
             pct(base_median, median), common::fmt(p90, 3),
             pct(base_p90, p90),
             std::to_string(run.steering ? run.steering->replacements : 0)});
      }
    }

    // Detailed CDFs for the O = 10 runs on this traffic profile.
    const auto ar1 = bench::run_steered(core::AgentProfile::kHighThroughput,
                                        traffic,
                                        core::SteeringStrategy::kMaxReward,
                                        10);
    const auto ar3 = bench::run_steered(
        core::AgentProfile::kHighThroughput, traffic,
        core::SteeringStrategy::kImproveBitrate, 10);
    std::fputs(
        common::render_cdf_comparison(
            common::format("eMBB tx_bitrate, {} - baseline vs AR1 (O=10)",
                           to_string(traffic)),
            "baseline", baseline.embb_bitrate_mbps, "AR1",
            ar1.embb_bitrate_mbps, "Mbps")
            .c_str(),
        stdout);
    std::fputs(
        common::render_cdf_comparison(
            common::format("eMBB tx_bitrate, {} - baseline vs AR3 (O=10)",
                           to_string(traffic)),
            "baseline", baseline.embb_bitrate_mbps, "AR3",
            ar3.embb_bitrate_mbps, "Mbps")
            .c_str(),
        stdout);
  }

  std::printf("\nSummary (paper: median ~+4%%, tail ~+10%%, AR3 more "
              "aggressive than AR1):\n");
  std::fputs(summary.render().c_str(), stdout);
  return 0;
}
