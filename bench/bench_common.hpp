// Shared helpers for the per-figure/table benchmark binaries: the paper's
// standard scenarios, a cached trained system per agent profile, dataset
// extraction for the XAI baselines, and ASCII scatter plots for the
// transition figures.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "explora/reward.hpp"
#include "explora/transitions.hpp"
#include "harness/experiment.hpp"
#include "harness/training.hpp"
#include "xai/tree.hpp"

namespace explora::bench {

/// Decision count for one benchmark run. The paper runs 30 minutes (7200
/// decisions at 4 Hz); the default here is 6 simulated minutes, which is
/// enough for the distributions to stabilize. Set EXPLORA_BENCH_FULL=1 for
/// the full 30 minutes.
[[nodiscard]] std::size_t bench_decisions();

/// The paper's experiment configuration C_{agent, trf-users}.
[[nodiscard]] netsim::ScenarioConfig paper_scenario(
    netsim::TrafficProfile profile, std::uint32_t users,
    std::uint64_t seed = 42);

/// Default training budget used for all bench agents (cached on disk).
[[nodiscard]] harness::TrainingConfig bench_training();

/// The trained system for a profile; agents are trained once on the TRF1
/// 6-user scenario (as in the paper, where TRF1 generates the training
/// dataset) and cached under artifacts/.
[[nodiscard]] const harness::TrainedSystem& trained_system(
    core::AgentProfile profile);

/// Runs the standard deployed experiment (EXPLORA observing, no steering).
[[nodiscard]] harness::ExperimentResult run_standard(
    core::AgentProfile profile, netsim::TrafficProfile traffic,
    std::uint32_t users, std::uint64_t seed = 42);

/// Multi-seed variant: one run_standard per seed, fanned out across the
/// EXPLORA_THREADS pool. Results are returned in seed order and each run
/// is identical to a serial run_standard call with the same seed.
[[nodiscard]] std::vector<harness::ExperimentResult> run_standard_sweep(
    core::AgentProfile profile, netsim::TrafficProfile traffic,
    std::uint32_t users, const std::vector<std::uint64_t>& seeds);

/// Runs the paper's action-steering setup (§6.1/§6.3): 6 users dropping to
/// 5 mid-run, an online fine-tuning phase before deployment, and EDBR with
/// the given strategy (std::nullopt = the no-steering baseline).
[[nodiscard]] harness::ExperimentResult run_steered(
    core::AgentProfile profile, netsim::TrafficProfile traffic,
    std::optional<core::SteeringStrategy> strategy,
    std::size_t observation_window, std::uint64_t seed = 42);

/// Extracts a (latent -> enforced-action) classification dataset from an
/// experiment, relabelling the observed distinct actions to 0..n-1.
struct LatentActionDataset {
  xai::Dataset data;
  std::size_t num_classes = 0;
  double majority_share = 0.0;  ///< share of the most frequent action
};
[[nodiscard]] LatentActionDataset latent_action_dataset(
    const harness::ExperimentResult& result);

/// ASCII scatter plot of transition events: x = delta of `x_kpi`,
/// y = delta of `y_kpi`, glyph = transition class (S, P, C, D).
[[nodiscard]] std::string transition_scatter(
    const std::vector<core::TransitionEvent>& events, netsim::Kpi x_kpi,
    netsim::Kpi y_kpi, std::size_t width = 64, std::size_t height = 20);

/// Per-class share table (Fig. 7/13 commentary: Self ~5%, Distinct ~50%).
[[nodiscard]] std::string class_share_table(
    const std::vector<core::TransitionEvent>& events);

/// Section header for bench output.
void print_header(const std::string& title);

}  // namespace explora::bench
