// Reproduces Fig. 7: the per-transition-class KPI-variation scatter for
// the HT agent on TRF1 (three panels pairing the monitored KPIs), plus the
// class-share commentary from §6.2 ("Self ~5%, Distinct ~50% of the total;
// Distinct produces large DWL_buffer_size variations; Same-PRB produces
// lower buffer variations with no change in tx_bitrate").
#include <cstdio>

#include "bench_common.hpp"

int main() {
  using namespace explora;
  bench::print_header(
      "Fig. 7 - KPI variations per transition class, HT agent, TRF1");

  const auto result = bench::run_standard(
      core::AgentProfile::kHighThroughput, netsim::TrafficProfile::kTrf1, 6);
  const auto& events = result.transitions;
  std::printf("%zu transitions recorded over %zu decisions\n\n",
              events.size(), result.decisions.size());

  // Panel (a): DWL_buffer_size vs tx_bitrate.
  std::fputs(bench::transition_scatter(events, netsim::Kpi::kTxBitrate,
                                       netsim::Kpi::kBufferSize)
                 .c_str(),
             stdout);
  std::printf("\n");
  // Panel (b): tx_packets vs tx_bitrate.
  std::fputs(bench::transition_scatter(events, netsim::Kpi::kTxBitrate,
                                       netsim::Kpi::kTxPackets)
                 .c_str(),
             stdout);
  std::printf("\n");
  // Panel (c): DWL_buffer_size vs tx_packets.
  std::fputs(bench::transition_scatter(events, netsim::Kpi::kTxPackets,
                                       netsim::Kpi::kBufferSize)
                 .c_str(),
             stdout);

  std::printf("\nTransition-class shares (paper: Self ~5%%, Distinct ~50%%,"
              " HT favours Same-PRB ~40%%):\n");
  std::fputs(bench::class_share_table(events).c_str(), stdout);
  return 0;
}
