// Reproduces Appendix C (Fig. 13, Fig. 14, Table 4): the LL agent's
// transition scatter, its explanation DT, the Table-4 summary, and the
// HT-vs-LL class-share comparison (the paper: HT mainly uses Same-PRB
// ~40%, LL uses its classes more evenly and transitions more often).
#include <cstdio>

#include "bench_common.hpp"
#include "common/table.hpp"
#include "explora/distill.hpp"

int main() {
  using namespace explora;
  bench::print_header(
      "Fig. 13/14 + Table 4 - LL agent explanations, TRF1");

  const auto ll_result = bench::run_standard(
      core::AgentProfile::kLowLatency, netsim::TrafficProfile::kTrf1, 6);
  const auto ht_result = bench::run_standard(
      core::AgentProfile::kHighThroughput, netsim::TrafficProfile::kTrf1, 6);

  // ---- Fig. 13: scatter --------------------------------------------------
  std::fputs(bench::transition_scatter(ll_result.transitions,
                                       netsim::Kpi::kTxBitrate,
                                       netsim::Kpi::kBufferSize)
                 .c_str(),
             stdout);
  std::printf("\n");
  std::fputs(bench::transition_scatter(ll_result.transitions,
                                       netsim::Kpi::kTxPackets,
                                       netsim::Kpi::kBufferSize)
                 .c_str(),
             stdout);

  // ---- Fig. 14 + Table 4: DT and summary ---------------------------------
  core::KnowledgeDistiller distiller;
  const auto knowledge = distiller.distill(ll_result.transitions);
  std::printf("\nDT on EXPLORA explanations for the LL agent (fit accuracy "
              "%.1f%%):\n\n",
              knowledge.tree_accuracy * 100.0);
  std::fputs(knowledge.rules.c_str(), stdout);
  std::printf("\nTable 4 - summary of explanations for the LL agent:\n");
  std::fputs(knowledge.summary_text.c_str(), stdout);

  // ---- class-share comparison (Appendix C bullet 3) ----------------------
  std::printf("\nClass shares, HT vs LL (paper: HT favours Same-PRB ~40%%;"
              " LL uses the classes more evenly):\n");
  std::printf("HT:\n%s", bench::class_share_table(ht_result.transitions).c_str());
  std::printf("LL:\n%s", bench::class_share_table(ll_result.transitions).c_str());

  // Transition rate comparison (Appendix C: LL transitions more).
  auto non_self_share = [](const std::vector<core::TransitionEvent>& events) {
    if (events.empty()) return 0.0;
    std::size_t moving = 0;
    for (const auto& event : events) {
      if (event.cls != core::TransitionClass::kSelf) ++moving;
    }
    return static_cast<double>(moving) / static_cast<double>(events.size());
  };
  std::printf("\nnon-Self transition share: HT %.1f%%, LL %.1f%%\n",
              non_self_share(ht_result.transitions) * 100.0,
              non_self_share(ll_result.transitions) * 100.0);
  return 0;
}
