// Reproduces Fig. 9: the "Min-reward" (AR 2) steering policy on the LL
// agent. The paper's finding: AR 2 significantly reduces the tail of the
// URLLC DWL buffer occupancy (faster URLLC transmission) with only minor
// changes to tx_bitrate.
#include <cstdio>

#include "bench_common.hpp"
#include "common/table.hpp"

int main() {
  using namespace explora;
  bench::print_header(
      "Fig. 9 - AR2 'Min-reward' steering, LL agent, TRF1 (6 -> 5 users)");

  const auto baseline = bench::run_steered(
      core::AgentProfile::kLowLatency, netsim::TrafficProfile::kTrf1,
      std::nullopt, 10);
  const auto ar2_o10 = bench::run_steered(
      core::AgentProfile::kLowLatency, netsim::TrafficProfile::kTrf1,
      core::SteeringStrategy::kMinReward, 10);
  const auto ar2_o20 = bench::run_steered(
      core::AgentProfile::kLowLatency, netsim::TrafficProfile::kTrf1,
      core::SteeringStrategy::kMinReward, 20);

  std::fputs(common::render_cdf_comparison(
                 "URLLC DWL_buffer_size, baseline vs AR2 (O=10)", "baseline",
                 baseline.urllc_buffer_bytes, "AR2-O10",
                 ar2_o10.urllc_buffer_bytes, "B")
                 .c_str(),
             stdout);
  std::printf("\n");
  std::fputs(common::render_cdf_comparison(
                 "URLLC DWL_buffer_size, baseline vs AR2 (O=20)", "baseline",
                 baseline.urllc_buffer_bytes, "AR2-O20",
                 ar2_o20.urllc_buffer_bytes, "B")
                 .c_str(),
             stdout);
  std::printf("\nCounterpart effect on the eMBB bitrate (paper: minor "
              "changes):\n");
  std::fputs(common::render_cdf_comparison(
                 "eMBB tx_bitrate, baseline vs AR2 (O=10)", "baseline",
                 baseline.embb_bitrate_mbps, "AR2-O10",
                 ar2_o10.embb_bitrate_mbps, "Mbps")
                 .c_str(),
             stdout);

  for (const auto* run : {&ar2_o10, &ar2_o20}) {
    if (run->steering.has_value()) {
      std::printf(
          "steering stats (O=%s): %llu decisions, %llu suggestions, %llu "
          "replacements\n",
          run == &ar2_o10 ? "10" : "20",
          static_cast<unsigned long long>(run->steering->decisions),
          static_cast<unsigned long long>(run->steering->suggestions),
          static_cast<unsigned long long>(run->steering->replacements));
    }
  }
  std::printf(
      "\nShape to compare with the paper: AR2 shrinks the upper tail of the\n"
      "URLLC buffer distribution while the eMBB bitrate moves only\n"
      "marginally.\n");
  return 0;
}
