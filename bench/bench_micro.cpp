// google-benchmark microbenchmarks for the hot paths: the near-real-time
// budget of the RIC (10 ms - 1 s loops) is the paper's "lightweight for
// real-time operation" claim — these benches quantify every per-decision
// cost EXPLORA adds.
#include <benchmark/benchmark.h>

#include <chrono>
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <memory>
#include <mutex>
#include <optional>
#include <string>

#include "common/contracts.hpp"
#include "common/format.hpp"
#include "common/parallel.hpp"
#include "common/thread_annotations.hpp"
#include "common/rng.hpp"
#include "common/telemetry.hpp"
#include "ml/gemm.hpp"
#include "ml/nn.hpp"
#include "explora/distill.hpp"
#include "explora/edbr.hpp"
#include "explora/graph.hpp"
#include "explora/transitions.hpp"
#include "ml/autoencoder.hpp"
#include "ml/ppo.hpp"
#include "netsim/gnb.hpp"
#include "netsim/scenario.hpp"
#include "oran/rmr.hpp"
#include "oran/trace.hpp"
#include "oran/wire.hpp"
#include "xai/shap.hpp"
#include "xai/tree.hpp"

namespace {

using namespace explora;

netsim::KpiReport sample_report(common::Rng& rng) {
  netsim::KpiReport report;
  for (std::size_t s = 0; s < netsim::kNumSlices; ++s) {
    report.slices[s].tx_bitrate_mbps = {rng.uniform(0.0, 8.0)};
    report.slices[s].tx_packets = {rng.uniform(0.0, 300.0)};
    report.slices[s].buffer_bytes = {rng.uniform(0.0, 1e6)};
  }
  return report;
}

netsim::SlicingControl random_control(common::Rng& rng) {
  const auto& catalog = netsim::prb_catalog();
  netsim::SlicingControl control;
  control.prbs = catalog[rng.index(catalog.size())];
  for (auto& policy : control.scheduling) {
    policy = static_cast<netsim::SchedulerPolicy>(rng.index(3));
  }
  return control;
}

// ---- EXPLORA graph maintenance (per decision period) ----------------------

void BM_GraphBeginAction(benchmark::State& state) {
  common::Rng rng(1);
  core::AttributedGraph graph;
  for (auto _ : state) {
    graph.begin_action(random_control(rng));
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()));
}
BENCHMARK(BM_GraphBeginAction);

void BM_GraphRecordConsequence(benchmark::State& state) {
  common::Rng rng(2);
  core::AttributedGraph graph;
  graph.begin_action(random_control(rng));
  const auto report = sample_report(rng);
  for (auto _ : state) {
    graph.record_consequence(report);
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()));
}
BENCHMARK(BM_GraphRecordConsequence);

void BM_SteeringDecision(benchmark::State& state) {
  common::Rng rng(3);
  core::AttributedGraph graph;
  // Populate a realistic graph: 64 actions, 500 transitions with samples.
  std::vector<netsim::SlicingControl> actions;
  for (int i = 0; i < 64; ++i) actions.push_back(random_control(rng));
  for (int i = 0; i < 500; ++i) {
    graph.begin_action(actions[rng.index(actions.size())]);
    graph.record_consequence(sample_report(rng));
  }
  core::ActionSteering steering(
      graph, core::RewardModel(core::RewardWeights::high_throughput()),
      {.strategy = core::SteeringStrategy::kMaxReward,
       .observation_window = 10});
  for (int i = 0; i < 10; ++i) steering.push_measured_reward(rng.uniform());
  const auto prev = actions[0];
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        steering.steer(actions[rng.index(actions.size())], prev));
  }
}
BENCHMARK(BM_SteeringDecision);

// ---- explanation synthesis (the paper's 2.3 s figure) ---------------------

void BM_KnowledgeDistillation(benchmark::State& state) {
  common::Rng rng(4);
  const auto n = static_cast<std::size_t>(state.range(0));
  std::vector<core::TransitionEvent> events;
  for (std::size_t i = 0; i < n; ++i) {
    core::TransitionEvent event;
    event.cls = static_cast<core::TransitionClass>(rng.index(4));
    event.delta.resize(core::kNumAttributes);
    event.js_divergence.resize(core::kNumAttributes);
    for (auto& d : event.delta) d = rng.normal(0.0, 1.0);
    for (auto& j : event.js_divergence) j = rng.uniform();
    events.push_back(std::move(event));
  }
  core::KnowledgeDistiller distiller;
  for (auto _ : state) {
    benchmark::DoNotOptimize(distiller.distill(events));
  }
}
BENCHMARK(BM_KnowledgeDistillation)->Arg(256)->Arg(1024)->Arg(4096);

// ---- the SHAP counterpoint ------------------------------------------------

void BM_ShapExactPerSample(benchmark::State& state) {
  const auto features = static_cast<std::size_t>(state.range(0));
  common::Rng rng(5);
  std::vector<xai::Vector> background;
  for (int i = 0; i < 16; ++i) {
    xai::Vector row(features);
    for (auto& v : row) v = rng.uniform(-1.0, 1.0);
    background.push_back(std::move(row));
  }
  xai::ShapExplainer explainer(
      [](const xai::Vector& x) {
        double sum = 0.0;
        for (double v : x) sum += v * v;
        return xai::Vector{sum};
      },
      background);
  const xai::Vector probe(features, 0.5);
  for (auto _ : state) {
    benchmark::DoNotOptimize(explainer.explain_all_outputs(probe));
  }
}
BENCHMARK(BM_ShapExactPerSample)->Arg(5)->Arg(9)->Arg(12);

// Same workload fanned out across the EXPLORA_THREADS pool with the
// batched model path (compare against BM_ShapExactPerSample for the
// serial-vs-parallel trajectory; the JSON pre-pass below reports the
// speedup directly).
void BM_ShapExactParallel(benchmark::State& state) {
  const auto features = static_cast<std::size_t>(state.range(0));
  common::Rng rng(5);
  std::vector<xai::Vector> background;
  for (int i = 0; i < 16; ++i) {
    xai::Vector row(features);
    for (auto& v : row) v = rng.uniform(-1.0, 1.0);
    background.push_back(std::move(row));
  }
  ml::Mlp mlp({features, 32, 4}, ml::Activation::kTanh,
              ml::Activation::kLinear, rng);
  xai::ShapExplainer explainer(xai::batch_model(mlp), background);
  const xai::Vector probe(features, 0.5);
  for (auto _ : state) {
    benchmark::DoNotOptimize(explainer.explain_all_outputs(probe));
  }
  state.counters["evals/s"] = benchmark::Counter(
      static_cast<double>(explainer.model_evaluations()),
      benchmark::Counter::kIsRate);
}
BENCHMARK(BM_ShapExactParallel)->Arg(8)->Arg(10)->Arg(12)->UseRealTime();

// ---- batched model inference ---------------------------------------------

void BM_MlpForwardPerRow(benchmark::State& state) {
  const auto batch = static_cast<std::size_t>(state.range(0));
  common::Rng rng(6);
  ml::Mlp mlp({16, 64, 64, 8}, ml::Activation::kTanh, ml::Activation::kLinear,
              rng);
  std::vector<ml::Vector> rows(batch, ml::Vector(16));
  for (auto& row : rows) {
    for (auto& v : row) v = rng.uniform(-1.0, 1.0);
  }
  ml::Vector out(8);
  for (auto _ : state) {
    for (const auto& row : rows) {
      mlp.infer(row, out);
      benchmark::DoNotOptimize(out);
    }
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(batch));
}
BENCHMARK(BM_MlpForwardPerRow)->Arg(64)->Arg(256);

void BM_MlpForwardBatch(benchmark::State& state) {
  const auto batch = static_cast<std::size_t>(state.range(0));
  common::Rng rng(6);
  ml::Mlp mlp({16, 64, 64, 8}, ml::Activation::kTanh, ml::Activation::kLinear,
              rng);
  ml::Matrix inputs(batch, 16);
  for (auto& v : inputs.data()) v = rng.uniform(-1.0, 1.0);
  for (auto _ : state) {
    benchmark::DoNotOptimize(mlp.forward_batch(inputs));
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(batch));
}
BENCHMARK(BM_MlpForwardBatch)->Arg(64)->Arg(256);

// ---- substrate hot paths ---------------------------------------------------

void BM_GnbReportWindow(benchmark::State& state) {
  netsim::ScenarioConfig scenario;
  scenario.users_per_slice = {2, 2, 2};
  auto gnb = netsim::make_gnb(scenario);
  for (auto _ : state) {
    benchmark::DoNotOptimize(gnb->run_report_window());
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) * 25);
}
BENCHMARK(BM_GnbReportWindow);

void BM_AutoencoderEncode(benchmark::State& state) {
  ml::Autoencoder autoencoder;
  const ml::Vector input(ml::kInputDim, 0.3);
  for (auto _ : state) {
    benchmark::DoNotOptimize(autoencoder.encode(input));
  }
}
BENCHMARK(BM_AutoencoderEncode);

void BM_PpoActGreedy(benchmark::State& state) {
  ml::PpoAgent agent(7);
  const ml::Vector latent(ml::kLatentDim, 0.2);
  for (auto _ : state) {
    benchmark::DoNotOptimize(agent.act_greedy(latent));
  }
}
BENCHMARK(BM_PpoActGreedy);

void BM_RmrRoundTrip(benchmark::State& state) {
  class Sink final : public oran::RmrEndpoint {
   public:
    std::string_view endpoint_name() const noexcept override {
      return "sink";
    }
    void on_message(const oran::RicMessage&) override {}
  };
  oran::RmrRouter router;
  Sink sink;
  router.register_endpoint(sink);
  router.add_route(oran::MessageType::kRanControl, "*", "sink");
  common::Rng rng(8);
  const auto control = random_control(rng);
  for (auto _ : state) {
    router.send(oran::make_ran_control("bench", control, 1));
  }
}
BENCHMARK(BM_RmrRoundTrip);

// ---- wire codec (every recorded/replayed message crosses this) ------------

void BM_WireEncodeKpm(benchmark::State& state) {
  common::Rng rng(12);
  const auto message = oran::make_kpm_indication("e2term", sample_report(rng));
  for (auto _ : state) {
    benchmark::DoNotOptimize(oran::wire::encode_message_frame(message));
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()));
}
BENCHMARK(BM_WireEncodeKpm);

void BM_WireDecodeKpm(benchmark::State& state) {
  common::Rng rng(12);
  const auto wire = oran::wire::encode_message_frame(
      oran::make_kpm_indication("e2term", sample_report(rng)));
  for (auto _ : state) {
    benchmark::DoNotOptimize(oran::wire::decode_message_frame(wire));
  }
  state.SetBytesProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(wire.size()));
}
BENCHMARK(BM_WireDecodeKpm);

void BM_DecisionTreeFit(benchmark::State& state) {
  common::Rng rng(9);
  xai::Dataset data;
  const auto n = static_cast<std::size_t>(state.range(0));
  for (std::size_t i = 0; i < n; ++i) {
    xai::Vector row(9);
    for (auto& v : row) v = rng.normal(0.0, 1.0);
    data.labels.push_back(row[0] > 0 ? (row[1] > 0 ? 0u : 1u)
                                     : (row[2] > 0 ? 2u : 3u));
    data.features.push_back(std::move(row));
  }
  for (auto _ : state) {
    xai::DecisionTreeClassifier tree;
    tree.fit(data, 4);
    benchmark::DoNotOptimize(tree);
  }
}
BENCHMARK(BM_DecisionTreeFit)->Arg(512)->Arg(2048);

// ---- serial-vs-parallel JSON report ---------------------------------------
//
// Self-timed comparison of the parallel execution layer against a 1-thread
// pool (== EXPLORA_THREADS=1), printed as one JSON object so the perf
// trajectory is trackable across commits (see EXPERIMENTS.md). Also written
// to the file named by EXPLORA_BENCH_JSON when set.

using Clock = std::chrono::steady_clock;

double seconds_since(Clock::time_point start) {
  return std::chrono::duration<double>(Clock::now() - start).count();
}

/// Best-of-3 wall time of `fn()`.
template <typename Fn>
double time_best(Fn&& fn) {
  double best = 1e300;
  for (int rep = 0; rep < 3; ++rep) {
    const auto start = Clock::now();
    fn();
    best = std::min(best, seconds_since(start));
  }
  return best;
}

std::string shap_speedup_case(std::size_t features, common::ThreadPool& serial,
                              common::ThreadPool& parallel) {
  common::Rng rng(5);
  std::vector<xai::Vector> background;
  for (int i = 0; i < 16; ++i) {
    xai::Vector row(features);
    for (auto& v : row) v = rng.uniform(-1.0, 1.0);
    background.push_back(std::move(row));
  }
  ml::Mlp mlp({features, 32, 4}, ml::Activation::kTanh,
              ml::Activation::kLinear, rng);
  const xai::Vector probe(features, 0.5);

  // Each explainer binds its xai.shap.* metrics to its own registry; the
  // evals_per_explanation span then reports the exact per-sample model
  // evaluations — no dividing a raw counter by the timed-rep count.
  telemetry::Registry serial_registry;
  telemetry::Registry parallel_registry;
  std::optional<xai::ShapExplainer> serial_explainer;
  std::optional<xai::ShapExplainer> parallel_explainer;
  xai::ShapExplainer::Config config;
  {
    telemetry::ScopedRegistry scope(serial_registry);
    config.pool = &serial;
    serial_explainer.emplace(xai::batch_model(mlp), background, config);
  }
  {
    telemetry::ScopedRegistry scope(parallel_registry);
    config.pool = &parallel;
    parallel_explainer.emplace(xai::batch_model(mlp), background, config);
  }

  std::vector<xai::Vector> serial_phi;
  std::vector<xai::Vector> parallel_phi;
  const double serial_s = time_best(
      [&] { serial_phi = serial_explainer->explain_all_outputs(probe); });
  const double parallel_s = time_best(
      [&] { parallel_phi = parallel_explainer->explain_all_outputs(probe); });
  std::uint64_t evals_per_sample =
      parallel_explainer->model_evaluations() / 3;  // fallback: 3 timed reps
  if (telemetry::kCompiledIn) {
    const telemetry::MetricSnapshot& span =
        parallel_registry.snapshot().metrics.at(
            "xai.shap.evals_per_explanation");
    evals_per_sample = static_cast<std::uint64_t>(span.max);
  }

  return common::format(
      "    {{\"case\": \"shap_exact\", \"features\": {}, \"background\": {}, "
      "\"serial_seconds\": {:.6f}, \"parallel_seconds\": {:.6f}, "
      "\"speedup\": {:.2f}, \"model_evals\": {}, \"evals_per_second\": {:.0f}, "
      "\"bit_identical\": {}}}",
      features, background.size(), serial_s, parallel_s,
      serial_s / std::max(parallel_s, 1e-12), evals_per_sample,
      static_cast<double>(evals_per_sample) / std::max(parallel_s, 1e-12),
      serial_phi == parallel_phi ? "true" : "false");
}

// Cost of the fast-tier contracts on the SHAP exact path: the same workload
// timed with the runtime check level at fast (the production default) versus
// off. The acceptance bar for instrumenting hot code is overhead < 5%.
std::string contract_overhead_case(std::size_t features) {
  common::Rng rng(5);
  std::vector<xai::Vector> background;
  for (int i = 0; i < 16; ++i) {
    xai::Vector row(features);
    for (auto& v : row) v = rng.uniform(-1.0, 1.0);
    background.push_back(std::move(row));
  }
  ml::Mlp mlp({features, 32, 4}, ml::Activation::kTanh,
              ml::Activation::kLinear, rng);
  xai::ShapExplainer explainer(xai::batch_model(mlp), background);
  const xai::Vector probe(features, 0.5);

  double fast_s = 0.0;
  {
    contracts::ScopedCheckLevel fast(contracts::CheckLevel::kFast);
    fast_s = time_best([&] {
      benchmark::DoNotOptimize(explainer.explain_all_outputs(probe));
    });
  }
  double off_s = 0.0;
  {
    contracts::ScopedCheckLevel off(contracts::CheckLevel::kOff);
    off_s = time_best([&] {
      benchmark::DoNotOptimize(explainer.explain_all_outputs(probe));
    });
  }

  const double overhead_pct =
      (fast_s / std::max(off_s, 1e-12) - 1.0) * 100.0;
  return common::format(
      "    {{\"case\": \"contract_overhead\", \"features\": {}, "
      "\"checks_fast_seconds\": {:.6f}, \"checks_off_seconds\": {:.6f}, "
      "\"overhead_percent\": {:.2f}}}",
      features, fast_s, off_s, overhead_pct);
}

// Cost of compiled-in telemetry on the closed-loop hot path: the gNB
// report window (per-TTI scheduler grants + per-UE KPI histograms) timed
// with recording enabled versus runtime-disabled. The acceptance bar from
// the telemetry design is overhead <= 2%; the JSON row tracks it across
// commits. With EXPLORA_TELEMETRY=OFF both timings take the compiled-out
// (empty-body) path and the overhead reads as noise around zero.
std::string telemetry_overhead_case() {
  netsim::ScenarioConfig scenario;
  scenario.users_per_slice = {2, 2, 2};
  telemetry::Registry registry;
  // The scenario is deterministic, so a fresh gNB re-runs the exact same
  // simulated workload — both arms time identical work instead of whatever
  // traffic state the previous arm left behind.
  auto measure = [&](bool recording) {
    std::unique_ptr<netsim::Gnb> gnb;
    {
      telemetry::ScopedRegistry scope(registry);
      gnb = netsim::make_gnb(scenario);
    }
    telemetry::ScopedEnabled gate(recording);
    const auto start = Clock::now();
    for (int i = 0; i < 200; ++i) {
      benchmark::DoNotOptimize(gnb->run_report_window());
    }
    return seconds_since(start);
  };
  // Interleave the arms (warm-up round discarded) so machine-load drift
  // hits both equally, and keep the per-arm minimum as the noise floor.
  (void)measure(true);
  (void)measure(false);
  double enabled_s = 1e300;
  double disabled_s = 1e300;
  for (int rep = 0; rep < 5; ++rep) {
    enabled_s = std::min(enabled_s, measure(true));
    disabled_s = std::min(disabled_s, measure(false));
  }
  const double overhead_pct =
      (enabled_s / std::max(disabled_s, 1e-12) - 1.0) * 100.0;
  return common::format(
      "    {{\"case\": \"telemetry_overhead\", \"compiled_in\": {}, "
      "\"windows\": 200, \"enabled_seconds\": {:.6f}, "
      "\"disabled_seconds\": {:.6f}, \"overhead_percent\": {:.2f}}}",
      telemetry::kCompiledIn ? "true" : "false", enabled_s, disabled_s,
      overhead_pct);
}

// Per-acquisition cost of the annotated Mutex over a plain std::mutex on an
// uncontended guarded-counter fold. At the production runtime level (fast)
// the lock-order validator is dormant: lock() adds one relaxed atomic load
// (audit_active) and unlock() one thread-local read (tracking_any), so the
// acceptance bar is overhead <= 2%. The audit arm routes every acquisition
// through the out-of-line rank validator and is reported for visibility
// only. In an EXPLORA_CHECK_LEVEL=off build both hooks fold away at compile
// time — the wrapper is a std::mutex plus one dormant pointer member, the
// fast arm takes the identical code path as plain, and the delta reads as
// timer noise.
std::string lock_overhead_case() {
  constexpr int kAcquisitions = 2'000'000;
  std::mutex plain;
  common::Mutex annotated("bench.lock_overhead", common::lockrank::kLeaf);

  std::uint64_t counter = 0;
  const auto fold_plain = [&] {
    for (int i = 0; i < kAcquisitions; ++i) {
      std::lock_guard<std::mutex> lock(plain);
      counter += static_cast<std::uint64_t>(i);
    }
  };
  const auto fold_annotated = [&] {
    for (int i = 0; i < kAcquisitions; ++i) {
      common::MutexLock lock(annotated);
      counter += static_cast<std::uint64_t>(i);
    }
  };

  double plain_s = 0.0;
  double fast_s = 0.0;
  double audit_s = 0.0;
  {
    contracts::ScopedCheckLevel fast(contracts::CheckLevel::kFast);
    plain_s = time_best(fold_plain);
    fast_s = time_best(fold_annotated);
  }
  {
    contracts::ScopedCheckLevel audit(contracts::CheckLevel::kAudit);
    audit_s = time_best(fold_annotated);
  }
  benchmark::DoNotOptimize(counter);

  const double overhead_pct =
      (fast_s / std::max(plain_s, 1e-12) - 1.0) * 100.0;
  return common::format(
      "    {{\"case\": \"lock_overhead\", \"acquisitions\": {}, "
      "\"plain_seconds\": {:.6f}, \"annotated_fast_seconds\": {:.6f}, "
      "\"annotated_audit_seconds\": {:.6f}, \"fast_overhead_percent\": "
      "{:.2f}}}",
      kAcquisitions, plain_s, fast_s, audit_s, overhead_pct);
}

std::string forward_batch_case(std::size_t batch) {
  common::Rng rng(6);
  ml::Mlp mlp({16, 64, 64, 8}, ml::Activation::kTanh, ml::Activation::kLinear,
              rng);
  ml::Matrix inputs(batch, 16);
  for (auto& v : inputs.data()) v = rng.uniform(-1.0, 1.0);

  ml::Vector out(8);
  const double per_row_s = time_best([&] {
    for (std::size_t r = 0; r < batch; ++r) {
      mlp.infer(inputs.data().subspan(r * 16, 16), out);
      benchmark::DoNotOptimize(out);
    }
  });
  ml::Matrix outputs;
  const double batched_s =
      time_best([&] { outputs = mlp.forward_batch(inputs); });
  benchmark::DoNotOptimize(outputs);

  return common::format(
      "    {{\"case\": \"forward_batch\", \"batch\": {}, "
      "\"per_row_seconds\": {:.6f}, \"batched_seconds\": {:.6f}, "
      "\"speedup\": {:.2f}, \"rows_per_second\": {:.0f}}}",
      batch, per_row_s, batched_s,
      per_row_s / std::max(batched_s, 1e-12),
      static_cast<double>(batch) / std::max(batched_s, 1e-12));
}

// Raw blocked-GEMM throughput: the same multiply_batch timed with the
// scalar kernel forced versus the dispatched backend (AVX2/NEON when
// compiled in and supported). The two outputs must be byte-identical —
// that is the SIMD design's contract (DESIGN.md §10), and bit_identical
// is the row's pass/fail bit; speedup tracks the vectorization win.
std::string gemm_flops_case(std::size_t out, std::size_t in,
                            std::size_t batch) {
  common::Rng rng(11);
  ml::Matrix weights(out, in);
  ml::Matrix inputs(batch, in);
  for (auto& v : weights.data()) v = rng.uniform(-1.0, 1.0);
  for (auto& v : inputs.data()) v = rng.uniform(-1.0, 1.0);

  ml::Matrix scalar_out(batch, out);
  ml::Matrix simd_out(batch, out);
  double scalar_s = 0.0;
  {
    ml::gemm::ScopedBackend forced(ml::gemm::Backend::kScalar);
    scalar_s =
        time_best([&] { weights.multiply_batch(inputs, scalar_out); });
  }
  const ml::gemm::Backend backend = ml::gemm::active_backend();
  const double simd_s =
      time_best([&] { weights.multiply_batch(inputs, simd_out); });

  const double flops = 2.0 * static_cast<double>(out) *
                       static_cast<double>(in) * static_cast<double>(batch);
  const bool identical =
      scalar_out.data().size() == simd_out.data().size() &&
      std::memcmp(scalar_out.data().data(), simd_out.data().data(),
                  scalar_out.data().size() * sizeof(double)) == 0;
  return common::format(
      "    {{\"case\": \"gemm_flops\", \"out\": {}, \"in\": {}, "
      "\"batch\": {}, \"backend\": \"{}\", \"scalar_seconds\": {:.6f}, "
      "\"simd_seconds\": {:.6f}, \"speedup\": {:.2f}, "
      "\"gflops\": {:.2f}, \"bit_identical\": {}}}",
      out, in, batch, ml::gemm::to_string(backend), scalar_s, simd_s,
      scalar_s / std::max(simd_s, 1e-12),
      flops / std::max(simd_s, 1e-12) / 1e9, identical ? "true" : "false");
}

// End-to-end fused forward pass (GEMM + bias + activation epilogue) of the
// bench MLP, scalar versus dispatched backend. This is the per-decision
// inference latency the RIC budget cares about. Two activation flavors:
// relu (DQN online net / autoencoder hidden layers) is GEMM-bound and
// shows the full vectorization win; tanh (PPO/A2C actors) spends most of
// its time in std::tanh, which stays bitwise-pinned libm on every backend,
// so its speedup is structurally capped by Amdahl.
std::string forward_batch_latency_case(std::size_t batch,
                                       ml::Activation hidden) {
  common::Rng rng(6);
  ml::Mlp mlp({16, 64, 64, 8}, hidden, ml::Activation::kLinear, rng);
  ml::Matrix inputs(batch, 16);
  for (auto& v : inputs.data()) v = rng.uniform(-1.0, 1.0);

  ml::Matrix scalar_out;
  ml::Matrix simd_out;
  double scalar_s = 0.0;
  {
    ml::gemm::ScopedBackend forced(ml::gemm::Backend::kScalar);
    scalar_s = time_best([&] { scalar_out = mlp.forward_batch(inputs); });
  }
  const ml::gemm::Backend backend = ml::gemm::active_backend();
  const double simd_s =
      time_best([&] { simd_out = mlp.forward_batch(inputs); });

  const bool identical =
      scalar_out.data().size() == simd_out.data().size() &&
      std::memcmp(scalar_out.data().data(), simd_out.data().data(),
                  scalar_out.data().size() * sizeof(double)) == 0;
  return common::format(
      "    {{\"case\": \"forward_batch_latency\", \"batch\": {}, "
      "\"activation\": \"{}\", \"backend\": \"{}\", "
      "\"scalar_seconds\": {:.6f}, \"simd_seconds\": {:.6f}, "
      "\"speedup\": {:.2f}, \"rows_per_second\": {:.0f}, "
      "\"bit_identical\": {}}}",
      batch, hidden == ml::Activation::kRelu ? "relu" : "tanh",
      ml::gemm::to_string(backend), scalar_s, simd_s,
      scalar_s / std::max(simd_s, 1e-12),
      static_cast<double>(batch) / std::max(simd_s, 1e-12),
      identical ? "true" : "false");
}

// Wire codec throughput on a realistic mixed message stream (the stream a
// TraceRecorder persists): encode and strict bounds-checked decode,
// messages and bytes per second. This is the per-message cost record/
// replay adds on top of routing.
std::string wire_codec_case(std::size_t messages) {
  common::Rng rng(12);
  std::vector<oran::RicMessage> stream;
  std::size_t total_bytes = 0;
  for (std::size_t i = 0; i < messages; ++i) {
    switch (i % 3) {
      case 0:
        stream.push_back(oran::make_kpm_indication("e2term",
                                                   sample_report(rng)));
        break;
      case 1:
        stream.push_back(oran::make_ran_control("drl_xapp",
                                                random_control(rng), i, i));
        break;
      default:
        stream.push_back(oran::make_ran_control_ack("e2term", i));
    }
  }
  std::vector<std::vector<std::uint8_t>> frames;
  const double encode_s = time_best([&] {
    frames.clear();
    total_bytes = 0;
    for (const auto& message : stream) {
      frames.push_back(oran::wire::encode_message_frame(message));
      total_bytes += frames.back().size();
    }
  });
  const double decode_s = time_best([&] {
    for (const auto& frame : frames) {
      benchmark::DoNotOptimize(oran::wire::decode_message_frame(frame));
    }
  });
  return common::format(
      "    {{\"case\": \"wire_codec\", \"messages\": {}, \"bytes\": {}, "
      "\"encode_seconds\": {:.6f}, \"decode_seconds\": {:.6f}, "
      "\"encode_msgs_per_second\": {:.0f}, "
      "\"decode_msgs_per_second\": {:.0f}}}",
      messages, total_bytes, encode_s, decode_s,
      static_cast<double>(messages) / std::max(encode_s, 1e-12),
      static_cast<double>(messages) / std::max(decode_s, 1e-12));
}

// Record/replay throughput: serialize a recorded delivery stream to
// `.etrace` bytes, parse it back, and re-deliver every frame into a sink
// endpoint — the full offline-explanation transport path, no xApp logic.
std::string trace_replay_case(std::size_t frames) {
  class Sink final : public oran::RmrEndpoint {
   public:
    std::string_view endpoint_name() const noexcept override {
      return "explora_xapp";
    }
    void on_message(const oran::RicMessage&) override { ++count; }
    std::size_t count = 0;
  };
  common::Rng rng(13);
  oran::TraceRecorder recorder("explora_xapp");
  std::int64_t tick = 0;
  recorder.set_tick_source([&tick] { return tick; });
  for (std::size_t i = 0; i < frames; ++i) {
    tick += 25;
    recorder.on_deliver(oran::make_kpm_indication("e2term",
                                                  sample_report(rng)),
                        "explora_xapp", i + 1);
  }
  std::vector<std::uint8_t> bytes;
  const double serialize_s = time_best([&] { bytes = recorder.serialize(); });
  std::optional<oran::TraceReplaySource> source;
  const double parse_s =
      time_best([&] { source.emplace(oran::TraceReplaySource::parse(bytes)); });
  Sink sink;
  const double replay_s = time_best(
      [&] { benchmark::DoNotOptimize(source->replay_into(sink, "explora_xapp")); });
  return common::format(
      "    {{\"case\": \"trace_replay\", \"frames\": {}, \"bytes\": {}, "
      "\"serialize_seconds\": {:.6f}, \"parse_seconds\": {:.6f}, "
      "\"replay_seconds\": {:.6f}, \"replay_frames_per_second\": {:.0f}}}",
      frames, bytes.size(), serialize_s, parse_s, replay_s,
      static_cast<double>(frames) / std::max(replay_s, 1e-12));
}

void report_parallel_speedup() {
  const std::size_t threads = common::configured_threads();
  common::ThreadPool serial(1);
  common::ThreadPool parallel(threads);

  std::string json = "{\n  \"bench\": \"parallel_speedup\",\n";
  json += common::format("  \"threads\": {},\n  \"cases\": [\n", threads);
  json += shap_speedup_case(8, serial, parallel) + ",\n";
  json += shap_speedup_case(10, serial, parallel) + ",\n";
  json += shap_speedup_case(12, serial, parallel) + ",\n";
  json += forward_batch_case(64) + ",\n";
  json += forward_batch_case(256) + ",\n";
  json += gemm_flops_case(64, 64, 256) + ",\n";
  json += gemm_flops_case(64, 64, 4096) + ",\n";
  json += forward_batch_latency_case(256, ml::Activation::kRelu) + ",\n";
  json += forward_batch_latency_case(4096, ml::Activation::kRelu) + ",\n";
  json += forward_batch_latency_case(256, ml::Activation::kTanh) + ",\n";
  json += forward_batch_latency_case(4096, ml::Activation::kTanh) + ",\n";
  json += wire_codec_case(3000) + ",\n";
  json += trace_replay_case(3000) + ",\n";
  json += contract_overhead_case(10) + ",\n";
  json += lock_overhead_case() + ",\n";
  json += telemetry_overhead_case() + "\n";
  json += "  ]\n}\n";

  std::fputs(json.c_str(), stdout);
  if (const char* path = std::getenv("EXPLORA_BENCH_JSON");
      path != nullptr && *path != '\0') {
    if (std::FILE* file = std::fopen(path, "w")) {
      std::fputs(json.c_str(), file);
      std::fclose(file);
    }
  }
}

}  // namespace

int main(int argc, char** argv) {
  report_parallel_speedup();
  benchmark::Initialize(&argc, argv);
  if (benchmark::ReportUnrecognizedArguments(argc, argv)) return 1;
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  return 0;
}
